(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section on the synthetic i1..i10 suite.

     dune exec bench/main.exe                 -- everything
     dune exec bench/main.exe -- table1       -- only Table 1
     dune exec bench/main.exe -- table2a table2b --circuits i1,i3
     dune exec bench/main.exe -- --quick      -- reduced sweep for smoke runs

   Sections:
     stats    circuit inventory (the #gates/#nets/#caps columns of Table 2)
     table1   validation against brute force + runtime blow-up
     table2a  top-k elimination sweep  (Table 2(a) data semantics)
     table2b  top-k addition sweep     (Table 2(b) data semantics)
     figure10 delay vs k series for i1 and i10, both analyses
     parallel sequential vs parallel engine sweep (speedup + determinism)
     serve    daemon load test: concurrent clients against tka serve
     kernels  bechamel microbenchmarks of the core computational kernels

   --jobs N (or TKA_JOBS) sizes the shared domain pool: the table2
   sections run their per-circuit sweeps concurrently, and the engine /
   brute force parallelise internally. Results are identical at any
   jobs count; all runtimes are monotonic wall-clock seconds. *)

module N = Tka_circuit.Netlist
module Topo = Tka_circuit.Topo
module Stats = Tka_circuit.Circuit_stats
module B = Tka_layout.Benchmarks
module Iterate = Tka_noise.Iterate
module Engine = Tka_topk.Engine
module Addition = Tka_topk.Addition
module Elimination = Tka_topk.Elimination
module BF = Tka_topk.Brute_force
module CS = Tka_topk.Coupling_set
module Tt = Tka_util.Text_table
module J = Tka_obs.Jsonx
module Pool = Tka_parallel.Pool
module T2x = Tka_layout.Table2x
module Rss = Tka_prof.Rss

let wall () = Tka_obs.Clock.now_s ()

(* Machine-readable results, accumulated as sections run and dumped to
   BENCH_topk.json at the end. *)
let json_out : (string * J.t) list ref = ref []
let json_add key v = json_out := !json_out @ [ (key, v) ]

let json_stats (st : Tka_topk.Ilist.stats) =
  J.Obj
    [
      ("candidates", J.Int st.Tka_topk.Ilist.candidates);
      ("dominated", J.Int st.Tka_topk.Ilist.dominated);
      ("duplicates", J.Int st.Tka_topk.Ilist.duplicates);
      ("capped", J.Int st.Tka_topk.Ilist.capped);
      ("dominance_checks", J.Int st.Tka_topk.Ilist.checks);
    ]

(* ------------------------------------------------------------------ *)
(* Options                                                            *)
(* ------------------------------------------------------------------ *)

type options = {
  mutable sections : string list;
  mutable circuits : string list;
  mutable ks : int list; (* delay columns of Table 2 *)
  mutable runtime_ks : int list; (* per-k runtime columns (independent runs) *)
  mutable fig10_max_k : int;
  mutable bf_budget : float;
  mutable quick : bool;
  mutable rss_budget_mb : float option; (* table2x hard peak-RSS gate *)
}

let default_options () =
  {
    sections = [];
    circuits = List.map (fun s -> s.B.sp_name) B.all_specs;
    ks = [ 1; 5; 10; 15; 20; 30; 40; 50 ];
    runtime_ks = [ 1; 5; 10; 20; 50 ];
    fig10_max_k = 75;
    bf_budget = 60.;
    quick = false;
    rss_budget_mb = None;
  }

let parse_args () =
  let o = default_options () in
  let rec go = function
    | [] -> ()
    | "--quick" :: rest ->
      o.quick <- true;
      o.circuits <- [ "i1"; "i3" ];
      o.ks <- [ 1; 5; 10 ];
      o.runtime_ks <- [ 1; 10 ];
      o.fig10_max_k <- 15;
      o.bf_budget <- 5.;
      go rest
    | "--circuits" :: v :: rest ->
      o.circuits <- String.split_on_char ',' v;
      go rest
    | "--bf-budget" :: v :: rest ->
      o.bf_budget <- float_of_string v;
      go rest
    | "--rss-budget-mb" :: v :: rest ->
      (match float_of_string_opt (String.trim v) with
      | Some b when b > 0. -> o.rss_budget_mb <- Some b
      | _ ->
        Printf.eprintf "bench: --rss-budget-mb must be a positive number (got %S)\n" v;
        exit 2);
      go rest
    | "--jobs" :: v :: rest ->
      (match int_of_string_opt (String.trim v) with
      | Some j when j >= 1 -> Pool.set_default_jobs j
      | Some j ->
        Printf.eprintf "bench: --jobs must be >= 1 (got %d)\n" j;
        exit 2
      | None ->
        Printf.eprintf "bench: --jobs must be a positive integer (got %S)\n" v;
        exit 2);
      go rest
    | s :: rest when String.length s > 0 && s.[0] <> '-' ->
      o.sections <- o.sections @ [ s ];
      go rest
    | s :: _ -> failwith (Printf.sprintf "unknown option %S" s)
  in
  go (List.tl (Array.to_list Sys.argv));
  if o.sections = [] then
    o.sections <-
      [
        "stats"; "table1"; "table2a"; "table2b"; "figure10"; "ablation";
        "filter"; "parallel"; "eco"; "repair"; "serve"; "kernels";
      ];
  o

let section title =
  Printf.printf "\n==================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "==================================================================\n%!"

(* Benchmarks are generated once and shared across sections. *)
let circuit_cache : (string, N.t * Topo.t) Hashtbl.t = Hashtbl.create 16

let circuit name =
  match Hashtbl.find_opt circuit_cache name with
  | Some c -> c
  | None ->
    let nl =
      match B.by_name name with
      | Some nl -> nl
      | None -> failwith (Printf.sprintf "unknown benchmark %S" name)
    in
    let c = (nl, Topo.create nl) in
    Hashtbl.replace circuit_cache name c;
    c

(* ------------------------------------------------------------------ *)
(* stats                                                              *)
(* ------------------------------------------------------------------ *)

let run_stats o =
  section "Circuit inventory (size columns of Table 2)";
  let t =
    Tt.create
      ~headers:
        [
          ("ckt", Tt.Left); ("#gates", Tt.Right); ("#nets", Tt.Right);
          ("#coupling caps", Tt.Right); ("depth", Tt.Right);
          ("avg fanout", Tt.Right);
        ]
  in
  List.iter
    (fun name ->
      let nl, _ = circuit name in
      Tt.add_row t (Stats.row (Stats.compute nl)))
    o.circuits;
  print_string (Tt.render t)

(* ------------------------------------------------------------------ *)
(* Table 1                                                            *)
(* ------------------------------------------------------------------ *)

(* A compact validation circuit: small enough that brute force can
   finish small k exhaustively, while larger k blows past the budget
   just as the paper's 1800 s cutoff did. *)
let validation_spec =
  {
    B.sp_name = "v0";
    sp_gates = 20;
    sp_inputs = 4;
    sp_depth = 4;
    sp_couplings = 24;
    sp_seed = 4242;
  }

let run_table1 o =
  section
    (Printf.sprintf
       "Table 1: proposed algorithm vs brute force (top-k addition set)\n\
        validation circuit v0 (%d gates, %d coupling caps), brute-force budget %.0f s"
       validation_spec.B.sp_gates validation_spec.B.sp_couplings o.bf_budget);
  let nl = B.generate validation_spec in
  ignore nl;
  let topo = Topo.create nl in
  let kmax = 5 in
  let t0 = wall () in
  let add_all = Addition.compute ~k:kmax topo in
  let alg_total = wall () -. t0 in
  ignore add_all;
  let t =
    Tt.create
      ~headers:
        [
          ("k", Tt.Right);
          ("proposed delay (ns)", Tt.Right); ("proposed runtime (s)", Tt.Right);
          ("brute delay (ns)", Tt.Right); ("brute runtime (s)", Tt.Right);
          ("agree", Tt.Center);
        ]
  in
  let rows = ref [] in
  List.iter
    (fun k ->
      (* per-k algorithm runtime measured with an independent run *)
      let ta = wall () in
      let addk = Addition.compute ~k topo in
      let alg_runtime = wall () -. ta in
      let alg_delay = Addition.evaluate addk k in
      let bf = BF.addition ~budget_s:o.bf_budget ~k topo in
      let agree =
        if not bf.BF.bf_completed then "-"
        else if Float.abs (bf.BF.bf_delay -. alg_delay) <= 1e-6 then "yes"
        else "no"
      in
      rows :=
        J.Obj
          ([
             ("k", J.Int k);
             ("proposed_delay_ns", J.Float alg_delay);
             ("proposed_runtime_s", J.Float alg_runtime);
             ("brute_completed", J.Bool bf.BF.bf_completed);
             ("brute_runtime_s", J.Float bf.BF.bf_runtime);
             ("agree", J.Str agree);
           ]
          @ (if bf.BF.bf_completed then
               [
                 ("brute_delay_ns", J.Float bf.BF.bf_delay);
                 ( "speedup",
                   J.Float (bf.BF.bf_runtime /. Float.max alg_runtime 1e-9) );
               ]
             else
               [
                 ("brute_evaluated", J.Int bf.BF.bf_evaluated);
                 ("brute_total", J.Int bf.BF.bf_total);
               ]))
        :: !rows;
      Tt.add_row t
        [
          Tt.cell_i k;
          Tt.cell_f ~decimals:4 alg_delay;
          Tt.cell_f ~decimals:2 alg_runtime;
          (if bf.BF.bf_completed then Tt.cell_f ~decimals:4 bf.BF.bf_delay
           else Printf.sprintf "timeout (%d/%d)" bf.BF.bf_evaluated bf.BF.bf_total);
          Tt.cell_f ~decimals:2 bf.BF.bf_runtime;
          agree;
        ])
    (List.init kmax (fun i -> i + 1));
  json_add "table1"
    (J.Obj
       [
         ("circuit", J.Str validation_spec.B.sp_name);
         ("gates", J.Int validation_spec.B.sp_gates);
         ("couplings", J.Int validation_spec.B.sp_couplings);
         ("bf_budget_s", J.Float o.bf_budget);
         ("single_run_all_k_s", J.Float alg_total);
         ("rows", J.List (List.rev !rows));
       ]);
  print_string (Tt.render t);
  Printf.printf
    "(proposed algorithm computed all of k=1..%d in %.2f s in a single run)\n%!"
    kmax alg_total

(* ------------------------------------------------------------------ *)
(* Table 2                                                            *)
(* ------------------------------------------------------------------ *)

(* Note on captions: in the paper's own data, Table 2(a) runs from the
   all-aggressor delay down toward the noiseless delay as k grows
   (elimination behaviour) and Table 2(b) rises from the noiseless
   delay (addition behaviour) — the reverse of the printed captions.
   We reproduce the data semantics and keep the paper's numbering. *)

let delay_headers o anchor_left anchor_right =
  [ ("ckt", Tt.Left); (anchor_left, Tt.Right) ]
  @ List.map (fun k -> (Printf.sprintf "k=%d" k, Tt.Right)) o.ks
  @ [ (anchor_right, Tt.Right) ]

let runtime_headers o =
  ("ckt", Tt.Left)
  :: List.map (fun k -> (Printf.sprintf "k=%d" k, Tt.Right)) o.runtime_ks

let run_table2 o ~mode =
  let label, anchor_left, anchor_right =
    match mode with
    | Engine.Elimination ->
      ( "Table 2(a): top-k elimination sets — circuit delay and runtime",
        "all agg.", "no agg." )
    | Engine.Addition ->
      ( "Table 2(b): top-k addition sets — circuit delay and runtime",
        "no agg.", "all agg." )
  in
  section label;
  let delays = Tt.create ~headers:(delay_headers o anchor_left anchor_right) in
  let runtimes = Tt.create ~headers:(runtime_headers o) in
  (* circuit generation is cached and shared, so populate the cache
     sequentially before fanning the per-circuit sweeps out *)
  List.iter (fun name -> ignore (circuit name)) o.circuits;
  let compute name =
    let _, topo = circuit name in
    let kmax = List.fold_left max 1 o.ks in
    (* one enumeration gives the sets for every cardinality *)
    let t_enum = wall () in
    let base_delay, noisy_delay, curve, stats =
      match mode with
      | Engine.Addition ->
        let a = Addition.compute ~k:kmax topo in
        ( Addition.noiseless_delay a,
          Addition.all_aggressor_delay a,
          Addition.evaluate_curve a ~ks:o.ks,
          a.Addition.result.Engine.res_stats )
      | Engine.Elimination ->
        let e = Elimination.compute ~k:kmax topo in
        ( Elimination.noiseless_delay e,
          Elimination.all_aggressor_delay e,
          Elimination.evaluate_curve e ~ks:o.ks,
          e.Elimination.result.Engine.res_stats )
    in
    let enum_runtime = wall () -. t_enum in
    let evaluate k =
      match List.find_opt (fun (k', _, _) -> k' = k) curve with
      | Some (_, _, d) -> d
      | None -> (
        match mode with
        | Engine.Addition -> base_delay
        | Engine.Elimination -> noisy_delay)
    in
    let ds = List.map (fun k -> (k, evaluate k)) o.ks in
    (* runtime column: independent per-k enumerations, like the paper;
       the all-aggressor fixpoint is shared so the figure is the
       enumeration cost *)
    let fixpoint = Iterate.run topo in
    let per_k_runtime k =
      let t0 = wall () in
      ignore (Engine.compute ~config:(Engine.default_config ~k) ~fixpoint ~mode topo);
      wall () -. t0
    in
    let per_k = List.map (fun k -> (k, per_k_runtime k)) o.runtime_ks in
    Printf.printf "  [%s done]\n%!" name;
    (name, base_delay, noisy_delay, ds, enum_runtime, stats, per_k)
  in
  (* The circuit sweeps run concurrently on the shared pool (the engine
     inside each nests on the same pool); the rows are rendered from
     the position-stable map result, so the report and the JSON are
     identical at any jobs count. *)
  let results =
    Pool.map ~chunk:1 (Pool.get_default ()) compute (Array.of_list o.circuits)
  in
  let capped = ref 0 in
  let jrows = ref [] in
  Array.iter
    (fun (name, base_delay, noisy_delay, ds, enum_runtime, stats, per_k) ->
      capped := !capped + stats.Tka_topk.Ilist.capped;
      let anchor_l, anchor_r =
        match mode with
        | Engine.Elimination -> (noisy_delay, base_delay)
        | Engine.Addition -> (base_delay, noisy_delay)
      in
      Tt.add_row delays
        ([ name; Tt.cell_f anchor_l ]
        @ List.map (fun (_, d) -> Tt.cell_f d) ds
        @ [ Tt.cell_f anchor_r ]);
      Tt.add_row runtimes
        (name
        :: List.map (fun (_, rt) -> Tt.cell_f ~decimals:2 rt) per_k);
      jrows :=
        J.Obj
          [
            ("circuit", J.Str name);
            ("noiseless_delay_ns", J.Float base_delay);
            ("all_aggressor_delay_ns", J.Float noisy_delay);
            ( "delays_ns",
              J.Obj (List.map (fun (k, d) -> (string_of_int k, J.Float d)) ds)
            );
            ("enumeration_runtime_s", J.Float enum_runtime);
            ( "per_k_runtime_s",
              J.Obj
                (List.map (fun (k, rt) -> (string_of_int k, J.Float rt)) per_k)
            );
            ("prune", json_stats stats);
          ]
        :: !jrows)
    results;
  json_add
    (match mode with
    | Engine.Elimination -> "table2a_elimination"
    | Engine.Addition -> "table2b_addition")
    (J.List (List.rev !jrows));
  Printf.printf "Circuit delay (ns):\n%s" (Tt.render delays);
  Printf.printf "Runtime of the enumeration (s):\n%s" (Tt.render runtimes);
  if !capped > 0 then
    Printf.printf
      "note: %d candidate entries were dropped by the irredundant-list \
       capacity bound (%d per cardinality)\n%!"
      !capped Tka_topk.Ilist.default_capacity

(* ------------------------------------------------------------------ *)
(* Figure 10                                                          *)
(* ------------------------------------------------------------------ *)

let run_figure10 o =
  section
    (Printf.sprintf
       "Figure 10: circuit delay vs k (1..%d), addition and elimination\n\
        (exact evaluated curves; i10 sampled every 5th k to bound runtime)"
       o.fig10_max_k);
  let circuits =
    match List.filter (fun c -> List.mem c o.circuits) [ "i1"; "i10" ] with
    | [] -> [ List.hd o.circuits ]
    | cs -> cs
  in
  List.iter
    (fun name ->
      let _, topo = circuit name in
      let kmax = o.fig10_max_k in
      let ks =
        if name = "i10" then
          List.filter (fun k -> k = 1 || k mod 5 = 0) (List.init kmax (fun i -> i + 1))
        else List.init kmax (fun i -> i + 1)
      in
      let add = Addition.compute ~k:kmax topo in
      let elim = Elimination.compute ~k:kmax topo in
      let add_curve = Addition.evaluate_curve add ~ks in
      let elim_curve = Elimination.evaluate_curve elim ~ks in
      Printf.printf "\n%s: noiseless %.4f ns, all-aggressor %.4f ns\n" name
        (Addition.noiseless_delay add)
        (Addition.all_aggressor_delay add);
      Printf.printf "k,addition_delay_ns,elimination_delay_ns\n";
      List.iter
        (fun k ->
          let find curve =
            Option.map (fun (_, _, d) -> d)
              (List.find_opt (fun (k', _, _) -> k' = k) curve)
          in
          match (find add_curve, find elim_curve) with
          | Some da, Some de -> Printf.printf "%d,%.4f,%.4f\n" k da de
          | _ -> ())
        ks;
      Printf.printf "%!")
    circuits

(* ------------------------------------------------------------------ *)
(* Ablations                                                          *)
(* ------------------------------------------------------------------ *)

(* How much do the paper's two key devices (pseudo aggressors,
   higher-order aggressors) and the irredundant-list capacity bound
   actually buy? Objective = the engine's top-k noise estimate at the
   sink; runtime = enumeration CPU time. *)
let run_ablation o =
  section "Ablations: pseudo aggressors, higher-order aggressors, I-list capacity";
  let name = List.hd o.circuits in
  let _, topo = circuit name in
  let k = min 20 (List.fold_left max 10 o.ks) in
  let t =
    Tt.create
      ~headers:
        [
          ("configuration", Tt.Left);
          (Printf.sprintf "top-%d objective (ns)" k, Tt.Right);
          ("exact delay (ns)", Tt.Right);
          ("runtime (s)", Tt.Right);
          ("candidates", Tt.Right);
          ("dominated", Tt.Right);
          ("capped", Tt.Right);
        ]
  in
  let row label ~capacity ~use_pseudo ~use_higher_order =
    let config =
      { (Engine.default_config ~k) with Engine.capacity; use_pseudo; use_higher_order }
    in
    let t0 = wall () in
    let r = Engine.compute ~config ~mode:Engine.Addition topo in
    let rt = wall () -. t0 in
    let obj =
      match r.Engine.res_per_k.(k) with Some c -> c.Engine.ch_objective | None -> 0.
    in
    let exact =
      match r.Engine.res_per_k.(k) with
      | Some c -> Addition.evaluate_set topo c.Engine.ch_set
      | None -> r.Engine.res_noiseless_delay
    in
    let st = r.Engine.res_stats in
    Tt.add_row t
      [
        label;
        Tt.cell_f ~decimals:4 obj;
        Tt.cell_f ~decimals:4 exact;
        Tt.cell_f ~decimals:2 rt;
        Tt.cell_i st.Tka_topk.Ilist.candidates;
        Tt.cell_i st.Tka_topk.Ilist.dominated;
        Tt.cell_i st.Tka_topk.Ilist.capped;
      ]
  in
  let cap = Tka_topk.Ilist.default_capacity in
  row "full algorithm" ~capacity:cap ~use_pseudo:true ~use_higher_order:true;
  row "no pseudo aggressors" ~capacity:cap ~use_pseudo:false ~use_higher_order:true;
  row "no higher-order aggressors" ~capacity:cap ~use_pseudo:true ~use_higher_order:false;
  row "neither device" ~capacity:cap ~use_pseudo:false ~use_higher_order:false;
  row "capacity 4" ~capacity:4 ~use_pseudo:true ~use_higher_order:true;
  row "capacity 8" ~capacity:8 ~use_pseudo:true ~use_higher_order:true;
  row "capacity 32" ~capacity:32 ~use_pseudo:true ~use_higher_order:true;
  Printf.printf "circuit %s, top-%d addition analysis\n%s" name k (Tt.render t)

(* ------------------------------------------------------------------ *)
(* Aggressor candidate filtering                                      *)
(* ------------------------------------------------------------------ *)

(* The pre-engine candidate filter (docs/filtering.md): r-reduction
   and enumeration speedup per mode on the elimination engine, with
   the contract the verify oracle enforces also pinned here — [none]
   must be bit-identical to the default run, whole Elimination.t
   compared field by field, and CI gates on the resulting
   ["identical"] flag. The r-reduction numbers come from
   Filter.survey, a pure walk over every victim, so they are the same
   at any jobs count; runtimes are min-of-2 with a shared noise
   fixpoint so the figure is the enumeration itself. *)
let run_filter o =
  let module Filter = Tka_filter.Filter in
  let module Fmode = Tka_filter.Mode in
  section "Aggressor candidate filter: r-reduction and engine speedup";
  let names =
    if o.quick then [ List.hd o.circuits ]
    else
      let n = List.length o.circuits in
      List.sort_uniq String.compare
        [
          List.hd o.circuits;
          List.nth o.circuits (n / 2);
          List.nth o.circuits (n - 1);
        ]
  in
  let k = if o.quick then 5 else 10 in
  let t =
    Tt.create
      ~headers:
        [
          ("ckt", Tt.Left); ("filter", Tt.Left); ("runtime (s)", Tt.Right);
          ("speedup", Tt.Right); ("r before", Tt.Right); ("r after", Tt.Right);
          ("dropped", Tt.Right); ("derated", Tt.Right); ("top-k delta", Tt.Right);
        ]
  in
  let window_speedup = ref 0. in
  let jcircuits =
    List.map
      (fun name ->
        let _, topo = circuit name in
        let fixpoint = Iterate.run topo in
        let windows = Iterate.windows fixpoint in
        let run_mode m =
          let config = { (Engine.default_config ~k) with Engine.filter = m } in
          let best = ref Float.infinity in
          let res = ref None in
          for _ = 1 to 2 do
            let t0 = wall () in
            let r = Engine.compute ~config ~fixpoint ~mode:Engine.Elimination topo in
            let dt = wall () -. t0 in
            if dt < !best then best := dt;
            res := Some r
          done;
          (!best, Option.get !res)
        in
        let rt_none, r_none = run_mode Fmode.Off in
        let jmodes =
          List.map
            (fun m ->
              let rt, r = if m = Fmode.Off then (rt_none, r_none) else run_mode m in
              let sv =
                Filter.survey (Filter.prepare ~mode:m ~windows topo)
              in
              let topk_delta =
                let d = ref 0 in
                for i = 1 to k do
                  let set r =
                    Option.map
                      (fun c -> c.Engine.ch_set)
                      r.Engine.res_per_k.(i)
                  in
                  if not (Option.equal CS.equal (set r_none) (set r)) then incr d
                done;
                !d
              in
              let speedup = rt_none /. Float.max rt 1e-9 in
              if m = Fmode.Window then
                window_speedup := Float.max !window_speedup speedup;
              Tt.add_row t
                [
                  name; Fmode.to_string m; Tt.cell_f ~decimals:3 rt;
                  Tt.cell_f ~decimals:2 speedup;
                  Tt.cell_i sv.Filter.sv_candidates;
                  Tt.cell_i sv.Filter.sv_kept;
                  Tt.cell_i (Filter.sv_dropped sv);
                  Tt.cell_i sv.Filter.sv_derated;
                  Tt.cell_i topk_delta;
                ];
              ( Fmode.to_string m,
                J.Obj
                  [
                    ("runtime_s", J.Float rt);
                    ("speedup", J.Float speedup);
                    ("r_before", J.Int sv.Filter.sv_candidates);
                    ("r_after", J.Int sv.Filter.sv_kept);
                    ("derated", J.Int sv.Filter.sv_derated);
                    ("dropped_window", J.Int sv.Filter.sv_dropped_window);
                    ("dropped_constant", J.Int sv.Filter.sv_dropped_constant);
                    ( "dropped_correlated",
                      J.Int sv.Filter.sv_dropped_correlated );
                    ("topk_delta", J.Int topk_delta);
                  ] ))
            Fmode.all
        in
        (name, J.Obj jmodes))
      names
  in
  print_string (Tt.render t);
  (* bit-identity of [--filter none] with the default, on the smallest
     circuit of the sweep: the full Elimination.t (both engines, exact
     re-ranking, runtimes excluded) field by field *)
  let _, topo0 = circuit (List.hd names) in
  let fix0 = Iterate.run topo0 in
  let identical =
    Tka_incr.Eco.elim_identical
      (Elimination.compute ~fixpoint:fix0 ~k topo0)
      (Elimination.compute ~filter:Fmode.Off ~fixpoint:fix0 ~k topo0)
  in
  Printf.printf "filter none bit-identical to default: %s\n"
    (if identical then "yes" else "NO (filter correctness violation!)");
  Printf.printf "best window-mode enumeration speedup: %.2fx\n%!"
    !window_speedup;
  if not identical then exit 1;
  json_add "filter"
    (J.Obj
       [
         ("identical", J.Bool identical);
         ("window_speedup", J.Float !window_speedup);
         ("k", J.Int k);
         ("circuits", J.Obj jcircuits);
       ])

(* ------------------------------------------------------------------ *)
(* Parallel speedup                                                   *)
(* ------------------------------------------------------------------ *)

(* The same full engine sweep at jobs=1 and at the pool's configured
   jobs (at least 2, so the parallel path is always exercised), with a
   shared noise fixpoint so the figure is the enumeration itself. The
   two results are cross-checked set by set — the determinism contract
   of docs/parallelism.md — and the speedup lands in BENCH_topk.json. *)
let run_parallel o =
  let name = List.nth o.circuits (List.length o.circuits - 1) in
  let jobs_before = Pool.default_jobs () in
  let par_jobs = max 2 jobs_before in
  let k = if o.quick then 5 else 10 in
  section
    (Printf.sprintf
       "Parallel sweep: %s addition k=%d, jobs=1 vs jobs=%d" name k par_jobs);
  let _, topo = circuit name in
  let fixpoint = Iterate.run topo in
  let run_at jobs =
    Pool.set_default_jobs jobs;
    let t0 = wall () in
    let r =
      Engine.compute ~config:(Engine.default_config ~k) ~fixpoint
        ~mode:Engine.Addition topo
    in
    (wall () -. t0, r)
  in
  let t_seq, r_seq = run_at 1 in
  let t_par, r_par = run_at par_jobs in
  Pool.set_default_jobs jobs_before;
  let same_choice a b =
    match (a, b) with
    | None, None -> true
    | Some a, Some b ->
      CS.to_list a.Engine.ch_set = CS.to_list b.Engine.ch_set
      && a.Engine.ch_objective = b.Engine.ch_objective
      && a.Engine.ch_sink = b.Engine.ch_sink
    | _ -> false
  in
  let deterministic =
    Array.for_all2 same_choice r_seq.Engine.res_per_k r_par.Engine.res_per_k
  in
  let speedup = t_seq /. Float.max t_par 1e-9 in
  Printf.printf "  jobs=1: %.2f s   jobs=%d: %.2f s   speedup %.2fx\n" t_seq
    par_jobs t_par speedup;
  Printf.printf "  results identical across jobs: %s\n%!"
    (if deterministic then "yes" else "NO (determinism violation!)");
  if not deterministic then exit 1;
  json_add "parallel"
    (J.Obj
       [
         ("circuit", J.Str name);
         ("k", J.Int k);
         ("jobs", J.Int par_jobs);
         ("t_seq_s", J.Float t_seq);
         ("t_par_s", J.Float t_par);
         ("speedup", J.Float speedup);
         ("deterministic", J.Bool deterministic);
       ])

(* ------------------------------------------------------------------ *)
(* Incremental ECO re-analysis                                        *)
(* ------------------------------------------------------------------ *)

(* The paper's fix loop on the largest circuit of the run: full top-k
   elimination analysis, remove the top-1 set's coupling, then
   re-verify both from scratch and through the Tka_incr cache. The
   incremental rerun must be bit-identical (hard failure otherwise)
   and substantially faster; both figures land in the `eco` section of
   BENCH_topk.json. *)
let run_eco o =
  let name = List.nth o.circuits (List.length o.circuits - 1) in
  let k = if o.quick then 5 else 10 in
  section
    (Printf.sprintf "Incremental ECO re-analysis: %s, fix top-1 of k=%d" name k);
  let nl, _ = circuit name in
  let report, _ = Tka_incr.Eco.run ~k ~fix_k:1 nl in
  Printf.printf "  mitigation: %d coupling(s) removed, %d nets dirty\n"
    (List.length report.Tka_incr.Eco.eco_edits)
    report.Tka_incr.Eco.eco_dirty_nets;
  Printf.printf "  delay: %.4f ns noisy -> %.4f ns after fix\n"
    report.Tka_incr.Eco.eco_delay_noisy report.Tka_incr.Eco.eco_delay_fixed;
  Printf.printf
    "  re-analysis: full %.2f s, incremental %.2f s (%.1fx, %d hits / %d \
     misses)\n"
    report.Tka_incr.Eco.eco_t_full_s report.Tka_incr.Eco.eco_t_incr_s
    report.Tka_incr.Eco.eco_speedup report.Tka_incr.Eco.eco_cache_hits
    report.Tka_incr.Eco.eco_cache_misses;
  Printf.printf "  warm re-verify (all hits): %.2f s (%.1fx)\n"
    report.Tka_incr.Eco.eco_t_warm_s report.Tka_incr.Eco.eco_speedup_warm;
  Printf.printf "  results identical to scratch: %s\n%!"
    (if report.Tka_incr.Eco.eco_identical then "yes"
     else "NO (incremental correctness violation!)");
  if not report.Tka_incr.Eco.eco_identical then exit 1;
  json_add "eco" (Tka_incr.Eco.report_json report)

(* ------------------------------------------------------------------ *)
(* repair: autonomous ECO loop                                        *)
(* ------------------------------------------------------------------ *)

(* The Tka_incr.Repair driver on the largest circuit of the run:
   recover a fraction of the total delay noise under a small edit
   budget, journal every trial, and verify the final incremental state
   against a scratch re-analysis (hard failure when not bit-identical).
   The headline artifact is the delay-recovered-per-edit curve in the
   `repair` section of BENCH_topk.json. *)
let run_repair o =
  let module Repair = Tka_incr.Repair in
  let name =
    if o.quick then List.hd o.circuits
    else List.nth o.circuits (List.length o.circuits - 1)
  in
  let k = if o.quick then 5 else 10 in
  let budget = if o.quick then 4 else 8 in
  let recover = 0.25 in
  section
    (Printf.sprintf
       "Autonomous ECO repair: %s, recover %.0f%% of delay noise, budget %d \
        edits (k=%d)"
       name (100. *. recover) budget k);
  let nl, _ = circuit name in
  let report, _, _ = Repair.run ~k ~fix_k:1 ~budget ~recover nl in
  Printf.printf "  target: %.4f ns (noisy %.4f, noiseless %.4f)\n"
    report.Repair.rp_target_delay report.Repair.rp_initial_delay
    report.Repair.rp_noiseless_delay;
  Printf.printf
    "  loop: %d iterations, %d edits applied, %d candidates rejected -> %s\n"
    report.Repair.rp_iterations report.Repair.rp_edits_applied
    report.Repair.rp_rejected
    (Repair.outcome_name report.Repair.rp_outcome);
  Printf.printf "  delay recovered per edit:\n";
  List.iter
    (fun (edits, delay) ->
      Printf.printf "    %2d edit(s): %.4f ns (%+.1f ps)\n" edits delay
        (1000. *. (delay -. report.Repair.rp_initial_delay)))
    report.Repair.rp_curve;
  Printf.printf "  final state identical to scratch: %s\n%!"
    (if report.Repair.rp_identical then "yes"
     else "NO (incremental correctness violation!)");
  if not report.Repair.rp_identical then exit 1;
  json_add "repair" (Repair.report_json report)

(* ------------------------------------------------------------------ *)
(* serve: daemon load test                                            *)
(* ------------------------------------------------------------------ *)

(* An in-process tka serve daemon on a temp Unix socket, driven by the
   Loadgen closed loop: N concurrent client sessions, each loading the
   same design and issuing a deterministic analyze / what-if / ECO
   mix. Reports sustained qps, exact p50/p95/p99 latency and the
   shared victim cache's hit rate as the clients observed it — the
   `serve` section of BENCH_topk.json. *)
let run_serve o =
  let module Server = Tka_serve.Server in
  let module Client = Tka_serve.Client in
  let module Loadgen = Tka_serve.Loadgen in
  let name =
    if o.quick then List.hd o.circuits
    else if List.mem "i5" o.circuits then "i5"
    else List.hd o.circuits
  in
  let k = if o.quick then 5 else 10 in
  let clients = if o.quick then 3 else 4 in
  let requests = if o.quick then 8 else 25 in
  section
    (Printf.sprintf
       "serve: daemon load test — %s, k=%d, %d clients x %d requests" name k
       clients requests);
  let nl, _ = circuit name in
  let body = Tka_circuit.Netlist_format.print nl in
  let dir = Filename.temp_file "tka-serve-bench" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let sock = Filename.concat dir "bench.sock" in
  let srv =
    Server.create ~default_k:k ~lookup:Tka_cell.Default_lib.find ()
  in
  let listener = Server.listen_unix sock in
  let daemon = Thread.create (fun () -> Server.serve srv ~listeners:[ listener ]) () in
  let finish () =
    Server.stop srv;
    Thread.join daemon;
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  in
  let report =
    Fun.protect ~finally:finish (fun () ->
        Loadgen.run
          ~connect:(fun () -> Client.connect_unix sock)
          ~netlist:body ~k ~clients ~requests ())
  in
  Printf.printf
    "  %d replies in %.2f s: %.1f qps (%d ok, %d overloaded, %d timeout, %d \
     errors)\n"
    report.Loadgen.lg_requests report.Loadgen.lg_elapsed_s
    report.Loadgen.lg_qps report.Loadgen.lg_ok report.Loadgen.lg_overloaded
    report.Loadgen.lg_timeout report.Loadgen.lg_errors;
  Printf.printf "  mix: %d analyze, %d what-if, %d eco\n"
    report.Loadgen.lg_analyze report.Loadgen.lg_whatif report.Loadgen.lg_eco;
  Printf.printf "  latency ms: p50 %.1f  p95 %.1f  p99 %.1f  max %.1f\n"
    report.Loadgen.lg_p50_ms report.Loadgen.lg_p95_ms report.Loadgen.lg_p99_ms
    report.Loadgen.lg_max_ms;
  Printf.printf "  shared victim cache: %d hits / %d misses (%.1f%% hit rate)\n%!"
    report.Loadgen.lg_cache_hits report.Loadgen.lg_cache_misses
    (100. *. report.Loadgen.lg_cache_hit_rate);
  json_add "serve" (Loadgen.to_json report)

(* ------------------------------------------------------------------ *)
(* Kernels (bechamel)                                                 *)
(* ------------------------------------------------------------------ *)

module Pwl = Tka_waveform.Pwl

(* Reference implementations of the PWL kernels in the pre-rewrite
   list-and-binary-search style: allocate the merged abscissa grid,
   [Pwl.eval] (O(log n) segment lookup) both operands at every grid
   point, left-fold the n-ary variants pairwise. These are the
   baseline the kernels section times the linear-merge rewrites
   against; they intentionally mirror the old code, not an optimal
   implementation. *)
module Ref_kernels = struct
  let x_eps = 1e-12

  let merged_grid a b =
    let xs =
      List.map fst (Pwl.breakpoints a) @ List.map fst (Pwl.breakpoints b)
      |> List.sort_uniq Float.compare
    in
    let rec dedupe last = function
      | [] -> []
      | x :: tl ->
        if x -. last <= x_eps then dedupe last tl else x :: dedupe x tl
    in
    match xs with [] -> [] | x :: tl -> x :: dedupe x tl

  let combine2 f a b =
    Pwl.create
      (List.map (fun x -> (x, f (Pwl.eval a x) (Pwl.eval b x))) (merged_grid a b))

  let add a b = combine2 ( +. ) a b

  let sum = function
    | [] -> Pwl.zero
    | w :: ws -> List.fold_left add w ws

  let max2 a b =
    let grid = Array.of_list (merged_grid a b) in
    let n = Array.length grid in
    let pts = ref [] in
    let push x y = pts := (x, y) :: !pts in
    let value x = Float.max (Pwl.eval a x) (Pwl.eval b x) in
    for i = 0 to n - 1 do
      let x = grid.(i) in
      push x (value x);
      if i < n - 1 then begin
        let x' = grid.(i + 1) in
        let d0 = Pwl.eval a x -. Pwl.eval b x
        and d1 = Pwl.eval a x' -. Pwl.eval b x' in
        if (d0 > 0. && d1 < 0.) || (d0 < 0. && d1 > 0.) then begin
          let xc = x +. ((x' -. x) *. d0 /. (d0 -. d1)) in
          if xc > x +. x_eps && xc < x' -. x_eps then push xc (value xc)
        end
      end
    done;
    Pwl.create (List.rev !pts)

  let max_list = function
    | [] -> invalid_arg "max_list"
    | w :: ws -> List.fold_left max2 w ws

  let dominates ?(eps = 1e-9) a b =
    List.for_all
      (fun x -> Pwl.eval a x >= Pwl.eval b x -. eps)
      (merged_grid a b)

  let peak w =
    List.fold_left
      (fun acc (_, y) -> Float.max acc y)
      Float.neg_infinity (Pwl.breakpoints w)
end

(* Old-vs-new microbenchmarks of the rewritten kernels on synthetic
   noise envelopes sized like the engine's working set. Timings and
   speedups land in the "kernels" section of BENCH_topk.json; CI
   asserts speedup >= 1.0 for each kernel. *)
let run_kernel_rewrite o =
  section "PWL kernel rewrite: reference (list + binary search) vs linear merge";
  let envelopes =
    List.init 24 (fun i ->
        let fi = float_of_int i in
        let pulse =
          Tka_waveform.Pulse.make ~onset:0.
            ~peak:(0.08 +. (0.015 *. float_of_int (i mod 9)))
            ~rise:(0.02 +. (0.002 *. float_of_int (i mod 5)))
            ~decay:(0.05 +. (0.004 *. float_of_int (i mod 7)))
        in
        let lo = 0.3 +. (0.04 *. fi) in
        let window = Tka_util.Interval.make lo (lo +. 0.15 +. (0.02 *. fi)) in
        Tka_waveform.Envelope.waveform
          (Tka_waveform.Envelope.of_pulse ~window pulse))
  in
  let earr = Array.of_list envelopes in
  let ne = Array.length earr in
  (* groups of 8 operands, the shape of Envelope.combine at a victim *)
  let groups =
    List.init (ne - 8) (fun i -> List.init 8 (fun j -> earr.(i + j)))
  in
  let iters = if o.quick then 30 else 100 in
  (* best of three timed blocks, each preceded by a major collection:
     the blocks are short, so one stray major slice would otherwise
     dominate a measurement *)
  let time reps f =
    f ();
    let best = ref Float.infinity in
    for _ = 1 to 3 do
      Gc.major ();
      let t0 = wall () in
      for _ = 1 to reps do
        f ()
      done;
      let dt = wall () -. t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  let sink = ref 0. in
  let keep w = sink := !sink +. Pwl.last_x w in
  let keepb b = if b then sink := !sink +. 1. in
  (* Envelope memoisation (Envelope_builder.of_directed_memo): the
     exact re-ranking loops re-evaluate nearby coupling sets, which
     rebuild mostly identical aggressor envelopes pass after pass; a
     memo shared across runs turns those into table hits. Old = fresh
     envelopes on every fixpoint run, new = one memo shared across all
     runs of the block. Results are bitwise-identical by construction
     and asserted so here. *)
  let memo_nl = B.generate { validation_spec with B.sp_name = "kmemo" } in
  let memo_topo = Topo.create memo_nl in
  let memo_sets = List.init 6 (fun i -> CS.of_list [ 2 * i; (2 * i) + 1 ]) in
  let memo = Tka_noise.Envelope_builder.create_memo () in
  List.iter
    (fun s ->
      let delay em =
        Iterate.circuit_delay
          (Iterate.run ~active:(CS.contains_fn s) ?env_memo:em memo_topo)
      in
      if not (Float.equal (delay None) (delay (Some memo))) then
        failwith "envelope_memo kernel: memoised delay differs from fresh")
    memo_sets;
  let kernels =
    [
      ( "envelope_memo",
        (fun () ->
          List.iter
            (fun s ->
              sink :=
                !sink
                +. Iterate.circuit_delay
                     (Iterate.run ~active:(CS.contains_fn s) memo_topo))
            memo_sets),
        fun () ->
          List.iter
            (fun s ->
              sink :=
                !sink
                +. Iterate.circuit_delay
                     (Iterate.run ~active:(CS.contains_fn s) ~env_memo:memo
                        memo_topo))
            memo_sets );
      ( "dominates",
        (fun () ->
          for i = 0 to ne - 1 do
            for j = 0 to ne - 1 do
              keepb (Ref_kernels.dominates earr.(i) earr.(j))
            done
          done),
        fun () ->
          for i = 0 to ne - 1 do
            for j = 0 to ne - 1 do
              keepb (Pwl.dominates earr.(i) earr.(j))
            done
          done );
      ( "add",
        (fun () ->
          for i = 0 to ne - 2 do
            keep (Ref_kernels.add earr.(i) earr.(i + 1))
          done),
        fun () ->
          for i = 0 to ne - 2 do
            keep (Pwl.add earr.(i) earr.(i + 1))
          done );
      ( "sum8",
        (fun () -> List.iter (fun g -> keep (Ref_kernels.sum g)) groups),
        fun () -> List.iter (fun g -> keep (Pwl.sum g)) groups );
      ( "max_list8",
        (fun () -> List.iter (fun g -> keep (Ref_kernels.max_list g)) groups),
        fun () -> List.iter (fun g -> keep (Pwl.max_list g)) groups );
      ( "peak",
        (fun () ->
          for _ = 1 to 50 do
            Array.iter (fun w -> sink := !sink +. Ref_kernels.peak w) earr
          done),
        fun () ->
          for _ = 1 to 50 do
            Array.iter (fun w -> sink := !sink +. Pwl.max_value w) earr
          done );
    ]
  in
  let t =
    Tt.create
      ~headers:
        [
          ("kernel", Tt.Left); ("reference (ms)", Tt.Right);
          ("linear merge (ms)", Tt.Right); ("speedup", Tt.Right);
        ]
  in
  let jfields =
    List.map
      (fun (name, old_f, new_f) ->
        let t_old = time iters old_f in
        let t_new = time iters new_f in
        let speedup = t_old /. Float.max t_new 1e-12 in
        Tt.add_row t
          [
            name;
            Tt.cell_f ~decimals:2 (1e3 *. t_old);
            Tt.cell_f ~decimals:2 (1e3 *. t_new);
            Tt.cell_f ~decimals:1 speedup;
          ];
        ( name,
          J.Obj
            [
              ("t_old_s", J.Float t_old);
              ("t_new_s", J.Float t_new);
              ("speedup", J.Float speedup);
            ] ))
      kernels
  in
  ignore !sink;
  json_add "kernels" (J.Obj jfields);
  print_string (Tt.render t)

let run_kernels () =
  section "Computational kernels (bechamel, monotonic clock)";
  let open Bechamel in
  let open Toolkit in
  let _, topo = circuit "i1" in
  let pulse = Tka_waveform.Pulse.make ~onset:0. ~peak:0.2 ~rise:0.03 ~decay:0.08 in
  let window = Tka_util.Interval.make 0.4 0.6 in
  let e1 = Tka_waveform.Envelope.of_pulse ~window pulse in
  let e2 =
    Tka_waveform.Envelope.of_pulse ~window:(Tka_util.Interval.make 0.5 0.8) pulse
  in
  let victim = Tka_waveform.Transition.make ~t50:0.6 ~slew:0.05 () in
  let tests =
    [
      Test.make ~name:"envelope.of_pulse (Fig 2)"
        (Staged.stage (fun () ->
             ignore (Tka_waveform.Envelope.of_pulse ~window pulse)));
      Test.make ~name:"envelope.add (Fig 3)"
        (Staged.stage (fun () -> ignore (Tka_waveform.Envelope.add e1 e2)));
      Test.make ~name:"delay_noise (superposition)"
        (Staged.stage (fun () ->
             ignore (Tka_waveform.Envelope.delay_noise ~victim e1)));
      Test.make ~name:"dominance check"
        (Staged.stage (fun () -> ignore (Tka_waveform.Envelope.encapsulates e1 e2)));
      Test.make ~name:"noiseless STA of i1"
        (Staged.stage (fun () -> ignore (Tka_sta.Analysis.run topo)));
      Test.make ~name:"iterative noise analysis of i1"
        (Staged.stage (fun () -> ignore (Iterate.run topo)));
      Test.make ~name:"top-5 addition enumeration of i1"
        (Staged.stage (fun () ->
             ignore
               (Engine.compute
                  ~config:(Engine.default_config ~k:5)
                  ~mode:Engine.Addition topo)));
    ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let instances = Instance.[ monotonic_clock ] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let ols =
        Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
      in
      let results = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "%-36s %14.1f ns/run\n" name est
          | Some _ | None -> Printf.printf "%-36s (no estimate)\n" name)
        results)
    tests;
  Printf.printf "%!"

(* ------------------------------------------------------------------ *)
(* Main                                                               *)
(* ------------------------------------------------------------------ *)
(* table2x: synthetic scaling beyond the Table 2 suite                *)
(* ------------------------------------------------------------------ *)

(* Runtime and peak-RSS scaling curves on the synthetic table2x
   circuits (10^5 nets; 10^6 as well outside --quick). The Addition /
   Elimination re-ranking loop re-runs the noise fixpoint once per
   candidate set and is out of reach at these sizes, so the section
   times exactly the work the scaling machinery targets: generation,
   topo construction (incl. cone sharding), the base fixpoint, and the
   full engine sweep (pseudo + higher-order aggressors) at k=5.

   Peak RSS is the process high-water mark, so a budget check is only
   meaningful when this section runs alone:
     bench/main.exe table2x --quick --rss-budget-mb 2048 *)
let run_table2x o =
  let sizes = if o.quick then [ 100_000 ] else [ 100_000; 1_000_000 ] in
  let k = 5 in
  section
    (Printf.sprintf "table2x: synthetic scaling sweep (k=%d, jobs=%d)" k
       (Pool.default_jobs ()));
  Printf.printf "  %9s %9s %9s %6s %7s %7s %7s %9s %8s\n" "nets" "gates"
    "couplings" "shards" "gen_s" "topo_s" "fix_s" "sweep_s" "rss_mb";
  let rows =
    List.map
      (fun nets ->
        let spec = T2x.spec ~nets () in
        let t0 = wall () in
        let nl = T2x.generate spec in
        let gen_s = wall () -. t0 in
        let t1 = wall () in
        let topo = Topo.create nl in
        let topo_s = wall () -. t1 in
        let shards = Array.length (Topo.cone_shards topo) in
        let t2 = wall () in
        let fixpoint = Iterate.run topo in
        let fix_s = wall () -. t2 in
        let t3 = wall () in
        let res =
          Engine.compute ~config:(Engine.default_config ~k) ~fixpoint
            ~mode:Engine.Addition topo
        in
        let sweep_s = wall () -. t3 in
        let peak = Rss.peak_bytes () in
        let rss_mb =
          match peak with Some b -> float_of_int b /. 1048576. | None -> Float.nan
        in
        Printf.printf "  %9d %9d %9d %6d %7.2f %7.2f %7.2f %9.2f %8.1f\n%!"
          (N.num_nets nl) (N.num_gates nl) (N.num_couplings nl) shards gen_s
          topo_s fix_s sweep_s rss_mb;
        J.Obj
          ([
             ("circuit", J.Str spec.T2x.tx_name);
             ("nets", J.Int (N.num_nets nl));
             ("gates", J.Int (N.num_gates nl));
             ("couplings", J.Int (N.num_couplings nl));
             ("shards", J.Int shards);
             ("k", J.Int k);
             ("gen_s", J.Float gen_s);
             ("topo_s", J.Float topo_s);
             ("fix_s", J.Float fix_s);
             ("sweep_s", J.Float sweep_s);
             ("est_delay_ns", J.Float (Engine.estimated_delay res k));
           ]
          @ match peak with
            | Some b -> [ ("peak_rss_mb", J.Float (float_of_int b /. 1048576.)) ]
            | None -> []))
      sizes
  in
  json_add "table2x" (J.List rows);
  match o.rss_budget_mb with
  | None -> ()
  | Some budget -> (
    match Rss.peak_bytes () with
    | None ->
      Printf.printf "  rss budget: peak RSS unsupported on this platform, skipping check\n%!"
    | Some b ->
      let peak_mb = float_of_int b /. 1048576. in
      let ok = peak_mb <= budget in
      Printf.printf "  rss budget: peak %.1f MB vs budget %.1f MB: %s\n%!" peak_mb
        budget
        (if ok then "ok" else "EXCEEDED");
      if not ok then exit 1)

(* ------------------------------------------------------------------ *)

let () =
  Tka_obs.Log.set_reporter (Tka_obs.Log.text_reporter ());
  Tka_obs.Log.set_level (Some Tka_obs.Log.Warn);
  Tka_obs.Log.set_from_env ();
  (* an invalid TKA_JOBS would otherwise silently fall through to the
     default pool sizing *)
  (match Pool.env_jobs_error () with
  | Some msg ->
    Printf.eprintf "bench: %s\n" msg;
    exit 2
  | None -> ());
  let o = parse_args () in
  let t0 = wall () in
  Printf.printf
    "tka benchmark harness — reproduction of 'Top-k Aggressors Sets in Delay \
     Noise Analysis' (DAC 2007)\ncircuits: %s%s\n"
    (String.concat ", " o.circuits)
    (if o.quick then " (quick mode)" else "");
  (* per-section wall times feed both BENCH_topk.json and the history
     record: section-level granularity is what bench-diff thresholds *)
  let section_times = ref [] in
  let timed name f =
    let t0 = wall () in
    f ();
    section_times := !section_times @ [ (name, wall () -. t0) ]
  in
  List.iter
    (fun name ->
      timed name (fun () ->
          match name with
          | "stats" -> run_stats o
          | "table1" -> run_table1 o
          | "table2a" -> run_table2 o ~mode:Engine.Elimination
          | "table2b" -> run_table2 o ~mode:Engine.Addition
          | "figure10" -> run_figure10 o
          | "ablation" -> run_ablation o
          | "filter" -> run_filter o
          | "parallel" -> run_parallel o
          | "eco" -> run_eco o
          | "repair" -> run_repair o
          | "serve" -> run_serve o
          | "kernels" ->
            run_kernel_rewrite o;
            run_kernels ()
          | "table2x" -> run_table2x o
          | s -> failwith (Printf.sprintf "unknown section %S" s)))
    o.sections;
  let total = wall () -. t0 in
  let doc =
    J.Obj
      ([
         ("suite", J.Str "tka top-k aggressor benchmarks");
         ("quick", J.Bool o.quick);
         ("jobs", J.Int (Pool.default_jobs ()));
         ("circuits", J.List (List.map (fun c -> J.Str c) o.circuits));
         ("sections", J.List (List.map (fun s -> J.Str s) o.sections));
         ( "section_runtime_s",
           J.Obj (List.map (fun (s, t) -> (s, J.Float t)) !section_times) );
       ]
      @ !json_out
      @ [ ("total_runtime_s", J.Float total) ])
  in
  J.write_file "BENCH_topk.json" doc;
  let record =
    Tka_prof.Bench_history.make
      ~jobs:(Pool.default_jobs ())
      ~quick:o.quick ~circuits:o.circuits ~sections:!section_times
      ~total_s:total ()
  in
  Tka_prof.Bench_history.append "BENCH_history.ndjson" record;
  Printf.printf "\nwrote BENCH_topk.json (+ BENCH_history.ndjson record)\n";
  Printf.printf "total benchmark time: %.1f s\n%!" (wall () -. t0)
