(** Aggressor-filter modes, selectable on both engines.

    - [Off] ("none"): every geometric coupling is a candidate aggressor
      — the engines' historical behaviour, bit-identical.
    - [Window]: drop aggressors whose switching window provably cannot
      overlap the victim's sensitive interval (using the windows the
      STA pass already computes); de-rate partial overlaps by the
      overlap fraction.
    - [Logic]: window filtering plus a lightweight implication analysis
      over the netlist (constant propagation and single-gate pairwise
      implications) removing aggressors whose transition direction is
      logically incompatible with attacking the victim.

    See [docs/filtering.md] for the soundness contract of each mode. *)

type t = Off | Window | Logic

val all : t list
(** [[Off; Window; Logic]]. *)

val to_string : t -> string
(** ["none"], ["window"], ["logic"] — the CLI / RPC vocabulary. *)

val of_string : string -> t option
(** Inverse of {!to_string} (also accepts ["off"] for [Off]). *)

val to_int : t -> int
(** Stable small-int encoding, hashed into incremental-cache
    fingerprints. Never renumber. *)

val pp : Format.formatter -> t -> unit
