(** De-rating of partially overlapping aggressors.

    When an aggressor's reach straddles the edge of the victim's
    sensitive interval, dropping it would lose noise and keeping it at
    full strength over-counts placements that cannot matter. Window
    mode instead scales the aggressor's envelope by the fraction of its
    reach that overlaps the sensitive interval. *)

val factor :
  reach:Tka_util.Interval.t -> sensitive:Tka_util.Interval.t -> float
(** [factor ~reach ~sensitive] in [\[0, 1\]]: [width (reach ∩ sensitive)
    / width reach]. 1 when [reach] is contained in [sensitive] (or is a
    point inside it), 0 when they are disjoint. Fed to
    [Envelope.scale], which is pointwise decreasing — de-rating can
    only shrink objectives, never inflate them. *)
