module N = Tka_circuit.Netlist
module Topo = Tka_circuit.Topo

(* ------------------------------------------------------------------ *)
(* Boolean expressions over input pin names, parsed from the informal
   [Cell.logic] strings ("!(A*B)", "!((A+B)*C)", "A^B", ...).          *)
(* ------------------------------------------------------------------ *)

type expr =
  | Var of string
  | Not of expr
  | And of expr * expr
  | Or of expr * expr
  | Xor of expr * expr

exception Parse_error

(* Grammar (precedence low to high):
     expr   := term (('+' | '^') term)*
     term   := factor ('*' factor)*
     factor := '!' factor | '(' expr ')' | ident
   '+' and '^' share a level, left-associative — every logic string in
   the cell libraries uses parentheses when it matters. *)
let parse_exn (s : string) : expr =
  let n = String.length s in
  let pos = ref 0 in
  let skip_ws () =
    while !pos < n && (s.[!pos] = ' ' || s.[!pos] = '\t') do incr pos done
  in
  let peek () =
    skip_ws ();
    if !pos < n then Some s.[!pos] else None
  in
  let ident () =
    skip_ws ();
    let start = !pos in
    while
      !pos < n
      &&
      match s.[!pos] with
      | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '_' -> true
      | _ -> false
    do
      incr pos
    done;
    if !pos = start then raise Parse_error;
    String.sub s start (!pos - start)
  in
  let rec expr () =
    let t = ref (term ()) in
    let rec loop () =
      match peek () with
      | Some '+' ->
          incr pos;
          t := Or (!t, term ());
          loop ()
      | Some '^' ->
          incr pos;
          t := Xor (!t, term ());
          loop ()
      | _ -> ()
    in
    loop ();
    !t
  and term () =
    let f = ref (factor ()) in
    let rec loop () =
      match peek () with
      | Some '*' ->
          incr pos;
          f := And (!f, factor ());
          loop ()
      | _ -> ()
    in
    loop ();
    !f
  and factor () =
    match peek () with
    | Some '!' ->
        incr pos;
        Not (factor ())
    | Some '(' ->
        incr pos;
        let e = expr () in
        (match peek () with
        | Some ')' -> incr pos
        | _ -> raise Parse_error);
        e
    | Some _ -> Var (ident ())
    | None -> raise Parse_error
  in
  let e = expr () in
  skip_ws ();
  if !pos <> n then raise Parse_error;
  e

let parse s = try Some (parse_exn s) with Parse_error -> None

let rec eval_expr env = function
  | Var p -> env p
  | Not e -> not (eval_expr env e)
  | And (a, b) -> eval_expr env a && eval_expr env b
  | Or (a, b) -> eval_expr env a || eval_expr env b
  | Xor (a, b) -> eval_expr env a <> eval_expr env b

(* ------------------------------------------------------------------ *)
(* Abstract net values.                                                *)
(* ------------------------------------------------------------------ *)

(* A net is either a boolean constant, a unate function of exactly one
   primary input ([Fn]: value when the root is 0 / when it is 1, with
   [at0 <> at1] — at0=false,at1=true is the root itself, the converse
   its complement), or [Mixed] (depends on several roots; the analysis
   gives up there, which keeps reconvergent fanout conservative). *)
type value =
  | Const of bool
  | Fn of { root : N.net_id; at0 : bool; at1 : bool }
  | Mixed

let norm root at0 at1 =
  if at0 = at1 then Const at0 else Fn { root; at0; at1 }

let v_not = function
  | Const b -> Const (not b)
  | Fn { root; at0; at1 } -> Fn { root; at0 = not at0; at1 = not at1 }
  | Mixed -> Mixed

let v_and a b =
  match (a, b) with
  | Const false, _ | _, Const false -> Const false
  | Const true, x | x, Const true -> x
  | Mixed, _ | _, Mixed -> Mixed
  | Fn f, Fn g when f.root = g.root ->
      norm f.root (f.at0 && g.at0) (f.at1 && g.at1)
  | Fn _, Fn _ -> Mixed

let v_or a b =
  match (a, b) with
  | Const true, _ | _, Const true -> Const true
  | Const false, x | x, Const false -> x
  | Mixed, _ | _, Mixed -> Mixed
  | Fn f, Fn g when f.root = g.root ->
      norm f.root (f.at0 || g.at0) (f.at1 || g.at1)
  | Fn _, Fn _ -> Mixed

let v_xor a b =
  match (a, b) with
  | Const false, x | x, Const false -> x
  | Const true, x | x, Const true -> v_not x
  | Mixed, _ | _, Mixed -> Mixed
  | Fn f, Fn g when f.root = g.root ->
      norm f.root (f.at0 <> g.at0) (f.at1 <> g.at1)
  | Fn _, Fn _ -> Mixed

let rec eval_value env = function
  | Var p -> env p
  | Not e -> v_not (eval_value env e)
  | And (a, b) -> v_and (eval_value env a) (eval_value env b)
  | Or (a, b) -> v_or (eval_value env a) (eval_value env b)
  | Xor (a, b) -> v_xor (eval_value env a) (eval_value env b)

let analyze (topo : Topo.t) : value array =
  let nl = Topo.netlist topo in
  let values = Array.make (N.num_nets nl) Mixed in
  (* Logic strings repeat across drive variants of the same cell; parse
     each distinct string once. *)
  let exprs : (string, expr option) Hashtbl.t = Hashtbl.create 16 in
  let expr_of cell =
    let logic = cell.Tka_cell.Cell.logic in
    match Hashtbl.find_opt exprs logic with
    | Some e -> e
    | None ->
        let e = parse logic in
        Hashtbl.add exprs logic e;
        e
  in
  Array.iter
    (fun nid ->
      let net = N.net nl nid in
      values.(nid) <-
        (match net.N.driver with
        | N.Primary_input -> Fn { root = nid; at0 = false; at1 = true }
        | N.Driven_by g -> (
            let gate = N.gate nl g in
            match expr_of gate.N.cell with
            | None -> Mixed (* unparseable logic: stay conservative *)
            | Some e ->
                let env pin =
                  match List.assoc_opt pin gate.N.fanin with
                  | Some fanin_net -> values.(fanin_net)
                  | None -> Mixed
                in
                eval_value env e)))
    (Topo.net_order topo);
  values

(* ------------------------------------------------------------------ *)
(* Drop decisions and the exhaustive reference evaluator.              *)
(* ------------------------------------------------------------------ *)

type relation = Unrelated | Constant | Same_phase | Opposite_phase

let relate values ~victim ~aggressor =
  match values.(aggressor) with
  | Const _ -> Constant
  | Mixed -> Unrelated
  | Fn a -> (
      match values.(victim) with
      | Fn v when v.root = a.root ->
          if v.at0 = a.at0 && v.at1 = a.at1 then Same_phase
          else Opposite_phase
      | _ -> Unrelated)

let eval_all nl ~(assignment : N.net_id -> bool) : bool array =
  let values = Array.make (N.num_nets nl) false in
  let topo = Topo.create nl in
  Array.iter
    (fun nid ->
      let net = N.net nl nid in
      values.(nid) <-
        (match net.N.driver with
        | N.Primary_input -> assignment nid
        | N.Driven_by g ->
            let gate = N.gate nl g in
            let e =
              match parse gate.N.cell.Tka_cell.Cell.logic with
              | Some e -> e
              | None -> raise Parse_error
            in
            let env pin =
              match List.assoc_opt pin gate.N.fanin with
              | Some fanin_net -> values.(fanin_net)
              | None -> raise Parse_error
            in
            eval_expr env e))
    (Topo.net_order topo);
  values
