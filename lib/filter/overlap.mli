(** Timing-window overlap queries for the aggressor filter.

    Window mode drops a directed coupling when the aggressor's noise
    pulse — wherever it fires inside the aggressor's own switching
    window — cannot reach the interval over which the victim's delay
    noise is measured. Both intervals are computed from the windows the
    STA pass already produced; no waveforms are built. *)

val sensitive :
  ?margin:float -> Tka_sta.Timing_window.t -> Tka_util.Interval.t
(** [sensitive w] is the victim's sensitive interval
    [\[eat − 0.5·slew_late − margin,
    lat + (saturation_slews + 0.75)·slew_late + margin\]] (default
    [margin = 0]). It contains the engine's dominance interval
    [\[t50 − 0.5·slew, t50 + (saturation_slews + 0.75)·slew\]] for any
    window whose [eat <= base t50 <= lat] —
    i.e. for both the base windows (addition) and the noisy windows
    (elimination) the engines filter under — so an aggressor whose
    reach misses it is provably inert. *)

val reach :
  Tka_circuit.Netlist.t ->
  windows:(Tka_circuit.Netlist.net_id -> Tka_sta.Timing_window.t) ->
  Tka_noise.Coupled_noise.directed ->
  Tka_util.Interval.t
(** [reach nl ~windows d]: the support of [d]'s noise envelope —
    earliest pulse onset through latest onset plus the pulse's extent.
    Exactly the support of [Envelope_builder.of_directed], computed
    without building the envelope. *)

val cannot_overlap :
  reach:Tka_util.Interval.t -> sensitive:Tka_util.Interval.t -> bool
(** True when the two intervals are disjoint (tolerant comparison:
    touching intervals overlap, so drops stay conservative). *)
