module Interval = Tka_util.Interval
module N = Tka_circuit.Netlist
module TW = Tka_sta.Timing_window
module Pulse = Tka_waveform.Pulse
module CN = Tka_noise.Coupled_noise

(* The engine scores candidates on Dominance.interval
   [t50 - 0.5*slew, t50 + (saturation_slews + 0.75)*slew] anchored at
   the victim's *base* latest arrival. The filter only sees the current
   iteration's window w (base for addition, noisy for elimination), so
   it must bound that anchor from the window alone: eat <= base t50 <=
   lat, and the slews agree. Hence the asymmetric interval below —
   lower edge from the earliest possible anchor, upper edge from the
   latest — which contains the dominance interval for every window the
   engine can hand us: a drop here implies the candidate's envelope is
   identically zero where the engine looks. *)
let sensitive ?(margin = 0.) (w : TW.t) =
  Interval.make
    (w.eat -. (0.5 *. w.slew_late) -. margin)
    (w.lat +. ((Tka_noise.Victim_noise.saturation_slews +. 0.75) *. w.slew_late)
    +. margin)

(* Support of Envelope.of_pulse ~window:(onset_interval w) pulse:
   leading edge at the earliest onset, trailing edge at the latest onset
   plus the pulse's full extent. Matches False_aggressors.is_false. *)
let reach nl ~(windows : N.net_id -> TW.t) (d : CN.directed) =
  let w = windows d.CN.dc_aggressor in
  let onset = TW.onset_interval w in
  let pulse = CN.pulse nl ~agg_slew:w.TW.slew_late d in
  Interval.make (Interval.lo onset) (Interval.hi onset +. Pulse.end_time pulse)

let cannot_overlap ~reach:r ~sensitive:s = not (Interval.overlaps r s)
