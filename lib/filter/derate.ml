module Interval = Tka_util.Interval

(* Fraction of the aggressor's reach that lands inside the victim's
   sensitive interval. 1.0 when fully contained (or the reach is a
   point), 0.0 when disjoint. The engine multiplies the aggressor's
   envelope by this factor, so partial overlaps are discounted rather
   than dropped outright — the filter's accuracy/pessimism dial. *)
let factor ~reach ~sensitive =
  if not (Interval.overlaps reach sensitive) then 0.
  else
    let w = Interval.width reach in
    if w <= 0. then 1.
    else
      let lo = Float.max (Interval.lo reach) (Interval.lo sensitive)
      and hi = Float.min (Interval.hi reach) (Interval.hi sensitive) in
      Float.max 0. (Float.min 1. ((hi -. lo) /. w))
