type t = Off | Window | Logic

let all = [ Off; Window; Logic ]

let to_string = function Off -> "none" | Window -> "window" | Logic -> "logic"

let of_string = function
  | "none" | "off" -> Some Off
  | "window" -> Some Window
  | "logic" -> Some Logic
  | _ -> None

(* Stable numbering for cache fingerprints (Tka_incr hashes the engine
   config, filter mode included): renumbering would silently alias old
   cached results, so treat these as wire values. *)
let to_int = function Off -> 0 | Window -> 1 | Logic -> 2

let pp ppf t = Format.pp_print_string ppf (to_string t)
