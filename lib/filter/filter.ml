module N = Tka_circuit.Netlist
module Topo = Tka_circuit.Topo
module CN = Tka_noise.Coupled_noise
module EB = Tka_noise.Envelope_builder

type reason = Window_disjoint | Logic_constant | Logic_correlated

type decision = Keep | Derate of float | Drop of reason

let reason_name = function
  | Window_disjoint -> "window_disjoint"
  | Logic_constant -> "logic_constant"
  | Logic_correlated -> "logic_correlated"

type t = {
  f_mode : Mode.t;
  f_nl : N.t;
  f_topo : Topo.t;
  f_windows : EB.windows;
  f_margin : float;
  f_logic : Implication.value array option;  (** [Some] iff mode = Logic *)
}

let prepare ~mode ?(margin = 0.) ~windows topo =
  {
    f_mode = mode;
    f_nl = Topo.netlist topo;
    f_topo = topo;
    f_windows = windows;
    f_margin = margin;
    f_logic =
      (match mode with
      | Mode.Logic -> Some (Implication.analyze topo)
      | Mode.Off | Mode.Window -> None);
  }

let mode t = t.f_mode
let is_off t = t.f_mode = Mode.Off

let derate_threshold = 0.85

let logic_decision t (d : CN.directed) =
  match t.f_logic with
  | None -> None
  | Some values -> (
      match
        Implication.relate values ~victim:d.CN.dc_victim
          ~aggressor:d.CN.dc_aggressor
      with
      | Implication.Constant -> Some (Drop Logic_constant)
      | Implication.Same_phase -> Some (Drop Logic_correlated)
      | Implication.Unrelated | Implication.Opposite_phase -> None)

let decide_against t ~sensitive (d : CN.directed) =
  match t.f_mode with
  | Mode.Off -> Keep
  | Mode.Window | Mode.Logic -> (
      match logic_decision t d with
      | Some dec -> dec
      | None ->
          let reach = Overlap.reach t.f_nl ~windows:t.f_windows d in
          if Overlap.cannot_overlap ~reach ~sensitive then Drop Window_disjoint
          else
            let f = Derate.factor ~reach ~sensitive in
            (* Overlap fractions near 1 are dominated by the sensitive
               interval's own safety padding (>= 1.25 victim slews of
               slack beyond the dominance interval), not by genuine
               partial overlap — treat them as full keeps. Rounding a
               factor up to 1 is always sound: it reproduces the
               unfiltered engine exactly for that candidate, and it
               skips an Envelope.scale per kept aggressor on the hot
               path. Only clearly partial overlaps carry signal. *)
            if f >= derate_threshold then Keep else Derate f)

let sensitive_of t victim =
  Overlap.sensitive ~margin:t.f_margin (t.f_windows victim)

let decide t (d : CN.directed) =
  match t.f_mode with
  | Mode.Off -> Keep
  | Mode.Window | Mode.Logic ->
      decide_against t ~sensitive:(sensitive_of t d.CN.dc_victim) d

let no_derate : int -> float = fun _ -> 1.

let screen t (ds : CN.directed list) =
  match t.f_mode with
  | Mode.Off -> (ds, no_derate)
  | Mode.Window | Mode.Logic -> (
      match ds with
      | [] -> (ds, no_derate)
      | d0 :: _ ->
          (* One victim per call: every directed coupling handed to the
             engine's per-victim sweep shares [dc_victim]. *)
          let sensitive = sensitive_of t d0.CN.dc_victim in
          let kept = ref [] and factors = ref [] in
          List.iter
            (fun d ->
              match decide_against t ~sensitive d with
              | Keep -> kept := d :: !kept
              | Derate f ->
                  kept := d :: !kept;
                  factors := (CN.directed_id d, f) :: !factors
              | Drop _ -> ())
            ds;
          let lookup =
            match !factors with
            | [] -> no_derate
            | fs ->
                let tbl = Hashtbl.create (List.length fs) in
                List.iter (fun (id, f) -> Hashtbl.replace tbl id f) fs;
                fun id -> Option.value ~default:1. (Hashtbl.find_opt tbl id)
          in
          (List.rev !kept, lookup))

type survey = {
  sv_victims : int;
  sv_candidates : int;
  sv_kept : int;
  sv_derated : int;
  sv_dropped_window : int;
  sv_dropped_constant : int;
  sv_dropped_correlated : int;
}

let sv_dropped s =
  s.sv_dropped_window + s.sv_dropped_constant + s.sv_dropped_correlated

let survey t =
  let victims = ref 0
  and cands = ref 0
  and kept = ref 0
  and derated = ref 0
  and d_window = ref 0
  and d_const = ref 0
  and d_corr = ref 0 in
  let n = N.num_nets t.f_nl in
  for v = 0 to n - 1 do
    match CN.aggressors_of_victim t.f_nl v with
    | [] -> ()
    | ds ->
        incr victims;
        let sensitive = sensitive_of t v in
        List.iter
          (fun d ->
            incr cands;
            match decide_against t ~sensitive d with
            | Keep -> incr kept
            | Derate _ ->
                incr kept;
                incr derated
            | Drop Window_disjoint -> incr d_window
            | Drop Logic_constant -> incr d_const
            | Drop Logic_correlated -> incr d_corr)
          ds
  done;
  {
    sv_victims = !victims;
    sv_candidates = !cands;
    sv_kept = !kept;
    sv_derated = !derated;
    sv_dropped_window = !d_window;
    sv_dropped_constant = !d_const;
    sv_dropped_correlated = !d_corr;
  }

let pp_survey ppf s =
  Format.fprintf ppf
    "victims %d, candidates %d, kept %d (%d derated), dropped %d (window %d, \
     const %d, correlated %d)"
    s.sv_victims s.sv_candidates s.sv_kept s.sv_derated (sv_dropped s)
    s.sv_dropped_window s.sv_dropped_constant s.sv_dropped_correlated
