(** Pre-engine aggressor candidate pruning.

    The enumeration cost of the top-k engines is governed by r, the
    number of candidate aggressors per victim: I-list pruning is
    O(r log r) with r envelope constructions, and the exact re-ranking
    enumerates up to C(r, k) subsets. This module shrinks r {e before}
    the engine ever builds a waveform, using information the STA pass
    already produced (timing windows) and, in [Logic] mode, a cheap
    implication analysis of the netlist's cell logic.

    A prepared filter is pure and immutable: the same [t] answers
    queries for every victim of the sweep, from any domain, with no
    shared mutable state — decisions are deterministic at any jobs
    count. Soundness contracts per mode are spelled out in
    [docs/filtering.md]; the [Tka_verify] filter-consistency oracle
    checks them on random circuits. *)

type reason =
  | Window_disjoint
      (** the aggressor's pulse, fired anywhere in its window, cannot
          reach the victim's sensitive interval *)
  | Logic_constant  (** the aggressor net provably never switches *)
  | Logic_correlated
      (** aggressor and victim are phase-locked to the same root with
          the same polarity — an opposing-direction attack is
          logically impossible *)

type decision =
  | Keep
  | Derate of float
      (** keep, but scale the envelope by this factor in (0, 1) —
          the aggressor's reach only partially overlaps the victim's
          sensitive interval *)
  | Drop of reason

val reason_name : reason -> string

type t

val prepare :
  mode:Mode.t ->
  ?margin:float ->
  windows:Tka_noise.Envelope_builder.windows ->
  Tka_circuit.Topo.t ->
  t
(** Build a filter for one engine run. [windows] must be the window
    accessor the engine itself builds envelopes from (base windows for
    addition, noisy windows for elimination) — the soundness argument
    identifies the filter's reach computation with the support of the
    envelopes the engine would construct. [margin] (ns, default 0)
    widens the sensitive interval on both sides for extra safety.
    [Logic] mode runs the implication analysis here, once. *)

val mode : t -> Mode.t
val is_off : t -> bool

val derate_threshold : float
(** Overlap fractions at or above this are rounded up to {!Keep}
    (0.85): near-1 fractions measure the sensitive interval's safety
    padding rather than genuine partial overlap, and a full keep both
    reproduces the unfiltered engine exactly for that candidate and
    skips an [Envelope.scale] on the hot path. *)

val decide : t -> Tka_noise.Coupled_noise.directed -> decision
(** Classify a single directed coupling. Always [Keep] when the mode is
    [Off]. *)

val screen :
  t ->
  Tka_noise.Coupled_noise.directed list ->
  Tka_noise.Coupled_noise.directed list * (int -> float)
(** [screen t ds] for one victim's candidate list (all entries share
    [dc_victim]): returns the survivors in their original order, plus a
    de-rate factor lookup keyed by [Coupled_noise.directed_id]
    (1.0 for anything not de-rated). When the mode is [Off] the input
    list is returned physically unchanged — the bit-identical path. *)

(** {1 Survey} *)

type survey = {
  sv_victims : int;  (** nets with at least one candidate aggressor *)
  sv_candidates : int;  (** directed couplings examined *)
  sv_kept : int;  (** survivors, de-rated ones included *)
  sv_derated : int;
  sv_dropped_window : int;
  sv_dropped_constant : int;
  sv_dropped_correlated : int;
}

val survey : t -> survey
(** Walk every victim of the design and classify all its candidates —
    the deterministic r-reduction accounting used by the bench and the
    verification oracle. Pure: never touches engine state, so the
    numbers are identical at any jobs count. *)

val sv_dropped : survey -> int
(** Total drops across all reasons. *)

val pp_survey : Format.formatter -> survey -> unit
