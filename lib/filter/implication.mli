(** Lightweight logical-correlation analysis for the aggressor filter.

    Logic mode wants to know whether an aggressor's transition can
    oppose the victim's at all. This module computes, per net, a cheap
    abstract value over the netlist's cell logic — constant
    propagation plus single-root phase tracking — in one topological
    pass. A net is either a constant (it never switches, so it can
    never attack anyone), a unate function of exactly one primary input
    (so its switching direction is locked to that input's), or [Mixed]
    (several roots; the analysis gives up, which keeps reconvergent
    fanout conservative: no drop is ever based on a [Mixed] value).

    A coupling is logically filterable when the aggressor is constant,
    or when aggressor and victim are phase-locked to the same root with
    the {e same} polarity: then every victim transition is mirrored by
    an aggressor transition in the same direction, and an
    opposing-direction attack — the only kind that produces delay
    noise in this framework — is impossible. Opposite polarity is the
    true worst case and is kept. *)

(** {1 Cell logic expressions} *)

type expr =
  | Var of string
  | Not of expr
  | And of expr * expr
  | Or of expr * expr
  | Xor of expr * expr

exception Parse_error

val parse : string -> expr option
(** Parse a [Cell.logic] string (["!(A*B)"], ["A^B"], ["!((A+B)*C)"],
    ...). Precedence: [!] over [*] over [+]/[^]; identifiers are pin
    names. [None] on any syntax error — callers treat the gate's
    output as [Mixed]. *)

val eval_expr : (string -> bool) -> expr -> bool
(** Evaluate under a pin assignment. *)

(** {1 Per-net abstract values} *)

type value =
  | Const of bool
  | Fn of { root : Tka_circuit.Netlist.net_id; at0 : bool; at1 : bool }
      (** Unate in primary input [root]: net value when the root is
          0 / 1. Invariant [at0 <> at1] ([at0 = false, at1 = true] is
          the root itself, the converse its complement). *)
  | Mixed

val analyze : Tka_circuit.Topo.t -> value array
(** One topological pass over the netlist, indexed by net id. Primary
    inputs map to themselves; gates with an unparseable logic string
    (or inputs under several distinct roots) map to [Mixed]. *)

type relation = Unrelated | Constant | Same_phase | Opposite_phase

val relate :
  value array ->
  victim:Tka_circuit.Netlist.net_id ->
  aggressor:Tka_circuit.Netlist.net_id ->
  relation
(** Classify an aggressor against a victim: [Constant] (aggressor never
    switches) and [Same_phase] (both nets are the same function of the
    same root) justify a drop; [Opposite_phase] and [Unrelated] do
    not. *)

(** {1 Reference evaluator} *)

val eval_all :
  Tka_circuit.Netlist.t ->
  assignment:(Tka_circuit.Netlist.net_id -> bool) ->
  bool array
(** Exhaustively evaluate every net under a primary-input assignment —
    the ground truth the verification oracle and the unit tests check
    {!analyze} against. Raises {!Parse_error} if any reachable gate's
    logic string does not parse. *)
