(** Functional (glitch) noise screening.

    Besides delaying switching victims, crosstalk can flip a {e quiet}
    victim: if the stacked worst-case noise peak exceeds the receiving
    gates' noise margin, a spurious transition may propagate. This is
    the classic static noise analysis of Shepard et al. that the
    paper's framework builds on; the library includes it so a user can
    screen both failure modes from one extraction.

    The check is alignment-free (all aggressors stack at their peaks —
    their timing windows could always be made to overlap by a shift in
    input timing), making it a conservative screen. *)

type violation = {
  gl_net : Tka_circuit.Netlist.net_id;
  gl_peak : float;  (** stacked worst-case peak, Vdd units *)
  gl_margin : float;  (** the margin it was checked against *)
}

val default_margin : float
(** 0.40 Vdd — a typical static-gate DC noise margin. *)

val peak_noise :
  Tka_circuit.Netlist.t ->
  windows:Envelope_builder.windows ->
  Tka_circuit.Netlist.net_id ->
  float
(** Sum of the pulse peaks of every aggressor of the net (late-arrival
    slews from [windows]). *)

val check :
  ?margin:float -> Tka_circuit.Topo.t -> violation list
(** Runs a noiseless STA for slews, computes every net's stacked peak
    and reports nets over the margin, worst first. *)

val pp_violation :
  Tka_circuit.Netlist.t -> Format.formatter -> violation -> unit
