(** Per-victim crosstalk breakdown reports.

    After an iterative analysis, a designer wants to know {e why} a net
    is noisy: which aggressors contribute how much, alone and
    incrementally. This module decomposes a victim's delay noise and
    renders it, and ranks the noisiest victims of a design. *)

type contribution = {
  xc_aggressor : Tka_circuit.Netlist.net_id;
  xc_coupling : Tka_circuit.Netlist.coupling_id;
  xc_cap : float;  (** pF *)
  xc_alone : float;  (** delay noise if this aggressor acted alone, ns *)
  xc_incremental : float;
      (** loss of delay noise if only this aggressor were fixed, ns *)
}

type victim_report = {
  xr_victim : Tka_circuit.Netlist.net_id;
  xr_total : float;  (** victim delay noise with all its aggressors, ns *)
  xr_contributions : contribution list;  (** sorted by [xc_incremental] desc *)
}

val victim : analysis:Iterate.t -> Tka_circuit.Netlist.net_id -> victim_report
(** Breakdown of one net, using the fixpoint windows of the given
    analysis. *)

val worst_victims : ?count:int -> Iterate.t -> victim_report list
(** The [count] (default 5) nets with the largest fixpoint delay noise,
    each with its breakdown. *)

val render : Tka_circuit.Netlist.t -> victim_report -> string
(** Multi-line, human-readable table. *)
