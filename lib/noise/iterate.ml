module N = Tka_circuit.Netlist
module Topo = Tka_circuit.Topo
module Analysis = Tka_sta.Analysis

module Log = Tka_obs.Log
module Metrics = Tka_obs.Metrics
module Trace = Tka_obs.Trace

let log_src = Log.Src.create "iterate" ~doc:"iterative noise analysis"
let m_runs = Metrics.Counter.make "iterate.runs"
let m_passes = Metrics.Counter.make "iterate.passes"
let m_non_converged = Metrics.Counter.make "iterate.non_converged"
let g_residual = Metrics.Gauge.make "iterate.last_residual_ns"

type mode = From_noiseless | From_all_overlap

type t = {
  analysis : Analysis.t;
  base : Analysis.t;
  noise : float array;
  iterations : int;
  converged : bool;
}

let run ?(mode = From_noiseless) ?(active = fun _ -> true) ?(max_iterations = 30)
    ?(tolerance = 1e-4) ?env_memo topo =
  Trace.with_span ~cat:"noise" "iterate.run" @@ fun () ->
  let nl = Topo.netlist topo in
  let nn = N.num_nets nl in
  let base = Analysis.run topo in
  let aggressors =
    Array.init nn (fun v ->
        List.filter active (Coupled_noise.aggressors_of_victim nl v))
  in
  let noise = Array.make nn 0. in
  (match mode with
  | From_noiseless -> ()
  | From_all_overlap ->
    (* start from the infinite-window bound of each net *)
    let w = Analysis.window base in
    for v = 0 to nn - 1 do
      noise.(v) <-
        Victim_noise.upper_bound nl ~windows:w ~victim:v aggressors.(v)
    done);
  let iterations = ref 0 in
  let converged = ref false in
  let analysis = ref base in
  let residual = ref 0. in
  while (not !converged) && !iterations < max_iterations do
    incr iterations;
    Metrics.Counter.incr m_passes;
    Trace.with_span ~cat:"noise"
      ~args:[ ("pass", Tka_obs.Jsonx.Int !iterations) ]
      "iterate.pass"
    @@ fun () ->
    let a = Analysis.run ~extra_lat:(fun nid -> noise.(nid)) topo in
    let w = Analysis.window a in
    let delta = ref 0. in
    for v = 0 to nn - 1 do
      let fresh =
        Victim_noise.delay_noise nl ~windows:w ~own_noise:noise.(v)
          ?memo:env_memo ~victim:v aggressors.(v)
      in
      delta := Float.max !delta (Float.abs (fresh -. noise.(v)));
      noise.(v) <- fresh
    done;
    analysis := a;
    residual := !delta;
    Log.debug log_src (fun m ->
        m
          ~fields:
            [
              Log.str "circuit" (N.name nl);
              Log.int "pass" !iterations;
              Log.float "residual_ns" !delta;
            ]
          "%s: pass %d residual %.6f ns" (N.name nl) !iterations !delta);
    if !delta <= tolerance then converged := true
  done;
  Metrics.Counter.incr m_runs;
  Metrics.Gauge.set g_residual !residual;
  (* final STA consistent with the converged noise vector *)
  let final = Analysis.run ~extra_lat:(fun nid -> noise.(nid)) topo in
  if not !converged then begin
    Metrics.Counter.incr m_non_converged;
    Log.warn log_src (fun m ->
        m
          ~fields:
            [
              Log.str "circuit" (N.name nl);
              Log.int "max_iterations" max_iterations;
              Log.float "residual_ns" !residual;
            ]
          "noise iteration did not converge in %d sweeps on %s" max_iterations
          (N.name nl))
  end;
  { analysis = final; base; noise; iterations = !iterations; converged = !converged }

let circuit_delay t = Analysis.circuit_delay t.analysis
let noiseless_delay t = Analysis.circuit_delay t.base
let total_delay_noise t = circuit_delay t -. noiseless_delay t
let windows t = Analysis.window t.analysis
let net_noise t nid = t.noise.(nid)
