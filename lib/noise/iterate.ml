module N = Tka_circuit.Netlist
module Topo = Tka_circuit.Topo
module Analysis = Tka_sta.Analysis

let log_src = Logs.Src.create "tka.noise" ~doc:"iterative noise analysis"

module Log = (val Logs.src_log log_src : Logs.LOG)

type mode = From_noiseless | From_all_overlap

type t = {
  analysis : Analysis.t;
  base : Analysis.t;
  noise : float array;
  iterations : int;
  converged : bool;
}

let run ?(mode = From_noiseless) ?(active = fun _ -> true) ?(max_iterations = 30)
    ?(tolerance = 1e-4) topo =
  let nl = Topo.netlist topo in
  let nn = N.num_nets nl in
  let base = Analysis.run topo in
  let aggressors =
    Array.init nn (fun v ->
        List.filter active (Coupled_noise.aggressors_of_victim nl v))
  in
  let noise = Array.make nn 0. in
  (match mode with
  | From_noiseless -> ()
  | From_all_overlap ->
    (* start from the infinite-window bound of each net *)
    let w = Analysis.window base in
    for v = 0 to nn - 1 do
      noise.(v) <-
        Victim_noise.upper_bound nl ~windows:w ~victim:v aggressors.(v)
    done);
  let iterations = ref 0 in
  let converged = ref false in
  let analysis = ref base in
  while (not !converged) && !iterations < max_iterations do
    incr iterations;
    let a = Analysis.run ~extra_lat:(fun nid -> noise.(nid)) topo in
    let w = Analysis.window a in
    let delta = ref 0. in
    for v = 0 to nn - 1 do
      let fresh =
        Victim_noise.delay_noise nl ~windows:w ~own_noise:noise.(v) ~victim:v
          aggressors.(v)
      in
      delta := Float.max !delta (Float.abs (fresh -. noise.(v)));
      noise.(v) <- fresh
    done;
    analysis := a;
    if !delta <= tolerance then converged := true
  done;
  (* final STA consistent with the converged noise vector *)
  let final = Analysis.run ~extra_lat:(fun nid -> noise.(nid)) topo in
  if not !converged then
    Log.warn (fun m ->
        m "noise iteration did not converge in %d sweeps on %s" max_iterations
          (N.name nl));
  { analysis = final; base; noise; iterations = !iterations; converged = !converged }

let circuit_delay t = Analysis.circuit_delay t.analysis
let noiseless_delay t = Analysis.circuit_delay t.base
let total_delay_noise t = circuit_delay t -. noiseless_delay t
let windows t = Analysis.window t.analysis
let net_noise t nid = t.noise.(nid)
