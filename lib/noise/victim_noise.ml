module N = Tka_circuit.Netlist
module TW = Tka_sta.Timing_window
module Envelope = Tka_waveform.Envelope
module Transition = Tka_waveform.Transition
module Interval = Tka_util.Interval

let saturation_slews = 3.0

let victim_transition ~windows ~own_noise victim =
  let w : TW.t = windows victim in
  Transition.make ~t50:(w.TW.lat -. own_noise) ~slew:w.TW.slew_late ()

(* Per-stage delay noise saturates at a few victim slews: beyond that,
   the restoring victim driver wins and the linear-superposition figure
   is pure pessimism (cf. Keller et al., ICCAD'04, on robust cell-level
   delay change). The cap also bounds the gain of the window/noise
   feedback loop, which is what makes the iterative analysis settle in
   a handful of sweeps on densely coupled nets. *)
let saturate ~victim noise =
  Float.min noise (saturation_slews *. victim.Transition.slew)

let delay_noise_of_envelope ~victim env =
  saturate ~victim (Envelope.delay_noise ~victim env)

let delay_noise nl ~windows ?(own_noise = 0.) ?memo ~victim ds =
  match ds with
  | [] -> 0.
  | _ :: _ ->
    let v = victim_transition ~windows ~own_noise victim in
    let build =
      match memo with
      | None -> Envelope_builder.of_directed nl ~windows
      | Some m -> Envelope_builder.of_directed_memo m nl ~windows
    in
    let env = Envelope.combine (List.map build ds) in
    delay_noise_of_envelope ~victim:v env

(* For the infinite-window bound the envelopes must cover every instant
   that could matter: from the victim's transition start out past the
   point the stacked envelopes could push the crossing. A span of
   t50 +- (sum of peaks) * slew * margin is a safe overestimate; we use
   a generous fixed window derived from the victim transition and the
   total pulse tails. *)
let upper_bound nl ~windows ?(own_noise = 0.) ~victim ds =
  match ds with
  | [] -> 0.
  | _ :: _ ->
    let v = victim_transition ~windows ~own_noise victim in
    let pulses =
      List.map
        (fun d ->
          let w : TW.t = windows d.Coupled_noise.dc_aggressor in
          Coupled_noise.pulse nl ~agg_slew:w.TW.slew_late d)
        ds
    in
    let total_tail =
      List.fold_left
        (fun acc p -> acc +. Tka_waveform.Pulse.end_time p)
        0. pulses
    in
    let t50 = v.Transition.t50 in
    (* The span must also cover wherever the *constrained* envelopes
       could act, else the bound would miss late-switching aggressors. *)
    let latest_action =
      List.fold_left2
        (fun acc d p ->
          let w : TW.t = windows d.Coupled_noise.dc_aggressor in
          Float.max acc
            (Interval.hi (TW.onset_interval w) +. Tka_waveform.Pulse.end_time p))
        (t50 +. v.Transition.slew) ds pulses
    in
    let span =
      Interval.make (t50 -. v.Transition.slew) (latest_action +. total_tail)
    in
    let env =
      Envelope.combine
        (List.map (Envelope_builder.unconstrained nl ~windows ~span) ds)
    in
    delay_noise_of_envelope ~victim:v env

let dominance_interval nl ~windows ?(own_noise = 0.) ~victim ds =
  let v = victim_transition ~windows ~own_noise victim in
  let ub = upper_bound nl ~windows ~own_noise ~victim ds in
  Interval.make v.Transition.t50 (v.Transition.t50 +. Float.max 1e-6 ub)
