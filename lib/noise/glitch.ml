module N = Tka_circuit.Netlist
module TW = Tka_sta.Timing_window
module Analysis = Tka_sta.Analysis

type violation = { gl_net : N.net_id; gl_peak : float; gl_margin : float }

let default_margin = 0.40

let peak_noise nl ~windows victim =
  List.fold_left
    (fun acc d ->
      let w : TW.t = windows d.Coupled_noise.dc_aggressor in
      acc +. (Coupled_noise.pulse nl ~agg_slew:w.TW.slew_late d).Tka_waveform.Pulse.peak)
    0.
    (Coupled_noise.aggressors_of_victim nl victim)

let check ?(margin = default_margin) topo =
  let nl = Tka_circuit.Topo.netlist topo in
  let a = Analysis.run topo in
  let windows = Analysis.window a in
  let out = ref [] in
  for v = 0 to N.num_nets nl - 1 do
    let peak = peak_noise nl ~windows v in
    if peak > margin then
      out := { gl_net = v; gl_peak = peak; gl_margin = margin } :: !out
  done;
  List.sort (fun x y -> Float.compare y.gl_peak x.gl_peak) !out

let pp_violation nl ppf v =
  Format.fprintf ppf "%s: peak %.3f Vdd (margin %.2f)"
    (N.net nl v.gl_net).N.net_name v.gl_peak v.gl_margin
