module N = Tka_circuit.Netlist
module DC = Tka_sta.Delay_calc

type directed = {
  dc_coupling : N.coupling_id;
  dc_victim : N.net_id;
  dc_aggressor : N.net_id;
}

let aggressors_of_victim nl victim =
  List.map
    (fun cid ->
      {
        dc_coupling = cid;
        dc_victim = victim;
        dc_aggressor = N.coupling_partner nl cid victim;
      })
    (N.couplings_of_net nl victim)

(* Directed couplings are numbered 2*coupling + side so they can live in
   dense int sets: side 0 attacks net_a, side 1 attacks net_b. *)
let directed_id d =
  let c = d.dc_coupling in
  if d.dc_victim < d.dc_aggressor then (2 * c) else (2 * c) + 1

let of_directed_id nl id =
  let cid = id / 2 in
  let c = N.coupling nl cid in
  let lo = min c.N.net_a c.N.net_b and hi = max c.N.net_a c.N.net_b in
  if id mod 2 = 0 then { dc_coupling = cid; dc_victim = lo; dc_aggressor = hi }
  else { dc_coupling = cid; dc_victim = hi; dc_aggressor = lo }

let directed_of_coupling nl ~victim cid =
  {
    dc_coupling = cid;
    dc_victim = victim;
    dc_aggressor = N.coupling_partner nl cid victim;
  }

let peak nl ~victim ~coupling_cap ~agg_slew =
  let ct = N.total_cap nl victim in
  let tau = DC.holding_resistance nl victim *. ct in
  coupling_cap /. ct *. (tau /. (tau +. (agg_slew /. 2.)))

let pulse nl ~agg_slew d =
  let c = N.coupling nl d.dc_coupling in
  let ct = N.total_cap nl d.dc_victim in
  let tau = DC.holding_resistance nl d.dc_victim *. ct in
  let agg_slew = Float.max 1e-6 agg_slew in
  Tka_waveform.Pulse.make ~onset:0.
    ~peak:(peak nl ~victim:d.dc_victim ~coupling_cap:c.N.coupling_cap ~agg_slew)
    ~rise:agg_slew ~decay:tau
