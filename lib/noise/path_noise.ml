module N = Tka_circuit.Netlist
module TW = Tka_sta.Timing_window
module Analysis = Tka_sta.Analysis
module CP = Tka_sta.Critical_path

type stage = {
  ps_net : N.net_id;
  ps_arrival_noiseless : float;
  ps_arrival_noisy : float;
  ps_own_noise : float;
  ps_aggressors : int;
}

type t = {
  pn_stages : stage list;
  pn_noiseless_arrival : float;
  pn_noisy_arrival : float;
}

let of_path (it : Iterate.t) path =
  let nl = Analysis.netlist it.Iterate.analysis in
  let base = Analysis.window it.Iterate.base in
  let noisy = Analysis.window it.Iterate.analysis in
  let stages =
    List.map
      (fun s ->
        let nid = s.CP.step_net in
        {
          ps_net = nid;
          ps_arrival_noiseless = (base nid).TW.lat;
          ps_arrival_noisy = (noisy nid).TW.lat;
          ps_own_noise = Iterate.net_noise it nid;
          ps_aggressors = List.length (Coupled_noise.aggressors_of_victim nl nid);
        })
      path
  in
  let endpoint f default =
    match List.rev stages with s :: _ -> f s | [] -> default
  in
  {
    pn_stages = stages;
    pn_noiseless_arrival = endpoint (fun s -> s.ps_arrival_noiseless) 0.;
    pn_noisy_arrival = endpoint (fun s -> s.ps_arrival_noisy) 0.;
  }

let worst_path it = of_path it (CP.worst it.Iterate.analysis)

let total_path_noise t = t.pn_noisy_arrival -. t.pn_noiseless_arrival

let render nl t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%-14s %12s %12s %10s %6s\n" "net" "noiseless" "noisy"
       "own noise" "#aggr");
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "%-14s %12.4f %12.4f %10.4f %6d\n"
           (N.net nl s.ps_net).N.net_name s.ps_arrival_noiseless
           s.ps_arrival_noisy s.ps_own_noise s.ps_aggressors))
    t.pn_stages;
  Buffer.add_string buf
    (Printf.sprintf "path noise: %.4f ns (%.4f -> %.4f)\n" (total_path_noise t)
       t.pn_noiseless_arrival t.pn_noisy_arrival);
  Buffer.contents buf
