module N = Tka_circuit.Netlist

type contribution = {
  xc_aggressor : N.net_id;
  xc_coupling : N.coupling_id;
  xc_cap : float;
  xc_alone : float;
  xc_incremental : float;
}

type victim_report = {
  xr_victim : N.net_id;
  xr_total : float;
  xr_contributions : contribution list;
}

let victim ~analysis v =
  let nl = Tka_sta.Analysis.netlist analysis.Iterate.analysis in
  let windows = Iterate.windows analysis in
  let own = Iterate.net_noise analysis v in
  let all = Coupled_noise.aggressors_of_victim nl v in
  let noise ds = Victim_noise.delay_noise nl ~windows ~own_noise:own ~victim:v ds in
  let total = noise all in
  let contributions =
    List.map
      (fun d ->
        let others =
          List.filter
            (fun o -> o.Coupled_noise.dc_coupling <> d.Coupled_noise.dc_coupling
                      || o.Coupled_noise.dc_aggressor <> d.Coupled_noise.dc_aggressor)
            all
        in
        {
          xc_aggressor = d.Coupled_noise.dc_aggressor;
          xc_coupling = d.Coupled_noise.dc_coupling;
          xc_cap = (N.coupling nl d.Coupled_noise.dc_coupling).N.coupling_cap;
          xc_alone = noise [ d ];
          xc_incremental = Float.max 0. (total -. noise others);
        })
      all
    |> List.sort (fun a b -> Float.compare b.xc_incremental a.xc_incremental)
  in
  { xr_victim = v; xr_total = total; xr_contributions = contributions }

let worst_victims ?(count = 5) analysis =
  let nl = Tka_sta.Analysis.netlist analysis.Iterate.analysis in
  List.init (N.num_nets nl) (fun v -> (v, Iterate.net_noise analysis v))
  |> List.filter (fun (_, d) -> d > 0.)
  |> List.sort (fun (_, a) (_, b) -> Float.compare b a)
  |> List.filteri (fun i _ -> i < count)
  |> List.map (fun (v, _) -> victim ~analysis v)

let render nl r =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "victim %s: delay noise %.4f ns from %d aggressor(s)\n"
       (N.net nl r.xr_victim).N.net_name r.xr_total
       (List.length r.xr_contributions));
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "  %-12s cap %.4g pF  alone %.4f ns  incremental %.4f ns\n"
           (N.net nl c.xc_aggressor).N.net_name c.xc_cap c.xc_alone
           c.xc_incremental))
    r.xr_contributions;
  Buffer.contents buf
