(** Noise envelopes from timing windows (Fig. 2 of the paper).

    Couples {!Coupled_noise} pulses with aggressor switching windows:
    sweeping the pulse over the window's onset interval produces the
    trapezoidal envelope whose leading edge is the pulse fired at EAT
    and whose trailing edge is the pulse fired at LAT. *)

type windows = Tka_circuit.Netlist.net_id -> Tka_sta.Timing_window.t
(** Window accessor, usually [Tka_sta.Analysis.window a]. *)

val of_directed :
  Tka_circuit.Netlist.t ->
  windows:windows ->
  Coupled_noise.directed ->
  Tka_waveform.Envelope.t
(** Envelope of one primary aggressor: its pulse (late-arrival slew)
    swept over its onset window. *)

type memo
(** Cache of {!of_directed} results keyed by directed coupling id and
    the exact aggressor window (all four floats). Purity makes a hit
    bitwise-identical to recomputation, so memoised and unmemoised
    analyses agree exactly. NOT thread-safe: confine a memo to one
    sequential analysis (the exact re-ranking loops of
    [Tka_topk.Addition]/[Elimination], which evaluate hundreds of
    candidate sets over near-identical window sets, are the intended
    user). *)

val create_memo : unit -> memo

val of_directed_memo :
  memo ->
  Tka_circuit.Netlist.t ->
  windows:windows ->
  Coupled_noise.directed ->
  Tka_waveform.Envelope.t
(** {!of_directed} through the memo. *)

val of_directed_widened :
  Tka_circuit.Netlist.t ->
  windows:windows ->
  extra_lat:float ->
  Coupled_noise.directed ->
  Tka_waveform.Envelope.t
(** As {!of_directed} with the aggressor's LAT pushed out by
    [extra_lat >= 0] — the envelope of a {e higher-order} aggressor
    whose window grew because of delay noise in its own fanin cone
    (Section 3.3): same height, wider top. *)

val with_window :
  Tka_circuit.Netlist.t ->
  window:Tka_sta.Timing_window.t ->
  Coupled_noise.directed ->
  Tka_waveform.Envelope.t
(** Envelope with an explicitly supplied aggressor window (used by the
    elimination analysis to model a window that {e shrinks} when the
    aggressor's own fanin noise is fixed). *)

val unconstrained :
  Tka_circuit.Netlist.t ->
  windows:windows ->
  span:Tka_util.Interval.t ->
  Coupled_noise.directed ->
  Tka_waveform.Envelope.t
(** Envelope when the aggressor may switch anywhere such that the pulse
    covers [span] — the infinite-timing-window bound used for the upper
    end of the dominance interval (Section 3.2). *)

val combined :
  Tka_circuit.Netlist.t ->
  windows:windows ->
  Coupled_noise.directed list ->
  Tka_waveform.Envelope.t
(** Superposition of several aggressors' envelopes (Fig. 3). *)
