(** Worst-case delay noise at a single victim net.

    Combines aggressor envelopes (linear superposition) against the
    victim's latest transition and measures the shift of the 50%
    crossing — the per-net quantity the iterative analysis and the
    top-k engine both rank by.

    Per-stage delay noise is saturated at {!saturation_slews} victim
    slews: past that point the restoring victim driver dominates and the
    unsaturated linear figure is pure pessimism (cf. Keller et al.,
    ICCAD'04). The saturation is monotone, so envelope dominance still
    implies delay-noise dominance (Theorem 1 survives). *)

val saturation_slews : float
(** 3.0 — the per-stage saturation bound, in victim slews. *)

val victim_transition :
  windows:Envelope_builder.windows ->
  own_noise:float ->
  Tka_circuit.Netlist.net_id ->
  Tka_waveform.Transition.t
(** The victim's latest transition {e before} its own delay noise:
    window LAT minus [own_noise] (the windows of an iterative analysis
    already include each net's noise; subtracting it avoids counting it
    twice when re-evaluating). *)

val delay_noise :
  Tka_circuit.Netlist.t ->
  windows:Envelope_builder.windows ->
  ?own_noise:float ->
  ?memo:Envelope_builder.memo ->
  victim:Tka_circuit.Netlist.net_id ->
  Coupled_noise.directed list ->
  float
(** Worst-case (saturated) t50 shift from the given aggressors. [memo]
    optionally reuses per-aggressor envelopes across calls (see
    {!Envelope_builder.memo}); results are bitwise-identical with or
    without it. *)

val delay_noise_of_envelope :
  victim:Tka_waveform.Transition.t -> Tka_waveform.Envelope.t -> float
(** Same, with an already-built combined envelope. *)

val upper_bound :
  Tka_circuit.Netlist.t ->
  windows:Envelope_builder.windows ->
  ?own_noise:float ->
  victim:Tka_circuit.Netlist.net_id ->
  Coupled_noise.directed list ->
  float
(** Delay noise if every aggressor had an infinite timing window — the
    upper end of the dominance interval (Section 3.2). Always >= the
    constrained {!delay_noise}. *)

val dominance_interval :
  Tka_circuit.Netlist.t ->
  windows:Envelope_builder.windows ->
  ?own_noise:float ->
  victim:Tka_circuit.Netlist.net_id ->
  Coupled_noise.directed list ->
  Tka_util.Interval.t
(** [\[t50, t50 + upper_bound\]]: the interval over which envelope
    dominance must hold to imply delay-noise dominance at this
    victim. *)
