module N = Tka_circuit.Netlist
module TW = Tka_sta.Timing_window
module Interval = Tka_util.Interval

type classification = {
  fa_true : Coupled_noise.directed list;
  fa_false : Coupled_noise.directed list;
}

let sensitive_interval ?(margin = 0.) w =
  let t50 = w.TW.lat and slew = w.TW.slew_late in
  Interval.make
    (t50 -. slew -. margin)
    (t50 +. (Victim_noise.saturation_slews *. slew) +. margin)

let is_false ~margin ~windows nl (d : Coupled_noise.directed) =
  let vw : TW.t = windows d.Coupled_noise.dc_victim in
  let aw : TW.t = windows d.Coupled_noise.dc_aggressor in
  let margin =
    match margin with Some m -> m | None -> 0.1 *. vw.TW.slew_late
  in
  let sensitive = sensitive_interval ~margin vw in
  let pulse = Coupled_noise.pulse nl ~agg_slew:aw.TW.slew_late d in
  let onset = TW.onset_interval aw in
  (* earliest and latest instants the pulse can be non-zero *)
  let reach =
    Interval.make (Interval.lo onset)
      (Interval.hi onset +. Tka_waveform.Pulse.end_time pulse)
  in
  not (Interval.overlaps reach sensitive)

let classify ?margin ~windows nl =
  let fa_true = ref [] and fa_false = ref [] in
  for v = N.num_nets nl - 1 downto 0 do
    List.iter
      (fun d ->
        if is_false ~margin ~windows nl d then fa_false := d :: !fa_false
        else fa_true := d :: !fa_true)
      (Coupled_noise.aggressors_of_victim nl v)
  done;
  { fa_true = !fa_true; fa_false = !fa_false }

let false_fraction c =
  let t = List.length c.fa_true and f = List.length c.fa_false in
  if t + f = 0 then 0. else float_of_int f /. float_of_int (t + f)
