(** Per-coupling noise pulses in the linear (Thevenin) framework.

    For a coupling capacitor [Cc] between an aggressor and a victim
    held by resistance [R] over total victim capacitance [Ct], one
    aggressor transition injects a charge-sharing bump:

    - peak [Vp = (Cc / Ct) * tau / (tau + slew/2)] in Vdd units, where
      [tau = R * Ct] — fast aggressors against a slow holding network
      couple the full charge-sharing ratio, slow aggressors much less;
    - rise time = the aggressor transition time;
    - decay constant = [tau].

    The pulse's time origin ([onset = 0]) is the {e start} of the
    aggressor transition; envelope construction shifts it into the
    aggressor's switching window. *)

type directed = {
  dc_coupling : Tka_circuit.Netlist.coupling_id;
  dc_victim : Tka_circuit.Netlist.net_id;
  dc_aggressor : Tka_circuit.Netlist.net_id;
}
(** One side of a coupling cap, viewed as "aggressor [dc_aggressor]
    attacking victim [dc_victim]". *)

val aggressors_of_victim :
  Tka_circuit.Netlist.t -> Tka_circuit.Netlist.net_id -> directed list
(** Every directed coupling attacking the given net (its primary
    aggressors). *)

val directed_id : directed -> int
(** Dense id of a directed coupling: [2 * coupling + side], where side
    0 attacks the lower-numbered net. The unit of the top-k problem —
    the paper's "aggressor–victim coupling" is directional. *)

val of_directed_id : Tka_circuit.Netlist.t -> int -> directed
(** Inverse of {!directed_id}. *)

val directed_of_coupling :
  Tka_circuit.Netlist.t ->
  victim:Tka_circuit.Netlist.net_id ->
  Tka_circuit.Netlist.coupling_id ->
  directed
(** View a coupling from a chosen victim side. *)

val peak :
  Tka_circuit.Netlist.t ->
  victim:Tka_circuit.Netlist.net_id ->
  coupling_cap:float ->
  agg_slew:float ->
  float
(** The peak formula above. *)

val pulse :
  Tka_circuit.Netlist.t -> agg_slew:float -> directed -> Tka_waveform.Pulse.t
(** The full pulse for a directed coupling, [onset = 0]. *)
