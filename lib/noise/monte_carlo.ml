module N = Tka_circuit.Netlist
module TW = Tka_sta.Timing_window
module Interval = Tka_util.Interval
module Rng = Tka_util.Rng
module Pwl = Tka_waveform.Pwl
module Envelope = Tka_waveform.Envelope

type stats = {
  mc_samples : int;
  mc_mean : float;
  mc_max : float;
  mc_p95 : float;
  mc_bound : float;
}

let sample_victim ~rng ~samples ~windows nl victim =
  if samples <= 0 then invalid_arg "Monte_carlo.sample_victim: samples must be positive";
  let ds = Coupled_noise.aggressors_of_victim nl victim in
  let vt = Victim_noise.victim_transition ~windows ~own_noise:0. victim in
  let prepared =
    List.map
      (fun d ->
        let aw : TW.t = windows d.Coupled_noise.dc_aggressor in
        let pulse = Coupled_noise.pulse nl ~agg_slew:aw.TW.slew_late d in
        (Tka_waveform.Pulse.waveform pulse, TW.onset_interval aw))
      ds
  in
  let one_trial () =
    let placed =
      List.map
        (fun (wave, onset) ->
          let t = Rng.float_in rng (Interval.lo onset) (Interval.hi onset) in
          Pwl.shift_x t wave)
        prepared
    in
    let combined = Envelope.of_waveform (Pwl.sum placed) in
    Victim_noise.delay_noise_of_envelope ~victim:vt combined
  in
  let draws = List.init samples (fun _ -> one_trial ()) in
  let bound =
    Victim_noise.delay_noise nl ~windows ~victim ds
  in
  {
    mc_samples = samples;
    mc_mean = Tka_util.Stats.mean draws;
    mc_max = snd (Tka_util.Stats.min_max draws);
    mc_p95 = Tka_util.Stats.percentile 95. draws;
    mc_bound = bound;
  }
