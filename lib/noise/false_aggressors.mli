(** False-aggressor identification by timing filtering.

    The paper's introduction points at [Belkhale/Suess '95] and
    [Chai et al. '03]: many couplings can never produce delay noise
    because the aggressor's switching window cannot align with the
    victim's transition, and pruning them up front shrinks every later
    analysis. This module implements the timing filter: a directed
    coupling is {e false} when the aggressor's noise envelope —
    however it is placed inside the aggressor's own window — ends
    before the victim's sensitive interval begins or starts after it
    ends.

    The victim's sensitive interval is
    [\[t50 − slew, t50 + saturation_slews·slew\]]: disturbances wholly
    before it act on a settled-low node, wholly after it act on a node
    the driver has already restored.

    The filter is sound with respect to the single-pass analysis: a
    coupling classified false has exactly zero delay noise in those
    windows (windows may widen across noise iterations, so a margin is
    applied for use as a pre-filter). *)

type classification = {
  fa_true : Coupled_noise.directed list;  (** can contribute delay noise *)
  fa_false : Coupled_noise.directed list;  (** provably zero contribution *)
}

val sensitive_interval :
  ?margin:float -> Tka_sta.Timing_window.t -> Tka_util.Interval.t
(** The interval of instants at which a disturbance can shift the
    window's latest transition, expanded by [margin] (default 0) on
    both sides. *)

val classify :
  ?margin:float ->
  windows:Envelope_builder.windows ->
  Tka_circuit.Netlist.t ->
  classification
(** Partition every directed coupling of the design. [margin] (ns,
    default 10% of the victim slew) guards against window growth in
    later noise iterations. *)

val false_fraction : classification -> float
(** Share of directed couplings classified false. *)
