(** Path-oriented delay-noise accounting.

    Circuit delay noise accumulates stage by stage along the critical
    path; designers reason about "how much of my path's slack did
    crosstalk eat, and at which stage". This module projects a fixpoint
    noise analysis onto a timing path and reports the per-stage
    breakdown, the classic path report of a noise-aware STA. *)

type stage = {
  ps_net : Tka_circuit.Netlist.net_id;
  ps_arrival_noiseless : float;  (** LAT without noise, ns *)
  ps_arrival_noisy : float;  (** LAT in the fixpoint analysis, ns *)
  ps_own_noise : float;  (** delay noise injected at this net, ns *)
  ps_aggressors : int;  (** directed couplings attacking this net *)
}

type t = {
  pn_stages : stage list;  (** input-to-output order *)
  pn_noiseless_arrival : float;  (** path endpoint LAT without noise *)
  pn_noisy_arrival : float;  (** path endpoint LAT with noise *)
}

val of_path : Iterate.t -> Tka_sta.Critical_path.path -> t
(** Annotate a path (usually from {!Tka_sta.Critical_path.worst} on the
    noisy analysis) with both analyses' arrivals. *)

val worst_path : Iterate.t -> t
(** The noisy critical path of the design, annotated. *)

val total_path_noise : t -> float
(** [pn_noisy_arrival − pn_noiseless_arrival]. *)

val render : Tka_circuit.Netlist.t -> t -> string
(** Human-readable stage table. *)
