(** Monte-Carlo alignment sampling.

    The trapezoidal envelope is a {e bound}: it assumes every aggressor
    can align adversarially within its window. Sampling concrete
    alignments uniformly from the windows gives the distribution of
    delay noise an actual silicon instance would see, quantifies the
    bound's conservatism, and — because every sample must stay below
    the bound — provides a strong differential check on the envelope
    machinery (used by the property tests). *)

type stats = {
  mc_samples : int;
  mc_mean : float;  (** mean sampled delay noise, ns *)
  mc_max : float;  (** worst sampled delay noise, ns *)
  mc_p95 : float;
  mc_bound : float;  (** the envelope worst case it must stay under *)
}

val sample_victim :
  rng:Tka_util.Rng.t ->
  samples:int ->
  windows:Envelope_builder.windows ->
  Tka_circuit.Netlist.t ->
  Tka_circuit.Netlist.net_id ->
  stats
(** Sample delay noise at one victim: each trial draws one switching
    instant per aggressor uniformly from its onset window, superposes
    the concretely-placed pulses and measures the t50 shift of the
    victim's latest transition. *)
