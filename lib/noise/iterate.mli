(** Iterative noise / timing-window fixpoint analysis.

    Delay noise and timing windows depend on each other (the
    chicken-and-egg problem of Section 1): noise widens a net's window;
    a wider window lets the net couple more noise downstream — this is
    what makes indirect (secondary, tertiary, ...) aggressors matter.
    Following Sapatnekar's iterative scheme, the analysis alternates

    + STA with per-net extra late push = current noise estimates,
    + per-victim worst-case delay noise with the resulting windows,

    until the noise vector is stable. Starting [`From_noiseless]
    ascends to the least fixpoint; [`From_all_overlap] starts from the
    infinite-window noise bound and descends (the two standard starting
    points; both converge on a complete lattice, per Zhou). Industrial
    tools report 3–4 iterations; so does this implementation on the
    generated benchmarks.

    The [active] predicate selects which directed couplings inject
    noise: the whole design for ordinary analysis, only a candidate set
    when evaluating a top-k addition set, or everything {e except} a
    candidate set for elimination. *)

type mode = From_noiseless | From_all_overlap

type t = {
  analysis : Tka_sta.Analysis.t;  (** final STA, windows include noise *)
  base : Tka_sta.Analysis.t;  (** noiseless STA of the same netlist *)
  noise : float array;  (** per-net delay noise at the fixpoint *)
  iterations : int;  (** sweeps executed *)
  converged : bool;
}

val run :
  ?mode:mode ->
  ?active:(Coupled_noise.directed -> bool) ->
  ?max_iterations:int ->
  ?tolerance:float ->
  ?env_memo:Envelope_builder.memo ->
  Tka_circuit.Topo.t ->
  t
(** Defaults: [From_noiseless], all couplings active, at most 30
    iterations, tolerance 1e-4 ns (0.1 ps). [env_memo] reuses
    per-aggressor envelopes across passes and across runs that share
    the memo — aggressor windows typically stop moving after the first
    pass or two, so later passes (and re-evaluations of nearby coupling
    sets, as in the exact re-ranking loops) hit instead of rebuilding;
    results are bitwise-identical either way, but the memo is not
    thread-safe and must stay confined to sequential use. Logs a
    warning (source
    [iterate]) if the iteration cap is hit before convergence; each run
    updates the [iterate.runs]/[iterate.passes] counters and the
    [iterate.last_residual_ns] gauge when {!Tka_obs.Metrics} is
    enabled. *)

val circuit_delay : t -> float
(** Max noisy LAT over primary outputs. *)

val noiseless_delay : t -> float

val total_delay_noise : t -> float
(** [circuit_delay - noiseless_delay]. *)

val windows : t -> Envelope_builder.windows
(** Accessor for the final (noisy) windows. *)

val net_noise : t -> Tka_circuit.Netlist.net_id -> float
