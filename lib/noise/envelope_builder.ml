module N = Tka_circuit.Netlist
module TW = Tka_sta.Timing_window
module Envelope = Tka_waveform.Envelope
module Interval = Tka_util.Interval

type windows = N.net_id -> TW.t

let onset_window ~extra_lat windows d =
  let w = windows d.Coupled_noise.dc_aggressor in
  let w = if extra_lat > 0. then TW.extend_lat extra_lat w else w in
  (w, TW.onset_interval w)

let of_directed_widened nl ~windows ~extra_lat d =
  if extra_lat < 0. then invalid_arg "Envelope_builder: negative extra_lat";
  let w, onset = onset_window ~extra_lat windows d in
  let pulse = Coupled_noise.pulse nl ~agg_slew:w.TW.slew_late d in
  Envelope.of_pulse ~window:onset pulse

let of_directed nl ~windows d = of_directed_widened nl ~windows ~extra_lat:0. d

(* Keyed by the directed coupling and the exact aggressor window it was
   built under: the pulse is a pure function of the netlist and the
   window's late slew, so equal keys mean bitwise-equal envelopes.
   Re-keying on the window floats (rather than an iteration counter)
   lets hits survive across noise iterations whose windows settled. *)
type memo = (int * float * float * float * float, Envelope.t) Hashtbl.t

let create_memo () : memo = Hashtbl.create 256

let of_directed_memo (memo : memo) nl ~windows d =
  let w : TW.t = windows d.Coupled_noise.dc_aggressor in
  let key =
    (Coupled_noise.directed_id d, w.TW.eat, w.TW.lat, w.TW.slew_early,
     w.TW.slew_late)
  in
  match Hashtbl.find_opt memo key with
  | Some e -> e
  | None ->
    let e = of_directed nl ~windows d in
    Hashtbl.add memo key e;
    e

let with_window nl ~window d =
  let pulse = Coupled_noise.pulse nl ~agg_slew:window.TW.slew_late d in
  Envelope.of_pulse ~window:(TW.onset_interval window) pulse

let unconstrained nl ~windows ~span d =
  let w = windows d.Coupled_noise.dc_aggressor in
  let pulse = Coupled_noise.pulse nl ~agg_slew:w.TW.slew_late d in
  (* Sweep the onset over a window wide enough that the flat top covers
     [span] entirely. *)
  let pulse_len = Tka_waveform.Pulse.end_time pulse -. 0. in
  let window =
    Interval.make (Interval.lo span -. pulse_len) (Interval.hi span +. pulse_len)
  in
  Envelope.of_pulse ~window pulse

let combined nl ~windows ds =
  Envelope.combine (List.map (of_directed nl ~windows) ds)
