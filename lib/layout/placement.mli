(** Levelised grid placement.

    Replaces the commercial APR step of the paper's flow: gates are
    placed column-by-logic-level on a row grid, with a random row
    permutation per column so that physical adjacency (which drives
    coupling) is not perfectly correlated with logic structure —
    matching the statistical situation a real placer produces, where a
    victim couples both to logically-related and unrelated nets. *)

type t

val row_pitch : float
(** Vertical distance between adjacent rows, µm (2.0). *)

val column_pitch : float
(** Horizontal distance between logic levels, µm (8.0). *)

val place : rng:Tka_util.Rng.t -> Tka_circuit.Topo.t -> t
(** Compute coordinates for all gates and primary-input ports. *)

val topo : t -> Tka_circuit.Topo.t
val netlist : t -> Tka_circuit.Netlist.t

val gate_position : t -> Tka_circuit.Netlist.gate_id -> Geometry.point

val net_source : t -> Tka_circuit.Netlist.net_id -> Geometry.point
(** Where the net is driven from: its driver gate's output, or the
    primary-input port on the left edge. *)

val net_sinks : t -> Tka_circuit.Netlist.net_id -> Geometry.point list
(** Input-pin positions of the gates the net feeds (the right edge for
    primary outputs without sinks). *)

val num_rows : t -> int
