(** Geometric coupling-capacitance extraction.

    Replaces the commercial extractor of the paper's flow. Two parallel
    route segments of different nets couple when they share projection
    overlap and run within {!max_gap_tracks} routing tracks of each
    other; the capacitance follows a parallel-plate-with-fringe model:

    [cap = unit_cap * overlap / gap_tracks^2]

    The quadratic gap decay concentrates coupling on physical
    neighbours, which is what makes a small top-k set capture most of
    the delay noise — the property the paper's experiments rely on. *)

type extracted = {
  ex_net_a : Tka_circuit.Netlist.net_id;
  ex_net_b : Tka_circuit.Netlist.net_id;
  ex_cap : float;  (** pF *)
}

val unit_cap : float
(** 0.00016 pF per µm of adjacent-track overlap. *)

val max_gap_tracks : int
(** 4: segments more than 4 tracks apart do not couple. *)

val extract : Routing.t -> extracted list
(** All coupled pairs, one entry per unordered net pair (parallel
    segment contributions summed), sorted by decreasing capacitance. *)

val trim : target:int -> extracted list -> extracted list * int
(** [trim ~target caps] keeps the [target] largest couplings; returns
    them with the number actually available (callers report a shortfall
    instead of silently under-delivering). *)
