(** Trunk-and-branch global routing.

    Each net is routed as an L-shape from its source to every sink
    (shared trunk not modelled; overlapping branch segments simply add
    length, which is a pessimism comparable to real global routes).
    Wire parasitics derive from routed length:
    cap {!cap_per_um} pF/µm, resistance {!res_per_um} kΩ/µm. *)

type t

val cap_per_um : float
(** 0.00020 pF/µm (0.2 fF/µm). *)

val res_per_um : float
(** 0.0008 kΩ/µm. *)

val route : Placement.t -> t

val placement : t -> Placement.t

val segments_of_net : t -> Tka_circuit.Netlist.net_id -> Geometry.segment list

val all_segments : t -> (Tka_circuit.Netlist.net_id * Geometry.segment) list

val wire_length : t -> Tka_circuit.Netlist.net_id -> float
(** Total routed length, µm. *)

val wire_cap : t -> Tka_circuit.Netlist.net_id -> float
(** pF, includes a fixed 2 fF via/pin allowance. *)

val wire_res : t -> Tka_circuit.Netlist.net_id -> float
(** kΩ, includes a fixed 0.05 kΩ driver/via allowance. *)
