module N = Tka_circuit.Netlist
module Builder = Tka_circuit.Builder
module Topo = Tka_circuit.Topo
module Spef = Tka_circuit.Spef_lite
module Cell = Tka_cell.Cell
module Lib = Tka_cell.Default_lib
module Rng = Tka_util.Rng

module Log = Tka_obs.Log

let log_src = Log.Src.create "layout" ~doc:"synthetic layout and benchmarks"

type spec = {
  sp_name : string;
  sp_gates : int;
  sp_inputs : int;
  sp_depth : int;
  sp_couplings : int;
  sp_seed : int;
}

(* ------------------------------------------------------------------ *)
(* Random levelised DAG                                               *)
(* ------------------------------------------------------------------ *)

(* Pick a gate arity: two-input cells dominate, as in mapped netlists. *)
let pick_arity rng =
  let r = Rng.float rng 1.0 in
  if r < 0.25 then 1 else if r < 0.80 then 2 else 3

(* Bias toward X1 drives: real netlists upsize only critical drivers. *)
let pick_cell rng arity =
  let r = Rng.float rng 1.0 in
  let drive = if r < 0.70 then "X1" else if r < 0.92 then "X2" else "X4" in
  let has_suffix c =
    let n = c.Cell.name in
    String.length n > 3 && String.sub n (String.length n - 2) 2 = drive
  in
  let candidates =
    Array.of_list (List.filter has_suffix (Lib.combinational_of_arity arity))
  in
  Rng.pick rng candidates

(* Distribute [gates] over [depth] levels, at least one per level, with
   a mild bulge in the middle (netlists are widest mid-cone). *)
let level_sizes rng ~gates ~depth =
  let sizes = Array.make depth 1 in
  let remaining = ref (gates - depth) in
  if !remaining < 0 then
    invalid_arg "Benchmarks: more levels than gates";
  let weights =
    Array.init depth (fun i ->
        let x = (float_of_int i +. 0.5) /. float_of_int depth in
        0.5 +. (sin (Float.pi *. x) *. (1.0 +. Rng.float rng 0.4)))
  in
  let wsum = Array.fold_left ( +. ) 0. weights in
  (* proportional allocation, then distribute the remainder randomly *)
  let planned = Array.map (fun w -> w /. wsum *. float_of_int !remaining) weights in
  Array.iteri
    (fun i p ->
      let extra = int_of_float p in
      sizes.(i) <- sizes.(i) + extra;
      remaining := !remaining - extra)
    planned;
  while !remaining > 0 do
    let i = Rng.int rng depth in
    sizes.(i) <- sizes.(i) + 1;
    decr remaining
  done;
  sizes

(* Choose a source net for a gate input: strong locality bias toward the
   immediately preceding levels, occasional long hop — this is what
   creates deep fanin cones and hence indirect (secondary, tertiary)
   aggressors. *)
let pick_source rng ~levels_nets ~sink_count ~max_fanout ~level =
  let max_back = level in
  let attempt () =
    let back =
      let r = Rng.float rng 1.0 in
      if r < 0.65 then 1
      else if r < 0.95 then min 2 max_back
      else 1 + Rng.int rng (min max_back 5)
    in
    let src_level = max 0 (level - back) in
    let pool : N.net_id array = levels_nets.(src_level) in
    Rng.pick rng pool
  in
  (* Resample a few times to avoid mega-fanout nets; synthesis would
     have buffered those. *)
  let rec go tries =
    let nid = attempt () in
    if tries = 0 || sink_count nid < max_fanout then nid else go (tries - 1)
  in
  go 6

let build_dag spec rng =
  let b = Builder.create ~name:spec.sp_name () in
  let inputs =
    Array.init spec.sp_inputs (fun i -> Builder.add_input b (Printf.sprintf "pi%d" i))
  in
  let depth = spec.sp_depth in
  let sizes = level_sizes rng ~gates:spec.sp_gates ~depth in
  let levels_nets = Array.make (depth + 1) [||] in
  levels_nets.(0) <- inputs;
  let sink_counts = Hashtbl.create (spec.sp_gates * 2) in
  let sink_count nid = Option.value ~default:0 (Hashtbl.find_opt sink_counts nid) in
  let note_sink nid = Hashtbl.replace sink_counts nid (sink_count nid + 1) in
  let max_fanout = 5 in
  let gate_no = ref 0 in
  for level = 1 to depth do
    let count = sizes.(level - 1) in
    let outs = Array.make count 0 in
    for j = 0 to count - 1 do
      let cell = pick_cell rng (pick_arity rng) in
      incr gate_no;
      let gname = Printf.sprintf "g%d" !gate_no in
      let out = Builder.add_net b (Printf.sprintf "n%d" !gate_no) in
      (* first input pinned to the previous level to guarantee depth *)
      let pins = Cell.input_names cell in
      let bindings =
        List.mapi
          (fun k pin ->
            let src =
              if k = 0 then Rng.pick rng levels_nets.(level - 1)
              else pick_source rng ~levels_nets ~sink_count ~max_fanout ~level
            in
            note_sink src;
            (pin, src))
          pins
      in
      ignore (Builder.add_gate b ~name:gname ~cell ~inputs:bindings ~output:out);
      outs.(j) <- out
    done;
    levels_nets.(level) <- outs
  done;
  (* sink-less nets become primary outputs implicitly at finalize *)
  Builder.finalize b

(* ------------------------------------------------------------------ *)
(* Full flow: DAG -> placement -> routing -> extraction -> annotate   *)
(* ------------------------------------------------------------------ *)

(* Post-route driver sizing: upsize cells whose output load is heavy,
   as synthesis would after routing estimates. One pass suffices for the
   generated load distributions. Pin names are identical across drive
   variants, so the substitution is structure-preserving. *)
let resize_drivers nl =
  let pick_variant cell load =
    let name = cell.Cell.name in
    match String.rindex_opt name '_' with
    | None -> cell
    | Some i ->
      let base = String.sub name 0 i in
      let want = if load > 0.050 then "X4" else if load > 0.025 then "X2" else "X1" in
      Option.value ~default:cell (Lib.find (base ^ "_" ^ want))
  in
  Tka_circuit.Transform.map
    ~cell_of:(fun g -> pick_variant g.N.cell (N.total_cap nl g.N.fanout))
    nl

let generate spec =
  let rng = Rng.create spec.sp_seed in
  let logical = build_dag spec (Rng.split rng) in
  let topo = Topo.create logical in
  let placement = Placement.place ~rng:(Rng.split rng) topo in
  let routing = Routing.route placement in
  let extracted = Coupling_extract.extract routing in
  let kept, available = Coupling_extract.trim ~target:spec.sp_couplings extracted in
  if available < spec.sp_couplings then
    Log.warn log_src (fun m ->
        m
          ~fields:
            [
              Log.str "circuit" spec.sp_name;
              Log.int "extracted" available;
              Log.int "target" spec.sp_couplings;
            ]
          "%s: extraction produced %d couplings, target was %d" spec.sp_name
          available spec.sp_couplings);
  let net_name id = (N.net logical id).N.net_name in
  let annotation =
    {
      Spef.design = Some spec.sp_name;
      ground =
        Array.to_list (N.nets logical)
        |> List.map (fun n ->
               ( n.N.net_name,
                 Routing.wire_cap routing n.N.net_id,
                 Routing.wire_res routing n.N.net_id ));
      couplings =
        List.map
          (fun e ->
            ( net_name e.Coupling_extract.ex_net_a,
              net_name e.Coupling_extract.ex_net_b,
              e.Coupling_extract.ex_cap ))
          kept;
    }
  in
  resize_drivers (Spef.apply annotation logical)

(* Depths tuned so the noiseless circuit delays land in the same range
   as the paper's Table 2 "no aggressor" column. *)
let all_specs =
  [
    { sp_name = "i1"; sp_gates = 59; sp_inputs = 8; sp_depth = 7; sp_couplings = 232; sp_seed = 101 };
    { sp_name = "i2"; sp_gates = 222; sp_inputs = 18; sp_depth = 9; sp_couplings = 706; sp_seed = 102 };
    { sp_name = "i3"; sp_gates = 132; sp_inputs = 14; sp_depth = 6; sp_couplings = 551; sp_seed = 103 };
    { sp_name = "i4"; sp_gates = 236; sp_inputs = 20; sp_depth = 10; sp_couplings = 1181; sp_seed = 104 };
    { sp_name = "i5"; sp_gates = 204; sp_inputs = 12; sp_depth = 13; sp_couplings = 1835; sp_seed = 105 };
    { sp_name = "i6"; sp_gates = 735; sp_inputs = 30; sp_depth = 12; sp_couplings = 7298; sp_seed = 106 };
    { sp_name = "i7"; sp_gates = 937; sp_inputs = 33; sp_depth = 11; sp_couplings = 9605; sp_seed = 107 };
    { sp_name = "i8"; sp_gates = 1609; sp_inputs = 44; sp_depth = 19; sp_couplings = 10235; sp_seed = 108 };
    { sp_name = "i9"; sp_gates = 1018; sp_inputs = 36; sp_depth = 17; sp_couplings = 14140; sp_seed = 109 };
    { sp_name = "i10"; sp_gates = 3379; sp_inputs = 64; sp_depth = 30; sp_couplings = 18318; sp_seed = 110 };
  ]

let spec_of_name n = List.find_opt (fun s -> s.sp_name = n) all_specs

let by_name n = Option.map generate (spec_of_name n)

(* The classic ISCAS-85 c17: six NAND2 gates, five inputs, two outputs.
   Coupling caps are placed between the internal nets as a small
   realistic crosstalk scenario. *)
let c17 () =
  let b = Builder.create ~name:"c17" () in
  let i1 = Builder.add_input b "G1" in
  let i2 = Builder.add_input b "G2" in
  let i3 = Builder.add_input b "G3" in
  let i4 = Builder.add_input b "G4" in
  let i5 = Builder.add_input b "G5" in
  let n10 = Builder.add_net b "G10" in
  let n11 = Builder.add_net b "G11" in
  let n16 = Builder.add_net b "G16" in
  let n19 = Builder.add_net b "G19" in
  let n22 = Builder.add_net b "G22" in
  let n23 = Builder.add_net b "G23" in
  let nand2 = Lib.find_exn "NAND2_X1" in
  ignore (Builder.add_gate b ~name:"g10" ~cell:nand2 ~inputs:[ ("A", i1); ("B", i3) ] ~output:n10);
  ignore (Builder.add_gate b ~name:"g11" ~cell:nand2 ~inputs:[ ("A", i3); ("B", i4) ] ~output:n11);
  ignore (Builder.add_gate b ~name:"g16" ~cell:nand2 ~inputs:[ ("A", i2); ("B", n11) ] ~output:n16);
  ignore (Builder.add_gate b ~name:"g19" ~cell:nand2 ~inputs:[ ("A", n11); ("B", i5) ] ~output:n19);
  ignore (Builder.add_gate b ~name:"g22" ~cell:nand2 ~inputs:[ ("A", n10); ("B", n16) ] ~output:n22);
  ignore (Builder.add_gate b ~name:"g23" ~cell:nand2 ~inputs:[ ("A", n16); ("B", n19) ] ~output:n23);
  Builder.mark_output b n22;
  Builder.mark_output b n23;
  List.iter
    (fun (x, z, cap) -> ignore (Builder.add_coupling b x z cap))
    [
      (n10, n11, 0.0035);
      (n11, n16, 0.0040);
      (n16, n19, 0.0045);
      (n10, n16, 0.0020);
      (n19, n23, 0.0030);
      (n22, n23, 0.0038);
    ];
  Builder.finalize b

let tiny () =
  let b = Builder.create ~name:"tiny" () in
  let a = Builder.add_input b "a" in
  let c = Builder.add_input b "c" in
  let d = Builder.add_input b "d" in
  let n1 = Builder.add_net b "n1" in
  let n2 = Builder.add_net b "n2" in
  let n3 = Builder.add_net b "n3" in
  let n4 = Builder.add_net b "n4" in
  let n5 = Builder.add_net b "n5" in
  let y = Builder.add_net b "y" in
  let inv = Lib.find_exn "INV_X1" in
  let nand2 = Lib.find_exn "NAND2_X1" in
  let nor2 = Lib.find_exn "NOR2_X1" in
  ignore (Builder.add_gate b ~name:"g1" ~cell:inv ~inputs:[ ("A", a) ] ~output:n1);
  ignore (Builder.add_gate b ~name:"g2" ~cell:nand2 ~inputs:[ ("A", n1); ("B", c) ] ~output:n2);
  ignore (Builder.add_gate b ~name:"g3" ~cell:inv ~inputs:[ ("A", d) ] ~output:n3);
  ignore (Builder.add_gate b ~name:"g4" ~cell:nor2 ~inputs:[ ("A", n2); ("B", n3) ] ~output:n4);
  ignore (Builder.add_gate b ~name:"g5" ~cell:inv ~inputs:[ ("A", n3) ] ~output:n5);
  ignore (Builder.add_gate b ~name:"g6" ~cell:nand2 ~inputs:[ ("A", n4); ("B", n5) ] ~output:y);
  Builder.mark_output b y;
  List.iter
    (fun (x, z, cap) -> ignore (Builder.add_coupling b x z cap))
    [
      (n1, n2, 0.004);
      (n1, n3, 0.003);
      (n2, n4, 0.005);
      (n2, n3, 0.002);
      (n3, n4, 0.004);
      (n4, n5, 0.006);
      (n5, y, 0.005);
      (n2, y, 0.003);
    ];
  Builder.finalize b
