(** Rectilinear geometry for the synthetic layout.

    Coordinates are in microns on a standard-cell-style grid: gates sit
    at grid points, wires run on horizontal and vertical tracks. *)

type point = { x : float; y : float }

type orientation = Horizontal | Vertical

type segment = {
  orientation : orientation;
  track : float;  (** y for horizontal segments, x for vertical *)
  s_lo : float;  (** start along the running direction *)
  s_hi : float;  (** end, [s_hi >= s_lo] *)
}

val point : float -> float -> point

val hseg : y:float -> x0:float -> x1:float -> segment
(** Horizontal segment; endpoints in either order. *)

val vseg : x:float -> y0:float -> y1:float -> segment

val length : segment -> float

val parallel_overlap : segment -> segment -> float
(** Length of the common projection of two {e parallel} segments along
    their running direction; 0 for perpendicular segments or disjoint
    projections. *)

val track_distance : segment -> segment -> float option
(** Distance between the tracks of two parallel segments; [None] for
    perpendicular segments. *)

val l_route : point -> point -> segment list
(** Horizontal-then-vertical connection between two points (at most two
    non-degenerate segments). *)

val manhattan : point -> point -> float

val total_length : segment list -> float
