module N = Tka_circuit.Netlist
module Builder = Tka_circuit.Builder
module Cell = Tka_cell.Cell
module Lib = Tka_cell.Default_lib
module Rng = Tka_util.Rng
module Log = Tka_obs.Log

let log_src = Log.Src.create "layout" ~doc:"synthetic layout and benchmarks"

type spec = {
  tx_name : string;
  tx_nets : int;
  tx_cones : int;
  tx_density : float;
  tx_max_fanout : int;
  tx_seed : int;
}

let default_cones nets = max 4 (min 512 (nets / 2000))

let spec ?cones ?(density = 2.0) ?(max_fanout = 6) ?(seed = 11007) ~nets () =
  if nets < 64 then invalid_arg "Table2x.spec: nets must be >= 64";
  {
    tx_name = Printf.sprintf "t2x-%d" nets;
    tx_nets = nets;
    tx_cones = (match cones with Some c -> max 1 c | None -> default_cones nets);
    tx_density = density;
    tx_max_fanout = max 2 max_fanout;
    tx_seed = seed;
  }

(* The i1–i10 flow runs placement, routing and geometric extraction —
   quadratic-ish constants that are fine at 20k nets and hopeless at a
   million. table2x instead emits the netlist directly: [tx_cones]
   independent levelised DAGs (no net, gate or coupling crosses a cone
   boundary, so {!Tka_circuit.Topo.cone_shards} recovers at least
   [tx_cones] shards), with couplings drawn between creation-order
   neighbours inside a cone — nets of the same or adjacent levels,
   whose switching windows overlap and so actually attack each other.

   Every draw comes from the single seeded stream in a fixed order, so
   a spec pins the netlist exactly (the Tka_verify oracle checks a
   fingerprint of it). *)
let generate spec =
  let rng = Rng.create spec.tx_seed in
  let b = Builder.create ~name:spec.tx_name () in
  let cells =
    [|
      Array.of_list (Lib.combinational_of_arity 1);
      Array.of_list (Lib.combinational_of_arity 2);
      Array.of_list (Lib.combinational_of_arity 3);
    |]
  in
  let pick_cell arity = Rng.pick rng cells.(arity - 1) in
  let pick_arity () =
    let r = Rng.float rng 1.0 in
    if r < 0.25 then 1 else if r < 0.85 then 2 else 3
  in
  let cones = spec.tx_cones in
  let per_cone = max 16 (spec.tx_nets / cones) in
  let coupling_target =
    int_of_float (spec.tx_density *. float_of_int spec.tx_nets) / cones
  in
  (* couplings already incident per net: a cap keeps any single victim's
     primary-aggressor list (and so the per-victim enumeration cost)
     bounded regardless of density *)
  let max_deg = 8 in
  let deg = Hashtbl.create (2 * spec.tx_nets) in
  let deg_of n = Option.value ~default:0 (Hashtbl.find_opt deg n) in
  let bump_deg n = Hashtbl.replace deg n (deg_of n + 1) in
  for c = 0 to cones - 1 do
    let depth =
      max 3 (min 12 (int_of_float (Float.log (float_of_int per_cone) /. Float.log 2.)))
    in
    let width = max 2 (((per_cone - 1) / (depth + 1)) + 1) in
    let levels = Array.make (depth + 1) [||] in
    levels.(0) <-
      Array.init width (fun i -> Builder.add_input b (Printf.sprintf "c%d_pi%d" c i));
    let sink_counts = Hashtbl.create (2 * per_cone) in
    let sink_count n = Option.value ~default:0 (Hashtbl.find_opt sink_counts n) in
    let note_sink n = Hashtbl.replace sink_counts n (sink_count n + 1) in
    (* locality-biased source pick, resampled away from mega-fanout *)
    let pick_source level =
      let attempt () =
        let back =
          let r = Rng.float rng 1.0 in
          if r < 0.7 then 1 else if r < 0.95 then min 2 level else min (1 + Rng.int rng 4) level
        in
        let pool = levels.(level - back) in
        pool.(Rng.int rng (Array.length pool))
      in
      let rec go tries =
        let n = attempt () in
        if tries = 0 || sink_count n < spec.tx_max_fanout then n else go (tries - 1)
      in
      go 5
    in
    for level = 1 to depth do
      let outs = Array.make width 0 in
      for j = 0 to width - 1 do
        let cell = pick_cell (pick_arity ()) in
        let out = Builder.add_net b (Printf.sprintf "c%d_n%d_%d" c level j) in
        let bindings =
          List.mapi
            (fun kth pin ->
              let src =
                if kth = 0 then
                  (* pinned to the previous level: guarantees the depth *)
                  levels.(level - 1).(Rng.int rng (Array.length levels.(level - 1)))
                else pick_source level
              in
              note_sink src;
              (pin, src))
            (Cell.input_names cell)
        in
        ignore
          (Builder.add_gate b
             ~name:(Printf.sprintf "c%d_g%d_%d" c level j)
             ~cell ~inputs:bindings ~output:out);
        outs.(j) <- out
      done;
      levels.(level) <- outs
    done;
    (* Collector tree: fold every sink-less net (the whole last level
       plus mid-cone orphans) into one primary output per cone.
       Without it each orphan becomes an implicit output and sink
       selection goes quadratic in the output count. *)
    let orphans = ref [] in
    for level = depth downto 0 do
      Array.iter
        (fun n -> if sink_count n = 0 then orphans := n :: !orphans)
        levels.(level)
    done;
    let col = ref 0 in
    let collect cell ins =
      incr col;
      let out = Builder.add_net b (Printf.sprintf "c%d_col%d" c !col) in
      let bindings = List.map2 (fun pin src -> (pin, src)) (Cell.input_names cell) ins in
      ignore
        (Builder.add_gate b
           ~name:(Printf.sprintf "c%d_colg%d" c !col)
           ~cell ~inputs:bindings ~output:out);
      out
    in
    (* balanced reduction (rounds of 3-input folds): depth grows as
       log3 of the orphan count instead of linearly *)
    let rec reduce = function
      | [] -> None
      | [ o ] -> Some o
      | os ->
        let rec round acc = function
          | o1 :: o2 :: o3 :: tl ->
            round (collect (Rng.pick rng cells.(2)) [ o1; o2; o3 ] :: acc) tl
          | [ o1; o2 ] -> collect (Rng.pick rng cells.(1)) [ o1; o2 ] :: acc
          | [ o1 ] -> o1 :: acc
          | [] -> acc
        in
        reduce (List.rev (round [] os))
    in
    let final =
      match reduce !orphans with
      | Some o -> o
      | None -> levels.(depth).(0) (* unreachable: the last level has no sinks *)
    in
    Builder.mark_output b final;
    (* Couplings between creation-order neighbours of this cone: the
       level-by-level build makes index distance track level distance,
       so coupled nets switch in overlapping windows. *)
    let cone_nets = Array.concat (Array.to_list levels) in
    let nc = Array.length cone_nets in
    let placed = ref 0 in
    let attempts = ref 0 in
    let max_attempts = 8 * coupling_target in
    while !placed < coupling_target && !attempts < max_attempts do
      incr attempts;
      let i = Rng.int rng nc in
      let d = 1 + Rng.int rng (min (nc - 1) (2 * width)) in
      let j = if i + d < nc then i + d else i - d in
      let u = cone_nets.(i) and v = cone_nets.(j) in
      if u <> v && deg_of u < max_deg && deg_of v < max_deg then begin
        let cap = 0.002 +. Rng.float rng 0.004 in
        ignore (Builder.add_coupling b u v cap);
        bump_deg u;
        bump_deg v;
        incr placed
      end
    done
  done;
  let nl = Builder.finalize b in
  Log.info log_src (fun m ->
      m
        ~fields:
          [
            Log.str "circuit" spec.tx_name;
            Log.int "nets" (N.num_nets nl);
            Log.int "gates" (N.num_gates nl);
            Log.int "couplings" (N.num_couplings nl);
            Log.int "cones" cones;
          ]
        "%s: %d nets, %d gates, %d couplings in %d cones" spec.tx_name
        (N.num_nets nl) (N.num_gates nl) (N.num_couplings nl) cones);
  nl

(* "t2x-100k", "t2x-1m", "t2x-250000", ... *)
let spec_of_name name =
  let prefix = "t2x-" in
  let pl = String.length prefix in
  if String.length name <= pl || String.sub name 0 pl <> prefix then None
  else begin
    let num = String.sub name pl (String.length name - pl) in
    let parse s mult =
      match int_of_string_opt s with Some n when n > 0 -> Some (n * mult) | _ -> None
    in
    let nets =
      match String.lowercase_ascii num with
      | s when String.length s > 1 && s.[String.length s - 1] = 'k' ->
        parse (String.sub s 0 (String.length s - 1)) 1_000
      | s when String.length s > 1 && s.[String.length s - 1] = 'm' ->
        parse (String.sub s 0 (String.length s - 1)) 1_000_000
      | s -> parse s 1
    in
    match nets with
    | Some n when n >= 64 -> Some { (spec ~nets:n ()) with tx_name = name }
    | _ -> None
  end

let by_name name = Option.map generate (spec_of_name name)
