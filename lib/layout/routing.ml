module N = Tka_circuit.Netlist

type t = {
  placement : Placement.t;
  segments : Geometry.segment list array; (* by net id *)
  lengths : float array;
}

let cap_per_um = 0.00020
let res_per_um = 0.0008
let fixed_cap = 0.002
let fixed_res = 0.05

let route placement =
  let nl = Placement.netlist placement in
  let nn = N.num_nets nl in
  let segments = Array.make nn [] in
  let lengths = Array.make nn 0. in
  for nid = 0 to nn - 1 do
    let src = Placement.net_source placement nid in
    let sinks = Placement.net_sinks placement nid in
    let segs = List.concat_map (fun dst -> Geometry.l_route src dst) sinks in
    segments.(nid) <- segs;
    lengths.(nid) <- Geometry.total_length segs
  done;
  { placement; segments; lengths }

let placement t = t.placement

let segments_of_net t nid = t.segments.(nid)

let all_segments t =
  let out = ref [] in
  Array.iteri
    (fun nid segs -> List.iter (fun s -> out := (nid, s) :: !out) segs)
    t.segments;
  List.rev !out

let wire_length t nid = t.lengths.(nid)

let wire_cap t nid = fixed_cap +. (cap_per_um *. t.lengths.(nid))

let wire_res t nid = fixed_res +. (res_per_um *. t.lengths.(nid))
