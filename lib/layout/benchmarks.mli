(** Deterministic benchmark circuit generation (the i1–i10 suite).

    The paper evaluates on ten placed-and-routed benchmark circuits
    whose sizes are listed in Table 2 (# gates, # nets, # coupling
    caps). The original netlists and their commercial place-and-route
    data are not available, so this module regenerates statistically
    comparable circuits: a random levelised cell DAG with matched gate
    count and target logic depth, placed and routed by {!Placement} /
    {!Routing}, with coupling capacitances extracted geometrically by
    {!Coupling_extract} and trimmed to the paper's coupling-cap count.

    Generation is fully deterministic in the seed, so every build of
    the benchmark tables analyses byte-identical circuits. *)

type spec = {
  sp_name : string;
  sp_gates : int;
  sp_inputs : int;
  sp_depth : int;  (** target logic depth, tuned to land near the paper's noiseless delay *)
  sp_couplings : int;  (** coupling-cap count from Table 2 *)
  sp_seed : int;
}

val generate : spec -> Tka_circuit.Netlist.t
(** Build the circuit. Logs a warning (source [layout]) if
    extraction yields fewer couplings than [sp_couplings]; the netlist
    then carries what was extracted. *)

val spec_of_name : string -> spec option
(** ["i1"] … ["i10"]. *)

val all_specs : spec list
(** The ten Table-2 benchmarks in order. *)

val by_name : string -> Tka_circuit.Netlist.t option
(** [generate] composed with {!spec_of_name}. *)

val tiny : unit -> Tka_circuit.Netlist.t
(** A 6-gate hand-written circuit with 8 coupling caps — small enough
    for brute-force validation in tests and examples. *)

val c17 : unit -> Tka_circuit.Netlist.t
(** The classic ISCAS-85 c17 (six NAND2 gates, two outputs), decorated
    with six coupling capacitors between its internal nets. *)
