type point = { x : float; y : float }

type orientation = Horizontal | Vertical

type segment = {
  orientation : orientation;
  track : float;
  s_lo : float;
  s_hi : float;
}

let point x y = { x; y }

let ordered a b = if a <= b then (a, b) else (b, a)

let hseg ~y ~x0 ~x1 =
  let lo, hi = ordered x0 x1 in
  { orientation = Horizontal; track = y; s_lo = lo; s_hi = hi }

let vseg ~x ~y0 ~y1 =
  let lo, hi = ordered y0 y1 in
  { orientation = Vertical; track = x; s_lo = lo; s_hi = hi }

let length s = s.s_hi -. s.s_lo

let parallel_overlap a b =
  if a.orientation <> b.orientation then 0.
  else Float.max 0. (Float.min a.s_hi b.s_hi -. Float.max a.s_lo b.s_lo)

let track_distance a b =
  if a.orientation <> b.orientation then None
  else Some (Float.abs (a.track -. b.track))

let l_route p q =
  let segs = ref [] in
  if Float.abs (q.x -. p.x) > 0. then segs := hseg ~y:p.y ~x0:p.x ~x1:q.x :: !segs;
  if Float.abs (q.y -. p.y) > 0. then segs := vseg ~x:q.x ~y0:p.y ~y1:q.y :: !segs;
  List.rev !segs

let manhattan p q = Float.abs (q.x -. p.x) +. Float.abs (q.y -. p.y)

let total_length segs = List.fold_left (fun acc s -> acc +. length s) 0. segs
