module N = Tka_circuit.Netlist
module Topo = Tka_circuit.Topo
module Rng = Tka_util.Rng

type t = {
  topo : Topo.t;
  gate_pos : Geometry.point array; (* by gate id *)
  input_pos : (N.net_id, Geometry.point) Hashtbl.t;
  rows : int;
  right_edge : float;
}

let row_pitch = 2.0
let column_pitch = 8.0

let place ~rng topo =
  let nl = Topo.netlist topo in
  let ng = N.num_gates nl in
  (* Column of a gate = logic level of its output net. *)
  let column g = Topo.net_level topo (N.gate nl g).N.fanout in
  let max_col = ref 1 in
  for g = 0 to ng - 1 do
    max_col := max !max_col (column g)
  done;
  (* Rows: enough to hold the widest column, times a small whitespace
     factor so routed trunks do not all collide. *)
  let col_occupancy = Array.make (!max_col + 1) 0 in
  for g = 0 to ng - 1 do
    let c = column g in
    col_occupancy.(c) <- col_occupancy.(c) + 1
  done;
  let pis = List.length (N.inputs nl) in
  let widest = Array.fold_left max pis col_occupancy in
  let rows = max 2 (widest + (widest / 4) + 1) in
  let gate_pos = Array.make ng (Geometry.point 0. 0.) in
  (* Locality-aware rows: each gate wants the mean row of its fanin
     (plus jitter), like a crude quadratic placement; collisions within
     a column are resolved to the nearest free row. This keeps wire
     length independent of circuit size, as a real placer would. *)
  let net_row = Array.make (N.num_nets nl) 0. in
  let input_pos = Hashtbl.create (max 1 pis) in
  List.iteri
    (fun i nid ->
      (* spread primary inputs evenly over the rows *)
      let row =
        if pis <= 1 then rows / 2
        else i * (rows - 1) / (pis - 1)
      in
      net_row.(nid) <- float_of_int row;
      Hashtbl.replace input_pos nid
        (Geometry.point 0. (float_of_int row *. row_pitch)))
    (N.inputs nl);
  let occupied : (int * int, unit) Hashtbl.t = Hashtbl.create ng in
  let nearest_free_row col desired =
    let desired = max 0 (min (rows - 1) desired) in
    let rec probe d =
      let candidates =
        if d = 0 then [ desired ]
        else [ desired - d; desired + d ]
      in
      match
        List.find_opt
          (fun r -> r >= 0 && r < rows && not (Hashtbl.mem occupied (col, r)))
          candidates
      with
      | Some r -> r
      | None ->
        if d > rows then desired (* full column: allow overlap *)
        else probe (d + 1)
    in
    probe 0
  in
  Array.iter
    (fun g ->
      let c = column g in
      let fanin = (N.gate nl g).N.fanin in
      let mean =
        match fanin with
        | [] -> float_of_int (rows / 2)
        | _ :: _ ->
          List.fold_left (fun acc (_, nid) -> acc +. net_row.(nid)) 0. fanin
          /. float_of_int (List.length fanin)
      in
      let desired =
        int_of_float (Float.round (Rng.gaussian rng ~mean ~stddev:1.5))
      in
      let row = nearest_free_row c desired in
      Hashtbl.replace occupied (c, row) ();
      net_row.((N.gate nl g).N.fanout) <- float_of_int row;
      gate_pos.(g) <-
        Geometry.point
          (float_of_int c *. column_pitch)
          (float_of_int row *. row_pitch))
    (Topo.gate_order topo);
  {
    topo;
    gate_pos;
    input_pos;
    rows;
    right_edge = float_of_int (!max_col + 1) *. column_pitch;
  }

let topo t = t.topo
let netlist t = Topo.netlist t.topo

let gate_position t g = t.gate_pos.(g)

let net_source t nid =
  let nl = netlist t in
  match (N.net nl nid).N.driver with
  | N.Primary_input -> Hashtbl.find t.input_pos nid
  | N.Driven_by g -> t.gate_pos.(g)

let net_sinks t nid =
  let nl = netlist t in
  match (N.net nl nid).N.sinks with
  | [] ->
    (* primary output pad on the right edge, same row as the source *)
    [ Geometry.point t.right_edge (net_source t nid).Geometry.y ]
  | sinks -> List.map (fun s -> t.gate_pos.(s.N.sink_gate)) sinks

let num_rows t = t.rows
