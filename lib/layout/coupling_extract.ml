module N = Tka_circuit.Netlist
module G = Geometry

type extracted = { ex_net_a : N.net_id; ex_net_b : N.net_id; ex_cap : float }

let unit_cap = 0.00016
let max_gap_tracks = 4

let pair_key a b = if a < b then (a, b) else (b, a)

(* Bucket parallel segments by integer track index; only nearby buckets
   need comparing. *)
let extract routing =
  let track_pitch = Placement.row_pitch in
  let buckets : (G.orientation * int, (N.net_id * G.segment) list) Hashtbl.t =
    Hashtbl.create 1024
  in
  let bucket_of (s : G.segment) =
    (s.G.orientation, int_of_float (Float.round (s.G.track /. track_pitch)))
  in
  List.iter
    (fun (nid, seg) ->
      let key = bucket_of seg in
      let prev = Option.value ~default:[] (Hashtbl.find_opt buckets key) in
      Hashtbl.replace buckets key ((nid, seg) :: prev))
    (Routing.all_segments routing);
  let caps : (N.net_id * N.net_id, float) Hashtbl.t = Hashtbl.create 1024 in
  let consider (na, sa) (nb, sb) =
    if na <> nb then begin
      let overlap = G.parallel_overlap sa sb in
      if overlap > 0. then
        match G.track_distance sa sb with
        | Some d when d > 0. ->
          let gap = Float.max 1. (d /. track_pitch) in
          let cap = unit_cap *. overlap /. (gap *. gap) in
          if cap > 0. then begin
            let key = pair_key na nb in
            let prev = Option.value ~default:0. (Hashtbl.find_opt caps key) in
            Hashtbl.replace caps key (prev +. cap)
          end
        | Some _ | None -> ()
    end
  in
  Hashtbl.iter
    (fun (orient, track) segs ->
      (* same bucket: compare each unordered pair once *)
      let rec pairs = function
        | [] -> ()
        | x :: tl ->
          List.iter (consider x) tl;
          pairs tl
      in
      pairs segs;
      (* nearby buckets: only look upward to avoid double counting *)
      for dt = 1 to max_gap_tracks do
        match Hashtbl.find_opt buckets (orient, track + dt) with
        | None -> ()
        | Some others -> List.iter (fun x -> List.iter (consider x) others) segs
      done)
    buckets;
  Hashtbl.fold
    (fun (a, b) cap acc -> { ex_net_a = a; ex_net_b = b; ex_cap = cap } :: acc)
    caps []
  |> List.sort (fun x y ->
         let c = Float.compare y.ex_cap x.ex_cap in
         if c <> 0 then c else compare (x.ex_net_a, x.ex_net_b) (y.ex_net_a, y.ex_net_b))

let trim ~target caps =
  let available = List.length caps in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: tl -> x :: take (n - 1) tl
  in
  (take target caps, available)
