(** Synthetic 100k–1M-net circuits for the table2x scaling benchmarks.

    The Table 2 suite tops out near 19k couplings; this generator
    targets two orders of magnitude more. It skips the placed-and-
    routed flow entirely and emits the netlist directly: [tx_cones]
    mutually independent levelised cell DAGs — no net, gate or coupling
    crosses a cone boundary, so {!Tka_circuit.Topo.cone_shards} splits
    the circuit into at least [tx_cones] independent sweep jobs — with
    coupling caps drawn between nets of the same or adjacent logic
    levels inside a cone (overlapping switching windows, i.e. real
    aggressors). Each cone folds its sink-less nets through a collector
    tree into a single primary output, keeping sink selection linear.

    Generation is fully deterministic in the spec (a single seeded
    stream, fixed draw order): the Tka_verify oracle pins a fingerprint
    of the generated netlist by seed. *)

type spec = {
  tx_name : string;
  tx_nets : int;  (** target net count (approximate: collector trees add a few percent) *)
  tx_cones : int;  (** independent fanout cones = minimum shard count *)
  tx_density : float;  (** average coupling caps per net *)
  tx_max_fanout : int;  (** resampling bound on net fanout *)
  tx_seed : int;
}

val spec :
  ?cones:int ->
  ?density:float ->
  ?max_fanout:int ->
  ?seed:int ->
  nets:int ->
  unit ->
  spec
(** Spec with defaults: cones scaled as [nets / 2000] clamped to
    [4, 512], density 2.0, max fanout 6, seed 11007. [nets] must be at
    least 64. *)

val generate : spec -> Tka_circuit.Netlist.t

val spec_of_name : string -> spec option
(** ["t2x-100k"], ["t2x-1m"], ["t2x-<nets>"] (also [k]/[m] suffixed).
    Default knobs; the given name is kept as the circuit name. *)

val by_name : string -> Tka_circuit.Netlist.t option
(** [generate] composed with {!spec_of_name}. *)
