module Metrics = Tka_obs.Metrics

let c_admitted = Metrics.Counter.make "serve.admitted"
let c_overloaded = Metrics.Counter.make "serve.overloaded"
let c_timeouts = Metrics.Counter.make "serve.timeouts"
let g_inflight = Metrics.Gauge.make "serve.inflight"
let g_queued = Metrics.Gauge.make "serve.queued"
let h_wait = Metrics.Histogram.make "serve.queue_wait_s"

type t = {
  mutex : Mutex.t;
  max_inflight : int;
  max_queue : int;
  deadline_s : float;
  mutable n_inflight : int;
  mutable n_queued : int;
}

let create ?max_inflight ?(max_queue = 32) ?(deadline_s = 30.) () =
  let max_inflight =
    match max_inflight with
    | Some n -> max 1 n
    | None -> Tka_parallel.Pool.default_jobs ()
  in
  {
    mutex = Mutex.create ();
    max_inflight;
    max_queue = max 0 max_queue;
    deadline_s;
    n_inflight = 0;
    n_queued = 0;
  }

type rejection =
  | Rejected_overloaded of { queued : int; limit : int }
  | Rejected_timeout of { waited_s : float }

let rejection_code = function
  | Rejected_overloaded { queued; limit } ->
    ( Proto.Overloaded,
      Printf.sprintf "admission queue full (%d waiting, limit %d)" queued limit )
  | Rejected_timeout { waited_s } ->
    ( Proto.Timeout,
      Printf.sprintf "request queued past its deadline (waited %.3f s)" waited_s )

let inflight t =
  Mutex.lock t.mutex;
  let n = t.n_inflight in
  Mutex.unlock t.mutex;
  n

let queued t =
  Mutex.lock t.mutex;
  let n = t.n_queued in
  Mutex.unlock t.mutex;
  n

let gauges t =
  Metrics.Gauge.set g_inflight (float_of_int t.n_inflight);
  Metrics.Gauge.set g_queued (float_of_int t.n_queued)

(* Returns [Ok waited_s] once a slot is held. *)
let acquire t ~deadline_s =
  let now = Tka_obs.Clock.now_s in
  let t0 = now () in
  let deadline = t0 +. deadline_s in
  Mutex.lock t.mutex;
  if t.n_inflight < t.max_inflight then begin
    t.n_inflight <- t.n_inflight + 1;
    gauges t;
    Mutex.unlock t.mutex;
    Ok 0.
  end
  else if t.n_queued >= t.max_queue then begin
    let r = Rejected_overloaded { queued = t.n_queued; limit = t.max_queue } in
    Mutex.unlock t.mutex;
    Error r
  end
  else begin
    t.n_queued <- t.n_queued + 1;
    gauges t;
    Mutex.unlock t.mutex;
    let rec wait () =
      Thread.delay 0.001;
      Mutex.lock t.mutex;
      if t.n_inflight < t.max_inflight then begin
        t.n_queued <- t.n_queued - 1;
        t.n_inflight <- t.n_inflight + 1;
        gauges t;
        Mutex.unlock t.mutex;
        Ok (now () -. t0)
      end
      else if now () > deadline then begin
        t.n_queued <- t.n_queued - 1;
        gauges t;
        Mutex.unlock t.mutex;
        Error (Rejected_timeout { waited_s = now () -. t0 })
      end
      else begin
        Mutex.unlock t.mutex;
        wait ()
      end
    in
    wait ()
  end

let release t =
  Mutex.lock t.mutex;
  t.n_inflight <- t.n_inflight - 1;
  gauges t;
  Mutex.unlock t.mutex

let run t ?deadline_s f =
  let deadline_s = Option.value ~default:t.deadline_s deadline_s in
  match acquire t ~deadline_s with
  | Error (Rejected_overloaded _ as r) ->
    Metrics.Counter.incr c_overloaded;
    Error r
  | Error (Rejected_timeout _ as r) ->
    Metrics.Counter.incr c_timeouts;
    Error r
  | Ok waited_s ->
    Metrics.Counter.incr c_admitted;
    Metrics.Histogram.observe h_wait waited_s;
    Fun.protect ~finally:(fun () -> release t) (fun () -> Ok (f ()))
