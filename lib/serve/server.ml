module J = Tka_obs.Jsonx
module Metrics = Tka_obs.Metrics

let c_connections = Metrics.Counter.make "serve.connections"
let c_requests = Metrics.Counter.make "serve.requests"
let g_rss_peak = Metrics.Gauge.make "serve.rss_peak_bytes"

type t = {
  registry : Registry.t;
  admission : Admission.t;
  lookup : string -> Tka_cell.Cell.t option;
  default_k : int;
  stop_flag : bool Atomic.t;
}

let create ?max_inflight ?max_queue ?deadline_s ?max_designs ?(default_k = 10)
    ~lookup () =
  {
    registry = Registry.create ?max_designs ();
    admission = Admission.create ?max_inflight ?max_queue ?deadline_s ();
    lookup;
    default_k;
    stop_flag = Atomic.make false;
  }

let registry t = t.registry
let stop t = Atomic.set t.stop_flag true
let stopping t = Atomic.get t.stop_flag

(* ------------------------------------------------------------------ *)
(* Dispatch                                                           *)
(* ------------------------------------------------------------------ *)

let metrics_result params =
  (match Tka_prof.Rss.peak_bytes () with
  | Some b -> Metrics.Gauge.set g_rss_peak (float_of_int b)
  | None -> ());
  let body = Metrics.render_prometheus () in
  let fields =
    [ ("format", J.Str "prometheus"); ("body", J.Str body) ]
  in
  let fields =
    match Proto.param_bool_default params "profile" false with
    | Ok true ->
      let report = Tka_prof.Profile.analyze (Tka_obs.Trace.spans ()) in
      fields @ [ ("profile", Tka_prof.Profile.to_json report) ]
    | _ -> fields
  in
  J.Obj fields

let stats_result t =
  J.Obj
    [
      ("registry", Registry.stats_json t.registry);
      ( "admission",
        J.Obj
          [
            ("inflight", J.Int (Admission.inflight t.admission));
            ("queued", J.Int (Admission.queued t.admission));
          ] );
      ("requests", J.Int (Metrics.Counter.value c_requests));
      ("connections", J.Int (Metrics.Counter.value c_connections));
      ("stopping", J.Bool (stopping t));
    ]

let session_reply ~id = function
  | Ok result -> Proto.ok_response ~id result
  | Error (code, msg) -> Proto.error_response ~id code msg

(* Analysis work passes through admission; the optional per-request
   "deadline_s" param overrides the server's queue-wait deadline. *)
let admitted t ~id ~params f =
  match Proto.param_float_opt params "deadline_s" with
  | Error m -> Proto.error_response ~id Proto.Bad_request m
  | Ok deadline_s -> (
    match Admission.run t.admission ?deadline_s f with
    | Error rej ->
      let code, msg = Admission.rejection_code rej in
      Proto.error_response ~id code msg
    | Ok reply -> reply)

let rec dispatch t session ~in_batch (rq : Proto.request) =
  Metrics.Counter.incr c_requests;
  let id = rq.Proto.rq_id in
  let params = rq.Proto.rq_params in
  let err code msg = Proto.error_response ~id code msg in
  let guard_stop f = if stopping t then err Proto.Shutting_down "daemon is shutting down" else f () in
  match rq.Proto.rq_method with
  | "ping" -> (
    match Proto.param_float_opt params "delay_s" with
    | Error m -> err Proto.Bad_request m
    | Ok None -> Proto.ok_response ~id (J.Obj [ ("pong", J.Bool true) ])
    | Ok (Some d) ->
      (* a deliberately slow ping: the deterministic way to saturate
         admission in tests and to shape load in the generator *)
      guard_stop (fun () ->
          admitted t ~id ~params (fun () ->
              Thread.delay (Float.max 0. d);
              Proto.ok_response ~id
                (J.Obj [ ("pong", J.Bool true); ("slept_s", J.Float d) ]))))
  | "metrics" -> Proto.ok_response ~id (metrics_result params)
  | "stats" -> Proto.ok_response ~id (stats_result t)
  | "shutdown" ->
    stop t;
    Proto.ok_response ~id (J.Obj [ ("stopping", J.Bool true) ])
  | "batch" ->
    if in_batch then err Proto.Bad_request "batch cannot nest"
    else (
      match J.member "requests" params with
      | Some (J.List l) ->
        let replies =
          List.map
            (fun j ->
              match Proto.request_of_json j with
              | Ok sub -> dispatch t session ~in_batch:true sub
              | Error m ->
                Proto.error_response
                  ~id:(Option.value ~default:J.Null (J.member "id" j))
                  Proto.Bad_request m)
            l
        in
        Proto.ok_response ~id (J.Obj [ ("replies", J.List replies) ])
      | _ -> err Proto.Bad_request "\"requests\" must be a list")
  | ("analyze" | "whatif" | "eco" | "repair") as meth ->
    guard_stop (fun () ->
        admitted t ~id ~params (fun () ->
            session_reply ~id (Session.handle session ~meth ~params)))
  | ("load" | "info") as meth ->
    guard_stop (fun () -> session_reply ~id (Session.handle session ~meth ~params))
  | meth -> err Proto.Bad_request (Printf.sprintf "unknown method %S" meth)

let dispatch_safe t session ~in_batch rq =
  try dispatch t session ~in_batch rq
  with e ->
    Proto.error_response ~id:rq.Proto.rq_id Proto.Internal
      (Printf.sprintf "unhandled exception: %s" (Printexc.to_string e))

let handle_payload t session payload =
  match J.of_string payload with
  | exception J.Parse_error m ->
    Proto.error_response ~id:J.Null Proto.Bad_request
      (Printf.sprintf "payload is not JSON: %s" m)
  | j -> (
    match Proto.request_of_json j with
    | Error m -> Proto.error_response ~id:J.Null Proto.Bad_request m
    | Ok rq -> dispatch_safe t session ~in_batch:false rq)

let handle_one t session payload = J.to_string (handle_payload t session payload)

(* ------------------------------------------------------------------ *)
(* Connections                                                        *)
(* ------------------------------------------------------------------ *)

(* A peer that closes (or resets) after sending its request makes the
   reply write fail with EPIPE — as a [Unix_error] from an unbuffered
   write or a [Sys_error] from the buffered flush. With SIGPIPE ignored
   (see {!serve}) that failure reaches us as an exception scoped to this
   one connection; returning [false] closes it and nothing else. *)
let write_reply oc payload =
  try
    Framing.write oc payload;
    true
  with
  | Sys_error _ -> false
  | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> false

let connection_loop t fd =
  Metrics.Counter.incr c_connections;
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let session =
    Session.create ~registry:t.registry ~lookup:t.lookup ~default_k:t.default_k
  in
  let rec loop () =
    match Framing.read ic with
    | Error Framing.Eof -> ()
    | Error e ->
      (* the stream is desynchronised: answer once, then close *)
      ignore
        (write_reply oc
           (J.to_string
              (Proto.error_response ~id:J.Null Proto.Bad_request
                 (Framing.error_to_string e))))
    | Ok payload -> if write_reply oc (handle_one t session payload) then loop ()
  in
  (try loop () with _ -> () (* peer reset mid-frame; nothing to answer *));
  try Unix.close fd with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Listeners and accept loop                                          *)
(* ------------------------------------------------------------------ *)

let rec mkdirs dir =
  if dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdirs (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let listen_unix path =
  mkdirs (Filename.dirname path);
  (match Unix.lstat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
  | _ -> ()
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  fd

let listen_tcp ~port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 64;
  fd

let close_listener fd =
  (match Unix.getsockname fd with
  | Unix.ADDR_UNIX path when path <> "" -> (
    try Unix.unlink path with Unix.Unix_error _ -> ())
  | _ -> ()
  | exception Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let serve t ~listeners =
  (* Library-level, not just in the CLI wrapper: embedded servers
     (tests, bench) must also survive a client that disconnects while
     a reply is in flight. With default disposition the EPIPE write
     raises SIGPIPE first and kills the whole process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> () (* platform without SIGPIPE *));
  let rec loop () =
    if stopping t then ()
    else begin
      let ready, _, _ =
        Retry.eintr (fun () -> Unix.select listeners [] [] 0.05)
      in
      List.iter
        (fun lfd ->
          match Retry.eintr (fun () -> Unix.accept ~cloexec:true lfd) with
          | exception Unix.Unix_error (Unix.EAGAIN, _, _) -> ()
          | fd, _ -> ignore (Thread.create (connection_loop t) fd))
        ready;
      loop ()
    end
  in
  Fun.protect ~finally:(fun () -> List.iter close_listener listeners) loop
