module J = Tka_obs.Jsonx

type error_code =
  | Bad_request
  | Parse_failed
  | No_design
  | Overloaded
  | Timeout
  | Shutting_down
  | Internal

let code_to_string = function
  | Bad_request -> "bad_request"
  | Parse_failed -> "parse_failed"
  | No_design -> "no_design"
  | Overloaded -> "overloaded"
  | Timeout -> "timeout"
  | Shutting_down -> "shutting_down"
  | Internal -> "internal"

let code_of_string = function
  | "bad_request" -> Some Bad_request
  | "parse_failed" -> Some Parse_failed
  | "no_design" -> Some No_design
  | "overloaded" -> Some Overloaded
  | "timeout" -> Some Timeout
  | "shutting_down" -> Some Shutting_down
  | "internal" -> Some Internal
  | _ -> None

type request = { rq_id : J.t; rq_method : string; rq_params : J.t }

let request_to_json r =
  J.Obj
    ((match r.rq_id with J.Null -> [] | id -> [ ("id", id) ])
    @ [ ("method", J.Str r.rq_method) ]
    @ match r.rq_params with J.Obj [] -> [] | p -> [ ("params", p) ])

let request_of_json j =
  match j with
  | J.Obj _ -> (
    match J.member "method" j with
    | Some (J.Str m) ->
      Ok
        {
          rq_id = Option.value ~default:J.Null (J.member "id" j);
          rq_method = m;
          rq_params = Option.value ~default:(J.Obj []) (J.member "params" j);
        }
    | Some _ -> Error "\"method\" must be a string"
    | None -> Error "missing \"method\"")
  | _ -> Error "request must be a JSON object"

let ok_response ~id result =
  J.Obj [ ("id", id); ("ok", J.Bool true); ("result", result) ]

let error_response ~id code message =
  J.Obj
    [
      ("id", id);
      ("ok", J.Bool false);
      ( "error",
        J.Obj
          [ ("code", J.Str (code_to_string code)); ("message", J.Str message) ]
      );
    ]

let response_result j =
  match J.member "ok" j with
  | Some (J.Bool true) -> (
    match J.member "result" j with
    | Some r -> Ok r
    | None -> Error (Internal, "reply without a result"))
  | Some (J.Bool false) -> (
    let err = Option.value ~default:J.Null (J.member "error" j) in
    let msg =
      match J.member "message" err with Some (J.Str m) -> m | _ -> "unknown error"
    in
    match J.member "code" err with
    | Some (J.Str c) -> (
      match code_of_string c with
      | Some code -> Error (code, msg)
      | None -> Error (Internal, Printf.sprintf "unknown error code %S: %s" c msg))
    | _ -> Error (Internal, msg))
  | _ -> Error (Internal, "reply is not a response envelope")

(* ------------------------------------------------------------------ *)
(* Parameter accessors                                                *)
(* ------------------------------------------------------------------ *)

let param_string p name =
  match J.member name p with
  | Some (J.Str s) -> Ok s
  | Some _ -> Error (Printf.sprintf "%S must be a string" name)
  | None -> Error (Printf.sprintf "missing %S" name)

let param_string_opt p name =
  match J.member name p with
  | Some (J.Str s) -> Ok (Some s)
  | Some J.Null | None -> Ok None
  | Some _ -> Error (Printf.sprintf "%S must be a string" name)

let param_int_default p name default =
  match J.member name p with
  | Some (J.Int i) -> Ok i
  | Some J.Null | None -> Ok default
  | Some _ -> Error (Printf.sprintf "%S must be an integer" name)

let param_float_opt p name =
  match J.member name p with
  | Some (J.Float f) -> Ok (Some f)
  | Some (J.Int i) -> Ok (Some (float_of_int i))
  | Some J.Null | None -> Ok None
  | Some _ -> Error (Printf.sprintf "%S must be a number" name)

let param_bool_default p name default =
  match J.member name p with
  | Some (J.Bool b) -> Ok b
  | Some J.Null | None -> Ok default
  | Some _ -> Error (Printf.sprintf "%S must be a boolean" name)

let mode_of_params p =
  match J.member "mode" p with
  | Some (J.Str "add") -> Ok Tka_topk.Engine.Addition
  | Some (J.Str "elim") -> Ok Tka_topk.Engine.Elimination
  | None | Some J.Null -> Ok Tka_topk.Engine.Elimination
  | Some _ -> Error "\"mode\" must be \"add\" or \"elim\""

let filter_name = Tka_filter.Mode.to_string

let filter_of_params p =
  match J.member "filter" p with
  | None | Some J.Null -> Ok Tka_filter.Mode.Off
  | Some (J.Str s) -> (
      match Tka_filter.Mode.of_string s with
      | Some m -> Ok m
      | None -> Error "\"filter\" must be \"none\", \"window\" or \"logic\"")
  | Some _ -> Error "\"filter\" must be \"none\", \"window\" or \"logic\""

let edits_of_params ~lookup p =
  let ( let* ) = Result.bind in
  let edit j =
    let* op = param_string j "op" in
    match op with
    | "remove_coupling" -> (
      match J.member "coupling" j with
      | Some (J.Int c) -> Ok (Tka_incr.Edit.Remove_coupling c)
      | _ -> Error "remove_coupling needs an integer \"coupling\"")
    | "scale_coupling" -> (
      match (J.member "coupling" j, J.member "factor" j) with
      | Some (J.Int c), Some (J.Float f) when f >= 0. && f <= 1. ->
        Ok (Tka_incr.Edit.Scale_coupling { coupling = c; factor = f })
      | Some (J.Int c), Some (J.Int 0) ->
        Ok (Tka_incr.Edit.Scale_coupling { coupling = c; factor = 0. })
      | Some (J.Int c), Some (J.Int 1) ->
        Ok (Tka_incr.Edit.Scale_coupling { coupling = c; factor = 1. })
      | _ ->
        Error "scale_coupling needs an integer \"coupling\" and a \"factor\" in [0,1]"
      )
    | "resize_driver" -> (
      match (J.member "gate" j, J.member "cell" j) with
      | Some (J.Int g), Some (J.Str cell_name) -> (
        match lookup cell_name with
        | Some cell -> Ok (Tka_incr.Edit.Resize_driver { gate = g; cell })
        | None -> Error (Printf.sprintf "unknown cell %S" cell_name))
      | _ -> Error "resize_driver needs an integer \"gate\" and a string \"cell\"")
    | "strengthen_driver" -> (
      let factor =
        match J.member "factor" j with
        | Some (J.Float f) -> Some f
        | Some (J.Int i) -> Some (float_of_int i)
        | _ -> None
      in
      match (J.member "gate" j, factor) with
      | Some (J.Int g), Some f when Float.is_finite f && f > 0. ->
        Ok (Tka_incr.Edit.Strengthen_driver { gate = g; factor = f })
      | _ ->
        Error
          "strengthen_driver needs an integer \"gate\" and a positive \"factor\"")
    | op -> Error (Printf.sprintf "unknown edit op %S" op)
  in
  match J.member "edits" p with
  | Some (J.List l) ->
    List.fold_left
      (fun acc j ->
        let* acc = acc in
        let* e = edit j in
        Ok (e :: acc))
      (Ok []) l
    |> Result.map List.rev
  | Some _ -> Error "\"edits\" must be a list"
  | None -> Error "missing \"edits\""
