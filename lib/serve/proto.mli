(** The [tka serve] NDJSON-RPC vocabulary: request/response envelopes,
    typed error codes, and parameter accessors.

    One JSON object per {!Framing} frame. Requests carry a client
    [id] (echoed verbatim in the reply), a [method] name and an
    optional [params] object:

    {v {"id":7,"method":"analyze","params":{"mode":"elim"}} v}

    Replies are either
    {v {"id":7,"ok":true,"result":{...}} v}
    or
    {v {"id":7,"ok":false,"error":{"code":"overloaded","message":"..."}} v}

    Error codes are a closed set so clients can switch on them;
    [overloaded] and [timeout] are the admission-control replies the
    load generator counts. See [docs/serving.md] for the full method
    reference. *)

module J = Tka_obs.Jsonx

type error_code =
  | Bad_request  (** missing/ill-typed params, unknown method, out-of-range id *)
  | Parse_failed  (** a design or edit body failed to parse *)
  | No_design  (** session method before a successful [load] *)
  | Overloaded  (** admission queue full — retry with backoff *)
  | Timeout  (** queued past the request deadline *)
  | Shutting_down
  | Internal

val code_to_string : error_code -> string
val code_of_string : string -> error_code option

type request = {
  rq_id : J.t;  (** echoed into the reply; [J.Null] when absent *)
  rq_method : string;
  rq_params : J.t;  (** [J.Obj []] when absent *)
}

val request_to_json : request -> J.t

val request_of_json : J.t -> (request, string) result
(** [Error] on a non-object or a missing/non-string [method]. *)

val ok_response : id:J.t -> J.t -> J.t
val error_response : id:J.t -> error_code -> string -> J.t

val response_result : J.t -> (J.t, error_code * string) result
(** Client-side: split a reply into its [result] or its typed error.
    A reply that is not a valid envelope maps to [Internal]. *)

(** {1 Parameter accessors}

    All return [Error message] (for a [Bad_request] reply) on a
    type mismatch; the [opt_]/defaulted forms accept absence. *)

val param_string : J.t -> string -> (string, string) result
val param_string_opt : J.t -> string -> (string option, string) result
val param_int_default : J.t -> string -> int -> (int, string) result
val param_float_opt : J.t -> string -> (float option, string) result
val param_bool_default : J.t -> string -> bool -> (bool, string) result

val mode_of_params : J.t -> (Tka_topk.Engine.mode, string) result
(** ["mode"]: ["add"] or ["elim"] (default [Elimination]). *)

val filter_of_params : J.t -> (Tka_filter.Mode.t, string) result
(** ["filter"]: ["none"], ["window"] or ["logic"] (default [Off]).
    Unknown strings are an [Error] — the daemon maps it to
    [bad_request], keeping the error-code set closed. *)

val filter_name : Tka_filter.Mode.t -> string
(** The wire name echoed back in replies (["none"] / ["window"] /
    ["logic"]). *)

val edits_of_params :
  lookup:(string -> Tka_cell.Cell.t option) ->
  J.t ->
  (Tka_incr.Edit.t list, string) result
(** ["edits"]: a list of
    [{"op":"remove_coupling","coupling":3}],
    [{"op":"scale_coupling","coupling":3,"factor":0.5}],
    [{"op":"resize_driver","gate":2,"cell":"NAND2_X2"}] or
    [{"op":"strengthen_driver","gate":2,"factor":1.5}] objects.
    Range checks against the target netlist are the session's job. *)
