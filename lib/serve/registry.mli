(** Cross-session victim-cache registry: one {!Tka_incr.Cache} per
    design fingerprint, shared by every session analyzing that design.

    The fingerprint is an FNV-64 hash of the design's {e canonical
    netlist rendering} ({!Tka_circuit.Netlist_format.print}), so two
    tenants loading byte-equivalent designs — the ECO/what-if access
    pattern the daemon exists for — attach to the same cache and the
    second one hits warm on its first victim. Distinct designs whose
    coupling tables happen to collide are still safe: every cache
    entry is fingerprint-key-guarded, and the analyzer's
    coupling-universe guard flushes a genuinely mismatched cache
    rather than consult it.

    The daemon's edit path ([whatif]/[eco]) calls {!attach_seeded}
    with a {!Tka_incr.Cache.remapped_copy} of the base design's cache:
    the edited design's cache is born warm for every victim outside
    the edit's dirty closure, while the base cache stays untouched for
    co-tenants. The seed thunk runs only on first attach (under the
    registry lock, so two racing sessions cannot double-seed).

    Reported when {!Tka_obs.Metrics} is enabled: [serve.designs]
    (gauge), [serve.cache_attaches] and [serve.cache_seeded]. *)

type t

val create : ?max_designs:int -> unit -> t
(** [max_designs] (default 64) bounds the registry: attaching a new
    fingerprint beyond the bound evicts the least-recently-attached
    design's cache — the daemon is long-lived and tenants come and
    go. *)

val fingerprint : Tka_circuit.Netlist.t -> Tka_incr.Fnv.t
(** The canonical-rendering hash used as the registry key. *)

val attach : t -> fp:Tka_incr.Fnv.t -> Tka_incr.Cache.t
(** The design's shared cache, created empty on first attach. *)

val attach_seeded :
  t -> fp:Tka_incr.Fnv.t -> seed:(unit -> Tka_incr.Cache.t) -> Tka_incr.Cache.t
(** Like {!attach}, but a first attach installs [seed ()] instead of an
    empty cache. *)

type stats = {
  rg_designs : int;  (** fingerprints currently cached *)
  rg_entries : int;  (** victim records across all caches *)
  rg_attaches : int;  (** lifetime attach calls *)
  rg_seeded : int;  (** caches born from a remapped seed *)
  rg_evicted : int;  (** caches dropped by the [max_designs] bound *)
}

val stats : t -> stats
val stats_json : t -> Tka_obs.Jsonx.t
