module J = Tka_obs.Jsonx
module Clock = Tka_obs.Clock
module N = Tka_circuit.Netlist
module Nf = Tka_circuit.Netlist_format
module Topo = Tka_circuit.Topo
module Analyzer = Tka_incr.Analyzer
module Cache = Tka_incr.Cache
module Dirty = Tka_incr.Dirty
module Edit = Tka_incr.Edit
module Eco = Tka_incr.Eco
module Repair = Tka_incr.Repair
module Engine = Tka_topk.Engine
module Elimination = Tka_topk.Elimination
module CS = Tka_topk.Coupling_set

let ( let* ) = Result.bind

type design = {
  d_name : string;
  d_nl : N.t;
  d_topo : Topo.t;
  d_fp : Tka_incr.Fnv.t;
  d_cache : Cache.t;  (* the registry tenant all analyzers share *)
  d_analyzer : Analyzer.t;  (* filter [Off] — the default *)
  d_analyzers : (Tka_filter.Mode.t, Analyzer.t) Hashtbl.t;
      (* per-filter-mode analyzers over [d_cache], created on first
         use. Config hashes include the filter mode, so results from
         different modes never alias inside the shared cache. The
         table is confined to this session's connection thread. *)
  d_k : int;
}

let make_design ~name ~nl ~fp ~cache ~k =
  let analyzer = Analyzer.with_shared_cache ~k ~cache () in
  let analyzers = Hashtbl.create 4 in
  Hashtbl.add analyzers Tka_filter.Mode.Off analyzer;
  {
    d_name = name;
    d_nl = nl;
    d_topo = Topo.create nl;
    d_fp = fp;
    d_cache = cache;
    d_analyzer = analyzer;
    d_analyzers = analyzers;
    d_k = k;
  }

let analyzer_for d filter =
  match Hashtbl.find_opt d.d_analyzers filter with
  | Some a -> a
  | None ->
    let a =
      Analyzer.with_shared_cache ~k:d.d_k ~filter ~cache:d.d_cache ()
    in
    Hashtbl.add d.d_analyzers filter a;
    a

type t = {
  registry : Registry.t;
  lookup : string -> Tka_cell.Cell.t option;
  default_k : int;
  mutable design : design option;
}

let create ~registry ~lookup ~default_k = { registry; lookup; default_k; design = None }
let loaded t = Option.is_some t.design

let require t =
  match t.design with
  | Some d -> Ok d
  | None -> Error (Proto.No_design, "no design loaded in this session")

let bad r = Result.map_error (fun m -> (Proto.Bad_request, m)) r
let hex_fp fp = Printf.sprintf "%016Lx" fp

let design_info d =
  [
    ("design", J.Str d.d_name);
    ("nets", J.Int (N.num_nets d.d_nl));
    ("gates", J.Int (N.num_gates d.d_nl));
    ("couplings", J.Int (N.num_couplings d.d_nl));
    ("k", J.Int d.d_k);
    ("fingerprint", J.Str (hex_fp d.d_fp));
  ]

(* ------------------------------------------------------------------ *)
(* load / info                                                        *)
(* ------------------------------------------------------------------ *)

let load t params =
  let* body = bad (Proto.param_string params "netlist") in
  let* k = bad (Proto.param_int_default params "k" t.default_k) in
  if k < 1 then Error (Proto.Bad_request, "\"k\" must be >= 1")
  else
    match Nf.parse ~lookup:t.lookup body with
    | exception Nf.Parse_error { line; message } ->
      Error
        ( Proto.Parse_failed,
          Printf.sprintf "netlist parse error at line %d: %s" line message )
    | nl ->
      let* name_opt = bad (Proto.param_string_opt params "name") in
      let name = Option.value ~default:(N.name nl) name_opt in
      let fp = Registry.fingerprint nl in
      let cache = Registry.attach t.registry ~fp in
      let d = make_design ~name ~nl ~fp ~cache ~k in
      t.design <- Some d;
      Ok (J.Obj (design_info d))

let info t =
  let* d = require t in
  Ok (J.Obj (design_info d))

(* ------------------------------------------------------------------ *)
(* analyze                                                            *)
(* ------------------------------------------------------------------ *)

let per_k_json res =
  let entries = ref [] in
  for i = res.Engine.res_config.Engine.k downto 1 do
    match res.Engine.res_per_k.(i) with
    | None -> ()
    | Some ch ->
      entries :=
        J.Obj
          [
            ("k", J.Int i);
            ("objective_ns", J.Float ch.Engine.ch_objective);
            ("estimated_delay_ns", J.Float (Engine.estimated_delay res i));
            ("sink", J.Int ch.Engine.ch_sink);
            ( "set",
              J.List (List.map (fun c -> J.Int c) (CS.to_list ch.Engine.ch_set))
            );
          ]
        :: !entries
  done;
  J.List !entries

(* [elapsed_s] is the only wall-clock-dependent field in an analysis
   result; clients comparing runs for bit-identity strip it (and the
   cache counters, which depend on who warmed the shared cache first). *)
let analysis_fields d ~mode ~filter elim (st : Analyzer.run_stats) elapsed =
  let res =
    match mode with
    | Engine.Elimination -> elim.Elimination.result
    | Engine.Addition -> elim.Elimination.dual
  in
  [
    ("design", J.Str d.d_name);
    ("mode", J.Str (match mode with Engine.Elimination -> "elim" | _ -> "add"));
    ("filter", J.Str (Proto.filter_name filter));
    ("k", J.Int d.d_k);
    ("noiseless_delay_ns", J.Float res.Engine.res_noiseless_delay);
    ("all_aggressor_delay_ns", J.Float res.Engine.res_noisy_delay);
    ("per_k", per_k_json res);
    ("cache_hits", J.Int st.Analyzer.rs_hits);
    ("cache_misses", J.Int st.Analyzer.rs_misses);
    ("elapsed_s", J.Float elapsed);
  ]

let analyze t params =
  let* d = require t in
  let* mode = bad (Proto.mode_of_params params) in
  let* filter = bad (Proto.filter_of_params params) in
  let t0 = Clock.now_s () in
  let elim, st = Analyzer.run (analyzer_for d filter) d.d_topo in
  Ok (J.Obj (analysis_fields d ~mode ~filter elim st (Clock.now_s () -. t0)))

(* ------------------------------------------------------------------ *)
(* whatif / eco                                                       *)
(* ------------------------------------------------------------------ *)

let validate_edits d edits =
  let nc = N.num_couplings d.d_nl and ng = N.num_gates d.d_nl in
  List.fold_left
    (fun acc e ->
      let* () = acc in
      match e with
      | Edit.Remove_coupling c | Edit.Scale_coupling { coupling = c; _ } ->
        if c < 0 || c >= nc then
          Error
            ( Proto.Bad_request,
              Printf.sprintf "coupling %d out of range (design has %d)" c nc )
        else Ok ()
      | Edit.Resize_driver { gate = g; _ }
      | Edit.Strengthen_driver { gate = g; _ } ->
        if g < 0 || g >= ng then
          Error
            ( Proto.Bad_request,
              Printf.sprintf "gate %d out of range (design has %d)" g ng )
        else Ok ())
    (Ok ()) edits

(* Build the edited design as a *new* registry tenant: the base cache
   must stay valid for co-tenants, so instead of [Analyzer.apply]'s
   in-place remap the edited fingerprint's cache is seeded (first
   arrival only) with a remapped copy of the base cache. *)
let edited_design t d edits =
  let nl', phys_map = Edit.apply d.d_nl edits in
  let dirty = Dirty.count (Dirty.closure d.d_topo (Edit.touched_nets d.d_nl edits)) in
  let fp' = Registry.fingerprint nl' in
  let cache' =
    Registry.attach_seeded t.registry ~fp:fp' ~seed:(fun () ->
        Cache.remapped_copy d.d_cache phys_map)
  in
  let d' = make_design ~name:d.d_name ~nl:nl' ~fp:fp' ~cache:cache' ~k:d.d_k in
  (d', dirty)

let whatif t params =
  let* d = require t in
  let* edits = bad (Proto.edits_of_params ~lookup:t.lookup params) in
  let* () = validate_edits d edits in
  let* mode = bad (Proto.mode_of_params params) in
  let* filter = bad (Proto.filter_of_params params) in
  let t0 = Clock.now_s () in
  let d', dirty = edited_design t d edits in
  let elim, st = Analyzer.run (analyzer_for d' filter) d'.d_topo in
  Ok
    (J.Obj
       (("edits", J.Int (List.length edits))
       :: ("dirty_nets", J.Int dirty)
       :: ("fingerprint", J.Str (hex_fp d'.d_fp))
       :: analysis_fields { d' with d_name = d.d_name } ~mode ~filter elim st
            (Clock.now_s () -. t0)))

let eco t params =
  let* d = require t in
  let* fix_k = bad (Proto.param_int_default params "fix_k" 1) in
  if fix_k < 1 || fix_k > d.d_k then
    Error
      ( Proto.Bad_request,
        Printf.sprintf "\"fix_k\" must be in [1, %d] (the session's k)" d.d_k )
  else
    let t0 = Clock.now_s () in
    let elim, st = Analyzer.run d.d_analyzer d.d_topo in
    (* surface which rule produced the set — a dual_set fallback used
       to be silent here, so clients could not tell an elimination fix
       from an addition-mode one (or from no fix at all) *)
    let rule, set =
      match Elimination.set elim fix_k with
      | Some s -> (Eco.Rule_elim, Some s)
      | None -> (
        match Elimination.dual_set elim fix_k with
        | Some s -> (Eco.Rule_dual, Some s)
        | None -> (Eco.Rule_none, None))
    in
    let delay_noisy = elim.Elimination.result.Engine.res_noisy_delay in
    let base =
      [
        ("design", J.Str d.d_name);
        ("fix_k", J.Int fix_k);
        ("rule", J.Str (Eco.rule_name rule));
        ("delay_noisy_ns", J.Float delay_noisy);
        ("analysis_hits", J.Int st.Analyzer.rs_hits);
        ("analysis_misses", J.Int st.Analyzer.rs_misses);
      ]
    in
    match set with
    | None ->
      (* nothing to fix: no edit, the session's design is unchanged *)
      Ok
        (J.Obj
           (base
           @ [
               ("set", J.List []);
               ("edits", J.Int 0);
               ("dirty_nets", J.Int 0);
               ("delay_fixed_ns", J.Float delay_noisy);
               ("cache_hits", J.Int 0);
               ("cache_misses", J.Int 0);
               ("fingerprint", J.Str (hex_fp d.d_fp));
               ("elapsed_s", J.Float (Clock.now_s () -. t0));
             ]))
    | Some set ->
      let edits =
        CS.to_list set
        |> List.map (fun dc -> dc / 2)
        |> List.sort_uniq Int.compare
        |> List.map (fun c -> Edit.Remove_coupling c)
      in
      let d', dirty = edited_design t d edits in
      let elim', st' = Analyzer.run d'.d_analyzer d'.d_topo in
      t.design <- Some d';
      Ok
        (J.Obj
           (base
           @ [
               ("set", J.List (List.map (fun c -> J.Int c) (CS.to_list set)));
               ("edits", J.Int (List.length edits));
               ("dirty_nets", J.Int dirty);
               ( "delay_fixed_ns",
                 J.Float elim'.Elimination.result.Engine.res_noisy_delay );
               ("cache_hits", J.Int st'.Analyzer.rs_hits);
               ("cache_misses", J.Int st'.Analyzer.rs_misses);
               ("couplings", J.Int (N.num_couplings d'.d_nl));
               ("fingerprint", J.Str (hex_fp d'.d_fp));
               ("elapsed_s", J.Float (Clock.now_s () -. t0));
             ]))

(* ------------------------------------------------------------------ *)
(* repair                                                             *)
(* ------------------------------------------------------------------ *)

(* The repair loop runs on the session's netlist with its own private
   analyzer state (trial snapshots must not evict co-tenants from the
   shared cache). On success the repaired netlist is committed as a new
   registry tenant, exactly like an [eco] commit — unless [dry_run].
   [verify] defaults to false here: the RPC caller usually wants the
   loop, not the scratch re-analysis; pass [{"verify":true}] to gate on
   bit-identity like the CLI does. *)
let repair t params =
  let* d = require t in
  let* fix_k = bad (Proto.param_int_default params "fix_k" 1) in
  let* budget = bad (Proto.param_int_default params "budget" 10) in
  let* target_ns = bad (Proto.param_float_opt params "target_ns") in
  let* recover_opt = bad (Proto.param_float_opt params "recover") in
  let* dry_run = bad (Proto.param_bool_default params "dry_run" false) in
  let* verify = bad (Proto.param_bool_default params "verify" false) in
  let* filter = bad (Proto.filter_of_params params) in
  if fix_k < 1 || fix_k > d.d_k then
    Error
      ( Proto.Bad_request,
        Printf.sprintf "\"fix_k\" must be in [1, %d] (the session's k)" d.d_k )
  else if budget < 0 then Error (Proto.Bad_request, "\"budget\" must be >= 0")
  else
    let recover = Option.value ~default:0.5 recover_opt in
    if not (Float.is_finite recover && recover >= 0. && recover <= 1.) then
      Error (Proto.Bad_request, "\"recover\" must be in [0, 1]")
    else
      match
        (* no [journal]/[checkpoint] paths: an RPC never writes files;
           [dry_run] here only controls whether the result is committed *)
        Repair.run ~k:d.d_k ~fix_k ~budget ?target_delay:target_ns ~recover
          ~dry_run ~verify ~filter d.d_nl
      with
      | exception Invalid_argument m -> Error (Proto.Bad_request, m)
      | report, nl', _elim ->
        let committed =
          (not dry_run) && report.Repair.rp_edits_applied > 0
        in
        let d' =
          if not committed then d
          else begin
            let fp' = Registry.fingerprint nl' in
            let cache' = Registry.attach t.registry ~fp:fp' in
            let d' =
              make_design ~name:d.d_name ~nl:nl' ~fp:fp' ~cache:cache'
                ~k:d.d_k
            in
            t.design <- Some d';
            d'
          end
        in
        let fields =
          match Repair.report_json report with
          | J.Obj f -> f
          | j -> [ ("repair", j) ]
        in
        Ok
          (J.Obj
             (fields
             @ [
                 ("filter", J.Str (Proto.filter_name filter));
                 ("committed", J.Bool committed);
                 ("fingerprint", J.Str (hex_fp d'.d_fp));
               ]))

(* ------------------------------------------------------------------ *)
(* dispatch                                                           *)
(* ------------------------------------------------------------------ *)

let handle t ~meth ~params =
  match meth with
  | "load" -> load t params
  | "info" -> info t
  | "analyze" -> analyze t params
  | "whatif" -> whatif t params
  | "eco" -> eco t params
  | "repair" -> repair t params
  | m -> Error (Proto.Bad_request, Printf.sprintf "unknown method %S" m)
