(** The [tka serve] daemon core: listeners, connection threads,
    dispatch, graceful stop.

    One {!t} multiplexes any number of client connections onto the
    process-wide {!Tka_parallel.Pool}. Each accepted connection gets a
    dedicated systhread driving a {!Session}; analysis methods
    ([analyze], [whatif], [eco], and [ping] with a [delay_s] — the
    load-testing probe) pass through {!Admission} first, so overload
    surfaces as structured [overloaded]/[timeout] replies instead of
    an unbounded queue. Cheap methods ([load], [info], [ping],
    [metrics], [stats], [shutdown], [batch] envelopes) bypass
    admission.

    The accept loop polls a stop flag every 50 ms, so {!stop} — which
    is async-signal-safe and is what the CLI's SIGTERM/SIGINT handler
    calls — returns the loop within that bound; {!serve} then closes
    its listeners (unlinking a Unix socket path) and returns normally,
    letting the CLI run its observability dumps and exit 0.

    Wire-level garbage is answered, not crashed on: an unparseable
    frame gets a [bad_request] reply and the connection is closed (the
    stream is desynchronised); an unparseable JSON payload or invalid
    envelope gets a [bad_request] reply and the connection continues
    (framing kept the payload boundary intact). *)

type t

val create :
  ?max_inflight:int ->
  ?max_queue:int ->
  ?deadline_s:float ->
  ?max_designs:int ->
  ?default_k:int ->
  lookup:(string -> Tka_cell.Cell.t option) ->
  unit ->
  t
(** Admission bounds as in {!Admission.create}; [max_designs] as in
    {!Registry.create}; [default_k] (default 10) is the [k] a [load]
    without one gets. *)

val registry : t -> Registry.t

val listen_unix : string -> Unix.file_descr
(** Bind and listen on a Unix-domain socket path (an existing socket
    file is unlinked first, the parent directory is created). *)

val listen_tcp : port:int -> Unix.file_descr
(** Bind and listen on 127.0.0.1:[port]. *)

val serve : t -> listeners:Unix.file_descr list -> unit
(** Accept until {!stop}; closes the listeners before returning.
    Connection threads may still be draining when it returns — replies
    already admitted complete, idle connections die with the process. *)

val stop : t -> unit
(** Request shutdown. Safe from a signal handler and from RPC
    dispatch ([shutdown] calls it after replying). *)

val stopping : t -> bool

val handle_one : t -> Session.t -> string -> string
(** Dispatch one raw request payload for an established session and
    return the raw reply payload — the full RPC surface minus the
    socket, exercised directly by the in-process tests. *)
