module J = Tka_obs.Jsonx

exception Transport of string

type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  mutable next_id : int;
}

let of_fd fd =
  {
    fd;
    ic = Unix.in_channel_of_descr fd;
    oc = Unix.out_channel_of_descr fd;
    next_id = 0;
  }

let connect_unix path =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with Unix.Unix_error (e, _, _) ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise (Transport (Printf.sprintf "connect %s: %s" path (Unix.error_message e))));
  of_fd fd

let connect_tcp ~host ~port =
  let addr =
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found -> raise (Transport (Printf.sprintf "unknown host %S" host))
  in
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (addr, port))
   with Unix.Unix_error (e, _, _) ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise
       (Transport
          (Printf.sprintf "connect %s:%d: %s" host port (Unix.error_message e))));
  of_fd fd

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let call_envelope t ~meth ~params =
  let id = t.next_id in
  t.next_id <- id + 1;
  let rq =
    { Proto.rq_id = J.Int id; rq_method = meth; rq_params = params }
  in
  (try Framing.write t.oc (J.to_string (Proto.request_to_json rq))
   with Sys_error m | Failure m -> raise (Transport m));
  let payload =
    match Framing.read t.ic with
    | Ok p -> p
    | Error e -> raise (Transport (Framing.error_to_string e))
    | exception Sys_error m -> raise (Transport m)
  in
  let reply =
    try J.of_string payload
    with J.Parse_error m -> raise (Transport ("reply is not JSON: " ^ m))
  in
  (match J.member "id" reply with
  | Some (J.Int i) when i = id -> ()
  | Some J.Null | None ->
    (* connection-level error reply (e.g. to a frame the server could
       not attribute); surface it as-is *)
    ()
  | _ -> raise (Transport "reply id does not match the request"));
  reply

let call t ~meth ?(params = J.Obj []) () =
  Proto.response_result (call_envelope t ~meth ~params)
