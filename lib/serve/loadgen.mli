(** Closed-loop load generator for the [tka serve] bench and smoke
    tests.

    Spawns [clients] threads, each with its own connection (= its own
    daemon session). Every client loads the same design, then issues
    [requests] back-to-back calls drawn deterministically from the
    analyze/what-if/ECO [mix] (a per-client counter-based PRNG — same
    config, same schedule, every run), recording per-request wall
    latency and the cache counters the replies carry.

    The report aggregates throughput (completed replies over the
    request-phase wall time), exact latency percentiles over every
    recorded sample, the admission rejections ([overloaded]/[timeout]
    replies — counted, not retried: a closed loop measures the
    daemon's refusal behaviour, not a retry policy's), and the shared
    victim cache's hit rate as seen by the clients. *)

type mix = {
  mx_analyze : int;
  mx_whatif : int;
  mx_eco : int;
}
(** Relative weights; must sum to a positive number. *)

val default_mix : mix
(** 6 analyze : 3 what-if : 1 ECO. *)

type report = {
  lg_clients : int;
  lg_requests : int;  (** replies received, all outcomes *)
  lg_ok : int;
  lg_overloaded : int;
  lg_timeout : int;
  lg_errors : int;  (** other [Error] replies *)
  lg_analyze : int;
  lg_whatif : int;
  lg_eco : int;
  lg_elapsed_s : float;
  lg_qps : float;
  lg_mean_ms : float;
  lg_p50_ms : float;
  lg_p95_ms : float;
  lg_p99_ms : float;
  lg_max_ms : float;
  lg_cache_hits : int;
  lg_cache_misses : int;
  lg_cache_hit_rate : float;  (** hits / (hits + misses); 0 when idle *)
}

val run :
  connect:(unit -> Client.t) ->
  netlist:string ->
  ?k:int ->
  ?clients:int ->
  ?requests:int ->
  ?mix:mix ->
  unit ->
  report
(** [connect] opens a fresh connection (called once per client, from
    the client's own thread). [netlist] is the design body each
    session loads. Defaults: [k] 10, [clients] 4, [requests] 25 per
    client, {!default_mix}.
    @raise Client.Transport if a connection or the load call fails. *)

val to_json : report -> Proto.J.t
(** The [serve] bench section: [qps], [p50_ms]/[p95_ms]/[p99_ms],
    [cache_hit_rate] and friends. *)
