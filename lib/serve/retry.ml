(* Buffered channels report an interrupted read/write as
   [Sys_error (strerror EINTR)] — there is no errno left to inspect,
   so the message is matched. glibc and musl both say "Interrupted
   system call". *)
let is_eintr = function
  | Unix.Unix_error (Unix.EINTR, _, _) -> true
  | Sys_error m ->
    let suffix = "Interrupted system call" in
    let lm = String.length m and ls = String.length suffix in
    lm >= ls && String.sub m (lm - ls) ls = suffix
  | _ -> false

let rec eintr f = try f () with e when is_eintr e -> eintr f
