type error =
  | Eof
  | Oversized of { declared : int; limit : int }
  | Malformed of string

let error_to_string = function
  | Eof -> "end of stream"
  | Oversized { declared; limit } ->
    Printf.sprintf "frame of %d bytes exceeds the %d-byte limit" declared limit
  | Malformed m -> Printf.sprintf "malformed frame: %s" m

let default_max_len = 64 * 1024 * 1024

(* One output_string for the whole frame, then a retried flush: flush
   resumes from whatever the interrupted write already drained, so
   reissuing it cannot duplicate bytes (retrying a partially-buffered
   output_string could). *)
let write oc payload =
  let frame =
    let b = Buffer.create (String.length payload + 24) in
    Buffer.add_string b (string_of_int (String.length payload));
    Buffer.add_char b '\n';
    Buffer.add_string b payload;
    Buffer.add_char b '\n';
    Buffer.contents b
  in
  output_string oc frame;
  Retry.eintr (fun () -> flush oc)

(* The prefix is read byte by byte (it is tiny) so a desynchronised
   stream fails on the first non-digit instead of swallowing a line of
   payload as a "length". Every blocking read retries EINTR: a signal
   mid-frame must not surface as a spurious Malformed error. *)
let read ?(max_len = default_max_len) ic =
  let rec prefix acc ndigits =
    match Retry.eintr (fun () -> input_char ic) with
    | exception End_of_file ->
      if ndigits = 0 then Error Eof else Error (Malformed "eof inside length prefix")
    | '\n' ->
      if ndigits = 0 then Error (Malformed "empty length prefix") else Ok acc
    | c when c >= '0' && c <= '9' ->
      if ndigits >= 19 then Error (Malformed "length prefix too long")
      else prefix ((acc * 10) + (Char.code c - Char.code '0')) (ndigits + 1)
    | c -> Error (Malformed (Printf.sprintf "byte %C in length prefix" c))
  in
  match prefix 0 0 with
  | Error _ as e -> e
  | Ok len when len > max_len -> Error (Oversized { declared = len; limit = max_len })
  | Ok len -> (
    let buf = Bytes.create len in
    (* [really_input] restarted after an interrupted chunk would lose
       the bytes earlier chunks already consumed — loop over [input]
       and retry EINTR one read at a time instead *)
    let rec really_read pos remaining =
      if remaining = 0 then ()
      else
        let n = Retry.eintr (fun () -> input ic buf pos remaining) in
        if n = 0 then raise End_of_file;
        really_read (pos + n) (remaining - n)
    in
    match really_read 0 len with
    | exception End_of_file -> Error (Malformed "truncated payload")
    | () -> (
      match Retry.eintr (fun () -> input_char ic) with
      | exception End_of_file -> Error (Malformed "missing frame terminator")
      | '\n' -> Ok (Bytes.unsafe_to_string buf)
      | c ->
        Error (Malformed (Printf.sprintf "byte %C where frame terminator expected" c))))
