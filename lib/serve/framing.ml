type error =
  | Eof
  | Oversized of { declared : int; limit : int }
  | Malformed of string

let error_to_string = function
  | Eof -> "end of stream"
  | Oversized { declared; limit } ->
    Printf.sprintf "frame of %d bytes exceeds the %d-byte limit" declared limit
  | Malformed m -> Printf.sprintf "malformed frame: %s" m

let default_max_len = 64 * 1024 * 1024

let write oc payload =
  output_string oc (string_of_int (String.length payload));
  output_char oc '\n';
  output_string oc payload;
  output_char oc '\n';
  flush oc

(* The prefix is read byte by byte (it is tiny) so a desynchronised
   stream fails on the first non-digit instead of swallowing a line of
   payload as a "length". *)
let read ?(max_len = default_max_len) ic =
  let rec prefix acc ndigits =
    match input_char ic with
    | exception End_of_file ->
      if ndigits = 0 then Error Eof else Error (Malformed "eof inside length prefix")
    | '\n' ->
      if ndigits = 0 then Error (Malformed "empty length prefix") else Ok acc
    | c when c >= '0' && c <= '9' ->
      if ndigits >= 19 then Error (Malformed "length prefix too long")
      else prefix ((acc * 10) + (Char.code c - Char.code '0')) (ndigits + 1)
    | c -> Error (Malformed (Printf.sprintf "byte %C in length prefix" c))
  in
  match prefix 0 0 with
  | Error _ as e -> e
  | Ok len when len > max_len -> Error (Oversized { declared = len; limit = max_len })
  | Ok len -> (
    let buf = Bytes.create len in
    match really_input ic buf 0 len with
    | exception End_of_file -> Error (Malformed "truncated payload")
    | () -> (
      match input_char ic with
      | exception End_of_file -> Error (Malformed "missing frame terminator")
      | '\n' -> Ok (Bytes.unsafe_to_string buf)
      | c ->
        Error (Malformed (Printf.sprintf "byte %C where frame terminator expected" c))))
