(** Interrupted-syscall retry.

    A signal delivered while a thread blocks in [read]/[write]/
    [select]/[accept] makes the call fail with [EINTR] — surfaced by
    the [Unix] module as [Unix_error (EINTR, _, _)] and by buffered
    channel I/O as [Sys_error "Interrupted system call"]. Neither is
    an error of the connection: the call must simply be reissued.
    Without this, a stray [SIGCHLD]/[SIGWINCH]/profiling signal could
    drop a healthy connection or surface a spurious protocol error
    (the bug this module fixes in the accept loop and the framing
    reader). *)

val eintr : (unit -> 'a) -> 'a
(** [eintr f] runs [f], reissuing it as long as it fails with an
    interrupted-syscall error. Every other exception passes through
    untouched. *)

val is_eintr : exn -> bool
(** True for [Unix.Unix_error (EINTR, _, _)] and for the [Sys_error]
    buffered-channel equivalent. *)
