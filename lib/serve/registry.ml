module Cache = Tka_incr.Cache
module Fnv = Tka_incr.Fnv
module Metrics = Tka_obs.Metrics
module J = Tka_obs.Jsonx

let g_designs = Metrics.Gauge.make "serve.designs"
let c_attaches = Metrics.Counter.make "serve.cache_attaches"
let c_seeded = Metrics.Counter.make "serve.cache_seeded"

type entry = { e_cache : Cache.t; mutable e_stamp : int }

type t = {
  mutex : Mutex.t;
  tbl : (Fnv.t, entry) Hashtbl.t;
  max_designs : int;
  mutable clock : int;  (* attach order, for LRU eviction *)
  mutable attaches : int;
  mutable seeded : int;
  mutable evicted : int;
}

let create ?(max_designs = 64) () =
  {
    mutex = Mutex.create ();
    tbl = Hashtbl.create 16;
    max_designs = max 1 max_designs;
    clock = 0;
    attaches = 0;
    seeded = 0;
    evicted = 0;
  }

let fingerprint nl = Fnv.string Fnv.basis (Tka_circuit.Netlist_format.print nl)

let evict_locked t =
  while Hashtbl.length t.tbl > t.max_designs do
    let victim =
      Hashtbl.fold
        (fun fp e acc ->
          match acc with
          | Some (_, stamp) when stamp <= e.e_stamp -> acc
          | _ -> Some (fp, e.e_stamp))
        t.tbl None
    in
    match victim with
    | Some (fp, _) ->
      Hashtbl.remove t.tbl fp;
      t.evicted <- t.evicted + 1
    | None -> ()
  done

let attach_seeded t ~fp ~seed =
  Mutex.lock t.mutex;
  let cache =
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.mutex)
      (fun () ->
        t.attaches <- t.attaches + 1;
        t.clock <- t.clock + 1;
        match Hashtbl.find_opt t.tbl fp with
        | Some e ->
          e.e_stamp <- t.clock;
          e.e_cache
        | None ->
          let cache = seed () in
          t.seeded <- t.seeded + 1;
          Hashtbl.replace t.tbl fp { e_cache = cache; e_stamp = t.clock };
          evict_locked t;
          Metrics.Counter.incr c_seeded;
          cache)
  in
  Metrics.Counter.incr c_attaches;
  Metrics.Gauge.set g_designs (float_of_int (Hashtbl.length t.tbl));
  cache

let attach t ~fp =
  (* an empty first attach is not a "seed" in the stats' sense *)
  Mutex.lock t.mutex;
  let cache =
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.mutex)
      (fun () ->
        t.attaches <- t.attaches + 1;
        t.clock <- t.clock + 1;
        match Hashtbl.find_opt t.tbl fp with
        | Some e ->
          e.e_stamp <- t.clock;
          e.e_cache
        | None ->
          let cache = Cache.create () in
          Hashtbl.replace t.tbl fp { e_cache = cache; e_stamp = t.clock };
          evict_locked t;
          cache)
  in
  Metrics.Counter.incr c_attaches;
  Metrics.Gauge.set g_designs (float_of_int (Hashtbl.length t.tbl));
  cache

type stats = {
  rg_designs : int;
  rg_entries : int;
  rg_attaches : int;
  rg_seeded : int;
  rg_evicted : int;
}

let stats t =
  Mutex.lock t.mutex;
  let caches = Hashtbl.fold (fun _ e acc -> e.e_cache :: acc) t.tbl [] in
  let s =
    {
      rg_designs = Hashtbl.length t.tbl;
      rg_entries = 0;
      rg_attaches = t.attaches;
      rg_seeded = t.seeded;
      rg_evicted = t.evicted;
    }
  in
  Mutex.unlock t.mutex;
  (* Cache.size takes each cache's own lock; do it outside ours *)
  { s with rg_entries = List.fold_left (fun n c -> n + Cache.size c) 0 caches }

let stats_json t =
  let s = stats t in
  J.Obj
    [
      ("designs", J.Int s.rg_designs);
      ("entries", J.Int s.rg_entries);
      ("attaches", J.Int s.rg_attaches);
      ("seeded", J.Int s.rg_seeded);
      ("evicted", J.Int s.rg_evicted);
    ]
