(** One tenant's conversation with the daemon: a loaded design and the
    session-scoped RPC methods over it.

    A session owns no victim cache — it attaches to the {!Registry}
    cache for its design's fingerprint through
    {!Tka_incr.Analyzer.with_shared_cache}, so every result it
    enumerates is immediately reusable by co-tenants (and vice versa).
    All results are {e bit-identical} to the equivalent one-shot CLI
    run at any jobs count: the session only composes the analyzer and
    the engine, both of which carry that contract.

    Methods (see [docs/serving.md] for the wire reference):

    - [load]: parse a netlist body, attach the shared cache;
    - [info]: size statistics of the loaded design;
    - [analyze]: run both dual enumerations through the cache and
      report the requested mode's per-cardinality sets and delays;
    - [whatif]: apply an edit script to a {e copy}, analyze it against
      a cache seeded from the base design's
      ({!Tka_incr.Cache.remapped_copy}), leave the session unchanged;
    - [eco]: pick the top elimination set, commit its removal edits,
      re-analyze incrementally — the session's design advances.

    Concurrency: one session is driven by one connection thread, but
    many sessions run concurrently; everything shared (registry,
    caches, metrics, the domain pool) is lock- or atomic-guarded. *)

type t

val create :
  registry:Registry.t ->
  lookup:(string -> Tka_cell.Cell.t option) ->
  default_k:int ->
  t

val loaded : t -> bool

val handle :
  t -> meth:string -> params:Proto.J.t -> (Proto.J.t, Proto.error_code * string) result
(** Dispatch a session method. [Error (Bad_request, _)] on an unknown
    method — the server owns the connection-level methods ([ping],
    [metrics], [stats], [batch], [shutdown]). *)
