(** Length-prefixed NDJSON framing for the [tka serve] wire protocol.

    A frame is an ASCII decimal byte count, a newline, exactly that
    many payload bytes, and a trailing newline:

    {v 17\n{"method":"ping"}\n v}

    The length prefix makes the payload 8-bit clean — embedded newlines
    (e.g. a netlist body inside a [load] request) need no escaping —
    while the trailing newline keeps a captured stream readable and
    greppable line-by-line, NDJSON style. The reader validates
    everything it consumes: a non-numeric prefix, a length above
    [max_len], a short read, or a missing terminator yields a typed
    {!error}, never an exception — a daemon must answer garbage with a
    structured error reply, not a crash. *)

type error =
  | Eof  (** clean end of stream before any prefix byte *)
  | Oversized of { declared : int; limit : int }
  | Malformed of string
      (** non-numeric prefix, truncated payload, or missing trailing
          newline — the stream is desynchronised and should be closed *)

val error_to_string : error -> string

val default_max_len : int
(** 64 MiB — far above any request the daemon serves, a backstop
    against hostile or corrupt prefixes. *)

val write : out_channel -> string -> unit
(** Write one frame and flush. *)

val read : ?max_len:int -> in_channel -> (string, error) result
(** Read one frame. [Error Eof] only when the stream ends cleanly
    {e between} frames; an end-of-file mid-frame is [Malformed]. *)
