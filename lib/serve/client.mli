(** Blocking RPC client for a [tka serve] daemon.

    One {!t} is one connection — one daemon session — and is meant to
    be driven by one thread (the load generator opens a client per
    worker). Request ids are assigned automatically and checked
    against the reply; transport-level failures (socket errors, a
    desynchronised stream) raise {!Transport}, while application
    errors come back as the typed [Error] of {!call}. *)

type t

exception Transport of string

val connect_unix : string -> t
val connect_tcp : host:string -> port:int -> t
val close : t -> unit

val call_envelope : t -> meth:string -> params:Proto.J.t -> Proto.J.t
(** Send one request, return the raw reply envelope.
    @raise Transport on socket or framing failure, or an id mismatch. *)

val call :
  t -> meth:string -> ?params:Proto.J.t -> unit ->
  (Proto.J.t, Proto.error_code * string) result
(** {!call_envelope} split through {!Proto.response_result}. *)
