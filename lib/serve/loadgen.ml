module J = Tka_obs.Jsonx
module Clock = Tka_obs.Clock

type mix = { mx_analyze : int; mx_whatif : int; mx_eco : int }

let default_mix = { mx_analyze = 6; mx_whatif = 3; mx_eco = 1 }

type report = {
  lg_clients : int;
  lg_requests : int;
  lg_ok : int;
  lg_overloaded : int;
  lg_timeout : int;
  lg_errors : int;
  lg_analyze : int;
  lg_whatif : int;
  lg_eco : int;
  lg_elapsed_s : float;
  lg_qps : float;
  lg_mean_ms : float;
  lg_p50_ms : float;
  lg_p95_ms : float;
  lg_p99_ms : float;
  lg_max_ms : float;
  lg_cache_hits : int;
  lg_cache_misses : int;
  lg_cache_hit_rate : float;
}

(* splitmix64 finalizer: a counter-based PRNG, so the request schedule
   is a pure function of (client, request index) *)
let hash64 x =
  let open Int64 in
  let z = add x 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let pick_mod x m = Int64.to_int (Int64.unsigned_rem (hash64 x) (Int64.of_int m))

type verb = Analyze | Whatif | Eco

let pick_verb mix ~client ~i =
  let total = mix.mx_analyze + mix.mx_whatif + mix.mx_eco in
  if total <= 0 then invalid_arg "Loadgen: mix weights must sum to > 0";
  let r = pick_mod (Int64.of_int ((client * 1_000_003) + i)) total in
  if r < mix.mx_analyze then Analyze
  else if r < mix.mx_analyze + mix.mx_whatif then Whatif
  else Eco

type worker = {
  mutable w_lat_ms : float list;
  mutable w_ok : int;
  mutable w_overloaded : int;
  mutable w_timeout : int;
  mutable w_errors : int;
  mutable w_analyze : int;
  mutable w_whatif : int;
  mutable w_eco : int;
  mutable w_hits : int;
  mutable w_misses : int;
}

let new_worker () =
  {
    w_lat_ms = [];
    w_ok = 0;
    w_overloaded = 0;
    w_timeout = 0;
    w_errors = 0;
    w_analyze = 0;
    w_whatif = 0;
    w_eco = 0;
    w_hits = 0;
    w_misses = 0;
  }

let int_member name j =
  match J.member name j with Some (J.Int i) -> i | _ -> 0

let record_cache w = function
  | Ok result ->
    w.w_hits <- w.w_hits + int_member "cache_hits" result + int_member "analysis_hits" result;
    w.w_misses <-
      w.w_misses + int_member "cache_misses" result + int_member "analysis_misses" result
  | Error _ -> ()

let request_params ~couplings ~client ~i = function
  | Analyze -> J.Obj []
  | Eco -> J.Obj [ ("fix_k", J.Int 1) ]
  | Whatif ->
    let edits =
      if couplings <= 0 then []
      else
        let c = pick_mod (Int64.of_int ((client * 7_000_009) + i)) couplings in
        [
          J.Obj
            [
              ("op", J.Str "scale_coupling");
              ("coupling", J.Int c);
              ("factor", J.Float 0.5);
            ];
        ]
    in
    J.Obj [ ("edits", J.List edits) ]

let run ~connect ~netlist ?(k = 10) ?(clients = 4) ?(requests = 25)
    ?(mix = default_mix) () =
  let clients = max 1 clients and requests = max 0 requests in
  ignore (pick_verb mix ~client:0 ~i:0) (* validate the mix up front *);
  let workers = Array.init clients (fun _ -> new_worker ()) in
  let mutex = Mutex.create () in
  let cond = Condition.create () in
  let ready = ref 0 in
  let go = ref false in
  let failure = ref None in
  let t0 = ref 0. in
  let body client =
    let w = workers.(client) in
    match
      let c = connect () in
      let couplings =
        match
          Client.call c ~meth:"load"
            ~params:(J.Obj [ ("netlist", J.Str netlist); ("k", J.Int k) ])
            ()
        with
        | Ok result -> int_member "couplings" result
        | Error (_, msg) -> raise (Client.Transport ("load failed: " ^ msg))
      in
      (c, couplings)
    with
    | exception e ->
      Mutex.lock mutex;
      if !failure = None then failure := Some e;
      incr ready;
      Condition.broadcast cond;
      Mutex.unlock mutex
    | c, couplings ->
      (* all sessions are loaded before the timed window opens *)
      Mutex.lock mutex;
      incr ready;
      Condition.broadcast cond;
      while not !go do
        Condition.wait cond mutex
      done;
      Mutex.unlock mutex;
      (try
         for i = 0 to requests - 1 do
           let verb = pick_verb mix ~client ~i in
           let meth, counter =
             match verb with
             | Analyze -> ("analyze", fun () -> w.w_analyze <- w.w_analyze + 1)
             | Whatif -> ("whatif", fun () -> w.w_whatif <- w.w_whatif + 1)
             | Eco -> ("eco", fun () -> w.w_eco <- w.w_eco + 1)
           in
           counter ();
           let params = request_params ~couplings ~client ~i verb in
           let t = Clock.now_s () in
           let reply = Client.call c ~meth ~params () in
           w.w_lat_ms <- ((Clock.now_s () -. t) *. 1e3) :: w.w_lat_ms;
           (match reply with
           | Ok _ -> w.w_ok <- w.w_ok + 1
           | Error (Proto.Overloaded, _) -> w.w_overloaded <- w.w_overloaded + 1
           | Error (Proto.Timeout, _) -> w.w_timeout <- w.w_timeout + 1
           | Error _ -> w.w_errors <- w.w_errors + 1);
           record_cache w reply
         done
       with Client.Transport _ -> w.w_errors <- w.w_errors + 1);
      Client.close c
  in
  let threads = Array.init clients (fun i -> Thread.create body i) in
  Mutex.lock mutex;
  while !ready < clients do
    Condition.wait cond mutex
  done;
  t0 := Clock.now_s ();
  go := true;
  Condition.broadcast cond;
  Mutex.unlock mutex;
  Array.iter Thread.join threads;
  let elapsed = Clock.now_s () -. !t0 in
  (match !failure with Some e -> raise e | None -> ());
  let sum f = Array.fold_left (fun acc w -> acc + f w) 0 workers in
  let lats =
    Array.of_list (Array.fold_left (fun acc w -> List.rev_append w.w_lat_ms acc) [] workers)
  in
  Array.sort Float.compare lats;
  let n = Array.length lats in
  let pct q =
    if n = 0 then 0.
    else lats.(max 0 (min (n - 1) (int_of_float (ceil (q *. float_of_int n)) - 1)))
  in
  let hits = sum (fun w -> w.w_hits) and misses = sum (fun w -> w.w_misses) in
  {
    lg_clients = clients;
    lg_requests = n;
    lg_ok = sum (fun w -> w.w_ok);
    lg_overloaded = sum (fun w -> w.w_overloaded);
    lg_timeout = sum (fun w -> w.w_timeout);
    lg_errors = sum (fun w -> w.w_errors);
    lg_analyze = sum (fun w -> w.w_analyze);
    lg_whatif = sum (fun w -> w.w_whatif);
    lg_eco = sum (fun w -> w.w_eco);
    lg_elapsed_s = elapsed;
    lg_qps = (if elapsed > 0. then float_of_int n /. elapsed else 0.);
    lg_mean_ms =
      (if n = 0 then 0. else Array.fold_left ( +. ) 0. lats /. float_of_int n);
    lg_p50_ms = pct 0.50;
    lg_p95_ms = pct 0.95;
    lg_p99_ms = pct 0.99;
    lg_max_ms = (if n = 0 then 0. else lats.(n - 1));
    lg_cache_hits = hits;
    lg_cache_misses = misses;
    lg_cache_hit_rate =
      (if hits + misses = 0 then 0.
       else float_of_int hits /. float_of_int (hits + misses));
  }

let to_json r =
  J.Obj
    [
      ("clients", J.Int r.lg_clients);
      ("requests", J.Int r.lg_requests);
      ("ok", J.Int r.lg_ok);
      ("overloaded", J.Int r.lg_overloaded);
      ("timeout", J.Int r.lg_timeout);
      ("errors", J.Int r.lg_errors);
      ("analyze", J.Int r.lg_analyze);
      ("whatif", J.Int r.lg_whatif);
      ("eco", J.Int r.lg_eco);
      ("elapsed_s", J.Float r.lg_elapsed_s);
      ("qps", J.Float r.lg_qps);
      ("mean_ms", J.Float r.lg_mean_ms);
      ("p50_ms", J.Float r.lg_p50_ms);
      ("p95_ms", J.Float r.lg_p95_ms);
      ("p99_ms", J.Float r.lg_p99_ms);
      ("max_ms", J.Float r.lg_max_ms);
      ("cache_hits", J.Int r.lg_cache_hits);
      ("cache_misses", J.Int r.lg_cache_misses);
      ("cache_hit_rate", J.Float r.lg_cache_hit_rate);
    ]
