(** Bounded admission control for the daemon's analysis requests.

    At most [max_inflight] requests execute at once; at most
    [max_queue] more wait for a slot. A request arriving beyond both
    bounds is rejected immediately with {!Rejected_overloaded}, and a
    queued request whose deadline passes before a slot frees is
    rejected with {!Rejected_timeout} — the two structured error
    replies that make overload loud instead of latent. Admitted
    requests always run to completion: the deadline bounds {e queueing},
    not execution, so an admitted analysis is never abandoned
    half-written into the shared cache.

    Waiters poll the slot state at millisecond granularity (OCaml's
    [Condition] has no timed wait); at daemon request rates the poll
    is noise, and it keeps the implementation free of wake-up
    subtleties under the mixed thread/domain runtime.

    Reported when {!Tka_obs.Metrics} is enabled: [serve.admitted],
    [serve.overloaded], [serve.timeouts] (counters), [serve.inflight]
    and [serve.queued] (gauges), and [serve.queue_wait_s]
    (histogram). *)

type t

val create : ?max_inflight:int -> ?max_queue:int -> ?deadline_s:float -> unit -> t
(** Defaults: [max_inflight] = the domain-pool jobs count (analysis
    requests saturate the pool anyway; admitting more would only
    queue them inside it), [max_queue] = 32, [deadline_s] = 30. *)

type rejection =
  | Rejected_overloaded of { queued : int; limit : int }
  | Rejected_timeout of { waited_s : float }

val rejection_code : rejection -> Proto.error_code * string
(** The wire error for a rejection. *)

val run : t -> ?deadline_s:float -> (unit -> 'a) -> ('a, rejection) result
(** Admit (waiting if needed), execute, release — exception-safe.
    [deadline_s] overrides the queue-wait deadline per request. *)

val inflight : t -> int
val queued : t -> int
