(** Mutation fuzzer for the text-format parsers.

    The parsers' error contract: on any input, either parse
    successfully or raise the format's structured [Parse_error] with a
    line number inside the input — never [Invalid_argument],
    [Failure], [Not_found], a stack overflow, or an unstructured
    builder error. The fuzzer starts from a valid document (rendered
    from a random circuit, so the corpus follows the generator's seed)
    and applies byte- and line-level mutations; {!check} classifies
    the parser's reaction. *)

type format = Netlist_fmt | Verilog | Spef | Sdf | Liberty

val all : format list
val name : format -> string

val of_name : string -> format option
(** Inverse of {!name} (used by replay). *)

val generate : Tka_util.Rng.t -> format -> string
(** A valid document of the format: the corresponding printer applied
    to a {!Gen.small_circuit} (the built-in library dump for
    [Liberty]). *)

val mutate : Tka_util.Rng.t -> string -> string
(** 1–4 random mutations: byte flips/inserts/deletes (biased towards
    the formats' delimiter characters), line deletion/duplication/
    swapping, truncation, and replacing a token with a hostile number
    (["nan"], ["inf"], ["1e999"]). *)

val check : format -> string -> string option
(** Run the format's parser on the input. [None] when the contract
    holds (clean parse, or a structured [Parse_error] whose line lies
    in [0, lines+1]); [Some detail] when the parser escaped the
    contract. *)
