module N = Tka_circuit.Netlist
module Topo = Tka_circuit.Topo
module Addition = Tka_topk.Addition
module Elimination = Tka_topk.Elimination
module BF = Tka_topk.Brute_force
module CS = Tka_topk.Coupling_set
module Pool = Tka_parallel.Pool
module Eco = Tka_incr.Eco
module Analyzer = Tka_incr.Analyzer

type verdict = Pass | Skip of string | Fail of string

let feq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

(* Tolerances mirror the regression suite: top-1 is exact (the engine
   evaluates every single-coupling candidate), larger sets are a
   heuristic with a 1%-of-optimum contract, and in no case may the
   engine land on the wrong side of the optimum — both sides evaluate
   candidates with the same iterative analysis. *)
let brute ?(budget_s = 30.) ~k topo =
  if k < 1 || k > 3 then invalid_arg "Oracle.brute: k must be in [1, 3]";
  let nl = Topo.netlist topo in
  if 2 * N.num_couplings nl < k then Skip "universe smaller than k"
  else begin
    let add = Addition.compute ~k topo in
    let bfa = BF.addition ~budget_s ~k topo in
    if not bfa.BF.bf_completed then Skip "brute-force addition budget expired"
    else begin
      let d = Addition.evaluate add k in
      let opt = bfa.BF.bf_delay in
      let tol = if k = 1 then 1e-6 else (0.01 *. opt) +. 1e-9 in
      if d > opt +. 1e-9 then
        Fail
          (Printf.sprintf
             "addition k=%d: engine delay %.9f exceeds the brute-force optimum %.9f"
             k d opt)
      else if opt -. d > tol then
        Fail
          (Printf.sprintf
             "addition k=%d: engine delay %.9f misses the brute-force optimum %.9f by more than %.1e"
             k d opt tol)
      else begin
        let elim = Elimination.compute ~k topo in
        let bfe = BF.elimination ~budget_s ~k topo in
        if not bfe.BF.bf_completed then
          Skip "brute-force elimination budget expired"
        else begin
          let d = Elimination.evaluate elim k in
          let opt = bfe.BF.bf_delay in
          if d < opt -. 1e-9 then
            Fail
              (Printf.sprintf
                 "elimination k=%d: engine delay %.9f beats the brute-force optimum %.9f"
                 k d opt)
          else if d -. opt > (0.01 *. opt) +. 1e-9 then
            Fail
              (Printf.sprintf
                 "elimination k=%d: engine delay %.9f misses the brute-force optimum %.9f by more than 1%%"
                 k d opt)
          else Pass
        end
      end
    end
  end

let duality ~set topo =
  let nl = Topo.netlist topo in
  let u = 2 * N.num_couplings nl in
  if u = 0 then Skip "no couplings"
  else begin
    let complement =
      CS.of_list (List.filter (fun d -> not (CS.mem d set)) (List.init u Fun.id))
    in
    let d_elim = Elimination.evaluate_set topo set in
    let d_add = Addition.evaluate_set topo complement in
    if feq d_elim d_add then Pass
    else
      Fail
        (Printf.sprintf
           "duality: eliminating %s gives %.17g but activating the complement gives %.17g"
           (Format.asprintf "%a" CS.pp set)
           d_elim d_add)
  end

let jobs ?(jobs = 4) ~k topo =
  let saved = Pool.default_jobs () in
  Fun.protect ~finally:(fun () -> Pool.set_default_jobs saved) @@ fun () ->
  Pool.set_default_jobs 1;
  let seq = Elimination.compute ~k topo in
  Pool.set_default_jobs jobs;
  let par = Elimination.compute ~k topo in
  if Eco.elim_identical seq par then Pass
  else
    Fail
      (Printf.sprintf
         "jobs: k=%d results differ bitwise between --jobs 1 and --jobs %d" k
         jobs)

(* Structural FNV-1a over every net, gate binding and coupling in id
   order: pins the exact generated structure, not just the counts, so
   any drift in the generator's draw order shows up as a new value. *)
let netlist_fingerprint nl =
  let h = ref 0x64_9c_9e_66_9c_9e_64_9c in
  let mix i = h := (!h lxor i) * 0x100000001b3 land max_int in
  let mix_str s =
    mix (String.length s);
    String.iter (fun c -> mix (Char.code c)) s
  in
  let mix_f f = mix (Int64.to_int (Int64.bits_of_float f) land max_int) in
  Array.iter
    (fun n ->
      mix n.N.net_id;
      mix_str n.N.net_name;
      mix (if n.N.is_output then 1 else 0))
    (N.nets nl);
  Array.iter
    (fun g ->
      mix_str g.N.gate_name;
      mix_str g.N.cell.Tka_cell.Cell.name;
      List.iter
        (fun (pin, src) ->
          mix_str pin;
          mix src)
        g.N.fanin;
      mix g.N.fanout)
    (N.gates nl);
  Array.iter
    (fun c ->
      mix c.N.net_a;
      mix c.N.net_b;
      mix_f c.N.coupling_cap)
    (N.couplings nl);
  Printf.sprintf "%016x" !h

let table2x ?expected spec =
  let a = netlist_fingerprint (Tka_layout.Table2x.generate spec) in
  let b = netlist_fingerprint (Tka_layout.Table2x.generate spec) in
  if a <> b then
    Fail
      (Printf.sprintf
         "table2x: %s (seed %d) is not regeneration-deterministic: %s vs %s"
         spec.Tka_layout.Table2x.tx_name spec.Tka_layout.Table2x.tx_seed a b)
  else
    match expected with
    | None -> Pass
    | Some e when e = a -> Pass
    | Some e ->
      Fail
        (Printf.sprintf
           "table2x: %s (seed %d) fingerprint drifted: expected %s, got %s"
           spec.Tka_layout.Table2x.tx_name spec.Tka_layout.Table2x.tx_seed e a)

(* The repair loop makes three claims worth falsifying: its final
   incremental state matches a scratch re-analysis (rp_identical), its
   journal replays to the exact final netlist, and the journal survives
   a JSON round-trip without losing that property. The loop only emits
   remove/scale/strengthen edits, so the round-trip needs no cell
   lookup. *)
let repair ?(budget = 3) ~k nl =
  let module Repair = Tka_incr.Repair in
  if N.num_couplings nl = 0 then Skip "no couplings"
  else begin
    let report, nl_final, elim_final = Repair.run ~k ~fix_k:1 ~budget nl in
    let journal = report.Repair.rp_journal in
    if not report.Repair.rp_identical then
      Fail
        (Printf.sprintf
           "repair: final incremental state differs bitwise from a scratch \
            re-analysis after %d applied edit(s)"
           report.Repair.rp_edits_applied)
    else if
      netlist_fingerprint (Repair.replay nl journal)
      <> netlist_fingerprint nl_final
    then Fail "repair: replaying the journal does not reproduce the final netlist"
    else begin
      let round_tripped =
        List.map
          (fun e ->
            match
              Repair.entry_of_json ~lookup:(fun _ -> None)
                (Repair.entry_json e)
            with
            | Ok e -> e
            | Error m -> failwith m)
          journal
      in
      match round_tripped with
      | exception Failure m ->
        Fail
          (Printf.sprintf "repair: journal entry does not survive a JSON round-trip: %s" m)
      | entries ->
        let replayed = Repair.replay nl entries in
        if netlist_fingerprint replayed <> netlist_fingerprint nl_final then
          Fail
            "repair: replaying the JSON round-tripped journal does not \
             reproduce the final netlist"
        else
          let scratch = Elimination.compute ~k (Topo.create replayed) in
          if Eco.elim_identical scratch elim_final then Pass
          else
            Fail
              "repair: scratch analysis of the replayed netlist differs \
               bitwise from the loop's final state"
    end
  end

(* The aggressor filter makes three falsifiable claims (docs/filtering.md):
   [Off] is bit-identical to the historical default; [Window]/[Logic]
   are relaxations (the addition estimate can only shrink, the
   elimination estimate can only grow — fewer/smaller envelopes mean
   less noise found and less removal benefit); and every drop carries a
   certificate. Window drops are certified against the waveform layer —
   the envelope the engine would have built must be identically zero on
   the victim's dominance interval, checked with [Pwl.max_on] rather
   than the filter's own interval arithmetic. Logic drops are certified
   by exhaustive boolean simulation of the netlist: every abstract
   value the implication analysis assigned must hold under all 2^n
   primary-input assignments (capped at 2^16 inputs; generator
   circuits have 2–3). *)
let filter_consistency ?(max_sim_inputs = 16) ~k topo =
  let module Dominance = Tka_topk.Dominance in
  let module Iterate = Tka_noise.Iterate in
  let module CN = Tka_noise.Coupled_noise in
  let module EB = Tka_noise.Envelope_builder in
  let module Analysis = Tka_sta.Analysis in
  let module TW = Tka_sta.Timing_window in
  let module Filter = Tka_filter.Filter in
  let module Mode = Tka_filter.Mode in
  let module Implication = Tka_filter.Implication in
  let module Envelope = Tka_waveform.Envelope in
  let module Pwl = Tka_waveform.Pwl in
  let module Transition = Tka_waveform.Transition in
  let exception Cert_fail of string in
  let nl = Topo.netlist topo in
  if N.num_couplings nl = 0 then Skip "no couplings"
  else begin
    let fix = Iterate.run topo in
    (* 1. Off is bit-identical to the default at any jobs count (the
       default IS Off; this guards the plumbing, not a tautology — the
       screened path must return the untouched candidate list). *)
    let base_elim = Elimination.compute ~fixpoint:fix ~k topo in
    let off_elim =
      Elimination.compute ~filter:Mode.Off ~fixpoint:fix ~k topo
    in
    if not (Eco.elim_identical base_elim off_elim) then
      Fail "filter: explicit --filter none differs bitwise from the default"
    else begin
      let base_add = Addition.compute ~fixpoint:fix ~k topo in
      let tol v = (0.01 *. Float.abs v) +. 1e-9 in
      let relaxation m =
        let fadd = Addition.compute ~filter:m ~fixpoint:fix ~k topo in
        let felim = Elimination.compute ~filter:m ~fixpoint:fix ~k topo in
        let rec per_k i =
          if i > k then None
          else
            let ea = Addition.estimated_delay base_add i in
            let ea_f = Addition.estimated_delay fadd i in
            let ee = Elimination.estimated_delay base_elim i in
            let ee_f = Elimination.estimated_delay felim i in
            if ea_f > ea +. tol ea then
              Some
                (Printf.sprintf
                   "filter %s: k=%d addition estimate %.9f exceeds the \
                    unfiltered estimate %.9f (filtering may only shrink it)"
                   (Mode.to_string m) i ea_f ea)
            else if ee_f < ee -. tol ee then
              Some
                (Printf.sprintf
                   "filter %s: k=%d elimination estimate %.9f is below the \
                    unfiltered estimate %.9f (filtering may only raise it)"
                   (Mode.to_string m) i ee_f ee)
            else per_k (i + 1)
        in
        per_k 1
      in
      (* 3a. window-drop certificates, for both engines' window sets *)
      let base_w = Analysis.window fix.Iterate.base in
      let noisy_w = Analysis.window fix.Iterate.analysis in
      let certify_drops m =
        List.iter
          (fun (engine_mode, mode_w) ->
            let filt = Filter.prepare ~mode:m ~windows:mode_w topo in
            for v = 0 to N.num_nets nl - 1 do
              List.iter
                (fun (d : CN.directed) ->
                  match Filter.decide filt d with
                  | Filter.Drop Filter.Window_disjoint ->
                    let victim =
                      Transition.make ~t50:(base_w v).TW.lat
                        ~slew:(mode_w v).TW.slew_late ()
                    in
                    let interval = Dominance.interval ~victim in
                    let env = EB.of_directed nl ~windows:mode_w d in
                    if Pwl.max_on interval (Envelope.waveform env) > 1e-9
                    then
                      raise
                        (Cert_fail
                           (Printf.sprintf
                              "filter %s (%s windows): dropped aggressor \
                               %d->%d as non-overlapping but its envelope \
                               is non-zero on the dominance interval"
                              (Mode.to_string m) engine_mode
                              d.CN.dc_aggressor d.CN.dc_victim))
                  | Filter.Drop _ | Filter.Keep | Filter.Derate _ -> ())
                (CN.aggressors_of_victim nl v)
            done)
          [ ("base", base_w); ("noisy", noisy_w) ]
      in
      (* 3b. logic certificates: every abstract implication value must
         agree with exhaustive simulation *)
      let certify_logic () =
        let pis = N.inputs nl in
        let npi = List.length pis in
        if npi > max_sim_inputs then ()
        else begin
          let values = Implication.analyze topo in
          let pi_arr = Array.of_list pis in
          let assigned = Array.make (N.num_nets nl) false in
          for mask = 0 to (1 lsl npi) - 1 do
            Array.iteri
              (fun bit pi -> assigned.(pi) <- (mask lsr bit) land 1 = 1)
              pi_arr;
            match Implication.eval_all nl ~assignment:(fun n -> assigned.(n)) with
            | exception Implication.Parse_error -> ()
            | sim ->
              Array.iteri
                (fun n v ->
                  let claim =
                    match (v : Implication.value) with
                    | Implication.Mixed -> None
                    | Implication.Const b -> Some b
                    | Implication.Fn { root; at0; at1 } ->
                      Some (if sim.(root) then at1 else at0)
                  in
                  match claim with
                  | Some expected when sim.(n) <> expected ->
                    raise
                      (Cert_fail
                         (Printf.sprintf
                            "filter logic: implication value of net %d is \
                             wrong under input assignment %#x"
                            n mask))
                  | _ -> ())
                values
          done
        end
      in
      match
        List.find_map relaxation [ Mode.Window; Mode.Logic ]
      with
      | Some msg -> Fail msg
      | None -> (
        match
          certify_drops Mode.Window;
          certify_drops Mode.Logic;
          certify_logic ()
        with
        | () -> Pass
        | exception Cert_fail msg -> Fail msg)
    end
  end

let incremental ~k nl edits =
  match edits with
  | [] -> Skip "empty edit script"
  | _ :: _ ->
    let az = Analyzer.create ~k () in
    let _warmup = Analyzer.run az (Topo.create nl) in
    let nl', _dirty = Analyzer.apply az nl edits in
    let topo' = Topo.create nl' in
    let incr, _stats = Analyzer.run az topo' in
    let full = Elimination.compute ~k topo' in
    if Eco.elim_identical full incr then Pass
    else
      Fail
        (Printf.sprintf
           "incremental: k=%d cached re-analysis differs bitwise from scratch after %d edit(s)"
           k (List.length edits))
