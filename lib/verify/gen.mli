(** Seeded random circuits and edit scripts for the differential oracle.

    Thin wrappers over {!Tka_layout.Benchmarks.generate} (itself fully
    deterministic in its seed) and {!Tka_incr.Edit}, drawing every size
    parameter from a caller-supplied {!Tka_util.Rng} stream so a trial
    is reproducible from the master seed alone. *)

val small_circuit : Tka_util.Rng.t -> Tka_circuit.Netlist.t
(** 6–10 gates with 3–6 coupling caps: small enough that the
    brute-force baseline enumerates [C(2c, 3)] subsets in well under a
    second, the regime the k ≤ 3 differential check needs. *)

val medium_circuit : Tka_util.Rng.t -> Tka_circuit.Netlist.t
(** 12–20 gates with 12–22 coupling caps, matching the random-circuit
    property tests: enough couplings for duality / determinism /
    incremental invariants to exercise real enumeration. *)

val edits : Tka_util.Rng.t -> Tka_circuit.Netlist.t -> Tka_incr.Edit.t list
(** A 1–4 step random ECO script valid for the given netlist: coupling
    removals, coupling scalings with a factor in [0, 1], and driver
    resizes to a same-arity library cell. May be empty when the
    netlist offers no applicable edit. *)
