(* Classic ddmin. Lists here are tiny (couplings of a generated
   circuit, lines of a fuzz input), so the quadratic worst case is
   irrelevant next to the cost of one [test] evaluation. *)

let partition xs size =
  let rec go acc cur n = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
      if n = size then go (List.rev cur :: acc) [ x ] 1 rest
      else go acc (x :: cur) (n + 1) rest
  in
  go [] [] 0 xs

let ddmin test xs =
  let rec go n xs =
    let len = List.length xs in
    if len <= 1 then xs
    else begin
      let size = max 1 ((len + n - 1) / n) in
      let chunks = partition xs size in
      match List.find_opt test chunks with
      | Some c -> go 2 c (* reduce to a failing chunk *)
      | None -> (
        let complements =
          List.mapi
            (fun i _ ->
              List.concat (List.filteri (fun j _ -> j <> i) chunks))
            chunks
        in
        match List.find_opt test complements with
        | Some c -> go (max (n - 1) 2) c (* reduce to a failing complement *)
        | None -> if n < len then go (min len (2 * n)) xs else xs)
    end
  in
  if test xs then go 2 xs else xs

let lines test src =
  if not (test src) then src
  else
    let ls = String.split_on_char '\n' src in
    String.concat "\n" (ddmin (fun ls -> test (String.concat "\n" ls)) ls)
