(** Differential oracle invariants for the top-k engine.

    Each check takes a concrete circuit (and, where relevant, a
    concrete set or edit script) so that a failing instance can be
    replayed from a reproducer without regenerating anything. The
    invariants, and why they hold (see [docs/verification.md]):

    - {!brute}: for k ≤ 3 the implicit enumeration's exact-evaluated
      pick must never beat the brute-force optimum (both evaluate sets
      with the same iterative analysis, and brute force scans every
      subset), must match it exactly for k = 1, and must land within
      1% of it for k = 2, 3 — the paper's Table 1 claim.
    - {!duality}: eliminating a set S is, by construction, the same
      fixpoint as activating its complement — the active-coupling
      predicates are pointwise equal — so the two delays must be
      bit-identical.
    - {!jobs}: the domain-pool engine is deterministic by construction;
      a 1-domain and an N-domain run must agree bitwise on every
      semantic field.
    - {!incremental}: re-analysis through the {!Tka_incr} cache after
      an edit script must be bit-identical to a from-scratch run on
      the edited design.
    - {!filter_consistency}: the aggressor candidate filter is a sound
      relaxation — [Off] is bit-identical to the default, filtered
      estimates only ever move toward "less noise found", and every
      drop decision carries an independently-checked certificate. *)

type verdict =
  | Pass
  | Skip of string  (** instance not checkable (budget expired, no couplings) *)
  | Fail of string  (** the invariant is violated; payload describes how *)

val brute : ?budget_s:float -> k:int -> Tka_circuit.Topo.t -> verdict
(** Differential check of both modes against {!Tka_topk.Brute_force}.
    [k] must be ≤ 3 (raises [Invalid_argument] otherwise — larger k is
    a harness bug, not an instance failure). Default budget 30 s per
    brute-force run; expiry yields [Skip]. *)

val duality : set:Tka_topk.Coupling_set.t -> Tka_circuit.Topo.t -> verdict
(** [duality ~set topo] checks
    [Elimination.evaluate_set topo set] is bit-identical to
    [Addition.evaluate_set topo (universe \ set)]. *)

val jobs : ?jobs:int -> k:int -> Tka_circuit.Topo.t -> verdict
(** Bit-identity of a [jobs = 1] and a [jobs = N] (default 4) run of
    {!Tka_topk.Elimination.compute}. The pool default in effect on
    entry is restored on exit. *)

val netlist_fingerprint : Tka_circuit.Netlist.t -> string
(** Structural hash (nets, gate bindings, coupling caps, in id order)
    as a fixed-width hex string. Two netlists with the same fingerprint
    are structurally identical for analysis purposes. *)

val table2x : ?expected:string -> Tka_layout.Table2x.spec -> verdict
(** Generate [spec] twice and check the {!netlist_fingerprint}s agree
    (the generator draws from one seeded stream in a fixed order, so a
    spec pins its netlist exactly); with [expected], also pin the value
    against a recorded fingerprint so silent generator drift across
    revisions fails loudly. *)

val filter_consistency :
  ?max_sim_inputs:int -> k:int -> Tka_circuit.Topo.t -> verdict
(** Check the three contracts of the {!Tka_filter} layer on one
    circuit. (1) [--filter none] is bit-identical to the default
    (every field, via {!Tka_incr.Eco.elim_identical}). (2) [window]
    and [logic] are relaxations: per cardinality the filtered addition
    estimate may not exceed the unfiltered one, and the filtered
    elimination estimate may not fall below it, beyond a 1% relative
    tolerance (de-rating only shrinks envelopes). (3) Certificates:
    every [Window_disjoint] drop — under both engines' window sets —
    must have an envelope that is identically zero on the victim's
    dominance interval, re-derived here through the waveform layer;
    and in [logic] mode every implication value must agree with
    exhaustive boolean simulation over all primary-input assignments
    (skipped beyond [max_sim_inputs] inputs, default 16). [Skip] when
    the circuit has no couplings. *)

val incremental :
  k:int -> Tka_circuit.Netlist.t -> Tka_incr.Edit.t list -> verdict
(** Apply the script through {!Tka_incr.Analyzer}, re-analyze
    incrementally, and compare bitwise against a from-scratch
    {!Tka_topk.Elimination.compute} of the edited design. [Skip] on an
    empty script. *)

val repair : ?budget:int -> k:int -> Tka_circuit.Netlist.t -> verdict
(** Drive {!Tka_incr.Repair.run} (default [budget] 3, [fix_k] 1) and
    check its three contracts: the accepted repair state is
    bit-identical to a scratch re-analysis; replaying the journal —
    both as returned and after a JSON round-trip of every entry —
    reproduces the final netlist exactly ({!netlist_fingerprint}); and
    a scratch analysis of the replayed netlist is bit-identical to the
    loop's final state. [Skip] on a design without couplings. *)
