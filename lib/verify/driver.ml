module N = Tka_circuit.Netlist
module Topo = Tka_circuit.Topo
module Nf = Tka_circuit.Netlist_format
module CS = Tka_topk.Coupling_set
module Rng = Tka_util.Rng
module Edit = Tka_incr.Edit
module Lib = Tka_cell.Default_lib
module Log = Tka_obs.Log
module Trace = Tka_obs.Trace
module J = Tka_obs.Jsonx

let log_src = Log.Src.create "verify" ~doc:"differential verification loop"

type summary = {
  vs_trials : int;
  vs_oracle : int;
  vs_fuzz : int;
  vs_skipped : int;
  vs_failures : Repro.t list;
  vs_elapsed_s : float;
}

(* --------------------------------------------------------------- *)
(* Minimization helpers                                            *)
(* --------------------------------------------------------------- *)

(* Rebuild [nl] keeping only the couplings in [keep] (ids refer to the
   original netlist). *)
let restrict_couplings nl keep =
  let drop =
    List.init (N.num_couplings nl) Fun.id
    |> List.filter (fun c -> not (List.mem c keep))
  in
  match Edit.apply nl (List.map (fun c -> Edit.Remove_coupling c) drop) with
  | nl', _map -> Some nl'
  | exception _ -> None

(* ddmin over the coupling list: the smallest set of couplings on
   which [fails] still holds. [fails] must treat its own exceptions. *)
let minimize_couplings ~fails nl =
  let test keep =
    match restrict_couplings nl keep with
    | Some nl' -> ( try fails nl' with _ -> false)
    | None -> false
  in
  let kept = Minimize.ddmin test (List.init (N.num_couplings nl) Fun.id) in
  match restrict_couplings nl kept with Some nl' -> nl' | None -> nl

(* --------------------------------------------------------------- *)
(* Trial families                                                  *)
(* --------------------------------------------------------------- *)

type ctx = {
  cx_seed : int;
  cx_minimize : bool;
  mutable cx_oracle : int;
  mutable cx_fuzz : int;
  mutable cx_skipped : int;
  mutable cx_failures : Repro.t list;
}

let record cx ~trial ~invariant ~detail ?k ?netlist ?set ?edits ?input () =
  Log.warn log_src (fun m ->
      m
        ~fields:[ Log.str "invariant" invariant; Log.int "trial" trial ]
        "defect found by trial %d (%s): %s" trial invariant detail);
  cx.cx_failures <-
    {
      Repro.rp_invariant = invariant;
      rp_seed = cx.cx_seed;
      rp_trial = trial;
      rp_detail = detail;
      rp_k = k;
      rp_netlist = netlist;
      rp_set = set;
      rp_edits = Option.map (List.map Repro.spec_of_edit) edits;
      rp_input = input;
    }
    :: cx.cx_failures

let fail_detail = function Oracle.Fail d -> Some d | Oracle.Pass | Oracle.Skip _ -> None

let trial_brute cx rng trial =
  cx.cx_oracle <- cx.cx_oracle + 1;
  let nl = Gen.small_circuit rng in
  let k = Rng.int_in rng 1 3 in
  (* a short per-run budget: the loop must not stall on one instance *)
  let check nl = Oracle.brute ~budget_s:20. ~k (Topo.create nl) in
  match check nl with
  | Oracle.Pass -> ()
  | Oracle.Skip _ -> cx.cx_skipped <- cx.cx_skipped + 1
  | Oracle.Fail detail ->
    let nl =
      if cx.cx_minimize then
        minimize_couplings ~fails:(fun nl -> fail_detail (check nl) <> None) nl
      else nl
    in
    let detail = Option.value ~default:detail (fail_detail (check nl)) in
    record cx ~trial ~invariant:"brute" ~detail ~k ~netlist:(Nf.print nl) ()

let trial_duality cx rng trial =
  cx.cx_oracle <- cx.cx_oracle + 1;
  let nl = Gen.medium_circuit rng in
  let topo = Topo.create nl in
  let u = 2 * N.num_couplings nl in
  if u = 0 then cx.cx_skipped <- cx.cx_skipped + 1
  else begin
    let s = List.filter (fun _ -> Rng.bool rng) (List.init u Fun.id) in
    let check s = Oracle.duality ~set:(CS.of_list s) topo in
    match check s with
    | Oracle.Pass -> ()
    | Oracle.Skip _ -> cx.cx_skipped <- cx.cx_skipped + 1
    | Oracle.Fail detail ->
      let s =
        if cx.cx_minimize then
          Minimize.ddmin (fun s -> fail_detail (check s) <> None) s
        else s
      in
      let detail = Option.value ~default:detail (fail_detail (check s)) in
      record cx ~trial ~invariant:"duality" ~detail ~netlist:(Nf.print nl)
        ~set:s ()
  end

let trial_jobs cx rng trial =
  cx.cx_oracle <- cx.cx_oracle + 1;
  let nl = Gen.medium_circuit rng in
  let k = Rng.int_in rng 2 4 in
  let check nl = Oracle.jobs ~k (Topo.create nl) in
  match check nl with
  | Oracle.Pass -> ()
  | Oracle.Skip _ -> cx.cx_skipped <- cx.cx_skipped + 1
  | Oracle.Fail detail ->
    let nl =
      if cx.cx_minimize then
        minimize_couplings ~fails:(fun nl -> fail_detail (check nl) <> None) nl
      else nl
    in
    let detail = Option.value ~default:detail (fail_detail (check nl)) in
    record cx ~trial ~invariant:"jobs" ~detail ~k ~netlist:(Nf.print nl) ()

let trial_incr cx rng trial =
  cx.cx_oracle <- cx.cx_oracle + 1;
  let nl = Gen.medium_circuit rng in
  let k = Rng.int_in rng 2 4 in
  let edits = Gen.edits rng nl in
  let check edits = Oracle.incremental ~k nl edits in
  match check edits with
  | Oracle.Pass -> ()
  | Oracle.Skip _ -> cx.cx_skipped <- cx.cx_skipped + 1
  | Oracle.Fail detail ->
    let edits =
      if cx.cx_minimize then
        Minimize.ddmin (fun es -> fail_detail (check es) <> None) edits
      else edits
    in
    let detail = Option.value ~default:detail (fail_detail (check edits)) in
    record cx ~trial ~invariant:"incr" ~detail ~k ~netlist:(Nf.print nl) ~edits
      ()

let trial_repair cx rng trial =
  cx.cx_oracle <- cx.cx_oracle + 1;
  let nl = Gen.medium_circuit rng in
  let k = Rng.int_in rng 2 4 in
  let budget = Rng.int_in rng 1 3 in
  let check nl = Oracle.repair ~budget ~k nl in
  match check nl with
  | Oracle.Pass -> ()
  | Oracle.Skip _ -> cx.cx_skipped <- cx.cx_skipped + 1
  | Oracle.Fail detail ->
    let nl =
      if cx.cx_minimize then
        minimize_couplings ~fails:(fun nl -> fail_detail (check nl) <> None) nl
      else nl
    in
    let detail = Option.value ~default:detail (fail_detail (check nl)) in
    record cx ~trial ~invariant:"repair" ~detail ~k ~netlist:(Nf.print nl) ()

let trial_filter cx rng trial =
  cx.cx_oracle <- cx.cx_oracle + 1;
  (* alternate small and medium circuits: small ones keep the exhaustive
     logic-certificate simulation cheap, medium ones exercise the window
     geometry on deeper cones *)
  let nl =
    if Rng.bool rng then Gen.small_circuit rng else Gen.medium_circuit rng
  in
  let k = Rng.int_in rng 1 4 in
  let check nl = Oracle.filter_consistency ~k (Topo.create nl) in
  match check nl with
  | Oracle.Pass -> ()
  | Oracle.Skip _ -> cx.cx_skipped <- cx.cx_skipped + 1
  | Oracle.Fail detail ->
    let nl =
      if cx.cx_minimize then
        minimize_couplings ~fails:(fun nl -> fail_detail (check nl) <> None) nl
      else nl
    in
    let detail = Option.value ~default:detail (fail_detail (check nl)) in
    record cx ~trial ~invariant:"filter" ~detail ~k ~netlist:(Nf.print nl) ()

let trial_fuzz cx rng trial =
  cx.cx_fuzz <- cx.cx_fuzz + 1;
  let fmt = Rng.pick_list rng Fuzz.all in
  let src = Fuzz.mutate rng (Fuzz.generate rng fmt) in
  match Fuzz.check fmt src with
  | None -> ()
  | Some detail ->
    let src =
      if cx.cx_minimize then
        Minimize.lines (fun s -> Fuzz.check fmt s <> None) src
      else src
    in
    let detail = Option.value ~default:detail (Fuzz.check fmt src) in
    record cx ~trial ~invariant:("fuzz_" ^ Fuzz.name fmt) ~detail ~input:src ()

(* --------------------------------------------------------------- *)
(* The loop                                                        *)
(* --------------------------------------------------------------- *)

let run ?(seed = 1) ?(trials = 500) ?(budget_s = infinity) ?(minimize = true)
    ?(progress = fun _ _ -> ()) () =
  Trace.with_span ~cat:"verify"
    ~args:[ ("seed", J.Int seed); ("trials", J.Int trials) ]
    "verify.run"
  @@ fun () ->
  let wall = Tka_obs.Clock.now_s in
  let t0 = wall () in
  let cx =
    {
      cx_seed = seed;
      cx_minimize = minimize;
      cx_oracle = 0;
      cx_fuzz = 0;
      cx_skipped = 0;
      cx_failures = [];
    }
  in
  let master = Rng.create seed in
  let trial = ref 0 in
  while !trial < trials && wall () -. t0 < budget_s do
    let rng = Rng.split master in
    (* two fuzz slots per eight trials: the fuzzer is orders of
       magnitude cheaper than an oracle trial, so it still dominates in
       count when a budget is set *)
    let family, body =
      match !trial mod 8 with
      | 0 -> ("brute", trial_brute)
      | 1 -> ("duality", trial_duality)
      | 2 -> ("jobs", trial_jobs)
      | 3 -> ("incr", trial_incr)
      | 4 -> ("repair", trial_repair)
      | 5 -> ("filter", trial_filter)
      | _ -> ("fuzz", trial_fuzz)
    in
    Trace.with_span ~cat:"verify"
      ~args:[ ("trial", J.Int !trial); ("family", J.Str family) ]
      "verify.trial"
      (fun () -> body cx rng !trial);
    incr trial;
    progress !trial trials
  done;
  let s =
    {
      vs_trials = !trial;
      vs_oracle = cx.cx_oracle;
      vs_fuzz = cx.cx_fuzz;
      vs_skipped = cx.cx_skipped;
      vs_failures = List.rev cx.cx_failures;
      vs_elapsed_s = wall () -. t0;
    }
  in
  Log.info log_src (fun m ->
      m
        ~fields:
          [
            Log.int "trials" s.vs_trials;
            Log.int "failures" (List.length s.vs_failures);
            Log.float "elapsed_s" s.vs_elapsed_s;
          ]
        "verification loop done: %d trial(s), %d failure(s)" s.vs_trials
        (List.length s.vs_failures));
  s

(* --------------------------------------------------------------- *)
(* Replay                                                          *)
(* --------------------------------------------------------------- *)

type replay_outcome = Reproduced of string | Passed | Skipped of string

let of_verdict = function
  | Oracle.Pass -> Passed
  | Oracle.Skip why -> Skipped why
  | Oracle.Fail detail -> Reproduced detail

let replay (r : Repro.t) =
  let broken detail = Reproduced ("cannot replay: " ^ detail) in
  let with_netlist f =
    match r.Repro.rp_netlist with
    | None -> broken "reproducer carries no netlist"
    | Some src -> (
      match Nf.parse ~lookup:Lib.find src with
      | nl -> f nl
      | exception e ->
        broken ("embedded netlist does not parse: " ^ Printexc.to_string e))
  in
  let k = Option.value ~default:1 r.Repro.rp_k in
  match r.Repro.rp_invariant with
  | "brute" -> with_netlist (fun nl -> of_verdict (Oracle.brute ~k (Topo.create nl)))
  | "duality" -> (
    match r.Repro.rp_set with
    | None -> broken "duality reproducer carries no set"
    | Some s ->
      with_netlist (fun nl ->
          of_verdict (Oracle.duality ~set:(CS.of_list s) (Topo.create nl))))
  | "jobs" -> with_netlist (fun nl -> of_verdict (Oracle.jobs ~k (Topo.create nl)))
  | "filter" ->
    with_netlist (fun nl ->
        of_verdict (Oracle.filter_consistency ~k (Topo.create nl)))
  | "incr" -> (
    match r.Repro.rp_edits with
    | None -> broken "incr reproducer carries no edit script"
    | Some specs -> (
      match
        List.map
          (fun spec ->
            match Repro.edit_of_spec spec with
            | Some e -> e
            | None -> raise Exit)
          specs
      with
      | edits -> with_netlist (fun nl -> of_verdict (Oracle.incremental ~k nl edits))
      | exception Exit -> broken "edit script names an unknown cell"))
  | inv when String.length inv > 5 && String.sub inv 0 5 = "fuzz_" -> (
    match (Fuzz.of_name (String.sub inv 5 (String.length inv - 5)), r.Repro.rp_input) with
    | None, _ -> broken ("unknown fuzz format in invariant " ^ inv)
    | _, None -> broken "fuzz reproducer carries no input"
    | Some fmt, Some input -> (
      match Fuzz.check fmt input with
      | None -> Passed
      | Some detail -> Reproduced detail))
  | inv -> broken ("unknown invariant " ^ inv)
