(** Self-contained failure reproducers.

    When the oracle or the fuzzer finds a defect, everything needed to
    rerun the check — the (minimized) circuit as netlist text, the
    edit script, the duality set, the fuzz input — is captured in one
    record and dumped as a line of NDJSON. [tka verify --replay FILE]
    reads the file back and re-executes every record, so a reproducer
    survives the session that found it (and CI uploads the file as an
    artifact). See [docs/verification.md] for the format. *)

type edit_spec =
  | Remove of int  (** coupling id *)
  | Scale of int * float  (** coupling id, factor in [0, 1] *)
  | Resize of int * string  (** gate id, cell name in the default library *)
  | Strengthen of int * float  (** gate id, in-place widening factor > 0 *)

type t = {
  rp_invariant : string;
      (** ["brute"], ["duality"], ["jobs"], ["incr"], or ["fuzz_<fmt>"] *)
  rp_seed : int;  (** master seed of the run that found it *)
  rp_trial : int;  (** trial index within that run *)
  rp_detail : string;  (** human-readable failure description *)
  rp_k : int option;
  rp_netlist : string option;  (** tka text format (minimized) *)
  rp_set : int list option;  (** directed coupling ids (duality) *)
  rp_edits : edit_spec list option;  (** minimized ECO script (incr) *)
  rp_input : string option;  (** minimized parser input (fuzz) *)
}

val spec_of_edit : Tka_incr.Edit.t -> edit_spec

val edit_of_spec : edit_spec -> Tka_incr.Edit.t option
(** [None] when a [Resize] names a cell absent from
    {!Tka_cell.Default_lib}. *)

val to_json : t -> Tka_obs.Jsonx.t
val of_json : Tka_obs.Jsonx.t -> (t, string) result

val save : string -> t list -> unit
(** Write one compact JSON object per line (NDJSON). *)

val load : string -> (t list, string) result
(** Read an NDJSON reproducer file; blank lines are skipped. The error
    carries the first offending line number. *)
