module J = Tka_obs.Jsonx
module Edit = Tka_incr.Edit
module Lib = Tka_cell.Default_lib

type edit_spec =
  | Remove of int
  | Scale of int * float
  | Resize of int * string
  | Strengthen of int * float

type t = {
  rp_invariant : string;
  rp_seed : int;
  rp_trial : int;
  rp_detail : string;
  rp_k : int option;
  rp_netlist : string option;
  rp_set : int list option;
  rp_edits : edit_spec list option;
  rp_input : string option;
}

let spec_of_edit = function
  | Edit.Remove_coupling c -> Remove c
  | Edit.Scale_coupling { coupling; factor } -> Scale (coupling, factor)
  | Edit.Resize_driver { gate; cell } -> Resize (gate, cell.Tka_cell.Cell.name)
  | Edit.Strengthen_driver { gate; factor } -> Strengthen (gate, factor)

let edit_of_spec = function
  | Remove c -> Some (Edit.Remove_coupling c)
  | Scale (coupling, factor) -> Some (Edit.Scale_coupling { coupling; factor })
  | Resize (gate, cellname) ->
    Option.map (fun cell -> Edit.Resize_driver { gate; cell }) (Lib.find cellname)
  | Strengthen (gate, factor) -> Some (Edit.Strengthen_driver { gate; factor })

let json_of_spec = function
  | Remove c -> J.Obj [ ("op", J.Str "remove"); ("coupling", J.Int c) ]
  | Scale (c, f) ->
    J.Obj [ ("op", J.Str "scale"); ("coupling", J.Int c); ("factor", J.Float f) ]
  | Resize (g, cell) ->
    J.Obj [ ("op", J.Str "resize"); ("gate", J.Int g); ("cell", J.Str cell) ]
  | Strengthen (g, f) ->
    J.Obj [ ("op", J.Str "strengthen"); ("gate", J.Int g); ("factor", J.Float f) ]

let spec_of_json j =
  let int key = match J.member key j with Some (J.Int i) -> Some i | _ -> None in
  let num key =
    match J.member key j with
    | Some (J.Float f) -> Some f
    | Some (J.Int i) -> Some (float_of_int i)
    | _ -> None
  in
  let str key = match J.member key j with Some (J.Str s) -> Some s | _ -> None in
  match (str "op", int "coupling", num "factor", int "gate", str "cell") with
  | Some "remove", Some c, _, _, _ -> Ok (Remove c)
  | Some "scale", Some c, Some f, _, _ -> Ok (Scale (c, f))
  | Some "resize", _, _, Some g, Some cell -> Ok (Resize (g, cell))
  | Some "strengthen", _, Some f, Some g, _ -> Ok (Strengthen (g, f))
  | _ -> Error "malformed edit spec"

let opt f = function None -> J.Null | Some x -> f x

let to_json r =
  J.Obj
    [
      ("invariant", J.Str r.rp_invariant);
      ("seed", J.Int r.rp_seed);
      ("trial", J.Int r.rp_trial);
      ("detail", J.Str r.rp_detail);
      ("k", opt (fun k -> J.Int k) r.rp_k);
      ("netlist", opt (fun s -> J.Str s) r.rp_netlist);
      ("set", opt (fun s -> J.List (List.map (fun d -> J.Int d) s)) r.rp_set);
      ("edits", opt (fun es -> J.List (List.map json_of_spec es)) r.rp_edits);
      ("input", opt (fun s -> J.Str s) r.rp_input);
    ]

let of_json j =
  let ( let* ) = Result.bind in
  let req_str key =
    match J.member key j with
    | Some (J.Str s) -> Ok s
    | _ -> Error (Printf.sprintf "reproducer: missing string field %S" key)
  in
  let req_int key =
    match J.member key j with
    | Some (J.Int i) -> Ok i
    | _ -> Error (Printf.sprintf "reproducer: missing int field %S" key)
  in
  let* rp_invariant = req_str "invariant" in
  let* rp_seed = req_int "seed" in
  let* rp_trial = req_int "trial" in
  let* rp_detail = req_str "detail" in
  let rp_k = match J.member "k" j with Some (J.Int k) -> Some k | _ -> None in
  let rp_netlist =
    match J.member "netlist" j with Some (J.Str s) -> Some s | _ -> None
  in
  let rp_input =
    match J.member "input" j with Some (J.Str s) -> Some s | _ -> None
  in
  let* rp_set =
    match J.member "set" j with
    | Some (J.List items) ->
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          match item with
          | J.Int d -> Ok (d :: acc)
          | _ -> Error "reproducer: non-integer directed id in \"set\"")
        (Ok []) items
      |> Result.map List.rev
      |> Result.map Option.some
    | _ -> Ok None
  in
  let* rp_edits =
    match J.member "edits" j with
    | Some (J.List items) ->
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          let* spec = spec_of_json item in
          Ok (spec :: acc))
        (Ok []) items
      |> Result.map List.rev
      |> Result.map Option.some
    | _ -> Ok None
  in
  Ok
    {
      rp_invariant;
      rp_seed;
      rp_trial;
      rp_detail;
      rp_k;
      rp_netlist;
      rp_set;
      rp_edits;
      rp_input;
    }

let save path rs =
  let oc = open_out path in
  List.iter (fun r -> output_string oc (J.to_string (to_json r) ^ "\n")) rs;
  close_out oc

let load path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  let ( let* ) = Result.bind in
  String.split_on_char '\n' src
  |> List.mapi (fun i l -> (i + 1, String.trim l))
  |> List.filter (fun (_, l) -> l <> "")
  |> List.fold_left
       (fun acc (lineno, line) ->
         let* acc = acc in
         let* j =
           try Ok (J.of_string line)
           with J.Parse_error m ->
             Error (Printf.sprintf "%s:%d: %s" path lineno m)
         in
         let* r =
           Result.map_error (Printf.sprintf "%s:%d: %s" path lineno) (of_json j)
         in
         Ok (r :: acc))
       (Ok [])
  |> Result.map List.rev
