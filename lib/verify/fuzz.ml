module Rng = Tka_util.Rng
module Nf = Tka_circuit.Netlist_format
module V = Tka_circuit.Verilog_lite
module Spef = Tka_circuit.Spef_lite
module Sdf = Tka_circuit.Sdf_lite
module Liberty = Tka_cell.Liberty_lite
module Lib = Tka_cell.Default_lib

type format = Netlist_fmt | Verilog | Spef | Sdf | Liberty

let all = [ Netlist_fmt; Verilog; Spef; Sdf; Liberty ]

let name = function
  | Netlist_fmt -> "netlist"
  | Verilog -> "verilog"
  | Spef -> "spef"
  | Sdf -> "sdf"
  | Liberty -> "liberty"

let of_name n = List.find_opt (fun f -> name f = n) all

let generate rng = function
  | Netlist_fmt -> Nf.print (Gen.small_circuit rng)
  | Verilog -> V.print (Gen.small_circuit rng)
  | Spef -> Spef.print (Gen.small_circuit rng)
  | Sdf ->
    Sdf.print ~delay_of:(fun _ -> 0.05) (Gen.small_circuit rng)
  | Liberty -> Lib.to_liberty ()

(* Delimiters the five grammars are sensitive to, plus hostile number
   literals: mutations biased towards them hit parser decision points
   far more often than uniform byte noise. *)
let hostile_chars = "()\"*.=,;{}/ \t\r\n"
let hostile_tokens = [| "nan"; "inf"; "-inf"; "1e999"; "-1e999"; "0x"; "" |]

let mutate_once rng src =
  let n = String.length src in
  if n = 0 then String.make 1 hostile_chars.[Rng.int rng (String.length hostile_chars)]
  else
    match Rng.int rng 7 with
    | 0 ->
      (* flip a byte *)
      let b = Bytes.of_string src in
      let i = Rng.int rng n in
      Bytes.set b i
        (if Rng.bool rng then
           hostile_chars.[Rng.int rng (String.length hostile_chars)]
         else Char.chr (Rng.int rng 256));
      Bytes.to_string b
    | 1 ->
      (* insert a byte *)
      let i = Rng.int rng (n + 1) in
      let c = hostile_chars.[Rng.int rng (String.length hostile_chars)] in
      String.sub src 0 i ^ String.make 1 c ^ String.sub src i (n - i)
    | 2 ->
      (* delete a span *)
      let i = Rng.int rng n in
      let len = min (n - i) (1 + Rng.int rng 8) in
      String.sub src 0 i ^ String.sub src (i + len) (n - i - len)
    | 3 ->
      (* truncate *)
      String.sub src 0 (Rng.int rng n)
    | 4 -> (
      (* delete or duplicate a line *)
      match String.split_on_char '\n' src with
      | [] | [ _ ] -> String.sub src 0 (Rng.int rng n)
      | lines ->
        let i = Rng.int rng (List.length lines) in
        let lines =
          if Rng.bool rng then List.filteri (fun j _ -> j <> i) lines
          else
            List.concat_map
              (fun (j, l) -> if j = i then [ l; l ] else [ l ])
              (List.mapi (fun j l -> (j, l)) lines)
        in
        String.concat "\n" lines)
    | 5 -> (
      (* swap two lines *)
      match String.split_on_char '\n' src with
      | [] | [ _ ] -> src
      | lines ->
        let arr = Array.of_list lines in
        let i = Rng.int rng (Array.length arr)
        and j = Rng.int rng (Array.length arr) in
        let t = arr.(i) in
        arr.(i) <- arr.(j);
        arr.(j) <- t;
        String.concat "\n" (Array.to_list arr))
    | _ ->
      (* replace a whitespace-delimited token with a hostile literal *)
      let i = Rng.int rng n in
      let is_sep c = c = ' ' || c = '\t' || c = '\n' in
      let s = ref i in
      while !s > 0 && not (is_sep src.[!s - 1]) do decr s done;
      let e = ref i in
      while !e < n && not (is_sep src.[!e]) do incr e done;
      String.sub src 0 !s ^ Rng.pick rng hostile_tokens
      ^ String.sub src !e (n - !e)

let mutate rng src =
  let rounds = Rng.int_in rng 1 4 in
  let out = ref src in
  for _ = 1 to rounds do
    out := mutate_once rng !out
  done;
  !out

let run_parser fmt src =
  let lookup = Lib.find in
  match fmt with
  | Netlist_fmt -> (
    try
      ignore (Nf.parse ~lookup src);
      `Parsed
    with Nf.Parse_error { line; message } -> `Rejected (line, message))
  | Verilog -> (
    try
      ignore (V.parse ~lookup src);
      `Parsed
    with V.Parse_error { line; message } -> `Rejected (line, message))
  | Spef -> (
    try
      ignore (Spef.parse src);
      `Parsed
    with Spef.Parse_error { line; message } -> `Rejected (line, message))
  | Sdf -> (
    try
      ignore (Sdf.parse src);
      `Parsed
    with Sdf.Parse_error { line; message } -> `Rejected (line, message))
  | Liberty -> (
    try
      ignore (Liberty.parse src);
      `Parsed
    with Liberty.Parse_error { line; message } -> `Rejected (line, message))

let count_lines src =
  1 + String.fold_left (fun n c -> if c = '\n' then n + 1 else n) 0 src

let check fmt src =
  match run_parser fmt src with
  | `Parsed -> None
  | `Rejected (line, message) ->
    let max_line = count_lines src + 1 in
    if line >= 0 && line <= max_line then None
    else
      Some
        (Printf.sprintf
           "%s: Parse_error line %d outside the input's [0, %d]: %s" (name fmt)
           line max_line message)
  | exception e ->
    Some
      (Printf.sprintf "%s parser escaped the structured error contract: %s"
         (name fmt) (Printexc.to_string e))
