(** Delta-debugging test-case minimization.

    Zeller–Hildebrandt ddmin specialised to lists: given a list whose
    elements jointly trigger a failure, find a 1-minimal sublist that
    still triggers it. Used by {!Driver} to shrink a failing circuit's
    coupling list, a failing edit script, a failing duality set, and
    the line list of a failing fuzz input before the reproducer is
    dumped. *)

val ddmin : ('a list -> bool) -> 'a list -> 'a list
(** [ddmin test xs] returns a sublist [ys] of [xs] (elements in their
    original order) with [test ys = true], such that removing any
    single element of [ys] makes [test] false (1-minimality). When
    [test xs] is false the input is returned unchanged. [test] must be
    total — wrap it so exceptions map to [false]. *)

val lines : (string -> bool) -> string -> string
(** [lines test src] is {!ddmin} over the newline-separated lines of
    [src], rejoined with ['\n']: the smallest subset of lines that
    still makes [test] true. Falls back to [src] when [test src] is
    false. *)
