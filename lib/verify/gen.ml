module B = Tka_layout.Benchmarks
module N = Tka_circuit.Netlist
module Rng = Tka_util.Rng
module Edit = Tka_incr.Edit
module Lib = Tka_cell.Default_lib

let circuit rng ~tag ~gates ~inputs ~depth ~couplings =
  let seed = Rng.int rng 1_000_000 in
  B.generate
    {
      B.sp_name = Printf.sprintf "%s%d" tag seed;
      sp_gates = gates;
      sp_inputs = inputs;
      sp_depth = depth;
      sp_couplings = couplings;
      sp_seed = seed;
    }

let small_circuit rng =
  circuit rng ~tag:"vs"
    ~gates:(Rng.int_in rng 6 10)
    ~inputs:(Rng.int_in rng 2 3)
    ~depth:(Rng.int_in rng 2 3)
    ~couplings:(Rng.int_in rng 3 6)

let medium_circuit rng =
  circuit rng ~tag:"vm"
    ~gates:(Rng.int_in rng 12 20)
    ~inputs:3
    ~depth:(Rng.int_in rng 3 5)
    ~couplings:(Rng.int_in rng 12 22)

let random_edit rng nl =
  let nc = N.num_couplings nl in
  let resize () =
    let g = Rng.int rng (N.num_gates nl) in
    let arity = List.length (N.gate nl g).N.fanin in
    match Lib.combinational_of_arity arity with
    | [] -> None
    | cells -> Some (Edit.Resize_driver { gate = g; cell = Rng.pick_list rng cells })
  in
  let strengthen () =
    let g = Rng.int rng (N.num_gates nl) in
    (* factor in [0.5, 2.5): exercises both widening and shrinking *)
    Some (Edit.Strengthen_driver { gate = g; factor = 0.5 +. Rng.float rng 2.0 })
  in
  match if nc = 0 then 2 + Rng.int rng 2 else Rng.int rng 4 with
  | 0 -> Some (Edit.Remove_coupling (Rng.int rng nc))
  | 1 ->
    Some
      (Edit.Scale_coupling
         { coupling = Rng.int rng nc; factor = Rng.float rng 1.0 })
  | 2 -> resize ()
  | _ -> strengthen ()

let edits rng nl =
  if N.num_gates nl = 0 then []
  else List.filter_map (fun () -> random_edit rng nl) (List.init (Rng.int_in rng 1 4) (fun _ -> ()))
