(** The differential verification loop behind [tka verify].

    Rotates through the trial families — brute-force differential
    (k ≤ 3 on small circuits), duality, jobs determinism, incremental
    identity, and parser fuzzing — deterministically from one master
    seed, until the trial count or the wall-clock budget is exhausted.
    Failures are minimized with {!Minimize.ddmin} (circuit couplings,
    duality sets, edit scripts, fuzz-input lines) and returned as
    {!Repro.t} reproducers ready for {!Repro.save}. *)

type summary = {
  vs_trials : int;  (** trials executed (≤ requested when the budget expires) *)
  vs_oracle : int;  (** oracle-family trials among them *)
  vs_fuzz : int;  (** fuzz-family trials among them *)
  vs_skipped : int;  (** trials skipped (budget expiry, degenerate instance) *)
  vs_failures : Repro.t list;  (** minimized reproducers, discovery order *)
  vs_elapsed_s : float;
}

val run :
  ?seed:int ->
  ?trials:int ->
  ?budget_s:float ->
  ?minimize:bool ->
  ?progress:(int -> int -> unit) ->
  unit ->
  summary
(** [run ()] executes the loop. Defaults: seed 1, 500 trials, no time
    budget, minimization on. [progress done_ total] is called after
    every trial. Equal seeds and trial counts reproduce the same trial
    sequence bit for bit. *)

type replay_outcome =
  | Reproduced of string  (** the defect still fires; payload is the fresh detail *)
  | Passed  (** the recorded invariant now holds *)
  | Skipped of string  (** could not re-run (e.g. brute-force budget) *)

val replay : Repro.t -> replay_outcome
(** Re-execute one reproducer. Malformed records (unknown invariant,
    missing payload, unknown cell name) report as [Reproduced] with an
    explanatory detail — a reproducer that cannot be replayed must not
    look fixed. *)
