(** Brute-force top-k baselines (Section 2 / Table 1 of the paper).

    Enumerates all [C(r, k)] subsets of the circuit's directed
    aggressor–victim couplings ([r = 2 * #coupling caps]) and
    runs a full iterative noise analysis per subset — the reference the
    proposed algorithm is validated against. Complexity is binomial, so
    a wall-clock budget aborts the enumeration exactly as the paper's
    1800-second cutoff did (they could not complete [k > 3] on the
    smallest benchmark).

    When the shared {!Tka_parallel.Pool} has more than one domain the
    enumeration is partitioned into lexicographic rank ranges (via the
    combinatorial number system) scanned concurrently and merged by an
    ordered reduction, so a completed run returns exactly the subset the
    sequential scan would — the lexicographically first one achieving
    the optimal delay — at any jobs count. Runtimes are monotonic
    wall-clock seconds ({!Tka_obs.Clock}). *)

type outcome = {
  bf_set : Coupling_set.t option;  (** best subset found, [None] if none finished *)
  bf_delay : float;  (** circuit delay with that subset applied *)
  bf_evaluated : int;  (** subsets fully evaluated *)
  bf_total : int;  (** C(r, k) over directed couplings *)
  bf_completed : bool;  (** false when the time budget expired first *)
  bf_runtime : float;  (** wall-clock seconds spent *)
}

val addition :
  ?budget_s:float -> k:int -> Tka_circuit.Topo.t -> outcome
(** Best k-subset to {e activate} (max circuit delay over subsets).
    Default budget 60 s. *)

val elimination :
  ?budget_s:float -> k:int -> Tka_circuit.Topo.t -> outcome
(** Best k-subset to {e remove} (min circuit delay). *)

val binomial : int -> int -> int
(** [binomial n k] with saturation at [max_int] instead of overflow. *)
