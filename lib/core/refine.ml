let default_budget = 128

let subsets ?(budget = default_budget) ~universe ~k ~members () =
  if k < 1 then []
  else begin
    let seen = Hashtbl.create 16 in
    let rev_pool = ref [] in
    let push d =
      if d >= 0 && d < universe && not (Hashtbl.mem seen d) then begin
        Hashtbl.replace seen d ();
        rev_pool := d :: !rev_pool
      end
    in
    (* directly retained members first: a slot spent on a partner
       direction must never evict a coupling the engine itself kept *)
    List.iter push members;
    (* then the opposite directions of the same physical couplings:
       mutual aggression is exactly the interaction static ranking
       misses *)
    List.iter (fun d -> push (d lxor 1)) members;
    let pool = Array.of_list (List.rev !rev_pool) in
    let n = ref (Array.length pool) in
    while !n > k && Brute_force.binomial !n k > budget do
      decr n
    done;
    let n = !n in
    if n < k then []
    else begin
      let out = ref [] in
      let rec go idx chosen set =
        if chosen = k then out := set :: !out
        else if n - idx < k - chosen then ()
        else begin
          go (idx + 1) (chosen + 1) (Coupling_set.add pool.(idx) set);
          go (idx + 1) chosen set
        end
      in
      go 0 0 Coupling_set.empty;
      List.rev !out
    end
  end
