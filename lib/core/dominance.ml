module Interval = Tka_util.Interval
module Transition = Tka_waveform.Transition
module Envelope = Tka_waveform.Envelope

let interval ~victim =
  let t50 = victim.Transition.t50 in
  let slew = victim.Transition.slew in
  let reach = (Tka_noise.Victim_noise.saturation_slews +. 0.75) *. slew in
  Interval.make (t50 -. (0.5 *. slew)) (t50 +. reach)

let dominates ~interval a b = Envelope.encapsulates ~interval a b

let mutually_undominated ~interval a b =
  (not (dominates ~interval a b)) && not (dominates ~interval b a)
