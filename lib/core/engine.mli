(** The implicit-enumeration engine (Fig. 9 of the paper).

    Shared machinery behind {!Addition} and {!Elimination}. Victim nets
    are visited in topological order; for each victim, irredundant lists
    [I-list_1 .. I-list_k] of candidate coupling sets are built by:

    + extending every entry of [I-list_{i-1}] with one more
      non-dominated primary aggressor;
    + adding pseudo input aggressor sets of cardinality [i], propagated
      from the driver's input nets (each input contributes according to
      how much its delay noise actually moves this net's latest
      arrival);
    + adding higher-order aggressors of innate cardinality [i]: a
      primary aggressor whose switching window is widened (addition) or
      narrowed (elimination) by the best [(i-1)]-set attacking the
      aggressor net itself;
    + pruning by envelope dominance over the victim's dominance
      interval.

    Each net retains only a per-cardinality summary (best set and its
    objective); the full lists live only while their victim is being
    processed, so memory stays linear in circuit size.

    The final per-cardinality answers are read from the irredundant
    lists of the primary outputs ("the sink node"), selecting, for each
    [i], the output and entry with the worst resulting arrival. *)

type mode = Addition | Elimination

type config = {
  k : int;  (** maximum cardinality to enumerate *)
  capacity : int;  (** irredundant-list capacity per cardinality *)
  use_pseudo : bool;  (** enable pseudo input aggressors (ablation) *)
  use_higher_order : bool;  (** enable higher-order aggressors (ablation) *)
  filter : Tka_filter.Mode.t;
      (** pre-engine aggressor candidate pruning: [Off] is the
          historical, bit-identical behaviour; [Window] drops
          provably non-overlapping aggressors (de-rating partial
          overlaps); [Logic] adds implication-based drops. The filter
          runs once per victim, before any envelope is built — see
          [docs/filtering.md] *)
}

val default_config : k:int -> config
(** Capacity {!Ilist.default_capacity}, both features on, filter
    {!Tka_filter.Mode.Off}. *)

type choice = {
  ch_set : Coupling_set.t;
  ch_objective : float;
      (** delay noise added (addition) or removed (elimination), at the
          chosen sink, in ns *)
  ch_sink : Tka_circuit.Netlist.net_id;  (** primary output it was read from *)
}

type result = {
  res_mode : mode;
  res_config : config;
  res_per_k : choice option array;  (** index 1..k; [None] if no candidates *)
  res_top : choice list array;
      (** per cardinality, the best few sink candidates by first-order
          score (best first) — the paper reads the sink's whole
          irredundant list; callers re-rank these by exact analysis *)
  res_stats : Ilist.stats;
  res_noiseless_delay : float;
  res_noisy_delay : float;  (** all-aggressor fixpoint delay *)
  res_runtime : float;
      (** monotonic wall-clock seconds for the enumeration
          ({!Tka_obs.Clock}) *)
}

(** {1 Victim-level result caching}

    Hook used by the incremental re-analysis layer ([Tka_incr]): the
    per-victim unit of work — the summary a net publishes, the sink
    irredundant lists of primary outputs, the pruning stats, and the
    direct-only aggressor summaries the victim consulted — can be
    injected from a cache instead of being recomputed. The engine
    stays agnostic about cache keys; the provider decides when a
    stored record is still valid (content-addressed hashing in
    [Tka_incr.Fingerprint]).

    A cached record must have been produced by a run with the same
    config and mode on a netlist where every input of the victim's
    enumeration (fanin-cone summaries, windows, couplings, parasitics)
    is unchanged; then installing it is observationally identical to
    recomputation — including [res_stats], because the consulted
    direct summaries (and their stats) are replayed into the shared
    memo table. Envelopes are not stored: nothing downstream of a
    published summary reads them. *)

type cardinality_summary = (Coupling_set.t * float) list array
(** Per cardinality [0..k], the retained [(set, objective)] pairs,
    best first — the shape of a published net summary. *)

type cached_victim = {
  cv_summary : cardinality_summary;  (** the summary the net published *)
  cv_out : cardinality_summary option;
      (** sink irredundant lists, present iff the net is a primary
          output (envelope-free: sink selection reads only sets and
          objectives) *)
  cv_stats : Ilist.stats;  (** the victim's own pruning stats *)
  cv_direct : (Tka_circuit.Netlist.net_id * cardinality_summary * Ilist.stats) list;
      (** direct-only aggressor summaries this victim consulted, in
          first-consult order (deduplicated) *)
}

type victim_cache = {
  vc_lookup :
    summary_of:(Tka_circuit.Netlist.net_id -> cardinality_summary) ->
    Tka_circuit.Netlist.net_id ->
    cached_victim option;
  vc_store : Tka_circuit.Netlist.net_id -> cached_victim -> unit;
}
(** [vc_lookup] receives an accessor into the sweep's live summary
    array so the provider can key a victim on the {e values} its
    enumeration will consult. The sweep is level-synchronous, so when
    a victim at level [l] is looked up, every net at a strictly lower
    level — its driver fanins and the coupling partners whose
    published summaries it reads — is final; the accessor must only
    be applied to such nets, and only during the lookup. Both
    functions may be called concurrently from pool workers; the
    provider must be domain-safe. [vc_store] is called once per
    processed (non-cached) victim, after its lookup missed. *)

val compute :
  ?config:config ->
  ?fixpoint:Tka_noise.Iterate.t ->
  ?victim_cache:victim_cache ->
  mode:mode ->
  Tka_circuit.Topo.t ->
  result
(** Run the enumeration. [config] defaults to [default_config ~k:10].
    [fixpoint] supplies a precomputed all-aggressor iterative analysis
    of the same topology (it is recomputed otherwise); callers sweeping
    k share it so the measured runtime is the enumeration itself.

    When the shared {!Tka_parallel.Pool} has more than one domain the
    topological sweep runs level-synchronously in parallel; results —
    sets, objectives and [res_stats] — are bit-identical at any jobs
    count (see [docs/parallelism.md]). *)

val estimated_delay : result -> int -> float
(** [estimated_delay r i]: the circuit delay the engine predicts for
    the top-[i] set — noiseless delay + objective for addition, noisy
    delay − objective for elimination. Exact re-evaluation is provided
    by {!Addition.evaluate} / {!Elimination.evaluate}. *)
