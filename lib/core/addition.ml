module Iterate = Tka_noise.Iterate
module EB = Tka_noise.Envelope_builder

type t = {
  result : Engine.result;
  topo : Tka_circuit.Topo.t;
  memo : EB.memo;
      (* shared by every exact re-evaluation below: the recombination
         pool re-runs the iterative analysis over near-identical
         active sets, so most aggressor windows — and hence their
         envelopes — recur verbatim. Purity keeps scores bitwise
         identical to unmemoised evaluation. Confined to the
         (sequential) re-ranking loops — [t] must not be re-ranked
         from several threads at once. *)
}

let compute ?(capacity = Ilist.default_capacity) ?(use_pseudo = true)
    ?(use_higher_order = true) ?(filter = Tka_filter.Mode.Off) ?fixpoint ~k
    topo =
  let config = { Engine.k; capacity; use_pseudo; use_higher_order; filter } in
  {
    result = Engine.compute ~config ?fixpoint ~mode:Engine.Addition topo;
    topo;
    memo = EB.create_memo ();
  }

let candidates t i =
  if i < 1 || i >= Array.length t.result.Engine.res_top then []
  else List.map (fun c -> c.Engine.ch_set) t.result.Engine.res_top.(i)

let estimated_delay t i = Engine.estimated_delay t.result i

let evaluate_set topo s =
  Iterate.circuit_delay (Iterate.run ~active:(Coupling_set.contains_fn s) topo)

(* internal scoring path: [evaluate_set] through the shared memo *)
let evaluate_set_memo t s =
  Iterate.circuit_delay
    (Iterate.run ~active:(Coupling_set.contains_fn s) ~env_memo:t.memo t.topo)

(* Recombination pool: every directed coupling named by a retained
   candidate. Cardinality 1 first — the static ranking is exact for
   singles (k = 1 matches brute force), so individually strong members
   are the likeliest optimum members and must survive truncation. *)
let ranked_members t i =
  List.concat_map
    (fun j -> List.concat_map Coupling_set.to_list (candidates t (j + 1)))
    (List.init i Fun.id)

(* The engine's objectives are first-order; the paper evaluates the
   whole sink I-list. Rank the retained candidates by the exact
   iterative analysis — together with a bounded recombination of their
   members (see {!Refine}) — and keep the strongest. *)
let best_choice t i =
  let universe =
    2 * Tka_circuit.Netlist.num_couplings (Tka_circuit.Topo.netlist t.topo)
  in
  let cands = candidates t i in
  let recombined =
    if cands = [] then []
    else Refine.subsets ~universe ~k:i ~members:(ranked_members t i) ()
  in
  let seen = Hashtbl.create 16 in
  let distinct =
    List.filter
      (fun s ->
        let key = Coupling_set.to_list s in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.replace seen key ();
          true
        end)
      (cands @ recombined)
  in
  match distinct with
  | [] -> None
  | first :: rest ->
    let score s = (s, evaluate_set_memo t s) in
    Some
      (List.fold_left
         (fun (bs, bd) c ->
           let s, d = score c in
           if d > bd then (s, d) else (bs, bd))
         (score first) rest)

let set t i = Option.map fst (best_choice t i)

let evaluate t i =
  match best_choice t i with
  | None -> t.result.Engine.res_noiseless_delay
  | Some (_, d) -> d

(* Exact, monotone top-k curve: each cardinality's set is re-evaluated
   with the full iterative analysis; when the engine's pick evaluates
   worse than the previous cardinality's, the previous set padded with
   an extra coupling is used instead (sound: supersets are always at
   least as strong). *)
let evaluate_curve t ~ks =
  let nl = Tka_circuit.Topo.netlist t.topo in
  let universe = 2 * Tka_circuit.Netlist.num_couplings nl in
  let ks = List.sort_uniq Int.compare ks in
  let best = ref None in
  List.filter_map
    (fun k ->
      let cands =
        candidates t k
        @ (match !best with
          | Some (s, _) -> Option.to_list (Coupling_set.pad ~universe ~target:k s)
          | None -> [])
      in
      match cands with
      | [] -> None
      | first :: rest ->
        let score s = (s, evaluate_set_memo t s) in
        let s, d =
          List.fold_left
            (fun (bs, bd) c ->
              let s, d = score c in
              if d > bd then (s, d) else (bs, bd))
            (score first) rest
        in
        best := Some (s, d);
        Some (k, s, d))
    ks

let noiseless_delay t = t.result.Engine.res_noiseless_delay
let all_aggressor_delay t = t.result.Engine.res_noisy_delay
let runtime t = t.result.Engine.res_runtime
