module N = Tka_circuit.Netlist
module Topo = Tka_circuit.Topo
module Rng = Tka_util.Rng

type report = {
  sr_k : int;
  sr_trials : int;
  sr_jaccard_mean : float;
  sr_jaccard_min : float;
  sr_always_chosen : Coupling_set.t;
  sr_delay_spread : float * float;
}

let jaccard a b =
  let inter = Coupling_set.cardinality (Coupling_set.inter a b) in
  let union = Coupling_set.cardinality (Coupling_set.union a b) in
  if union = 0 then 1.0 else float_of_int inter /. float_of_int union

let perturb ~rng ~noise_pct nl =
  Tka_circuit.Transform.map
    ~coupling_cap_of:(fun c ->
      c.N.coupling_cap *. (1. +. Rng.float_in rng (-.noise_pct) noise_pct))
    nl

let run ~trials ~noise_pct ~rng ~k nl ~solve =
  if trials < 1 then invalid_arg "Sensitivity: trials must be >= 1";
  if noise_pct < 0. || noise_pct >= 1. then
    invalid_arg "Sensitivity: noise_pct outside [0, 1)";
  let nominal_set, _ = solve nl in
  let results =
    List.init trials (fun _ ->
        let perturbed = perturb ~rng ~noise_pct nl in
        solve perturbed)
  in
  let jaccards = List.map (fun (s, _) -> jaccard nominal_set s) results in
  let delays = List.map snd results in
  let always =
    List.fold_left
      (fun acc (s, _) -> Coupling_set.inter acc s)
      nominal_set results
  in
  {
    sr_k = k;
    sr_trials = trials;
    sr_jaccard_mean = Tka_util.Stats.mean jaccards;
    sr_jaccard_min = fst (Tka_util.Stats.min_max jaccards);
    sr_always_chosen = always;
    sr_delay_spread = Tka_util.Stats.min_max delays;
  }

let addition ?(trials = 10) ?(noise_pct = 0.15) ~rng ~k nl =
  let solve nl =
    let topo = Topo.create nl in
    let t = Addition.compute ~k topo in
    match Addition.best_choice t k with
    | Some (s, d) -> (s, d)
    | None -> (Coupling_set.empty, Addition.noiseless_delay t)
  in
  run ~trials ~noise_pct ~rng ~k nl ~solve

let elimination ?(trials = 10) ?(noise_pct = 0.15) ~rng ~k nl =
  let solve nl =
    let topo = Topo.create nl in
    let t = Elimination.compute ~k topo in
    match Elimination.best_choice t k with
    | Some (s, d) -> (s, d)
    | None -> (Coupling_set.empty, Elimination.all_aggressor_delay t)
  in
  run ~trials ~noise_pct ~rng ~k nl ~solve
