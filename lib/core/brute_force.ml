module N = Tka_circuit.Netlist
module Iterate = Tka_noise.Iterate
module Pool = Tka_parallel.Pool
module Clock = Tka_obs.Clock

type outcome = {
  bf_set : Coupling_set.t option;
  bf_delay : float;
  bf_evaluated : int;
  bf_total : int;
  bf_completed : bool;
  bf_runtime : float;
}

let binomial n k =
  if k < 0 || k > n then 0
  else begin
    let k = min k (n - k) in
    let rec go acc i =
      if i > k then acc
      else
        let acc' = acc * (n - k + i) / i in
        if acc' < acc then max_int (* overflow *) else go acc' (i + 1)
    in
    go 1 1
  end

(* Combinatorial number system: the k-subset of [0..n-1] at position
   [rank] of the lexicographic order. Element i is the smallest value
   above its predecessor whose block of completions — C(n-1-v, k-1-i)
   subsets — still contains the remaining rank. Used to hand each
   domain a self-contained rank range. *)
let subset_of_rank ~n ~k rank =
  let idx = Array.make k 0 in
  let r = ref rank in
  let c = ref 0 in
  for i = 0 to k - 1 do
    let v = ref !c in
    let rec skip () =
      let block = binomial (n - 1 - !v) (k - 1 - i) in
      if block <= !r then begin
        r := !r - block;
        incr v;
        skip ()
      end
    in
    skip ();
    idx.(i) <- !v;
    c := !v + 1
  done;
  idx

(* advance [idx] to the next k-subset in lexicographic order *)
let advance ~n ~k idx =
  let rec find i =
    if i < 0 then false
    else if idx.(i) < n - k + i then begin
      idx.(i) <- idx.(i) + 1;
      for j = i + 1 to k - 1 do
        idx.(j) <- idx.(j - 1) + 1
      done;
      true
    end
    else find (i - 1)
  in
  find (k - 1)

(* Enumerate [count] k-subsets of [0..n-1] in lexicographic order
   starting at [rank], calling [visit] until it returns false (budget
   expired) or the range is exhausted. *)
let iter_subsets_from ~n ~k ~rank ~count visit =
  if k <= n && k > 0 && count > 0 then begin
    let idx = subset_of_rank ~n ~k rank in
    let remaining = ref count in
    let continue_ = ref true in
    let running = ref true in
    while !running && !continue_ && !remaining > 0 do
      continue_ := visit (Array.to_list idx);
      decr remaining;
      if !continue_ && !remaining > 0 then running := advance ~n ~k idx
    done
  end

(* Best-so-far fold shared by both paths: a candidate replaces the
   incumbent only when strictly better, so the winner is the
   lexicographically first subset achieving the optimal delay. *)
let consider ~better best set d =
  match !best with
  | Some (_, bd) when not (better d bd) -> ()
  | Some _ | None -> best := Some (set, d)

(* One domain's share: scan ranks [rank, rank + count), tracking the
   local best / evaluation count / completion under the shared wall
   clock deadline. Pure apart from [delay_of] (itself pure). *)
let scan_range ~t0 ~budget_s ~n ~k ~better ~delay_of (rank, count) =
  let best = ref None in
  let evaluated = ref 0 in
  let completed = ref true in
  iter_subsets_from ~n ~k ~rank ~count (fun ids ->
      if Clock.now_s () -. t0 > budget_s then begin
        completed := false;
        false
      end
      else begin
        let set = Coupling_set.of_list ids in
        let d = delay_of set in
        incr evaluated;
        consider ~better best set d;
        true
      end);
  (!best, !evaluated, !completed)

let run ~budget_s ~k ~better ~delay_of topo =
  let nl = Tka_circuit.Topo.netlist topo in
  let n = 2 * N.num_couplings nl in
  let total = binomial n k in
  let t0 = Clock.now_s () in
  let pool = Pool.get_default () in
  let jobs = Pool.size pool in
  (* The rank-range split needs an exact [total] (no overflow
     saturation) and only pays off with work to share. *)
  let use_parallel = jobs > 1 && total < max_int && total >= 2 * jobs in
  let best, evaluated, completed =
    if not use_parallel then
      scan_range ~t0 ~budget_s ~n ~k ~better ~delay_of (0, total)
    else begin
      let per = max 1 (total / (jobs * 4)) in
      let chunks =
        let rec build rank acc =
          if rank >= total then List.rev acc
          else build (rank + per) ((rank, min per (total - rank)) :: acc)
        in
        Array.of_list (build 0 [])
      in
      let results =
        Pool.map ~chunk:1 pool
          (scan_range ~t0 ~budget_s ~n ~k ~better ~delay_of)
          chunks
      in
      (* Ordered reduction in rank order: merging local bests with the
         same strictly-better rule reproduces the sequential scan's
         winner bit for bit when the enumeration completes. *)
      Array.fold_left
        (fun (b, ev, comp) (cb, cev, ccomp) ->
          let b =
            match (b, cb) with
            | None, x | x, None -> x
            | Some (_, bd), Some (cs, cd) ->
              if better cd bd then Some (cs, cd) else b
          in
          (b, ev + cev, comp && ccomp))
        (None, 0, true) results
    end
  in
  let bf_set, bf_delay =
    match best with
    | Some (s, d) -> (Some s, d)
    | None -> (None, Float.nan)
  in
  {
    bf_set;
    bf_delay;
    bf_evaluated = evaluated;
    bf_total = total;
    bf_completed = completed;
    bf_runtime = Clock.now_s () -. t0;
  }

let addition ?(budget_s = 60.) ~k topo =
  let delay_of set =
    Iterate.circuit_delay (Iterate.run ~active:(Coupling_set.contains_fn set) topo)
  in
  run ~budget_s ~k ~better:(fun d bd -> d > bd) ~delay_of topo

let elimination ?(budget_s = 60.) ~k topo =
  let delay_of set =
    Iterate.circuit_delay (Iterate.run ~active:(Coupling_set.excludes_fn set) topo)
  in
  run ~budget_s ~k ~better:(fun d bd -> d < bd) ~delay_of topo
