module N = Tka_circuit.Netlist
module Iterate = Tka_noise.Iterate

type outcome = {
  bf_set : Coupling_set.t option;
  bf_delay : float;
  bf_evaluated : int;
  bf_total : int;
  bf_completed : bool;
  bf_runtime : float;
}

let binomial n k =
  if k < 0 || k > n then 0
  else begin
    let k = min k (n - k) in
    let rec go acc i =
      if i > k then acc
      else
        let acc' = acc * (n - k + i) / i in
        if acc' < acc then max_int (* overflow *) else go acc' (i + 1)
    in
    go 1 1
  end

(* Enumerate k-subsets of [0..n-1] in lexicographic order, calling
   [visit] until it returns false (budget expired). *)
let iter_subsets ~n ~k visit =
  if k <= n && k > 0 then begin
    let idx = Array.init k (fun i -> i) in
    let continue_ = ref true in
    let advance () =
      (* find rightmost index that can move *)
      let rec find i =
        if i < 0 then false
        else if idx.(i) < n - k + i then begin
          idx.(i) <- idx.(i) + 1;
          for j = i + 1 to k - 1 do
            idx.(j) <- idx.(j - 1) + 1
          done;
          true
        end
        else find (i - 1)
      in
      find (k - 1)
    in
    let running = ref true in
    while !running && !continue_ do
      continue_ := visit (Array.to_list idx);
      if !continue_ then running := advance ()
    done
  end

let clock = Unix.gettimeofday

let run ~budget_s ~k ~better ~delay_of topo =
  let nl = Tka_circuit.Topo.netlist topo in
  let n = 2 * N.num_couplings nl in
  let total = binomial n k in
  let t0 = clock () in
  let best = ref None in
  let evaluated = ref 0 in
  let completed = ref true in
  iter_subsets ~n ~k (fun ids ->
      if clock () -. t0 > budget_s then begin
        completed := false;
        false
      end
      else begin
        let set = Coupling_set.of_list ids in
        let d = delay_of set in
        incr evaluated;
        (match !best with
        | Some (_, bd) when not (better d bd) -> ()
        | Some _ | None -> best := Some (set, d));
        true
      end);
  let bf_set, bf_delay =
    match !best with
    | Some (s, d) -> (Some s, d)
    | None -> (None, Float.nan)
  in
  {
    bf_set;
    bf_delay;
    bf_evaluated = !evaluated;
    bf_total = total;
    bf_completed = !completed;
    bf_runtime = clock () -. t0;
  }

let addition ?(budget_s = 60.) ~k topo =
  let delay_of set =
    Iterate.circuit_delay (Iterate.run ~active:(Coupling_set.contains_fn set) topo)
  in
  run ~budget_s ~k ~better:(fun d bd -> d > bd) ~delay_of topo

let elimination ?(budget_s = 60.) ~k topo =
  let delay_of set =
    Iterate.circuit_delay (Iterate.run ~active:(Coupling_set.excludes_fn set) topo)
  in
  run ~budget_s ~k ~better:(fun d bd -> d < bd) ~delay_of topo
