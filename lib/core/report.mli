(** Human-readable reports for top-k analyses. *)

val addition :
  Tka_circuit.Netlist.t -> Addition.t -> ks:int list -> string
(** Multi-line report: per requested cardinality, the chosen set (by
    net names), the engine estimate and the exact evaluated delay. *)

val elimination :
  Tka_circuit.Netlist.t -> Elimination.t -> ks:int list -> string

val set_lines : Tka_circuit.Netlist.t -> Coupling_set.t -> string list
(** One "aggressor -> victim (cap pF)" line per directed coupling. *)

val csv_addition : Addition.t -> ks:int list -> string
(** "k,estimated_delay,exact_delay" rows with a header, for plotting. *)

val csv_elimination : Elimination.t -> ks:int list -> string
