module N = Tka_circuit.Netlist

let set_lines nl s =
  let module CN = Tka_noise.Coupled_noise in
  List.map
    (fun id ->
      let d = CN.of_directed_id nl id in
      let c = N.coupling nl d.CN.dc_coupling in
      Printf.sprintf "  %s -> %s (%.4g pF)"
        (N.net nl d.CN.dc_aggressor).N.net_name
        (N.net nl d.CN.dc_victim).N.net_name c.N.coupling_cap)
    (Coupling_set.to_list s)

let generic ~label ~noiseless ~noisy ~set ~estimated ~evaluate nl ks =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%s analysis of %s: noiseless %.4f ns, all-aggressor %.4f ns\n"
       label (N.name nl) noiseless noisy);
  List.iter
    (fun k ->
      match set k with
      | None -> Buffer.add_string buf (Printf.sprintf "top-%d: (no candidate)\n" k)
      | Some s ->
        Buffer.add_string buf
          (Printf.sprintf "top-%d: estimated %.4f ns, evaluated %.4f ns\n" k
             (estimated k) (evaluate k));
        List.iter
          (fun l -> Buffer.add_string buf (l ^ "\n"))
          (set_lines nl s))
    ks;
  Buffer.contents buf

let addition nl (t : Addition.t) ~ks =
  generic ~label:"Top-k addition" ~noiseless:(Addition.noiseless_delay t)
    ~noisy:(Addition.all_aggressor_delay t) ~set:(Addition.set t)
    ~estimated:(Addition.estimated_delay t) ~evaluate:(Addition.evaluate t) nl ks

let elimination nl (t : Elimination.t) ~ks =
  (* print the set that the evaluated delay actually belongs to *)
  let memo = Hashtbl.create 8 in
  let choice k =
    match Hashtbl.find_opt memo k with
    | Some c -> c
    | None ->
      let c = Elimination.best_choice t k in
      Hashtbl.replace memo k c;
      c
  in
  generic ~label:"Top-k elimination" ~noiseless:(Elimination.noiseless_delay t)
    ~noisy:(Elimination.all_aggressor_delay t)
    ~set:(fun k -> Option.map fst (choice k))
    ~estimated:(Elimination.estimated_delay t)
    ~evaluate:(fun k ->
      match choice k with
      | Some (_, d) -> d
      | None -> Elimination.all_aggressor_delay t)
    nl ks

let csv ~estimated ~evaluate ks =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "k,estimated_delay_ns,exact_delay_ns\n";
  List.iter
    (fun k ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%.6f,%.6f\n" k (estimated k) (evaluate k)))
    ks;
  Buffer.contents buf

let csv_addition (t : Addition.t) ~ks =
  csv ~estimated:(Addition.estimated_delay t) ~evaluate:(Addition.evaluate t) ks

let csv_elimination (t : Elimination.t) ~ks =
  csv ~estimated:(Elimination.estimated_delay t) ~evaluate:(Elimination.evaluate t)
    ks
