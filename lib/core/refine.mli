(** Bounded exact recombination of retained candidate members.

    The engine ranks candidate sets with the static envelope model
    (the paper's Theorem 1 world); the exact fixpoint can disagree when
    in-set feedback — one member widening another member's switching
    window, including mutual aggression across the two directions of
    one physical coupling — amplifies a set beyond what static
    superposition predicts. In practice the exact optimum's members
    still appear scattered across the candidates the engine retained at
    lower cardinalities; what the static ranking got wrong is only
    their *combination*.

    This module rebuilds that combination space: it pools the directed
    couplings named by the ranked candidates (each together with its
    opposite direction, [id lxor 1]), truncates the pool until the
    number of k-subsets fits a budget, and enumerates them all for the
    caller to evaluate exactly. The budget caps the extra full
    iterative analyses per query, keeping selection cost bounded on
    large circuits. *)

val default_budget : int
(** Maximum number of recombined subsets per query. *)

val subsets :
  ?budget:int -> universe:int -> k:int -> members:int list -> unit ->
  Coupling_set.t list
(** [subsets ~universe ~k ~members ()] enumerates the k-subsets of the
    pool built from [members] (directed coupling ids, best first,
    duplicates ignored), followed by every member's partner direction
    in the same order. The pool is truncated from the tail until
    [binomial pool k <= budget]. Returns [[]] when fewer than [k]
    distinct ids are available. *)
