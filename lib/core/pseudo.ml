module Transition = Tka_waveform.Transition
module Envelope = Tka_waveform.Envelope
module Pwl = Tka_waveform.Pwl

let envelope ~victim ~shift =
  if shift < 0. then invalid_arg "Pseudo.envelope: negative shift";
  if shift = 0. then Envelope.zero
  else begin
    let nominal = Transition.waveform victim in
    let delayed = Transition.waveform (Transition.shift shift victim) in
    Envelope.of_waveform (Pwl.sub nominal delayed)
  end

let reduction_envelope ~victim ~total ~removed =
  if removed < 0. || removed > total +. Tka_util.Float_cmp.default_eps then
    invalid_arg "Pseudo.reduction_envelope: removed outside [0, total]";
  let full = Envelope.waveform (envelope ~victim ~shift:total) in
  let rest = Envelope.waveform (envelope ~victim ~shift:(Float.max 0. (total -. removed))) in
  Envelope.of_waveform (Pwl.sub full rest)

let shift_of_envelope ~victim env =
  Tka_noise.Victim_noise.delay_noise_of_envelope ~victim env
