(** Top-k aggressor {e addition} sets (Sections 3.1–3.3).

    Given a timing analysis without delay noise, the top-k addition set
    is the set of k aggressor–victim couplings whose delay noise, when
    added, maximises circuit delay — the "which couplings matter most"
    question. This module runs the implicit-enumeration engine in
    addition mode and re-evaluates chosen sets exactly with the
    iterative noise analysis. *)

type t = {
  result : Engine.result;
  topo : Tka_circuit.Topo.t;
  memo : Tka_noise.Envelope_builder.memo;
      (** shared envelope cache for the exact re-ranking below: the
          recombination pool evaluates many near-identical coupling
          sets, whose aggressor windows — and hence envelopes — recur
          verbatim. Purity keeps memoised scores bitwise identical to
          unmemoised ones. Not thread-safe: re-rank a given [t] from
          one thread at a time. *)
}

val compute :
  ?capacity:int ->
  ?use_pseudo:bool ->
  ?use_higher_order:bool ->
  ?filter:Tka_filter.Mode.t ->
  ?fixpoint:Tka_noise.Iterate.t ->
  k:int ->
  Tka_circuit.Topo.t ->
  t
(** Enumerate top-i addition sets for every [i <= k]. [fixpoint]
    optionally shares a precomputed all-aggressor analysis. [filter]
    (default [Off]) selects the pre-engine aggressor pruning mode. *)

val set : t -> int -> Coupling_set.t option
(** The chosen top-i set (best of the engine's sink candidates by exact
    evaluation). *)

val candidates : t -> int -> Coupling_set.t list
(** The engine's retained sink candidates for cardinality i, best first
    by the first-order score. *)

val best_choice : t -> int -> (Coupling_set.t * float) option
(** The exact-evaluation winner among {!candidates}, with its delay. *)

val estimated_delay : t -> int -> float
(** Engine estimate: noiseless delay + predicted noise of the set. *)

val evaluate : t -> int -> float
(** Exact circuit delay of {!best_choice}: a full iterative noise
    analysis restricted to those couplings. Falls back to the noiseless
    delay when no set of that cardinality exists. *)

val evaluate_set : Tka_circuit.Topo.t -> Coupling_set.t -> float
(** Exact delay for an arbitrary addition set. *)

val evaluate_curve :
  t -> ks:int list -> (int * Coupling_set.t * float) list
(** Exact delays for the requested cardinalities (sorted, deduplicated),
    with a monotone repair: if the engine's top-k set evaluates worse
    than the top-(k-1) choice, the previous set padded by one coupling
    replaces it (a superset is always at least as strong), so the
    reported curve is monotone like the paper's Table 2. *)

val noiseless_delay : t -> float
val all_aggressor_delay : t -> float
val runtime : t -> float
