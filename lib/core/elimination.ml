module Iterate = Tka_noise.Iterate

type t = {
  result : Engine.result;
  topo : Tka_circuit.Topo.t;
  memo : Tka_noise.Envelope_builder.memo;
      (* envelope reuse across the exact re-evaluations of the
         recombination pool — see [Addition.t]; sequential use only *)
  dual : Engine.result;
      (* addition-mode enumeration over the same circuit: the paper's
         dual problem. The strongest noise *contributors* are also prime
         removal candidates, and the addition objective sees the
         window-feedback amplification that the first-order removal
         benefit misses; per-k reports pick whichever candidate
         evaluates better. *)
}

let compute ?(capacity = Ilist.default_capacity) ?(use_pseudo = true)
    ?(use_higher_order = true) ?(filter = Tka_filter.Mode.Off) ?fixpoint
    ?victim_cache ~k topo =
  let config = { Engine.k; capacity; use_pseudo; use_higher_order; filter } in
  (* the two dual enumerations share one all-aggressor fixpoint *)
  let fixpoint =
    match fixpoint with Some f -> f | None -> Tka_noise.Iterate.run topo
  in
  (* each mode has its own cache view: keys hash the mode *)
  let vc mode = Option.bind victim_cache (fun f -> f mode) in
  {
    result =
      Engine.compute ~config ~fixpoint
        ?victim_cache:(vc Engine.Elimination)
        ~mode:Engine.Elimination topo;
    topo;
    memo = Tka_noise.Envelope_builder.create_memo ();
    dual =
      Engine.compute ~config ~fixpoint
        ?victim_cache:(vc Engine.Addition)
        ~mode:Engine.Addition topo;
  }

let set_of_result (r : Engine.result) i =
  if i < 1 || i >= Array.length r.Engine.res_per_k then None
  else Option.map (fun c -> c.Engine.ch_set) r.Engine.res_per_k.(i)

let top_of_result (r : Engine.result) i =
  if i < 1 || i >= Array.length r.Engine.res_top then []
  else List.map (fun c -> c.Engine.ch_set) r.Engine.res_top.(i)

let set t i = set_of_result t.result i
let dual_set t i = set_of_result t.dual i

(* candidates for exact re-ranking: the elimination engine's retained
   sink entries plus the dual (addition) engine's best pick *)
let candidates t i =
  let dedup sets =
    let seen = Hashtbl.create 8 in
    List.filter
      (fun s ->
        let key = Coupling_set.to_list s in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.replace seen key ();
          true
        end)
      sets
  in
  dedup (top_of_result t.result i @ Option.to_list (set_of_result t.dual i))

let estimated_delay t i = Engine.estimated_delay t.result i

let evaluate_set topo s =
  Iterate.circuit_delay (Iterate.run ~active:(Coupling_set.excludes_fn s) topo)

(* internal scoring path: [evaluate_set] through the shared memo *)
let evaluate_set_memo t s =
  Iterate.circuit_delay
    (Iterate.run ~active:(Coupling_set.excludes_fn s) ~env_memo:t.memo t.topo)

(* Recombination pool: members of the retained elimination candidates
   and of the dual engine's sink lists. Cardinality 1 first — the
   static ranking is exact for singles, so individually strong members
   are the likeliest optimum members and must survive truncation. *)
let ranked_members t i =
  List.concat_map
    (fun j ->
      let i' = j + 1 in
      List.concat_map Coupling_set.to_list
        (candidates t i' @ top_of_result t.dual i'))
    (List.init i Fun.id)

(* exact re-ranking over the retained candidates, the dual pick, and a
   bounded recombination of their members (see {!Refine}) *)
let best_choice t i =
  let universe =
    2 * Tka_circuit.Netlist.num_couplings (Tka_circuit.Topo.netlist t.topo)
  in
  let cands = candidates t i in
  let recombined =
    if cands = [] then []
    else Refine.subsets ~universe ~k:i ~members:(ranked_members t i) ()
  in
  let seen = Hashtbl.create 16 in
  let distinct =
    List.filter
      (fun s ->
        let key = Coupling_set.to_list s in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.replace seen key ();
          true
        end)
      (cands @ recombined)
  in
  match distinct with
  | [] -> None
  | first :: rest ->
    let score s = (s, evaluate_set_memo t s) in
    Some
      (List.fold_left
         (fun (bs, bd) c ->
           let s, d = score c in
           if d < bd then (s, d) else (bs, bd))
         (score first) rest)

let evaluate t i =
  match best_choice t i with
  | None -> t.result.Engine.res_noisy_delay
  | Some (_, d) -> d

(* Exact, monotone top-k curve; see Addition.evaluate_curve. For each
   cardinality both the elimination pick and the dual (addition) pick
   are evaluated and the better kept; if neither beats the previous
   cardinality's set, that set padded with one more coupling is used
   (removing a superset never recovers less). *)
let evaluate_curve t ~ks =
  let nl = Tka_circuit.Topo.netlist t.topo in
  let universe = 2 * Tka_circuit.Netlist.num_couplings nl in
  let ks = List.sort_uniq Int.compare ks in
  let best = ref None in
  List.filter_map
    (fun k ->
      let cands =
        candidates t k
        @ (match !best with
          | Some (s, _) -> Option.to_list (Coupling_set.pad ~universe ~target:k s)
          | None -> [])
      in
      match cands with
      | [] -> None
      | first :: rest ->
        let score s = (s, evaluate_set_memo t s) in
        let s, d =
          List.fold_left
            (fun (bs, bd) c ->
              let s, d = score c in
              if d < bd then (s, d) else (bs, bd))
            (score first) rest
        in
        best := Some (s, d);
        Some (k, s, d))
    ks

let noiseless_delay t = t.result.Engine.res_noiseless_delay
let all_aggressor_delay t = t.result.Engine.res_noisy_delay
let runtime t = t.result.Engine.res_runtime +. t.dual.Engine.res_runtime
