(** Robustness of top-k sets to extraction uncertainty.

    Extracted coupling capacitances carry 10–20 % error; a fix list is
    only actionable if it survives that uncertainty. This module
    perturbs every coupling cap by a bounded random factor, recomputes
    the top-k analysis on each perturbed design, and reports how stable
    the chosen sets and their delays are — the robustness check a
    signoff team would run before committing shield resources. *)

type report = {
  sr_k : int;
  sr_trials : int;
  sr_jaccard_mean : float;
      (** mean Jaccard similarity between the nominal top-k set and
          each perturbed trial's top-k set (1.0 = always identical) *)
  sr_jaccard_min : float;
  sr_always_chosen : Coupling_set.t;
      (** couplings present in the nominal set and in {e every}
          perturbed trial's set — the robust core of the fix list *)
  sr_delay_spread : float * float;
      (** min and max evaluated top-k delay across trials, ns *)
}

val jaccard : Coupling_set.t -> Coupling_set.t -> float
(** |A ∩ B| / |A ∪ B|; 1.0 for two empty sets. *)

val addition :
  ?trials:int ->
  ?noise_pct:float ->
  rng:Tka_util.Rng.t ->
  k:int ->
  Tka_circuit.Netlist.t ->
  report
(** [addition ~rng ~k nl] perturbs each coupling cap uniformly in
    [±noise_pct] (default 15 %), [trials] times (default 10), and
    compares each perturbed top-k addition set against the nominal
    one. *)

val elimination :
  ?trials:int ->
  ?noise_pct:float ->
  rng:Tka_util.Rng.t ->
  k:int ->
  Tka_circuit.Netlist.t ->
  report
