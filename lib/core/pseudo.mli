(** Pseudo input aggressors (Section 3.1, Fig. 5).

    The delay noise a set of upstream couplings creates on a victim
    driver's input shifts the victim's output transition. Subtracting
    the noiseless output transition from the delayed one yields a
    waveform shaped like a primary-aggressor noise envelope — the
    pseudo input aggressor — which lets candidate sets propagate in
    topological order without re-analysing fanin cones. *)

val envelope :
  victim:Tka_waveform.Transition.t -> shift:float -> Tka_waveform.Envelope.t
(** [envelope ~victim ~shift] is (noiseless − delayed-by-[shift])
    clipped at zero: the exact pseudo-noise envelope for a victim whose
    transition is pushed late by [shift >= 0]. Zero envelope for zero
    shift. *)

val reduction_envelope :
  victim:Tka_waveform.Transition.t ->
  total:float ->
  removed:float ->
  Tka_waveform.Envelope.t
(** For the elimination analysis: the envelope component that
    {e disappears} when upstream fixing shrinks a total propagated
    shift of [total] down to [total - removed]:
    [envelope total − envelope (total − removed)], clipped at zero. *)

val shift_of_envelope :
  victim:Tka_waveform.Transition.t -> Tka_waveform.Envelope.t -> float
(** Inverse check: the delay noise the pseudo envelope reproduces on
    the victim (equals [shift] up to saturation; used by tests). *)
