(** Immutable sets of directed aggressor–victim couplings.

    The unit of the top-k problem, matching the paper's "aggressor–
    victim coupling": elements are {e directed} coupling ids
    ({!Tka_noise.Coupled_noise.directed_id} — a physical coupling cap
    seen from one victim side). A top-k addition/elimination set is a
    value of this type with {!cardinality} k. Represented as sorted
    duplicate-free int arrays — the sets are tiny (≤ k ≈ 75) and
    comparison/union dominate, so the members live in one flat block
    and membership is a binary search. *)

type t

type elt = int
(** A directed coupling id. *)

val empty : t
val singleton : elt -> t
val of_list : elt list -> t
val to_list : t -> elt list

val cardinality : t -> int
val mem : elt -> t -> bool
val add : elt -> t -> t
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val disjoint : t -> t -> bool
val subset : t -> t -> bool

val equal : t -> t -> bool
val compare : t -> t -> int

val hash_key : t -> string
(** Canonical dedupe key: the sorted directed-coupling ids joined by
    commas. Injective over well-formed sets, so it can stand in for the
    set in hash tables without polymorphic structural hashing of the
    underlying list (the hot-path cost in {!Ilist.prune}). *)

val hash : t -> int
(** FNV-1a over the members: allocation-free alternative to
    {!hash_key} for int-keyed tables. *)

module Tbl : Hashtbl.S with type key = t
(** Hashtables keyed directly by coupling sets ({!hash}/{!equal}),
    replacing the string-keyed dedupe tables. *)

val fold : (elt -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (elt -> unit) -> t -> unit
val exists : (elt -> bool) -> t -> bool

val contains_fn :
  t -> Tka_noise.Coupled_noise.directed -> bool
(** [contains_fn s] as a predicate over directed couplings, for
    [Iterate.run ~active]. *)

val excludes_fn :
  t -> Tka_noise.Coupled_noise.directed -> bool
(** Complement of {!contains_fn} (elimination evaluation). *)

val pad : universe:int -> target:int -> t -> t option
(** [pad ~universe ~target s] grows [s] to exactly [target] elements by
    adding the smallest directed ids below [universe] not already in
    [s]; [None] when the universe is too small. Used to keep reported
    top-k curves monotone: activating (removing) a superset never adds
    (recovers) less delay. *)

val pp : Format.formatter -> t -> unit
val describe : Tka_circuit.Netlist.t -> t -> string
(** Human-readable "aggressor->victim (cap)" listing. *)
