module N = Tka_circuit.Netlist
module Topo = Tka_circuit.Topo
module TW = Tka_sta.Timing_window
module Analysis = Tka_sta.Analysis
module Iterate = Tka_noise.Iterate
module CN = Tka_noise.Coupled_noise
module EB = Tka_noise.Envelope_builder
module VN = Tka_noise.Victim_noise
module Envelope = Tka_waveform.Envelope
module Transition = Tka_waveform.Transition
module Pwl = Tka_waveform.Pwl
module Filter = Tka_filter.Filter
module Filter_mode = Tka_filter.Mode

module Log = Tka_obs.Log
module Metrics = Tka_obs.Metrics
module Trace = Tka_obs.Trace

let log_src = Log.Src.create "engine" ~doc:"top-k aggressor enumeration"
let m_victims = Metrics.Counter.make "engine.victims_enumerated"
let m_runs = Metrics.Counter.make "engine.runs"
let g_runtime = Metrics.Gauge.make "engine.last_runtime_s"
let h_victim_s = Metrics.Histogram.make "engine.victim_seconds"

type mode = Addition | Elimination

type config = {
  k : int;
  capacity : int;
  use_pseudo : bool;
  use_higher_order : bool;
  filter : Filter_mode.t;
}

let default_config ~k =
  {
    k;
    capacity = Ilist.default_capacity;
    use_pseudo = true;
    use_higher_order = true;
    filter = Filter_mode.Off;
  }

type choice = {
  ch_set : Coupling_set.t;
  ch_objective : float;
  ch_sink : N.net_id;
}

type result = {
  res_mode : mode;
  res_config : config;
  res_per_k : choice option array;
  res_top : choice list array;
  res_stats : Ilist.stats;
  res_noiseless_delay : float;
  res_noisy_delay : float;
  res_runtime : float;
}

(* How many sink candidates per cardinality are retained for exact
   re-ranking by the callers (the paper superposes every member of the
   sink's I-list; we keep the best few by the first-order score). *)
let sink_candidates = 6

(* Per-net, per-cardinality summaries retained after a net is processed:
   the best few coupling sets (by objective at that net), best first.
   Propagating more than the single best set (the paper's step 5) lets
   downstream victims recover upstream sets whose first-order rank was
   slightly off — the exact re-ranking at the sink then corrects it. *)
type cardinality_summary = (Coupling_set.t * float) list array
type summary = cardinality_summary

type cached_victim = {
  cv_summary : cardinality_summary;
  cv_out : cardinality_summary option;
  cv_stats : Ilist.stats;
  cv_direct : (N.net_id * cardinality_summary * Ilist.stats) list;
}

type victim_cache = {
  vc_lookup : summary_of:(N.net_id -> cardinality_summary) -> N.net_id -> cached_victim option;
  vc_store : N.net_id -> cached_victim -> unit;
}

let summaries_per_cardinality = 2

let eps = 1e-9

let mode_name = function Addition -> "addition" | Elimination -> "elimination"

let compute_body ~config ~fixpoint ~victim_cache ~mode topo =
  let t_start = Tka_obs.Clock.now_ns () in
  let nl = Topo.netlist topo in
  let nn = N.num_nets nl in
  let k = config.k in
  let fix = match fixpoint with Some f -> f | None -> Iterate.run topo in
  let base = fix.Iterate.base in
  let base_w = Analysis.window base in
  let noisy_w = Analysis.window fix.Iterate.analysis in
  let mode_w = match mode with Addition -> base_w | Elimination -> noisy_w in
  (* Candidate pruning: prepared once per run against the same window
     accessor the envelopes below are built from, then consulted per
     victim. Pure and immutable, so sharing it across domains is safe. *)
  let filt = Filter.prepare ~mode:config.filter ~windows:mode_w topo in
  let base_lat v = (base_w v).TW.lat in
  let noisy_lat v = (noisy_w v).TW.lat in
  let stats = Ilist.fresh_stats () in
  let summaries : summary array = Array.make nn [||] in
  (* Memoised direct-only summaries of nets NOT upstream of the victim
     requesting them. Shared across the sweep; the mutex only guards
     table access — the enumeration itself runs outside it, and a lost
     insertion race recomputes a value that is identical by purity, so
     results stay deterministic at any jobs count. The stats recorded
     by the winning insertion are folded into the run totals at the end
     (in net-id order, also deterministic). *)
  (* Pre-sized to the net count (capped: a 1M-net design does not need
     a quarter-million buckets up front) so the sweep never pays a
     rehash-and-copy of a large table mid-run. *)
  let direct_memo_size = max 64 (min 65536 (nn / 4)) in
  let direct_memo : (int, summary * Ilist.stats) Hashtbl.t =
    Hashtbl.create direct_memo_size
  in
  Log.debug log_src (fun m ->
      m "direct memo pre-sized" ~fields:[ Log.int "initial_size" direct_memo_size ]);
  let memo_mutex = Mutex.create () in

  (* The victim's latest transition, anchored at the noiseless arrival:
     objectives measure noise added to / removed from the noiseless
     timing. *)
  let victim_tr v =
    Transition.make ~t50:(base_lat v) ~slew:(mode_w v).TW.slew_late ()
  in

  (* Upstream component of the fixpoint shift at [v] (elimination). *)
  let upstream_shift v =
    Float.max 0. (noisy_lat v -. base_lat v -. Iterate.net_noise fix v)
  in

  (* --------------------------------------------------------------- *)
  (* Per-victim enumeration                                          *)
  (* --------------------------------------------------------------- *)
  let summary_of_ilists upto (ilists : Ilist.entry list array) : summary =
    Array.init (upto + 1) (fun i ->
        if i = 0 then [ (Coupling_set.empty, 0.) ]
        else
          ilists.(i)
          |> List.filteri (fun j _ -> j < summaries_per_cardinality)
          |> List.map (fun (e : Ilist.entry) ->
                 (e.Ilist.couplings, e.Ilist.objective)))
  in

  let rec enumerate ~on_direct ~stats ~use_pseudo ~use_higher ~upto ~level v :
      Ilist.entry list array =
    (* Pre-engine screening: drops candidates the filter proves inert
       before any envelope is built (the whole point — with filtering
       off, [screen] returns the input list physically unchanged and a
       constant 1.0 factor, leaving this path bit-identical). *)
    let all_primaries, derate_of =
      Filter.screen filt (CN.aggressors_of_victim nl v)
    in
    let victim = victim_tr v in
    let interval = Dominance.interval ~victim in
    let prim_env_tbl = Hashtbl.create (max 16 (List.length all_primaries)) in
    let prim_env (d : CN.directed) =
      match Hashtbl.find_opt prim_env_tbl (CN.directed_id d) with
      | Some e -> e
      | None ->
        let e = EB.of_directed nl ~windows:mode_w d in
        let e =
          match derate_of (CN.directed_id d) with
          | 1. -> e
          | f -> Envelope.scale f e
        in
        Hashtbl.replace prim_env_tbl (CN.directed_id d) e;
        e
    in
    (* A primary whose envelope is zero everywhere on the dominance
       interval cannot change any candidate's objective (the saturated
       crossing never leaves the interval), so it is inert at this
       victim — on dense circuits most couplings are inert for most
       victims, and dropping them up front shrinks every later step.
       For the elimination objective the interval test is the same: the
       removed envelope only matters where the crossing can sit. *)
    let primaries =
      List.filter
        (fun d ->
          Pwl.max_on interval (Envelope.waveform (prim_env d)) > eps)
        all_primaries
    in
    (* Elimination reference: the total envelope of everything attacking
       this victim (direct + propagated), and the noise it causes. *)
    let total_env =
      lazy
        (let direct = Envelope.combine (List.map prim_env primaries) in
         match mode with
         | Addition -> direct
         | Elimination ->
           Envelope.add direct
             (Pseudo.envelope ~victim ~shift:(upstream_shift v)))
    in
    let total_noise =
      lazy (VN.delay_noise_of_envelope ~victim (Lazy.force total_env))
    in
    (* one-pass elimination objective: precompute (ramp - total envelope)
       once; the remaining noise after removing env is the crossing of
       that floor plus env *)
    let noisy_floor =
      lazy
        (Pwl.sub (Transition.waveform victim)
           (Envelope.waveform (Lazy.force total_env)))
    in
    let objective env =
      match mode with
      | Addition -> VN.delay_noise_of_envelope ~victim env
      | Elimination ->
        let restored = Pwl.add (Lazy.force noisy_floor) (Envelope.waveform env) in
        let remaining_noise =
          match Pwl.last_upcrossing restored 0.5 with
          | None -> 0.
          | Some t ->
            Float.min
              (Float.max 0. (t -. victim.Transition.t50))
              (VN.saturation_slews *. victim.Transition.slew)
        in
        Lazy.force total_noise -. remaining_noise
    in
    let entry set env =
      { Ilist.couplings = set; envelope = env; objective = objective env }
    in
    (* Extension rule (Theorem 1): extending a set S with primary d is
       redundant when some primary d' NOT in S strictly dominates d —
       S ∪ {d'} dominates S ∪ {d}. So each primary carries its list of
       strict dominators (ties broken by id so equal envelopes do not
       eliminate each other), and is allowed as an extension of S only
       when all of them already belong to S. Non-dominated primaries
       are always allowed. *)
    let prim_arr = Array.of_list primaries in
    let np = Array.length prim_arr in
    (* Interned primary universe: each live primary gets a dense index
       into [prim_arr]; dominator sets and entry membership then live in
       bitsets over [0, np), so the extension filter below is a handful
       of word ands instead of id-list scans per (entry, primary) pair. *)
    let idx_of_id = Hashtbl.create (max 16 np) in
    Array.iteri
      (fun idx (d : CN.directed) ->
        Hashtbl.replace idx_of_id (CN.directed_id d) idx)
      prim_arr;
    let dom_mask =
      Array.mapi
        (fun i (d : CN.directed) ->
          let mask = Tka_util.Bitset.make np in
          let ed = prim_env d in
          Array.iteri
            (fun i' (d' : CN.directed) ->
              if i' <> i then begin
                let ed' = prim_env d' in
                let fwd = Dominance.dominates ~interval ed' ed in
                let bwd = Dominance.dominates ~interval ed ed' in
                if fwd && ((not bwd) || CN.directed_id d' < CN.directed_id d)
                then Tka_util.Bitset.set mask i'
              end)
            prim_arr;
          mask)
        prim_arr
    in
    (* extension fan-out bound: only the strongest primaries (by
       singleton objective) plus any primary whose dominators are all in
       the set already (the stacking case) are tried *)
    let strong = Array.make (max 1 np) false in
    let () =
      let scored =
        Array.mapi
          (fun idx d -> (idx, VN.delay_noise_of_envelope ~victim (prim_env d)))
          prim_arr
      in
      Array.sort (fun (_, a) (_, b) -> Float.compare b a) scored;
      Array.iteri
        (fun rank (idx, _) -> if rank < 8 then strong.(idx) <- true)
        scored
    in
    (* One scratch membership mask, reloaded per entry in the extension
       scan: set-bit per primary member of the entry's coupling set
       (pseudo/higher ids have no primary index and cannot dominate). *)
    let entry_mask = Tka_util.Bitset.make np in
    let load_entry_mask set =
      Tka_util.Bitset.clear entry_mask;
      Coupling_set.iter
        (fun id ->
          match Hashtbl.find_opt idx_of_id id with
          | Some idx -> Tka_util.Bitset.set entry_mask idx
          | None -> ())
        set
    in
    let allowed_extension (idx : int) =
      (strong.(idx) || Tka_util.Bitset.intersects dom_mask.(idx) entry_mask)
      && Tka_util.Bitset.subset dom_mask.(idx) entry_mask
    in
    let ilists = Array.make (upto + 1) [] in
    ilists.(0) <-
      [ { Ilist.couplings = Coupling_set.empty; envelope = Envelope.zero; objective = 0. } ];
    (* Pseudo candidates of a given cardinality, one per driver input. *)
    let pseudo_candidates i =
      if not use_pseudo then []
      else
        match N.driver_gate nl v with
        | None -> []
        | Some g ->
          let delay = Tka_sta.Delay_calc.stage_delay nl g.N.gate_id in
          List.concat_map
            (fun (_, u) ->
              let sums =
                if Array.length summaries.(u) > i then summaries.(u).(i) else []
              in
              List.filter_map
                (fun (set, du) ->
                  if du <= eps then None
                  else
                    match mode with
                    | Addition ->
                      let slack = base_lat v -. (base_lat u +. delay) in
                      let shift = Float.max 0. (du -. Float.max 0. slack) in
                      if shift <= eps then None
                      else Some (entry set (Pseudo.envelope ~victim ~shift))
                    | Elimination ->
                      let p_v = upstream_shift v in
                      let slack = noisy_lat v -. (noisy_lat u +. delay) in
                      let reduction =
                        Float.max 0. (Float.min p_v (du -. Float.max 0. slack))
                      in
                      if reduction <= eps then None
                      else
                        Some
                          (entry set
                             (Pseudo.reduction_envelope ~victim ~total:p_v
                                ~removed:reduction)))
                sums)
            g.N.fanin
    in
    (* Higher-order candidates of innate cardinality i: primary d whose
       window is altered by the best (i-1)-set attacking the aggressor
       net itself. *)
    (* higher-order construction is the most expensive candidate source
       (each needs a fresh widened-envelope build): restrict it to the
       strongest primaries and to the aggressor net's best summary *)
    let higher_order_pool =
      lazy
        (List.stable_sort
           (fun a b ->
             Float.compare (Envelope.peak (prim_env b)) (Envelope.peak (prim_env a)))
           primaries
        |> List.filteri (fun j _ -> j < 8))
    in
    let higher_candidates i =
      if (not use_higher) || i < 2 then []
      else
        List.concat_map
          (fun (d : CN.directed) ->
            let a = d.CN.dc_aggressor in
            let s = summary_of_aggressor ~on_direct ~level a in
            let t = i - 1 in
            let sums =
              match (if Array.length s > t then s.(t) else []) with
              | best :: _ -> [ best ]
              | [] -> []
            in
            List.filter_map
              (fun (set_t, delta) ->
                if delta <= eps || Coupling_set.mem (CN.directed_id d) set_t then
                  None
                else
                  let combo = Coupling_set.add (CN.directed_id d) set_t in
                  if Coupling_set.cardinality combo <> i then None
                  else
                    (* De-rate the rebuilt envelopes by the primary's
                       factor, keeping them consistent with [prim_env]
                       (1.0 — the common case — is the identity). *)
                    let derate e =
                      match derate_of (CN.directed_id d) with
                      | 1. -> e
                      | f -> Envelope.scale f e
                    in
                    match mode with
                    | Addition ->
                      Some
                        (entry combo
                           (derate
                              (EB.of_directed_widened nl ~windows:mode_w
                                 ~extra_lat:delta d)))
                    | Elimination ->
                      (* removing the combo shrinks the aggressor window:
                         the envelope that disappears is (full − narrowed) *)
                      let w = mode_w a in
                      let lat' = Float.max w.TW.eat (w.TW.lat -. delta) in
                      let narrowed =
                        derate
                          (EB.with_window nl ~window:{ w with TW.lat = lat' } d)
                      in
                      let gone =
                        Envelope.of_waveform
                          (Pwl.sub
                             (Envelope.waveform (prim_env d))
                             (Envelope.waveform narrowed))
                      in
                      Some (entry combo gone))
              sums)
          (Lazy.force higher_order_pool)
    in
    (* deep in the sweep candidates differ marginally; tapering the
       list capacity there keeps the k-sweep near-linear without
       touching the small-k region the validation checks *)
    let capacity_at i =
      if i <= 20 then config.capacity
      else max 8 (config.capacity - ((i - 20) / 4))
    in
    for i = 1 to upto do
      let extensions =
        List.concat_map
          (fun (e : Ilist.entry) ->
            let out = ref [] in
            load_entry_mask e.Ilist.couplings;
            Array.iteri
              (fun idx (d : CN.directed) ->
                let id = CN.directed_id d in
                if
                  (not (Coupling_set.mem id e.Ilist.couplings))
                  && allowed_extension idx
                then
                  out :=
                    entry
                      (Coupling_set.add id e.Ilist.couplings)
                      (Envelope.add e.Ilist.envelope (prim_env d))
                    :: !out)
              prim_arr;
            !out)
          ilists.(i - 1)
      in
      let cands = extensions @ pseudo_candidates i @ higher_candidates i in
      ilists.(i) <- Ilist.prune ~capacity:(capacity_at i) ~interval ~stats cands
    done;
    ilists

  (* Best sets attacking an aggressor net: the full summary when the
     net lies at a strictly lower level than the requesting victim (it
     is then guaranteed published, both in the sequential sweep and at
     a level barrier of the parallel one), otherwise a memoised
     direct-aggressors-only enumeration. The rule depends only on
     levels — not on how far the sweep has progressed — so every jobs
     count makes identical decisions. *)
  and summary_of_aggressor ~on_direct ~level a : summary =
    if Topo.net_level topo a < level && Array.length summaries.(a) > 0 then
      summaries.(a)
    else begin
      Mutex.lock memo_mutex;
      let hit = Hashtbl.find_opt direct_memo a in
      Mutex.unlock memo_mutex;
      let s, st =
        match hit with
        | Some e -> e
        | None ->
          let upto = max 0 (k - 1) in
          let st = Ilist.fresh_stats () in
          let ilists =
            enumerate
              ~on_direct:(fun _ _ _ -> ())
              ~stats:st ~use_pseudo:false ~use_higher:false ~upto
              ~level:(Topo.net_level topo a) a
          in
          let s = summary_of_ilists upto ilists in
          Mutex.lock memo_mutex;
          let e =
            match Hashtbl.find_opt direct_memo a with
            | Some e -> e
            | None ->
              Hashtbl.replace direct_memo a (s, st);
              (s, st)
          in
          Mutex.unlock memo_mutex;
          e
      in
      on_direct a s st;
      s
    end
  in

  (* --------------------------------------------------------------- *)
  (* Topological sweep                                               *)
  (* --------------------------------------------------------------- *)
  (* Each victim writes only its own slots; nothing else is shared
     between the nets of one level (see the safety argument in
     docs/parallelism.md). *)
  let victim_stats : Ilist.stats option array = Array.make nn None in
  let out_ilists : Ilist.entry list array option array = Array.make nn None in
  (* A cached record replaces the whole per-victim unit of work. The
     consulted direct summaries are replayed into the shared memo so
     the memo key set — and therefore the merged stats — match a
     from-scratch run exactly (the values are identical by purity: a
     valid cache hit implies the aggressor's inputs are unchanged). *)
  let install_cached v (cv : cached_victim) =
    summaries.(v) <- cv.cv_summary;
    victim_stats.(v) <- Some cv.cv_stats;
    List.iter
      (fun (a, s, st) ->
        Mutex.lock memo_mutex;
        if not (Hashtbl.mem direct_memo a) then
          Hashtbl.replace direct_memo a (s, st);
        Mutex.unlock memo_mutex)
      cv.cv_direct;
    match cv.cv_out with
    | None -> ()
    | Some out ->
      out_ilists.(v) <-
        Some
          (Array.map
             (List.map (fun (set, obj) ->
                  {
                    Ilist.couplings = set;
                    envelope = Envelope.zero;
                    objective = obj;
                  }))
             out)
  in
  (* Reject records that cannot have come from an equivalent run (a
     provider bug or stale checkpoint): wrong cardinality range, or a
     primary output without its sink lists. *)
  let cached_valid v (cv : cached_victim) =
    Array.length cv.cv_summary = k + 1
    && (match cv.cv_out with
       | Some out -> Array.length out = k + 1
       | None -> not (N.net nl v).N.is_output)
  in
  let process v =
    match
      Option.bind victim_cache (fun c ->
          (* lower levels are final here (the sweep is level-
             synchronous), so the provider may hash their values *)
          match c.vc_lookup ~summary_of:(fun u -> summaries.(u)) v with
          | Some cv when cached_valid v cv -> Some cv
          | Some _ | None -> None)
    with
    | Some cv -> install_cached v cv
    | None ->
      let st = Ilist.fresh_stats () in
      let consulted = ref [] in
      let on_direct a s dst =
        if not (List.exists (fun (a', _, _) -> a' = a) !consulted) then
          consulted := (a, s, dst) :: !consulted
      in
      let ilists =
        enumerate ~on_direct ~stats:st ~use_pseudo:config.use_pseudo
          ~use_higher:config.use_higher_order ~upto:k
          ~level:(Topo.net_level topo v) v
      in
      summaries.(v) <- summary_of_ilists k ilists;
      victim_stats.(v) <- Some st;
      let is_out = (N.net nl v).N.is_output in
      if is_out then out_ilists.(v) <- Some ilists;
      (match victim_cache with
      | None -> ()
      | Some c ->
        c.vc_store v
          {
            cv_summary = summaries.(v);
            cv_out =
              (if is_out then
                 Some
                   (Array.map
                      (List.map (fun (e : Ilist.entry) ->
                           (e.Ilist.couplings, e.Ilist.objective)))
                      ilists)
               else None);
            cv_stats = st;
            cv_direct = List.rev !consulted;
          })
  in
  let instrumented v =
    (* observability disabled: no span, no histogram, no clock reads *)
    if Trace.is_enabled () || Metrics.is_enabled () then begin
      Metrics.Counter.incr m_victims;
      let t0 = Tka_obs.Clock.now_ns () in
      (* prune attribution is only known after processing, so it is
         attached via the late-args hook *)
      Trace.with_span_args ~cat:"engine"
        ~args:[ ("net", Tka_obs.Jsonx.Str (N.net nl v).N.net_name) ]
        "engine.victim"
        (fun () ->
          match victim_stats.(v) with
          | None -> []
          | Some st ->
            [
              ("candidates", Tka_obs.Jsonx.Int st.Ilist.candidates);
              ("dominated", Tka_obs.Jsonx.Int st.Ilist.dominated);
              ("duplicates", Tka_obs.Jsonx.Int st.Ilist.duplicates);
              ("capped", Tka_obs.Jsonx.Int st.Ilist.capped);
              ("checks", Tka_obs.Jsonx.Int st.Ilist.checks);
            ])
        (fun () -> process v);
      Metrics.Histogram.observe h_victim_s (Tka_obs.Clock.seconds_since t0)
    end
    else process v
  in
  let pool = Tka_parallel.Pool.get_default () in
  if Tka_parallel.Pool.size pool <= 1 then
    Array.iter instrumented (Topo.net_order topo)
  else begin
    let shards = Topo.cone_shards topo in
    if Array.length shards > 1 then
      (* Cone-sharded sweep: every net the enumeration of a victim can
         consult (coupled aggressors, driver fanin for pseudo, coupled
         nets for higher-order) lies in the victim's own shard, and a
         shard's nets run sequentially in net_order — so all reads see
         published summaries and every jobs count computes identical
         per-victim inputs. Totals are merged in net order below, same
         as the level-synchronous path. *)
      Tka_parallel.Shard.run pool ~shards instrumented
    else
      (* Level-synchronous sweep: a net only reads summaries of strictly
         lower levels, all published before its level starts (the pool
         call is the barrier between levels). *)
      Array.iter
        (fun nets -> Tka_parallel.Pool.iter ~chunk:1 pool instrumented nets)
        (Topo.level_nets topo)
  end;
  (* Deterministic totals: per-victim records merged in net order, then
     the memoised direct enumerations in net-id order. All fields are
     sums, so the totals equal the sequential single-record run. *)
  Array.iter
    (fun v ->
      match victim_stats.(v) with
      | Some st -> Ilist.merge_stats stats st
      | None -> ())
    (Topo.net_order topo);
  Hashtbl.fold (fun a (_, st) acc -> (a, st) :: acc) direct_memo []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  |> List.iter (fun (_, st) -> Ilist.merge_stats stats st);
  (* Prepending in net order reproduces the processing-order prepends of
     the sequential sweep, keeping sink-selection tie-breaks unchanged. *)
  let po_entries =
    Array.fold_left
      (fun acc v ->
        match out_ilists.(v) with Some il -> (v, il) :: acc | None -> acc)
      [] (Topo.net_order topo)
  in

  (* --------------------------------------------------------------- *)
  (* Sink selection                                                  *)
  (* --------------------------------------------------------------- *)
  let outputs = N.outputs nl in
  (* For each cardinality, gather every entry of every primary output's
     irredundant list (the paper reads the whole I-list_k of the sink),
     score by the resulting circuit arrival, and keep the best few for
     exact re-ranking by the caller. *)
  let top =
    Trace.with_span ~cat:"engine" "engine.sink_selection" @@ fun () ->
    Array.init (k + 1) (fun i ->
        if i = 0 then []
        else begin
          let score po obj =
            match mode with
            | Addition ->
              List.fold_left
                (fun acc q ->
                  Float.max acc (base_lat q +. if q = po then obj else 0.))
                Float.neg_infinity outputs
            | Elimination ->
              List.fold_left
                (fun acc q ->
                  Float.max acc (noisy_lat q -. if q = po then obj else 0.))
                Float.neg_infinity outputs
          in
          let scored =
            List.concat_map
              (fun (po, ilists) ->
                List.map
                  (fun (e : Ilist.entry) ->
                    ( score po e.Ilist.objective,
                      {
                        ch_set = e.Ilist.couplings;
                        ch_objective = e.Ilist.objective;
                        ch_sink = po;
                      } ))
                  ilists.(i))
              po_entries
          in
          let sorted =
            List.stable_sort
              (fun (a, _) (b, _) ->
                match mode with
                | Addition -> Float.compare b a
                | Elimination -> Float.compare a b)
              scored
          in
          (* dedupe identical sets, keep the best few *)
          let seen : unit Coupling_set.Tbl.t = Coupling_set.Tbl.create 16 in
          List.filter_map
            (fun (_, c) ->
              if Coupling_set.Tbl.mem seen c.ch_set then None
              else begin
                Coupling_set.Tbl.replace seen c.ch_set ();
                Some c
              end)
            sorted
          |> List.filteri (fun j _ -> j < sink_candidates)
        end)
  in
  let per_k = Array.map (fun l -> match l with c :: _ -> Some c | [] -> None) top in
  (* Monotone fix-up: a cardinality-i set can always contain the best
     (i-1)-set plus one more coupling, so the achievable objective never
     decreases with i. When a sink's irredundant list thins out (e.g. a
     primary output with a single primary aggressor), pad the previous
     choice with an arbitrary unused coupling instead of regressing. *)
  let pad_with_any set =
    let n = 2 * N.num_couplings nl in
    let rec find c =
      if c >= n then None
      else if Coupling_set.mem c set then find (c + 1)
      else Some (Coupling_set.add c set)
    in
    find 0
  in
  (match mode with
  | Addition | Elimination ->
    for i = 2 to k do
      let prev = per_k.(i - 1) in
      let keep_prev =
        match (per_k.(i), prev) with
        | _, None -> false
        | None, Some _ -> true
        | Some ci, Some cp -> ci.ch_objective < cp.ch_objective
      in
      if keep_prev then begin
        let padded_choice =
          Option.bind prev (fun cp ->
              Option.map
                (fun padded -> { cp with ch_set = padded })
                (pad_with_any cp.ch_set))
        in
        per_k.(i) <- padded_choice;
        (match padded_choice with
        | Some c -> top.(i) <- c :: top.(i)
        | None -> ())
      end
    done);
  let res_runtime = Tka_obs.Clock.seconds_since t_start in
  Metrics.Counter.incr m_runs;
  Metrics.Gauge.set g_runtime res_runtime;
  Log.debug log_src (fun m ->
      m
        ~fields:
          [
            Log.str "circuit" (N.name nl);
            Log.int "k" k;
            Log.str "mode" (mode_name mode);
            Log.float "runtime_s" res_runtime;
            Log.int "candidates" stats.Ilist.candidates;
            Log.int "dominance_checks" stats.Ilist.checks;
            Log.int "dominated" stats.Ilist.dominated;
            Log.int "capped" stats.Ilist.capped;
          ]
        "%s: k=%d %s in %.2fs (candidates=%d dominated=%d capped=%d)" (N.name nl)
        k (mode_name mode) res_runtime stats.Ilist.candidates
        stats.Ilist.dominated stats.Ilist.capped);
  {
    res_mode = mode;
    res_config = config;
    res_per_k = per_k;
    res_top = top;
    res_stats = stats;
    res_noiseless_delay = Analysis.circuit_delay base;
    res_noisy_delay = Iterate.circuit_delay fix;
    res_runtime;
  }

let compute ?config ?fixpoint ?victim_cache ~mode topo =
  let config = match config with Some c -> c | None -> default_config ~k:10 in
  if config.k < 1 then invalid_arg "Engine.compute: k must be >= 1";
  Trace.with_span ~cat:"engine"
    ~args:
      [ ("mode", Tka_obs.Jsonx.Str (mode_name mode)); ("k", Tka_obs.Jsonx.Int config.k) ]
    "engine.compute"
    (fun () -> compute_body ~config ~fixpoint ~victim_cache ~mode topo)

let estimated_delay r i =
  if i < 0 || i >= Array.length r.res_per_k then
    invalid_arg "Engine.estimated_delay: cardinality out of range";
  match r.res_per_k.(i) with
  | None -> (
    match r.res_mode with
    | Addition -> r.res_noiseless_delay
    | Elimination -> r.res_noisy_delay)
  | Some c -> (
    match r.res_mode with
    | Addition -> Float.max r.res_noiseless_delay (r.res_noiseless_delay +. c.ch_objective)
    | Elimination -> Float.max r.res_noiseless_delay (r.res_noisy_delay -. c.ch_objective))
