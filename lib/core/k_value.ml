type curve_point = { kv_k : int; kv_delay : float; kv_fraction : float }

type recommendation = {
  kv_coverage_k : int option;
  kv_knee_k : int;
  kv_curve : curve_point list;
}

let sample_ks ~kmax =
  List.init kmax (fun i -> i + 1)
  |> List.filter (fun k -> k <= 10 || k mod 5 = 0 || k = kmax)

let knee_of_curve pts =
  match pts with
  | [] | [ _ ] -> invalid_arg "K_value.knee_of_curve: need at least two points"
  | (x0, y0) :: _ ->
    let xn, yn =
      match List.rev pts with
      | (x, y) :: _ -> (x, y)
      | [] -> assert false
    in
    let fx0 = float_of_int x0 and fxn = float_of_int xn in
    let span_x = Float.max 1e-9 (fxn -. fx0) in
    let chord x = y0 +. ((yn -. y0) *. (float_of_int x -. fx0) /. span_x) in
    let best =
      List.fold_left
        (fun (bk, bd) (x, y) ->
          let d = Float.abs (y -. chord x) in
          if d > bd then (x, d) else (bk, bd))
        (x0, Float.neg_infinity) pts
    in
    fst best

let build ~total ~fraction_of curve =
  let pts =
    List.map
      (fun (k, _, d) ->
        { kv_k = k; kv_delay = d; kv_fraction = fraction_of total d })
      curve
  in
  pts

let recommend ~coverage pts =
  let coverage_k =
    List.find_opt (fun p -> p.kv_fraction >= coverage) pts
    |> Option.map (fun p -> p.kv_k)
  in
  let knee_k =
    match pts with
    | [] | [ _ ] -> ( match pts with [ p ] -> p.kv_k | _ -> 1)
    | _ -> knee_of_curve (List.map (fun p -> (p.kv_k, p.kv_fraction)) pts)
  in
  { kv_coverage_k = coverage_k; kv_knee_k = knee_k; kv_curve = pts }

let addition ?(coverage = 0.8) ?(kmax = 30) topo =
  let t = Addition.compute ~k:kmax topo in
  let base = Addition.noiseless_delay t in
  let noisy = Addition.all_aggressor_delay t in
  let total = Float.max 1e-12 (noisy -. base) in
  let curve = Addition.evaluate_curve t ~ks:(sample_ks ~kmax) in
  recommend ~coverage
    (build ~total ~fraction_of:(fun total d -> (d -. base) /. total) curve)

let elimination ?(coverage = 0.8) ?(kmax = 30) topo =
  let t = Elimination.compute ~k:kmax topo in
  let base = Elimination.noiseless_delay t in
  let noisy = Elimination.all_aggressor_delay t in
  let total = Float.max 1e-12 (noisy -. base) in
  ignore base;
  let curve = Elimination.evaluate_curve t ~ks:(sample_ks ~kmax) in
  recommend ~coverage
    (build ~total ~fraction_of:(fun total d -> (noisy -. d) /. total) curve)
