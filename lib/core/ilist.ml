type entry = {
  couplings : Coupling_set.t;
  envelope : Tka_waveform.Envelope.t;
  objective : float;
}

type stats = {
  mutable candidates : int;
  mutable dominated : int;
  mutable duplicates : int;
  mutable capped : int;
  mutable checks : int;
}

let fresh_stats () =
  { candidates = 0; dominated = 0; duplicates = 0; capped = 0; checks = 0 }

let merge_stats acc s =
  acc.candidates <- acc.candidates + s.candidates;
  acc.dominated <- acc.dominated + s.dominated;
  acc.duplicates <- acc.duplicates + s.duplicates;
  acc.capped <- acc.capped + s.capped;
  acc.checks <- acc.checks + s.checks

let default_capacity = 10

(* Registry mirrors of the per-run stats record: the record stays the
   cheap always-on API; the counters feed [--metrics-out] and the bench
   summary. Updated once per [prune] call, not per candidate. *)
module M = Tka_obs.Metrics

let m_candidates = M.Counter.make "engine.candidate_sets"
let m_dominated = M.Counter.make "engine.sets_pruned"
let m_duplicates = M.Counter.make "engine.duplicate_sets"
let m_capped = M.Counter.make "engine.capacity_evictions"
let m_checks = M.Counter.make "engine.dominance_checks"

let prune ?(capacity = default_capacity) ~interval ~stats entries =
  let c0 = stats.candidates
  and d0 = stats.dominated
  and u0 = stats.duplicates
  and p0 = stats.capped
  and k0 = stats.checks in
  stats.candidates <- stats.candidates + List.length entries;
  (* dedupe identical coupling sets (same set => same envelope) *)
  let by_set = Hashtbl.create 32 in
  let deduped =
    List.filter
      (fun e ->
        let key = Coupling_set.to_list e.couplings in
        if Hashtbl.mem by_set key then begin
          stats.duplicates <- stats.duplicates + 1;
          false
        end
        else begin
          Hashtbl.replace by_set key ();
          true
        end)
      entries
  in
  let sorted =
    List.stable_sort (fun a b -> Float.compare b.objective a.objective) deduped
  in
  (* Prescreen: entries far down the objective order cannot enter the
     capacity-bounded result, and the pairwise dominance scan on large
     PWL envelopes is the expensive part — truncate first (counted as
     capped, never silent). *)
  let prescreen = 3 * capacity in
  let sorted, prescreened =
    let n = List.length sorted in
    if n <= prescreen then (sorted, 0)
    else (List.filteri (fun i _ -> i < prescreen) sorted, n - prescreen)
  in
  stats.capped <- stats.capped + prescreened;
  (* Objective-descending scan: an entry can only be dominated by one
     with an objective at least as large (Theorem 1), i.e. by an entry
     already kept. A peak comparison cheaply rules out most pairs. *)
  let kept = ref [] in
  List.iter
    (fun e ->
      let pe = Tka_waveform.Envelope.peak e.envelope in
      let dominated =
        List.exists
          (fun (k, pk) ->
            pk >= pe -. Tka_util.Float_cmp.default_eps
            && begin
                 stats.checks <- stats.checks + 1;
                 Dominance.dominates ~interval k.envelope e.envelope
               end)
          !kept
      in
      if dominated then stats.dominated <- stats.dominated + 1
      else kept := (e, pe) :: !kept)
    sorted;
  let kept = ref (List.map fst !kept) in
  let result = List.rev !kept in
  let n = List.length result in
  let result =
    if n > capacity then begin
      stats.capped <- stats.capped + (n - capacity);
      List.filteri (fun i _ -> i < capacity) result
    end
    else result
  in
  if M.is_enabled () then begin
    M.Counter.add m_candidates (stats.candidates - c0);
    M.Counter.add m_dominated (stats.dominated - d0);
    M.Counter.add m_duplicates (stats.duplicates - u0);
    M.Counter.add m_capped (stats.capped - p0);
    M.Counter.add m_checks (stats.checks - k0)
  end;
  result

let best = function [] -> None | e :: _ -> Some e
