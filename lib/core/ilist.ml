type entry = {
  couplings : Coupling_set.t;
  envelope : Tka_waveform.Envelope.t;
  objective : float;
}

type stats = {
  mutable candidates : int;
  mutable dominated : int;
  mutable duplicates : int;
  mutable capped : int;
  mutable checks : int;
}

let fresh_stats () =
  { candidates = 0; dominated = 0; duplicates = 0; capped = 0; checks = 0 }

let merge_stats acc s =
  acc.candidates <- acc.candidates + s.candidates;
  acc.dominated <- acc.dominated + s.dominated;
  acc.duplicates <- acc.duplicates + s.duplicates;
  acc.capped <- acc.capped + s.capped;
  acc.checks <- acc.checks + s.checks

let default_capacity = 10

(* Registry mirrors of the per-run stats record: the record stays the
   cheap always-on API; the counters feed [--metrics-out] and the bench
   summary. Updated once per [prune] call, not per candidate. *)
module M = Tka_obs.Metrics

let m_candidates = M.Counter.make "engine.candidate_sets"
let m_dominated = M.Counter.make "engine.sets_pruned"
let m_duplicates = M.Counter.make "engine.duplicate_sets"
let m_capped = M.Counter.make "engine.capacity_evictions"
let m_checks = M.Counter.make "engine.dominance_checks"

let log_src = Tka_obs.Log.Src.create "ilist" ~doc:"I-list pruning"

(* Dedupe-table sizing is logged once (first call) at debug so the
   alloc-hotspot workflow can confirm the pre-size took effect. *)
let logged_size = ref false

let prune ?(capacity = default_capacity) ~interval ~stats entries =
  match entries with
  | [] -> []
  | [ e ] when capacity >= 1 ->
    (* A lone candidate cannot be a duplicate or dominated (dominance
       is only ever checked against already-kept entries) and fits any
       positive capacity, so the answer is the input — skip the dedupe
       table, the order array and the peak-prefilter arrays. Small
       cones take this path for most victims, and those allocations
       were the bulk of their prune cost. Stats/metrics accounting is
       identical to the general path: one candidate, no duplicates,
       no dominance checks, nothing capped. *)
    stats.candidates <- stats.candidates + 1;
    if M.is_enabled () then M.Counter.add m_candidates 1;
    [ e ]
  | entries ->
  let c0 = stats.candidates
  and d0 = stats.dominated
  and u0 = stats.duplicates
  and p0 = stats.capped
  and k0 = stats.checks in
  (* dedupe identical coupling sets (same set => same envelope); the
     sets key the table directly (FNV over the sorted members) so no
     comma-joined string is built per candidate, and the table is
     pre-sized to the candidate count to avoid rehash-and-copy churn *)
  let size = max 16 (List.length entries) in
  if not !logged_size then begin
    logged_size := true;
    Tka_obs.Log.debug log_src (fun m ->
        m "dedupe table pre-sized" ~fields:[ Tka_obs.Log.int "initial_size" size ])
  end;
  let by_set : unit Coupling_set.Tbl.t = Coupling_set.Tbl.create size in
  let deduped =
    List.filter
      (fun e ->
        stats.candidates <- stats.candidates + 1;
        if Coupling_set.Tbl.mem by_set e.couplings then begin
          stats.duplicates <- stats.duplicates + 1;
          false
        end
        else begin
          Coupling_set.Tbl.replace by_set e.couplings ();
          true
        end)
      entries
  in
  (* One objective-descending sort into an array (index tie-break keeps
     the sort stable); every later step indexes this array instead of
     re-walking lists. *)
  let arr = Array.of_list deduped in
  let n = Array.length arr in
  let order = Array.init n (fun i -> i) in
  Array.sort
    (fun i j ->
      let c = Float.compare arr.(j).objective arr.(i).objective in
      if c <> 0 then c else Int.compare i j)
    order;
  (* Prescreen: entries far down the objective order cannot enter the
     capacity-bounded result, and the pairwise dominance scan on large
     PWL envelopes is the expensive part — truncate first (counted as
     capped, never silent). *)
  let prescreen = 3 * capacity in
  let scan_n =
    if n <= prescreen then n
    else begin
      stats.capped <- stats.capped + (n - prescreen);
      prescreen
    end
  in
  (* Objective-descending scan: an entry can only be dominated by one
     with an objective at least as large (Theorem 1), i.e. by an entry
     already kept. The envelope peaks (memoised inside the waveform, so
     each envelope folds its ordinates at most once in its lifetime)
     are staged into a flat array as the cheap prefilter ruling out
     most pairs before the two-cursor dominance scan. *)
  let kept = if scan_n = 0 then [||] else Array.make scan_n arr.(order.(0)) in
  let kept_peak = Array.make scan_n 0. in
  let kept_n = ref 0 in
  let eps = Tka_util.Float_cmp.default_eps in
  for oi = 0 to scan_n - 1 do
    let e = arr.(order.(oi)) in
    let pe = Tka_waveform.Envelope.peak e.envelope in
    let dominated = ref false in
    let ki = ref (!kept_n - 1) in
    (* kept is scanned newest-first, matching the prepend-list scan *)
    while (not !dominated) && !ki >= 0 do
      if
        kept_peak.(!ki) >= pe -. eps
        && begin
             stats.checks <- stats.checks + 1;
             Dominance.dominates ~interval kept.(!ki).envelope e.envelope
           end
      then dominated := true
      else decr ki
    done;
    if !dominated then stats.dominated <- stats.dominated + 1
    else begin
      kept.(!kept_n) <- e;
      kept_peak.(!kept_n) <- pe;
      incr kept_n
    end
  done;
  let kn = !kept_n in
  let take =
    if kn > capacity then begin
      stats.capped <- stats.capped + (kn - capacity);
      capacity
    end
    else kn
  in
  let result = Array.to_list (Array.sub kept 0 take) in
  if M.is_enabled () then begin
    M.Counter.add m_candidates (stats.candidates - c0);
    M.Counter.add m_dominated (stats.dominated - d0);
    M.Counter.add m_duplicates (stats.duplicates - u0);
    M.Counter.add m_capped (stats.capped - p0);
    M.Counter.add m_checks (stats.checks - k0)
  end;
  result

let best = function [] -> None | e :: _ -> Some e
