(** The dominance partial order on noise envelopes (Section 3.2).

    Envelope [A] dominates [B] at a victim when [A] encapsulates [B]
    over the victim's dominance interval; by Theorem 1, extending a
    dominated aggressor set can never produce more delay noise than
    extending the dominating one, so dominated sets are pruned from the
    enumeration. *)

val interval :
  victim:Tka_waveform.Transition.t -> Tka_util.Interval.t
(** The dominance interval of a victim transition. Its lower end is the
    noiseless [t50] (a pulse ending earlier cannot create delay noise);
    its upper end is [t50] plus the per-stage saturation bound
    ({!Tka_noise.Victim_noise.saturation_slews} slews) — a sound upper
    bound on where the noisy crossing can land, slightly padded. *)

val dominates :
  interval:Tka_util.Interval.t ->
  Tka_waveform.Envelope.t ->
  Tka_waveform.Envelope.t ->
  bool
(** [dominates ~interval a b]: [a] encapsulates [b] on [interval]. A
    (non-strict) partial order: reflexive, transitive, antisymmetric up
    to envelope equality on the interval. *)

val mutually_undominated :
  interval:Tka_util.Interval.t ->
  Tka_waveform.Envelope.t ->
  Tka_waveform.Envelope.t ->
  bool
(** Neither dominates the other (envelopes that cross, like A and B in
    Fig. 6). *)
