module N = Tka_circuit.Netlist
module CN = Tka_noise.Coupled_noise

type t = int list (* sorted, duplicate-free *)

type elt = int

let empty = []
let singleton c = [ c ]

let of_list cs = List.sort_uniq Int.compare cs
let to_list t = t

let cardinality = List.length
let mem c t = List.exists (Int.equal c) t

let rec union a b =
  match (a, b) with
  | [], x | x, [] -> x
  | ha :: ta, hb :: tb ->
    if ha < hb then ha :: union ta b
    else if hb < ha then hb :: union a tb
    else ha :: union ta tb

let add c t = union [ c ] t

let rec inter a b =
  match (a, b) with
  | [], _ | _, [] -> []
  | ha :: ta, hb :: tb ->
    if ha < hb then inter ta b
    else if hb < ha then inter a tb
    else ha :: inter ta tb

let rec diff a b =
  match (a, b) with
  | [], _ -> []
  | x, [] -> x
  | ha :: ta, hb :: tb ->
    if ha < hb then ha :: diff ta b
    else if hb < ha then diff a tb
    else diff ta tb

let disjoint a b = inter a b = []

let rec subset a b =
  match (a, b) with
  | [], _ -> true
  | _ :: _, [] -> false
  | ha :: ta, hb :: tb ->
    if ha < hb then false else if hb < ha then subset a tb else subset ta tb

let equal = List.equal Int.equal
let compare = List.compare Int.compare

let hash_key t =
  match t with
  | [] -> ""
  | _ -> String.concat "," (List.map string_of_int t)

let fold f t acc = List.fold_left (fun acc c -> f c acc) acc t
let iter = List.iter
let exists = List.exists

let contains_fn t d = mem (CN.directed_id d) t
let excludes_fn t d = not (mem (CN.directed_id d) t)

let pad ~universe ~target t =
  let rec go acc next needed =
    if needed = 0 then Some acc
    else if next >= universe then None
    else if mem next acc then go acc (next + 1) needed
    else go (add next acc) (next + 1) (needed - 1)
  in
  let needed = target - cardinality t in
  if needed < 0 then None else go t 0 needed

let pp ppf t =
  Format.fprintf ppf "{%s}" (String.concat "," (List.map string_of_int t))

let describe nl t =
  let one id =
    let d = CN.of_directed_id nl id in
    let c = N.coupling nl d.CN.dc_coupling in
    Printf.sprintf "%s->%s(%.4g)" (N.net nl d.CN.dc_aggressor).N.net_name
      (N.net nl d.CN.dc_victim).N.net_name c.N.coupling_cap
  in
  String.concat ", " (List.map one t)
