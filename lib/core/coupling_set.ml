module N = Tka_circuit.Netlist
module CN = Tka_noise.Coupled_noise

(* Sorted, duplicate-free int array. The former representation was a
   sorted int list; the struct-of-arrays refactor packs the members
   into one flat array so a k-set costs one block (k words + header)
   instead of k cons cells, membership is a branch-light binary search,
   and the merge operations write straight into pre-sized arrays. The
   observable semantics (ordering, [hash_key], comparison) are
   unchanged — test/test_topk.ml checks the round-trip against a
   reference list implementation. *)
type t = int array

type elt = int

let empty = [||]
let singleton c = [| c |]

let of_list cs = Array.of_list (List.sort_uniq Int.compare cs)
let to_list = Array.to_list

let cardinality = Array.length

let mem c t =
  let n = Array.length t in
  if n = 0 then false
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 0 do
      let mid = (!lo + !hi) / 2 in
      if t.(mid) < c then lo := mid + 1 else hi := mid
    done;
    t.(!lo) = c
  end

(* Two-cursor merge into a scratch array trimmed to the written
   length. Sets are tiny (≤ k ≈ 75), so the scratch is stack-sized. *)
let union a b =
  let na = Array.length a and nb = Array.length b in
  if na = 0 then b
  else if nb = 0 then a
  else begin
    let out = Array.make (na + nb) 0 in
    let i = ref 0 and j = ref 0 and m = ref 0 in
    while !i < na && !j < nb do
      let x = a.(!i) and y = b.(!j) in
      if x < y then (out.(!m) <- x; incr i)
      else if y < x then (out.(!m) <- y; incr j)
      else (out.(!m) <- x; incr i; incr j);
      incr m
    done;
    while !i < na do out.(!m) <- a.(!i); incr i; incr m done;
    while !j < nb do out.(!m) <- b.(!j); incr j; incr m done;
    if !m = na + nb then out else Array.sub out 0 !m
  end

(* The hot constructor on the engine's extension path: one element
   spliced into a fresh array, no intermediate set. *)
let add c t =
  let n = Array.length t in
  if mem c t then t
  else begin
    let out = Array.make (n + 1) c in
    let i = ref 0 in
    while !i < n && t.(!i) < c do
      out.(!i) <- t.(!i);
      incr i
    done;
    Array.blit t !i out (!i + 1) (n - !i);
    out
  end

let inter a b =
  let na = Array.length a and nb = Array.length b in
  let out = Array.make (min na nb) 0 in
  let i = ref 0 and j = ref 0 and m = ref 0 in
  while !i < na && !j < nb do
    let x = a.(!i) and y = b.(!j) in
    if x < y then incr i
    else if y < x then incr j
    else (out.(!m) <- x; incr m; incr i; incr j)
  done;
  if !m = Array.length out then out else Array.sub out 0 !m

let diff a b =
  let na = Array.length a and nb = Array.length b in
  let out = Array.make na 0 in
  let i = ref 0 and j = ref 0 and m = ref 0 in
  while !i < na && !j < nb do
    let x = a.(!i) and y = b.(!j) in
    if x < y then (out.(!m) <- x; incr m; incr i)
    else if y < x then incr j
    else (incr i; incr j)
  done;
  while !i < na do out.(!m) <- a.(!i); incr m; incr i done;
  if !m = na then out else Array.sub out 0 !m

let disjoint a b =
  let na = Array.length a and nb = Array.length b in
  let i = ref 0 and j = ref 0 in
  let hit = ref false in
  while (not !hit) && !i < na && !j < nb do
    let x = a.(!i) and y = b.(!j) in
    if x < y then incr i else if y < x then incr j else hit := true
  done;
  not !hit

let subset a b =
  let na = Array.length a and nb = Array.length b in
  if na > nb then false
  else begin
    let i = ref 0 and j = ref 0 in
    let ok = ref true in
    while !ok && !i < na do
      if !j >= nb then ok := false
      else begin
        let x = a.(!i) and y = b.(!j) in
        if y < x then incr j
        else if x = y then (incr i; incr j)
        else ok := false
      end
    done;
    !ok
  end

let equal a b =
  Array.length a = Array.length b
  && begin
       let ok = ref true in
       let i = ref 0 and n = Array.length a in
       while !ok && !i < n do
         if a.(!i) <> b.(!i) then ok := false;
         incr i
       done;
       !ok
     end

(* Lexicographic, matching the previous [List.compare Int.compare]: a
   strict prefix sorts first. *)
let compare a b =
  let na = Array.length a and nb = Array.length b in
  let rec go i =
    if i >= na && i >= nb then 0
    else if i >= na then -1
    else if i >= nb then 1
    else
      let c = Int.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let hash_key t =
  match Array.length t with
  | 0 -> ""
  | _ ->
    String.concat "," (Array.to_list (Array.map string_of_int t))

(* FNV-1a folded over the members: an allocation-free stand-in for
   [hash_key] wherever the set itself can key the table. Injective
   inputs (sorted members) make collisions as unlikely as any 62-bit
   hash; equality is still checked by the table. *)
let hash t =
  let h = ref 0x64_9c_9e_66_9c_9e_64_9c in
  for i = 0 to Array.length t - 1 do
    h := (!h lxor t.(i)) * 0x100000001b3
  done;
  !h land max_int

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

let fold f t acc = Array.fold_left (fun acc c -> f c acc) acc t
let iter = Array.iter
let exists = Array.exists

let contains_fn t d = mem (CN.directed_id d) t
let excludes_fn t d = not (mem (CN.directed_id d) t)

let pad ~universe ~target t =
  let rec go acc next needed =
    if needed = 0 then Some acc
    else if next >= universe then None
    else if mem next acc then go acc (next + 1) needed
    else go (add next acc) (next + 1) (needed - 1)
  in
  let needed = target - cardinality t in
  if needed < 0 then None else go t 0 needed

let pp ppf t =
  Format.fprintf ppf "{%s}" (hash_key t)

let describe nl t =
  let one id =
    let d = CN.of_directed_id nl id in
    let c = N.coupling nl d.CN.dc_coupling in
    Printf.sprintf "%s->%s(%.4g)" (N.net nl d.CN.dc_aggressor).N.net_name
      (N.net nl d.CN.dc_victim).N.net_name c.N.coupling_cap
  in
  String.concat ", " (List.map one (to_list t))
