(** Choosing a "good" value of k — the paper's future-work item.

    "Future work includes ... finding a 'good' value of k for
    reasonably fixing noise violations in a design." This module
    implements two standard answers on top of the exact top-k curves:

    - {b coverage}: the smallest k whose top-k set accounts for a given
      fraction of the total delay noise (addition: captures; elimination:
      recovers);
    - {b knee}: the diminishing-returns point of the curve (maximum
      distance from the chord connecting its endpoints — a discrete
      Kneedle). *)

type curve_point = {
  kv_k : int;
  kv_delay : float;  (** exact evaluated circuit delay *)
  kv_fraction : float;  (** of total delay noise captured / recovered *)
}

type recommendation = {
  kv_coverage_k : int option;
      (** smallest k reaching the requested coverage, if any sampled k does *)
  kv_knee_k : int;  (** diminishing-returns k *)
  kv_curve : curve_point list;
}

val sample_ks : kmax:int -> int list
(** Sampling schedule used by the analyses: every k up to 10, then
    every 5th up to [kmax]. *)

val addition :
  ?coverage:float -> ?kmax:int -> Tka_circuit.Topo.t -> recommendation
(** [addition topo] runs the top-k addition analysis (default
    [kmax = 30], [coverage = 0.8]) and recommends k values. *)

val elimination :
  ?coverage:float -> ?kmax:int -> Tka_circuit.Topo.t -> recommendation

val knee_of_curve : (int * float) list -> int
(** The raw knee finder: x of the point farthest below/above the chord
    between first and last points. Raises [Invalid_argument] on fewer
    than 2 points. *)
