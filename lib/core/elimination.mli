(** Top-k aggressor {e elimination} sets (Section 3.4).

    Given the fully noisy analysis, the top-k elimination set is the
    set of k couplings whose removal (shielding, spacing) reduces
    circuit delay the most — "which k fixes buy the most". Dual of
    {!Addition}: the engine starts from noisy timing windows and
    subtracts candidate envelopes from the victim's total noise
    envelope. *)

type t = {
  result : Engine.result;
  topo : Tka_circuit.Topo.t;
  memo : Tka_noise.Envelope_builder.memo;
      (** shared envelope cache for the exact re-ranking — see
          {!Addition.t}; sequential use only *)
  dual : Engine.result;
      (** the addition-mode enumeration of the same circuit — the
          paper's dual problem. Strong noise contributors are prime
          removal candidates, and the addition objective sees the
          window-feedback amplification a first-order removal benefit
          misses; evaluation picks the better of the two per k. *)
}

val compute :
  ?capacity:int ->
  ?use_pseudo:bool ->
  ?use_higher_order:bool ->
  ?filter:Tka_filter.Mode.t ->
  ?fixpoint:Tka_noise.Iterate.t ->
  ?victim_cache:(Engine.mode -> Engine.victim_cache option) ->
  k:int ->
  Tka_circuit.Topo.t ->
  t
(** Run both dual enumerations (sharing one all-aggressor fixpoint,
    which [fixpoint] can supply precomputed). [victim_cache] supplies
    the per-mode result cache of the incremental layer ([Tka_incr]);
    each engine run is keyed separately because the two modes read
    different windows. *)

val set : t -> int -> Coupling_set.t option
(** The elimination engine's own top-i pick. *)

val dual_set : t -> int -> Coupling_set.t option
(** The dual (addition-ranked) top-i candidate. *)

val candidates : t -> int -> Coupling_set.t list
(** All candidates considered for exact re-ranking at cardinality i:
    the elimination engine's retained sink entries plus the dual
    pick, deduplicated. *)

val estimated_delay : t -> int -> float
(** Engine estimate: noisy delay − predicted benefit. *)

val best_choice : t -> int -> (Coupling_set.t * float) option
(** The better of {!set} and {!dual_set} for cardinality i, with its
    exact evaluated delay. *)

val evaluate : t -> int -> float
(** Exact circuit delay with the better of {!set} and {!dual_set}
    removed (full iterative analysis of everything else). Falls back
    to the all-aggressor delay when no set exists. *)

val evaluate_set : Tka_circuit.Topo.t -> Coupling_set.t -> float

val evaluate_curve :
  t -> ks:int list -> (int * Coupling_set.t * float) list
(** Exact delays for the requested cardinalities (sorted, deduplicated),
    with a monotone repair: if the engine's top-k set evaluates worse
    than the top-(k-1) choice, the previous set padded by one coupling
    replaces it (a superset is always at least as strong), so the
    reported curve is monotone like the paper's Table 2. *)

val noiseless_delay : t -> float
val all_aggressor_delay : t -> float
val runtime : t -> float
(** Enumeration CPU time, both engines. *)
