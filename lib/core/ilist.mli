(** Irredundant lists of candidate aggressor sets (Section 3.2/3.3).

    An entry pairs a coupling set with its combined noise envelope at
    the victim currently being processed and the resulting objective
    value (delay noise for the addition analysis, noise reduction for
    elimination). [I-list_i] holds the non-dominated entries of
    cardinality [i].

    Pruning exploits Theorem 1: entries are sorted by decreasing
    objective, and an entry is dropped when an already-kept entry's
    envelope encapsulates its envelope over the victim's dominance
    interval. A hard capacity bound keeps the worst case polynomial;
    hitting it is counted in {!stats} and reported by the benchmark
    harness (never silent). *)

type entry = {
  couplings : Coupling_set.t;
  envelope : Tka_waveform.Envelope.t;  (** combined, at the current victim *)
  objective : float;  (** what the algorithm maximises at this victim *)
}

type stats = {
  mutable candidates : int;  (** entries offered to pruning *)
  mutable dominated : int;  (** entries removed by dominance *)
  mutable duplicates : int;  (** identical coupling sets merged *)
  mutable capped : int;  (** entries dropped by the capacity bound *)
  mutable checks : int;  (** pairwise dominance tests actually run *)
}

val fresh_stats : unit -> stats
val merge_stats : stats -> stats -> unit
(** [merge_stats acc s] accumulates [s] into [acc]. *)

val default_capacity : int
(** 10 entries per cardinality. *)

val prune :
  ?capacity:int ->
  interval:Tka_util.Interval.t ->
  stats:stats ->
  entry list ->
  entry list
(** Deduplicate, sort by decreasing objective, drop dominated entries,
    enforce capacity. The result is the irredundant list (objective-
    descending). When {!Tka_obs.Metrics} is enabled, the per-call stats
    deltas are also accumulated into the [engine.*] registry counters
    ([candidate_sets], [sets_pruned], [duplicate_sets],
    [capacity_evictions], [dominance_checks]). Empty and singleton
    inputs short-circuit without allocating the dedupe/prefilter
    machinery; results and stats are exactly those of the general
    path. *)

val best : entry list -> entry option
(** Highest objective (the head after {!prune}). *)
