module Topo = Tka_circuit.Topo
module Iterate = Tka_noise.Iterate
module Engine = Tka_topk.Engine
module Elimination = Tka_topk.Elimination
module Metrics = Tka_obs.Metrics
module Trace = Tka_obs.Trace
module Log = Tka_obs.Log
module J = Tka_obs.Jsonx

let log_src = Log.Src.create "incr" ~doc:"incremental re-analysis engine"
let c_hits = Metrics.Counter.make "incr.cache_hits"
let c_misses = Metrics.Counter.make "incr.cache_misses"
let c_dirty = Metrics.Counter.make "incr.dirty_nets"

type t = { a_config : Engine.config; mutable a_cache : Cache.t }

type run_stats = { rs_hits : int; rs_misses : int }

let create ?(capacity = Tka_topk.Ilist.default_capacity) ?(use_pseudo = true)
    ?(use_higher_order = true) ?(filter = Tka_filter.Mode.Off) ~k () =
  {
    a_config = { Engine.k; capacity; use_pseudo; use_higher_order; filter };
    a_cache = Cache.create ();
  }

let with_shared_cache ?(capacity = Tka_topk.Ilist.default_capacity)
    ?(use_pseudo = true) ?(use_higher_order = true)
    ?(filter = Tka_filter.Mode.Off) ~k ~cache () =
  {
    a_config = { Engine.k; capacity; use_pseudo; use_higher_order; filter };
    a_cache = cache;
  }

let config t = t.a_config
let cache t = t.a_cache

let run ?fixpoint t topo =
  Trace.with_span ~cat:"incr" "incr.run" @@ fun () ->
  let fix = match fixpoint with Some f -> f | None -> Iterate.run topo in
  let hits = Atomic.make 0 in
  let misses = Atomic.make 0 in
  let nl = Topo.netlist topo in
  let nn = Tka_circuit.Netlist.num_nets nl in
  (* Coupling-id coherence: cached values index the coupling table
     they were stored (or remapped) under. A universe mismatch means
     this netlist's ids name different physical caps — e.g. a
     checkpoint written after an edit, reloaded against the original
     design — so the whole cache must be flushed, not consulted. *)
  let u = Fingerprint.universe nl in
  (match Cache.universe t.a_cache with
  | Some u' when not (Int64.equal u' u) ->
    Log.warn log_src (fun m ->
        m
          ~fields:
            [
              Log.str "cached" (Printf.sprintf "%Lx" u');
              Log.str "netlist" (Printf.sprintf "%Lx" u);
            ]
          "coupling universe mismatch: flushing result cache");
    Cache.clear t.a_cache
  | Some _ | None -> ());
  Cache.set_universe t.a_cache u;
  let view mode =
    let fp =
      Trace.with_span ~cat:"incr" "incr.fingerprint" (fun () ->
          Fingerprint.compute ~config:t.a_config ~mode ~fix topo)
    in
    (* Value hash of a published summary under content-stable coupling
       names: what a downstream victim actually consults. Memoised per
       net; races write the same boxed value, so duplicates are
       benign and the outcome is schedule-independent. *)
    let vh_memo : Fnv.t option array = Array.make nn None in
    let value_hash (s : Engine.cardinality_summary) =
      let h = Fnv.int Fnv.basis (Array.length s) in
      Array.fold_left
        (fun h entries ->
          List.fold_left
            (fun h (set, obj) ->
              let h =
                Tka_topk.Coupling_set.fold
                  (fun d h -> Fnv.int64 h fp.Fingerprint.fp_stable.(d))
                  set h
              in
              Fnv.float h obj)
            (Fnv.int h (List.length entries))
            entries)
        h s
    in
    let vh summary_of u =
      match vh_memo.(u) with
      | Some h -> h
      | None ->
        let h = value_hash (summary_of u) in
        vh_memo.(u) <- Some h;
        h
    in
    (* The victim's cache key: static signature ingredients plus the
       value hashes of the summaries its enumeration will consult —
       lower-level coupling partners (published summaries) and driver
       fanins (pseudo-aggressor sources). Same-or-higher-level
       partners are consulted through the direct-only memo, whose
       inputs are one hop of signatures: fp_hd. Computed once per
       victim at lookup and reused by the store. *)
    let key_memo : Fnv.t option array = Array.make nn None in
    let key summary_of v =
      let lv = Topo.net_level topo v in
      let h = Fnv.int64 (Fnv.int Fnv.basis 0xF1) fp.Fingerprint.fp_cfg in
      let h = Fnv.int64 h fp.Fingerprint.fp_sig.(v) in
      let h = Fnv.int h lv in
      let h =
        List.fold_left
          (fun h cid ->
            let c = Tka_circuit.Netlist.coupling nl cid in
            let p = Tka_circuit.Netlist.coupling_partner nl cid v in
            let h = Fnv.float h c.Tka_circuit.Netlist.coupling_cap in
            let h = Fnv.int64 h fp.Fingerprint.fp_sig.(p) in
            if Topo.net_level topo p < lv then
              Fnv.int64 (Fnv.int h 1) (vh summary_of p)
            else Fnv.int64 (Fnv.int h 2) fp.Fingerprint.fp_hd.(p))
          h
          (Tka_circuit.Netlist.couplings_of_net nl v)
      in
      let h =
        match Tka_circuit.Netlist.driver_gate nl v with
        | None -> Fnv.int h (-1)
        | Some g ->
          List.fold_left
            (fun h (pin, u) ->
              let h = Fnv.int (Fnv.string h pin) u in
              let h = Fnv.int64 h fp.Fingerprint.fp_sig.(u) in
              Fnv.int64 h (vh summary_of u))
            h g.Tka_circuit.Netlist.fanin
      in
      key_memo.(v) <- Some h;
      h
    in
    Some
      {
        Engine.vc_lookup =
          (fun ~summary_of v ->
            match Cache.find t.a_cache ~mode ~net:v ~key:(key summary_of v) with
            | Some cv ->
              Atomic.incr hits;
              Metrics.Counter.incr c_hits;
              Some cv
            | None ->
              Atomic.incr misses;
              Metrics.Counter.incr c_misses;
              None);
        vc_store =
          (fun v cv ->
            (* the engine stores only after a missed lookup, so the
               memoised key is present *)
            match key_memo.(v) with
            | Some key -> Cache.store t.a_cache ~mode ~net:v ~key cv
            | None -> ());
      }
  in
  let elim =
    Elimination.compute ~capacity:t.a_config.Engine.capacity
      ~use_pseudo:t.a_config.Engine.use_pseudo
      ~use_higher_order:t.a_config.Engine.use_higher_order
      ~filter:t.a_config.Engine.filter ~fixpoint:fix ~victim_cache:view
      ~k:t.a_config.Engine.k topo
  in
  let stats = { rs_hits = Atomic.get hits; rs_misses = Atomic.get misses } in
  Log.info log_src (fun m ->
      m
        ~fields:
          [
            Log.int "hits" stats.rs_hits;
            Log.int "misses" stats.rs_misses;
            Log.int "nets" nn;
          ]
        "incremental run: %d cache hit(s), %d miss(es)" stats.rs_hits
        stats.rs_misses);
  (elim, stats)

let apply t nl edits =
  Trace.with_span ~cat:"incr"
    ~args:[ ("edits", J.Int (List.length edits)) ]
    "incr.apply"
  @@ fun () ->
  let topo = Topo.create nl in
  let dirty = Dirty.count (Dirty.closure topo (Edit.touched_nets nl edits)) in
  Metrics.Counter.add c_dirty dirty;
  Log.info log_src (fun m ->
      m
        ~fields:[ Log.int "edits" (List.length edits); Log.int "dirty" dirty ]
        "applied %d edit(s): %d net(s) dirtied" (List.length edits) dirty);
  let nl', remap = Edit.apply nl edits in
  Cache.remap_couplings t.a_cache remap;
  (* the remapped values now index the edited netlist's coupling table *)
  Cache.set_universe t.a_cache (Fingerprint.universe nl');
  (nl', dirty)

let save_checkpoint t path = Cache.save t.a_cache path
let load_checkpoint t path = t.a_cache <- Cache.load path
