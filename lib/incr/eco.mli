(** The paper's loop, closed end to end: analyze → eliminate →
    mitigate → incrementally re-verify.

    {!run} computes the top-k elimination sets, applies the top
    [fix_k] set as a shielding edit ({!Edit.Remove_coupling} on each
    reported cap), then re-analyzes the edited design twice — from
    scratch and through the {!Analyzer} cache — timing both and
    checking the results are bit-identical. The report carries the
    speedup and the identity verdict; the bench harness and the
    [tka eco] subcommand serialise it as the [eco] section of
    [BENCH_topk.json]. *)

type rule = Rule_elim | Rule_dual | Rule_none
(** Which engine produced the applied fix set: the elimination rule,
    the dual (addition) rule after the elimination side had no set of
    the requested cardinality, or neither (no fix exists). *)

val rule_name : rule -> string
(** ["elim"], ["dual"] or ["none"] — the [rule] field of the JSON
    report. *)

type report = {
  eco_circuit : string;
  eco_k : int;
  eco_fix_k : int;
  eco_rule : rule;  (** which rule produced [eco_set] *)
  eco_set : Tka_topk.Coupling_set.t option;
      (** the applied elimination set ([None] if the design has no
          candidates — then no edit is applied and the "re-analysis"
          is a pure warm rerun) *)
  eco_edits : Edit.t list;
  eco_delay_noisy : float;  (** all-aggressor delay before the fix, ns *)
  eco_delay_fixed : float;  (** all-aggressor delay after the fix, ns *)
  eco_dirty_nets : int;  (** {!Dirty.closure} size of the edit *)
  eco_analysis_hits : int;
      (** victims the {e initial} analysis took from the cache — zero
          on a cold start, every victim on a checkpoint warm start *)
  eco_cache_hits : int;  (** victims reused by the incremental rerun *)
  eco_cache_misses : int;  (** victims re-enumerated *)
  eco_t_full_s : float;  (** from-scratch re-analysis wall time *)
  eco_t_incr_s : float;  (** incremental re-analysis wall time *)
  eco_t_warm_s : float;
      (** warm re-verify wall time: a second incremental run on the
          unchanged edited design, where every victim hits — the
          incremental floor (fixpoint + fingerprints + installation),
          i.e. what a checkpoint warm start costs *)
  eco_speedup : float;  (** [t_full / t_incr] *)
  eco_speedup_warm : float;  (** [t_full / t_warm] *)
  eco_identical : bool;
      (** bit-identity of both the incremental and the warm re-analysis
          against the from-scratch one *)
}

val results_identical : Tka_topk.Engine.result -> Tka_topk.Engine.result -> bool
(** Bitwise comparison of every semantic field: per-k choices (sets,
    objectives, sinks), retained sink candidates, pruning stats and
    the delay figures. [res_runtime] is excluded. *)

val elim_identical : Tka_topk.Elimination.t -> Tka_topk.Elimination.t -> bool
(** {!results_identical} on both dual engine results. *)

val run :
  ?k:int ->
  ?fix_k:int ->
  ?checkpoint:string ->
  Tka_circuit.Netlist.t ->
  report * Tka_topk.Elimination.t
(** [run nl] executes the loop ([k] defaults to 10, [fix_k] — the
    cardinality of the applied set — to 1). [checkpoint] names a cache
    file: loaded first when it exists (warm start), saved right after
    the initial analysis — before any edit remaps the cache to the
    edited coupling table, so a rerun on the same input design reuses
    it (see the universe guard in [docs/incremental.md]). Returns the
    report and the (incremental) analysis of the fixed design. *)

val report_json : report -> Tka_obs.Jsonx.t
(** The [eco] JSON section ([t_full_s], [t_incr_s], [speedup_incr],
    [identical], counters, delays). *)
