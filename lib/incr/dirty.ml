module N = Tka_circuit.Netlist
module Topo = Tka_circuit.Topo

let closure topo seeds =
  let nl = Topo.netlist topo in
  let mark = Array.make (N.num_nets nl) false in
  let rec go id =
    if not mark.(id) then begin
      mark.(id) <- true;
      List.iter go (N.fanout_nets nl id);
      List.iter
        (fun cid -> go (N.coupling_partner nl cid id))
        (N.couplings_of_net nl id)
    end
  in
  List.iter go seeds;
  mark

let count mark = Array.fold_left (fun acc d -> if d then acc + 1 else acc) 0 mark

let clean_levels topo mark =
  Array.fold_left
    (fun acc nets ->
      if Array.exists (fun nid -> mark.(nid)) nets then acc else acc + 1)
    0 (Topo.level_nets topo)
