(** Dirty-set propagation for incremental re-analysis.

    An edit changes the timing of the edited nets; wider (or narrower)
    switching windows change the noise those nets inject into their
    {e coupled neighbours}, whose own delay noise then propagates
    through {e their} fanout — the same feedback that motivates the
    iterative fixpoint of {!Tka_noise.Iterate}. The sound dirty set is
    therefore the closure of the touched nets under the union relation

    {v driver→fanout edges  ∪  coupling adjacency v}

    not the plain fanout cone ({!Tka_circuit.Topo.fanout_cone}): a net
    with no structural path from the edit can still see different noise
    through a coupling to the edit's fanout.

    The closure is an upper bound used for reporting (the
    [incr.dirty_nets] counter) and for the level-skipping argument in
    [docs/incremental.md]; the {e exact} per-net re-use decision is the
    fingerprint comparison of {!Fingerprint} — a net inside the closure
    whose inputs happen to be numerically unchanged still hits the
    cache. *)

val closure : Tka_circuit.Topo.t -> Tka_circuit.Netlist.net_id list -> bool array
(** [closure topo seeds]: [true] at every net reachable from a seed via
    fanout edges or coupling adjacency (seeds included). O(V + E + C). *)

val count : bool array -> int
(** Number of dirty nets. *)

val clean_levels : Tka_circuit.Topo.t -> bool array -> int
(** Number of topological levels containing no dirty net — the levels
    the cached sweep passes through with lookups only (see
    [docs/incremental.md]). *)
