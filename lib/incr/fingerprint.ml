module N = Tka_circuit.Netlist
module Topo = Tka_circuit.Topo
module TW = Tka_sta.Timing_window
module Analysis = Tka_sta.Analysis
module Delay_calc = Tka_sta.Delay_calc
module Iterate = Tka_noise.Iterate
module Engine = Tka_topk.Engine

type t = {
  fp_cfg : Fnv.t;
  fp_sig : Fnv.t array;
  fp_hd : Fnv.t array;
  fp_stable : Fnv.t array;
}

(* Bump when the hash inputs or the cached-record layout change: stale
   on-disk checkpoints then miss instead of corrupting results.
   v3: filter mode folded into the config hash, per-net implication
   values folded into signatures under logic filtering. *)
let version_salt = "tka-incr-v3"

let window h (w : TW.t) =
  let h = Fnv.float h w.TW.eat in
  let h = Fnv.float h w.TW.lat in
  let h = Fnv.float h w.TW.slew_early in
  Fnv.float h w.TW.slew_late

let config_hash ~(config : Engine.config) ~mode =
  let h = Fnv.string Fnv.basis version_salt in
  let h = Fnv.int h (match mode with Engine.Addition -> 0 | Engine.Elimination -> 1) in
  let h = Fnv.int h config.Engine.k in
  let h = Fnv.int h config.Engine.capacity in
  let h = Fnv.bool h config.Engine.use_pseudo in
  let h = Fnv.bool h config.Engine.use_higher_order in
  Fnv.int h (Tka_filter.Mode.to_int config.Engine.filter)

(* Content-stable names for directed couplings: victim/aggressor nets,
   capacitance bits and an occurrence rank among parallel same-cap
   couplings of the same net pair (ranked in id order, which
   Transform.map preserves). Invariant under the id compaction a
   removal causes, so summary values hash identically across edits.
   The directed convention matches Coupled_noise: side 0 attacks the
   lower-numbered net. *)
let stable_ids nl =
  let nc = N.num_couplings nl in
  let seen : (int * int * int64, int) Hashtbl.t = Hashtbl.create (2 * nc) in
  let out = Array.make (2 * nc) Fnv.basis in
  for cid = 0 to nc - 1 do
    let c = N.coupling nl cid in
    let lo = min c.N.net_a c.N.net_b and hi = max c.N.net_a c.N.net_b in
    let bits = Int64.bits_of_float c.N.coupling_cap in
    let key = (lo, hi, bits) in
    let rank = Option.value (Hashtbl.find_opt seen key) ~default:0 in
    Hashtbl.replace seen key (rank + 1);
    let h = Fnv.int (Fnv.int Fnv.basis lo) hi in
    let h = Fnv.int64 h bits in
    let h = Fnv.int h rank in
    out.((2 * cid) + 0) <- Fnv.int h 0;
    out.((2 * cid) + 1) <- Fnv.int h 1
  done;
  out

(* Hash of the coupling table itself — which physical cap each id
   names. Cached values carry raw directed ids, so they may only be
   interpreted against the exact universe they were stored under. *)
let universe nl =
  let nc = N.num_couplings nl in
  let h = Fnv.int Fnv.basis nc in
  let h = ref h in
  for cid = 0 to nc - 1 do
    let c = N.coupling nl cid in
    let lo = min c.N.net_a c.N.net_b and hi = max c.N.net_a c.N.net_b in
    h := Fnv.float (Fnv.int (Fnv.int !h lo) hi) c.N.coupling_cap
  done;
  !h

let compute ~config ~mode ~fix topo =
  let nl = Topo.netlist topo in
  let nn = N.num_nets nl in
  let base_w = Analysis.window fix.Iterate.base in
  let noisy_w = Analysis.window fix.Iterate.analysis in
  let cfg = config_hash ~config ~mode in
  (* Under logic filtering a victim's enumeration also reads the
     implication values of itself and its aggressors — global facts
     about the fanin logic that a remote edit (e.g. a cell swap deep
     upstream) can change without touching this net's electrical
     signature or windows. Folding each net's own implication value
     into its signature makes such edits miss instead of replaying a
     cached result that was filtered under stale logic. *)
  let impl =
    match config.Engine.filter with
    | Tka_filter.Mode.Logic -> Some (Tka_filter.Implication.analyze topo)
    | Tka_filter.Mode.Off | Tka_filter.Mode.Window -> None
  in
  let impl_hash h v =
    match impl with
    | None -> h
    | Some values -> (
        match values.(v) with
        | Tka_filter.Implication.Const b -> Fnv.bool (Fnv.int h 0xC0) b
        | Tka_filter.Implication.Fn { root; at0; at1 } ->
          Fnv.bool (Fnv.bool (Fnv.int (Fnv.int h 0xC1) root) at0) at1
        | Tka_filter.Implication.Mixed -> Fnv.int h 0xC2)
  in
  (* Electrical signature: everything the enumeration reads about the
     net itself (as a victim or as a directly-enumerated aggressor).
     Addition never reads the noisy timing — it aligns aggressors in
     noiseless windows — so its signature stops at the base window and
     survives the noisy-window ripple an ECO edit causes. *)
  let signature v =
    let n = N.net nl v in
    let h = Fnv.int Fnv.basis v in
    let h = Fnv.float h n.N.wire_cap in
    let h = Fnv.float h n.N.wire_res in
    let h = Fnv.float h (N.ground_cap nl v) in
    let h = Fnv.float h (N.total_cap nl v) in
    let h = Fnv.float h (Delay_calc.holding_resistance nl v) in
    let h = Fnv.bool h n.N.is_output in
    let h =
      match N.driver_gate nl v with
      | None -> Fnv.int h (-1)
      | Some g ->
        let c = g.N.cell in
        let h = Fnv.string h c.Tka_cell.Cell.name in
        let h = Fnv.float h c.Tka_cell.Cell.intrinsic_delay in
        let h = Fnv.float h c.Tka_cell.Cell.drive_resistance in
        let h = Fnv.float h c.Tka_cell.Cell.intrinsic_slew in
        let h = Fnv.float h c.Tka_cell.Cell.slew_resistance in
        let h = Fnv.float h (Delay_calc.stage_delay nl g.N.gate_id) in
        List.fold_left
          (fun h (pin, u) -> Fnv.int (Fnv.string h pin) u)
          h g.N.fanin
    in
    let h = window h (base_w v) in
    let h = impl_hash h v in
    match mode with
    | Engine.Addition -> h
    | Engine.Elimination ->
      Fnv.float (window h (noisy_w v)) (Iterate.net_noise fix v)
  in
  let sg = Array.init nn signature in
  (* Direct-only hash: what a memoised direct enumeration of the net
     reads — its own signature and its primary aggressors, one hop. *)
  let direct a =
    let h = Fnv.int64 (Fnv.int Fnv.basis 0xD1) cfg in
    let h = Fnv.int64 h sg.(a) in
    List.fold_left
      (fun h cid ->
        let c = N.coupling nl cid in
        let p = N.coupling_partner nl cid a in
        Fnv.int64 (Fnv.float h c.N.coupling_cap) sg.(p))
      h
      (N.couplings_of_net nl a)
  in
  { fp_cfg = cfg; fp_sig = sg; fp_hd = Array.init nn direct; fp_stable = stable_ids nl }
