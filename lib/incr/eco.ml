module N = Tka_circuit.Netlist
module Topo = Tka_circuit.Topo
module Engine = Tka_topk.Engine
module Elimination = Tka_topk.Elimination
module CS = Tka_topk.Coupling_set
module Ilist = Tka_topk.Ilist
module J = Tka_obs.Jsonx
module Log = Tka_obs.Log

let log_src = Log.Src.create "eco" ~doc:"incremental ECO loop"

type rule = Rule_elim | Rule_dual | Rule_none

let rule_name = function
  | Rule_elim -> "elim"
  | Rule_dual -> "dual"
  | Rule_none -> "none"

type report = {
  eco_circuit : string;
  eco_k : int;
  eco_fix_k : int;
  eco_rule : rule;
  eco_set : CS.t option;
  eco_edits : Edit.t list;
  eco_delay_noisy : float;
  eco_delay_fixed : float;
  eco_dirty_nets : int;
  eco_analysis_hits : int;
  eco_cache_hits : int;
  eco_cache_misses : int;
  eco_t_full_s : float;
  eco_t_incr_s : float;
  eco_t_warm_s : float;
  eco_speedup : float;
  eco_speedup_warm : float;
  eco_identical : bool;
}

(* Bitwise equality on every semantic field of an engine result —
   the incremental correctness contract. Runtime is excluded (it is
   the one field meant to differ). *)
let feq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let choice_eq (a : Engine.choice) (b : Engine.choice) =
  CS.equal a.Engine.ch_set b.Engine.ch_set
  && feq a.Engine.ch_objective b.Engine.ch_objective
  && a.Engine.ch_sink = b.Engine.ch_sink

let stats_eq (a : Ilist.stats) (b : Ilist.stats) =
  a.Ilist.candidates = b.Ilist.candidates
  && a.Ilist.dominated = b.Ilist.dominated
  && a.Ilist.duplicates = b.Ilist.duplicates
  && a.Ilist.capped = b.Ilist.capped
  && a.Ilist.checks = b.Ilist.checks

let results_identical (a : Engine.result) (b : Engine.result) =
  a.Engine.res_mode = b.Engine.res_mode
  && Array.length a.Engine.res_per_k = Array.length b.Engine.res_per_k
  && Array.for_all2
       (fun x y ->
         match (x, y) with
         | None, None -> true
         | Some x, Some y -> choice_eq x y
         | _ -> false)
       a.Engine.res_per_k b.Engine.res_per_k
  && Array.for_all2
       (fun x y -> List.length x = List.length y && List.for_all2 choice_eq x y)
       a.Engine.res_top b.Engine.res_top
  && stats_eq a.Engine.res_stats b.Engine.res_stats
  && feq a.Engine.res_noiseless_delay b.Engine.res_noiseless_delay
  && feq a.Engine.res_noisy_delay b.Engine.res_noisy_delay

let elim_identical (a : Elimination.t) (b : Elimination.t) =
  results_identical a.Elimination.result b.Elimination.result
  && results_identical a.Elimination.dual b.Elimination.dual

let removal_edits set =
  CS.to_list set
  |> List.map (fun d -> d / 2)
  |> List.sort_uniq Int.compare
  |> List.map (fun c -> Edit.Remove_coupling c)

let run ?(k = 10) ?(fix_k = 1) ?checkpoint nl =
  if fix_k < 1 || fix_k > k then invalid_arg "Eco.run: fix_k outside [1, k]";
  let az = Analyzer.create ~k () in
  (match checkpoint with
  | Some path when Sys.file_exists path -> (
    (* a malformed or old-format checkpoint is a cold start, not an
       error — the cache only ever accelerates *)
    match Analyzer.load_checkpoint az path with
    | () ->
      Log.info log_src (fun m ->
          m
            ~fields:[ Log.str "path" path; Log.int "entries" (Cache.size (Analyzer.cache az)) ]
            "warm-starting from checkpoint %s" path)
    | exception Failure msg ->
      Log.warn log_src (fun m ->
          m ~fields:[ Log.str "path" path ] "ignoring stale checkpoint: %s" msg))
  | _ -> ());
  (* 1. analyze: the paper's top-k elimination sets *)
  let topo = Topo.create nl in
  let elim0, st0 = Analyzer.run az topo in
  (* checkpoint now, before any edit remaps the cache to the edited
     coupling table: this is the state a rerun on the same input
     design can reuse (the edited-universe cache would be flushed by
     the universe guard on reload) *)
  (match checkpoint with
  | Some path -> Analyzer.save_checkpoint az path
  | None -> ());
  (* Prefer the elimination-side set; fall back to the dual (addition)
     engine's, and *say which rule won* — a silent fallback made a
     dual-only fix indistinguishable from an elimination one, and a
     None/None outcome indistinguishable from an empty fix. *)
  let set, rule =
    match Elimination.set elim0 fix_k with
    | Some _ as s -> (s, Rule_elim)
    | None -> (
      match Elimination.dual_set elim0 fix_k with
      | Some _ as s ->
        Log.info log_src (fun m ->
            m ~fields:[ Log.int "fix_k" fix_k ]
              "elimination rule produced no k=%d set; using the dual rule" fix_k);
        (s, Rule_dual)
      | None ->
        Log.warn log_src (fun m ->
            m ~fields:[ Log.int "fix_k" fix_k ] "no fix set exists at k=%d" fix_k);
        (None, Rule_none))
  in
  (* 2. mitigate: shield (remove) the reported couplings *)
  let edits = match set with Some s -> removal_edits s | None -> [] in
  let nl', dirty = Analyzer.apply az nl edits in
  let topo' = Topo.create nl' in
  (* 3. re-verify, from scratch and incrementally, and compare *)
  let wall = Tka_obs.Clock.now_s in
  let t0 = wall () in
  let full = Elimination.compute ~k topo' in
  let t_full = wall () -. t0 in
  let t0 = wall () in
  let incr, st = Analyzer.run az topo' in
  let t_incr = wall () -. t0 in
  (* warm re-verify: rerun on the unchanged edited design. Every
     victim hits, so this measures the incremental floor — fixpoint,
     fingerprints and cache installation — i.e. what a checkpoint
     warm start costs. *)
  let t0 = wall () in
  let warm, _ = Analyzer.run az topo' in
  let t_warm = wall () -. t0 in
  let report =
    {
      eco_circuit = N.name nl;
      eco_k = k;
      eco_fix_k = fix_k;
      eco_rule = rule;
      eco_set = set;
      eco_edits = edits;
      eco_delay_noisy = Elimination.all_aggressor_delay elim0;
      eco_delay_fixed = Elimination.all_aggressor_delay incr;
      eco_dirty_nets = dirty;
      eco_analysis_hits = st0.Analyzer.rs_hits;
      eco_cache_hits = st.Analyzer.rs_hits;
      eco_cache_misses = st.Analyzer.rs_misses;
      eco_t_full_s = t_full;
      eco_t_incr_s = t_incr;
      eco_t_warm_s = t_warm;
      eco_speedup = t_full /. Float.max t_incr 1e-9;
      eco_speedup_warm = t_full /. Float.max t_warm 1e-9;
      eco_identical = elim_identical full incr && elim_identical full warm;
    }
  in
  (report, incr)

let report_json r =
  J.Obj
    [
      ("circuit", J.Str r.eco_circuit);
      ("k", J.Int r.eco_k);
      ("fix_k", J.Int r.eco_fix_k);
      ("rule", J.Str (rule_name r.eco_rule));
      ( "set",
        match r.eco_set with
        | None -> J.Null
        | Some s -> J.List (List.map (fun d -> J.Int d) (CS.to_list s)) );
      ("edits", J.Int (List.length r.eco_edits));
      ("delay_noisy_ns", J.Float r.eco_delay_noisy);
      ("delay_fixed_ns", J.Float r.eco_delay_fixed);
      ("dirty_nets", J.Int r.eco_dirty_nets);
      ("analysis_hits", J.Int r.eco_analysis_hits);
      ("cache_hits", J.Int r.eco_cache_hits);
      ("cache_misses", J.Int r.eco_cache_misses);
      ("t_full_s", J.Float r.eco_t_full_s);
      ("t_incr_s", J.Float r.eco_t_incr_s);
      ("t_warm_s", J.Float r.eco_t_warm_s);
      ("speedup_incr", J.Float r.eco_speedup);
      ("speedup_warm", J.Float r.eco_speedup_warm);
      ("identical", J.Bool r.eco_identical);
    ]
