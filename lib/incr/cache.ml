module Engine = Tka_topk.Engine
module CS = Tka_topk.Coupling_set
module Ilist = Tka_topk.Ilist
module J = Tka_obs.Jsonx

type entry = { e_key : Fnv.t; e_cv : Engine.cached_victim }

type t = {
  tbl : (int * int, entry) Hashtbl.t; (* (mode tag, net id) *)
  mutex : Mutex.t;
  (* Hash of the coupling universe (id -> net pair + cap) the stored
     values' coupling ids index into. Summaries carry raw directed
     coupling ids, so an entry is only meaningful against the exact
     coupling table it was stored (or remapped) under — keys alone
     cannot catch a mismatch because they are deliberately id-free. *)
  mutable universe : Fnv.t option;
}

let mode_tag = function Engine.Addition -> 0 | Engine.Elimination -> 1

let create () =
  { tbl = Hashtbl.create 256; mutex = Mutex.create (); universe = None }

let clear t =
  Mutex.lock t.mutex;
  Hashtbl.reset t.tbl;
  t.universe <- None;
  Mutex.unlock t.mutex

let universe t = t.universe
let set_universe t u = t.universe <- Some u

let size t =
  Mutex.lock t.mutex;
  let n = Hashtbl.length t.tbl in
  Mutex.unlock t.mutex;
  n

let find t ~mode ~net ~key =
  Mutex.lock t.mutex;
  let e = Hashtbl.find_opt t.tbl (mode_tag mode, net) in
  Mutex.unlock t.mutex;
  match e with
  | Some e when Int64.equal e.e_key key -> Some e.e_cv
  | Some _ | None -> None

let store t ~mode ~net ~key cv =
  Mutex.lock t.mutex;
  Hashtbl.replace t.tbl (mode_tag mode, net) { e_key = key; e_cv = cv };
  Mutex.unlock t.mutex

(* ------------------------------------------------------------------ *)
(* Coupling-id renumbering                                            *)
(* ------------------------------------------------------------------ *)

exception Removed

(* [Some e'] with every directed id renumbered, [None] when the entry
   references a removed physical cap. *)
let remap_entry phys_map e =
  let directed d =
    match phys_map (d / 2) with
    | Some c' -> (2 * c') + (d land 1)
    | None -> raise Removed
  in
  let set s = CS.of_list (List.map directed (CS.to_list s)) in
  let summary (cs : Engine.cardinality_summary) : Engine.cardinality_summary =
    Array.map (List.map (fun (s, obj) -> (set s, obj))) cs
  in
  let cv (c : Engine.cached_victim) =
    {
      Engine.cv_summary = summary c.Engine.cv_summary;
      cv_out = Option.map summary c.Engine.cv_out;
      cv_stats = c.Engine.cv_stats;
      cv_direct =
        List.map (fun (a, s, st) -> (a, summary s, st)) c.Engine.cv_direct;
    }
  in
  match { e with e_cv = cv e.e_cv } with
  | e' -> Some e'
  | exception Removed -> None

let remap_couplings t phys_map =
  Mutex.lock t.mutex;
  let remapped =
    Hashtbl.fold (fun k e acc -> (k, remap_entry phys_map e) :: acc) t.tbl []
  in
  List.iter
    (fun (k, e) ->
      match e with
      | Some e -> Hashtbl.replace t.tbl k e
      | None -> Hashtbl.remove t.tbl k)
    remapped;
  Mutex.unlock t.mutex

let remapped_copy t phys_map =
  let t' = create () in
  Mutex.lock t.mutex;
  Hashtbl.iter
    (fun k e ->
      match remap_entry phys_map e with
      | Some e' -> Hashtbl.replace t'.tbl k e'
      | None -> ())
    t.tbl;
  Mutex.unlock t.mutex;
  t'

(* ------------------------------------------------------------------ *)
(* Checkpoint serialisation                                           *)
(* ------------------------------------------------------------------ *)

let format_name = "tka-incr-cache"
let format_version = 2

(* exact float round trip: IEEE-754 bits in hex *)
let float_hex f = Printf.sprintf "%016Lx" (Int64.bits_of_float f)

let hex_bits s =
  if String.length s <> 16 then failwith "Cache.load: bad float/key hex";
  match Int64.of_string_opt ("0x" ^ s) with
  | Some b -> b
  | None -> failwith "Cache.load: bad float/key hex"

let hex_float s = Int64.float_of_bits (hex_bits s)

let json_of_summary (cs : Engine.cardinality_summary) =
  J.List
    (Array.to_list cs
    |> List.map (fun entries ->
           J.List
             (List.map
                (fun (s, obj) ->
                  J.List
                    [
                      J.List (List.map (fun d -> J.Int d) (CS.to_list s));
                      J.Str (float_hex obj);
                    ])
                entries)))

let json_of_stats (st : Ilist.stats) =
  J.Obj
    [
      ("candidates", J.Int st.Ilist.candidates);
      ("dominated", J.Int st.Ilist.dominated);
      ("duplicates", J.Int st.Ilist.duplicates);
      ("capped", J.Int st.Ilist.capped);
      ("checks", J.Int st.Ilist.checks);
    ]

let json_of_entry ((mode, net), { e_key; e_cv }) =
  J.Obj
    [
      ("mode", J.Int mode);
      ("net", J.Int net);
      ("key", J.Str (Printf.sprintf "%016Lx" e_key));
      ("summary", json_of_summary e_cv.Engine.cv_summary);
      ( "out",
        match e_cv.Engine.cv_out with
        | None -> J.Null
        | Some s -> json_of_summary s );
      ("stats", json_of_stats e_cv.Engine.cv_stats);
      ( "direct",
        J.List
          (List.map
             (fun (a, s, st) ->
               J.List [ J.Int a; json_of_summary s; json_of_stats st ])
             e_cv.Engine.cv_direct) );
    ]

let fail fmt = Printf.ksprintf failwith fmt

let get_member name j =
  match J.member name j with
  | Some v -> v
  | None -> fail "Cache.load: missing field %S" name

let get_int = function J.Int i -> i | _ -> failwith "Cache.load: expected int"
let get_str = function J.Str s -> s | _ -> failwith "Cache.load: expected string"
let get_list = function J.List l -> l | _ -> failwith "Cache.load: expected list"

let summary_of_json j : Engine.cardinality_summary =
  get_list j
  |> List.map (fun entries ->
         get_list entries
         |> List.map (function
              | J.List [ ids; J.Str obj ] ->
                (CS.of_list (List.map get_int (get_list ids)), hex_float obj)
              | _ -> failwith "Cache.load: malformed summary entry"))
  |> Array.of_list

let stats_of_json j : Ilist.stats =
  let st = Ilist.fresh_stats () in
  st.Ilist.candidates <- get_int (get_member "candidates" j);
  st.Ilist.dominated <- get_int (get_member "dominated" j);
  st.Ilist.duplicates <- get_int (get_member "duplicates" j);
  st.Ilist.capped <- get_int (get_member "capped" j);
  st.Ilist.checks <- get_int (get_member "checks" j);
  st

let entry_of_json j =
  let mode = get_int (get_member "mode" j) in
  let net = get_int (get_member "net" j) in
  let key = hex_bits (get_str (get_member "key" j)) in
  let cv =
    {
      Engine.cv_summary = summary_of_json (get_member "summary" j);
      cv_out =
        (match get_member "out" j with
        | J.Null -> None
        | s -> Some (summary_of_json s));
      cv_stats = stats_of_json (get_member "stats" j);
      cv_direct =
        get_list (get_member "direct" j)
        |> List.map (function
             | J.List [ J.Int a; s; st ] ->
               (a, summary_of_json s, stats_of_json st)
             | _ -> failwith "Cache.load: malformed direct entry");
    }
  in
  ((mode, net), { e_key = key; e_cv = cv })

let save t path =
  Mutex.lock t.mutex;
  let entries =
    Hashtbl.fold (fun k e acc -> (k, e) :: acc) t.tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  Mutex.unlock t.mutex;
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc
        (J.to_string
           (J.Obj
              ([
                 ("format", J.Str format_name);
                 ("version", J.Int format_version);
               ]
              @
              match t.universe with
              | None -> []
              | Some u -> [ ("universe", J.Str (Printf.sprintf "%016Lx" u)) ])));
      output_char oc '\n';
      List.iter
        (fun e ->
          output_string oc (J.to_string (json_of_entry e));
          output_char oc '\n')
        entries);
  Sys.rename tmp path

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      (* the documented failure mode is [Failure], whatever is wrong
         with the file — a non-JSON line must not leak [Parse_error] *)
      let parse line =
        try J.of_string line
        with J.Parse_error m -> fail "Cache.load: %s: %s" path m
      in
      let header =
        try parse (input_line ic)
        with End_of_file -> fail "Cache.load: %s is empty" path
      in
      (match
         (J.member "format" header, J.member "version" header)
       with
      | Some (J.Str f), Some (J.Int v)
        when f = format_name && v = format_version ->
        ()
      | _ -> fail "Cache.load: %s is not a version-%d %s file" path format_version format_name);
      let t = create () in
      (match J.member "universe" header with
      | Some (J.Str u) -> t.universe <- Some (hex_bits u)
      | _ -> ());
      (try
         while true do
           let line = input_line ic in
           if String.trim line <> "" then begin
             let k, e = entry_of_json (parse line) in
             Hashtbl.replace t.tbl k e
           end
         done
       with End_of_file -> ());
      t)
