(** Content-addressed store of per-victim engine results.

    Maps [(mode, net)] to a {!Tka_topk.Engine.cached_victim} guarded by
    its {!Fingerprint} key: {!find} returns the record only when the
    caller's key matches the stored one, so a stale record behaves as a
    miss, never as wrong data. Domain-safe (one mutex; the engine's
    pool workers look up and store concurrently).

    {2 Coupling-id coherence}

    Stored coupling sets use {e directed} coupling ids
    ([2 * coupling + side], {!Tka_noise.Coupled_noise.directed_id}).
    Removing a physical cap compacts coupling ids, so after an edit the
    surviving records must be renumbered: {!remap_couplings} applies
    the old→new physical-id map from {!Edit.apply} to every stored set
    and drops records that reference a removed cap (such records could
    never be hit again — their victim's fingerprint changed — but their
    stale ids must not alias surviving couplings).

    Because keys are deliberately id-free, a key match alone cannot
    detect that stored ids index a {e different} coupling table — e.g.
    a checkpoint written after an edit and reloaded against the
    original design would alias compacted ids onto the wrong caps. The
    cache therefore records the {!Fingerprint.universe} hash of the
    coupling table its values are expressed in; {!Analyzer.run}
    flushes the cache when it does not match the analyzed netlist.

    {2 Checkpoint format}

    {!save}/{!load} use NDJSON (one JSON object per line, via
    {!Tka_obs.Jsonx}): a header line

    {v {"format":"tka-incr-cache","version":2,"universe":"c0ff..."} v}

    then one line per record. Floats are serialised as 16-hex-digit
    IEEE-754 bit patterns so the round trip is exact — the bit-identity
    contract survives the disk. See [docs/file-formats.md]. *)

type t

val create : unit -> t
val size : t -> int

val clear : t -> unit
(** Drop every record and the recorded universe. *)

val universe : t -> Fnv.t option
(** The coupling-universe hash the stored values are expressed in
    ([None] for a fresh cache). *)

val set_universe : t -> Fnv.t -> unit

val find :
  t ->
  mode:Tka_topk.Engine.mode ->
  net:Tka_circuit.Netlist.net_id ->
  key:Fnv.t ->
  Tka_topk.Engine.cached_victim option
(** The stored record, if present {e and} stored under an equal key. *)

val store :
  t ->
  mode:Tka_topk.Engine.mode ->
  net:Tka_circuit.Netlist.net_id ->
  key:Fnv.t ->
  Tka_topk.Engine.cached_victim ->
  unit
(** Insert or overwrite the record for [(mode, net)]. *)

val remap_couplings :
  t -> (Tka_circuit.Netlist.coupling_id -> Tka_circuit.Netlist.coupling_id option) -> unit
(** Renumber every stored directed coupling id through the physical-id
    map ([None] = removed); records referencing a removed cap are
    dropped. *)

val remapped_copy :
  t -> (Tka_circuit.Netlist.coupling_id -> Tka_circuit.Netlist.coupling_id option) -> t
(** Like {!remap_couplings} but into a {e fresh} cache, leaving the
    source untouched — the daemon's edit path: the shared cache of the
    base design stays valid for co-tenants while the copy seeds the
    edited design's cache. The copy's universe is unset; the caller (or
    the first {!Analyzer.run} against the edited netlist) records it. *)

val save : t -> string -> unit
(** Write the checkpoint (atomically: temp file + rename). *)

val load : string -> t
(** Parse a checkpoint. @raise Failure on a malformed or
    wrong-version file (a caller wanting warm-start-if-possible should
    catch and fall back to {!create}). *)
