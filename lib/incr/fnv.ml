type t = int64

let basis = 0xcbf29ce484222325L
let prime = 0x100000001b3L

let byte h b =
  Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) prime

let int64 h x =
  let h = ref h in
  for i = 0 to 7 do
    h := byte !h (Int64.to_int (Int64.shift_right_logical x (8 * i)))
  done;
  !h

let int h x = int64 h (Int64.of_int x)
let float h x = int64 h (Int64.bits_of_float x)
let bool h b = byte h (if b then 1 else 0)

let string h s =
  let h = ref (int h (String.length s)) in
  String.iter (fun c -> h := byte !h (Char.code c)) s;
  !h
