(** Content-addressed key ingredients for per-victim engine results.

    The cache key of a victim [v] hashes {e exactly the inputs} its
    per-victim enumeration reads (conservatively over-approximated — an
    extra input can only cause a spurious miss, never a wrong hit).
    Static ingredients are precomputed here, once per run and mode:

    - [fp_cfg]: the run configuration (mode, k, capacity, feature
      toggles) under a format-version salt;
    - [fp_sig]: each net's electrical signature — parasitics, loads,
      holding resistance, driver cell model and stage delay, output
      flag, fanin pins, and the {e mode's} post-fixpoint timing.
      Addition aligns aggressors inside {e noiseless} windows, so its
      signature folds only the base window; Elimination folds the
      noisy window and the net's delay noise as well. This asymmetry
      matters: an ECO edit ripples the noisy windows of a large cone
      but typically leaves base windows untouched outside the edit's
      electrical neighbourhood, so Addition-mode results survive edits
      that invalidate Elimination-mode ones;
    - [fp_hd]: each net's direct-only hash — what the engine's memoised
      direct enumeration of the net reads: its own signature plus every
      incident coupling's capacitance and partner signature (one hop,
      no recursion);
    - [fp_stable]: a content-stable 64-bit name per {e directed}
      coupling — victim net, aggressor net, capacitance bits, and an
      occurrence rank among parallel same-cap couplings of the same
      pair. Published summaries contain directed coupling ids, which
      compact when a cap is removed; hashing summary {e values} under
      these stable names keeps keys comparable across edits.

    The dynamic ingredient — the value hash of the summaries a victim
    consults (lower-level coupling partners and driver fanins) — cannot
    be precomputed: it must reflect what this run actually published.
    {!Analyzer} folds it in at lookup time, inside the engine's
    level-synchronous sweep, where lower levels are final. A victim
    whose upstream was re-enumerated {e to identical values} therefore
    still hits — the invalidation cascade stops at the first layer of
    unchanged summaries instead of sweeping the whole structural cone.
    Raw coupling ids appear nowhere: the engine's id-based tie-breaks
    depend only on {e relative} order, which
    {!Tka_circuit.Transform.map} preserves. The soundness argument is
    spelled out in [docs/incremental.md]. *)

type t = {
  fp_cfg : Fnv.t;  (** configuration + mode + version salt *)
  fp_sig : Fnv.t array;  (** per net: mode-aware electrical signature *)
  fp_hd : Fnv.t array;  (** per net: direct-only (one-hop) hash *)
  fp_stable : Fnv.t array;
      (** per directed coupling id (length [2 * num_couplings]):
          content-stable name, invariant under id compaction *)
}

val compute :
  config:Tka_topk.Engine.config ->
  mode:Tka_topk.Engine.mode ->
  fix:Tka_noise.Iterate.t ->
  Tka_circuit.Topo.t ->
  t
(** One pass over nets and couplings: pure hashing, no waveform work,
    no recursion — cheap relative to any enumeration. *)

val universe : Tka_circuit.Netlist.t -> Fnv.t
(** Hash of the coupling table (net pair and capacitance per id, in id
    order): the namespace cached coupling ids index into. See
    {!Cache}'s coupling-id coherence note. *)
