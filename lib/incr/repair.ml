module N = Tka_circuit.Netlist
module Topo = Tka_circuit.Topo
module Engine = Tka_topk.Engine
module Elimination = Tka_topk.Elimination
module CS = Tka_topk.Coupling_set
module Analysis = Tka_sta.Analysis
module CP = Tka_sta.Critical_path
module Iterate = Tka_noise.Iterate
module J = Tka_obs.Jsonx
module Log = Tka_obs.Log

let log_src = Log.Src.create "repair" ~doc:"autonomous ECO repair loop"

type move = Shield | Space | Strengthen

let move_name = function
  | Shield -> "shield"
  | Space -> "space"
  | Strengthen -> "strengthen"

let move_of_name = function
  | "shield" -> Ok Shield
  | "space" -> Ok Space
  | "strengthen" -> Ok Strengthen
  | m -> Error (Printf.sprintf "unknown repair move %S" m)

type entry = {
  en_iter : int;
  en_move : move;
  en_edits : Edit.t list;
  en_accepted : bool;
  en_delay_before : float;
  en_delay_after : float;
  en_tns_before : float;
  en_tns_after : float;
  en_dirty_nets : int;
  en_cache_hits : int;
  en_cache_misses : int;
}

type outcome = Target_met | Budget_exhausted | Converged | No_candidates

let outcome_name = function
  | Target_met -> "target_met"
  | Budget_exhausted -> "budget_exhausted"
  | Converged -> "converged"
  | No_candidates -> "no_candidates"

type report = {
  rp_circuit : string;
  rp_k : int;
  rp_fix_k : int;
  rp_budget : int;
  rp_dry_run : bool;
  rp_target_delay : float;
  rp_noiseless_delay : float;
  rp_initial_delay : float;
  rp_final_delay : float;
  rp_iterations : int;
  rp_edits_applied : int;
  rp_rejected : int;
  rp_outcome : outcome;
  rp_journal : entry list;
  rp_curve : (int * float) list;
  rp_identical : bool;
  rp_t_total_s : float;
}

(* ------------------------------------------------------------------ *)
(* journal serialisation                                              *)
(* ------------------------------------------------------------------ *)

let entry_json e =
  J.Obj
    [
      ("iter", J.Int e.en_iter);
      ("move", J.Str (move_name e.en_move));
      ("accepted", J.Bool e.en_accepted);
      ("edits", J.List (List.map Edit.to_json e.en_edits));
      ("delay_before_ns", J.Float e.en_delay_before);
      ("delay_after_ns", J.Float e.en_delay_after);
      ("tns_before_ns", J.Float e.en_tns_before);
      ("tns_after_ns", J.Float e.en_tns_after);
      ("dirty_nets", J.Int e.en_dirty_nets);
      ("cache_hits", J.Int e.en_cache_hits);
      ("cache_misses", J.Int e.en_cache_misses);
    ]

let entry_of_json ~lookup j =
  let ( let* ) = Result.bind in
  let int key =
    match J.member key j with
    | Some (J.Int i) -> Ok i
    | _ -> Error (Printf.sprintf "journal entry: missing int field %S" key)
  in
  let num key =
    match J.member key j with
    | Some (J.Float f) -> Ok f
    | Some (J.Int i) -> Ok (float_of_int i)
    | _ -> Error (Printf.sprintf "journal entry: missing number field %S" key)
  in
  let* en_iter = int "iter" in
  let* en_move =
    match J.member "move" j with
    | Some (J.Str m) -> move_of_name m
    | _ -> Error "journal entry: missing string field \"move\""
  in
  let* en_accepted =
    match J.member "accepted" j with
    | Some (J.Bool b) -> Ok b
    | _ -> Error "journal entry: missing bool field \"accepted\""
  in
  let* en_edits =
    match J.member "edits" j with
    | Some (J.List items) ->
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          let* e = Edit.of_json ~lookup item in
          Ok (e :: acc))
        (Ok []) items
      |> Result.map List.rev
    | _ -> Error "journal entry: missing list field \"edits\""
  in
  let* en_delay_before = num "delay_before_ns" in
  let* en_delay_after = num "delay_after_ns" in
  let* en_tns_before = num "tns_before_ns" in
  let* en_tns_after = num "tns_after_ns" in
  let* en_dirty_nets = int "dirty_nets" in
  let* en_cache_hits = int "cache_hits" in
  let* en_cache_misses = int "cache_misses" in
  Ok
    {
      en_iter;
      en_move;
      en_edits;
      en_accepted;
      en_delay_before;
      en_delay_after;
      en_tns_before;
      en_tns_after;
      en_dirty_nets;
      en_cache_hits;
      en_cache_misses;
    }

let journal_header ~circuit ~k ~fix_k =
  J.Obj
    [
      ("format", J.Str "tka-repair-journal");
      ("version", J.Int 1);
      ("circuit", J.Str circuit);
      ("k", J.Int k);
      ("fix_k", J.Int fix_k);
    ]

let save_journal path r =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc
        (J.to_string
           (journal_header ~circuit:r.rp_circuit ~k:r.rp_k ~fix_k:r.rp_fix_k)
        ^ "\n");
      List.iter
        (fun e -> output_string oc (J.to_string (entry_json e) ^ "\n"))
        r.rp_journal)

let load_journal ~lookup path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  let ( let* ) = Result.bind in
  let lines =
    String.split_on_char '\n' src
    |> List.mapi (fun i l -> (i + 1, String.trim l))
    |> List.filter (fun (_, l) -> l <> "")
  in
  match lines with
  | [] -> Error (Printf.sprintf "%s: empty journal" path)
  | (lineno, header) :: entries ->
    let* hj =
      try Ok (J.of_string header)
      with J.Parse_error m -> Error (Printf.sprintf "%s:%d: %s" path lineno m)
    in
    let* () =
      match J.member "format" hj with
      | Some (J.Str "tka-repair-journal") -> Ok ()
      | _ -> Error (Printf.sprintf "%s:%d: not a tka-repair-journal" path lineno)
    in
    List.fold_left
      (fun acc (lineno, line) ->
        let* acc = acc in
        let* j =
          try Ok (J.of_string line)
          with J.Parse_error m ->
            Error (Printf.sprintf "%s:%d: %s" path lineno m)
        in
        let* e =
          Result.map_error
            (Printf.sprintf "%s:%d: %s" path lineno)
            (entry_of_json ~lookup j)
        in
        Ok (e :: acc))
      (Ok []) entries
    |> Result.map List.rev

let replay nl entries =
  List.fold_left
    (fun nl e -> if e.en_accepted then fst (Edit.apply nl e.en_edits) else nl)
    nl entries

(* ------------------------------------------------------------------ *)
(* candidate synthesis                                                *)
(* ------------------------------------------------------------------ *)

(* Total negative slack against the delay target: the loop's
   acceptance objective. The circuit delay (max over outputs) is a
   plateau — with two outputs tied at the max, fixing one does not
   move it and the loop would stall; the TNS sum credits every
   improved endpoint, which is why repair_timing-style optimizers
   drive it. Target met ⇔ TNS = 0 ⇔ circuit delay ≤ target. *)
let tns an ~target =
  List.fold_left
    (fun acc (_, a) -> acc +. Float.max 0. (a -. target))
    0.
    (Analysis.output_arrivals an)

let spacing_factor = 0.5
let strengthen_factor = 1.5

(* Candidate edit scripts for one iteration, aimed at the violating
   endpoints (outputs whose noisy arrival exceeds the target), worst
   first:

   - shield / space: the top fix_k elimination set retained for a
     violating sink (elimination side first, dual as fallback — the
     same preference order as [Eco.run]);
   - strengthen: the driver of the noisiest net on the worst violating
     endpoint's critical path. *)
let candidates nl (fx : Iterate.t) elim ~fix_k ~target =
  let an = fx.Iterate.analysis in
  let violating =
    Analysis.output_arrivals an
    |> List.filter (fun (_, a) -> a > target)
    |> List.sort (fun (_, a) (_, b) -> Float.compare b a)
  in
  match violating with
  | [] -> []
  | (worst_po, _) :: _ ->
    let choice_for po =
      let scan (res : Engine.result) =
        if fix_k >= Array.length res.Engine.res_top then None
        else
          List.find_opt
            (fun ch -> ch.Engine.ch_sink = po)
            res.Engine.res_top.(fix_k)
      in
      match scan elim.Elimination.result with
      | Some _ as c -> c
      | None -> scan elim.Elimination.dual
    in
    let shield_space =
      match List.find_map (fun (po, _) -> choice_for po) violating with
      | None -> []
      | Some ch ->
        let caps =
          CS.to_list ch.Engine.ch_set
          |> List.map (fun d -> d / 2)
          |> List.sort_uniq Int.compare
        in
        [
          (Shield, List.map (fun c -> Edit.Remove_coupling c) caps);
          ( Space,
            List.map
              (fun c ->
                Edit.Scale_coupling { coupling = c; factor = spacing_factor })
              caps );
        ]
    in
    let strengthen =
      CP.to_output an worst_po
      |> List.filter_map (fun (st : CP.step) ->
             let n = st.CP.step_net in
             match N.driver_gate nl n with
             | Some g -> Some (g.N.gate_id, Iterate.net_noise fx n)
             | None -> None)
      |> List.sort (fun (_, a) (_, b) -> Float.compare b a)
      |> function
      | (gate, _) :: _ ->
        [
          ( Strengthen,
            [ Edit.Strengthen_driver { gate; factor = strengthen_factor } ] );
        ]
      | [] -> []
    in
    List.filter (fun (_, es) -> es <> []) (shield_space @ strengthen)

(* ------------------------------------------------------------------ *)
(* the loop                                                           *)
(* ------------------------------------------------------------------ *)

let run ?(k = 10) ?(fix_k = 1) ?(budget = 10) ?target_delay ?(recover = 0.5)
    ?(dry_run = false) ?(verify = true) ?(filter = Tka_filter.Mode.Off)
    ?journal ?checkpoint nl =
  if fix_k < 1 || fix_k > k then invalid_arg "Repair.run: fix_k outside [1, k]";
  if budget < 0 then invalid_arg "Repair.run: negative budget";
  if not (recover >= 0. && recover <= 1.) then
    invalid_arg "Repair.run: recover outside [0, 1]";
  let wall = Tka_obs.Clock.now_s in
  let t_start = wall () in
  let az = ref (Analyzer.create ~k ~filter ()) in
  (match checkpoint with
  | Some path when Sys.file_exists path -> (
    (* a malformed or old-format checkpoint is a cold start, not an
       error — the cache only ever accelerates *)
    match Analyzer.load_checkpoint !az path with
    | () ->
      Log.info log_src (fun m ->
          m
            ~fields:
              [
                Log.str "path" path;
                Log.int "entries" (Cache.size (Analyzer.cache !az));
              ]
            "warm-starting from checkpoint %s" path)
    | exception Failure msg ->
      Log.warn log_src (fun m ->
          m ~fields:[ Log.str "path" path ] "ignoring stale checkpoint: %s" msg))
  | _ -> ());
  let save_ckpt () =
    if not dry_run then
      match checkpoint with
      | Some path -> Analyzer.save_checkpoint !az path
      | None -> ()
  in
  let nl_cur = ref nl in
  let topo0 = Topo.create nl in
  (* the loop computes each state's fixpoint itself (and hands it to
     [Analyzer.run]) because candidate targeting needs the per-output
     noisy arrivals and per-net noise — [Iterate.run] is exactly what
     the analyzer would have run internally, so results are unchanged *)
  let fx0 = Iterate.run topo0 in
  let elim0, _ = Analyzer.run ~fixpoint:fx0 !az topo0 in
  let elim_cur = ref elim0 in
  let fx_cur = ref fx0 in
  save_ckpt ();
  let noiseless = Elimination.noiseless_delay elim0 in
  let initial = Elimination.all_aggressor_delay elim0 in
  let target =
    match target_delay with
    | Some t -> t
    | None -> initial -. (recover *. (initial -. noiseless))
  in
  let jout =
    match journal with
    | Some path when not dry_run ->
      let oc = open_out path in
      output_string oc
        (J.to_string (journal_header ~circuit:(N.name nl) ~k ~fix_k) ^ "\n");
      flush oc;
      Some oc
    | _ -> None
  in
  let journal_rev = ref [] in
  let rejected = ref 0 in
  let emit e =
    journal_rev := e :: !journal_rev;
    if not e.en_accepted then incr rejected;
    match jout with
    | Some oc ->
      output_string oc (J.to_string (entry_json e) ^ "\n");
      flush oc
    | None -> ()
  in
  let delay () = Iterate.circuit_delay !fx_cur in
  let tns_cur () = tns !fx_cur.Iterate.analysis ~target in
  let curve = ref [ (0, initial) ] in
  let applied = ref 0 in
  let iter = ref 0 in
  let outcome = ref (if tns_cur () <= 0. then Some Target_met else None) in
  (* Trial a candidate on a *snapshot*: the live analyzer's cache is
     copied (identity remap), the edit is applied to the copy, and the
     edited design re-analyzed through it. Rejecting the candidate is
     then a no-op — the pre-edit analyzer was never touched, which is
     what makes rollback bit-exact. *)
  let cfg = Analyzer.config !az in
  let trial edits =
    let cache = Cache.remapped_copy (Analyzer.cache !az) Option.some in
    let az' =
      Analyzer.with_shared_cache ~capacity:cfg.Engine.capacity
        ~use_pseudo:cfg.Engine.use_pseudo
        ~use_higher_order:cfg.Engine.use_higher_order
        ~filter:cfg.Engine.filter ~k:cfg.Engine.k ~cache ()
    in
    let nl', dirty = Analyzer.apply az' !nl_cur edits in
    let topo' = Topo.create nl' in
    let fx' = Iterate.run topo' in
    let elim', st = Analyzer.run ~fixpoint:fx' az' topo' in
    (az', nl', fx', elim', dirty, st)
  in
  while !outcome = None do
    incr iter;
    let cands = candidates !nl_cur !fx_cur !elim_cur ~fix_k ~target in
    if cands = [] then outcome := Some No_candidates
    else begin
      let fitting =
        List.filter (fun (_, es) -> List.length es <= budget - !applied) cands
      in
      if fitting = [] then outcome := Some Budget_exhausted
      else begin
        let before = delay () in
        let tns_before = tns_cur () in
        let trials =
          List.map
            (fun (mv, es) ->
              let az', nl', fx', elim', dirty, st = trial es in
              let tns_after = tns fx'.Iterate.analysis ~target in
              (mv, es, az', nl', fx', elim', dirty, st, tns_after))
            fitting
        in
        (* lowest resulting TNS wins; first in move order on a tie *)
        let best =
          List.fold_left
            (fun acc t ->
              let _, _, _, _, _, _, _, _, after = t in
              match acc with
              | Some (_, _, _, _, _, _, _, _, best_after)
                when best_after <= after ->
                acc
              | _ -> Some t)
            None trials
        in
        let best_after =
          match best with
          | Some (_, _, _, _, _, _, _, _, a) -> a
          | None -> infinity
        in
        let improves = best_after < tns_before in
        List.iter
          (fun ((mv, es, az', nl', fx', elim', dirty, st, tns_after) as t) ->
            let accepted =
              improves && match best with Some b -> b == t | None -> false
            in
            emit
              {
                en_iter = !iter;
                en_move = mv;
                en_edits = es;
                en_accepted = accepted;
                en_delay_before = before;
                en_delay_after = Iterate.circuit_delay fx';
                en_tns_before = tns_before;
                en_tns_after = tns_after;
                en_dirty_nets = dirty;
                en_cache_hits = st.Analyzer.rs_hits;
                en_cache_misses = st.Analyzer.rs_misses;
              };
            if accepted then begin
              az := az';
              nl_cur := nl';
              fx_cur := fx';
              elim_cur := elim';
              applied := !applied + List.length es;
              curve := (!applied, Iterate.circuit_delay fx') :: !curve;
              save_ckpt ();
              Log.info log_src (fun m ->
                  m
                    ~fields:
                      [
                        Log.int "iter" !iter;
                        Log.str "move" (move_name mv);
                        Log.int "edits" (List.length es);
                      ]
                    "accepted %s: TNS %.6f -> %.6f ns" (move_name mv)
                    tns_before tns_after)
            end)
          trials;
        if not improves then outcome := Some Converged
        else if tns_cur () <= 0. then outcome := Some Target_met
        else if !applied >= budget then outcome := Some Budget_exhausted
      end
    end
  done;
  (match jout with Some oc -> close_out oc | None -> ());
  let identical =
    if not verify then true
    else
      let scratch =
        Elimination.compute ~capacity:cfg.Engine.capacity
          ~use_pseudo:cfg.Engine.use_pseudo
          ~use_higher_order:cfg.Engine.use_higher_order
          ~filter:cfg.Engine.filter ~k:cfg.Engine.k
          (Topo.create !nl_cur)
      in
      Eco.elim_identical scratch !elim_cur
  in
  let report =
    {
      rp_circuit = N.name nl;
      rp_k = k;
      rp_fix_k = fix_k;
      rp_budget = budget;
      rp_dry_run = dry_run;
      rp_target_delay = target;
      rp_noiseless_delay = noiseless;
      rp_initial_delay = initial;
      rp_final_delay = delay ();
      rp_iterations = !iter;
      rp_edits_applied = !applied;
      rp_rejected = !rejected;
      rp_outcome = Option.value ~default:Converged !outcome;
      rp_journal = List.rev !journal_rev;
      rp_curve = List.rev !curve;
      rp_identical = identical;
      rp_t_total_s = wall () -. t_start;
    }
  in
  (report, !nl_cur, !elim_cur)

let report_json r =
  J.Obj
    [
      ("circuit", J.Str r.rp_circuit);
      ("k", J.Int r.rp_k);
      ("fix_k", J.Int r.rp_fix_k);
      ("budget", J.Int r.rp_budget);
      ("dry_run", J.Bool r.rp_dry_run);
      ("target_delay_ns", J.Float r.rp_target_delay);
      ("noiseless_delay_ns", J.Float r.rp_noiseless_delay);
      ("initial_delay_ns", J.Float r.rp_initial_delay);
      ("final_delay_ns", J.Float r.rp_final_delay);
      ( "delay_recovered_ps",
        J.Float ((r.rp_initial_delay -. r.rp_final_delay) *. 1000.) );
      ("iterations", J.Int r.rp_iterations);
      ("edits_applied", J.Int r.rp_edits_applied);
      ("rejected", J.Int r.rp_rejected);
      ("outcome", J.Str (outcome_name r.rp_outcome));
      ("target_met", J.Bool (r.rp_outcome = Target_met));
      ( "curve",
        J.List
          (List.map
             (fun (n, d) ->
               J.Obj [ ("edits", J.Int n); ("delay_ns", J.Float d) ])
             r.rp_curve) );
      ("journal", J.List (List.map entry_json r.rp_journal));
      ("identical", J.Bool r.rp_identical);
      ("t_total_s", J.Float r.rp_t_total_s);
    ]
