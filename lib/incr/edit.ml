module N = Tka_circuit.Netlist

type t =
  | Remove_coupling of N.coupling_id
  | Scale_coupling of { coupling : N.coupling_id; factor : float }
  | Resize_driver of { gate : N.gate_id; cell : Tka_cell.Cell.t }
  | Strengthen_driver of { gate : N.gate_id; factor : float }

(* A strengthened gate is the same cell with [factor]-times wider
   transistors: output resistances shrink by [1/factor], input pin
   capacitances grow by [factor] (the upstream stage sees a heavier
   load), intrinsic terms unchanged. *)
let strengthen_cell ~factor (cell : Tka_cell.Cell.t) =
  let open Tka_cell in
  Cell.make
    ~name:(Printf.sprintf "%s@x%g" cell.Cell.name factor)
    ~inputs:
      (List.map
         (fun p ->
           Cell.input_pin ~name:p.Cell.pin_name
             ~capacitance:(factor *. p.Cell.capacitance))
         cell.Cell.inputs)
    ~output:(Cell.output_pin ~name:cell.Cell.output.Cell.pin_name)
    ~logic:cell.Cell.logic ~intrinsic_delay:cell.Cell.intrinsic_delay
    ~drive_resistance:(cell.Cell.drive_resistance /. factor)
    ~intrinsic_slew:cell.Cell.intrinsic_slew
    ~slew_resistance:(cell.Cell.slew_resistance /. factor)

let validate nl = function
  | Remove_coupling c ->
    if c < 0 || c >= N.num_couplings nl then
      invalid_arg "Edit.apply: coupling id out of range"
  | Scale_coupling { coupling; factor } ->
    if coupling < 0 || coupling >= N.num_couplings nl then
      invalid_arg "Edit.apply: coupling id out of range";
    if not (factor >= 0. && factor <= 1.) then
      invalid_arg "Edit.apply: scale factor outside [0, 1]"
  | Resize_driver { gate; _ } ->
    if gate < 0 || gate >= N.num_gates nl then
      invalid_arg "Edit.apply: gate id out of range"
  | Strengthen_driver { gate; factor } ->
    if gate < 0 || gate >= N.num_gates nl then
      invalid_arg "Edit.apply: gate id out of range";
    if not (Float.is_finite factor && factor > 0.) then
      invalid_arg "Edit.apply: strengthen factor must be finite and positive"

let apply nl edits =
  List.iter (validate nl) edits;
  let nc = N.num_couplings nl in
  (* compose the script into per-coupling final caps and per-gate cells *)
  let factor = Array.make nc 1. in
  let removed = Array.make nc false in
  let cells : (N.gate_id, Tka_cell.Cell.t) Hashtbl.t = Hashtbl.create 4 in
  let strengthen : (N.gate_id, float) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (function
      | Remove_coupling c -> removed.(c) <- true
      | Scale_coupling { coupling = c; factor = f } ->
        factor.(c) <- factor.(c) *. f
      | Resize_driver { gate; cell } -> Hashtbl.replace cells gate cell
      | Strengthen_driver { gate; factor = f } ->
        let f0 =
          match Hashtbl.find_opt strengthen gate with Some f0 -> f0 | None -> 1.
        in
        Hashtbl.replace strengthen gate (f0 *. f))
    edits;
  let final_cap (c : N.coupling) =
    if removed.(c.N.coupling_id) then 0.
    else factor.(c.N.coupling_id) *. c.N.coupling_cap
  in
  let nl' =
    Tka_circuit.Transform.map
      ~name:(N.name nl ^ "_eco")
      ?cell_of:
        (if Hashtbl.length cells = 0 && Hashtbl.length strengthen = 0 then None
         else
           Some
             (fun (g : N.gate) ->
               (* a resize replaces the base cell; strengthen factors
                  compose multiplicatively on top of the final base *)
               let base =
                 match Hashtbl.find_opt cells g.N.gate_id with
                 | Some c -> c
                 | None -> g.N.cell
               in
               match Hashtbl.find_opt strengthen g.N.gate_id with
               | Some f -> strengthen_cell ~factor:f base
               | None -> base))
      ~keep_coupling:(fun c -> final_cap c > 0.)
      ~coupling_cap_of:final_cap nl
  in
  (* Transform.map keeps surviving couplings in old-id order, so the
     compacted new ids are the survivors' ranks. *)
  let remap = Array.make nc None in
  let next = ref 0 in
  Array.iter
    (fun (c : N.coupling) ->
      if final_cap c > 0. then begin
        remap.(c.N.coupling_id) <- Some !next;
        incr next
      end)
    (N.couplings nl);
  assert (!next = N.num_couplings nl');
  (nl', fun c -> if c < 0 || c >= nc then None else remap.(c))

let touched_nets nl edits =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let add n =
    if not (Hashtbl.mem seen n) then begin
      Hashtbl.replace seen n ();
      out := n :: !out
    end
  in
  List.iter
    (fun e ->
      validate nl e;
      match e with
      | Remove_coupling c | Scale_coupling { coupling = c; _ } ->
        let cp = N.coupling nl c in
        add cp.N.net_a;
        add cp.N.net_b
      | Resize_driver { gate; _ } | Strengthen_driver { gate; _ } ->
        let g = N.gate nl gate in
        add g.N.fanout;
        (* the new cell's input pin caps change the fanin nets' loads *)
        List.iter (fun (_, u) -> add u) g.N.fanin)
    edits;
  List.rev !out

module J = Tka_obs.Jsonx

let to_json = function
  | Remove_coupling c ->
    J.Obj [ ("op", J.Str "remove_coupling"); ("coupling", J.Int c) ]
  | Scale_coupling { coupling; factor } ->
    J.Obj
      [
        ("op", J.Str "scale_coupling");
        ("coupling", J.Int coupling);
        ("factor", J.Float factor);
      ]
  | Resize_driver { gate; cell } ->
    J.Obj
      [
        ("op", J.Str "resize_driver");
        ("gate", J.Int gate);
        ("cell", J.Str cell.Tka_cell.Cell.name);
      ]
  | Strengthen_driver { gate; factor } ->
    J.Obj
      [
        ("op", J.Str "strengthen_driver");
        ("gate", J.Int gate);
        ("factor", J.Float factor);
      ]

let of_json ~lookup j =
  let int key = match J.member key j with Some (J.Int i) -> Some i | _ -> None in
  let num key =
    match J.member key j with
    | Some (J.Float f) -> Some f
    | Some (J.Int i) -> Some (float_of_int i)
    | _ -> None
  in
  let str key = match J.member key j with Some (J.Str s) -> Some s | _ -> None in
  match str "op" with
  | Some "remove_coupling" -> (
    match int "coupling" with
    | Some c -> Ok (Remove_coupling c)
    | None -> Error "remove_coupling needs an integer \"coupling\"")
  | Some "scale_coupling" -> (
    match (int "coupling", num "factor") with
    | Some c, Some f -> Ok (Scale_coupling { coupling = c; factor = f })
    | _ -> Error "scale_coupling needs \"coupling\" and \"factor\"")
  | Some "resize_driver" -> (
    match (int "gate", str "cell") with
    | Some g, Some name -> (
      match lookup name with
      | Some cell -> Ok (Resize_driver { gate = g; cell })
      | None -> Error (Printf.sprintf "unknown cell %S" name))
    | _ -> Error "resize_driver needs \"gate\" and \"cell\"")
  | Some "strengthen_driver" -> (
    match (int "gate", num "factor") with
    | Some g, Some f -> Ok (Strengthen_driver { gate = g; factor = f })
    | _ -> Error "strengthen_driver needs \"gate\" and \"factor\"")
  | Some op -> Error (Printf.sprintf "unknown edit op %S" op)
  | None -> Error "edit needs a string \"op\""

let pp ppf = function
  | Remove_coupling c -> Format.fprintf ppf "remove-coupling %d" c
  | Scale_coupling { coupling; factor } ->
    Format.fprintf ppf "scale-coupling %d by %g" coupling factor
  | Resize_driver { gate; cell } ->
    Format.fprintf ppf "resize-driver %d to %s" gate cell.Tka_cell.Cell.name
  | Strengthen_driver { gate; factor } ->
    Format.fprintf ppf "strengthen-driver %d by %g" gate factor
