module N = Tka_circuit.Netlist

type t =
  | Remove_coupling of N.coupling_id
  | Scale_coupling of { coupling : N.coupling_id; factor : float }
  | Resize_driver of { gate : N.gate_id; cell : Tka_cell.Cell.t }

let validate nl = function
  | Remove_coupling c ->
    if c < 0 || c >= N.num_couplings nl then
      invalid_arg "Edit.apply: coupling id out of range"
  | Scale_coupling { coupling; factor } ->
    if coupling < 0 || coupling >= N.num_couplings nl then
      invalid_arg "Edit.apply: coupling id out of range";
    if not (factor >= 0. && factor <= 1.) then
      invalid_arg "Edit.apply: scale factor outside [0, 1]"
  | Resize_driver { gate; _ } ->
    if gate < 0 || gate >= N.num_gates nl then
      invalid_arg "Edit.apply: gate id out of range"

let apply nl edits =
  List.iter (validate nl) edits;
  let nc = N.num_couplings nl in
  (* compose the script into per-coupling final caps and per-gate cells *)
  let factor = Array.make nc 1. in
  let removed = Array.make nc false in
  let cells : (N.gate_id, Tka_cell.Cell.t) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (function
      | Remove_coupling c -> removed.(c) <- true
      | Scale_coupling { coupling = c; factor = f } ->
        factor.(c) <- factor.(c) *. f
      | Resize_driver { gate; cell } -> Hashtbl.replace cells gate cell)
    edits;
  let final_cap (c : N.coupling) =
    if removed.(c.N.coupling_id) then 0.
    else factor.(c.N.coupling_id) *. c.N.coupling_cap
  in
  let nl' =
    Tka_circuit.Transform.map
      ~name:(N.name nl ^ "_eco")
      ?cell_of:
        (if Hashtbl.length cells = 0 then None
         else
           Some
             (fun (g : N.gate) ->
               match Hashtbl.find_opt cells g.N.gate_id with
               | Some c -> c
               | None -> g.N.cell))
      ~keep_coupling:(fun c -> final_cap c > 0.)
      ~coupling_cap_of:final_cap nl
  in
  (* Transform.map keeps surviving couplings in old-id order, so the
     compacted new ids are the survivors' ranks. *)
  let remap = Array.make nc None in
  let next = ref 0 in
  Array.iter
    (fun (c : N.coupling) ->
      if final_cap c > 0. then begin
        remap.(c.N.coupling_id) <- Some !next;
        incr next
      end)
    (N.couplings nl);
  assert (!next = N.num_couplings nl');
  (nl', fun c -> if c < 0 || c >= nc then None else remap.(c))

let touched_nets nl edits =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let add n =
    if not (Hashtbl.mem seen n) then begin
      Hashtbl.replace seen n ();
      out := n :: !out
    end
  in
  List.iter
    (fun e ->
      validate nl e;
      match e with
      | Remove_coupling c | Scale_coupling { coupling = c; _ } ->
        let cp = N.coupling nl c in
        add cp.N.net_a;
        add cp.N.net_b
      | Resize_driver { gate; _ } ->
        let g = N.gate nl gate in
        add g.N.fanout;
        (* the new cell's input pin caps change the fanin nets' loads *)
        List.iter (fun (_, u) -> add u) g.N.fanin)
    edits;
  List.rev !out

let pp ppf = function
  | Remove_coupling c -> Format.fprintf ppf "remove-coupling %d" c
  | Scale_coupling { coupling; factor } ->
    Format.fprintf ppf "scale-coupling %d by %g" coupling factor
  | Resize_driver { gate; cell } ->
    Format.fprintf ppf "resize-driver %d to %s" gate cell.Tka_cell.Cell.name
