(** The incremental ECO re-analysis session.

    Owns a {!Cache} across an edit → re-analyze loop:

    {[
      let az = Analyzer.create ~k () in
      let elim, _ = Analyzer.run az (Topo.create nl) in      (* full; populates *)
      let nl', dirty = Analyzer.apply az nl edits in         (* remaps the cache *)
      let elim', st = Analyzer.run az (Topo.create nl') in   (* incremental *)
      (* st.rs_hits clean victims were installed from the cache *)
    ]}

    Every {!run} recomputes the noise fixpoint and the per-net
    {!Fingerprint} (both cheap relative to enumeration) and hands the
    engine a cache view guarded by the fingerprints, so results are
    {e bit-identical} to a from-scratch run — at any [--jobs] count —
    no matter what was edited; only the time to produce them changes.
    Levels whose nets all hit the cache cost lookups only, which is how
    the level-synchronous sweep "skips clean levels" (see
    [docs/incremental.md]).

    Reported when {!Tka_obs.Metrics} is enabled: [incr.cache_hits],
    [incr.cache_misses] (per victim lookup) and [incr.dirty_nets]
    (accumulated by {!apply}); {!run} and {!apply} open [incr.*] trace
    spans. *)

type t

type run_stats = {
  rs_hits : int;  (** victims installed from the cache *)
  rs_misses : int;  (** victims enumerated (then stored) *)
}

val create :
  ?capacity:int ->
  ?use_pseudo:bool ->
  ?use_higher_order:bool ->
  ?filter:Tka_filter.Mode.t ->
  k:int ->
  unit ->
  t
(** Same knobs and defaults as {!Tka_topk.Elimination.compute}; the
    config is fixed for the session because it is hashed into every
    cache key (the filter mode included — results computed under
    different filter modes never alias). *)

val with_shared_cache :
  ?capacity:int ->
  ?use_pseudo:bool ->
  ?use_higher_order:bool ->
  ?filter:Tka_filter.Mode.t ->
  k:int ->
  cache:Cache.t ->
  unit ->
  t
(** Like {!create} but analyzing through an {e injected} cache instead
    of a freshly owned one — the daemon path ([Tka_serve]): one victim
    cache per design fingerprint, shared by every session analyzing
    that design, so a second tenant hits warm on the first victim.
    The injected cache may be consulted and populated concurrently by
    any number of sessions (it is mutex-guarded, and the engine's
    determinism contract makes racing stores write identical values).

    Two caveats for sharers: {!apply} remaps the injected cache {e in
    place}, which would corrupt it for co-tenants still analyzing the
    unedited design — a daemon session applying edits must instead
    seed a fresh per-fingerprint cache with {!Cache.remapped_copy} and
    open a new [with_shared_cache] session on it. {!load_checkpoint}
    likewise {e replaces} the session's cache reference, detaching it
    from the shared one. *)

val config : t -> Tka_topk.Engine.config
val cache : t -> Cache.t

val run :
  ?fixpoint:Tka_noise.Iterate.t -> t -> Tka_circuit.Topo.t -> Tka_topk.Elimination.t * run_stats
(** Analyze (both dual modes) through the cache. The first run on a
    design misses everywhere and populates; subsequent runs after
    {!apply} hit on every victim outside the dirty closure. *)

val apply :
  t -> Tka_circuit.Netlist.t -> Edit.t list -> Tka_circuit.Netlist.t * int
(** Apply an edit script ({!Edit.apply}), renumber the cached coupling
    sets through the resulting id map, and return the edited netlist
    together with the size of the dirty closure ({!Dirty.closure} of
    the touched nets — an upper bound on next run's misses, also added
    to the [incr.dirty_nets] counter). *)

val save_checkpoint : t -> string -> unit
(** {!Cache.save} of the session cache. *)

val load_checkpoint : t -> string -> unit
(** Replace the session cache with {!Cache.load}[ path] — the
    warm-start path for a second process on the same design. Stale or
    foreign entries are harmless (fingerprint-guarded misses).
    @raise Failure on a malformed file. *)
