(** Autonomous ECO repair: the paper's analyze → eliminate → mitigate
    loop, iterated to a delay target under an edit budget.

    [tka eco] applies one elimination set and stops; {!run} is the
    OpenROAD [repair_timing]-style optimizer grown from it. The
    acceptance objective is the total negative slack (TNS) against the
    delay target — the sum over primary outputs of how far each noisy
    arrival exceeds the target. The circuit delay (a max) plateaus
    when two endpoints tie; the TNS sum credits every improved
    endpoint, so the loop keeps moving. Target met ⇔ TNS = 0 ⇔ circuit
    delay ≤ target.

    Each iteration computes the current top-k elimination sets and
    synthesizes candidate edit scripts aimed at the violating
    endpoints, worst first —

    - {e shield}: {!Edit.Remove_coupling} on each cap of the top
      [fix_k] elimination set retained for a violating sink,
    - {e space}: {!Edit.Scale_coupling} (cap halved) on the same caps,
    - {e strengthen}: {!Edit.Strengthen_driver} on the driver of the
      noisiest net along the worst endpoint's critical path —

    then {e trials} every candidate on a snapshot of the incremental
    analyzer (a {!Cache.remapped_copy} of the victim cache, so the
    pre-edit state is never mutated), accepts the candidate with the
    lowest resulting TNS, and discards the rest. A candidate that does
    not strictly reduce the TNS is rolled back simply by never
    adopting its snapshot — the pre-edit analysis survives
    bit-identically. The loop stops when the delay target is met, the
    edit budget is exhausted, no candidate improves, or no candidate
    exists.

    Every trial — accepted or rejected — is journaled; the journal is
    NDJSON (header line, then one {!entry} per line, edits in the
    {!Edit.to_json} format) and {!replay} re-applies the accepted
    entries to reproduce the final netlist, which is how the verify
    oracle checks that the loop's final incremental state is
    bit-identical to a scratch re-analysis. After each accepted edit
    the analyzer cache is checkpointed ({!Analyzer.save_checkpoint}),
    so a later run on the same design warm-starts; [dry_run] suppresses
    both file writes. See [docs/repair.md]. *)

type move = Shield | Space | Strengthen

val move_name : move -> string
(** ["shield"], ["space"] or ["strengthen"]. *)

type entry = {
  en_iter : int;  (** 1-based iteration that trialed this candidate *)
  en_move : move;
  en_edits : Edit.t list;
  en_accepted : bool;
  en_delay_before : float;  (** all-aggressor circuit delay, ns *)
  en_delay_after : float;  (** delay with this candidate applied, ns *)
  en_tns_before : float;  (** TNS against the target, ns *)
  en_tns_after : float;  (** TNS with this candidate applied, ns *)
  en_dirty_nets : int;  (** dirty closure the candidate would invalidate *)
  en_cache_hits : int;  (** victims reused by the trial re-analysis *)
  en_cache_misses : int;  (** victims re-enumerated by the trial *)
}

type outcome =
  | Target_met
  | Budget_exhausted
  | Converged  (** no remaining candidate strictly improves the TNS *)
  | No_candidates  (** the design offers nothing to edit *)

val outcome_name : outcome -> string

type report = {
  rp_circuit : string;
  rp_k : int;
  rp_fix_k : int;
  rp_budget : int;  (** maximum individual edits to apply *)
  rp_dry_run : bool;
  rp_target_delay : float;  (** ns; the loop stops at or below this *)
  rp_noiseless_delay : float;  (** ns, lower bound on any repair *)
  rp_initial_delay : float;  (** all-aggressor delay before any edit, ns *)
  rp_final_delay : float;  (** all-aggressor delay after the loop, ns *)
  rp_iterations : int;
  rp_edits_applied : int;  (** individual edits in accepted candidates *)
  rp_rejected : int;  (** trialed candidates rolled back *)
  rp_outcome : outcome;
  rp_journal : entry list;  (** every trial, in order *)
  rp_curve : (int * float) list;
      (** delay-recovered-per-edit curve: (cumulative edits applied,
          circuit delay ns), starting at [(0, rp_initial_delay)] *)
  rp_identical : bool;
      (** the final incremental analysis is bit-identical to a scratch
          re-analysis of the final netlist ({!Eco.elim_identical});
          [true] vacuously when [verify] was disabled *)
  rp_t_total_s : float;
}

val run :
  ?k:int ->
  ?fix_k:int ->
  ?budget:int ->
  ?target_delay:float ->
  ?recover:float ->
  ?dry_run:bool ->
  ?verify:bool ->
  ?filter:Tka_filter.Mode.t ->
  ?journal:string ->
  ?checkpoint:string ->
  Tka_circuit.Netlist.t ->
  report * Tka_circuit.Netlist.t * Tka_topk.Elimination.t
(** [run nl] drives the repair loop and returns the report, the final
    (repaired) netlist and its final incremental analysis.

    [k] (default 10) and [fix_k] (default 1, must be in [[1, k]]) are
    as in {!Eco.run}. [budget] (default 10) caps the {e individual}
    edits applied (a fix_k-cap shield candidate counts fix_k edits); a
    candidate that does not fit the remaining budget is not trialed.
    The delay target is [target_delay] (ns) when given, otherwise
    derived as [initial - recover * (initial - noiseless)] — recover
    the given fraction (default [0.5]) of the total delay noise.
    [recover] must be in [[0, 1]].

    [journal] names the NDJSON journal file, written incrementally
    (header first, then one line per trial). [checkpoint] names the
    cache checkpoint: loaded before the initial analysis when the file
    exists (warm start — a malformed file is a cold start, not an
    error), then re-saved after the initial analysis and after every
    accepted edit. [dry_run] (default false) runs the full loop but
    writes neither file. [verify] (default true) re-analyzes the final
    netlist from scratch and sets [rp_identical]. [filter] (default
    [Off]) selects the engine's aggressor-pruning mode for every
    analysis in the loop — trial analyzers and the verification rerun
    inherit it, and it is hashed into the cache keys, so a checkpoint
    written under one mode never seeds a loop running another.

    @raise Invalid_argument on [fix_k] outside [[1, k]], a negative
    [budget], or [recover] outside [[0, 1]]. *)

val report_json : report -> Tka_obs.Jsonx.t
(** The [repair] JSON section: scalar fields of {!report} plus the
    curve as a list of [{"edits":N,"delay_ns":F}] points and the
    journal as a list of {!entry_json} objects. *)

val entry_json : entry -> Tka_obs.Jsonx.t

val entry_of_json :
  lookup:(string -> Tka_cell.Cell.t option) ->
  Tka_obs.Jsonx.t ->
  (entry, string) result

val save_journal : string -> report -> unit
(** Write the journal of a completed report as NDJSON (header line
    with circuit/k/fix_k, then one entry per line). {!run} already
    writes the journal incrementally; this is for re-emitting one. *)

val load_journal :
  lookup:(string -> Tka_cell.Cell.t option) ->
  string ->
  (entry list, string) result
(** Read a journal back (header validated, blank lines skipped). The
    error carries the offending line number. *)

val replay :
  Tka_circuit.Netlist.t -> entry list -> Tka_circuit.Netlist.t
(** Re-apply the {e accepted} entries in order — one {!Edit.apply} per
    entry, the same grouping the loop used, so the result is the
    loop's final netlist, bit for bit. Rejected entries are skipped. *)
