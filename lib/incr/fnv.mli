(** FNV-1a 64-bit streaming hash.

    The content-addressing primitive of the incremental cache: cheap,
    dependency-free, and stable across runs and platforms (unlike
    [Hashtbl.hash], whose output is unspecified and may change between
    compiler releases — a silent cache-poisoning hazard for on-disk
    checkpoints). Collisions are treated as acceptable at 64 bits over
    the few thousand keys a netlist produces; a collision can only
    cause a stale cache {e hit}, and the odds are ~n²/2⁶⁴.

    Floats are folded by their IEEE-754 bit pattern, so the hash
    distinguishes [0.] from [-0.] and is exact — matching the
    bit-identical correctness bar of the incremental engine. *)

type t = int64
(** Hash state (also the digest: fold operations as data arrives and
    use the final state). *)

val basis : t
(** The FNV-1a offset basis. *)

val int64 : t -> int64 -> t
(** Fold eight bytes, little-endian. *)

val int : t -> int -> t
val float : t -> float -> t
(** Folds [Int64.bits_of_float]. *)

val bool : t -> bool -> t

val string : t -> string -> t
(** Folds the length then the bytes, so concatenation cannot alias
    (["ab","c"] vs ["a","bc"]). *)
