(** ECO edit scripts over a netlist.

    The mitigation moves of the paper's workflow, reified as data so
    the incremental analyzer can both apply them (via
    {!Tka_circuit.Transform.map}) and reason about what they dirty:

    - {!Remove_coupling}: shield or reroute — the physical cap is gone;
    - {!Scale_coupling}: increased spacing — the cap shrinks by a
      factor in [0, 1] (a factor of 0 removes it);
    - {!Resize_driver}: swap a gate's cell for a stronger (or weaker)
      variant with the same pin names.

    Applying a script produces a new netlist with {e identical} net and
    gate ids (Transform.map preserves structure), but coupling ids are
    compacted when caps are removed — {!apply} therefore also returns
    the old→new coupling-id map the result cache needs to stay
    coherent (see {!Cache.remap_couplings}). *)

type t =
  | Remove_coupling of Tka_circuit.Netlist.coupling_id
  | Scale_coupling of {
      coupling : Tka_circuit.Netlist.coupling_id;
      factor : float;  (** in [0, 1]; 0 removes the cap *)
    }
  | Resize_driver of {
      gate : Tka_circuit.Netlist.gate_id;
      cell : Tka_cell.Cell.t;
    }

val apply :
  Tka_circuit.Netlist.t ->
  t list ->
  Tka_circuit.Netlist.t
  * (Tka_circuit.Netlist.coupling_id -> Tka_circuit.Netlist.coupling_id option)
(** [apply nl edits] rebuilds [nl] with the whole script applied in one
    {!Tka_circuit.Transform.map} pass (edits compose: scaling twice
    multiplies, a removal wins over any scaling, the last resize of a
    gate wins). Returns the new netlist and the old→new coupling-id
    map ([None] for couplings that were removed or scaled to zero).
    Net and gate ids are unchanged by construction.

    @raise Invalid_argument on an out-of-range id or a factor outside
    [0, 1]. *)

val touched_nets : Tka_circuit.Netlist.t -> t list -> Tka_circuit.Netlist.net_id list
(** The nets whose {e local} electrical parameters the script changes
    (deduplicated): both sides of an edited coupling; for a driver
    resize, the gate's output net and its input nets (whose loads see
    the new pin capacitances). Seeds for {!Dirty.closure}. *)

val pp : Format.formatter -> t -> unit
