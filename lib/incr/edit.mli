(** ECO edit scripts over a netlist.

    The mitigation moves of the paper's workflow, reified as data so
    the incremental analyzer can both apply them (via
    {!Tka_circuit.Transform.map}) and reason about what they dirty:

    - {!Remove_coupling}: shield or reroute — the physical cap is gone;
    - {!Scale_coupling}: increased spacing — the cap shrinks by a
      factor in [0, 1] (a factor of 0 removes it);
    - {!Resize_driver}: swap a gate's cell for a stronger (or weaker)
      variant with the same pin names;
    - {!Strengthen_driver}: widen the gate's transistors in place by a
      factor — output resistances shrink by [1/factor], input pin
      capacitances grow by [factor] (the upstream stage pays for the
      bigger gate), intrinsic terms unchanged. The repair loop's
      "buffer/resize the victim driver" move without needing a named
      replacement cell.

    Applying a script produces a new netlist with {e identical} net and
    gate ids (Transform.map preserves structure), but coupling ids are
    compacted when caps are removed — {!apply} therefore also returns
    the old→new coupling-id map the result cache needs to stay
    coherent (see {!Cache.remap_couplings}). *)

type t =
  | Remove_coupling of Tka_circuit.Netlist.coupling_id
  | Scale_coupling of {
      coupling : Tka_circuit.Netlist.coupling_id;
      factor : float;  (** in [0, 1]; 0 removes the cap *)
    }
  | Resize_driver of {
      gate : Tka_circuit.Netlist.gate_id;
      cell : Tka_cell.Cell.t;
    }
  | Strengthen_driver of {
      gate : Tka_circuit.Netlist.gate_id;
      factor : float;  (** finite and > 0; > 1 strengthens *)
    }

val apply :
  Tka_circuit.Netlist.t ->
  t list ->
  Tka_circuit.Netlist.t
  * (Tka_circuit.Netlist.coupling_id -> Tka_circuit.Netlist.coupling_id option)
(** [apply nl edits] rebuilds [nl] with the whole script applied in one
    {!Tka_circuit.Transform.map} pass (edits compose: scaling twice
    multiplies, a removal wins over any scaling, the last resize of a
    gate wins, strengthen factors multiply and apply on top of the
    final resized cell). Returns the new netlist and the old→new coupling-id
    map ([None] for couplings that were removed or scaled to zero).
    Net and gate ids are unchanged by construction.

    @raise Invalid_argument on an out-of-range id or a factor outside
    [0, 1]. *)

val touched_nets : Tka_circuit.Netlist.t -> t list -> Tka_circuit.Netlist.net_id list
(** The nets whose {e local} electrical parameters the script changes
    (deduplicated): both sides of an edited coupling; for a driver
    resize, the gate's output net and its input nets (whose loads see
    the new pin capacitances). Seeds for {!Dirty.closure}. *)

val to_json : t -> Tka_obs.Jsonx.t
(** One edit as a JSON object — the wire/journal format shared with
    the serve protocol and the repair journal:
    [{"op":"remove_coupling","coupling":N}],
    [{"op":"scale_coupling","coupling":N,"factor":F}],
    [{"op":"resize_driver","gate":N,"cell":"name"}],
    [{"op":"strengthen_driver","gate":N,"factor":F}]. Floats
    round-trip bit-exactly through {!Tka_obs.Jsonx}. *)

val of_json :
  lookup:(string -> Tka_cell.Cell.t option) -> Tka_obs.Jsonx.t -> (t, string) result
(** Inverse of {!to_json}; [lookup] resolves a [resize_driver] cell
    name (e.g. {!Tka_cell.Default_lib.find}). *)

val pp : Format.formatter -> t -> unit
