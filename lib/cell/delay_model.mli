(** The linear gate delay / slew / holding model.

    Single consistent place for the timing arithmetic used by STA
    ({!Tka_sta}) and for the driver strength used by noise analysis
    ({!Tka_noise}). *)

val gate_delay : cell:Cell.t -> load:float -> float
(** Pin-to-output propagation delay for an output load of [load] pF:
    [intrinsic_delay + drive_resistance * load]. *)

val output_slew : cell:Cell.t -> input_slew:float -> load:float -> float
(** Output transition time. The cell shapes its output as
    [intrinsic_slew + slew_resistance * load], but a very slow input
    leaks through: the result is floored at [input_slew * slew_leak]. *)

val slew_leak : float
(** Fraction of the input slew surviving through a gate (0.25). *)

val holding_resistance : Cell.t -> float
(** Thevenin resistance with which the driver holds its quiet output;
    equal to [drive_resistance] in the linear model. *)

val rc : resistance:float -> capacitance:float -> float
(** kΩ * pF = ns. *)
