type t = {
  corner_name : string;
  delay_factor : float;
  resistance_factor : float;
  capacitance_factor : float;
}

let make ~name ~delay_factor ~resistance_factor ~capacitance_factor =
  if delay_factor <= 0. || resistance_factor <= 0. || capacitance_factor <= 0.
  then invalid_arg "Corner.make: factors must be positive";
  { corner_name = name; delay_factor; resistance_factor; capacitance_factor }

let typical =
  make ~name:"tt" ~delay_factor:1. ~resistance_factor:1. ~capacitance_factor:1.

let slow =
  make ~name:"ss" ~delay_factor:1.25 ~resistance_factor:1.30
    ~capacitance_factor:1.05

let fast =
  make ~name:"ff" ~delay_factor:0.85 ~resistance_factor:0.78
    ~capacitance_factor:0.97

let all = [ typical; slow; fast ]

let derate_cell c cell =
  let name =
    if c.corner_name = typical.corner_name then cell.Cell.name
    else cell.Cell.name ^ "@" ^ c.corner_name
  in
  Cell.make ~name
    ~inputs:
      (List.map
         (fun p ->
           Cell.input_pin ~name:p.Cell.pin_name
             ~capacitance:(c.capacitance_factor *. p.Cell.capacitance))
         cell.Cell.inputs)
    ~output:(Cell.output_pin ~name:cell.Cell.output.Cell.pin_name)
    ~logic:cell.Cell.logic
    ~intrinsic_delay:(c.delay_factor *. cell.Cell.intrinsic_delay)
    ~drive_resistance:(c.resistance_factor *. cell.Cell.drive_resistance)
    ~intrinsic_slew:(c.delay_factor *. cell.Cell.intrinsic_slew)
    ~slew_resistance:(c.resistance_factor *. cell.Cell.slew_resistance)

let derate_library c cells = List.map (derate_cell c) cells

let derate_netlist_cells c = derate_cell c
