(** Parser for the Liberty-lite cell-library text format.

    A pragmatic subset of the Liberty syntax sufficient for the linear
    cell model of this library:

    {v
    library(tka013) {
      // comment
      cell(NAND2_X1) {
        intrinsic_delay : 0.024;
        drive_resistance : 2.9;
        intrinsic_slew : 0.020;
        slew_resistance : 3.4;
        function : "!(A*B)";
        pin(A) { direction : input; capacitance : 0.0034; }
        pin(B) { direction : input; capacitance : 0.0034; }
        pin(Y) { direction : output; }
      }
    }
    v}

    [//]-to-end-of-line and [/* ... */] comments are skipped.
    {!Default_lib.to_liberty} emits this format, and parsing its output
    returns the identical cell list (round-trip property). *)

type t = { library_name : string; cells : Cell.t list }

exception Parse_error of { line : int; message : string }

val parse : string -> t
(** Parse a library from a string.
    @raise Parse_error on malformed input, with a 1-based line. *)

val parse_file : string -> t
(** Parse from a file path. *)

val find : t -> string -> Cell.t option
