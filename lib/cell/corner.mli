(** Process/voltage/temperature corner derating.

    Crosstalk sign-off runs at multiple corners: a slow corner has
    weaker drivers (more noise-sensitive victims) while a fast corner
    has sharper aggressor edges (taller pulses). A corner derates the
    four linear-model parameters and the pin capacitances of every
    cell, producing a new library to analyse against. *)

type t = {
  corner_name : string;
  delay_factor : float;  (** scales intrinsic delay and slew *)
  resistance_factor : float;  (** scales drive and slew resistance *)
  capacitance_factor : float;  (** scales input pin capacitance *)
}

val typical : t
(** TT: all factors 1 — the identity. *)

val slow : t
(** SS, low voltage, hot: 1.25× delays, 1.30× resistances, 1.05× caps. *)

val fast : t
(** FF, high voltage, cold: 0.85× delays, 0.78× resistances, 0.97× caps. *)

val all : t list
(** [typical; slow; fast]. *)

val make :
  name:string ->
  delay_factor:float ->
  resistance_factor:float ->
  capacitance_factor:float ->
  t
(** Custom corner; factors must be positive. *)

val derate_cell : t -> Cell.t -> Cell.t
(** Apply the corner to one cell (name gains a ["@corner"] suffix
    except for {!typical}). *)

val derate_library : t -> Cell.t list -> Cell.t list

val derate_netlist_cells :
  t -> (Cell.t -> Cell.t)
(** Convenience shape for [Tka_circuit.Transform.map ~cell_of] —
    composes with a gate accessor at the call site. *)
