let name = "tka013"

(* Base (X1) parameters per logic function:
   (cell base name, input pin names, logic, input cap pF, intrinsic ns,
    drive kΩ, intrinsic slew ns, slew kΩ). *)
let base_cells =
  [
    ("INV", [ "A" ], "!A", 0.0030, 0.018, 1.17, 0.016, 1.4);
    ("BUF", [ "A" ], "A", 0.0030, 0.034, 1.08, 0.018, 1.3);
    ("NAND2", [ "A"; "B" ], "!(A*B)", 0.0034, 0.024, 1.3, 0.020, 1.53);
    ("NAND3", [ "A"; "B"; "C" ], "!(A*B*C)", 0.0037, 0.030, 1.48, 0.024, 1.71);
    ("NOR2", [ "A"; "B" ], "!(A+B)", 0.0035, 0.027, 1.44, 0.022, 1.67);
    ("NOR3", [ "A"; "B"; "C" ], "!(A+B+C)", 0.0038, 0.034, 1.67, 0.026, 1.89);
    ("AND2", [ "A"; "B" ], "A*B", 0.0033, 0.040, 1.22, 0.021, 1.44);
    ("OR2", [ "A"; "B" ], "A+B", 0.0033, 0.043, 1.26, 0.022, 1.48);
    ("XOR2", [ "A"; "B" ], "A^B", 0.0045, 0.052, 1.35, 0.026, 1.62);
    ("XNOR2", [ "A"; "B" ], "!(A^B)", 0.0045, 0.054, 1.35, 0.026, 1.62);
    ("AOI21", [ "A"; "B"; "C" ], "!((A*B)+C)", 0.0036, 0.032, 1.53, 0.024, 1.75);
    ("OAI21", [ "A"; "B"; "C" ], "!((A+B)*C)", 0.0036, 0.033, 1.53, 0.024, 1.75);
  ]

(* Drive variants: name suffix, resistance divisor, input-cap multiplier,
   intrinsic-delay multiplier. *)
let drives = [ ("X1", 1.0, 1.0, 1.0); ("X2", 2.0, 1.7, 0.95); ("X4", 4.0, 2.9, 0.92) ]

let build (base, pins, logic, cap, d0, rdrv, s0, rslew) (suffix, rdiv, capx, dx) =
  let inputs =
    List.map (fun p -> Cell.input_pin ~name:p ~capacitance:(cap *. capx)) pins
  in
  Cell.make
    ~name:(base ^ "_" ^ suffix)
    ~inputs
    ~output:(Cell.output_pin ~name:"Y")
    ~logic
    ~intrinsic_delay:(d0 *. dx)
    ~drive_resistance:(rdrv /. rdiv)
    ~intrinsic_slew:(s0 *. dx)
    ~slew_resistance:(rslew /. rdiv)

let cells =
  List.concat_map (fun b -> List.map (build b) drives) base_cells

let find n = List.find_opt (fun c -> c.Cell.name = n) cells

let find_exn n =
  match find n with Some c -> c | None -> raise Not_found

let inverter = find_exn "INV_X1"
let buffer = find_exn "BUF_X1"

let combinational_of_arity n = List.filter (fun c -> Cell.arity c = n) cells

let to_liberty () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "library(%s) {\n" name);
  List.iter
    (fun c ->
      Buffer.add_string buf (Printf.sprintf "  cell(%s) {\n" c.Cell.name);
      Buffer.add_string buf
        (Printf.sprintf "    intrinsic_delay : %.6f;\n" c.Cell.intrinsic_delay);
      Buffer.add_string buf
        (Printf.sprintf "    drive_resistance : %.6f;\n" c.Cell.drive_resistance);
      Buffer.add_string buf
        (Printf.sprintf "    intrinsic_slew : %.6f;\n" c.Cell.intrinsic_slew);
      Buffer.add_string buf
        (Printf.sprintf "    slew_resistance : %.6f;\n" c.Cell.slew_resistance);
      Buffer.add_string buf (Printf.sprintf "    function : \"%s\";\n" c.Cell.logic);
      List.iter
        (fun p ->
          Buffer.add_string buf
            (Printf.sprintf
               "    pin(%s) { direction : input; capacitance : %.6f; }\n"
               p.Cell.pin_name p.Cell.capacitance))
        c.Cell.inputs;
      Buffer.add_string buf
        (Printf.sprintf "    pin(%s) { direction : output; }\n"
           c.Cell.output.Cell.pin_name);
      Buffer.add_string buf "  }\n")
    cells;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
