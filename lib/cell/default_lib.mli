(** The built-in "tka013" standard-cell library.

    A 0.13µm-class combinational library replacing the commercial
    library of the paper's experimental flow. Parameters are chosen so
    that typical loaded stage delays land in the 0.05–0.15 ns range,
    putting the benchmark circuit delays in the paper's 0.4–3.1 ns
    envelope.

    Each logic function comes in drive strengths X1, X2 and X4 (halved /
    quartered drive resistance, proportionally larger input pins). *)

val name : string
(** ["tka013"]. *)

val cells : Cell.t list
(** All cells, stable order. *)

val find : string -> Cell.t option
(** Look up by cell name, e.g. ["NAND2_X1"]. *)

val find_exn : string -> Cell.t
(** @raise Not_found when the cell does not exist. *)

val inverter : Cell.t
(** INV_X1, the canonical single-input cell. *)

val buffer : Cell.t
(** BUF_X1. *)

val combinational_of_arity : int -> Cell.t list
(** All X1–X4 cells with exactly that many inputs. *)

val to_liberty : unit -> string
(** Render the library in the Liberty-lite text format understood by
    {!Liberty_lite.parse} (round-trips). *)
