type t = {
  slew_axis : float array;
  load_axis : float array;
  values : float array array;
}

let strictly_increasing a =
  let ok = ref (Array.length a >= 2) in
  for i = 0 to Array.length a - 2 do
    if a.(i) >= a.(i + 1) then ok := false
  done;
  !ok

let create ~slews ~loads ~values =
  if not (strictly_increasing slews) then
    invalid_arg "Nldm.create: slew axis must be strictly increasing (>= 2 points)";
  if not (strictly_increasing loads) then
    invalid_arg "Nldm.create: load axis must be strictly increasing (>= 2 points)";
  if Array.length values <> Array.length slews then
    invalid_arg "Nldm.create: row count must match slew axis";
  Array.iter
    (fun row ->
      if Array.length row <> Array.length loads then
        invalid_arg "Nldm.create: column count must match load axis")
    values;
  { slew_axis = slews; load_axis = loads; values }

let slews t = Array.copy t.slew_axis
let loads t = Array.copy t.load_axis

(* index of the cell containing x: largest i with axis.(i) <= x, clamped
   to [0, n-2] so (i, i+1) is always a valid segment *)
let segment axis x =
  let n = Array.length axis in
  let rec go i = if i >= n - 1 then n - 2 else if axis.(i + 1) > x then i else go (i + 1) in
  if x <= axis.(0) then 0 else go 0

let m_lookups = Tka_obs.Metrics.Counter.make "nldm.lookups"

let lookup t ~input_slew ~load =
  Tka_obs.Metrics.Counter.incr m_lookups;
  let clamp axis x =
    if x < axis.(0) then axis.(0)
    else if x > axis.(Array.length axis - 1) then axis.(Array.length axis - 1)
    else x
  in
  let s = clamp t.slew_axis input_slew in
  let l = clamp t.load_axis load in
  let i = segment t.slew_axis s in
  let j = segment t.load_axis l in
  let s0 = t.slew_axis.(i) and s1 = t.slew_axis.(i + 1) in
  let l0 = t.load_axis.(j) and l1 = t.load_axis.(j + 1) in
  let fs = (s -. s0) /. (s1 -. s0) in
  let fl = (l -. l0) /. (l1 -. l0) in
  let v00 = t.values.(i).(j)
  and v01 = t.values.(i).(j + 1)
  and v10 = t.values.(i + 1).(j)
  and v11 = t.values.(i + 1).(j + 1) in
  ((1. -. fs) *. (((1. -. fl) *. v00) +. (fl *. v01)))
  +. (fs *. (((1. -. fl) *. v10) +. (fl *. v11)))

let default_slews = [| 0.005; 0.02; 0.05; 0.12; 0.30 |]
let default_loads = [| 0.001; 0.005; 0.015; 0.04; 0.08; 0.15 |]

let of_linear ?(slews = default_slews) ?(loads = default_loads) cell =
  let sample f =
    Array.map
      (fun s -> Array.map (fun l -> f ~input_slew:s ~load:l) loads)
      slews
  in
  let delay_table =
    sample (fun ~input_slew:_ ~load -> Delay_model.gate_delay ~cell ~load)
  in
  let slew_table =
    sample (fun ~input_slew ~load -> Delay_model.output_slew ~cell ~input_slew ~load)
  in
  ( create ~slews ~loads ~values:delay_table,
    create ~slews ~loads ~values:slew_table )

let monotone_in_load t =
  let ok = ref true in
  Array.iter
    (fun row ->
      for j = 0 to Array.length row - 2 do
        if row.(j) > row.(j + 1) +. 1e-12 then ok := false
      done)
    t.values;
  !ok

let pp ppf t =
  Format.fprintf ppf "@[<v>nldm %dx%d:@ " (Array.length t.slew_axis)
    (Array.length t.load_axis);
  Array.iteri
    (fun i row ->
      Format.fprintf ppf "slew %g:" t.slew_axis.(i);
      Array.iter (fun v -> Format.fprintf ppf " %.4f" v) row;
      Format.fprintf ppf "@ ")
    t.values;
  Format.fprintf ppf "@]"
