(** Table-based (NLDM-style) nonlinear delay model.

    The paper's future work names "extension to non-linear driver
    models". This module provides the standard industry stepping stone:
    two-dimensional lookup tables over (input slew × output load) with
    bilinear interpolation, the Liberty NLDM formulation. A table can
    be fitted from silicon/SPICE data or synthesised from the linear
    model ({!of_linear}), and {!lookup} clamps at the characterised
    corners like real timers do.

    The analyses in this library run on the linear model; NLDM tables
    are the drop-in data structure for a nonlinear [Delay_calc]
    replacement. *)

type t
(** An immutable 2-D table: delay (or slew) in ns indexed by input slew
    (ns) and output load (pF). *)

val create :
  slews:float array -> loads:float array -> values:float array array -> t
(** [create ~slews ~loads ~values] with [values.(i).(j)] the value at
    [slews.(i)], [loads.(j)]. Axes must be strictly increasing with at
    least two points each; the value matrix must be rectangular and
    match the axes. @raise Invalid_argument otherwise. *)

val lookup : t -> input_slew:float -> load:float -> float
(** Bilinear interpolation inside the characterised region; clamped
    extrapolation outside (the conservative standard behaviour). *)

val slews : t -> float array
val loads : t -> float array

val of_linear :
  ?slews:float array -> ?loads:float array -> Cell.t -> t * t
(** [of_linear cell] synthesises (delay table, slew table) sampling the
    linear model on default axes (5 slews × 6 loads spanning the
    library's operating range). Exact at grid points; between points
    the bilinear surface coincides with the linear model (the model is
    affine in load and, for the slew table, piecewise-affine in input
    slew). *)

val monotone_in_load : t -> bool
(** Sanity predicate used by library validation: values never decrease
    as load grows (at fixed slew). *)

val pp : Format.formatter -> t -> unit
