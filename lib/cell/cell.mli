(** Standard-cell descriptions.

    A cell is a single-output combinational gate with a linear
    (Thevenin-style) timing and noise model, the abstraction level used
    throughout the paper ("we make the engineering decision to use the
    linear noise framework"):

    - propagation delay [intrinsic_delay + drive_resistance * C_load];
    - output slew [intrinsic_slew + slew_resistance * C_load], floored by
      a fraction of the input slew;
    - when the output is quiet, the driver holds the net through
      [drive_resistance], which sets crosstalk pulse height and decay.

    Units: time ns, capacitance pF, resistance kΩ (so kΩ·pF = ns). *)

type pin_direction = Input | Output

type pin = {
  pin_name : string;
  direction : pin_direction;
  capacitance : float;  (** pF; 0 for outputs *)
}

type t = private {
  name : string;
  inputs : pin list;  (** at least one, all [Input] *)
  output : pin;  (** [Output] *)
  logic : string;  (** informal boolean function, for reports/DOT *)
  intrinsic_delay : float;  (** ns *)
  drive_resistance : float;  (** kΩ *)
  intrinsic_slew : float;  (** ns *)
  slew_resistance : float;  (** kΩ *)
}

val make :
  name:string ->
  inputs:pin list ->
  output:pin ->
  logic:string ->
  intrinsic_delay:float ->
  drive_resistance:float ->
  intrinsic_slew:float ->
  slew_resistance:float ->
  t
(** Validates directions, positivity of the model parameters and
    uniqueness of pin names. *)

val input_pin : name:string -> capacitance:float -> pin
val output_pin : name:string -> pin

val arity : t -> int
(** Number of input pins. *)

val find_input : t -> string -> pin option
val input_names : t -> string list

val input_capacitance : t -> string -> float
(** Capacitance of the named input pin. Raises [Not_found] if absent. *)

val equal : t -> t -> bool
(** Structural equality on all fields. *)

val pp : Format.formatter -> t -> unit
