type pin_direction = Input | Output

type pin = { pin_name : string; direction : pin_direction; capacitance : float }

type t = {
  name : string;
  inputs : pin list;
  output : pin;
  logic : string;
  intrinsic_delay : float;
  drive_resistance : float;
  intrinsic_slew : float;
  slew_resistance : float;
}

let input_pin ~name ~capacitance =
  if capacitance < 0. then invalid_arg "Cell.input_pin: negative capacitance";
  { pin_name = name; direction = Input; capacitance }

let output_pin ~name = { pin_name = name; direction = Output; capacitance = 0. }

let make ~name ~inputs ~output ~logic ~intrinsic_delay ~drive_resistance
    ~intrinsic_slew ~slew_resistance =
  if inputs = [] then invalid_arg "Cell.make: a cell needs at least one input";
  if List.exists (fun p -> p.direction <> Input) inputs then
    invalid_arg "Cell.make: non-input pin in inputs";
  if output.direction <> Output then invalid_arg "Cell.make: output pin has wrong direction";
  let names = output.pin_name :: List.map (fun p -> p.pin_name) inputs in
  let dedup = List.sort_uniq String.compare names in
  if List.length dedup <> List.length names then
    invalid_arg "Cell.make: duplicate pin names";
  if intrinsic_delay <= 0. || drive_resistance <= 0. || intrinsic_slew <= 0.
     || slew_resistance <= 0.
  then invalid_arg "Cell.make: model parameters must be positive";
  { name; inputs; output; logic; intrinsic_delay; drive_resistance;
    intrinsic_slew; slew_resistance }

let arity t = List.length t.inputs

let find_input t name = List.find_opt (fun p -> p.pin_name = name) t.inputs

let input_names t = List.map (fun p -> p.pin_name) t.inputs

let input_capacitance t name =
  match find_input t name with
  | Some p -> p.capacitance
  | None -> raise Not_found

let equal a b = a = b

let pp ppf t =
  Format.fprintf ppf "%s(%s -> %s) d=%g+%g*C slew=%g+%g*C" t.name
    (String.concat "," (input_names t))
    t.output.pin_name t.intrinsic_delay t.drive_resistance t.intrinsic_slew
    t.slew_resistance
