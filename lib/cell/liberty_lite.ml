module Log = Tka_obs.Log

let log_src = Log.Src.create "liberty" ~doc:"Liberty-lite cell-library parser"
let m_cells = Tka_obs.Metrics.Counter.make "liberty.cells_parsed"

type t = { library_name : string; cells : Cell.t list }

exception Parse_error of { line : int; message : string }

(* ------------------------------------------------------------------ *)
(* Lexer                                                              *)
(* ------------------------------------------------------------------ *)

type token =
  | Ident of string
  | Number of float
  | Str of string
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Colon
  | Semi
  | Eof

type lexer = {
  src : string;
  mutable pos : int;
  mutable line : int;
}

let error lx message = raise (Parse_error { line = lx.line; message })

let peek_char lx = if lx.pos < String.length lx.src then Some lx.src.[lx.pos] else None

let advance lx =
  (match peek_char lx with Some '\n' -> lx.line <- lx.line + 1 | _ -> ());
  lx.pos <- lx.pos + 1

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_'

let is_number_start c = (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.'

let rec skip_trivia lx =
  match peek_char lx with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance lx;
    skip_trivia lx
  | Some '/' when lx.pos + 1 < String.length lx.src -> (
    match lx.src.[lx.pos + 1] with
    | '/' ->
      while peek_char lx <> None && peek_char lx <> Some '\n' do
        advance lx
      done;
      skip_trivia lx
    | '*' ->
      advance lx;
      advance lx;
      let rec close () =
        match peek_char lx with
        | None -> error lx "unterminated block comment"
        | Some '*' when lx.pos + 1 < String.length lx.src && lx.src.[lx.pos + 1] = '/' ->
          advance lx;
          advance lx
        | Some _ ->
          advance lx;
          close ()
      in
      close ();
      skip_trivia lx
    | _ -> ())
  | _ -> ()

let lex_token lx =
  skip_trivia lx;
  match peek_char lx with
  | None -> Eof
  | Some '(' -> advance lx; Lparen
  | Some ')' -> advance lx; Rparen
  | Some '{' -> advance lx; Lbrace
  | Some '}' -> advance lx; Rbrace
  | Some ':' -> advance lx; Colon
  | Some ';' -> advance lx; Semi
  | Some '"' ->
    advance lx;
    let start = lx.pos in
    while peek_char lx <> None && peek_char lx <> Some '"' do
      advance lx
    done;
    if peek_char lx = None then error lx "unterminated string";
    let s = String.sub lx.src start (lx.pos - start) in
    advance lx;
    Str s
  | Some c when is_number_start c ->
    let start = lx.pos in
    let accept c =
      is_number_start c || c = 'e' || c = 'E'
    in
    while (match peek_char lx with Some c -> accept c | None -> false) do
      advance lx
    done;
    let s = String.sub lx.src start (lx.pos - start) in
    (match float_of_string_opt s with
    | Some f when Float.is_finite f -> Number f
    | Some _ -> error lx (Printf.sprintf "non-finite number %S" s)
    | None -> error lx (Printf.sprintf "malformed number %S" s))
  | Some c when is_ident_char c ->
    let start = lx.pos in
    while (match peek_char lx with Some c -> is_ident_char c | None -> false) do
      advance lx
    done;
    Ident (String.sub lx.src start (lx.pos - start))
  | Some c -> error lx (Printf.sprintf "unexpected character %C" c)

(* ------------------------------------------------------------------ *)
(* Parser                                                             *)
(* ------------------------------------------------------------------ *)

type parser_state = { lx : lexer; mutable tok : token }

let next st = st.tok <- lex_token st.lx

let expect st tok what =
  if st.tok = tok then next st
  else error st.lx (Printf.sprintf "expected %s" what)

let expect_ident st what =
  match st.tok with
  | Ident s ->
    next st;
    s
  | _ -> error st.lx (Printf.sprintf "expected %s" what)

type value = Vnum of float | Vstr of string

let parse_value st =
  match st.tok with
  | Number f ->
    next st;
    Vnum f
  | Str s ->
    next st;
    Vstr s
  | Ident s ->
    next st;
    Vstr s
  | Lparen | Rparen | Lbrace | Rbrace | Colon | Semi | Eof ->
    error st.lx "expected a value"

(* attr := IDENT ':' value ';' — the IDENT is already consumed. *)
let parse_attr_tail st =
  expect st Colon "':'";
  let v = parse_value st in
  expect st Semi "';'";
  v

let num st key = function
  | Vnum f -> f
  | Vstr _ -> error st.lx (Printf.sprintf "attribute %s must be numeric" key)

let str st key = function
  | Vstr s -> s
  | Vnum _ -> error st.lx (Printf.sprintf "attribute %s must be a string" key)

type raw_pin = {
  rp_name : string;
  rp_direction : string option;
  rp_capacitance : float option;
}

let parse_pin st =
  (* 'pin' consumed *)
  expect st Lparen "'('";
  let pname = expect_ident st "pin name" in
  expect st Rparen "')'";
  expect st Lbrace "'{'";
  let direction = ref None and capacitance = ref None in
  let rec items () =
    match st.tok with
    | Rbrace ->
      next st
    | Ident key ->
      next st;
      let v = parse_attr_tail st in
      (match key with
      | "direction" -> direction := Some (str st key v)
      | "capacitance" -> capacitance := Some (num st key v)
      | _ ->
        (* tolerated, but no longer silent *)
        Log.warn log_src (fun m ->
            m
              ~fields:
                [
                  Log.int "line" st.lx.line;
                  Log.str "pin" pname;
                  Log.str "attribute" key;
                ]
              "line %d: ignoring unknown pin attribute %S on pin %s" st.lx.line
              key pname));
      items ()
    | _ -> error st.lx "expected pin attribute or '}'"
  in
  items ();
  { rp_name = pname; rp_direction = !direction; rp_capacitance = !capacitance }

let parse_cell st =
  (* 'cell' consumed *)
  expect st Lparen "'('";
  let cname = expect_ident st "cell name" in
  expect st Rparen "')'";
  expect st Lbrace "'{'";
  let attrs = Hashtbl.create 8 in
  let pins = ref [] in
  let rec items () =
    match st.tok with
    | Rbrace ->
      next st
    | Ident "pin" ->
      next st;
      pins := parse_pin st :: !pins;
      items ()
    | Ident key ->
      next st;
      let v = parse_attr_tail st in
      Hashtbl.replace attrs key v;
      items ()
    | _ -> error st.lx "expected cell attribute, pin or '}'"
  in
  items ();
  let required key =
    match Hashtbl.find_opt attrs key with
    | Some v -> num st key v
    | None ->
      error st.lx (Printf.sprintf "cell %s: missing attribute %s" cname key)
  in
  let logic =
    match Hashtbl.find_opt attrs "function" with
    | Some v -> str st "function" v
    | None -> ""
  in
  let classify p =
    match p.rp_direction with
    | Some "input" -> (
      match p.rp_capacitance with
      | Some c -> (
        try `Input (Cell.input_pin ~name:p.rp_name ~capacitance:c)
        with Invalid_argument m ->
          error st.lx (Printf.sprintf "cell %s: %s" cname m))
      | None ->
        error st.lx
          (Printf.sprintf "cell %s: input pin %s has no capacitance" cname p.rp_name))
    | Some "output" -> `Output (Cell.output_pin ~name:p.rp_name)
    | Some d ->
      error st.lx (Printf.sprintf "cell %s: pin %s: bad direction %S" cname p.rp_name d)
    | None ->
      error st.lx (Printf.sprintf "cell %s: pin %s has no direction" cname p.rp_name)
  in
  let classified = List.rev_map classify !pins in
  let inputs =
    List.filter_map (function `Input p -> Some p | `Output _ -> None) classified
  in
  let outputs =
    List.filter_map (function `Output p -> Some p | `Input _ -> None) classified
  in
  let output =
    match outputs with
    | [ o ] -> o
    | [] -> error st.lx (Printf.sprintf "cell %s: no output pin" cname)
    | _ -> error st.lx (Printf.sprintf "cell %s: multiple output pins" cname)
  in
  try
    Cell.make ~name:cname ~inputs ~output ~logic
      ~intrinsic_delay:(required "intrinsic_delay")
      ~drive_resistance:(required "drive_resistance")
      ~intrinsic_slew:(required "intrinsic_slew")
      ~slew_resistance:(required "slew_resistance")
  with Invalid_argument m -> error st.lx (Printf.sprintf "cell %s: %s" cname m)

let parse src =
  Tka_obs.Trace.with_span ~cat:"parse" "liberty.parse" @@ fun () ->
  let st = { lx = { src; pos = 0; line = 1 }; tok = Eof } in
  next st;
  (match st.tok with
  | Ident "library" -> next st
  | _ -> error st.lx "expected 'library'");
  expect st Lparen "'('";
  let library_name = expect_ident st "library name" in
  expect st Rparen "')'";
  expect st Lbrace "'{'";
  let cells = ref [] in
  let rec items () =
    match st.tok with
    | Rbrace ->
      next st
    | Ident "cell" ->
      next st;
      cells := parse_cell st :: !cells;
      items ()
    | _ -> error st.lx "expected 'cell' or '}'"
  in
  items ();
  (match st.tok with
  | Eof -> ()
  | _ -> error st.lx "trailing content after library");
  Tka_obs.Metrics.Counter.add m_cells (List.length !cells);
  Log.info log_src (fun m ->
      m
        ~fields:
          [ Log.str "library" library_name; Log.int "cells" (List.length !cells) ]
        "parsed library %s: %d cells" library_name (List.length !cells));
  { library_name; cells = List.rev !cells }

let parse_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  parse src

let find t n = List.find_opt (fun c -> c.Cell.name = n) t.cells
