let slew_leak = 0.25

let gate_delay ~cell ~load =
  if load < 0. then invalid_arg "Delay_model.gate_delay: negative load";
  cell.Cell.intrinsic_delay +. (cell.Cell.drive_resistance *. load)

let output_slew ~cell ~input_slew ~load =
  if load < 0. then invalid_arg "Delay_model.output_slew: negative load";
  if input_slew < 0. then invalid_arg "Delay_model.output_slew: negative input slew";
  Float.max
    (cell.Cell.intrinsic_slew +. (cell.Cell.slew_resistance *. load))
    (slew_leak *. input_slew)

let holding_resistance cell = cell.Cell.drive_resistance

let rc ~resistance ~capacitance = resistance *. capacitance
