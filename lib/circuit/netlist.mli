(** Gate-level netlists with coupling capacitances.

    The static structure every analysis in this library runs on: a DAG
    of standard cells connected by nets, plus a list of net-to-net
    coupling capacitances extracted from layout. Construct values with
    {!Builder}; a [Netlist.t] is immutable and validated (single driver
    per internal net, complete pin maps, acyclic).

    Identifiers ([net_id], [gate_id], [coupling_id]) are dense integers
    suitable for array indexing. *)

type net_id = int
type gate_id = int
type coupling_id = int

exception Link_error of { source : string; message : string }
(** Raised when a parsed annotation (SPEF parasitics, SDF delays, ...)
    names a net or instance that does not exist in the netlist it is
    being linked against. [source] is the annotation format
    (["spef"], ["sdf"], ...). Unlike {!Spef_lite.Parse_error} this is
    not a syntax problem — the file is well-formed but refers to a
    different design — so it gets its own structured exception instead
    of a raw [Invalid_argument]. *)

val link_error : string -> ('a, unit, string, 'b) format4 -> 'a
(** [link_error source fmt ...] raises {!Link_error} with a formatted
    message (helper for the annotation parsers). *)

type driver =
  | Primary_input  (** driven from outside the circuit *)
  | Driven_by of gate_id

type sink = { sink_gate : gate_id; sink_pin : string }

type net = {
  net_id : net_id;
  net_name : string;
  wire_cap : float;  (** lumped wire-to-ground capacitance, pF *)
  wire_res : float;  (** lumped wire resistance, kΩ *)
  driver : driver;
  sinks : sink list;
  is_output : bool;  (** primary output *)
}

type gate = {
  gate_id : gate_id;
  gate_name : string;
  cell : Tka_cell.Cell.t;
  fanin : (string * net_id) list;  (** one entry per input pin *)
  fanout : net_id;
}

type coupling = {
  coupling_id : coupling_id;
  net_a : net_id;
  net_b : net_id;
  coupling_cap : float;  (** pF *)
}

type t

(** {1 Access} *)

val name : t -> string
val num_nets : t -> int
val num_gates : t -> int
val num_couplings : t -> int

val net : t -> net_id -> net
val gate : t -> gate_id -> gate
val coupling : t -> coupling_id -> coupling

val nets : t -> net array
val gates : t -> gate array
val couplings : t -> coupling array

val inputs : t -> net_id list
(** Primary-input nets, in creation order. *)

val outputs : t -> net_id list
(** Primary-output nets. *)

val find_net : t -> string -> net option
val find_net_exn : t -> string -> net
val find_gate : t -> string -> gate option

val couplings_of_net : t -> net_id -> coupling_id list
(** All coupling caps incident to the net (either side). *)

val coupling_partner : t -> coupling_id -> net_id -> net_id
(** The other side of the coupling. Raises [Invalid_argument] if the
    given net is on neither side. *)

val driver_gate : t -> net_id -> gate option
(** The gate driving a net, [None] for primary inputs. *)

val fanin_nets : t -> net_id -> net_id list
(** The input nets of the net's driver gate ([] for primary inputs). *)

val fanout_nets : t -> net_id -> net_id list
(** Output nets of all gates this net feeds. *)

val total_pin_cap : t -> net_id -> float
(** Sum of the input-pin capacitances of all sinks, pF. *)

val ground_cap : t -> net_id -> float
(** [wire_cap + total_pin_cap]: capacitance to ground seen on the net,
    excluding coupling. *)

val total_coupling_cap : t -> net_id -> float
(** Sum of all coupling caps incident to the net, pF. *)

val total_cap : t -> net_id -> float
(** [ground_cap + total_coupling_cap]: the load used for nominal delay
    (quiet neighbours, Miller factor 1). *)

(** {1 Internal constructor (used by {!Builder})} *)

val unsafe_create :
  name:string ->
  nets:net array ->
  gates:gate array ->
  couplings:coupling array ->
  inputs:net_id list ->
  outputs:net_id list ->
  t
(** Assembles a netlist {e without} validation; use {!Builder.finalize}
    instead, which validates and then calls this. *)
