module N = Netlist

exception Parse_error of { line : int; message : string }

let fail line fmt =
  Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

let split_words s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.concat_map (String.split_on_char '\r')
  |> List.filter (fun w -> w <> "")

let strip_comment s =
  match String.index_opt s '#' with
  | Some i -> String.sub s 0 i
  | None -> s

(* "key=value" -> (key, value) *)
let parse_binding line w =
  match String.index_opt w '=' with
  | Some i ->
    (String.sub w 0 i, String.sub w (i + 1) (String.length w - i - 1))
  | None -> fail line "expected key=value, got %S" w

let parse_float line key v =
  match float_of_string_opt v with
  | Some f when Float.is_finite f -> f
  | Some _ -> fail line "%s: non-finite number %S" key v
  | None -> fail line "%s: malformed number %S" key v

(* optional cap=/res= bindings for net declarations *)
let parse_parasitics line words =
  List.fold_left
    (fun (cap, res) w ->
      match parse_binding line w with
      | "cap", v -> (Some (parse_float line "cap" v), res)
      | "res", v -> (cap, Some (parse_float line "res" v))
      | k, _ -> fail line "unknown net attribute %S" k)
    (None, None) words

let parse ~lookup src =
  let b = ref (Builder.create ()) in
  let have_circuit = ref false in
  let names = Hashtbl.create 64 in
  let resolve line name =
    match Hashtbl.find_opt names name with
    | Some id -> id
    | None -> fail line "undeclared net %S" name
  in
  let wrap line f = try f () with Builder.Invalid m -> fail line "%s" m in
  let handle line_no line =
    match split_words (strip_comment line) with
    | [] -> ()
    | "circuit" :: rest -> (
      match rest with
      | [ name ] ->
        if !have_circuit then fail line_no "duplicate circuit line";
        if Builder.num_nets !b > 0 then
          fail line_no "circuit line must precede all declarations";
        have_circuit := true;
        b := Builder.create ~name ()
      | _ -> fail line_no "usage: circuit NAME")
    | "input" :: name :: attrs ->
      let cap, res = parse_parasitics line_no attrs in
      let id =
        wrap line_no (fun () -> Builder.add_input !b ?wire_cap:cap ?wire_res:res name)
      in
      Hashtbl.replace names name id
    | "net" :: name :: attrs ->
      let cap, res = parse_parasitics line_no attrs in
      let id =
        wrap line_no (fun () -> Builder.add_net !b ?wire_cap:cap ?wire_res:res name)
      in
      Hashtbl.replace names name id
    | "output" :: rest -> (
      match rest with
      | [ name ] ->
        wrap line_no (fun () -> Builder.mark_output !b (resolve line_no name))
      | _ -> fail line_no "usage: output NET")
    | "gate" :: name :: cellname :: bindings ->
      let cell =
        match lookup cellname with
        | Some c -> c
        | None -> fail line_no "unknown cell %S" cellname
      in
      let bound = List.map (parse_binding line_no) bindings in
      let out_pin = cell.Tka_cell.Cell.output.Tka_cell.Cell.pin_name in
      let output =
        match List.assoc_opt out_pin bound with
        | Some netname -> resolve line_no netname
        | None -> fail line_no "gate %S: missing output binding %s=" name out_pin
      in
      let inputs =
        List.filter (fun (p, _) -> p <> out_pin) bound
        |> List.map (fun (p, netname) -> (p, resolve line_no netname))
      in
      ignore
        (wrap line_no (fun () -> Builder.add_gate !b ~name ~cell ~inputs ~output))
    | "coupling" :: na :: nb :: attrs ->
      let cap =
        match attrs with
        | [ w ] -> (
          match parse_binding line_no w with
          | "cap", v -> parse_float line_no "cap" v
          | k, _ -> fail line_no "expected cap=, got %S" k)
        | [] | _ :: _ -> fail line_no "usage: coupling NET NET cap=VALUE"
      in
      ignore
        (wrap line_no (fun () ->
             Builder.add_coupling !b (resolve line_no na) (resolve line_no nb) cap))
    | kw :: _ -> fail line_no "unknown keyword %S" kw
  in
  List.iteri
    (fun i line -> handle (i + 1) line)
    (String.split_on_char '\n' src);
  try Builder.finalize !b with Builder.Invalid m -> fail 0 "%s" m

let parse_file ~lookup path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  parse ~lookup src

let print nl =
  let buf = Buffer.create 4096 in
  let net_name id = (N.net nl id).N.net_name in
  Buffer.add_string buf (Printf.sprintf "circuit %s\n" (N.name nl));
  Array.iter
    (fun n ->
      let kw = match n.N.driver with N.Primary_input -> "input" | N.Driven_by _ -> "net" in
      Buffer.add_string buf
        (Printf.sprintf "%s %s cap=%.6g res=%.6g\n" kw n.N.net_name n.N.wire_cap
           n.N.wire_res))
    (N.nets nl);
  Array.iter
    (fun g ->
      let bindings =
        List.map (fun (p, id) -> Printf.sprintf "%s=%s" p (net_name id)) g.N.fanin
        @ [
            Printf.sprintf "%s=%s"
              g.N.cell.Tka_cell.Cell.output.Tka_cell.Cell.pin_name
              (net_name g.N.fanout);
          ]
      in
      Buffer.add_string buf
        (Printf.sprintf "gate %s %s %s\n" g.N.gate_name g.N.cell.Tka_cell.Cell.name
           (String.concat " " bindings)))
    (N.gates nl);
  List.iter
    (fun id -> Buffer.add_string buf (Printf.sprintf "output %s\n" (net_name id)))
    (N.outputs nl);
  Array.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "coupling %s %s cap=%.6g\n" (net_name c.N.net_a)
           (net_name c.N.net_b) c.N.coupling_cap))
    (N.couplings nl);
  Buffer.contents buf

let write_file nl path =
  let oc = open_out path in
  output_string oc (print nl);
  close_out oc
