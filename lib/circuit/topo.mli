(** Topological utilities over a netlist.

    The top-k algorithm propagates irredundant lists "in topological
    order" (Section 3 of the paper); this module provides that order
    plus the transitive fanin cones needed to reason about indirect
    aggressors. All results are computed once per netlist and shared. *)

type t

val create : Netlist.t -> t
(** Precomputes orders, levels and adjacency. O(V + E). *)

val netlist : t -> Netlist.t

val gate_order : t -> Netlist.gate_id array
(** Gates in topological order (fanin before fanout). *)

val net_order : t -> Netlist.net_id array
(** Nets in topological order: primary inputs first (creation order),
    then each gate output as its gate is ordered. *)

val net_level : t -> Netlist.net_id -> int
(** Logic depth: 0 for primary inputs, 1 + max over fanin otherwise. *)

val max_level : t -> int

val level_nets : t -> Netlist.net_id array array
(** Nets grouped by logic depth: [(level_nets t).(l)] lists the nets of
    level [l] in {!net_order} order. Because {!net_order} is produced by
    a FIFO (Kahn) traversal it is level-monotone, so concatenating the
    groups in increasing [l] reproduces {!net_order} exactly. A net's
    fanin lies strictly below its own level, which is what makes a
    level-synchronous parallel sweep safe (see [docs/parallelism.md]). *)

val cone_shards : t -> Netlist.net_id array array
(** Connected components of the net graph under gate-fanin and coupling
    edges — the closure of everything the engine consults when
    enumerating any member net. Shards are ordered by first appearance
    in {!net_order} and each shard lists its nets in {!net_order} order
    (level-monotone), so sweeping a shard sequentially is a valid
    topological sweep of it. Computed on demand and memoised; not
    thread-safe on first call. Concatenating the shards in an
    interleave respecting per-shard order reproduces a permutation of
    {!net_order} with identical per-net inputs — the basis of the
    cone-sharded parallel sweep's determinism. *)

val fanout_cone : t -> Netlist.net_id list -> bool array
(** [fanout_cone t seeds] has [true] at every net reachable from any
    seed via driver→fanout edges, the seeds included. This is the set
    of nets whose timing can change when the seeds' local parameters
    are edited (ignoring crosstalk feedback; see [Tka_incr.Dirty] for
    the coupling-aware closure). O(V + E), not memoised. *)

val transitive_fanin : t -> Netlist.net_id -> bool array
(** [transitive_fanin t n] has [true] at every net in the fanin cone of
    [n], including [n] itself. Computed on demand and memoised. *)

val in_fanin_cone : t -> cone_of:Netlist.net_id -> Netlist.net_id -> bool
(** [in_fanin_cone t ~cone_of:n m]: is [m] in the transitive fanin of
    [n] (inclusive)? *)

val fanin_cone_couplings : t -> Netlist.net_id -> Netlist.coupling_id list
(** All coupling caps incident to any net in the strict fanin cone of
    the given net (excluding couplings that touch only the net
    itself). These are the candidate indirect-aggressor couplings. *)

val sinks_reachable_from : t -> Netlist.net_id -> Netlist.net_id list
(** Primary-output nets reachable from the given net. *)
