module N = Netlist
module Log = Tka_obs.Log

let log_src = Log.Src.create "verilog" ~doc:"Verilog-lite structural parser"
let m_modules = Tka_obs.Metrics.Counter.make "verilog.modules_parsed"
let m_gates = Tka_obs.Metrics.Counter.make "verilog.gates_instantiated"

exception Parse_error of { line : int; message : string }

(* ------------------------------------------------------------------ *)
(* Lexer                                                              *)
(* ------------------------------------------------------------------ *)

type token =
  | Ident of string
  | Lparen
  | Rparen
  | Semi
  | Comma
  | Dot
  | Eof

type lexer = { src : string; mutable pos : int; mutable line : int }

let error lx message = raise (Parse_error { line = lx.line; message })

let peek_char lx = if lx.pos < String.length lx.src then Some lx.src.[lx.pos] else None

let advance lx =
  (match peek_char lx with Some '\n' -> lx.line <- lx.line + 1 | _ -> ());
  lx.pos <- lx.pos + 1

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_' || c = '$'

let rec skip_trivia lx =
  match peek_char lx with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance lx;
    skip_trivia lx
  | Some '/' when lx.pos + 1 < String.length lx.src -> (
    match lx.src.[lx.pos + 1] with
    | '/' ->
      while peek_char lx <> None && peek_char lx <> Some '\n' do
        advance lx
      done;
      skip_trivia lx
    | '*' ->
      advance lx;
      advance lx;
      let rec close () =
        match peek_char lx with
        | None -> error lx "unterminated block comment"
        | Some '*' when lx.pos + 1 < String.length lx.src && lx.src.[lx.pos + 1] = '/' ->
          advance lx;
          advance lx
        | Some _ ->
          advance lx;
          close ()
      in
      close ();
      skip_trivia lx
    | _ -> ())
  | _ -> ()

let lex_token lx =
  skip_trivia lx;
  match peek_char lx with
  | None -> Eof
  | Some '(' -> advance lx; Lparen
  | Some ')' -> advance lx; Rparen
  | Some ';' -> advance lx; Semi
  | Some ',' -> advance lx; Comma
  | Some '.' -> advance lx; Dot
  | Some '[' -> error lx "vectors are not supported by the Verilog-lite subset"
  | Some c when is_ident_char c ->
    let start = lx.pos in
    while (match peek_char lx with Some c -> is_ident_char c | None -> false) do
      advance lx
    done;
    Ident (String.sub lx.src start (lx.pos - start))
  | Some c -> error lx (Printf.sprintf "unexpected character %C" c)

(* ------------------------------------------------------------------ *)
(* Parser                                                             *)
(* ------------------------------------------------------------------ *)

type state = { lx : lexer; mutable tok : token }

let next st = st.tok <- lex_token st.lx

let expect st tok what =
  if st.tok = tok then next st else error st.lx (Printf.sprintf "expected %s" what)

let expect_ident st what =
  match st.tok with
  | Ident s ->
    next st;
    s
  | _ -> error st.lx (Printf.sprintf "expected %s" what)

let ident_list st =
  let rec go acc =
    let id = expect_ident st "identifier" in
    match st.tok with
    | Comma ->
      next st;
      go (id :: acc)
    | _ -> List.rev (id :: acc)
  in
  go []

(* ------------------------------------------------------------------ *)
(* Two-phase front end: syntactic module definitions, then
   elaboration with hierarchy flattening.                             *)
(* ------------------------------------------------------------------ *)

type vmodule = {
  vm_name : string;
  vm_line : int;
  vm_inputs : string list;
  vm_outputs : string list;
  vm_wires : string list;
  vm_instances : (string * string * (string * string) list) list;
      (* referenced name (cell or module), instance name, connections *)
}

let parse_modules src =
  let st = { lx = { src; pos = 0; line = 1 }; tok = Eof } in
  next st;
  let parse_connections () =
    expect st Lparen "'('";
    let rec connections acc =
      expect st Dot "'.'";
      let pin = expect_ident st "pin name" in
      expect st Lparen "'('";
      let net = expect_ident st "net name" in
      expect st Rparen "')'";
      let acc = (pin, net) :: acc in
      match st.tok with
      | Comma ->
        next st;
        connections acc
      | _ -> List.rev acc
    in
    let conns = connections [] in
    expect st Rparen "')'";
    expect st Semi "';'";
    conns
  in
  let parse_module () =
    let vm_line = st.lx.line in
    let name = expect_ident st "module name" in
    expect st Lparen "'('";
    let _ports = match st.tok with Rparen -> [] | _ -> ident_list st in
    expect st Rparen "')'";
    expect st Semi "';'";
    let inputs = ref [] and outputs = ref [] and wires = ref [] in
    let instances = ref [] in
    let rec items () =
      match st.tok with
      | Ident "endmodule" -> next st
      | Ident "input" ->
        next st;
        inputs := !inputs @ ident_list st;
        expect st Semi "';'";
        items ()
      | Ident "output" ->
        next st;
        outputs := !outputs @ ident_list st;
        expect st Semi "';'";
        items ()
      | Ident "wire" ->
        next st;
        wires := !wires @ ident_list st;
        expect st Semi "';'";
        items ()
      | Ident ("assign" | "always" | "initial" | "reg" | "parameter") ->
        error st.lx "behavioural constructs are not supported by the Verilog-lite subset"
      | Ident refname ->
        next st;
        let inst = expect_ident st "instance name" in
        let conns = parse_connections () in
        instances := (refname, inst, conns) :: !instances;
        items ()
      | Eof -> error st.lx "missing endmodule"
      | Lparen | Rparen | Semi | Comma | Dot ->
        error st.lx "expected a declaration or instance"
    in
    items ();
    {
      vm_name = name;
      vm_line;
      vm_inputs = !inputs;
      vm_outputs = !outputs;
      vm_wires = !wires;
      vm_instances = List.rev !instances;
    }
  in
  let rec all acc =
    match st.tok with
    | Eof -> List.rev acc
    | Ident "module" ->
      next st;
      all (parse_module () :: acc)
    | _ -> error st.lx "expected 'module'"
  in
  match all [] with
  | [] -> error st.lx "no module found"
  | ms -> ms

(* Flattening: leaf instances are library cells; other instances refer
   to modules in the same source and are expanded recursively with
   "inst/" name prefixes. The top module is the one never instantiated
   (or the last module if all are instantiated). *)
let parse ~lookup src =
  Tka_obs.Trace.with_span ~cat:"parse" "verilog.parse" @@ fun () ->
  let ms = parse_modules src in
  Tka_obs.Metrics.Counter.add m_modules (List.length ms);
  let fail line message = raise (Parse_error { line; message }) in
  let by_name = Hashtbl.create 8 in
  List.iter
    (fun m ->
      if Hashtbl.mem by_name m.vm_name then
        fail m.vm_line (Printf.sprintf "module %S defined twice" m.vm_name);
      Hashtbl.replace by_name m.vm_name m)
    ms;
  let instantiated = Hashtbl.create 8 in
  List.iter
    (fun m ->
      List.iter
        (fun (r, _, _) ->
          if Hashtbl.mem by_name r then Hashtbl.replace instantiated r ())
        m.vm_instances)
    ms;
  let top =
    match List.filter (fun m -> not (Hashtbl.mem instantiated m.vm_name)) ms with
    | [ m ] -> m
    | [] ->
      let m = List.nth ms (List.length ms - 1) in
      Log.warn log_src (fun k ->
          k
            ~fields:[ Log.str "top" m.vm_name ]
            "every module is instantiated somewhere; elaborating %S as top"
            m.vm_name);
      m
    | m :: _ :: _ as roots ->
      Log.warn log_src (fun k ->
          k
            ~fields:
              [
                Log.str "top" m.vm_name;
                Log.int "roots" (List.length roots);
              ]
            "%d root modules; elaborating the first (%S) as top"
            (List.length roots) m.vm_name);
      m
  in
  let b = Builder.create ~name:top.vm_name () in
  let declared_outputs = ref [] in
  (* Elaborate module [m] under [prefix]; [port_map] maps the module's
     port names to already-created net ids in the parent. Returns
     nothing; nets and gates are added to the builder. *)
  let rec elaborate ~stack ~prefix ~port_map (m : vmodule) =
    if List.mem m.vm_name stack then
      fail m.vm_line
        (Printf.sprintf "recursive instantiation of module %S" m.vm_name);
    let ids = Hashtbl.create 32 in
    let declare kind n =
      if Hashtbl.mem ids n then
        fail m.vm_line (Printf.sprintf "net %S declared twice in %s" n m.vm_name);
      match List.assoc_opt n port_map with
      | Some parent_id -> Hashtbl.replace ids n parent_id
      | None ->
        let full = prefix ^ n in
        let id =
          try
            match kind with
            | `Input when prefix = "" -> Builder.add_input b full
            | `Input | `Output | `Wire -> Builder.add_net b full
          with Builder.Invalid msg -> fail m.vm_line msg
        in
        if kind = `Output && prefix = "" then
          declared_outputs := id :: !declared_outputs;
        Hashtbl.replace ids n id
    in
    (* a child input port left unconnected would have no driver: treat
       as an error when finalize reports it *)
    List.iter (declare `Input) m.vm_inputs;
    List.iter (declare `Output) m.vm_outputs;
    List.iter (declare `Wire) m.vm_wires;
    let resolve n =
      match Hashtbl.find_opt ids n with
      | Some id -> id
      | None -> fail m.vm_line (Printf.sprintf "undeclared net %S in %s" n m.vm_name)
    in
    List.iter
      (fun (refname, inst, conns) ->
        match (lookup refname, Hashtbl.find_opt by_name refname) with
        | Some cell, _ ->
          let out_pin = cell.Tka_cell.Cell.output.Tka_cell.Cell.pin_name in
          let output =
            match List.assoc_opt out_pin conns with
            | Some n -> resolve n
            | None ->
              fail m.vm_line
                (Printf.sprintf "instance %S: output pin %s unconnected" inst out_pin)
          in
          let inputs =
            List.filter (fun (p, _) -> p <> out_pin) conns
            |> List.map (fun (p, n) -> (p, resolve n))
          in
          (try ignore (Builder.add_gate b ~name:(prefix ^ inst) ~cell ~inputs ~output)
           with Builder.Invalid msg -> fail m.vm_line msg)
        | None, Some child ->
          let ports = child.vm_inputs @ child.vm_outputs in
          List.iter
            (fun (p, _) ->
              if not (List.mem p ports) then
                fail m.vm_line
                  (Printf.sprintf "instance %S: %S is not a port of module %s"
                     inst p child.vm_name))
            conns;
          let port_map =
            List.map (fun (p, n) -> (p, resolve n)) conns
          in
          elaborate ~stack:(m.vm_name :: stack)
            ~prefix:(prefix ^ inst ^ "/")
            ~port_map child
        | None, None ->
          fail m.vm_line (Printf.sprintf "unknown cell or module %S" refname))
      m.vm_instances
  in
  elaborate ~stack:[] ~prefix:"" ~port_map:[] top;
  List.iter (Builder.mark_output b) !declared_outputs;
  let nl =
    try Builder.finalize b with Builder.Invalid msg -> fail top.vm_line msg
  in
  Tka_obs.Metrics.Counter.add m_gates (Array.length (N.gates nl));
  Log.info log_src (fun k ->
      k
        ~fields:
          [
            Log.str "top" top.vm_name;
            Log.int "modules" (List.length ms);
            Log.int "gates" (Array.length (N.gates nl));
            Log.int "nets" (N.num_nets nl);
          ]
        "elaborated %s: %d gates, %d nets" top.vm_name
        (Array.length (N.gates nl)) (N.num_nets nl));
  nl

let parse_file ~lookup path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  parse ~lookup src

let print nl =
  let buf = Buffer.create 4096 in
  let name id = (N.net nl id).N.net_name in
  let inputs = N.inputs nl in
  (* a sink-less primary input is an implicit output of the netlist
     model, but in Verilog it is just an input port *)
  let outputs =
    List.filter
      (fun id -> (N.net nl id).N.driver <> N.Primary_input)
      (N.outputs nl)
  in
  let ports = List.map name inputs @ List.map name outputs in
  Buffer.add_string buf
    (Printf.sprintf "module %s (%s);\n" (N.name nl) (String.concat ", " ports));
  if inputs <> [] then
    Buffer.add_string buf
      (Printf.sprintf "  input %s;\n" (String.concat ", " (List.map name inputs)));
  if outputs <> [] then
    Buffer.add_string buf
      (Printf.sprintf "  output %s;\n" (String.concat ", " (List.map name outputs)));
  let wires =
    Array.to_list (N.nets nl)
    |> List.filter (fun n ->
           n.N.driver <> N.Primary_input && not n.N.is_output)
    |> List.map (fun n -> n.N.net_name)
  in
  if wires <> [] then
    Buffer.add_string buf (Printf.sprintf "  wire %s;\n" (String.concat ", " wires));
  Buffer.add_char buf '\n';
  Array.iter
    (fun g ->
      let conns =
        List.map (fun (p, id) -> Printf.sprintf ".%s(%s)" p (name id)) g.N.fanin
        @ [
            Printf.sprintf ".%s(%s)"
              g.N.cell.Tka_cell.Cell.output.Tka_cell.Cell.pin_name
              (name g.N.fanout);
          ]
      in
      Buffer.add_string buf
        (Printf.sprintf "  %s %s (%s);\n" g.N.cell.Tka_cell.Cell.name g.N.gate_name
           (String.concat ", " conns)))
    (N.gates nl);
  Buffer.add_string buf "endmodule\n";
  Buffer.contents buf

let write_file nl path =
  let oc = open_out path in
  output_string oc (print nl);
  close_out oc
