(** SDF-lite delay annotation.

    Writes the per-gate IOPATH delays of a timing analysis in a
    Standard Delay Format subset, the interchange a downstream
    gate-level simulator or another STA consumes. With delay noise, the
    exported delays carry the extra per-net push, so a plain SDF
    consumer sees the crosstalk-aware timing.

    Subset written/read:

    {v
    (DELAYFILE
      (SDFVERSION "3.0-lite")
      (DESIGN "i1")
      (TIMESCALE 1ns)
      (CELL (CELLTYPE "NAND2_X1") (INSTANCE g1)
        (DELAY (ABSOLUTE
          (IOPATH A Y (0.0591))
          (IOPATH B Y (0.0591)))))
      ...)
    v} *)

exception Parse_error of { line : int; message : string }

val print : delay_of:(Netlist.gate -> float) -> Netlist.t -> string
(** [print ~delay_of nl] renders one CELL per gate with equal IOPATH
    delay per input arc (the linear model is input-independent).
    [delay_of] is usually [Tka_sta.Delay_calc.stage_delay] composed
    with the gate id — add per-net delay noise to export
    crosstalk-aware timing. *)

val write_file :
  delay_of:(Netlist.gate -> float) -> Netlist.t -> string -> unit

type annotation = {
  sdf_design : string option;
  sdf_arcs : (string * string * string * float) list;
      (** instance, from-pin, to-pin, delay (ns) *)
}

val parse : string -> annotation
(** Reads the subset back. Delays must be finite.
    @raise Parse_error on malformed input, with the line number of the
    offending construct (line 1 for an empty file). *)

val check_against :
  annotation ->
  delay_of:(Netlist.gate -> float) ->
  Netlist.t ->
  (string * float * float) list
(** Compare an annotation's arcs against [delay_of] (usually
    [Tka_sta.Delay_calc.stage_delay]); returns mismatches as
    [(instance, sdf_delay, computed)] beyond 1e-6 ns. Unknown
    instances raise {!Netlist.Link_error} with source ["sdf"]. *)
