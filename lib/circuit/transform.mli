(** Netlist rewriting.

    [Netlist.t] is immutable; design changes (fixing couplings by
    shielding, resizing drivers, re-annotating parasitics) produce a
    new netlist. This module provides a general structure-preserving
    rebuild with hooks, plus the common fixes built on it. *)

val map :
  ?name:string ->
  ?wire_of:(Netlist.net -> float * float) ->
  ?cell_of:(Netlist.gate -> Tka_cell.Cell.t) ->
  ?keep_coupling:(Netlist.coupling -> bool) ->
  ?coupling_cap_of:(Netlist.coupling -> float) ->
  Netlist.t ->
  Netlist.t
(** [map nl] rebuilds [nl] with the same structure:
    - [name] renames the circuit;
    - [wire_of] replaces each net's [(wire_cap, wire_res)];
    - [cell_of] substitutes each gate's cell — the replacement must
      have the same pin names (checked by the builder);
    - [keep_coupling] drops coupling caps (default: keep all);
    - [coupling_cap_of] rescales kept coupling caps.

    Net/gate names, connectivity and port directions are preserved.
    @raise Builder.Invalid if a hook produces an inconsistent design. *)

val remove_couplings :
  Netlist.t -> Netlist.coupling_id list -> Netlist.t
(** Shield/space fix: delete the listed physical coupling caps. The
    result is renamed ["<name>_fixed"]. *)

val scale_coupling :
  factor:float -> Netlist.t -> Netlist.coupling_id list -> Netlist.t
(** Partial fix (increased spacing): multiply the listed caps by
    [factor] in [\[0, 1\]]. Caps scaled to zero are removed. *)

val resize_driver :
  Netlist.t -> Netlist.gate_id -> Tka_cell.Cell.t -> Netlist.t
(** Replace one gate's cell (e.g. upsizing a victim driver, the other
    classic noise fix). The new cell must have the same pin names. *)
