module N = Netlist

let map ?name ?wire_of ?cell_of ?(keep_coupling = fun _ -> true)
    ?(coupling_cap_of = fun c -> c.N.coupling_cap) nl =
  let b = Builder.create ~name:(Option.value ~default:(N.name nl) name) () in
  let wire n =
    match wire_of with
    | Some f -> f n
    | None -> (n.N.wire_cap, n.N.wire_res)
  in
  let ids = Array.make (N.num_nets nl) 0 in
  Array.iter
    (fun n ->
      let cap, res = wire n in
      ids.(n.N.net_id) <-
        (match n.N.driver with
        | N.Primary_input -> Builder.add_input b ~wire_cap:cap ~wire_res:res n.N.net_name
        | N.Driven_by _ -> Builder.add_net b ~wire_cap:cap ~wire_res:res n.N.net_name))
    (N.nets nl);
  Array.iter
    (fun g ->
      let cell = match cell_of with Some f -> f g | None -> g.N.cell in
      ignore
        (Builder.add_gate b ~name:g.N.gate_name ~cell
           ~inputs:(List.map (fun (p, nid) -> (p, ids.(nid))) g.N.fanin)
           ~output:ids.(g.N.fanout)))
    (N.gates nl);
  List.iter (fun nid -> Builder.mark_output b ids.(nid)) (N.outputs nl);
  Array.iter
    (fun c ->
      if keep_coupling c then begin
        let cap = coupling_cap_of c in
        if cap > 0. then
          ignore (Builder.add_coupling b ids.(c.N.net_a) ids.(c.N.net_b) cap)
      end)
    (N.couplings nl);
  Builder.finalize b

let remove_couplings nl cids =
  map
    ~name:(N.name nl ^ "_fixed")
    ~keep_coupling:(fun c -> not (List.mem c.N.coupling_id cids))
    nl

let scale_coupling ~factor nl cids =
  if factor < 0. || factor > 1. then
    invalid_arg "Transform.scale_coupling: factor outside [0, 1]";
  map
    ~name:(N.name nl ^ "_spaced")
    ~coupling_cap_of:(fun c ->
      if List.mem c.N.coupling_id cids then factor *. c.N.coupling_cap
      else c.N.coupling_cap)
    nl

let resize_driver nl gid cell =
  map
    ~cell_of:(fun g -> if g.N.gate_id = gid then cell else g.N.cell)
    nl
