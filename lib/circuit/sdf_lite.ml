module N = Netlist

exception Parse_error of { line : int; message : string }

(* ------------------------------------------------------------------ *)
(* Writer                                                             *)
(* ------------------------------------------------------------------ *)

let print ~delay_of nl =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "(DELAYFILE\n";
  Buffer.add_string buf "  (SDFVERSION \"3.0-lite\")\n";
  Buffer.add_string buf (Printf.sprintf "  (DESIGN \"%s\")\n" (N.name nl));
  Buffer.add_string buf "  (TIMESCALE 1ns)\n";
  Array.iter
    (fun g ->
      let d = delay_of g in
      Buffer.add_string buf
        (Printf.sprintf "  (CELL (CELLTYPE \"%s\") (INSTANCE %s)\n"
           g.N.cell.Tka_cell.Cell.name g.N.gate_name);
      Buffer.add_string buf "    (DELAY (ABSOLUTE\n";
      List.iter
        (fun (pin, _) ->
          Buffer.add_string buf
            (Printf.sprintf "      (IOPATH %s %s (%.6f))\n" pin
               g.N.cell.Tka_cell.Cell.output.Tka_cell.Cell.pin_name d))
        g.N.fanin;
      Buffer.add_string buf "    )))\n")
    (N.gates nl);
  Buffer.add_string buf ")\n";
  Buffer.contents buf

let write_file ~delay_of nl path =
  let oc = open_out path in
  output_string oc (print ~delay_of nl);
  close_out oc

(* ------------------------------------------------------------------ *)
(* Parser                                                             *)
(* ------------------------------------------------------------------ *)

type annotation = {
  sdf_design : string option;
  sdf_arcs : (string * string * string * float) list;
}

(* S-expression-ish tokenizer: parens, quoted strings, atoms. *)
type token = Lp | Rp | Atom of string | Str of string

let tokenize src =
  let line = ref 1 in
  let out = ref [] in
  let n = String.length src in
  let i = ref 0 in
  let err message = raise (Parse_error { line = !line; message }) in
  while !i < n do
    (match src.[!i] with
    | '\n' ->
      incr line;
      incr i
    | ' ' | '\t' | '\r' -> incr i
    | '(' ->
      out := (Lp, !line) :: !out;
      incr i
    | ')' ->
      out := (Rp, !line) :: !out;
      incr i
    | '"' ->
      let start = !i + 1 in
      let j = ref start in
      while !j < n && src.[!j] <> '"' do
        if src.[!j] = '\n' then incr line;
        incr j
      done;
      if !j >= n then err "unterminated string";
      out := (Str (String.sub src start (!j - start)), !line) :: !out;
      i := !j + 1
    | _ ->
      let start = !i in
      while
        !i < n
        && not (List.mem src.[!i] [ '('; ')'; ' '; '\t'; '\n'; '\r'; '"' ])
      do
        incr i
      done;
      out := (Atom (String.sub src start (!i - start)), !line) :: !out);
  done;
  List.rev !out

(* Every node carries the source line of its first token so the
   second-phase checker can point at the offending SDF line. *)
type sexp = L of int * sexp list | A of int * string | S of int * string

let sexp_line = function L (l, _) | A (l, _) | S (l, _) -> l

let last_line tokens =
  List.fold_left (fun _ (_, line) -> line) 1 tokens

let parse_sexps tokens =
  let err line message = raise (Parse_error { line; message }) in
  let eof_line = last_line tokens in
  let rec one = function
    | [] -> err eof_line "unexpected end of input"
    | (Lp, line) :: rest ->
      let items, rest = list_items line rest in
      (L (line, items), rest)
    | (Rp, line) :: _ -> err line "unexpected ')'"
    | (Atom a, line) :: rest -> (A (line, a), rest)
    | (Str s, line) :: rest -> (S (line, s), rest)
  and list_items open_line tokens =
    match tokens with
    | (Rp, _) :: rest -> ([], rest)
    | [] -> err eof_line (Printf.sprintf "missing ')' for '(' on line %d" open_line)
    | _ :: _ ->
      let x, rest = one tokens in
      let xs, rest = list_items open_line rest in
      (x :: xs, rest)
  in
  let rec all tokens =
    match tokens with
    | [] -> []
    | _ :: _ ->
      let x, rest = one tokens in
      x :: all rest
  in
  all tokens

let parse src =
  let err line message = raise (Parse_error { line; message }) in
  match parse_sexps (tokenize src) with
  | [ L (_, A (_, "DELAYFILE") :: items) ] ->
    let design = ref None in
    let arcs = ref [] in
    let rec walk_cell instance = function
      | L (_, A (_, "DELAY") :: dels) :: rest ->
        List.iter
          (function
            | L (_, A (_, "ABSOLUTE") :: paths) ->
              List.iter
                (function
                  | L (line, [ A (_, "IOPATH"); A (_, from_pin); A (_, to_pin);
                               L (_, [ A (_, v) ]) ]) -> (
                    match float_of_string_opt v with
                    | Some d when Float.is_finite d ->
                      arcs := (instance, from_pin, to_pin, d) :: !arcs
                    | Some _ -> err line (Printf.sprintf "non-finite delay %S" v)
                    | None -> err line (Printf.sprintf "bad delay %S" v))
                  | node -> err (sexp_line node) "malformed IOPATH")
                paths
            | node -> err (sexp_line node) "expected ABSOLUTE")
          dels;
        walk_cell instance rest
      | _ :: rest -> walk_cell instance rest
      | [] -> ()
    in
    List.iter
      (function
        | L (_, [ A (_, "SDFVERSION"); S _ ]) | L (_, [ A (_, "TIMESCALE"); A _ ]) -> ()
        | L (_, [ A (_, "DESIGN"); S (_, name) ]) -> design := Some name
        | L (line, A (_, "CELL") :: cell_items) ->
          let instance =
            List.find_map
              (function
                | L (_, [ A (_, "INSTANCE"); A (_, i) ]) -> Some i
                | _ -> None)
              cell_items
          in
          (match instance with
          | Some i -> walk_cell i cell_items
          | None -> err line "CELL without INSTANCE")
        | node -> err (sexp_line node) "unexpected item in DELAYFILE")
      items;
    { sdf_design = !design; sdf_arcs = List.rev !arcs }
  | node :: _ -> err (sexp_line node) "expected a single (DELAYFILE ...)"
  | [] -> err 1 "expected a single (DELAYFILE ...)"

let check_against ann ~delay_of nl =
  List.filter_map
    (fun (instance, _, _, d) ->
      match N.find_gate nl instance with
      | None -> N.link_error "sdf" "unknown instance %S" instance
      | Some g ->
        let expect = delay_of g in
        if Float.abs (expect -. d) > 1e-6 then Some (instance, d, expect) else None)
    ann.sdf_arcs
