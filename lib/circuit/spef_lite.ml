module N = Netlist
module Log = Tka_obs.Log

let log_src = Log.Src.create "spef" ~doc:"SPEF-lite parasitics parser"
let m_nets = Tka_obs.Metrics.Counter.make "spef.nets_annotated"
let m_couplings = Tka_obs.Metrics.Counter.make "spef.couplings_parsed"
let m_lines = Tka_obs.Metrics.Counter.make "spef.lines_parsed"

exception Parse_error of { line : int; message : string }

let fail line fmt =
  Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

type annotation = {
  design : string option;
  ground : (string * float * float) list;
  couplings : (string * string * float) list;
}

let split_words s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.concat_map (String.split_on_char '\r')
  |> List.filter (fun w -> w <> "")

let strip_comment s =
  match String.index_opt s '/' with
  | Some i when i + 1 < String.length s && s.[i + 1] = '/' -> String.sub s 0 i
  | Some _ | None -> s

let parse_float line what v =
  match float_of_string_opt v with
  | Some f when Float.is_finite f -> f
  | Some _ -> fail line "%s: non-finite number %S" what v
  | None -> fail line "%s: malformed number %S" what v

type state = {
  mutable design : string option;
  mutable current : (string * float * int) option;
      (* net under *D_NET, declared total, opening line *)
  mutable in_cap : bool;
  mutable res : (string * float) list;
  mutable gcap : (string, float) Hashtbl.t;
  mutable ccap : (string * string, float) Hashtbl.t;
}

let coupling_key a b = if String.compare a b <= 0 then (a, b) else (b, a)

let parse src =
  Tka_obs.Trace.with_span ~cat:"parse" "spef.parse" @@ fun () ->
  let st =
    {
      design = None;
      current = None;
      in_cap = false;
      res = [];
      gcap = Hashtbl.create 64;
      ccap = Hashtbl.create 64;
    }
  in
  let handle line_no raw =
    match split_words (strip_comment raw) with
    | [] -> ()
    | "*SPEF" :: _ | "*T_UNIT" :: _ | "*C_UNIT" :: _ | "*R_UNIT" :: _ -> ()
    | [ "*DESIGN"; name ] -> st.design <- Some name
    | "*D_NET" :: net :: rest ->
      if st.current <> None then fail line_no "*D_NET without closing *END";
      let total =
        match rest with
        | [] -> 0.
        | [ v ] -> parse_float line_no "*D_NET total" v
        | _ -> fail line_no "usage: *D_NET NET [TOTAL]"
      in
      st.current <- Some (net, total, line_no);
      st.in_cap <- false
    | [ "*RES"; v ] -> (
      match st.current with
      | None -> fail line_no "*RES outside *D_NET"
      | Some (net, _, _) ->
        st.in_cap <- false;
        st.res <- (net, parse_float line_no "*RES" v) :: st.res)
    | [ "*CAP" ] ->
      if st.current = None then fail line_no "*CAP outside *D_NET";
      st.in_cap <- true
    | [ "*END" ] -> (
      match st.current with
      | None -> fail line_no "*END without *D_NET"
      | Some _ ->
        st.current <- None;
        st.in_cap <- false)
    | words when st.in_cap -> (
      match (st.current, words) with
      | Some (dnet, _, _), [ _idx; net; v ] ->
        (* ambiguous two-name vs ground form: ground entries name the
           D_NET's own net *)
        if net = dnet then
          Hashtbl.replace st.gcap net
            (Option.value ~default:0. (Hashtbl.find_opt st.gcap net)
            +. parse_float line_no "ground cap" v)
        else
          fail line_no "ground cap entry for foreign net %S inside *D_NET %s" net dnet
      | Some _, [ _idx; neta; netb; v ] ->
        let cap = parse_float line_no "coupling cap" v in
        let key = coupling_key neta netb in
        (* keep the larger of duplicated listings *)
        (match Hashtbl.find_opt st.ccap key with
        | Some prev ->
          Log.warn log_src (fun m ->
              m
                ~fields:
                  [
                    Log.int "line" line_no;
                    Log.str "net_a" (fst key);
                    Log.str "net_b" (snd key);
                    Log.float "kept_pf" (Float.max prev cap);
                  ]
                "line %d: coupling %s/%s listed twice, keeping the larger value"
                line_no (fst key) (snd key));
          Hashtbl.replace st.ccap key (Float.max prev cap)
        | None -> Hashtbl.replace st.ccap key cap)
      | _, _ -> fail line_no "malformed *CAP entry")
    | w :: _ -> fail line_no "unexpected token %S" w
  in
  let lines = String.split_on_char '\n' src in
  List.iteri (fun i l -> handle (i + 1) l) lines;
  (match st.current with
  | Some (net, _, opened) -> fail opened "unterminated *D_NET %s" net
  | None -> ());
  let res_of net = Option.value ~default:0. (List.assoc_opt net st.res) in
  let ground =
    Hashtbl.fold (fun net cap acc -> (net, cap, res_of net) :: acc) st.gcap []
    |> List.sort compare
  in
  let couplings =
    Hashtbl.fold (fun (a, b) cap acc -> (a, b, cap) :: acc) st.ccap []
    |> List.sort compare
  in
  Tka_obs.Metrics.Counter.add m_lines (List.length lines);
  Tka_obs.Metrics.Counter.add m_nets (List.length ground);
  Tka_obs.Metrics.Counter.add m_couplings (List.length couplings);
  Log.info log_src (fun m ->
      m
        ~fields:
          [
            Log.int "nets" (List.length ground);
            Log.int "couplings" (List.length couplings);
            Log.int "lines" (List.length lines);
          ]
        "parsed %d annotated nets, %d couplings" (List.length ground)
        (List.length couplings));
  { design = st.design; ground; couplings }

let parse_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  parse src

let apply (ann : annotation) nl =
  let b = Builder.create ~name:(Option.value ~default:(N.name nl) ann.design) () in
  let ids = Hashtbl.create (N.num_nets nl) in
  let parasitics = Hashtbl.create (List.length ann.ground) in
  List.iter
    (fun (net, cap, res) -> Hashtbl.replace parasitics net (cap, res))
    ann.ground;
  Array.iter
    (fun n ->
      let name = n.N.net_name in
      let cap, res =
        match Hashtbl.find_opt parasitics name with
        | Some (c, r) -> (c, r)
        | None -> (n.N.wire_cap, n.N.wire_res)
      in
      let id =
        match n.N.driver with
        | N.Primary_input -> Builder.add_input b ~wire_cap:cap ~wire_res:res name
        | N.Driven_by _ -> Builder.add_net b ~wire_cap:cap ~wire_res:res name
      in
      Hashtbl.replace ids name id)
    (N.nets nl);
  let resolve name =
    match Hashtbl.find_opt ids name with
    | Some id -> id
    | None -> N.link_error "spef" "unknown net %S" name
  in
  Array.iter
    (fun g ->
      ignore
        (Builder.add_gate b ~name:g.N.gate_name ~cell:g.N.cell
           ~inputs:
             (List.map (fun (p, id) -> (p, resolve (N.net nl id).N.net_name)) g.N.fanin)
           ~output:(resolve (N.net nl g.N.fanout).N.net_name)))
    (N.gates nl);
  List.iter (fun id -> Builder.mark_output b (resolve (N.net nl id).N.net_name)) (N.outputs nl);
  List.iter
    (fun (a, bb, cap) -> ignore (Builder.add_coupling b (resolve a) (resolve bb) cap))
    ann.couplings;
  Builder.finalize b

let print nl =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "*SPEF \"IEEE 1481-lite\"\n";
  Buffer.add_string buf (Printf.sprintf "*DESIGN %s\n" (N.name nl));
  Buffer.add_string buf "*T_UNIT 1 NS\n*C_UNIT 1 PF\n*R_UNIT 1 KOHM\n\n";
  Array.iter
    (fun n ->
      let nid = n.N.net_id in
      let couplings = N.couplings_of_net nl nid in
      Buffer.add_string buf
        (Printf.sprintf "*D_NET %s %.6g\n" n.N.net_name (N.total_cap nl nid));
      Buffer.add_string buf (Printf.sprintf "*RES %.6g\n" n.N.wire_res);
      Buffer.add_string buf "*CAP\n";
      Buffer.add_string buf (Printf.sprintf "1 %s %.6g\n" n.N.net_name n.N.wire_cap);
      List.iteri
        (fun i cid ->
          let c = N.coupling nl cid in
          let other = N.coupling_partner nl cid nid in
          Buffer.add_string buf
            (Printf.sprintf "%d %s %s %.6g\n" (i + 2) n.N.net_name
               (N.net nl other).N.net_name c.N.coupling_cap))
        couplings;
      Buffer.add_string buf "*END\n\n")
    (N.nets nl);
  Buffer.contents buf
