type net_id = int
type gate_id = int
type coupling_id = int

exception Link_error of { source : string; message : string }

let link_error source fmt =
  Printf.ksprintf (fun message -> raise (Link_error { source; message })) fmt

type driver = Primary_input | Driven_by of gate_id

type sink = { sink_gate : gate_id; sink_pin : string }

type net = {
  net_id : net_id;
  net_name : string;
  wire_cap : float;
  wire_res : float;
  driver : driver;
  sinks : sink list;
  is_output : bool;
}

type gate = {
  gate_id : gate_id;
  gate_name : string;
  cell : Tka_cell.Cell.t;
  fanin : (string * net_id) list;
  fanout : net_id;
}

type coupling = {
  coupling_id : coupling_id;
  net_a : net_id;
  net_b : net_id;
  coupling_cap : float;
}

type t = {
  circuit_name : string;
  net_arr : net array;
  gate_arr : gate array;
  coupling_arr : coupling array;
  input_ids : net_id list;
  output_ids : net_id list;
  net_index : (string, net_id) Hashtbl.t;
  gate_index : (string, gate_id) Hashtbl.t;
  couplings_by_net : coupling_id list array;
}

let unsafe_create ~name ~nets ~gates ~couplings ~inputs ~outputs =
  let net_index = Hashtbl.create (Array.length nets) in
  Array.iter (fun n -> Hashtbl.replace net_index n.net_name n.net_id) nets;
  let gate_index = Hashtbl.create (Array.length gates) in
  Array.iter (fun g -> Hashtbl.replace gate_index g.gate_name g.gate_id) gates;
  let couplings_by_net = Array.make (Array.length nets) [] in
  Array.iter
    (fun c ->
      couplings_by_net.(c.net_a) <- c.coupling_id :: couplings_by_net.(c.net_a);
      couplings_by_net.(c.net_b) <- c.coupling_id :: couplings_by_net.(c.net_b))
    couplings;
  Array.iteri (fun i l -> couplings_by_net.(i) <- List.rev l) couplings_by_net;
  {
    circuit_name = name;
    net_arr = nets;
    gate_arr = gates;
    coupling_arr = couplings;
    input_ids = inputs;
    output_ids = outputs;
    net_index;
    gate_index;
    couplings_by_net;
  }

let name t = t.circuit_name
let num_nets t = Array.length t.net_arr
let num_gates t = Array.length t.gate_arr
let num_couplings t = Array.length t.coupling_arr

let net t id = t.net_arr.(id)
let gate t id = t.gate_arr.(id)
let coupling t id = t.coupling_arr.(id)

let nets t = t.net_arr
let gates t = t.gate_arr
let couplings t = t.coupling_arr

let inputs t = t.input_ids
let outputs t = t.output_ids

let find_net t n =
  Option.map (fun id -> t.net_arr.(id)) (Hashtbl.find_opt t.net_index n)

let find_net_exn t n =
  match find_net t n with
  | Some x -> x
  | None -> raise Not_found

let find_gate t n =
  Option.map (fun id -> t.gate_arr.(id)) (Hashtbl.find_opt t.gate_index n)

let couplings_of_net t id = t.couplings_by_net.(id)

let coupling_partner t cid nid =
  let c = t.coupling_arr.(cid) in
  if c.net_a = nid then c.net_b
  else if c.net_b = nid then c.net_a
  else
    invalid_arg
      (Printf.sprintf "Netlist.coupling_partner: net %d not on coupling %d" nid cid)

let driver_gate t id =
  match (net t id).driver with
  | Primary_input -> None
  | Driven_by g -> Some (gate t g)

let fanin_nets t id =
  match driver_gate t id with
  | None -> []
  | Some g -> List.map snd g.fanin

let fanout_nets t id =
  List.map (fun s -> (gate t s.sink_gate).fanout) (net t id).sinks

let total_pin_cap t id =
  List.fold_left
    (fun acc s ->
      acc +. Tka_cell.Cell.input_capacitance (gate t s.sink_gate).cell s.sink_pin)
    0. (net t id).sinks

let ground_cap t id = (net t id).wire_cap +. total_pin_cap t id

let total_coupling_cap t id =
  List.fold_left
    (fun acc cid -> acc +. (coupling t cid).coupling_cap)
    0. (couplings_of_net t id)

let total_cap t id = ground_cap t id +. total_coupling_cap t id
