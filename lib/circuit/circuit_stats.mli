(** Netlist summary statistics (the "# gates / # nets / # coupling caps"
    columns of Table 2). *)

type t = {
  circuit : string;
  gates : int;
  nets : int;  (** internal (gate-driven) nets, the convention of Table 2 *)
  all_nets : int;  (** including primary inputs *)
  primary_inputs : int;
  primary_outputs : int;
  coupling_caps : int;
  total_coupling_cap : float;  (** pF *)
  max_logic_depth : int;
  avg_fanout : float;
  avg_couplings_per_net : float;
}

val compute : Netlist.t -> t

val pp : Format.formatter -> t -> unit

val header : string list
(** Column titles matching {!row}. *)

val row : t -> string list
(** Cells for a summary table. *)
