module N = Netlist

type t = {
  nl : N.t;
  gate_order : N.gate_id array;
  net_order : N.net_id array;
  levels : int array; (* per net *)
  max_level : int;
  level_nets : N.net_id array array; (* per level, in net_order order *)
  fanin_memo : (N.net_id, bool array) Hashtbl.t;
  mutable shard_memo : N.net_id array array option;
}

let compute_gate_order nl =
  let ng = N.num_gates nl in
  let indeg = Array.make ng 0 in
  let succs = Array.make ng [] in
  Array.iter
    (fun g ->
      let out = N.net nl g.N.fanout in
      List.iter
        (fun s ->
          succs.(g.N.gate_id) <- s.N.sink_gate :: succs.(g.N.gate_id);
          indeg.(s.N.sink_gate) <- indeg.(s.N.sink_gate) + 1)
        out.N.sinks)
    (N.gates nl);
  let queue = Queue.create () in
  Array.iteri (fun i d -> if d = 0 then Queue.add i queue) indeg;
  let order = Array.make ng 0 in
  let k = ref 0 in
  while not (Queue.is_empty queue) do
    let g = Queue.pop queue in
    order.(!k) <- g;
    incr k;
    List.iter
      (fun s ->
        indeg.(s) <- indeg.(s) - 1;
        if indeg.(s) = 0 then Queue.add s queue)
      succs.(g)
  done;
  assert (!k = ng);
  order

let create nl =
  let gate_order = compute_gate_order nl in
  let nn = N.num_nets nl in
  let net_order = Array.make nn 0 in
  let k = ref 0 in
  List.iter
    (fun nid ->
      net_order.(!k) <- nid;
      incr k)
    (N.inputs nl);
  Array.iter
    (fun gid ->
      net_order.(!k) <- (N.gate nl gid).N.fanout;
      incr k)
    gate_order;
  assert (!k = nn);
  let levels = Array.make nn 0 in
  Array.iter
    (fun nid ->
      match (N.net nl nid).N.driver with
      | N.Primary_input -> levels.(nid) <- 0
      | N.Driven_by g ->
        let lv =
          List.fold_left
            (fun acc (_, fid) -> max acc levels.(fid))
            0
            (N.gate nl g).N.fanin
        in
        levels.(nid) <- lv + 1)
    net_order;
  let max_level = Array.fold_left max 0 levels in
  (* nets grouped by level, each group in net_order order: the unit of
     the engine's level-synchronous parallel sweep *)
  let counts = Array.make (max_level + 1) 0 in
  Array.iter (fun nid -> counts.(levels.(nid)) <- counts.(levels.(nid)) + 1) net_order;
  let level_nets = Array.map (fun c -> Array.make c 0) counts in
  let fill = Array.make (max_level + 1) 0 in
  Array.iter
    (fun nid ->
      let lv = levels.(nid) in
      level_nets.(lv).(fill.(lv)) <- nid;
      fill.(lv) <- fill.(lv) + 1)
    net_order;
  {
    nl;
    gate_order;
    net_order;
    levels;
    max_level;
    level_nets;
    fanin_memo = Hashtbl.create 64;
    shard_memo = None;
  }

let netlist t = t.nl
let gate_order t = t.gate_order
let net_order t = t.net_order
let net_level t nid = t.levels.(nid)
let max_level t = t.max_level
let level_nets t = t.level_nets

(* Connected components of the net graph whose edges are gate fanin
   (every input net of a gate — its fanout net) and coupling caps
   (net_a — net_b). The engine's per-victim enumeration only ever
   consults nets reachable over these two edge kinds (driver fanin for
   pseudo aggressors, couplings for primaries and higher-order), so
   each component is closed under consultation and can be swept as an
   independent job. Shards are ordered by their first net in
   {!net_order}; within a shard nets keep {!net_order} order, which is
   level-monotone — so a shard processed sequentially publishes every
   summary before it is read. *)
let cone_shards t =
  match t.shard_memo with
  | Some s -> s
  | None ->
    let nl = t.nl in
    let nn = N.num_nets nl in
    let parent = Array.init nn (fun i -> i) in
    let rec find i =
      if parent.(i) = i then i
      else begin
        let r = find parent.(i) in
        parent.(i) <- r;
        r
      end
    in
    let union a b =
      let ra = find a and rb = find b in
      if ra <> rb then if ra < rb then parent.(rb) <- ra else parent.(ra) <- rb
    in
    Array.iter
      (fun g -> List.iter (fun (_, u) -> union u g.N.fanout) g.N.fanin)
      (N.gates nl);
    Array.iter (fun c -> union c.N.net_a c.N.net_b) (N.couplings nl);
    let shard_of_root = Array.make nn (-1) in
    let count = ref 0 in
    Array.iter
      (fun v ->
        let r = find v in
        if shard_of_root.(r) < 0 then begin
          shard_of_root.(r) <- !count;
          incr count
        end)
      t.net_order;
    let sizes = Array.make !count 0 in
    Array.iter
      (fun v ->
        let s = shard_of_root.(find v) in
        sizes.(s) <- sizes.(s) + 1)
      t.net_order;
    let shards = Array.map (fun c -> Array.make c 0) sizes in
    let fill = Array.make !count 0 in
    Array.iter
      (fun v ->
        let s = shard_of_root.(find v) in
        shards.(s).(fill.(s)) <- v;
        fill.(s) <- fill.(s) + 1)
      t.net_order;
    t.shard_memo <- Some shards;
    shards

let fanout_cone t seeds =
  let mark = Array.make (N.num_nets t.nl) false in
  let rec go id =
    if not mark.(id) then begin
      mark.(id) <- true;
      List.iter go (N.fanout_nets t.nl id)
    end
  in
  List.iter go seeds;
  mark

let transitive_fanin t nid =
  match Hashtbl.find_opt t.fanin_memo nid with
  | Some m -> m
  | None ->
    let mark = Array.make (N.num_nets t.nl) false in
    let rec go id =
      if not mark.(id) then begin
        mark.(id) <- true;
        List.iter go (N.fanin_nets t.nl id)
      end
    in
    go nid;
    Hashtbl.replace t.fanin_memo nid mark;
    mark

let in_fanin_cone t ~cone_of m = (transitive_fanin t cone_of).(m)

let fanin_cone_couplings t nid =
  let cone = transitive_fanin t nid in
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  Array.iteri
    (fun m inside ->
      if inside && m <> nid then
        List.iter
          (fun cid ->
            if not (Hashtbl.mem seen cid) then begin
              Hashtbl.replace seen cid ();
              out := cid :: !out
            end)
          (N.couplings_of_net t.nl m))
    cone;
  (* exclude couplings that touch the root net itself *)
  List.filter
    (fun cid ->
      let c = N.coupling t.nl cid in
      c.N.net_a <> nid && c.N.net_b <> nid)
    (List.rev !out)

let sinks_reachable_from t nid =
  let nl = t.nl in
  let mark = Array.make (N.num_nets nl) false in
  let out = ref [] in
  let rec go id =
    if not mark.(id) then begin
      mark.(id) <- true;
      if (N.net nl id).N.is_output then out := id :: !out;
      List.iter go (N.fanout_nets nl id)
    end
  in
  go nid;
  List.rev !out
