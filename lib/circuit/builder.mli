(** Mutable netlist construction with validation.

    Typical use:

    {[
      let b = Builder.create ~name:"demo" () in
      let a = Builder.add_input b "a" in
      let n1 = Builder.add_net b ~wire_cap:0.012 "n1" in
      let _ = Builder.add_gate b ~name:"g1" ~cell:Default_lib.inverter
                ~inputs:[ ("A", a) ] ~output:n1 in
      Builder.mark_output b n1;
      let nl = Builder.finalize b
    ]} *)

type t

exception Invalid of string
(** Raised by [finalize] (and by some eager checks) when the netlist is
    ill-formed; the message says what and where. *)

val create : ?name:string -> unit -> t
(** Fresh empty builder; default name ["circuit"]. *)

val add_input : t -> ?wire_cap:float -> ?wire_res:float -> string -> Netlist.net_id
(** New primary-input net. Default parasitics: 5 fF / 0.5 kΩ. *)

val add_net : t -> ?wire_cap:float -> ?wire_res:float -> string -> Netlist.net_id
(** New internal net (to be driven by a gate added later). Same
    defaults. *)

val set_wire : t -> Netlist.net_id -> cap:float -> res:float -> unit
(** Overwrite a net's parasitics (used after routing estimation). *)

val add_gate :
  t ->
  name:string ->
  cell:Tka_cell.Cell.t ->
  inputs:(string * Netlist.net_id) list ->
  output:Netlist.net_id ->
  Netlist.gate_id
(** Instantiate a cell. [inputs] must bind every input pin of the cell
    exactly once; [output] must be an undriven internal net. *)

val mark_output : t -> Netlist.net_id -> unit
(** Declare a primary output. *)

val add_coupling : t -> Netlist.net_id -> Netlist.net_id -> float -> Netlist.coupling_id
(** Coupling capacitance (pF) between two distinct nets. Parallel caps
    between the same pair are allowed and kept separate (distinct
    extraction segments). *)

val num_nets : t -> int
val num_gates : t -> int
val num_couplings : t -> int

val finalize : t -> Netlist.t
(** Validates and freezes: every internal net has exactly one driver;
    every net name unique; pin bindings complete; the gate graph is
    acyclic; at least one primary output (any sink-less net is
    implicitly marked as an output).
    @raise Invalid when a check fails. *)
