module N = Netlist

exception Invalid of string

let fail fmt = Printf.ksprintf (fun m -> raise (Invalid m)) fmt

type proto_net = {
  mutable p_wire_cap : float;
  mutable p_wire_res : float;
  p_name : string;
  p_is_input : bool;
  mutable p_is_output : bool;
  mutable p_driver : N.gate_id option;
  mutable p_sinks : N.sink list;
}

type proto_gate = {
  pg_name : string;
  pg_cell : Tka_cell.Cell.t;
  pg_fanin : (string * N.net_id) list;
  pg_fanout : N.net_id;
}

type t = {
  b_name : string;
  mutable nets : proto_net list; (* reversed *)
  mutable gates : proto_gate list; (* reversed *)
  mutable couplings : (N.net_id * N.net_id * float) list; (* reversed *)
  mutable n_nets : int;
  mutable n_gates : int;
  mutable n_couplings : int;
  mutable input_ids : N.net_id list; (* reversed *)
  net_names : (string, N.net_id) Hashtbl.t;
  gate_names : (string, unit) Hashtbl.t;
  mutable net_by_id : proto_net array; (* grows *)
}

let default_wire_cap = 0.005
let default_wire_res = 0.5

let create ?(name = "circuit") () =
  {
    b_name = name;
    nets = [];
    gates = [];
    couplings = [];
    n_nets = 0;
    n_gates = 0;
    n_couplings = 0;
    input_ids = [];
    net_names = Hashtbl.create 64;
    gate_names = Hashtbl.create 64;
    net_by_id = [||];
  }

let grow_net_index b pn =
  let n = Array.length b.net_by_id in
  if b.n_nets > n then begin
    let bigger = Array.make (max 16 (2 * max n 1)) pn in
    Array.blit b.net_by_id 0 bigger 0 n;
    b.net_by_id <- bigger
  end;
  b.net_by_id.(b.n_nets - 1) <- pn

let add_net_common b ~wire_cap ~wire_res ~is_input name =
  if Hashtbl.mem b.net_names name then fail "duplicate net name %S" name;
  if wire_cap < 0. || wire_res < 0. then fail "net %S: negative parasitics" name;
  let id = b.n_nets in
  let pn =
    {
      p_wire_cap = wire_cap;
      p_wire_res = wire_res;
      p_name = name;
      p_is_input = is_input;
      p_is_output = false;
      p_driver = None;
      p_sinks = [];
    }
  in
  b.nets <- pn :: b.nets;
  b.n_nets <- b.n_nets + 1;
  Hashtbl.replace b.net_names name id;
  grow_net_index b pn;
  if is_input then b.input_ids <- id :: b.input_ids;
  id

let add_input b ?(wire_cap = default_wire_cap) ?(wire_res = default_wire_res) name =
  add_net_common b ~wire_cap ~wire_res ~is_input:true name

let add_net b ?(wire_cap = default_wire_cap) ?(wire_res = default_wire_res) name =
  add_net_common b ~wire_cap ~wire_res ~is_input:false name

let proto_net b id =
  if id < 0 || id >= b.n_nets then fail "unknown net id %d" id;
  b.net_by_id.(id)

let set_wire b id ~cap ~res =
  if cap < 0. || res < 0. then fail "set_wire: negative parasitics";
  let pn = proto_net b id in
  pn.p_wire_cap <- cap;
  pn.p_wire_res <- res

let add_gate b ~name ~cell ~inputs ~output =
  if Hashtbl.mem b.gate_names name then fail "duplicate gate name %S" name;
  let expected = List.sort String.compare (Tka_cell.Cell.input_names cell) in
  let given = List.sort String.compare (List.map fst inputs) in
  if expected <> given then
    fail "gate %S: pins of %s are %s, got %s" name cell.Tka_cell.Cell.name
      (String.concat "," expected) (String.concat "," given);
  let out_net = proto_net b output in
  if out_net.p_is_input then fail "gate %S: cannot drive primary input %S" name out_net.p_name;
  (match out_net.p_driver with
  | Some _ -> fail "net %S has multiple drivers" out_net.p_name
  | None -> ());
  let id = b.n_gates in
  List.iter
    (fun (pin, nid) ->
      let pn = proto_net b nid in
      pn.p_sinks <- { N.sink_gate = id; sink_pin = pin } :: pn.p_sinks)
    inputs;
  out_net.p_driver <- Some id;
  b.gates <- { pg_name = name; pg_cell = cell; pg_fanin = inputs; pg_fanout = output } :: b.gates;
  b.n_gates <- b.n_gates + 1;
  Hashtbl.replace b.gate_names name ();
  id

let mark_output b id = (proto_net b id).p_is_output <- true

let add_coupling b a bb cap =
  if a = bb then fail "coupling of net %d to itself" a;
  if cap <= 0. then fail "coupling cap must be positive";
  ignore (proto_net b a);
  ignore (proto_net b bb);
  let id = b.n_couplings in
  b.couplings <- (a, bb, cap) :: b.couplings;
  b.n_couplings <- b.n_couplings + 1;
  id

let num_nets b = b.n_nets
let num_gates b = b.n_gates
let num_couplings b = b.n_couplings

(* Kahn's algorithm on the gate graph; raises on a combinational cycle. *)
let check_acyclic b gates_arr =
  let n = b.n_gates in
  let indeg = Array.make n 0 in
  let succs = Array.make n [] in
  (* successor gates of gate g = sinks of its fanout net *)
  Array.iteri
    (fun gi g ->
      let out = proto_net b g.pg_fanout in
      List.iter
        (fun s ->
          succs.(gi) <- s.N.sink_gate :: succs.(gi);
          indeg.(s.N.sink_gate) <- indeg.(s.N.sink_gate) + 1)
        out.p_sinks)
    gates_arr;
  let queue = Queue.create () in
  Array.iteri (fun i d -> if d = 0 then Queue.add i queue) indeg;
  let seen = ref 0 in
  while not (Queue.is_empty queue) do
    let g = Queue.pop queue in
    incr seen;
    List.iter
      (fun s ->
        indeg.(s) <- indeg.(s) - 1;
        if indeg.(s) = 0 then Queue.add s queue)
      succs.(g)
  done;
  if !seen <> n then fail "combinational cycle detected (%d of %d gates orderable)" !seen n

let finalize b =
  let nets_rev = Array.of_list b.nets in
  let n = Array.length nets_rev in
  let gates_rev = Array.of_list b.gates in
  let ng = Array.length gates_rev in
  let gates_arr = Array.init ng (fun i -> gates_rev.(ng - 1 - i)) in
  check_acyclic b gates_arr;
  let outputs = ref [] in
  let nets_arr =
    Array.init n (fun i ->
        let pn = nets_rev.(n - 1 - i) in
        if (not pn.p_is_input) && pn.p_driver = None then
          fail "net %S has no driver and is not a primary input" pn.p_name;
        (* implicit primary output: no sinks *)
        if pn.p_sinks = [] then pn.p_is_output <- true;
        if pn.p_is_output then outputs := i :: !outputs;
        {
          N.net_id = i;
          net_name = pn.p_name;
          wire_cap = pn.p_wire_cap;
          wire_res = pn.p_wire_res;
          driver =
            (match pn.p_driver with
            | None -> N.Primary_input
            | Some g -> N.Driven_by g);
          sinks = List.rev pn.p_sinks;
          is_output = pn.p_is_output;
        })
  in
  if !outputs = [] then fail "netlist has no primary outputs";
  let gate_final =
    Array.mapi
      (fun i g ->
        {
          N.gate_id = i;
          gate_name = g.pg_name;
          cell = g.pg_cell;
          fanin = g.pg_fanin;
          fanout = g.pg_fanout;
        })
      gates_arr
  in
  let ncoup = b.n_couplings in
  let coup_rev = Array.of_list b.couplings in
  let coup_arr =
    Array.init ncoup (fun i ->
        let a, bb, cap = coup_rev.(ncoup - 1 - i) in
        { N.coupling_id = i; net_a = a; net_b = bb; coupling_cap = cap })
  in
  N.unsafe_create ~name:b.b_name ~nets:nets_arr ~gates:gate_final
    ~couplings:coup_arr
    ~inputs:(List.rev b.input_ids)
    ~outputs:(List.rev !outputs)
