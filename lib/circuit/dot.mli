(** Graphviz export for debugging and documentation.

    Renders the gate graph; coupling capacitances appear as dashed red
    edges between net midpoints (represented by their driver gates /
    input ports). *)

val render : ?couplings:bool -> Netlist.t -> string
(** DOT source. [couplings] (default true) includes coupling edges. *)

val write_file : ?couplings:bool -> Netlist.t -> string -> unit
