module N = Netlist

(* Node representing the point a net is driven from: its driver gate, or
   an explicit port node for primary inputs. *)
let net_node nl id =
  match (N.net nl id).N.driver with
  | N.Primary_input -> Printf.sprintf "pi_%s" (N.net nl id).N.net_name
  | N.Driven_by g -> Printf.sprintf "g_%s" (N.gate nl g).N.gate_name

let render ?(couplings = true) nl =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "digraph %S {\n  rankdir=LR;\n" (N.name nl));
  List.iter
    (fun id ->
      Buffer.add_string buf
        (Printf.sprintf "  %s [shape=triangle, label=%S];\n" (net_node nl id)
           (N.net nl id).N.net_name))
    (N.inputs nl);
  Array.iter
    (fun g ->
      Buffer.add_string buf
        (Printf.sprintf "  g_%s [shape=box, label=\"%s\\n%s\"];\n" g.N.gate_name
           g.N.gate_name g.N.cell.Tka_cell.Cell.name))
    (N.gates nl);
  List.iter
    (fun id ->
      Buffer.add_string buf
        (Printf.sprintf "  po_%s [shape=invtriangle, label=%S];\n"
           (N.net nl id).N.net_name (N.net nl id).N.net_name))
    (N.outputs nl);
  (* signal edges: driver node -> each sink gate, labelled by net *)
  Array.iter
    (fun n ->
      let src = net_node nl n.N.net_id in
      List.iter
        (fun s ->
          Buffer.add_string buf
            (Printf.sprintf "  %s -> g_%s [label=%S];\n" src
               (N.gate nl s.N.sink_gate).N.gate_name n.N.net_name))
        n.N.sinks;
      if n.N.is_output then
        Buffer.add_string buf (Printf.sprintf "  %s -> po_%s;\n" src n.N.net_name))
    (N.nets nl);
  if couplings then
    Array.iter
      (fun c ->
        Buffer.add_string buf
          (Printf.sprintf
             "  %s -> %s [dir=none, style=dashed, color=red, label=\"%.4g\"];\n"
             (net_node nl c.N.net_a) (net_node nl c.N.net_b) c.N.coupling_cap))
      (N.couplings nl);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file ?couplings nl path =
  let oc = open_out path in
  output_string oc (render ?couplings nl);
  close_out oc
