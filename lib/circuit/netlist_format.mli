(** Plain-text netlist interchange format.

    Line-oriented, one declaration per line; [#] starts a comment.

    {v
    circuit i1
    input a cap=0.005 res=0.5
    input b
    net n1 cap=0.012 res=1.1
    gate g1 NAND2_X1 A=a B=b Y=n1
    output n1
    coupling n1 a cap=0.0031
    v}

    - [input]/[net] declare nets (parasitics optional);
    - [gate] instantiates a library cell, binding every pin;
    - [output] marks a primary output (sink-less nets are implicit
      outputs);
    - [coupling] declares a coupling capacitance between two nets.

    Nets must be declared before they are referenced. Cell names are
    resolved through the [lookup] argument (e.g.
    [Tka_cell.Default_lib.find]). {!print} emits this format and
    {!parse} reads it back (round-trip). *)

exception Parse_error of { line : int; message : string }

val parse :
  lookup:(string -> Tka_cell.Cell.t option) -> string -> Netlist.t
(** Parse a netlist from a string.
    @raise Parse_error with a 1-based line number on malformed input,
    unknown cells, or structural problems (reported at the offending
    line). *)

val parse_file :
  lookup:(string -> Tka_cell.Cell.t option) -> string -> Netlist.t

val print : Netlist.t -> string
(** Canonical rendering: circuit, inputs, nets, gates, outputs,
    couplings — parseable by {!parse}. *)

val write_file : Netlist.t -> string -> unit
