(** Structural Verilog netlist interchange.

    A gate-level subset of Verilog-2001 sufficient for mapped netlists,
    so circuits can be exchanged with standard EDA tools:

    {v
    module i1 (a, b, y);
      input a, b;
      output y;
      wire n1;

      NAND2_X1 g1 (.A(a), .B(b), .Y(n1));
      INV_X1   g2 (.A(n1), .Y(y));
    endmodule
    v}

    Supported: scalar ports/wires, named-port instances, [//] and
    [/* */] comments, and {e hierarchy}: a file may define several
    modules instantiating each other; the design is flattened under the
    top module (the one never instantiated) with ["inst/"]-prefixed
    names, as a synthesis flow would. Not supported (rejected with a
    clear error): vectors, assigns, behavioural constructs, parameters,
    recursive instantiation.

    Verilog carries no parasitics: parsed netlists get default wire RC
    and no coupling caps — annotate with {!Spef_lite.apply} afterwards,
    as a standard flow would. {!print} emits this format; round-trips
    through {!parse} up to the default parasitics. *)

exception Parse_error of { line : int; message : string }

val parse :
  lookup:(string -> Tka_cell.Cell.t option) -> string -> Netlist.t
(** @raise Parse_error on malformed or unsupported input. *)

val parse_file :
  lookup:(string -> Tka_cell.Cell.t option) -> string -> Netlist.t

val print : Netlist.t -> string
(** Structural Verilog for the netlist (couplings and parasitics are
    not representable and are dropped; pair with {!Spef_lite.print}). *)

val write_file : Netlist.t -> string -> unit
