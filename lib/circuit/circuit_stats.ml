module N = Netlist

type t = {
  circuit : string;
  gates : int;
  nets : int;
  all_nets : int;
  primary_inputs : int;
  primary_outputs : int;
  coupling_caps : int;
  total_coupling_cap : float;
  max_logic_depth : int;
  avg_fanout : float;
  avg_couplings_per_net : float;
}

let compute nl =
  let topo = Topo.create nl in
  let gates = N.num_gates nl in
  let all_nets = N.num_nets nl in
  let pis = List.length (N.inputs nl) in
  let fanouts =
    Array.fold_left (fun acc n -> acc + List.length n.N.sinks) 0 (N.nets nl)
  in
  {
    circuit = N.name nl;
    gates;
    nets = all_nets - pis;
    all_nets;
    primary_inputs = pis;
    primary_outputs = List.length (N.outputs nl);
    coupling_caps = N.num_couplings nl;
    total_coupling_cap =
      Array.fold_left (fun acc c -> acc +. c.N.coupling_cap) 0. (N.couplings nl);
    max_logic_depth = Topo.max_level topo;
    avg_fanout = (if all_nets = 0 then 0. else float_of_int fanouts /. float_of_int all_nets);
    avg_couplings_per_net =
      (if all_nets = 0 then 0.
       else float_of_int (2 * N.num_couplings nl) /. float_of_int all_nets);
  }

let pp ppf t =
  Format.fprintf ppf
    "@[<v>circuit %s: %d gates, %d nets (%d with PIs), %d PI, %d PO,@ %d coupling caps \
     (%.4g pF total), depth %d, avg fanout %.2f, avg couplings/net %.2f@]"
    t.circuit t.gates t.nets t.all_nets t.primary_inputs t.primary_outputs
    t.coupling_caps t.total_coupling_cap t.max_logic_depth t.avg_fanout
    t.avg_couplings_per_net

let header = [ "ckt"; "#gates"; "#nets"; "#coupling caps"; "depth"; "avg fanout" ]

let row t =
  [
    t.circuit;
    string_of_int t.gates;
    string_of_int t.nets;
    string_of_int t.coupling_caps;
    string_of_int t.max_logic_depth;
    Printf.sprintf "%.2f" t.avg_fanout;
  ]
