(** SPEF-lite parasitic annotation.

    Reads a simplified Standard Parasitic Exchange Format file and
    annotates an existing netlist with extracted parasitics: per-net
    ground capacitance/resistance and net-to-net coupling capacitors.
    This mirrors the paper's flow, where a commercial extractor produced
    the distributed RC that the noise tool consumed.

    Supported subset:

    {v
    *SPEF "IEEE 1481-lite"
    *DESIGN i1
    *T_UNIT 1 NS
    *C_UNIT 1 PF
    *R_UNIT 1 KOHM

    *D_NET n1 0.0123
    *RES 1.3
    *CAP
    1 n1 0.0093
    2 n1 n2 0.0030
    *END
    v}

    Inside a [*CAP] section, a two-token entry is a ground capacitor and
    a three-token entry a coupling capacitor; the first field is an
    index and is ignored. [*D_NET]'s trailing number (total cap) is
    informational. Coupling caps are deduplicated across the two nets'
    [*D_NET] blocks (the same physical capacitor may be listed in both,
    as real extractors do). *)

exception Parse_error of { line : int; message : string }

type annotation = {
  design : string option;
  ground : (string * float * float) list;
      (** net, wire-to-ground cap (pF), wire resistance (kΩ) *)
  couplings : (string * string * float) list;
      (** net, net, coupling cap (pF); deduplicated *)
}

val parse : string -> annotation
(** @raise Parse_error on malformed input, with the offending line
    (an unterminated [*D_NET] reports its opening line). Capacitance and
    resistance values must be finite. *)

val parse_file : string -> annotation

val apply : annotation -> Netlist.t -> Netlist.t
(** Rebuilds the netlist with the annotation's parasitics: wire cap/res
    replaced for every annotated net, all prior couplings dropped and
    replaced by the annotation's. Unknown net names raise
    {!Netlist.Link_error} with source ["spef"]. *)

val print : Netlist.t -> string
(** Renders a netlist's parasitics in the SPEF-lite format (round-trips
    through {!parse} + {!apply}). *)
