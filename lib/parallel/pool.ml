module Log = Tka_obs.Log
module Metrics = Tka_obs.Metrics
module Trace = Tka_obs.Trace
module J = Tka_obs.Jsonx

let log_src = Log.Src.create "parallel" ~doc:"work-stealing domain pool"
let c_batches = Metrics.Counter.make "pool.batches"
let c_tasks = Metrics.Counter.make "pool.tasks"

type task = unit -> unit

type t = {
  jobs : int;
  mutex : Mutex.t;
  has_work : Condition.t;
  tasks : task Queue.t;
  mutable live : bool;
  mutable workers : unit Domain.t array; (* length jobs - 1 *)
}

(* ------------------------------------------------------------------ *)
(* Worker loop                                                        *)
(* ------------------------------------------------------------------ *)

(* Workers idle on [has_work]; each task is a closure that never raises
   (batches wrap their bodies). Shutdown is signalled by [live = false]
   plus a broadcast; workers drain the queue before exiting so a
   shutdown cannot strand queued work. *)
let rec worker_loop t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.tasks && t.live do
    Condition.wait t.has_work t.mutex
  done;
  if Queue.is_empty t.tasks then begin
    (* not live and nothing left *)
    Mutex.unlock t.mutex
  end
  else begin
    let task = Queue.pop t.tasks in
    Mutex.unlock t.mutex;
    task ();
    worker_loop t
  end

let create ~jobs =
  let jobs = max 1 jobs in
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      has_work = Condition.create ();
      tasks = Queue.create ();
      live = true;
      workers = [||];
    }
  in
  if jobs > 1 then
    t.workers <- Array.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  Log.debug log_src (fun m ->
      m ~fields:[ Log.int "jobs" jobs ] "pool created with %d job(s)" jobs);
  t

let size t = t.jobs

let shutdown t =
  let ws =
    Mutex.lock t.mutex;
    let ws = t.workers in
    t.live <- false;
    t.workers <- [||];
    Condition.broadcast t.has_work;
    Mutex.unlock t.mutex;
    ws
  in
  Array.iter Domain.join ws;
  if Array.length ws > 0 then
    Log.debug log_src (fun m ->
        m
          ~fields:[ Log.int "workers" (Array.length ws) ]
          "pool shut down (%d worker(s) joined)" (Array.length ws))

(* ------------------------------------------------------------------ *)
(* Batches                                                            *)
(* ------------------------------------------------------------------ *)

type batch = {
  remaining : int Atomic.t;
  failure : (exn * Printexc.raw_backtrace) option Atomic.t;
  done_mutex : Mutex.t;
  done_cond : Condition.t;
}

(* Run every thunk in [thunks] on the pool and wait for all of them.
   The submitting domain helps execute queued tasks (of any batch —
   that is what makes nested submission deadlock-free) until its own
   batch has drained. The first exception recorded by any thunk is
   re-raised in the submitter once the batch completes; the remaining
   thunks still run, so partial side effects are never silently
   abandoned mid-batch. *)
let run_batch t (thunks : task array) =
  let n = Array.length thunks in
  if n = 0 then ()
  else if t.jobs = 1 || n = 1 || not t.live then Array.iter (fun f -> f ()) thunks
  else begin
    Metrics.Counter.incr c_batches;
    Metrics.Counter.add c_tasks n;
    Trace.with_span ~cat:"pool" ~args:[ ("tasks", J.Int n) ] "pool.batch"
    @@ fun () ->
    Log.debug log_src (fun m ->
        m ~fields:[ Log.int "tasks" n ] "batch submitted: %d task(s)" n);
    let b =
      {
        remaining = Atomic.make n;
        failure = Atomic.make None;
        done_mutex = Mutex.create ();
        done_cond = Condition.create ();
      }
    in
    let wrapped f () =
      (try f ()
       with e ->
         let bt = Printexc.get_raw_backtrace () in
         ignore (Atomic.compare_and_set b.failure None (Some (e, bt))));
      if Atomic.fetch_and_add b.remaining (-1) = 1 then begin
        Mutex.lock b.done_mutex;
        Condition.broadcast b.done_cond;
        Mutex.unlock b.done_mutex
      end
    in
    Mutex.lock t.mutex;
    Array.iter (fun f -> Queue.add (wrapped f) t.tasks) thunks;
    Condition.broadcast t.has_work;
    Mutex.unlock t.mutex;
    (* help until our batch is done *)
    let finished () = Atomic.get b.remaining = 0 in
    let rec help () =
      if not (finished ()) then begin
        Mutex.lock t.mutex;
        let job = if Queue.is_empty t.tasks then None else Some (Queue.pop t.tasks) in
        Mutex.unlock t.mutex;
        match job with
        | Some task ->
          task ();
          help ()
        | None ->
          (* everything still pending is running on a worker *)
          Mutex.lock b.done_mutex;
          while not (finished ()) do
            Condition.wait b.done_cond b.done_mutex
          done;
          Mutex.unlock b.done_mutex
      end
    in
    help ();
    Log.debug log_src (fun m ->
        m ~fields:[ Log.int "tasks" n ] "batch drained: %d task(s)" n);
    match Atomic.get b.failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end

(* ------------------------------------------------------------------ *)
(* Chunked primitives                                                 *)
(* ------------------------------------------------------------------ *)

let chunk_size t ?chunk n =
  match chunk with
  | Some c -> max 1 c
  | None -> max 1 (n / (t.jobs * 8))

let parallel_for ?chunk t ~lo ~hi body =
  let n = hi - lo in
  if n <= 0 then ()
  else if t.jobs = 1 || not t.live then
    for i = lo to hi - 1 do
      body i
    done
  else begin
    let c = chunk_size t ?chunk n in
    let chunks = (n + c - 1) / c in
    let thunks =
      Array.init chunks (fun ci ->
          let first = lo + (ci * c) in
          let last = min hi (first + c) - 1 in
          fun () ->
            for i = first to last do
              body i
            done)
    in
    run_batch t thunks
  end

let iter ?chunk t f a =
  if t.jobs = 1 || not t.live then Array.iter f a
  else parallel_for ?chunk t ~lo:0 ~hi:(Array.length a) (fun i -> f a.(i))

let map ?chunk t f a =
  if t.jobs = 1 || not t.live then Array.map f a
  else begin
    let n = Array.length a in
    let out = Array.make n None in
    parallel_for ?chunk t ~lo:0 ~hi:n (fun i -> out.(i) <- Some (f a.(i)));
    Array.map
      (function Some v -> v | None -> assert false (* every index ran *))
      out
  end

let map_reduce ?chunk t ~map:mp ~reduce ~init a =
  if t.jobs = 1 || not t.live then
    Array.fold_left (fun acc x -> reduce acc (mp x)) init a
  else
    let mapped = map ?chunk t mp a in
    Array.fold_left reduce init mapped

(* ------------------------------------------------------------------ *)
(* Default pool                                                       *)
(* ------------------------------------------------------------------ *)

let env_jobs () =
  match Sys.getenv_opt "TKA_JOBS" with
  | None -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some j when j >= 1 -> Some j
    | Some _ | None -> None)

let env_jobs_error () =
  match Sys.getenv_opt "TKA_JOBS" with
  | None -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some j when j >= 1 -> None
    | Some j -> Some (Printf.sprintf "TKA_JOBS must be >= 1 (got %d)" j)
    | None -> Some (Printf.sprintf "TKA_JOBS must be a positive integer (got %S)" s))

let requested_jobs : int option ref = ref None

let default_jobs () =
  match !requested_jobs with
  | Some j -> j
  | None -> (
    match env_jobs () with
    | Some j -> j
    | None -> max 1 (Domain.recommended_domain_count () - 1))

(* The default pool is created lazily and torn down at exit so worker
   domains never outlive the main domain. Guarded by a mutex: bench /
   tests flip the size around timed regions. *)
let default_mutex = Mutex.create ()
let default_pool : t option ref = ref None
let exit_hook_installed = ref false

let get_default () =
  Mutex.lock default_mutex;
  let jobs = default_jobs () in
  let pool =
    match !default_pool with
    | Some p when p.jobs = jobs -> p
    | other ->
      (match other with Some p -> Mutex.unlock default_mutex; shutdown p; Mutex.lock default_mutex | None -> ());
      let p = create ~jobs in
      default_pool := Some p;
      if not !exit_hook_installed then begin
        exit_hook_installed := true;
        at_exit (fun () ->
            Mutex.lock default_mutex;
            let p = !default_pool in
            default_pool := None;
            Mutex.unlock default_mutex;
            Option.iter shutdown p)
      end;
      p
  in
  Mutex.unlock default_mutex;
  pool

let set_default_jobs j =
  let j = max 1 j in
  Mutex.lock default_mutex;
  requested_jobs := Some j;
  let stale =
    match !default_pool with
    | Some p when p.jobs <> j ->
      default_pool := None;
      Some p
    | _ -> None
  in
  Mutex.unlock default_mutex;
  Option.iter shutdown stale
