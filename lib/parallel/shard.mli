(** Shard-per-job scheduling of independent work units.

    A shard is an ordered [int array] of item ids that must be
    processed sequentially, in array order, on one domain; distinct
    shards must be mutually independent (the caller guarantees that
    processing an item never reads state written by another shard —
    for the engine, {!Tka_circuit.Topo.cone_shards} provides exactly
    that closure). Under these two conditions any jobs count produces
    the same per-item inputs as the sequential sweep, so results are
    deterministic by construction. *)

val run : Pool.t -> shards:int array array -> (int -> unit) -> unit
(** [run pool ~shards f] applies [f] to every item of every shard:
    items of one shard in order on one domain, shards dispatched to the
    pool largest-first (scheduling affects wall-clock only). Empty
    shard arrays are allowed. Exceptions propagate as in
    {!Pool.iter}. *)
