(** Fixed-size domain pool for deterministic data parallelism.

    Built on stdlib [Domain]/[Mutex]/[Condition] only (no domainslib).
    A pool of [jobs] domains total — [jobs - 1] spawned workers plus the
    submitting domain, which participates in executing its own batches —
    serves chunked parallel iteration primitives. All primitives are
    {e deterministic by construction}: results are assembled by index,
    and reductions fold mapped results in input order, so the output is
    independent of how chunks are scheduled across domains. (The bodies
    themselves must of course be free of order-dependent shared mutable
    state; see [docs/parallelism.md] for the engine's safety argument.)

    With [jobs = 1] every primitive takes the plain sequential path in
    the calling domain — no worker domains are ever spawned, no mutex is
    taken, and the iteration order is exactly that of the equivalent
    [for] loop.

    Nested submission is supported: a task running on a pool worker may
    itself call {!iter}/{!map}/... on the same pool. The submitter
    always helps drain the shared task queue while waiting for its own
    batch, so nesting cannot deadlock even when every worker is busy. *)

type t

val create : jobs:int -> t
(** [create ~jobs] makes a pool that executes batches on [jobs] domains
    ([jobs - 1] spawned workers; the submitter is the remaining one).
    [jobs] is clamped to at least 1. Workers are spawned eagerly and
    idle on a condition variable until work arrives. *)

val size : t -> int
(** The [jobs] the pool was created with (after clamping). *)

val shutdown : t -> unit
(** Terminate and join the worker domains. Idempotent. Outstanding
    batches must have completed; calling {!iter} etc. on a pool after
    shutdown falls back to the sequential path. *)

val parallel_for : ?chunk:int -> t -> lo:int -> hi:int -> (int -> unit) -> unit
(** [parallel_for pool ~lo ~hi body] runs [body i] for every
    [lo <= i < hi], split into contiguous chunks of [chunk] indices
    (default: a heuristic targeting ~8 chunks per domain). Returns when
    every index has been processed; the first exception raised by any
    [body] is re-raised in the caller (after the batch drains). *)

val iter : ?chunk:int -> t -> ('a -> unit) -> 'a array -> unit
(** Chunked parallel [Array.iter]. *)

val map : ?chunk:int -> t -> ('a -> 'b) -> 'a array -> 'b array
(** Chunked parallel [Array.map]: [ (map pool f a).(i) = f a.(i) ],
    results positioned by index regardless of scheduling. *)

val map_reduce :
  ?chunk:int -> t -> map:('a -> 'b) -> reduce:('c -> 'b -> 'c) -> init:'c ->
  'a array -> 'c
(** Ordered map–reduce: the maps run in parallel, then the fold
    [reduce (... (reduce init b0) ...) bn] runs sequentially in input
    order — so a non-commutative [reduce] still gives a deterministic,
    sequential-identical result. *)

(** {1 Default pool}

    The process-wide pool shared by the engine, the brute-force baseline
    and the bench harness. Sized by the [TKA_JOBS] environment variable
    when set (clamped to >= 1), otherwise
    [Domain.recommended_domain_count () - 1] (at least 1). Created
    lazily on first use and torn down from an [at_exit] hook. *)

val default_jobs : unit -> int
(** The jobs count the default pool has (or would be created with). *)

val env_jobs_error : unit -> string option
(** A diagnostic when [TKA_JOBS] is set but invalid (non-numeric or
    [< 1]) — such a value is {e ignored} by {!default_jobs}, so
    executables should call this at startup and fail loudly instead of
    silently falling through to the default sizing (the CLI and the
    bench harness do). [None] when the variable is unset or valid. *)

val set_default_jobs : int -> unit
(** Override the default pool size (the CLI [--jobs] flag and the bench
    harness call this). If a default pool of a different size already
    exists it is shut down and recreated lazily at the new size. *)

val get_default : unit -> t
(** The shared default pool, created on first call. *)
