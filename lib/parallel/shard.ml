module Log = Tka_obs.Log

let log_src = Log.Src.create "shard" ~doc:"cone-sharded sweep scheduling"

let run pool ~shards f =
  let ns = Array.length shards in
  if ns > 0 then begin
    (* Largest shards first: each shard is an independent sequential
       unit, so the schedule affects only wall-clock (a big shard
       started last would serialise the tail), never results. The tie
       break on the original index keeps the schedule itself
       reproducible for tracing. *)
    let order = Array.init ns Fun.id in
    Array.sort
      (fun a b ->
        let c =
          Int.compare (Array.length shards.(b)) (Array.length shards.(a))
        in
        if c <> 0 then c else Int.compare a b)
      order;
    Log.debug log_src (fun m ->
        m "sharded sweep"
          ~fields:
            [
              Log.int "shards" ns;
              Log.int "largest" (Array.length shards.(order.(0)));
              Log.int "jobs" (Pool.size pool);
            ]);
    Pool.iter ~chunk:1 pool (fun s -> Array.iter f shards.(s)) order
  end
