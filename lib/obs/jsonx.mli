(** Minimal JSON values: enough for metrics export, NDJSON log lines and
    Chrome-trace dumps, plus a small parser for round-trip tests and
    tooling. No external dependency.

    Numbers are split into {!Int} and {!Float} so counters render as
    integers. Non-finite floats serialise as [null] (JSON has no
    inf/nan). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering — one call per NDJSON log line. *)

val to_string_pretty : t -> string
(** Indented rendering for files meant to be read by humans. *)

val write_file : string -> t -> unit
(** Pretty-print to [path] with a trailing newline. *)

exception Parse_error of string

val of_string : string -> t
(** Parse a complete JSON document. Raises {!Parse_error} on malformed
    input or trailing content. *)

val member : string -> t -> t option
(** [member key (Obj _)] looks up [key]; [None] on other constructors. *)
