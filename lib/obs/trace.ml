let enabled = Atomic.make false

let set_enabled b = Atomic.set enabled b
let is_enabled () = Atomic.get enabled

type span = {
  sp_name : string;
  sp_cat : string;
  sp_start_ns : int64;
  sp_dur_ns : int64;
  sp_depth : int;
  sp_args : (string * Jsonx.t) list;
}

(* Session origin: timestamps are reported relative to the first event
   so the viewer does not start at hours-since-boot.

   The recorder state is shared by every domain of the parallel engine
   sweep, so it is guarded by a mutex (spans are only recorded when
   tracing is enabled; the disabled path touches nothing). [depth] is a
   global nesting counter — under concurrent spans it is approximate,
   which only affects the cosmetic depth field. *)
let state_mutex = Mutex.create ()
let origin : int64 option ref = ref None
let recorded : span list ref = ref []
let depth = ref 0

let with_state f =
  Mutex.lock state_mutex;
  let v = try f () with e -> Mutex.unlock state_mutex; raise e in
  Mutex.unlock state_mutex;
  v

(* callers hold [state_mutex] *)
let rel now =
  match !origin with
  | Some t0 -> Int64.sub now t0
  | None ->
    origin := Some now;
    0L

let clear () =
  with_state (fun () ->
      origin := None;
      recorded := [];
      depth := 0)

let record name cat args start_ns dur_ns d =
  recorded :=
    {
      sp_name = name;
      sp_cat = cat;
      sp_start_ns = start_ns;
      sp_dur_ns = dur_ns;
      sp_depth = d;
      sp_args = args;
    }
    :: !recorded

let with_span ?(cat = "tka") ?(args = []) name f =
  if not (Atomic.get enabled) then f ()
  else begin
    let start, d =
      with_state (fun () ->
          let start = rel (Monotonic_clock.now ()) in
          let d = !depth in
          incr depth;
          (start, d))
    in
    let finish () =
      with_state (fun () ->
          decr depth;
          let stop = rel (Monotonic_clock.now ()) in
          record name cat args start (Int64.sub stop start) d)
    in
    match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e
  end

let instant ?(cat = "tka") ?(args = []) name =
  if Atomic.get enabled then
    with_state (fun () ->
        record name cat args (rel (Monotonic_clock.now ())) (-1L) !depth)

let spans () = with_state (fun () -> List.rev !recorded)

let to_json () =
  let us ns = Jsonx.Float (Int64.to_float ns /. 1e3) in
  let event sp =
    Jsonx.Obj
      ([
         ("name", Jsonx.Str sp.sp_name);
         ("cat", Jsonx.Str sp.sp_cat);
         ("ph", Jsonx.Str (if sp.sp_dur_ns < 0L then "i" else "X"));
         ("ts", us sp.sp_start_ns);
       ]
      @ (if sp.sp_dur_ns < 0L then [ ("s", Jsonx.Str "t") ]
         else [ ("dur", us sp.sp_dur_ns) ])
      @ [ ("pid", Jsonx.Int 1); ("tid", Jsonx.Int 1) ]
      @
      match sp.sp_args with [] -> [] | args -> [ ("args", Jsonx.Obj args) ])
  in
  Jsonx.Obj
    [
      ("traceEvents", Jsonx.List (List.map event (spans ())));
      ("displayTimeUnit", Jsonx.Str "ns");
    ]

let write_file path = Jsonx.write_file path (to_json ())
