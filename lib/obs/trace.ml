let enabled = Atomic.make false

let set_enabled b = Atomic.set enabled b
let is_enabled () = Atomic.get enabled

(* Allocation deltas come from [Gc.quick_stat] (no heap walk, O(1)), so
   sampling them per span is cheap. In a multi-domain program the word
   counts are dominated by the recording domain's own allocation, which
   is exactly the attribution a profiler wants. *)
type gc_delta = {
  gd_minor_words : float;
  gd_major_words : float;
  gd_promoted_words : float;
  gd_minor_collections : int;
  gd_major_collections : int;
}

type span = {
  sp_name : string;
  sp_cat : string;
  sp_start_ns : int64;
  sp_dur_ns : int64;
  sp_depth : int;
  sp_args : (string * Jsonx.t) list;
  sp_gc : gc_delta option;
}

(* Session origin: timestamps are reported relative to the first event
   so the viewer does not start at hours-since-boot.

   The recorder state is shared by every domain of the parallel engine
   sweep, so it is guarded by a mutex (spans are only recorded when
   tracing is enabled; the disabled path touches nothing). [depth] is a
   global nesting counter — under concurrent spans it is approximate,
   which only affects the cosmetic depth field. *)
let state_mutex = Mutex.create ()
let origin : int64 option ref = ref None
let recorded : span list ref = ref []
let depth = ref 0

let with_state f =
  Mutex.lock state_mutex;
  let v = try f () with e -> Mutex.unlock state_mutex; raise e in
  Mutex.unlock state_mutex;
  v

(* callers hold [state_mutex] *)
let rel now =
  match !origin with
  | Some t0 -> Int64.sub now t0
  | None ->
    origin := Some now;
    0L

let clear () =
  with_state (fun () ->
      origin := None;
      recorded := [];
      depth := 0)

let record name cat args start_ns dur_ns d gc =
  recorded :=
    {
      sp_name = name;
      sp_cat = cat;
      sp_start_ns = start_ns;
      sp_dur_ns = dur_ns;
      sp_depth = d;
      sp_args = args;
      sp_gc = gc;
    }
    :: !recorded

let gc_delta (a : Gc.stat) (b : Gc.stat) =
  {
    gd_minor_words = b.Gc.minor_words -. a.Gc.minor_words;
    gd_major_words = b.Gc.major_words -. a.Gc.major_words;
    gd_promoted_words = b.Gc.promoted_words -. a.Gc.promoted_words;
    gd_minor_collections = b.Gc.minor_collections - a.Gc.minor_collections;
    gd_major_collections = b.Gc.major_collections - a.Gc.major_collections;
  }

(* Shared body for the two span-scoping entry points: [late_args]
   computes extra args from the thunk's result once it is available
   (used by the engine to attach per-victim prune stats). *)
let span_scope cat args name late_args f =
  let gc0 = Gc.quick_stat () in
  let start, d =
    with_state (fun () ->
        let start = rel (Monotonic_clock.now ()) in
        let d = !depth in
        incr depth;
        (start, d))
  in
  let finish extra =
    let gc = gc_delta gc0 (Gc.quick_stat ()) in
    with_state (fun () ->
        decr depth;
        let stop = rel (Monotonic_clock.now ()) in
        record name cat (args @ extra) start (Int64.sub stop start) d (Some gc))
  in
  match f () with
  | v ->
    finish (late_args v);
    v
  | exception e ->
    finish [];
    raise e

let with_span ?(cat = "tka") ?(args = []) name f =
  if not (Atomic.get enabled) then f ()
  else span_scope cat args name (fun _ -> []) f

let with_span_args ?(cat = "tka") ?(args = []) name late_args f =
  if not (Atomic.get enabled) then f ()
  else span_scope cat args name late_args f

let instant ?(cat = "tka") ?(args = []) name =
  if Atomic.get enabled then
    with_state (fun () ->
        record name cat args (rel (Monotonic_clock.now ())) (-1L) !depth None)

let spans () = with_state (fun () -> List.rev !recorded)

let gc_args gd =
  [
    ("minor_words", Jsonx.Float gd.gd_minor_words);
    ("major_words", Jsonx.Float gd.gd_major_words);
    ("promoted_words", Jsonx.Float gd.gd_promoted_words);
    ("minor_collections", Jsonx.Int gd.gd_minor_collections);
    ("major_collections", Jsonx.Int gd.gd_major_collections);
  ]

let to_json () =
  let us ns = Jsonx.Float (Int64.to_float ns /. 1e3) in
  let event sp =
    let args =
      sp.sp_args @ (match sp.sp_gc with Some gd -> gc_args gd | None -> [])
    in
    Jsonx.Obj
      ([
         ("name", Jsonx.Str sp.sp_name);
         ("cat", Jsonx.Str sp.sp_cat);
         ("ph", Jsonx.Str (if sp.sp_dur_ns < 0L then "i" else "X"));
         ("ts", us sp.sp_start_ns);
       ]
      @ (if sp.sp_dur_ns < 0L then [ ("s", Jsonx.Str "t") ]
         else [ ("dur", us sp.sp_dur_ns) ])
      @ [ ("pid", Jsonx.Int 1); ("tid", Jsonx.Int 1) ]
      @
      match args with [] -> [] | args -> [ ("args", Jsonx.Obj args) ])
  in
  Jsonx.Obj
    [
      ("traceEvents", Jsonx.List (List.map event (spans ())));
      ("displayTimeUnit", Jsonx.Str "ns");
    ]

let write_file path = Jsonx.write_file path (to_json ())
