(** Structured, leveled, per-source logging.

    Replaces the ad-hoc [printf]/[Logs] mixture of the early repo. Each
    subsystem creates a named {!Src.t} ([engine], [iterate], [spef],
    [liberty], [verilog], ...); messages carry a severity level plus
    optional structured fields (key/JSON-value pairs), and are routed to
    a pluggable {!reporter}: human text on stderr (default), NDJSON to a
    channel, an in-memory buffer for tests, or any combination.

    Filtering is two-stage and cheap: a message whose level is disabled
    for its source never formats its arguments (the continuation-passing
    interface mirrors the [logs] library).

    Level resolution per source: the source's own override if set,
    otherwise the global level. The environment variable [TKA_LOG]
    (e.g. [TKA_LOG=debug] or [TKA_LOG=info,engine=debug,spef=error])
    configures both via {!set_from_string}. *)

type level = Error | Warn | Info | Debug

val level_to_string : level -> string

val level_of_string : string -> level option
(** Accepts ["error"|"warn"|"warning"|"info"|"debug"] (any case). *)

type field = string * Jsonx.t

(** Convenience field constructors. *)

val str : string -> string -> field
val int : string -> int -> field
val float : string -> float -> field
val bool : string -> bool -> field

(** {1 Sources} *)

module Src : sig
  type t

  val create : ?doc:string -> string -> t
  (** [create name] registers a source. Creating a second source with
      the same name returns the first (so libraries can declare their
      source at module initialisation without coordination). Pending
      per-source levels from {!set_from_string} apply to sources created
      later. *)

  val name : t -> string
  val doc : t -> string

  val set_level : t -> level option -> unit
  (** [None] means: follow the global level. *)

  val level : t -> level option
  val list : unit -> t list
end

(** {1 Level control} *)

val set_level : level option -> unit
(** Global level. [None] disables all logging. Default: [Some Warn]. *)

val global_level : unit -> level option

val set_from_string : string -> (unit, string) Stdlib.result
(** Parse a directive list: a bare level sets the global level, a
    [src=level] pair sets (or pre-registers) a per-source override.
    Example: ["info,engine=debug,spef=error"]. *)

val set_from_env : unit -> unit
(** Apply [TKA_LOG] if present; malformed directives are reported on
    stderr and otherwise ignored. *)

val enabled : Src.t -> level -> bool

(** {1 Events and reporters} *)

type event = {
  ev_src : string;
  ev_level : level;
  ev_msg : string;
  ev_fields : field list;
  ev_time_ns : int64;  (** monotonic clock, ns *)
}

type reporter = event -> unit

val set_reporter : reporter -> unit
val nop_reporter : reporter

val text_reporter : ?oc:out_channel -> unit -> reporter
(** Human-readable one-liners ([tka: [WARN] spef: msg (k=v ...)]),
    flushed per event. Default channel: stderr. *)

val ndjson_reporter : out_channel -> reporter
(** One compact JSON object per line:
    [{"ts_ns":..,"level":"warn","src":"spef","msg":"..","k":v,..}]. *)

val buffer_reporter : unit -> reporter * (unit -> event list)
(** In-memory sink for tests; the thunk returns events oldest-first. *)

val multi_reporter : reporter list -> reporter

(** {1 Logging} *)

type 'a msgf =
  (?fields:field list -> ('a, Format.formatter, unit, unit) format4 -> 'a) -> unit

val msg : Src.t -> level -> 'a msgf -> unit
val err : Src.t -> 'a msgf -> unit
val warn : Src.t -> 'a msgf -> unit
val info : Src.t -> 'a msgf -> unit
val debug : Src.t -> 'a msgf -> unit

val err_count : unit -> int
(** Number of [Error]-level events reported so far (any reporter). *)
