let now_ns () = Monotonic_clock.now ()
let now_s () = Int64.to_float (Monotonic_clock.now ()) /. 1e9
let seconds_since t0 = Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0) /. 1e9
