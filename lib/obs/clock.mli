(** Monotonic clock shared by the observability layer (CLOCK_MONOTONIC
    via the bechamel stubs — wall-time-independent, nanosecond
    resolution).

    This is also the clock every runtime figure in the repo is measured
    with: [Sys.time] reports {e CPU} time summed across domains, which
    inflates under the parallel sweep, and [Unix.gettimeofday] can jump
    with wall-clock adjustments. *)

val now_ns : unit -> int64

val now_s : unit -> float
(** {!now_ns} in seconds. Only differences are meaningful. *)

val seconds_since : int64 -> float
(** [seconds_since t0] where [t0] came from {!now_ns}. *)
