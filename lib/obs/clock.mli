(** Monotonic clock shared by the observability layer (CLOCK_MONOTONIC
    via the bechamel stubs — wall-time-independent, nanosecond
    resolution). *)

val now_ns : unit -> int64

val seconds_since : int64 -> float
(** [seconds_since t0] where [t0] came from {!now_ns}. *)
