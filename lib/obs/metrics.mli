(** Metrics registry: named counters, gauges and fixed-bucket
    histograms with O(1) hot-path updates and JSON export.

    Observability is {e off by default}: every update is guarded by a
    single global flag, so instrumented hot paths (the enumeration
    engine, the delay calculator) pay one boolean load and a branch —
    and allocate nothing — when metrics are disabled. Enable with
    {!set_enabled} (the CLI does this when [--metrics-out] is given).

    All instruments are {e domain-safe}: counters use atomic
    fetch-and-add, gauges atomic stores, and histogram cells atomic
    increments with a CAS-retry float accumulator, so updates from the
    parallel engine sweep ([Tka_parallel]) never race or under-count.
    The zero-allocation-when-disabled guarantee is unchanged.

    Metrics register themselves in a {!registry} at creation; creating a
    metric with an existing name in the same registry returns the
    existing instance, so modules can declare their instruments at
    toplevel without coordination. The default registry serialises as a
    flat JSON object keyed by metric name (see
    [docs/observability.md]). *)

type registry

val default_registry : registry
val create_registry : unit -> registry

val set_enabled : bool -> unit
(** Global switch for all updates ([incr]/[add]/[set]/[observe]) in
    every registry. Reads ({!Counter.value}, {!to_json}, ...) always
    work. *)

val is_enabled : unit -> bool

val with_enabled : bool -> (unit -> 'a) -> 'a
(** Run the thunk with the switch forced to the given value, restoring
    the previous state afterwards (exception-safe). *)

val with_disabled : (unit -> 'a) -> 'a
(** [with_enabled false]: the zero-cost no-op scope. *)

module Counter : sig
  type t

  val make : ?registry:registry -> string -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  val name : t -> string
end

module Gauge : sig
  type t

  val make : ?registry:registry -> string -> t
  val set : t -> float -> unit
  val value : t -> float
  val name : t -> string
end

module Histogram : sig
  type t

  val default_buckets : float array
  (** Log-spaced 1e-6 .. 10 (seconds-flavoured). *)

  val make : ?registry:registry -> ?buckets:float array -> string -> t
  (** [buckets] are upper bounds, strictly increasing; an implicit
      overflow bucket collects everything above the last bound. *)

  val observe : t -> float -> unit

  val count : t -> int
  val sum : t -> float
  val buckets : t -> float array
  val counts : t -> int array
  (** Per-bucket counts; length = [Array.length (buckets h) + 1] (the
      last cell is the overflow bucket). *)

  val percentile : t -> float -> float
  (** [percentile h q] estimates the [q]-quantile ([q] in [[0,1]]) from
      the bucket counts, interpolating linearly inside the containing
      bucket; the first bucket's lower bound is 0 and observations in
      the overflow bucket clamp to the last bound. [nan] when the
      histogram is empty. Raises [Invalid_argument] when [q] is outside
      [[0,1]]. *)

  val name : t -> string
end

val find_counter : ?registry:registry -> string -> Counter.t option
val find_gauge : ?registry:registry -> string -> Gauge.t option
val find_histogram : ?registry:registry -> string -> Histogram.t option

val reset : ?registry:registry -> unit -> unit
(** Zero every metric in the registry (instruments stay registered). *)

val to_json : ?registry:registry -> unit -> Jsonx.t
(** Flat object, keys sorted: counters as integers, gauges as floats,
    histograms as [{"buckets":[..],"counts":[..],"sum":s,"count":n,
    "p50":..,"p90":..,"p99":..}] (percentiles are bucket-interpolated
    estimates, [null] when empty). *)

val write_file : ?registry:registry -> string -> unit
(** Pretty-printed {!to_json} to [path]. *)

(** {1 Prometheus text exposition}

    The [tka serve] daemon's [metrics] RPC renders the registry in the
    Prometheus text format (version 0.0.4): one [# TYPE] line per
    metric, counters and gauges as single samples, histograms as
    {e cumulative} [_bucket{le="..."}] samples plus [_sum]/[_count].
    Metric names are sanitised with {!prometheus_name}; label values
    are escaped with {!prometheus_escape_label}. *)

val prometheus_name : string -> string
(** Sanitise to the Prometheus metric-name alphabet
    [[a-zA-Z_:][a-zA-Z0-9_:]*]: every other character becomes ['_']
    (so ["incr.cache_hits"] renders as [incr_cache_hits]), and a
    leading digit is prefixed with ['_']. The empty string becomes
    ["_"]. *)

val prometheus_escape_label : string -> string
(** Escape a label {e value} per the exposition format: backslash,
    double quote and newline are backslash-escaped. *)

val render_prometheus : ?registry:registry -> unit -> string
(** The whole registry, metrics sorted by (sanitised) name. Empty
    histograms still render (all-zero buckets); non-finite gauge values
    render as [NaN]/[+Inf]/[-Inf] as the format specifies. *)
