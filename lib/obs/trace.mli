(** Span tracing on the monotonic clock, exported in Chrome's
    [trace_event] format (load the dump at [chrome://tracing] or
    [https://ui.perfetto.dev]).

    {!with_span} scopes nest arbitrarily; each completed scope records a
    complete ("ph":"X") event with microsecond timestamps relative to
    the first event of the session, plus the [Gc.quick_stat] allocation
    delta across the scope (minor/major/promoted words and collection
    counts — [tka profile] turns these into allocation hotspots).
    Disabled (the default), [with_span] reduces to running its thunk —
    enable with {!set_enabled} (the CLI does this when [--trace-out] is
    given). *)

val set_enabled : bool -> unit
val is_enabled : unit -> bool

val with_span :
  ?cat:string -> ?args:(string * Jsonx.t) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f], timing it with the monotonic clock.
    The span is recorded even when [f] raises. [cat] is the Chrome
    trace category (default ["tka"]); [args] show up in the viewer's
    detail pane. *)

val with_span_args :
  ?cat:string ->
  ?args:(string * Jsonx.t) list ->
  string ->
  ('a -> (string * Jsonx.t) list) ->
  (unit -> 'a) ->
  'a
(** Like {!with_span}, but [late_args result] is evaluated once the
    thunk returns and its fields are appended to the span's args — for
    attribution data only known at scope exit (per-victim prune stats).
    When the thunk raises, the span records with the static [args]
    only. *)

val instant : ?cat:string -> ?args:(string * Jsonx.t) list -> string -> unit
(** A zero-duration marker ("ph":"i"). *)

type gc_delta = {
  gd_minor_words : float;
  gd_major_words : float;
  gd_promoted_words : float;
  gd_minor_collections : int;
  gd_major_collections : int;
}

type span = {
  sp_name : string;
  sp_cat : string;
  sp_start_ns : int64;  (** monotonic, relative to the session origin *)
  sp_dur_ns : int64;  (** -1 for instants *)
  sp_depth : int;  (** nesting depth at record time (0 = toplevel) *)
  sp_args : (string * Jsonx.t) list;
  sp_gc : gc_delta option;  (** [None] for instants *)
}

val spans : unit -> span list
(** Completed spans in completion order (children precede parents). *)

val clear : unit -> unit
(** Drop recorded spans and reset the session origin and depth. *)

val gc_args : gc_delta -> (string * Jsonx.t) list
(** The delta as Chrome-trace arg fields ([minor_words],
    [major_words], [promoted_words], [minor_collections],
    [major_collections]). *)

val to_json : unit -> Jsonx.t
(** [{"traceEvents": [...], "displayTimeUnit": "ns"}] — valid Chrome
    trace; spans become "X" events on pid 1 / tid 1 with the GC delta
    merged into [args]. *)

val write_file : string -> unit
