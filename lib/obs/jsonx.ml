type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                           *)
(* ------------------------------------------------------------------ *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_float buf f =
  if Float.is_nan f || Float.abs f = Float.infinity then
    Buffer.add_string buf "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.1f" f)
  else begin
    (* shortest representation that round-trips *)
    let s = Printf.sprintf "%.12g" f in
    let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
    Buffer.add_string buf s;
    (* %.17g prints huge integer-valued doubles (2^53) without a point
       or exponent; keep them parsing back as floats, not ints *)
    if not (String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s) then
      Buffer.add_string buf ".0"
  end

let rec add_compact buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> add_float buf f
  | Str s -> add_escaped buf s
  | List l ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        add_compact buf v)
      l;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        add_escaped buf k;
        Buffer.add_char buf ':';
        add_compact buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  add_compact buf v;
  Buffer.contents buf

let rec add_pretty buf indent = function
  | (Null | Bool _ | Int _ | Float _ | Str _) as v -> add_compact buf v
  | List [] -> Buffer.add_string buf "[]"
  | Obj [] -> Buffer.add_string buf "{}"
  | List l ->
    let pad = String.make (indent + 2) ' ' in
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf pad;
        add_pretty buf (indent + 2) v)
      l;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (String.make indent ' ');
    Buffer.add_char buf ']'
  | Obj kvs ->
    let pad = String.make (indent + 2) ' ' in
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf pad;
        add_escaped buf k;
        Buffer.add_string buf ": ";
        add_pretty buf (indent + 2) v)
      kvs;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (String.make indent ' ');
    Buffer.add_char buf '}'

let to_string_pretty v =
  let buf = Buffer.create 1024 in
  add_pretty buf 0 v;
  Buffer.contents buf

let write_file path v =
  let oc = open_out path in
  output_string oc (to_string_pretty v);
  output_char oc '\n';
  close_out oc

(* ------------------------------------------------------------------ *)
(* Parsing                                                            *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
    c.pos <- c.pos + 1;
    skip_ws c
  | _ -> ()

let expect_char c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | Some x -> fail "expected %C at offset %d, found %C" ch c.pos x
  | None -> fail "expected %C, found end of input" ch

let literal c word v =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    v
  end
  else fail "malformed literal at offset %d" c.pos

let parse_string_body c =
  (* opening quote consumed *)
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail "unterminated string"
    | Some '"' -> c.pos <- c.pos + 1
    | Some '\\' -> (
      c.pos <- c.pos + 1;
      match peek c with
      | None -> fail "unterminated escape"
      | Some e ->
        c.pos <- c.pos + 1;
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          if c.pos + 4 > String.length c.src then fail "truncated \\u escape";
          let hex = String.sub c.src c.pos 4 in
          c.pos <- c.pos + 4;
          let code =
            try int_of_string ("0x" ^ hex)
            with _ -> fail "malformed \\u escape %S" hex
          in
          (* UTF-8 encode the code point (no surrogate-pair handling:
             the printer above never emits one) *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
        | e -> fail "unknown escape \\%C" e);
        go ())
    | Some ch ->
      c.pos <- c.pos + 1;
      Buffer.add_char buf ch;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let accept ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek c with Some ch -> accept ch | None -> false) do
    c.pos <- c.pos + 1
  done;
  let s = String.sub c.src start (c.pos - start) in
  match int_of_string_opt s with
  | Some i -> Int i
  | None -> (
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail "malformed number %S" s)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail "unexpected end of input"
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' ->
    c.pos <- c.pos + 1;
    Str (parse_string_body c)
  | Some '[' ->
    c.pos <- c.pos + 1;
    skip_ws c;
    if peek c = Some ']' then begin
      c.pos <- c.pos + 1;
      List []
    end
    else
      let rec items acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          c.pos <- c.pos + 1;
          items (v :: acc)
        | Some ']' ->
          c.pos <- c.pos + 1;
          List (List.rev (v :: acc))
        | _ -> fail "expected ',' or ']' at offset %d" c.pos
      in
      items []
  | Some '{' ->
    c.pos <- c.pos + 1;
    skip_ws c;
    if peek c = Some '}' then begin
      c.pos <- c.pos + 1;
      Obj []
    end
    else
      let pair () =
        skip_ws c;
        expect_char c '"';
        let k = parse_string_body c in
        skip_ws c;
        expect_char c ':';
        let v = parse_value c in
        (k, v)
      in
      let rec items acc =
        let kv = pair () in
        skip_ws c;
        match peek c with
        | Some ',' ->
          c.pos <- c.pos + 1;
          items (kv :: acc)
        | Some '}' ->
          c.pos <- c.pos + 1;
          Obj (List.rev (kv :: acc))
        | _ -> fail "expected ',' or '}' at offset %d" c.pos
      in
      items []
  | Some ('0' .. '9' | '-') -> parse_number c
  | Some ch -> fail "unexpected character %C at offset %d" ch c.pos

let of_string src =
  let c = { src; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length src then fail "trailing content at offset %d" c.pos;
  v

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None
