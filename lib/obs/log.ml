type level = Error | Warn | Info | Debug

let severity = function Error -> 0 | Warn -> 1 | Info -> 2 | Debug -> 3

let level_to_string = function
  | Error -> "error"
  | Warn -> "warn"
  | Info -> "info"
  | Debug -> "debug"

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "error" | "err" -> Some Error
  | "warn" | "warning" -> Some Warn
  | "info" -> Some Info
  | "debug" -> Some Debug
  | _ -> None

type field = string * Jsonx.t

let str k v = (k, Jsonx.Str v)
let int k v = (k, Jsonx.Int v)
let float k v = (k, Jsonx.Float v)
let bool k v = (k, Jsonx.Bool v)

(* ------------------------------------------------------------------ *)
(* Sources                                                            *)
(* ------------------------------------------------------------------ *)

let global : level option ref = ref (Some Warn)

module Src = struct
  type t = { src_name : string; src_doc : string; mutable src_level : level option }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 16

  (* per-source levels requested (via TKA_LOG / set_from_string) before
     the source exists *)
  let pending : (string, level) Hashtbl.t = Hashtbl.create 4

  let create ?(doc = "") name =
    match Hashtbl.find_opt registry name with
    | Some s -> s
    | None ->
      let s =
        { src_name = name; src_doc = doc; src_level = Hashtbl.find_opt pending name }
      in
      Hashtbl.replace registry name s;
      s

  let name s = s.src_name
  let doc s = s.src_doc
  let set_level s l = s.src_level <- l
  let level s = s.src_level

  let list () =
    Hashtbl.fold (fun _ s acc -> s :: acc) registry []
    |> List.sort (fun a b -> String.compare a.src_name b.src_name)

  let request_level name l =
    Hashtbl.replace pending name l;
    match Hashtbl.find_opt registry name with
    | Some s -> s.src_level <- Some l
    | None -> ()
end

let set_level l = global := l
let global_level () = !global

let enabled (s : Src.t) lvl =
  let limit = match s.Src.src_level with Some _ as l -> l | None -> !global in
  match limit with None -> false | Some l -> severity lvl <= severity l

let set_from_string spec =
  let directives =
    String.split_on_char ',' spec |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let rec go = function
    | [] -> Ok ()
    | d :: rest -> (
      match String.index_opt d '=' with
      | None -> (
        match level_of_string d with
        | Some l ->
          set_level (Some l);
          go rest
        | None ->
          if String.lowercase_ascii d = "quiet" || String.lowercase_ascii d = "off"
          then begin
            set_level None;
            go rest
          end
          else Error (Printf.sprintf "unknown log level %S" d))
      | Some i -> (
        let src = String.trim (String.sub d 0 i) in
        let lvl = String.sub d (i + 1) (String.length d - i - 1) in
        match level_of_string lvl with
        | Some l ->
          Src.request_level src l;
          go rest
        | None -> Error (Printf.sprintf "unknown log level %S for source %S" lvl src)))
  in
  go directives

let set_from_env () =
  match Sys.getenv_opt "TKA_LOG" with
  | None -> ()
  | Some spec -> (
    match set_from_string spec with
    | Ok () -> ()
    | Error m -> Printf.eprintf "tka: ignoring malformed TKA_LOG: %s\n%!" m)

(* ------------------------------------------------------------------ *)
(* Events and reporters                                               *)
(* ------------------------------------------------------------------ *)

type event = {
  ev_src : string;
  ev_level : level;
  ev_msg : string;
  ev_fields : field list;
  ev_time_ns : int64;
}

type reporter = event -> unit

let nop_reporter (_ : event) = ()

let text_reporter ?(oc = stderr) () ev =
  let fields =
    match ev.ev_fields with
    | [] -> ""
    | fs ->
      " ("
      ^ String.concat " "
          (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k (Jsonx.to_string v)) fs)
      ^ ")"
  in
  Printf.fprintf oc "tka: [%s] %s: %s%s\n%!"
    (String.uppercase_ascii (level_to_string ev.ev_level))
    ev.ev_src ev.ev_msg fields

let ndjson_reporter oc ev =
  let obj =
    Jsonx.Obj
      ([
         ("ts_ns", Jsonx.Int (Int64.to_int ev.ev_time_ns));
         ("level", Jsonx.Str (level_to_string ev.ev_level));
         ("src", Jsonx.Str ev.ev_src);
         ("msg", Jsonx.Str ev.ev_msg);
       ]
      @ ev.ev_fields)
  in
  output_string oc (Jsonx.to_string obj);
  output_char oc '\n';
  flush oc

let buffer_reporter () =
  let events = ref [] in
  let report ev = events := ev :: !events in
  (report, fun () -> List.rev !events)

let multi_reporter rs ev = List.iter (fun r -> r ev) rs

let reporter : reporter ref = ref (text_reporter ())
let set_reporter r = reporter := r

let errors = ref 0
let err_count () = !errors

(* ------------------------------------------------------------------ *)
(* Logging front end                                                  *)
(* ------------------------------------------------------------------ *)

type 'a msgf =
  (?fields:field list -> ('a, Format.formatter, unit, unit) format4 -> 'a) -> unit

let report src lvl fields msg =
  if lvl = Error then incr errors;
  !reporter
    {
      ev_src = Src.name src;
      ev_level = lvl;
      ev_msg = msg;
      ev_fields = fields;
      ev_time_ns = Monotonic_clock.now ();
    }

let msg src lvl (msgf : 'a msgf) =
  if enabled src lvl then
    msgf (fun ?(fields = []) fmt ->
        Format.kasprintf (fun m -> report src lvl fields m) fmt)

let err src m = msg src Error m
let warn src m = msg src Warn m
let info src m = msg src Info m
let debug src m = msg src Debug m
