(* The global switch is a plain bool ref read on every update: the
   disabled path is one load + branch, no allocation. *)
let enabled = ref false

let set_enabled b = enabled := b
let is_enabled () = !enabled

let with_enabled b f =
  let prev = !enabled in
  enabled := b;
  Fun.protect ~finally:(fun () -> enabled := prev) f

let with_disabled f = with_enabled false f

module Counter0 = struct
  type t = { c_name : string; mutable c_value : int }

  let incr c = if !enabled then c.c_value <- c.c_value + 1
  let add c n = if !enabled then c.c_value <- c.c_value + n
  let value c = c.c_value
  let name c = c.c_name
end

module Gauge0 = struct
  (* the value lives in a flat float array so [set] never boxes *)
  type t = { g_name : string; g_value : float array }

  let set g v = if !enabled then g.g_value.(0) <- v
  let value g = g.g_value.(0)
  let name g = g.g_name
end

module Histogram0 = struct
  type t = {
    h_name : string;
    h_buckets : float array;  (* upper bounds, strictly increasing *)
    h_counts : int array;  (* length = buckets + 1 (overflow) *)
    h_sum : float array;  (* single cell, flat so observe never boxes *)
    mutable h_count : int;
  }

  let default_buckets =
    [| 1e-6; 1e-5; 1e-4; 1e-3; 0.01; 0.03; 0.1; 0.3; 1.0; 3.0; 10.0 |]

  let observe h x =
    if !enabled then begin
      let n = Array.length h.h_buckets in
      let i = ref 0 in
      while !i < n && x > h.h_buckets.(!i) do
        incr i
      done;
      h.h_counts.(!i) <- h.h_counts.(!i) + 1;
      h.h_sum.(0) <- h.h_sum.(0) +. x;
      h.h_count <- h.h_count + 1
    end

  let count h = h.h_count
  let sum h = h.h_sum.(0)
  let buckets h = Array.copy h.h_buckets
  let counts h = Array.copy h.h_counts
  let name h = h.h_name
end

type metric =
  | M_counter of Counter0.t
  | M_gauge of Gauge0.t
  | M_histogram of Histogram0.t

type registry = { items : (string, metric) Hashtbl.t }

let create_registry () = { items = Hashtbl.create 32 }
let default_registry = create_registry ()

let register reg name ~make ~cast =
  match Hashtbl.find_opt reg.items name with
  | Some m -> (
    match cast m with
    | Some v -> v
    | None ->
      invalid_arg
        (Printf.sprintf "Tka_obs.Metrics: %S already registered with another kind"
           name))
  | None ->
    let v, m = make () in
    Hashtbl.replace reg.items name m;
    v

let counter_make ?(registry = default_registry) name =
  register registry name
    ~make:(fun () ->
      let c = { Counter0.c_name = name; c_value = 0 } in
      (c, M_counter c))
    ~cast:(function M_counter c -> Some c | _ -> None)

let gauge_make ?(registry = default_registry) name =
  register registry name
    ~make:(fun () ->
      let g = { Gauge0.g_name = name; g_value = [| 0. |] } in
      (g, M_gauge g))
    ~cast:(function M_gauge g -> Some g | _ -> None)

let histogram_make ?(registry = default_registry)
    ?(buckets = Histogram0.default_buckets) name =
  let ok = ref (Array.length buckets > 0) in
  for i = 0 to Array.length buckets - 2 do
    if buckets.(i) >= buckets.(i + 1) then ok := false
  done;
  if not !ok then
    invalid_arg "Tka_obs.Metrics.Histogram.make: buckets must be strictly increasing";
  register registry name
    ~make:(fun () ->
      let h =
        {
          Histogram0.h_name = name;
          h_buckets = Array.copy buckets;
          h_counts = Array.make (Array.length buckets + 1) 0;
          h_sum = [| 0. |];
          h_count = 0;
        }
      in
      (h, M_histogram h))
    ~cast:(function M_histogram h -> Some h | _ -> None)

module Counter = struct
  include Counter0

  let make = counter_make
end

module Gauge = struct
  include Gauge0

  let make = gauge_make
end

module Histogram = struct
  include Histogram0

  let make = histogram_make
end

let find ?(registry = default_registry) name cast =
  Option.bind (Hashtbl.find_opt registry.items name) cast

let find_counter ?registry name =
  find ?registry name (function M_counter c -> Some c | _ -> None)

let find_gauge ?registry name =
  find ?registry name (function M_gauge g -> Some g | _ -> None)

let find_histogram ?registry name =
  find ?registry name (function M_histogram h -> Some h | _ -> None)

let reset ?(registry = default_registry) () =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | M_counter c -> c.Counter0.c_value <- 0
      | M_gauge g -> g.Gauge0.g_value.(0) <- 0.
      | M_histogram h ->
        Array.fill h.Histogram0.h_counts 0 (Array.length h.Histogram0.h_counts) 0;
        h.Histogram0.h_sum.(0) <- 0.;
        h.Histogram0.h_count <- 0)
    registry.items

let to_json ?(registry = default_registry) () =
  let entry _ m acc =
    let kv =
      match m with
      | M_counter c -> (c.Counter0.c_name, Jsonx.Int c.Counter0.c_value)
      | M_gauge g -> (g.Gauge0.g_name, Jsonx.Float g.Gauge0.g_value.(0))
      | M_histogram h ->
        ( h.Histogram0.h_name,
          Jsonx.Obj
            [
              ( "buckets",
                Jsonx.List
                  (Array.to_list (Array.map (fun b -> Jsonx.Float b) h.h_buckets))
              );
              ( "counts",
                Jsonx.List
                  (Array.to_list (Array.map (fun c -> Jsonx.Int c) h.h_counts)) );
              ("sum", Jsonx.Float h.Histogram0.h_sum.(0));
              ("count", Jsonx.Int h.Histogram0.h_count);
            ] )
    in
    kv :: acc
  in
  Jsonx.Obj
    (Hashtbl.fold entry registry.items []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b))

let write_file ?registry path = Jsonx.write_file path (to_json ?registry ())
