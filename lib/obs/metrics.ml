(* The global switch is an atomic bool read on every update: the
   disabled path is one load + branch, no allocation. Instruments are
   Atomic-based so concurrent updates from pool domains (the parallel
   engine sweep) never race or under-count; the enabled fast path costs
   one fetch-and-add (counters) or a CAS loop (float accumulators). *)
let enabled = Atomic.make false

let set_enabled b = Atomic.set enabled b
let is_enabled () = Atomic.get enabled

let with_enabled b f =
  let prev = Atomic.get enabled in
  Atomic.set enabled b;
  Fun.protect ~finally:(fun () -> Atomic.set enabled prev) f

let with_disabled f = with_enabled false f

(* Lock-free float accumulator: add via CAS retry. Allocation (the boxed
   float) only happens when metrics are enabled. *)
let rec atomic_add_float cell x =
  let old = Atomic.get cell in
  if not (Atomic.compare_and_set cell old (old +. x)) then atomic_add_float cell x

module Counter0 = struct
  type t = { c_name : string; c_value : int Atomic.t }

  let incr c = if Atomic.get enabled then ignore (Atomic.fetch_and_add c.c_value 1)
  let add c n = if Atomic.get enabled then ignore (Atomic.fetch_and_add c.c_value n)
  let value c = Atomic.get c.c_value
  let name c = c.c_name
end

module Gauge0 = struct
  type t = { g_name : string; g_value : float Atomic.t }

  let set g v = if Atomic.get enabled then Atomic.set g.g_value v
  let value g = Atomic.get g.g_value
  let name g = g.g_name
end

module Histogram0 = struct
  type t = {
    h_name : string;
    h_buckets : float array;  (* upper bounds, strictly increasing *)
    h_counts : int Atomic.t array;  (* length = buckets + 1 (overflow) *)
    h_sum : float Atomic.t;
    h_count : int Atomic.t;
  }

  let default_buckets =
    [| 1e-6; 1e-5; 1e-4; 1e-3; 0.01; 0.03; 0.1; 0.3; 1.0; 3.0; 10.0 |]

  let observe h x =
    if Atomic.get enabled then begin
      let n = Array.length h.h_buckets in
      let i = ref 0 in
      while !i < n && x > h.h_buckets.(!i) do
        incr i
      done;
      ignore (Atomic.fetch_and_add h.h_counts.(!i) 1);
      atomic_add_float h.h_sum x;
      ignore (Atomic.fetch_and_add h.h_count 1)
    end

  let count h = Atomic.get h.h_count
  let sum h = Atomic.get h.h_sum
  let buckets h = Array.copy h.h_buckets
  let counts h = Array.map Atomic.get h.h_counts
  let name h = h.h_name

  (* Prometheus-style quantile estimate: walk the cumulative bucket
     counts to the one containing rank q*count, then interpolate
     linearly inside it (the first bucket's lower bound is 0, the
     overflow bucket clamps to the last bound). *)
  let percentile h q =
    if not (q >= 0. && q <= 1.) then
      invalid_arg "Tka_obs.Metrics.Histogram.percentile: q must be in [0,1]";
    let total = Atomic.get h.h_count in
    if total = 0 then Float.nan
    else begin
      let rank = q *. float_of_int total in
      let nb = Array.length h.h_buckets in
      let rec go i cum =
        if i >= nb then h.h_buckets.(nb - 1)
        else
          let c = Atomic.get h.h_counts.(i) in
          let cum' = cum +. float_of_int c in
          if cum' >= rank && c > 0 then
            let lo = if i = 0 then 0. else h.h_buckets.(i - 1) in
            let hi = h.h_buckets.(i) in
            lo +. ((hi -. lo) *. ((rank -. cum) /. float_of_int c))
          else go (i + 1) cum'
      in
      go 0 0.
    end
end

type metric =
  | M_counter of Counter0.t
  | M_gauge of Gauge0.t
  | M_histogram of Histogram0.t

type registry = { items : (string, metric) Hashtbl.t; reg_mutex : Mutex.t }

let create_registry () = { items = Hashtbl.create 32; reg_mutex = Mutex.create () }
let default_registry = create_registry ()

(* Registration is rare (module toplevel, usually the main domain) but
   guarded anyway so pool workers registering lazily cannot corrupt the
   table. *)
let register reg name ~make ~cast =
  Mutex.lock reg.reg_mutex;
  let v =
    match Hashtbl.find_opt reg.items name with
    | Some m -> (
      match cast m with
      | Some v -> Ok v
      | None ->
        Error
          (Printf.sprintf "Tka_obs.Metrics: %S already registered with another kind"
             name))
    | None ->
      let v, m = make () in
      Hashtbl.replace reg.items name m;
      Ok v
  in
  Mutex.unlock reg.reg_mutex;
  match v with Ok v -> v | Error m -> invalid_arg m

let counter_make ?(registry = default_registry) name =
  register registry name
    ~make:(fun () ->
      let c = { Counter0.c_name = name; c_value = Atomic.make 0 } in
      (c, M_counter c))
    ~cast:(function M_counter c -> Some c | _ -> None)

let gauge_make ?(registry = default_registry) name =
  register registry name
    ~make:(fun () ->
      let g = { Gauge0.g_name = name; g_value = Atomic.make 0. } in
      (g, M_gauge g))
    ~cast:(function M_gauge g -> Some g | _ -> None)

let histogram_make ?(registry = default_registry)
    ?(buckets = Histogram0.default_buckets) name =
  let ok = ref (Array.length buckets > 0) in
  for i = 0 to Array.length buckets - 2 do
    if buckets.(i) >= buckets.(i + 1) then ok := false
  done;
  if not !ok then
    invalid_arg "Tka_obs.Metrics.Histogram.make: buckets must be strictly increasing";
  register registry name
    ~make:(fun () ->
      let h =
        {
          Histogram0.h_name = name;
          h_buckets = Array.copy buckets;
          h_counts = Array.init (Array.length buckets + 1) (fun _ -> Atomic.make 0);
          h_sum = Atomic.make 0.;
          h_count = Atomic.make 0;
        }
      in
      (h, M_histogram h))
    ~cast:(function M_histogram h -> Some h | _ -> None)

module Counter = struct
  include Counter0

  let make = counter_make
end

module Gauge = struct
  include Gauge0

  let make = gauge_make
end

module Histogram = struct
  include Histogram0

  let make = histogram_make
end

let find ?(registry = default_registry) name cast =
  Option.bind (Hashtbl.find_opt registry.items name) cast

let find_counter ?registry name =
  find ?registry name (function M_counter c -> Some c | _ -> None)

let find_gauge ?registry name =
  find ?registry name (function M_gauge g -> Some g | _ -> None)

let find_histogram ?registry name =
  find ?registry name (function M_histogram h -> Some h | _ -> None)

let reset ?(registry = default_registry) () =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | M_counter c -> Atomic.set c.Counter0.c_value 0
      | M_gauge g -> Atomic.set g.Gauge0.g_value 0.
      | M_histogram h ->
        Array.iter (fun c -> Atomic.set c 0) h.Histogram0.h_counts;
        Atomic.set h.Histogram0.h_sum 0.;
        Atomic.set h.Histogram0.h_count 0)
    registry.items

let to_json ?(registry = default_registry) () =
  (* nan (empty histogram) would serialise as null anyway; make the
     in-memory document say so explicitly *)
  let pct h q =
    let v = Histogram0.percentile h q in
    if Float.is_nan v then Jsonx.Null else Jsonx.Float v
  in
  let entry _ m acc =
    let kv =
      match m with
      | M_counter c -> (c.Counter0.c_name, Jsonx.Int (Counter0.value c))
      | M_gauge g -> (g.Gauge0.g_name, Jsonx.Float (Gauge0.value g))
      | M_histogram h ->
        ( h.Histogram0.h_name,
          Jsonx.Obj
            [
              ( "buckets",
                Jsonx.List
                  (Array.to_list (Array.map (fun b -> Jsonx.Float b) h.h_buckets))
              );
              ( "counts",
                Jsonx.List
                  (Array.to_list
                     (Array.map (fun c -> Jsonx.Int (Atomic.get c)) h.h_counts))
              );
              ("sum", Jsonx.Float (Histogram0.sum h));
              ("count", Jsonx.Int (Histogram0.count h));
              ("p50", pct h 0.50);
              ("p90", pct h 0.90);
              ("p99", pct h 0.99);
            ] )
    in
    kv :: acc
  in
  Jsonx.Obj
    (Hashtbl.fold entry registry.items []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b))

let write_file ?registry path = Jsonx.write_file path (to_json ?registry ())

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition                                         *)
(* ------------------------------------------------------------------ *)

let prometheus_name s =
  if s = "" then "_"
  else begin
    let ok_head c =
      (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'
    in
    let ok c = ok_head c || (c >= '0' && c <= '9') in
    let b = Buffer.create (String.length s + 1) in
    if not (ok_head s.[0]) then Buffer.add_char b '_';
    String.iter (fun c -> Buffer.add_char b (if ok c then c else '_')) s;
    Buffer.contents b
  end

let prometheus_escape_label s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Sample values: integral floats print without a fraction part,
   non-finite ones use the exposition spellings. *)
let prom_float f =
  if Float.is_nan f then "NaN"
  else if f = Float.infinity then "+Inf"
  else if f = Float.neg_infinity then "-Inf"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let render_prometheus ?(registry = default_registry) () =
  let b = Buffer.create 1024 in
  let items =
    Hashtbl.fold (fun _ m acc -> m :: acc) registry.items []
    |> List.map (fun m ->
           let name =
             match m with
             | M_counter c -> c.Counter0.c_name
             | M_gauge g -> g.Gauge0.g_name
             | M_histogram h -> h.Histogram0.h_name
           in
           (prometheus_name name, m))
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter
    (fun (name, m) ->
      match m with
      | M_counter c ->
        Printf.bprintf b "# TYPE %s counter\n%s %d\n" name name (Counter0.value c)
      | M_gauge g ->
        Printf.bprintf b "# TYPE %s gauge\n%s %s\n" name name
          (prom_float (Gauge0.value g))
      | M_histogram h ->
        Printf.bprintf b "# TYPE %s histogram\n" name;
        let counts = Histogram0.counts h in
        let cum = ref 0 in
        Array.iteri
          (fun i bound ->
            cum := !cum + counts.(i);
            Printf.bprintf b "%s_bucket{le=\"%s\"} %d\n" name
              (prometheus_escape_label (prom_float bound))
              !cum)
          h.Histogram0.h_buckets;
        Printf.bprintf b "%s_bucket{le=\"+Inf\"} %d\n" name (Histogram0.count h);
        Printf.bprintf b "%s_sum %s\n" name (prom_float (Histogram0.sum h));
        Printf.bprintf b "%s_count %d\n" name (Histogram0.count h))
    items;
  Buffer.contents b
