(** Append-only benchmark history ([BENCH_history.ndjson]).

    [BENCH_topk.json] is overwritten every run; the history file keeps
    one compact schema-versioned JSON record per line per run — git
    rev, timestamp (pinned by [SOURCE_DATE_EPOCH] when set), jobs,
    per-section wall times, peak RSS and GC allocation totals — the
    raw material for [tka bench-diff] and trend plots. *)

val schema_version : int

type record = {
  bh_schema : int;
  bh_git_rev : string;
  bh_date : string;  (** ISO-8601 UTC *)
  bh_date_unix : float;
  bh_jobs : int;
  bh_quick : bool;
  bh_circuits : string list;
  bh_sections : (string * float) list;  (** section name -> wall seconds *)
  bh_total_s : float;
  bh_peak_rss_bytes : int option;  (** [None] off-Linux *)
  bh_minor_words : float;  (** process-lifetime GC totals at record time *)
  bh_major_words : float;
}

val git_rev : unit -> string
(** [TKA_GIT_REV] env, then [GITHUB_SHA], then [.git/HEAD], then
    ["unknown"]. *)

val make :
  jobs:int ->
  quick:bool ->
  circuits:string list ->
  sections:(string * float) list ->
  total_s:float ->
  unit ->
  record
(** Gathers git rev, date, peak RSS and GC totals itself. *)

val to_json : record -> Tka_obs.Jsonx.t
val append : string -> record -> unit
(** Append one compact line, creating the file when missing. *)

val load : string -> (Tka_obs.Jsonx.t list, string) result
(** All records, oldest first. *)
