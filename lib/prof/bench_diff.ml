(* Perf-regression comparison of two benchmark documents
   (BENCH_topk.json shapes, or BENCH_history.ndjson records — for
   NDJSON the last record is taken). Only metrics whose key names mark
   them as performance figures are compared: everything else in the
   files (delays, set contents, prune counters) is correctness data
   owned by Tka_verify, not noise-thresholded perf data. *)

module J = Tka_obs.Jsonx

type direction = Lower_better | Higher_better

type metric = {
  m_path : string;
  m_base : float;
  m_new : float;
  m_direction : direction;
  m_ratio : float;  (** new/base, 1.0 when base = 0 and new = 0 *)
}

type result = {
  bd_threshold : float;
  bd_checked : metric list;
  bd_regressions : metric list;
  bd_improvements : metric list;
  bd_skipped_small : int;  (** below the noise floor in both files *)
  bd_only_base : string list;
  bd_only_new : string list;
}

(* ------------------------------------------------------------------ *)
(* Flattening and classification                                      *)
(* ------------------------------------------------------------------ *)

let rec flatten prefix v acc =
  match v with
  | J.Obj kvs ->
    List.fold_left
      (fun acc (k, v) ->
        let p = if prefix = "" then k else prefix ^ "." ^ k in
        flatten p v acc)
      acc kvs
  | J.List vs ->
    List.fold_left
      (fun (acc, i) v ->
        (flatten (Printf.sprintf "%s[%d]" prefix i) v acc, i + 1))
      (acc, 0) vs
    |> fst
  | J.Int i -> (prefix, float_of_int i) :: acc
  | J.Float f -> (prefix, f) :: acc
  | J.Null | J.Bool _ | J.Str _ -> acc

let flatten_doc v = List.rev (flatten "" v [])

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let ends_with ~suffix s =
  let n = String.length suffix and m = String.length s in
  m >= n && String.sub s (m - n) n = suffix

(* last path segment decides; "table1.rows[2].brute_runtime_s" ->
   "brute_runtime_s" *)
let leaf path =
  match String.rindex_opt path '.' with
  | Some i -> String.sub path (i + 1) (String.length path - i - 1)
  | None -> path

let classify path =
  let l = leaf path in
  if contains ~sub:"speedup" l then Some Higher_better
  else if
    ends_with ~suffix:"_s" l
    || contains ~sub:"runtime" l
    || ends_with ~suffix:"_seconds" l
    || ends_with ~suffix:"_bytes" l
    || ends_with ~suffix:"_words" l
    || ends_with ~suffix:"_kb" l
    || ends_with ~suffix:"_mb" l
    || contains ~sub:"rss" l
  then Some Lower_better
  else None

(* noise floor below which a metric is not worth thresholding: tiny
   timings jitter by integer factors run to run *)
let default_min_seconds = 0.05
let min_words = 1e6 (* ~8 MB of minor allocation *)

(* ~8 MB expressed in the metric's own unit; the suffix wins over the
   "rss" substring so peak_rss_mb is thresholded in megabytes, not
   words *)
let mem_floor l =
  if ends_with ~suffix:"_mb" l then Some 8.
  else if ends_with ~suffix:"_kb" l then Some 8192.
  else if ends_with ~suffix:"_bytes" l then Some 8e6
  else if ends_with ~suffix:"_words" l || contains ~sub:"rss" l then
    Some min_words
  else None

let negligible path base_v new_v ~min_seconds =
  match mem_floor (leaf path) with
  | Some floor -> Float.max base_v new_v < floor
  | None -> Float.max base_v new_v < min_seconds

(* ------------------------------------------------------------------ *)
(* Comparison                                                         *)
(* ------------------------------------------------------------------ *)

let compare_docs ?(threshold = 0.20) ?(min_seconds = default_min_seconds) base
    next =
  let fb = flatten_doc base and fn = flatten_doc next in
  let base_tbl = Hashtbl.create 64 in
  List.iter (fun (p, v) -> Hashtbl.replace base_tbl p v) fb;
  let next_tbl = Hashtbl.create 64 in
  List.iter (fun (p, v) -> Hashtbl.replace next_tbl p v) fn;
  let perf_paths l =
    List.filter_map (fun (p, _) -> Option.map (fun d -> (p, d)) (classify p)) l
  in
  let only_base =
    List.filter_map
      (fun (p, _) -> if Hashtbl.mem next_tbl p then None else Some p)
      (perf_paths fb)
  in
  let only_new =
    List.filter_map
      (fun (p, _) -> if Hashtbl.mem base_tbl p then None else Some p)
      (perf_paths fn)
  in
  let skipped = ref 0 in
  let checked =
    List.filter_map
      (fun (path, dir) ->
        match Hashtbl.find_opt next_tbl path with
        | None -> None
        | Some nv ->
          let bv = Hashtbl.find base_tbl path in
          if negligible path bv nv ~min_seconds then begin
            incr skipped;
            None
          end
          else
            let ratio =
              if bv = 0. then if nv = 0. then 1. else Float.infinity
              else nv /. bv
            in
            Some
              { m_path = path; m_base = bv; m_new = nv; m_direction = dir;
                m_ratio = ratio })
      (perf_paths fb)
  in
  let regressed m =
    match m.m_direction with
    | Lower_better -> m.m_ratio > 1. +. threshold
    | Higher_better -> m.m_ratio < 1. -. threshold
  in
  let improved m =
    match m.m_direction with
    | Lower_better -> m.m_ratio < 1. -. threshold
    | Higher_better -> m.m_ratio > 1. +. threshold
  in
  {
    bd_threshold = threshold;
    bd_checked = checked;
    bd_regressions = List.filter regressed checked;
    bd_improvements = List.filter improved checked;
    bd_skipped_small = !skipped;
    bd_only_base = only_base;
    bd_only_new = only_new;
  }

let has_regressions r = r.bd_regressions <> []

(* ------------------------------------------------------------------ *)
(* Loading                                                            *)
(* ------------------------------------------------------------------ *)

(* A bench file is either one JSON document (BENCH_topk.json) or NDJSON
   history (one record per line) — for history, compare the last
   record. *)
let load_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  match J.of_string s with
  | v -> v
  | exception J.Parse_error _ ->
    let lines =
      String.split_on_char '\n' s
      |> List.filter (fun l -> String.trim l <> "")
    in
    (match List.rev lines with
    | last :: _ -> J.of_string last
    | [] -> failwith (Printf.sprintf "%s: empty bench file" path))

(* ------------------------------------------------------------------ *)
(* Reporting                                                          *)
(* ------------------------------------------------------------------ *)

module Tt = Tka_util.Text_table

let render r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "%d perf metric(s) compared at ±%.0f%% (%d below the noise floor, \
        %d only in base, %d only in new)\n"
       (List.length r.bd_checked)
       (100. *. r.bd_threshold)
       r.bd_skipped_small
       (List.length r.bd_only_base)
       (List.length r.bd_only_new));
  let table title metrics =
    if metrics <> [] then begin
      Buffer.add_string buf (Printf.sprintf "\n%s:\n" title);
      let t =
        Tt.create
          ~headers:
            [
              ("metric", Tt.Left); ("base", Tt.Right); ("new", Tt.Right);
              ("ratio", Tt.Right); ("better", Tt.Left);
            ]
      in
      List.iter
        (fun m ->
          Tt.add_row t
            [
              m.m_path;
              Tt.cell_f ~decimals:4 m.m_base;
              Tt.cell_f ~decimals:4 m.m_new;
              Tt.cell_f ~decimals:2 m.m_ratio;
              (match m.m_direction with
              | Lower_better -> "lower"
              | Higher_better -> "higher");
            ])
        metrics;
      Buffer.add_string buf (Tt.render t)
    end
  in
  table "REGRESSIONS" r.bd_regressions;
  table "improvements" r.bd_improvements;
  if r.bd_regressions = [] then
    Buffer.add_string buf "no regressions detected\n";
  Buffer.contents buf

let metric_json m =
  J.Obj
    [
      ("metric", J.Str m.m_path);
      ("base", J.Float m.m_base);
      ("new", J.Float m.m_new);
      ("ratio", J.Float m.m_ratio);
      ( "better",
        J.Str
          (match m.m_direction with
          | Lower_better -> "lower"
          | Higher_better -> "higher") );
    ]

let to_json r =
  J.Obj
    [
      ("threshold", J.Float r.bd_threshold);
      ("checked", J.Int (List.length r.bd_checked));
      ("skipped_small", J.Int r.bd_skipped_small);
      ("regressions", J.List (List.map metric_json r.bd_regressions));
      ("improvements", J.List (List.map metric_json r.bd_improvements));
      ("only_base", J.List (List.map (fun p -> J.Str p) r.bd_only_base));
      ("only_new", J.List (List.map (fun p -> J.Str p) r.bd_only_new));
    ]
