(* Append-only bench observatory: every bench run adds one
   schema-versioned NDJSON record to BENCH_history.ndjson, so perf
   history survives the overwrite of BENCH_topk.json and bench-diff /
   plotting tools can track trends across commits. *)

module J = Tka_obs.Jsonx

let schema_version = 1

type record = {
  bh_schema : int;
  bh_git_rev : string;
  bh_date : string;  (** ISO-8601 UTC *)
  bh_date_unix : float;
  bh_jobs : int;
  bh_quick : bool;
  bh_circuits : string list;
  bh_sections : (string * float) list;  (** section name -> wall seconds *)
  bh_total_s : float;
  bh_peak_rss_bytes : int option;
  bh_minor_words : float;
  bh_major_words : float;
}

(* ------------------------------------------------------------------ *)
(* Environment probes                                                 *)
(* ------------------------------------------------------------------ *)

(* Reproducible-build friendly: an explicit env override wins, then the
   CI-provided sha, then a direct read of .git/HEAD (works without a
   git binary), then "unknown". *)
let git_rev () =
  let env k =
    match Sys.getenv_opt k with
    | Some v when String.trim v <> "" -> Some (String.trim v)
    | _ -> None
  in
  match (env "TKA_GIT_REV", env "GITHUB_SHA") with
  | Some v, _ | None, Some v -> v
  | None, None -> (
    let read path =
      match open_in path with
      | exception Sys_error _ -> None
      | ic ->
        let line = try Some (String.trim (input_line ic)) with End_of_file -> None in
        close_in ic;
        line
    in
    match read ".git/HEAD" with
    | Some head ->
      let prefix = "ref: " in
      if String.length head > String.length prefix
         && String.sub head 0 (String.length prefix) = prefix
      then
        let r = String.sub head 5 (String.length head - 5) in
        Option.value ~default:"unknown" (read (Filename.concat ".git" r))
      else head
    | None -> "unknown")

let iso8601 t =
  let tm = Unix.gmtime t in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

(* Date from the environment when pinned (SOURCE_DATE_EPOCH, the
   reproducible-builds convention) so two runs of the same rev can emit
   identical records; wall clock otherwise. *)
let now () =
  match Sys.getenv_opt "SOURCE_DATE_EPOCH" with
  | Some s -> (
    match float_of_string_opt (String.trim s) with
    | Some t -> t
    | None -> Unix.gettimeofday ())
  | None -> Unix.gettimeofday ()

let make ~jobs ~quick ~circuits ~sections ~total_s () =
  let t = now () in
  let gc = Gc.quick_stat () in
  {
    bh_schema = schema_version;
    bh_git_rev = git_rev ();
    bh_date = iso8601 t;
    bh_date_unix = t;
    bh_jobs = jobs;
    bh_quick = quick;
    bh_circuits = circuits;
    bh_sections = sections;
    bh_total_s = total_s;
    bh_peak_rss_bytes = Rss.peak_bytes ();
    bh_minor_words = gc.Gc.minor_words;
    bh_major_words = gc.Gc.major_words;
  }

(* ------------------------------------------------------------------ *)
(* Serialisation                                                      *)
(* ------------------------------------------------------------------ *)

let to_json r =
  J.Obj
    [
      ("schema", J.Int r.bh_schema);
      ("git_rev", J.Str r.bh_git_rev);
      ("date", J.Str r.bh_date);
      ("date_unix", J.Float r.bh_date_unix);
      ("jobs", J.Int r.bh_jobs);
      ("quick", J.Bool r.bh_quick);
      ("circuits", J.List (List.map (fun c -> J.Str c) r.bh_circuits));
      ( "sections",
        J.Obj (List.map (fun (s, t) -> (s, J.Float t)) r.bh_sections) );
      ("total_runtime_s", J.Float r.bh_total_s);
      ( "peak_rss_bytes",
        match r.bh_peak_rss_bytes with Some b -> J.Int b | None -> J.Null );
      ("minor_words", J.Float r.bh_minor_words);
      ("major_words", J.Float r.bh_major_words);
    ]

let append path r =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  output_string oc (J.to_string (to_json r));
  output_char oc '\n';
  close_out oc

let load path =
  match open_in path with
  | exception Sys_error m -> Error m
  | ic ->
    let rec go acc =
      match input_line ic with
      | exception End_of_file -> List.rev acc
      | line when String.trim line = "" -> go acc
      | line -> go (J.of_string line :: acc)
    in
    let records = try Ok (go []) with J.Parse_error m -> Error m in
    close_in ic;
    records
