(* Trace analytics: turn a span list (live from Tka_obs.Trace, or
   reconstructed from a Chrome-trace dump) into the tables a human
   actually wants — self/total time per span name, the slowest victims
   with their prune attribution, and allocation hotspots. *)

module J = Tka_obs.Jsonx
module Trace = Tka_obs.Trace
module Tt = Tka_util.Text_table

(* ------------------------------------------------------------------ *)
(* Ingesting a Chrome-trace dump                                      *)
(* ------------------------------------------------------------------ *)

(* Inverse of Trace.to_json: "X" events become spans (µs -> ns), GC
   fields are pulled back out of args. Instants and unknown phases are
   dropped — the analytics only consume durations. *)
let span_of_event ev =
  match (J.member "ph" ev, J.member "name" ev) with
  | Some (J.Str "X"), Some (J.Str name) ->
    let num k =
      match J.member k ev with
      | Some (J.Float f) -> Some f
      | Some (J.Int i) -> Some (float_of_int i)
      | _ -> None
    in
    (match (num "ts", num "dur") with
    | Some ts, Some dur ->
      let cat =
        match J.member "cat" ev with Some (J.Str c) -> c | _ -> "tka"
      in
      let args =
        match J.member "args" ev with Some (J.Obj kvs) -> kvs | _ -> []
      in
      let arg_f k =
        match List.assoc_opt k args with
        | Some (J.Float f) -> Some f
        | Some (J.Int i) -> Some (float_of_int i)
        | _ -> None
      in
      let arg_i k =
        match List.assoc_opt k args with Some (J.Int i) -> Some i | _ -> None
      in
      let gc =
        match (arg_f "minor_words", arg_f "major_words") with
        | Some mw, Some gw ->
          Some
            {
              Trace.gd_minor_words = mw;
              gd_major_words = gw;
              gd_promoted_words =
                Option.value ~default:0. (arg_f "promoted_words");
              gd_minor_collections =
                Option.value ~default:0 (arg_i "minor_collections");
              gd_major_collections =
                Option.value ~default:0 (arg_i "major_collections");
            }
        | _ -> None
      in
      let gc_keys =
        [
          "minor_words"; "major_words"; "promoted_words"; "minor_collections";
          "major_collections";
        ]
      in
      Some
        {
          Trace.sp_name = name;
          sp_cat = cat;
          sp_start_ns = Int64.of_float (ts *. 1e3);
          sp_dur_ns = Int64.of_float (dur *. 1e3);
          sp_depth = 0;
          sp_args = List.filter (fun (k, _) -> not (List.mem k gc_keys)) args;
          sp_gc = gc;
        }
    | _ -> None)
  | _ -> None

let of_trace_json j =
  match J.member "traceEvents" j with
  | Some (J.List evs) -> List.filter_map span_of_event evs
  | _ -> failwith "not a Chrome trace: missing traceEvents array"

let of_trace_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  of_trace_json (J.of_string s)

(* ------------------------------------------------------------------ *)
(* Analytics                                                          *)
(* ------------------------------------------------------------------ *)

type agg = {
  ag_name : string;
  ag_cat : string;
  ag_count : int;
  ag_total_s : float;
  ag_self_s : float;
  ag_minor_words : float;
  ag_major_words : float;
  ag_minor_collections : int;
  ag_major_collections : int;
}

type victim = {
  vi_net : string;
  vi_dur_s : float;
  vi_minor_words : float;
  vi_candidates : int option;
  vi_dominated : int option;
  vi_capped : int option;
}

type report = {
  pr_span_count : int;
  pr_wall_s : float;  (** first start to last end *)
  pr_aggregates : agg list;  (** total-time descending *)
  pr_victims : victim list;  (** slowest first, truncated to [top] *)
  pr_alloc_hotspots : agg list;  (** self-allocation descending *)
}

let s_of_ns ns = Int64.to_float ns /. 1e9

(* Self time by interval containment: events sorted by (start asc, dur
   desc) visit parents before their children; a stack of open intervals
   identifies each span's innermost enclosing parent, which is charged
   the child's duration. Concurrent spans from pool domains interleave
   on the same timeline, so attribution under jobs>1 is approximate —
   run the profiling pass at --jobs 1 for exact self times. *)
let self_times spans =
  let arr = Array.of_list spans in
  Array.sort
    (fun a b ->
      match Int64.compare a.Trace.sp_start_ns b.Trace.sp_start_ns with
      | 0 -> Int64.compare b.Trace.sp_dur_ns a.Trace.sp_dur_ns
      | c -> c)
    arr;
  let child_ns = Array.make (Array.length arr) 0L in
  (* stack of (index, end_ns) *)
  let stack = ref [] in
  Array.iteri
    (fun i sp ->
      let start = sp.Trace.sp_start_ns in
      let stop = Int64.add start sp.Trace.sp_dur_ns in
      let rec unwind = function
        | (_, e) :: tl when e <= start -> unwind tl
        | s -> s
      in
      stack := unwind !stack;
      (match !stack with
      | (parent, _) :: _ ->
        child_ns.(parent) <- Int64.add child_ns.(parent) sp.Trace.sp_dur_ns
      | [] -> ());
      stack := (i, stop) :: !stack)
    arr;
  Array.mapi
    (fun i sp ->
      let self = Int64.sub sp.Trace.sp_dur_ns child_ns.(i) in
      (sp, Int64.max 0L self))
    arr

let analyze ?(top = 10) spans =
  let spans = List.filter (fun s -> s.Trace.sp_dur_ns >= 0L) spans in
  let with_self = self_times spans in
  let by_name : (string, agg ref) Hashtbl.t = Hashtbl.create 32 in
  Array.iter
    (fun (sp, self_ns) ->
      let a =
        match Hashtbl.find_opt by_name sp.Trace.sp_name with
        | Some a -> a
        | None ->
          let a =
            ref
              {
                ag_name = sp.Trace.sp_name;
                ag_cat = sp.Trace.sp_cat;
                ag_count = 0;
                ag_total_s = 0.;
                ag_self_s = 0.;
                ag_minor_words = 0.;
                ag_major_words = 0.;
                ag_minor_collections = 0;
                ag_major_collections = 0;
              }
          in
          Hashtbl.replace by_name sp.Trace.sp_name a;
          a
      in
      let mw, gw, mc, gc =
        match sp.Trace.sp_gc with
        | Some g ->
          ( g.Trace.gd_minor_words,
            g.Trace.gd_major_words,
            g.Trace.gd_minor_collections,
            g.Trace.gd_major_collections )
        | None -> (0., 0., 0, 0)
      in
      a :=
        {
          !a with
          ag_count = !a.ag_count + 1;
          ag_total_s = !a.ag_total_s +. s_of_ns sp.Trace.sp_dur_ns;
          ag_self_s = !a.ag_self_s +. s_of_ns self_ns;
          ag_minor_words = !a.ag_minor_words +. mw;
          ag_major_words = !a.ag_major_words +. gw;
          ag_minor_collections = !a.ag_minor_collections + mc;
          ag_major_collections = !a.ag_major_collections + gc;
        })
    with_self;
  let aggregates =
    Hashtbl.fold (fun _ a acc -> !a :: acc) by_name []
    |> List.sort (fun a b ->
           match Float.compare b.ag_total_s a.ag_total_s with
           | 0 -> String.compare a.ag_name b.ag_name
           | c -> c)
  in
  let victims =
    List.filter_map
      (fun sp ->
        if sp.Trace.sp_name <> "engine.victim" then None
        else
          let arg_i k =
            match List.assoc_opt k sp.Trace.sp_args with
            | Some (J.Int i) -> Some i
            | _ -> None
          in
          Some
            {
              vi_net =
                (match List.assoc_opt "net" sp.Trace.sp_args with
                | Some (J.Str s) -> s
                | _ -> "?");
              vi_dur_s = s_of_ns sp.Trace.sp_dur_ns;
              vi_minor_words =
                (match sp.Trace.sp_gc with
                | Some g -> g.Trace.gd_minor_words
                | None -> 0.);
              vi_candidates = arg_i "candidates";
              vi_dominated = arg_i "dominated";
              vi_capped = arg_i "capped";
            })
      spans
    |> List.sort (fun a b -> Float.compare b.vi_dur_s a.vi_dur_s)
    |> List.filteri (fun i _ -> i < top)
  in
  let alloc_hotspots =
    List.filter
      (fun a -> a.ag_minor_words +. a.ag_major_words > 0.)
      aggregates
    |> List.sort (fun a b ->
           Float.compare
             (b.ag_minor_words +. b.ag_major_words)
             (a.ag_minor_words +. a.ag_major_words))
    |> List.filteri (fun i _ -> i < top)
  in
  let wall =
    match spans with
    | [] -> 0.
    | _ ->
      let lo =
        List.fold_left
          (fun acc s -> Int64.min acc s.Trace.sp_start_ns)
          Int64.max_int spans
      in
      let hi =
        List.fold_left
          (fun acc s ->
            Int64.max acc (Int64.add s.Trace.sp_start_ns s.Trace.sp_dur_ns))
          Int64.min_int spans
      in
      s_of_ns (Int64.sub hi lo)
  in
  {
    pr_span_count = List.length spans;
    pr_wall_s = wall;
    pr_aggregates = aggregates;
    pr_victims = victims;
    pr_alloc_hotspots = alloc_hotspots;
  }

(* ------------------------------------------------------------------ *)
(* Rendering                                                          *)
(* ------------------------------------------------------------------ *)

let mwords w = w /. 1e6

let render r =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf "%d span(s) over %.3f s of traced wall time\n\n"
       r.pr_span_count r.pr_wall_s);
  Buffer.add_string buf "Time per span:\n";
  let t =
    Tt.create
      ~headers:
        [
          ("span", Tt.Left); ("count", Tt.Right); ("total (s)", Tt.Right);
          ("self (s)", Tt.Right); ("self %", Tt.Right);
          ("minor Mw", Tt.Right); ("major Mw", Tt.Right);
        ]
  in
  let total_self =
    List.fold_left (fun acc a -> acc +. a.ag_self_s) 0. r.pr_aggregates
  in
  List.iter
    (fun a ->
      Tt.add_row t
        [
          a.ag_name;
          Tt.cell_i a.ag_count;
          Tt.cell_f ~decimals:3 a.ag_total_s;
          Tt.cell_f ~decimals:3 a.ag_self_s;
          Tt.cell_f ~decimals:1
            (if total_self > 0. then 100. *. a.ag_self_s /. total_self else 0.);
          Tt.cell_f ~decimals:2 (mwords a.ag_minor_words);
          Tt.cell_f ~decimals:2 (mwords a.ag_major_words);
        ])
    r.pr_aggregates;
  Buffer.add_string buf (Tt.render t);
  if r.pr_victims <> [] then begin
    Buffer.add_string buf "\nSlowest victims (prune attribution):\n";
    let t =
      Tt.create
        ~headers:
          [
            ("net", Tt.Left); ("time (s)", Tt.Right); ("minor Mw", Tt.Right);
            ("candidates", Tt.Right); ("dominated", Tt.Right);
            ("capped", Tt.Right);
          ]
    in
    let opt = function Some i -> Tt.cell_i i | None -> "-" in
    List.iter
      (fun v ->
        Tt.add_row t
          [
            v.vi_net;
            Tt.cell_f ~decimals:4 v.vi_dur_s;
            Tt.cell_f ~decimals:2 (mwords v.vi_minor_words);
            opt v.vi_candidates;
            opt v.vi_dominated;
            opt v.vi_capped;
          ])
      r.pr_victims;
    Buffer.add_string buf (Tt.render t)
  end;
  if r.pr_alloc_hotspots <> [] then begin
    Buffer.add_string buf "\nAllocation hotspots (total words across spans):\n";
    let t =
      Tt.create
        ~headers:
          [
            ("span", Tt.Left); ("minor Mwords", Tt.Right);
            ("major Mwords", Tt.Right); ("minor GCs", Tt.Right);
            ("major GCs", Tt.Right);
          ]
    in
    List.iter
      (fun a ->
        Tt.add_row t
          [
            a.ag_name;
            Tt.cell_f ~decimals:2 (mwords a.ag_minor_words);
            Tt.cell_f ~decimals:2 (mwords a.ag_major_words);
            Tt.cell_i a.ag_minor_collections;
            Tt.cell_i a.ag_major_collections;
          ])
      r.pr_alloc_hotspots;
    Buffer.add_string buf (Tt.render t)
  end;
  Buffer.contents buf

let agg_json a =
  J.Obj
    [
      ("name", J.Str a.ag_name);
      ("cat", J.Str a.ag_cat);
      ("count", J.Int a.ag_count);
      ("total_s", J.Float a.ag_total_s);
      ("self_s", J.Float a.ag_self_s);
      ("minor_words", J.Float a.ag_minor_words);
      ("major_words", J.Float a.ag_major_words);
      ("minor_collections", J.Int a.ag_minor_collections);
      ("major_collections", J.Int a.ag_major_collections);
    ]

let victim_json v =
  J.Obj
    ([
       ("net", J.Str v.vi_net);
       ("time_s", J.Float v.vi_dur_s);
       ("minor_words", J.Float v.vi_minor_words);
     ]
    @ (match v.vi_candidates with Some c -> [ ("candidates", J.Int c) ] | None -> [])
    @ (match v.vi_dominated with Some d -> [ ("dominated", J.Int d) ] | None -> [])
    @ match v.vi_capped with Some c -> [ ("capped", J.Int c) ] | None -> [])

let to_json r =
  J.Obj
    [
      ("span_count", J.Int r.pr_span_count);
      ("wall_s", J.Float r.pr_wall_s);
      ("spans", J.List (List.map agg_json r.pr_aggregates));
      ("victims", J.List (List.map victim_json r.pr_victims));
      ("alloc_hotspots", J.List (List.map agg_json r.pr_alloc_hotspots));
    ]
