(** Trace analytics behind [tka profile]: aggregate a span list — live
    from {!Tka_obs.Trace.spans}, or reconstructed from a Chrome-trace
    dump — into self/total time per span name, the slowest
    [engine.victim] spans with their prune attribution
    (candidates/dominated/capped from the span args), and allocation
    hotspots from the per-span GC deltas.

    Self time is computed by interval containment on one timeline, so
    under [--jobs] > 1 the attribution of concurrently recorded spans
    is approximate; profile at jobs 1 for exact figures. *)

type agg = {
  ag_name : string;
  ag_cat : string;
  ag_count : int;
  ag_total_s : float;
  ag_self_s : float;  (** total minus enclosed child spans *)
  ag_minor_words : float;
  ag_major_words : float;
  ag_minor_collections : int;
  ag_major_collections : int;
}

type victim = {
  vi_net : string;
  vi_dur_s : float;
  vi_minor_words : float;
  vi_candidates : int option;
  vi_dominated : int option;
  vi_capped : int option;
}

type report = {
  pr_span_count : int;
  pr_wall_s : float;  (** first span start to last span end *)
  pr_aggregates : agg list;  (** total-time descending *)
  pr_victims : victim list;  (** slowest first, truncated to [top] *)
  pr_alloc_hotspots : agg list;  (** total-allocation descending *)
}

val analyze : ?top:int -> Tka_obs.Trace.span list -> report
(** [top] bounds the victim and hotspot lists (default 10). Instants
    are ignored. *)

val of_trace_json : Tka_obs.Jsonx.t -> Tka_obs.Trace.span list
(** Reconstruct spans from a Chrome-trace document ("X" events only;
    GC fields are recovered from [args]). Raises [Failure] when the
    document has no [traceEvents] array. *)

val of_trace_file : string -> Tka_obs.Trace.span list
(** {!of_trace_json} on a file. Raises [Sys_error] /
    {!Tka_obs.Jsonx.Parse_error} / [Failure]. *)

val render : report -> string
(** Human-readable tables. *)

val to_json : report -> Tka_obs.Jsonx.t
