(** Perf-regression comparison behind [tka bench-diff].

    Flattens two benchmark documents (a [BENCH_topk.json], or a
    [BENCH_history.ndjson] whose last record is used) to dotted numeric
    paths, keeps the paths whose leaf names mark them as performance
    figures, and compares each metric present in both:

    - {e lower is better}: leaves ending in [_s], [_seconds], [_bytes]
      or [_words], or containing [runtime] or [rss];
    - {e higher is better}: leaves containing [speedup];
    - everything else (delays, prune counters, set contents) is
      correctness data and is ignored.

    A metric regresses when its ratio crosses the relative [threshold]
    the wrong way. Metrics below a noise floor in both files (default
    50 ms for timings, 1 Mwords for allocation/RSS figures) are
    skipped: tiny timings jitter by integer factors between runs. *)

type direction = Lower_better | Higher_better

type metric = {
  m_path : string;
  m_base : float;
  m_new : float;
  m_direction : direction;
  m_ratio : float;  (** new/base; 1.0 when both are 0 *)
}

type result = {
  bd_threshold : float;
  bd_checked : metric list;
  bd_regressions : metric list;
  bd_improvements : metric list;
  bd_skipped_small : int;
  bd_only_base : string list;  (** perf paths missing from the new file *)
  bd_only_new : string list;
}

val default_min_seconds : float
(** The default timing noise floor (0.05 s). *)

val compare_docs :
  ?threshold:float -> ?min_seconds:float -> Tka_obs.Jsonx.t -> Tka_obs.Jsonx.t
  -> result
(** [compare_docs base next]. [threshold] is relative (default [0.20] =
    ±20%); [min_seconds] is the timing noise floor (default 0.05). *)

val has_regressions : result -> bool

val load_file : string -> Tka_obs.Jsonx.t
(** Parse a bench file: a whole-file JSON document, or (when that
    fails) the last non-empty line of an NDJSON history. *)

val render : result -> string
val to_json : result -> Tka_obs.Jsonx.t
