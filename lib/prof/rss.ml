(* Resident-set-size accounting from /proc/self/status. The kernel
   maintains the high-water mark (VmHWM) itself, so "sampling" peak RSS
   is a single file read at the moment of interest — no background
   thread. On platforms without procfs every probe returns None and
   callers degrade to omitting the figure. *)

let status_path = "/proc/self/status"

(* "VmHWM:     12345 kB" -> bytes *)
let parse_kb_line line =
  match String.index_opt line ':' with
  | None -> None
  | Some i ->
    let rest = String.sub line (i + 1) (String.length line - i - 1) in
    let tokens =
      String.split_on_char ' ' (String.map (function '\t' -> ' ' | c -> c) rest)
      |> List.filter (fun s -> s <> "")
    in
    (match tokens with
    | value :: unit :: _ when String.lowercase_ascii unit = "kb" ->
      Option.map (fun kb -> kb * 1024) (int_of_string_opt value)
    | [ value ] -> int_of_string_opt value
    | _ -> None)

let field key =
  match open_in status_path with
  | exception Sys_error _ -> None
  | ic ->
    let prefix = key ^ ":" in
    let rec scan () =
      match input_line ic with
      | exception End_of_file -> None
      | line ->
        if String.length line >= String.length prefix
           && String.sub line 0 (String.length prefix) = prefix
        then parse_kb_line line
        else scan ()
    in
    let v = scan () in
    close_in ic;
    v

let peak_bytes () = field "VmHWM"
let current_bytes () = field "VmRSS"

let supported () = Sys.file_exists status_path
