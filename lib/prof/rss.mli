(** Process resident-set-size probes via [/proc/self/status].

    The kernel tracks the peak itself ([VmHWM]), so reading it at the
    end of a run captures the true high-water mark without a sampler
    thread. On platforms without procfs (macOS, Windows) every probe
    returns [None] — callers omit the figure instead of failing. *)

val peak_bytes : unit -> int option
(** Peak resident set size ([VmHWM]) in bytes. *)

val current_bytes : unit -> int option
(** Current resident set size ([VmRSS]) in bytes. *)

val supported : unit -> bool
(** Whether [/proc/self/status] exists on this platform. *)
