(** Net loads and stage delays on a netlist.

    Bridges {!Tka_circuit.Netlist} structure to the linear cell model of
    {!Tka_cell.Delay_model}. Coupling capacitance counts toward nominal
    load with a Miller factor of 1 (quiet neighbours); the {e change} of
    effective coupling during simultaneous switching is exactly what the
    noise analysis layers on top. *)

val net_load : Tka_circuit.Netlist.t -> Tka_circuit.Netlist.net_id -> float
(** Wire cap + sink pin caps + coupling caps, pF. *)

val stage_delay :
  Tka_circuit.Netlist.t -> Tka_circuit.Netlist.gate_id -> float
(** Propagation delay of the gate driving its loaded output net,
    including the wire-resistance RC adder of the output net. *)

val stage_output_slew :
  Tka_circuit.Netlist.t -> Tka_circuit.Netlist.gate_id -> input_slew:float -> float

val input_driver_resistance : float
(** Thevenin resistance assumed for whatever drives a primary input
    (1.5 kΩ). *)

val holding_resistance :
  Tka_circuit.Netlist.t -> Tka_circuit.Netlist.net_id -> float
(** Resistance holding the net at its quiet value: its driver cell's
    drive resistance plus the net's wire resistance (or
    {!input_driver_resistance} for primary inputs). Sets crosstalk pulse
    height and decay on that net. *)

val default_input_slew : float
(** Transition time assumed at primary inputs (0.04 ns). *)
