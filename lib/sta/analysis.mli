(** Block-based static timing analysis.

    Propagates {!Timing_window} values from primary inputs to outputs in
    one topological pass. The [extra_lat] hook injects a per-net late
    push — this is how the iterative noise analysis ({!Tka_noise})
    feeds delay noise back into the timing graph, and how "what if this
    aggressor set switches" evaluations are performed. *)

type t

val run :
  ?input_arrival:(Tka_circuit.Netlist.net_id -> Timing_window.t) ->
  ?extra_lat:(Tka_circuit.Netlist.net_id -> float) ->
  Tka_circuit.Topo.t ->
  t
(** [run topo] computes windows for every net.

    - [input_arrival] gives primary-input windows (default: all inputs
      switch at exactly t = 0 with {!Delay_calc.default_input_slew});
    - [extra_lat nid] (default 0, must be >= 0) is added to the net's
      LAT after normal propagation, and therefore propagates
      downstream. *)

val topo : t -> Tka_circuit.Topo.t
val netlist : t -> Tka_circuit.Netlist.t

val window : t -> Tka_circuit.Netlist.net_id -> Timing_window.t

val circuit_delay : t -> float
(** Max LAT over primary outputs. *)

val worst_output : t -> Tka_circuit.Netlist.net_id
(** The primary output attaining {!circuit_delay} (the "sink node" at
    which the paper's algorithm reads its final irredundant list). *)

val output_arrivals : t -> (Tka_circuit.Netlist.net_id * float) list
(** LAT of every primary output. *)
