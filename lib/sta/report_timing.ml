module N = Tka_circuit.Netlist
module TW = Timing_window

let path ?constraints ?(extra_delay = fun _ -> 0.) analysis p =
  let nl = Analysis.netlist analysis in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%-14s %-12s %10s %10s %10s %10s\n" "point" "cell" "incr"
       "noise" "arrival" "slew");
  Buffer.add_string buf (String.make 70 '-');
  Buffer.add_char buf '\n';
  let prev_arrival = ref None in
  List.iter
    (fun s ->
      let nid = s.Critical_path.step_net in
      let w = Analysis.window analysis nid in
      let arrival = s.Critical_path.step_arrival in
      let incr =
        match !prev_arrival with Some p -> arrival -. p | None -> arrival
      in
      prev_arrival := Some arrival;
      let point, cell =
        match N.driver_gate nl nid with
        | Some g ->
          ( Printf.sprintf "%s/%s" g.N.gate_name (N.net nl nid).N.net_name,
            g.N.cell.Tka_cell.Cell.name )
        | None -> ((N.net nl nid).N.net_name, "(input)")
      in
      Buffer.add_string buf
        (Printf.sprintf "%-14s %-12s %10.4f %10.4f %10.4f %10.4f\n" point cell
           incr (extra_delay nid) arrival w.TW.slew_late))
    p;
  (match (constraints, List.rev p) with
  | Some c, last :: _ ->
    let nid = last.Critical_path.step_net in
    let arrival = last.Critical_path.step_arrival in
    let required = Constraints.required c nid in
    let slack = required -. arrival in
    Buffer.add_string buf (String.make 70 '-');
    Buffer.add_char buf '\n';
    Buffer.add_string buf (Printf.sprintf "%-38s %10s %10.4f\n" "data arrival time" "" arrival);
    Buffer.add_string buf (Printf.sprintf "%-38s %10s %10.4f\n" "data required time" "" required);
    Buffer.add_string buf
      (Printf.sprintf "%-38s %10s %10.4f  (%s)\n" "slack" "" slack
         (if slack >= 0. then "MET" else "VIOLATED"))
  | _, _ -> ());
  Buffer.contents buf

let worst ?constraints ?extra_delay analysis =
  path ?constraints ?extra_delay analysis (Critical_path.worst analysis)
