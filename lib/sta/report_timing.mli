(** Industry-style timing path reports.

    Formats a timing path the way designers expect from an STA shell —
    one row per stage with instance, cell, incremental delay, cumulative
    arrival and slew — plus the endpoint summary against a clock
    constraint when one is given. *)

val path :
  ?constraints:Constraints.t ->
  ?extra_delay:(Tka_circuit.Netlist.net_id -> float) ->
  Analysis.t ->
  Critical_path.path ->
  string
(** [path analysis p] renders [p].

    - [extra_delay] (default 0) annotates a per-net adder shown in its
      own column — pass the fixpoint delay noise to render a
      noise-aware report;
    - [constraints] appends required time / slack lines for the
      endpoint. *)

val worst :
  ?constraints:Constraints.t ->
  ?extra_delay:(Tka_circuit.Netlist.net_id -> float) ->
  Analysis.t ->
  string
(** The report for the critical path. *)
