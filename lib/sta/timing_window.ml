module F = Tka_util.Float_cmp
module Interval = Tka_util.Interval

type t = { eat : float; lat : float; slew_early : float; slew_late : float }

let make ~eat ~lat ~slew_early ~slew_late =
  if slew_early <= 0. || slew_late <= 0. then
    invalid_arg "Timing_window.make: slews must be positive";
  if F.gt eat lat then
    invalid_arg (Printf.sprintf "Timing_window.make: eat %g > lat %g" eat lat);
  { eat = Float.min eat lat; lat; slew_early; slew_late }

let point ~t50 ~slew = make ~eat:t50 ~lat:t50 ~slew_early:slew ~slew_late:slew

let interval t = Interval.make t.eat t.lat

let width t = t.lat -. t.eat

let merge a b =
  let eat, slew_early =
    if a.eat <= b.eat then (a.eat, a.slew_early) else (b.eat, b.slew_early)
  in
  let lat, slew_late =
    if a.lat >= b.lat then (a.lat, a.slew_late) else (b.lat, b.slew_late)
  in
  { eat; lat; slew_early; slew_late }

let shift d t = { t with eat = t.eat +. d; lat = t.lat +. d }

let extend_lat d t =
  if d < 0. then invalid_arg "Timing_window.extend_lat: negative";
  { t with lat = t.lat +. d }

let onset_interval t =
  let lo = t.eat -. (t.slew_early /. 2.) in
  let hi = t.lat -. (t.slew_late /. 2.) in
  if hi >= lo then Interval.make lo hi else Interval.point lo

(* Arrival-window overlap queries, used by the aggressor filter layer
   (lib/filter) and exposed for any window-vs-window reasoning. Both
   delegate to the interval layer so one definition of "overlap" is
   shared with the pulse-reach tests. *)
let overlaps a b = Interval.overlaps (interval a) (interval b)

let overlap_fraction a b = Interval.overlap_fraction (interval a) (interval b)

let latest_transition t =
  Tka_waveform.Transition.make ~t50:t.lat ~slew:t.slew_late ()

let equal ?eps a b =
  F.approx ?eps a.eat b.eat && F.approx ?eps a.lat b.lat
  && F.approx ?eps a.slew_early b.slew_early
  && F.approx ?eps a.slew_late b.slew_late

let pp ppf t =
  Format.fprintf ppf "[%g, %g] (slew %g/%g)" t.eat t.lat t.slew_early t.slew_late
