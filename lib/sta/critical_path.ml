module N = Tka_circuit.Netlist

type step = { step_net : N.net_id; step_arrival : float }

type path = step list

let lat a nid = (Analysis.window a nid).Timing_window.lat

(* Latest path ending at [nid], greedy backward walk. *)
let to_output a nid =
  let nl = Analysis.netlist a in
  let rec back acc nid =
    let acc = { step_net = nid; step_arrival = lat a nid } :: acc in
    match N.driver_gate nl nid with
    | None -> acc
    | Some g ->
      let delay = Delay_calc.stage_delay nl g.N.gate_id in
      let best =
        List.fold_left
          (fun best (_, in_net) ->
            let arr = lat a in_net +. delay in
            match best with
            | Some (_, barr) when barr >= arr -> best
            | Some _ | None -> Some (in_net, arr))
          None g.N.fanin
      in
      (match best with
      | Some (in_net, _) -> back acc in_net
      | None -> acc)
  in
  back [] nid

let worst a = to_output a (Analysis.worst_output a)

let near_critical ?slack ?(limit = 64) a =
  let nl = Analysis.netlist a in
  let total = Analysis.circuit_delay a in
  let slack = match slack with Some s -> s | None -> 0.1 *. total in
  (* DFS backward accumulating deviation from the latest path. *)
  let results = ref [] in
  let count = ref 0 in
  let rec back suffix deviation nid =
    if !count < limit * 8 then begin
      let suffix = { step_net = nid; step_arrival = lat a nid } :: suffix in
      match N.driver_gate nl nid with
      | None ->
        results := (deviation, suffix) :: !results;
        incr count
      | Some g ->
        let delay = Delay_calc.stage_delay nl g.N.gate_id in
        let here = lat a nid in
        List.iter
          (fun (_, in_net) ->
            let dev = deviation +. (here -. (lat a in_net +. delay)) in
            if dev <= slack +. Tka_util.Float_cmp.default_eps then
              back suffix dev in_net)
          g.N.fanin
    end
  in
  List.iter
    (fun (po, arrival) ->
      let dev0 = total -. arrival in
      if dev0 <= slack then back [] dev0 po)
    (Analysis.output_arrivals a);
  !results
  |> List.sort (fun (d1, _) (d2, _) -> Float.compare d1 d2)
  |> List.filteri (fun i _ -> i < limit)
  |> List.map snd

let pp a ppf path =
  let nl = Analysis.netlist a in
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun s ->
      Format.fprintf ppf "%s @ %.4f@ " (N.net nl s.step_net).N.net_name
        s.step_arrival)
    path;
  Format.fprintf ppf "@]"
