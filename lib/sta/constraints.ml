module N = Tka_circuit.Netlist
module Topo = Tka_circuit.Topo

type t = {
  analysis : Analysis.t;
  period : float;
  required_times : float array;
  slacks : float array;
}

let create ?clock_period ?(output_required = fun _ -> None) analysis =
  let topo = Analysis.topo analysis in
  let nl = Analysis.netlist analysis in
  let period =
    match clock_period with
    | Some p -> p
    | None -> 1.05 *. Analysis.circuit_delay analysis
  in
  let nn = N.num_nets nl in
  let required_times = Array.make nn Float.infinity in
  List.iter
    (fun po ->
      required_times.(po) <-
        (match output_required po with Some r -> r | None -> period))
    (N.outputs nl);
  (* backward pass: required at a gate input = required at its output
     minus the stage delay *)
  let order = Topo.net_order topo in
  for i = Array.length order - 1 downto 0 do
    let nid = order.(i) in
    match (N.net nl nid).N.driver with
    | N.Primary_input -> ()
    | N.Driven_by gid ->
      let delay = Delay_calc.stage_delay nl gid in
      List.iter
        (fun (_, in_net) ->
          required_times.(in_net) <-
            Float.min required_times.(in_net) (required_times.(nid) -. delay))
        (N.gate nl gid).N.fanin
  done;
  let slacks =
    Array.init nn (fun nid ->
        required_times.(nid) -. (Analysis.window analysis nid).Timing_window.lat)
  in
  { analysis; period; required_times; slacks }

let clock_period t = t.period
let required t nid = t.required_times.(nid)
let slack t nid = t.slacks.(nid)

let worst_slack t = Array.fold_left Float.min Float.infinity t.slacks

let violations t =
  let out = ref [] in
  Array.iteri (fun nid s -> if s < 0. then out := (nid, s) :: !out) t.slacks;
  List.sort (fun (_, a) (_, b) -> Float.compare a b) !out |> List.map fst

let critical_through t nid =
  Tka_util.Float_cmp.approx ~eps:1e-9 t.slacks.(nid) (worst_slack t)
