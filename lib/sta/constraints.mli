(** Timing constraints: required times and slacks.

    A clock period turns arrival times into pass/fail information —
    which is how delay noise becomes a *violation*: the paper's
    motivation is fixing designs where crosstalk pushes endpoints past
    their required time. Required times propagate backward from primary
    outputs; slack = required − arrival (late mode). *)

type t

val create :
  ?clock_period:float ->
  ?output_required:(Tka_circuit.Netlist.net_id -> float option) ->
  Analysis.t ->
  t
(** [create analysis] computes required times against [clock_period]
    (default: 5% above the circuit delay, a just-passing clock).
    [output_required] can pin individual primary outputs; unpinned
    outputs default to the clock period. *)

val clock_period : t -> float

val required : t -> Tka_circuit.Netlist.net_id -> float
(** Latest allowed arrival at the net ([infinity] for nets that reach
    no constrained output). *)

val slack : t -> Tka_circuit.Netlist.net_id -> float
(** [required − LAT]; negative means violated. *)

val worst_slack : t -> float

val violations : t -> Tka_circuit.Netlist.net_id list
(** Nets with negative slack, worst first. *)

val critical_through : t -> Tka_circuit.Netlist.net_id -> bool
(** True when the net lies on a path with the worst slack (within
    tolerance) — the classic "is this net timing-critical" query. *)
