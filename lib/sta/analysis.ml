module N = Tka_circuit.Netlist
module Topo = Tka_circuit.Topo
module Metrics = Tka_obs.Metrics
module Trace = Tka_obs.Trace

let m_runs = Metrics.Counter.make "sta.runs"
let m_windows = Metrics.Counter.make "sta.arrival_windows"

type t = {
  topo : Topo.t;
  windows : Timing_window.t array;
}

let default_input_arrival _ =
  Timing_window.point ~t50:0. ~slew:Delay_calc.default_input_slew

let run ?(input_arrival = default_input_arrival) ?(extra_lat = fun _ -> 0.) topo =
  Trace.with_span ~cat:"sta" "sta.arrival_propagation" @@ fun () ->
  Metrics.Counter.incr m_runs;
  let nl = Topo.netlist topo in
  let nn = N.num_nets nl in
  let windows = Array.make nn (Timing_window.point ~t50:0. ~slew:1.) in
  let extra nid =
    let d = extra_lat nid in
    if d < 0. then invalid_arg "Analysis.run: negative extra_lat";
    d
  in
  Array.iter
    (fun nid ->
      let w =
        match (N.net nl nid).N.driver with
        | N.Primary_input -> input_arrival nid
        | N.Driven_by gid ->
          let g = N.gate nl gid in
          let delay = Delay_calc.stage_delay nl gid in
          let through (_, in_net) =
            let wi = windows.(in_net) in
            Timing_window.make
              ~eat:(wi.Timing_window.eat +. delay)
              ~lat:(wi.Timing_window.lat +. delay)
              ~slew_early:
                (Delay_calc.stage_output_slew nl gid
                   ~input_slew:wi.Timing_window.slew_early)
              ~slew_late:
                (Delay_calc.stage_output_slew nl gid
                   ~input_slew:wi.Timing_window.slew_late)
          in
          (match g.N.fanin with
          | [] -> assert false (* cells have >= 1 input *)
          | first :: rest ->
            List.fold_left
              (fun acc input -> Timing_window.merge acc (through input))
              (through first) rest)
      in
      windows.(nid) <- Timing_window.extend_lat (extra nid) w)
    (Topo.net_order topo);
  Metrics.Counter.add m_windows nn;
  { topo; windows }

let topo t = t.topo
let netlist t = Topo.netlist t.topo

let window t nid = t.windows.(nid)

let output_arrivals t =
  let nl = netlist t in
  List.map (fun nid -> (nid, t.windows.(nid).Timing_window.lat)) (N.outputs nl)

let worst_output t =
  match output_arrivals t with
  | [] -> invalid_arg "Analysis.worst_output: no primary outputs"
  | (n0, a0) :: rest ->
    fst
      (List.fold_left
         (fun (bn, ba) (n, a) -> if a > ba then (n, a) else (bn, ba))
         (n0, a0) rest)

let circuit_delay t =
  List.fold_left (fun acc (_, a) -> Float.max acc a) Float.neg_infinity
    (output_arrivals t)
