module N = Tka_circuit.Netlist
module DM = Tka_cell.Delay_model

let m_stage_delays = Tka_obs.Metrics.Counter.make "sta.stage_delay_calcs"

let input_driver_resistance = 1.5
let default_input_slew = 0.04

let net_load nl nid = N.total_cap nl nid

let stage_delay nl gid =
  Tka_obs.Metrics.Counter.incr m_stage_delays;
  let g = N.gate nl gid in
  let out = g.N.fanout in
  let load = net_load nl out in
  DM.gate_delay ~cell:g.N.cell ~load
  +. DM.rc ~resistance:(N.net nl out).N.wire_res ~capacitance:(0.5 *. load)

let stage_output_slew nl gid ~input_slew =
  let g = N.gate nl gid in
  DM.output_slew ~cell:g.N.cell ~input_slew ~load:(net_load nl g.N.fanout)

let holding_resistance nl nid =
  let wire = (N.net nl nid).N.wire_res in
  match N.driver_gate nl nid with
  | None -> input_driver_resistance +. wire
  | Some g -> DM.holding_resistance g.N.cell +. wire
