(** Critical-path extraction.

    Traces the latest-arrival path backward from a primary output. The
    top-k aggressor analysis must consider the critical {e and}
    near-critical paths (Section 1 of the paper): {!near_critical}
    enumerates every path whose arrival is within a slack margin of the
    worst. *)

type step = {
  step_net : Tka_circuit.Netlist.net_id;
  step_arrival : float;  (** LAT at this net *)
}

type path = step list
(** Input-to-output order. *)

val worst : Analysis.t -> path
(** The critical path to {!Analysis.worst_output}. *)

val to_output : Analysis.t -> Tka_circuit.Netlist.net_id -> path
(** Critical path ending at the given primary output. *)

val near_critical : ?slack:float -> ?limit:int -> Analysis.t -> path list
(** All paths (to any primary output) whose end arrival is within
    [slack] (default 10% of the worst delay) of the circuit delay,
    worst first, at most [limit] (default 64) paths. Enumeration is
    depth-first over fanin edges whose arrival supports the path
    arrival within the slack budget. *)

val pp : Analysis.t -> Format.formatter -> path -> unit
(** Renders net names with arrivals. *)
