(** Per-net switching windows.

    A timing window bounds when a net's transition can cross 50% of the
    supply: the early arrival time (EAT) and late arrival time (LAT) of
    Section 2 of the paper, together with the transition times (slews)
    of the fastest and slowest arrivals. *)

type t = {
  eat : float;  (** earliest possible t50 *)
  lat : float;  (** latest possible t50 *)
  slew_early : float;  (** slew of the earliest transition *)
  slew_late : float;  (** slew of the latest transition *)
}

val make : eat:float -> lat:float -> slew_early:float -> slew_late:float -> t
(** Requires [eat <= lat] (within tolerance) and positive slews. *)

val point : t50:float -> slew:float -> t
(** Degenerate window: the net switches at exactly [t50]. *)

val interval : t -> Tka_util.Interval.t
(** [\[eat, lat\]]. *)

val width : t -> float

val merge : t -> t -> t
(** Union of possible arrivals: min EAT (keeping its slew), max LAT
    (keeping its slew) — how windows combine across the inputs of a
    multi-input gate. *)

val shift : float -> t -> t

val extend_lat : float -> t -> t
(** Push the latest arrival out by [d >= 0] (delay noise on this net);
    EAT is unchanged. *)

val onset_interval : t -> Tka_util.Interval.t
(** Window of transition {e start} times: [\[eat - slew_early/2,
    lat - slew_late/2\]] (clamped to be non-degenerate). This is the
    window swept when constructing a noise envelope from a pulse whose
    time origin is the aggressor transition onset. *)

val overlaps : t -> t -> bool
(** [overlaps a b]: the arrival windows [\[eat, lat\]] intersect (with
    tolerance; touching endpoints overlap). Symmetric, and reflexive on
    every window. This is a query about {e when the nets can switch} —
    the aggressor filter combines it with pulse reach to decide whether
    a coupling can matter at all. *)

val overlap_fraction : t -> t -> float
(** Overlap of the two arrival windows normalised by the narrower one
    (see {!Tka_util.Interval.overlap_fraction}): 0 when {!overlaps} is
    false, 1 when either window contains the other (including the
    degenerate point-window case), symmetric in between. *)

val latest_transition : t -> Tka_waveform.Transition.t
(** The slowest, latest arrival: [t50 = lat], [slew = slew_late] — the
    victim waveform used for worst-case delay noise. *)

val equal : ?eps:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
