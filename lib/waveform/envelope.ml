module Interval = Tka_util.Interval

type t = Pwl.t

let of_waveform w = Pwl.clip_min 0. w

let of_pulse ~window p =
  let base = Pwl.shift_x (Interval.lo window -. p.Pulse.onset) (Pulse.waveform p) in
  Pwl.sliding_max ~window:(Interval.width window) base

let zero = Pwl.zero

let is_zero e = Pwl.max_value e <= Tka_util.Float_cmp.default_eps

let waveform e = e

let add = Pwl.add

let combine = function
  | [] -> zero
  | es -> Pwl.sum es

let scale f e =
  if not (f >= 0. && f <= 1.) then
    invalid_arg "Envelope.scale: factor must be in [0, 1]";
  if f = 1. then e else Pwl.scale f e

let widen d e =
  if d < 0. then invalid_arg "Envelope.widen: negative widening";
  if d = 0. then e else Pwl.sliding_max ~window:d e

let peak = Pwl.max_value

let encapsulates ?interval a b =
  match interval with
  | None -> Pwl.dominates a b
  | Some i -> Pwl.dominates_on i a b

let noisy_waveform ~victim e = Pwl.sub (Transition.waveform victim) e

let delay_noise ~victim e =
  let noisy = noisy_waveform ~victim e in
  match Pwl.last_upcrossing noisy 0.5 with
  | None -> 0.
  | Some t -> Float.max 0. (t -. victim.Transition.t50)

let support e = Pwl.support e

let equal = Pwl.equal

let pp = Pwl.pp
