module Interval = Tka_util.Interval

let glyphs = [| '*'; '+'; 'o'; 'x'; '#'; '@'; '%'; '&' |]

let union_span ?range series =
  match range with
  | Some r -> (Interval.lo r, Interval.hi r)
  | None ->
    let lo, hi =
      List.fold_left
        (fun (lo, hi) (_, w) ->
          (Float.min lo (Pwl.first_x w), Float.max hi (Pwl.last_x w)))
        (Float.infinity, Float.neg_infinity)
        series
    in
    if hi > lo then (lo, hi) else (lo -. 0.5, lo +. 0.5)

let ascii ?(width = 72) ?(height = 16) ?range series =
  match series with
  | [] -> ""
  | _ :: _ ->
    let x0, x1 = union_span ?range series in
    let samples =
      List.map
        (fun (label, w) ->
          ( label,
            Array.init width (fun i ->
                let x = x0 +. ((x1 -. x0) *. float_of_int i /. float_of_int (width - 1)) in
                Pwl.eval w x) ))
        series
    in
    let y0, y1 =
      List.fold_left
        (fun (lo, hi) (_, ys) ->
          Array.fold_left (fun (lo, hi) y -> (Float.min lo y, Float.max hi y)) (lo, hi) ys)
        (Float.infinity, Float.neg_infinity)
        samples
    in
    let y0, y1 = if y1 > y0 then (y0, y1) else (y0 -. 0.5, y0 +. 0.5) in
    let grid = Array.make_matrix height width ' ' in
    (* zero line, if visible *)
    if y0 <= 0. && 0. <= y1 then begin
      let row =
        height - 1 - int_of_float (Float.round ((0. -. y0) /. (y1 -. y0) *. float_of_int (height - 1)))
      in
      if row >= 0 && row < height then
        for i = 0 to width - 1 do
          grid.(row).(i) <- '-'
        done
    end;
    List.iteri
      (fun si (_, ys) ->
        let glyph = glyphs.(si mod Array.length glyphs) in
        Array.iteri
          (fun i y ->
            let row =
              height - 1
              - int_of_float (Float.round ((y -. y0) /. (y1 -. y0) *. float_of_int (height - 1)))
            in
            if row >= 0 && row < height then grid.(row).(i) <- glyph)
          ys)
      samples;
    let buf = Buffer.create ((width + 12) * (height + 3)) in
    Buffer.add_string buf (Printf.sprintf "%8.4g +" y1);
    Buffer.add_string buf (String.make width ' ');
    Buffer.add_char buf '\n';
    Array.iteri
      (fun r line ->
        Buffer.add_string buf
          (if r = height - 1 then Printf.sprintf "%8.4g |" y0 else "         |");
        Buffer.add_string buf (String.init width (fun i -> line.(i)));
        Buffer.add_char buf '\n')
      grid;
    Buffer.add_string buf "         +";
    Buffer.add_string buf (String.make width '-');
    Buffer.add_char buf '\n';
    Buffer.add_string buf (Printf.sprintf "          %-8.4g%*s%8.4g\n" x0 (width - 8) "" x1);
    List.iteri
      (fun si (label, _) ->
        Buffer.add_string buf
          (Printf.sprintf "          %c = %s\n" glyphs.(si mod Array.length glyphs) label))
      series;
    Buffer.contents buf

let csv ?(samples = 128) series =
  match series with
  | [] -> ""
  | _ :: _ ->
    let x0, x1 = union_span series in
    let buf = Buffer.create 4096 in
    Buffer.add_string buf "t";
    List.iter (fun (label, _) -> Buffer.add_string buf ("," ^ label)) series;
    Buffer.add_char buf '\n';
    for i = 0 to samples - 1 do
      let x = x0 +. ((x1 -. x0) *. float_of_int i /. float_of_int (samples - 1)) in
      Buffer.add_string buf (Printf.sprintf "%.6g" x);
      List.iter
        (fun (_, w) -> Buffer.add_string buf (Printf.sprintf ",%.6g" (Pwl.eval w x)))
        series;
      Buffer.add_char buf '\n'
    done;
    Buffer.contents buf
