type direction = Rising | Falling

type t = { t50 : float; slew : float; direction : direction }

let make ?(direction = Rising) ~t50 ~slew () =
  if slew <= 0. then invalid_arg "Transition.make: slew must be positive";
  { t50; slew; direction }

let start_time t = t.t50 -. (t.slew /. 2.)
let end_time t = t.t50 +. (t.slew /. 2.)

let waveform t =
  Pwl.create [ (start_time t, 0.); (end_time t, 1.) ]

let shift d t = { t with t50 = t.t50 +. d }

let t50_of_waveform w = Pwl.last_upcrossing w 0.5

let pp ppf t =
  let dir = match t.direction with Rising -> "rise" | Falling -> "fall" in
  Format.fprintf ppf "%s(t50=%g, slew=%g)" dir t.t50 t.slew
