module F = Tka_util.Float_cmp
module Interval = Tka_util.Interval

type t = { xs : float array; ys : float array }

(* Merge tolerance for abscissae: two breakpoints closer than this are
   considered the same instant. *)
let x_eps = 1e-12

let collinear (x0, y0) (x1, y1) (x2, y2) =
  (* (x1,y1) lies on the segment (x0,y0)-(x2,y2)? Cross-product test with a
     scale-aware tolerance. *)
  let cross = ((x1 -. x0) *. (y2 -. y0)) -. ((x2 -. x0) *. (y1 -. y0)) in
  Float.abs cross <= 1e-12 *. (1. +. Float.abs (x2 -. x0)) *. (1. +. Float.abs y2 +. Float.abs y0)

let simplify_points pts =
  match pts with
  | [] | [ _ ] | [ _; _ ] -> pts
  | first :: rest ->
    let rec go acc prev = function
      | [] -> List.rev (prev :: acc)
      | cur :: tl -> (
        match tl with
        | [] -> List.rev (cur :: prev :: acc)
        | next :: _ ->
          if collinear prev cur next then go acc prev tl
          else go (prev :: acc) cur tl)
    in
    go [] first rest

let of_points_unchecked pts =
  let pts = simplify_points pts in
  { xs = Array.of_list (List.map fst pts); ys = Array.of_list (List.map snd pts) }

let create pts =
  match pts with
  | [] -> invalid_arg "Pwl.create: empty point list"
  | _ :: _ ->
    let sorted = List.stable_sort (fun (a, _) (b, _) -> Float.compare a b) pts in
    (* Merge coincident abscissae. *)
    let rec merge acc = function
      | [] -> List.rev acc
      | (x, y) :: tl -> (
        match acc with
        | (x', y') :: _ when Float.abs (x -. x') <= x_eps ->
          if F.approx y y' then merge acc tl
          else
            invalid_arg
              (Printf.sprintf
                 "Pwl.create: conflicting values %g and %g at x = %g" y' y x)
        | _ -> merge ((x, y) :: acc) tl)
    in
    of_points_unchecked (merge [] sorted)

let constant y = { xs = [| 0. |]; ys = [| y |] }
let zero = constant 0.

let breakpoints t = Array.to_list (Array.map2 (fun x y -> (x, y)) t.xs t.ys)

let first_x t = t.xs.(0)
let last_x t = t.xs.(Array.length t.xs - 1)
let is_constant t =
  let y0 = t.ys.(0) in
  Array.for_all (fun y -> F.approx y y0) t.ys

(* Index of the last breakpoint with xs.(i) <= x, or -1. *)
let seg_index t x =
  let n = Array.length t.xs in
  if x < t.xs.(0) then -1
  else if x >= t.xs.(n - 1) then n - 1
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    (* invariant: xs.(lo) <= x < xs.(hi) *)
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if t.xs.(mid) <= x then lo := mid else hi := mid
    done;
    !lo
  end

let eval t x =
  let n = Array.length t.xs in
  let i = seg_index t x in
  if i < 0 then t.ys.(0)
  else if i >= n - 1 then t.ys.(n - 1)
  else begin
    let x0 = t.xs.(i) and x1 = t.xs.(i + 1) in
    let y0 = t.ys.(i) and y1 = t.ys.(i + 1) in
    y0 +. ((y1 -. y0) *. (x -. x0) /. (x1 -. x0))
  end

let max_value t = Array.fold_left Float.max Float.neg_infinity t.ys
let min_value t = Array.fold_left Float.min Float.infinity t.ys

let extremum_on ~better interval t =
  let lo = Interval.lo interval and hi = Interval.hi interval in
  let acc = ref (better (eval t lo) (eval t hi)) in
  Array.iteri
    (fun i x -> if x >= lo && x <= hi then acc := better !acc t.ys.(i))
    t.xs;
  !acc

let max_on interval t = extremum_on ~better:Float.max interval t
let min_on interval t = extremum_on ~better:Float.min interval t

let support ?(eps = F.default_eps) t =
  let n = Array.length t.xs in
  let nonzero i = Float.abs t.ys.(i) > eps in
  let first = ref (-1) and last = ref (-1) in
  for i = 0 to n - 1 do
    if nonzero i then begin
      if !first < 0 then first := i;
      last := i
    end
  done;
  if !first < 0 then None
  else begin
    let lo = if !first > 0 then t.xs.(!first - 1) else t.xs.(0) in
    let hi = if !last < n - 1 then t.xs.(!last + 1) else t.xs.(n - 1) in
    Some (Interval.make lo hi)
  end

let map_y f t = { xs = Array.copy t.xs; ys = Array.map f t.ys }

let scale k t = map_y (fun y -> k *. y) t
let neg t = map_y (fun y -> -.y) t
let shift_y d t = map_y (fun y -> y +. d) t
let shift_x d t = { xs = Array.map (fun x -> x +. d) t.xs; ys = Array.copy t.ys }

(* Sorted union of the abscissae of two waveforms. *)
let merged_grid a b =
  let na = Array.length a.xs and nb = Array.length b.xs in
  let out = ref [] in
  let i = ref 0 and j = ref 0 in
  let push x =
    match !out with
    | x' :: _ when Float.abs (x -. x') <= x_eps -> ()
    | _ -> out := x :: !out
  in
  while !i < na || !j < nb do
    if !j >= nb || (!i < na && a.xs.(!i) <= b.xs.(!j)) then begin
      push a.xs.(!i);
      incr i
    end
    else begin
      push b.xs.(!j);
      incr j
    end
  done;
  Array.of_list (List.rev !out)

let combine2 f a b =
  let grid = merged_grid a b in
  let pts =
    Array.to_list (Array.map (fun x -> (x, f (eval a x) (eval b x))) grid)
  in
  of_points_unchecked pts

let add a b = combine2 ( +. ) a b
let sub a b = combine2 ( -. ) a b

let sum = function
  | [] -> zero
  | w :: ws -> List.fold_left add w ws

(* Pointwise max/min need the crossing abscissae inserted: within one cell
   of the merged grid both functions are linear, so they cross at most
   once. *)
let extremum2 pickhi a b =
  let grid = merged_grid a b in
  let n = Array.length grid in
  let pts = ref [] in
  let push x y = pts := (x, y) :: !pts in
  let value x =
    let ya = eval a x and yb = eval b x in
    if pickhi then Float.max ya yb else Float.min ya yb
  in
  for i = 0 to n - 1 do
    let x = grid.(i) in
    push x (value x);
    if i < n - 1 then begin
      let x' = grid.(i + 1) in
      let d0 = eval a x -. eval b x and d1 = eval a x' -. eval b x' in
      if (d0 > 0. && d1 < 0.) || (d0 < 0. && d1 > 0.) then begin
        let xc = x +. ((x' -. x) *. d0 /. (d0 -. d1)) in
        if xc > x +. x_eps && xc < x' -. x_eps then push xc (value xc)
      end
    end
  done;
  of_points_unchecked (List.rev !pts)

let max2 a b = extremum2 true a b
let min2 a b = extremum2 false a b

let max_list = function
  | [] -> invalid_arg "Pwl.max_list: empty list"
  | w :: ws -> List.fold_left max2 w ws

let clip_min lo t = max2 t (constant lo)
let clip_max hi t = min2 t (constant hi)

let dominates ?(eps = F.default_eps) a b =
  (* Within each cell of the merged grid (a - b) is linear, so checking
     grid points suffices; constant extension is covered by the first and
     last grid points. *)
  let grid = merged_grid a b in
  Array.for_all (fun x -> eval a x >= eval b x -. eps) grid

let dominates_on ?(eps = F.default_eps) interval a b =
  let lo = Interval.lo interval and hi = Interval.hi interval in
  let ok x = eval a x >= eval b x -. eps in
  ok lo && ok hi
  && Array.for_all
       (fun x -> (x <= lo || x >= hi) || ok x)
       (merged_grid a b)

let equal ?(eps = F.default_eps) a b = dominates ~eps a b && dominates ~eps b a

let last_upcrossing t level =
  let n = Array.length t.xs in
  if t.ys.(n - 1) < level then None
  else begin
    (* rightmost index strictly below the level *)
    let rec find i = if i < 0 then None else if t.ys.(i) < level then Some i else find (i - 1) in
    match find (n - 1) with
    | None -> None (* never below: no upward crossing *)
    | Some i ->
      (* segment (i, i+1) rises through the level; i < n-1 because the
         last value is >= level. *)
      let x0 = t.xs.(i) and x1 = t.xs.(i + 1) in
      let y0 = t.ys.(i) and y1 = t.ys.(i + 1) in
      Some (x0 +. ((x1 -. x0) *. (level -. y0) /. (y1 -. y0)))
  end

let first_upcrossing t level =
  let n = Array.length t.xs in
  if t.ys.(0) >= level then None
  else begin
    let rec find i = if i >= n then None else if t.ys.(i) >= level then Some i else find (i + 1) in
    match find 1 with
    | None -> None
    | Some j ->
      let x0 = t.xs.(j - 1) and x1 = t.xs.(j) in
      let y0 = t.ys.(j - 1) and y1 = t.ys.(j) in
      if F.approx y1 y0 then Some x1
      else Some (x0 +. ((x1 -. x0) *. (level -. y0) /. (y1 -. y0)))
  end

let crossings t level =
  let n = Array.length t.xs in
  let out = ref [] in
  let push x =
    match !out with
    | x' :: _ when Float.abs (x -. x') <= x_eps -> ()
    | _ -> out := x :: !out
  in
  for i = 0 to n - 1 do
    if F.approx t.ys.(i) level then push t.xs.(i);
    if i < n - 1 then begin
      let d0 = t.ys.(i) -. level and d1 = t.ys.(i + 1) -. level in
      if (d0 > 0. && d1 < 0.) || (d0 < 0. && d1 > 0.) then
        push (t.xs.(i) +. ((t.xs.(i + 1) -. t.xs.(i)) *. d0 /. (d0 -. d1)))
    end
  done;
  List.rev !out

let is_unimodal ?(eps = F.default_eps) t =
  let n = Array.length t.ys in
  let rec go i seen_down =
    if i >= n - 1 then true
    else begin
      let dy = t.ys.(i + 1) -. t.ys.(i) in
      if dy > eps then (not seen_down) && go (i + 1) false
      else if dy < -.eps then go (i + 1) true
      else go (i + 1) seen_down
    end
  in
  go 0 false

let sliding_max ~window t =
  if window < 0. then invalid_arg "Pwl.sliding_max: negative window";
  if not (is_unimodal t) then
    invalid_arg "Pwl.sliding_max: waveform is not unimodal";
  if window <= x_eps then t
  else begin
    let n = Array.length t.xs in
    let peak = max_value t in
    (* first and last abscissae attaining the peak *)
    let xp_first = ref t.xs.(0) and xp_last = ref t.xs.(0) and found = ref false in
    for i = 0 to n - 1 do
      if F.approx t.ys.(i) peak then begin
        if not !found then xp_first := t.xs.(i);
        xp_last := t.xs.(i);
        found := true
      end
    done;
    let rising =
      List.filter (fun (x, _) -> x < !xp_first -. x_eps) (breakpoints t)
    in
    let falling =
      List.filter (fun (x, _) -> x > !xp_last +. x_eps) (breakpoints t)
      |> List.map (fun (x, y) -> (x +. window, y))
    in
    of_points_unchecked
      (rising @ [ (!xp_first, peak); (!xp_last +. window, peak) ] @ falling)
  end

let area t =
  let n = Array.length t.xs in
  let acc = ref 0. in
  for i = 0 to n - 2 do
    acc := !acc +. (0.5 *. (t.ys.(i) +. t.ys.(i + 1)) *. (t.xs.(i + 1) -. t.xs.(i)))
  done;
  !acc

let pp ppf t =
  Format.fprintf ppf "@[<h>pwl[";
  Array.iteri
    (fun i x ->
      if i > 0 then Format.fprintf ppf "; ";
      Format.fprintf ppf "(%g, %g)" x t.ys.(i))
    t.xs;
  Format.fprintf ppf "]@]"

let to_string t = Format.asprintf "%a" pp t
