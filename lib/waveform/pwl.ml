module F = Tka_util.Float_cmp
module Interval = Tka_util.Interval

(* A waveform is a slice of a flat arena buffer: breakpoint [i] lives
   interleaved at [buf.(off + 2i)] (abscissa) and [buf.(off + 2i + 1)]
   (ordinate), [len] counting breakpoints. Kernels allocate a
   worst-case slice from the domain-local {!Arena}, write the result,
   simplify in place and return the tail — so the merge kernels from
   PR 5 no longer allocate per-result arrays, and the (x, y) pairs a
   co-scan touches together sit on the same cache line.

   [peak] caches [max_value]; NaN means "not yet computed". Breakpoint
   construction rejects NaN ordinates, so the sentinel is unambiguous.
   The field is boxed (the record mixes float and int fields), so
   concurrent domains racing to fill it each store a word-sized pointer
   to the same deterministic value — a benign race. *)
type t = { buf : float array; off : int; len : int; mutable peak : float }

let mk buf off len = { buf; off; len; peak = Float.nan }

(* Breakpoint accessors; bare indexing everywhere else follows the same
   [off + 2i] / [off + 2i + 1] scheme on raw (buf, off) pairs. *)
let[@inline] gx t i = t.buf.(t.off + (2 * i))
let[@inline] gy t i = t.buf.(t.off + (2 * i) + 1)

(* Merge tolerance for abscissae: two breakpoints closer than this are
   considered the same instant. *)
let x_eps = 1e-12

let collinear x0 y0 x1 y1 x2 y2 =
  (* (x1,y1) lies on the segment (x0,y0)-(x2,y2)? Cross-product test with a
     scale-aware tolerance. *)
  let cross = ((x1 -. x0) *. (y2 -. y0)) -. ((x2 -. x0) *. (y1 -. y0)) in
  Float.abs cross <= 1e-12 *. (1. +. Float.abs (x2 -. x0)) *. (1. +. Float.abs y2 +. Float.abs y0)

(* In-place collinear simplification of the first [n] breakpoints of a
   slice: drops every interior point collinear with the last kept point
   and the next original point, returns the compacted length. The write
   cursor never passes the read cursor, so no scratch is needed. *)
let simplify_into buf off n =
  if n <= 2 then n
  else begin
    let x i = buf.(off + (2 * i)) and y i = buf.(off + (2 * i) + 1) in
    let w = ref 1 in
    for r = 1 to n - 2 do
      if not (collinear (x (!w - 1)) (y (!w - 1)) (x r) (y r) (x (r + 1)) (y (r + 1)))
      then begin
        buf.(off + (2 * !w)) <- x r;
        buf.(off + (2 * !w) + 1) <- y r;
        incr w
      end
    done;
    buf.(off + (2 * !w)) <- x (n - 1);
    buf.(off + (2 * !w) + 1) <- y (n - 1);
    incr w;
    !w
  end

(* Finish a kernel output: [n] valid breakpoints written into a slice
   allocated for [cap]; simplify in place, hand the tail back to the
   arena. *)
let finish buf off ~cap n =
  let n' = simplify_into buf off n in
  Arena.shrink_last buf off ~alloc:(2 * cap) ~used:(2 * n');
  mk buf off n'

let of_points_unchecked pts =
  match pts with
  | [] -> mk [||] 0 0
  | _ ->
    let n = List.length pts in
    let buf, off = Arena.alloc (2 * n) in
    let i = ref 0 in
    List.iter
      (fun (x, y) ->
        buf.(off + (2 * !i)) <- F.not_nan ~what:"Pwl: breakpoint abscissa" x;
        buf.(off + (2 * !i) + 1) <- F.not_nan ~what:"Pwl: breakpoint ordinate" y;
        incr i)
      pts;
    finish buf off ~cap:n n

let create pts =
  match pts with
  | [] -> invalid_arg "Pwl.create: empty point list"
  | _ :: _ ->
    let sorted = List.stable_sort (fun (a, _) (b, _) -> Float.compare a b) pts in
    (* Merge coincident abscissae. *)
    let rec merge acc = function
      | [] -> List.rev acc
      | (x, y) :: tl -> (
        match acc with
        | (x', y') :: _ when Float.abs (x -. x') <= x_eps ->
          if F.approx y y' then merge acc tl
          else
            invalid_arg
              (Printf.sprintf
                 "Pwl.create: conflicting values %g and %g at x = %g" y' y x)
        | _ -> merge ((x, y) :: acc) tl)
    in
    of_points_unchecked (merge [] sorted)

(* Constants are the long-lived singletons ([zero] lives for the whole
   process): a private exact array instead of an arena slice, so they
   pin no chunk. *)
let constant y = mk [| 0.; F.not_nan ~what:"Pwl.constant" y |] 0 1

let zero = constant 0.

let breakpoints t =
  let rec go i acc = if i < 0 then acc else go (i - 1) ((gx t i, gy t i) :: acc) in
  go (t.len - 1) []

let first_x t = gx t 0
let last_x t = gx t (t.len - 1)

let is_constant t =
  let y0 = gy t 0 in
  let ok = ref true in
  for i = 1 to t.len - 1 do
    if not (F.approx (gy t i) y0) then ok := false
  done;
  !ok

(* Index of the last breakpoint with x_i <= x, or -1. *)
let seg_index t x =
  let n = t.len in
  if x < gx t 0 then -1
  else if x >= gx t (n - 1) then n - 1
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    (* invariant: x_lo <= x < x_hi *)
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if gx t mid <= x then lo := mid else hi := mid
    done;
    !lo
  end

let eval t x =
  let n = t.len in
  let i = seg_index t x in
  if i < 0 then gy t 0
  else if i >= n - 1 then gy t (n - 1)
  else begin
    let x0 = gx t i and x1 = gx t (i + 1) in
    let y0 = gy t i and y1 = gy t (i + 1) in
    y0 +. ((y1 -. y0) *. (x -. x0) /. (x1 -. x0))
  end

let max_value t =
  if Float.is_nan t.peak then begin
    let m = ref (gy t 0) in
    for i = 1 to t.len - 1 do
      let y = gy t i in
      if y > !m then m := y
    done;
    t.peak <- !m
  end;
  t.peak

let min_value t =
  let m = ref (gy t 0) in
  for i = 1 to t.len - 1 do
    let y = gy t i in
    if y < !m then m := y
  done;
  !m

let extremum_on ~better interval t =
  let lo = Interval.lo interval and hi = Interval.hi interval in
  let acc = ref (better (eval t lo) (eval t hi)) in
  for i = 0 to t.len - 1 do
    let x = gx t i in
    if x >= lo && x <= hi then acc := better !acc (gy t i)
  done;
  !acc

let max_on interval t = extremum_on ~better:Float.max interval t
let min_on interval t = extremum_on ~better:Float.min interval t

let support ?(eps = F.default_eps) t =
  let n = t.len in
  let nonzero i = Float.abs (gy t i) > eps in
  let first = ref (-1) and last = ref (-1) in
  for i = 0 to n - 1 do
    if nonzero i then begin
      if !first < 0 then first := i;
      last := i
    end
  done;
  if !first < 0 then None
  else begin
    let lo = if !first > 0 then gx t (!first - 1) else gx t 0 in
    let hi = if !last < n - 1 then gx t (!last + 1) else gx t (n - 1) in
    Some (Interval.make lo hi)
  end

let map_y f t =
  let n = t.len in
  let buf, off = Arena.alloc (2 * n) in
  for i = 0 to n - 1 do
    buf.(off + (2 * i)) <- gx t i;
    buf.(off + (2 * i) + 1) <- f (gy t i)
  done;
  mk buf off n

let scale k t = map_y (fun y -> k *. y) t
let neg t = map_y (fun y -> -.y) t
let shift_y d t = map_y (fun y -> y +. d) t

let shift_x d t =
  (* the ordinates are untouched, so the cached peak carries over *)
  let n = t.len in
  let buf, off = Arena.alloc (2 * n) in
  for i = 0 to n - 1 do
    buf.(off + (2 * i)) <- gx t i +. d;
    buf.(off + (2 * i) + 1) <- gy t i
  done;
  { buf; off; len = n; peak = t.peak }

(* ------------------------------------------------------------------ *)
(* Linear-merge kernels                                               *)
(* ------------------------------------------------------------------ *)
(* Every binary operation below walks the two breakpoint slices with a
   pair of cursors in a single pass — the output is written straight
   into one arena slice. Invariants of the co-scan:
     - merged abscissae are visited in non-decreasing order, deduped
       within [x_eps] (the first of a cluster wins, as in the previous
       merged-grid construction);
     - when the scan stands at x, each operand's cursor [i] is the
       index of its first breakpoint with x_i >= x, so the value at
       x is y_i on an exact hit and the (i-1, i) segment
       interpolation otherwise — bit-identical to [eval]. *)

(* Value of the slice (buf, off, n) at [x] given cursor [i] = first
   index with x_i >= x (n when exhausted). Same formula as [eval]. *)
let value_at buf off n i x =
  if i < n && buf.(off + (2 * i)) = x then buf.(off + (2 * i) + 1)
  else if i = 0 then buf.(off + 1)
  else if i >= n then buf.(off + (2 * (n - 1)) + 1)
  else begin
    let x0 = buf.(off + (2 * (i - 1))) and x1 = buf.(off + (2 * i)) in
    let y0 = buf.(off + (2 * (i - 1)) + 1) and y1 = buf.(off + (2 * i) + 1) in
    y0 +. ((y1 -. y0) *. (x -. x0) /. (x1 -. x0))
  end

(* Two-cursor co-scan of [a] and [b]: calls [f x ya yb] at every merged
   abscissa; [f] returns [false] to stop the scan early. *)
let co_scan2 a b f =
  let ab = a.buf and ao = a.off and na = a.len in
  let bb = b.buf and bo = b.off and nb = b.len in
  let i = ref 0 and j = ref 0 in
  let last = ref Float.neg_infinity in
  let go = ref true in
  while !go && (!i < na || !j < nb) do
    let xa = if !i < na then ab.(ao + (2 * !i)) else Float.infinity
    and xb = if !j < nb then bb.(bo + (2 * !j)) else Float.infinity in
    if xa <= xb then begin
      if xa -. !last > x_eps then begin
        go := f xa ab.(ao + (2 * !i) + 1) (value_at bb bo nb !j xa);
        last := xa
      end;
      incr i
    end
    else begin
      if xb -. !last > x_eps then begin
        go := f xb (value_at ab ao na !i xb) bb.(bo + (2 * !j) + 1);
        last := xb
      end;
      incr j
    end
  done

let combine2 f a b =
  let cap = a.len + b.len in
  let buf, off = Arena.alloc (2 * cap) in
  let m = ref 0 in
  co_scan2 a b (fun x ya yb ->
      buf.(off + (2 * !m)) <- x;
      buf.(off + (2 * !m) + 1) <- f ya yb;
      incr m;
      true);
  finish buf off ~cap !m

let add a b = combine2 ( +. ) a b
let sub a b = combine2 ( -. ) a b

(* k-way superposition: one pass over the union of all operand
   breakpoints with an index-array cursor front. Combining r envelopes
   costs O(total breakpoints * r) cursor work and allocates only the
   output slice, against the former left fold's O(r^2 * n) re-merges,
   each allocating an intermediate waveform. The operand count is tiny
   (<= k ~ 75 aggressors), so a linear min-scan beats a heap. *)
let sum = function
  | [] -> zero
  | [ w ] -> w
  | ws ->
    let ops = Array.of_list ws in
    let r = Array.length ops in
    let idx = Array.make r 0 in
    let cap = Array.fold_left (fun acc o -> acc + o.len) 0 ops in
    let buf, off = Arena.alloc (2 * cap) in
    let m = ref 0 in
    let last = ref Float.neg_infinity in
    let go = ref true in
    while !go do
      (* front: smallest unconsumed breakpoint across the operands *)
      let x = ref Float.infinity in
      for c = 0 to r - 1 do
        let o = ops.(c) in
        if idx.(c) < o.len && gx o idx.(c) < !x then x := gx o idx.(c)
      done;
      let x = !x in
      if x = Float.infinity then go := false
      else begin
        if x -. !last > x_eps then begin
          let acc = ref 0. in
          for c = 0 to r - 1 do
            let o = ops.(c) in
            acc := !acc +. value_at o.buf o.off o.len idx.(c) x
          done;
          buf.(off + (2 * !m)) <- x;
          buf.(off + (2 * !m) + 1) <- !acc;
          incr m;
          last := x
        end;
        for c = 0 to r - 1 do
          let o = ops.(c) in
          if idx.(c) < o.len && gx o idx.(c) = x then idx.(c) <- idx.(c) + 1
        done
      end
    done;
    finish buf off ~cap !m

(* Pointwise max/min need the crossing abscissae inserted: within one
   cell of the co-scan both functions are linear, so they cross at most
   once. Each merged point plus at most one crossing per cell bounds
   the output by 2 * (na + nb). *)
let extremum2 pickhi a b =
  let cap = 2 * (a.len + b.len) in
  let buf, off = Arena.alloc (2 * cap) in
  let m = ref 0 in
  let px = ref 0. and pya = ref 0. and pyb = ref 0. in
  let have_prev = ref false in
  co_scan2 a b (fun x ya yb ->
      if !have_prev then begin
        let d0 = !pya -. !pyb and d1 = ya -. yb in
        if (d0 > 0. && d1 < 0.) || (d0 < 0. && d1 > 0.) then begin
          let xc = !px +. ((x -. !px) *. d0 /. (d0 -. d1)) in
          if xc > !px +. x_eps && xc < x -. x_eps then begin
            let s = (xc -. !px) /. (x -. !px) in
            let yac = !pya +. ((ya -. !pya) *. s)
            and ybc = !pyb +. ((yb -. !pyb) *. s) in
            buf.(off + (2 * !m)) <- xc;
            buf.(off + (2 * !m) + 1) <-
              (if pickhi then Float.max yac ybc else Float.min yac ybc);
            incr m
          end
        end
      end;
      buf.(off + (2 * !m)) <- x;
      buf.(off + (2 * !m) + 1) <- (if pickhi then Float.max ya yb else Float.min ya yb);
      incr m;
      px := x;
      pya := ya;
      pyb := yb;
      have_prev := true;
      true);
  finish buf off ~cap !m

let max2 a b = extremum2 true a b
let min2 a b = extremum2 false a b

(* Balanced pairwise reduction: log k rounds of two-cursor merges,
   O(total breakpoints * log k) instead of the left fold's O(k^2 * n)
   re-merges of an ever-growing accumulator. *)
let max_list = function
  | [] -> invalid_arg "Pwl.max_list: empty list"
  | ws ->
    let rec pair = function
      | a :: b :: tl -> max2 a b :: pair tl
      | rest -> rest
    in
    let rec round = function [ w ] -> w | ws -> round (pair ws) in
    round ws

let clip_min lo t = max2 t (constant lo)
let clip_max hi t = min2 t (constant hi)

let dominates ?(eps = F.default_eps) a b =
  (* Within each cell of the co-scan (a - b) is linear, so checking the
     merged abscissae suffices; constant extension is covered by the
     first and last of them. The peak comparison is a free O(1)
     rejection: if b's supremum clears a's by more than eps, a cannot
     dominate at b's argmax. The scan stops at the first violation —
     this is the hot inner loop of [Ilist.prune]. *)
  a == b
  || max_value a >= max_value b -. eps
     && begin
          let ok = ref true in
          co_scan2 a b (fun _ ya yb ->
              if ya >= yb -. eps then true
              else begin
                ok := false;
                false
              end);
          !ok
        end

let dominates_on ?(eps = F.default_eps) interval a b =
  let lo = Interval.lo interval and hi = Interval.hi interval in
  let ok x = eval a x >= eval b x -. eps in
  ok lo && ok hi
  && begin
       (* interior merged points only; the scan is ascending, so stop
          once past [hi] *)
       let good = ref true in
       co_scan2 a b (fun x ya yb ->
           if x <= lo then true
           else if x >= hi then false
           else if ya >= yb -. eps then true
           else begin
             good := false;
             false
           end);
       !good
     end

let equal ?(eps = F.default_eps) a b = dominates ~eps a b && dominates ~eps b a

let last_upcrossing t level =
  let n = t.len in
  if gy t (n - 1) < level then None
  else begin
    (* rightmost index strictly below the level *)
    let rec find i =
      if i < 0 then None else if gy t i < level then Some i else find (i - 1)
    in
    match find (n - 1) with
    | None -> None (* never below: no upward crossing *)
    | Some i ->
      (* segment (i, i+1) rises through the level; i < n-1 because the
         last value is >= level. *)
      let x0 = gx t i and x1 = gx t (i + 1) in
      let y0 = gy t i and y1 = gy t (i + 1) in
      Some (x0 +. ((x1 -. x0) *. (level -. y0) /. (y1 -. y0)))
  end

let first_upcrossing t level =
  let n = t.len in
  if gy t 0 >= level then None
  else begin
    let rec find i =
      if i >= n then None else if gy t i >= level then Some i else find (i + 1)
    in
    match find 1 with
    | None -> None
    | Some j ->
      let x0 = gx t (j - 1) and x1 = gx t j in
      let y0 = gy t (j - 1) and y1 = gy t j in
      if F.approx y1 y0 then Some x1
      else Some (x0 +. ((x1 -. x0) *. (level -. y0) /. (y1 -. y0)))
  end

let crossings t level =
  let n = t.len in
  let out = ref [] in
  let push x =
    match !out with
    | x' :: _ when Float.abs (x -. x') <= x_eps -> ()
    | _ -> out := x :: !out
  in
  for i = 0 to n - 1 do
    if F.approx (gy t i) level then push (gx t i);
    if i < n - 1 then begin
      let d0 = gy t i -. level and d1 = gy t (i + 1) -. level in
      if (d0 > 0. && d1 < 0.) || (d0 < 0. && d1 > 0.) then
        push (gx t i +. ((gx t (i + 1) -. gx t i) *. d0 /. (d0 -. d1)))
    end
  done;
  List.rev !out

let is_unimodal ?(eps = F.default_eps) t =
  let n = t.len in
  let rec go i seen_down =
    if i >= n - 1 then true
    else begin
      let dy = gy t (i + 1) -. gy t i in
      if dy > eps then (not seen_down) && go (i + 1) false
      else if dy < -.eps then go (i + 1) true
      else go (i + 1) seen_down
    end
  in
  go 0 false

let sliding_max ~window t =
  if window < 0. then invalid_arg "Pwl.sliding_max: negative window";
  if not (is_unimodal t) then
    invalid_arg "Pwl.sliding_max: waveform is not unimodal";
  if window <= x_eps then t
  else begin
    let n = t.len in
    let peak = max_value t in
    (* first and last abscissae attaining the peak *)
    let xp_first = ref (gx t 0) and xp_last = ref (gx t 0) and found = ref false in
    for i = 0 to n - 1 do
      if F.approx (gy t i) peak then begin
        if not !found then xp_first := gx t i;
        xp_last := gx t i;
        found := true
      end
    done;
    let rising =
      List.filter (fun (x, _) -> x < !xp_first -. x_eps) (breakpoints t)
    in
    let falling =
      List.filter (fun (x, _) -> x > !xp_last +. x_eps) (breakpoints t)
      |> List.map (fun (x, y) -> (x +. window, y))
    in
    of_points_unchecked
      (rising @ [ (!xp_first, peak); (!xp_last +. window, peak) ] @ falling)
  end

let area t =
  let n = t.len in
  let acc = ref 0. in
  for i = 0 to n - 2 do
    acc := !acc +. (0.5 *. (gy t i +. gy t (i + 1)) *. (gx t (i + 1) -. gx t i))
  done;
  !acc

let pp ppf t =
  Format.fprintf ppf "@[<h>pwl[";
  for i = 0 to t.len - 1 do
    if i > 0 then Format.fprintf ppf "; ";
    Format.fprintf ppf "(%g, %g)" (gx t i) (gy t i)
  done;
  Format.fprintf ppf "]@]"

let to_string t = Format.asprintf "%a" pp t
