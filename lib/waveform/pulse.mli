(** Crosstalk noise pulses.

    A noise pulse is the voltage disturbance coupled onto a quiet (or
    switching) victim by a single aggressor transition at a known time.
    In the linear (Thevenin) framework it is well approximated by a
    unimodal PWL bump: a rise over the aggressor transition time followed
    by an exponential-like decay through the victim driver's holding
    resistance, which we linearise as a two-segment PWL tail.

    The pulse is anchored at the aggressor transition: [onset] is the
    time the aggressor transition begins. *)

type t = private {
  onset : float;  (** time the disturbance starts *)
  peak : float;  (** peak magnitude, in Vdd units, > 0 *)
  rise : float;  (** time from onset to peak, > 0 *)
  decay : float;  (** time constant of the tail, > 0 *)
}

val make : onset:float -> peak:float -> rise:float -> decay:float -> t
(** Raises [Invalid_argument] on non-positive [peak], [rise] or
    [decay]. *)

val waveform : t -> Pwl.t
(** Unimodal PWL: 0 at [onset]; [peak] at [onset + rise]; piecewise
    linear tail dropping to [peak/2] after one [decay] constant and to 0
    after three; 0 afterwards. Always satisfies [Pwl.is_unimodal]. *)

val peak_time : t -> float
(** [onset + rise]. *)

val end_time : t -> float
(** Time the PWL tail reaches zero, [onset + rise + 3 * decay]. *)

val width_at : float -> t -> float
(** [width_at level p]: length of time the pulse exceeds [level *. peak]
    (0 < level < 1). *)

val shift : float -> t -> t

val scale : float -> t -> t
(** Scale the peak magnitude by a positive factor. *)

val pp : Format.formatter -> t -> unit
