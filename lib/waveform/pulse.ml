type t = { onset : float; peak : float; rise : float; decay : float }

let make ~onset ~peak ~rise ~decay =
  if peak <= 0. then invalid_arg "Pulse.make: peak must be positive";
  if rise <= 0. then invalid_arg "Pulse.make: rise must be positive";
  if decay <= 0. then invalid_arg "Pulse.make: decay must be positive";
  { onset; peak; rise; decay }

let peak_time p = p.onset +. p.rise
let end_time p = p.onset +. p.rise +. (3. *. p.decay)

let waveform p =
  (* Two-segment linearisation of the exponential tail: half the peak one
     time constant after the peak, zero after three. *)
  Pwl.create
    [
      (p.onset, 0.);
      (peak_time p, p.peak);
      (peak_time p +. p.decay, p.peak /. 2.);
      (end_time p, 0.);
    ]

let width_at level p =
  if level <= 0. || level >= 1. then invalid_arg "Pulse.width_at: level outside (0,1)";
  let w = waveform p in
  match (Pwl.first_upcrossing w (level *. p.peak), Pwl.crossings w (level *. p.peak)) with
  | Some first, crossings -> (
    match List.rev crossings with
    | last :: _ -> last -. first
    | [] -> 0.)
  | None, _ -> 0.

let shift d p = { p with onset = p.onset +. d }

let scale k p =
  if k <= 0. then invalid_arg "Pulse.scale: factor must be positive";
  { p with peak = k *. p.peak }

let pp ppf p =
  Format.fprintf ppf "pulse(onset=%g, peak=%g, rise=%g, decay=%g)" p.onset
    p.peak p.rise p.decay
