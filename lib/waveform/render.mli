(** Waveform rendering for debugging and reports.

    Noise-envelope bugs are geometric; being able to {e look} at a
    waveform beats staring at breakpoint lists. This module renders PWL
    waveforms as terminal ASCII plots and as CSV for external plotting.
    Used by the examples and handy in a toplevel. *)

val ascii :
  ?width:int ->
  ?height:int ->
  ?range:Tka_util.Interval.t ->
  (string * Pwl.t) list ->
  string
(** [ascii series] plots the labelled waveforms on one grid
    (default 72x16 characters over the union of their breakpoint
    spans; [range] overrides the x span). Each series is drawn with
    its own glyph, listed in the legend line. Empty list returns "". *)

val csv : ?samples:int -> (string * Pwl.t) list -> string
(** [csv series] samples all series on a common uniform grid (default
    128 points over the union span) with a header row
    ["t,<label>,..."]. *)
