(** Domain-local flat float arenas for PWL breakpoint slices.

    {!Pwl.t} values are (buffer, offset, length) slices of bump-allocated
    chunks handed out here; a kernel allocates a worst-case slice, writes
    its result, and returns the unused tail with {!shrink_last}. Chunks
    are plain float arrays referenced only through the slices, so memory
    comes back via the GC when an analysis drops its waveforms.

    Lifetime rule: no slice may escape the analysis that allocated it —
    an escaping slice pins its entire chunk (see docs/performance.md,
    "scaling"). *)

val alloc : int -> float array * int
(** [alloc n] returns [(buf, off)] with [n] floats available at
    [buf.(off) .. buf.(off + n - 1)]. The floats are not cleared —
    a slice reusing a {!shrink_last}-returned tail can hold stale
    values, so write before reading. Requests too large for a chunk get
    a dedicated exact array. *)

val shrink_last : float array -> int -> alloc:int -> used:int -> unit
(** [shrink_last buf off ~alloc ~used] returns the tail of the most
    recent allocation to the current chunk ([used <= alloc] floats
    kept). A no-op when the allocation is not the chunk's latest (or
    was a dedicated array) — the tail is then merely wasted, never
    reused. *)
