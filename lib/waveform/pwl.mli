(** Exact piecewise-linear functions of time.

    A value represents a total function [f : R -> R] given by breakpoints
    [(x_i, y_i)] with strictly increasing [x_i], linear interpolation
    between consecutive breakpoints, and constant extension beyond both
    ends ([f x = y_0] for [x <= x_0], [f x = y_n] for [x >= x_n]).

    All waveform objects of the noise analysis — transitions, noise
    pulses, trapezoidal noise envelopes, combined envelopes, noisy
    transitions — live in this algebra, and every operation below is
    exact (no sampling), which makes dominance checks and delay-noise
    [t50] computations exact as well.

    The binary and n-ary operations ({!add}, {!sub}, {!sum}, {!max2},
    {!dominates}, …) are single-pass cursor merges over the breakpoint
    arrays: no intermediate merged grid is allocated and no per-point
    binary search is performed (see docs/performance.md for the kernel
    design). Breakpoints are rejected when NaN; {!max_value} is
    memoised per waveform. *)

type t

(** {1 Construction} *)

val create : (float * float) list -> t
(** [create pts] builds the PWL through [pts]. Points are sorted;
    duplicate abscissae (within tolerance) must carry equal ordinates or
    [Invalid_argument] is raised. The list must be non-empty. Collinear
    interior points are simplified away. *)

val constant : float -> t
(** The constant function. Raises [Invalid_argument] on NaN. *)

val zero : t

(** {1 Observation} *)

val eval : t -> float -> float
(** [eval f x]: exact value at [x] (binary search + interpolation). *)

val breakpoints : t -> (float * float) list
(** Simplified breakpoint list, strictly increasing in x. *)

val first_x : t -> float
val last_x : t -> float

val is_constant : t -> bool

val max_value : t -> float
(** Supremum of [f] (attained at a breakpoint or at infinity = end
    values). Memoised: O(n) the first time, O(1) after. *)

val min_value : t -> float

val max_on : Tka_util.Interval.t -> t -> float
(** Maximum over a closed interval. *)

val min_on : Tka_util.Interval.t -> t -> float

val support : ?eps:float -> t -> Tka_util.Interval.t option
(** Smallest interval outside which [|f| <= eps], or [None] when [f] is
    (tolerantly) zero everywhere. Meaningful for pulse-like functions
    whose end values are zero. *)

(** {1 Pointwise arithmetic} *)

val scale : float -> t -> t
val neg : t -> t
val shift_x : float -> t -> t
val shift_y : float -> t -> t
val add : t -> t -> t
val sub : t -> t -> t

val sum : t list -> t
(** Pointwise sum of all operands in one k-way breakpoint merge
    (an index-array cursor front; no intermediate waveforms).
    [sum [] = zero]. *)

val max2 : t -> t -> t
(** Exact pointwise maximum (inserts crossing abscissae). *)

val min2 : t -> t -> t

val max_list : t list -> t
(** Pointwise maximum of a non-empty list, reduced as a balanced
    tournament of {!max2} merges (log k rounds). *)

val clip_min : float -> t -> t
(** [clip_min lo f] is [max f lo] pointwise. *)

val clip_max : float -> t -> t

(** {1 Comparison} *)

val dominates : ?eps:float -> t -> t -> bool
(** [dominates a b]: [a x >= b x - eps] for all [x]. This is the
    envelope-encapsulation test of the paper's dominance property.
    A two-cursor co-scan with a peak prefilter; returns at the first
    violated point. *)

val dominates_on : ?eps:float -> Tka_util.Interval.t -> t -> t -> bool
(** Same, restricted to a closed interval (the dominance interval of
    Section 3.2). *)

val equal : ?eps:float -> t -> t -> bool

(** {1 Crossings} *)

val last_upcrossing : t -> float -> float option
(** [last_upcrossing f level] is the largest [x] with [f x = level] and
    [f] below [level] immediately before [x], i.e. the final time the
    waveform rises through [level]. [None] if [f] never reaches [level]
    from below, or only sits at it. For a noisy rising transition this is
    the noisy [t50] when [level = 0.5]. *)

val first_upcrossing : t -> float -> float option

val crossings : t -> float -> float list
(** All crossing abscissae of [level], ascending. Intervals where [f]
    equals [level] exactly contribute their endpoints. *)

(** {1 Specials} *)

val sliding_max : window:float -> t -> t
(** [sliding_max ~window:w f] is [g x = max over s in \[0, w\] of f (x - s)]
    for [w >= 0] — the waveform swept over a time window, used to turn a
    noise pulse into the trapezoidal noise envelope of Fig. 2 of the
    paper. Requires [f] to be unimodal (non-decreasing then
    non-increasing); raises [Invalid_argument] otherwise. *)

val is_unimodal : ?eps:float -> t -> bool

val area : t -> float
(** Integral of [f] between its first and last breakpoints. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
