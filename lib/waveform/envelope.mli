(** Noise envelopes (Figures 2, 3, 5 and 6 of the paper).

    A noise envelope bounds the disturbance an aggressor — or a set of
    aggressors, or the noise propagated from a fanin cone — can couple
    onto a victim at each point in time, given the freedom the aggressor
    has to switch anywhere inside its timing window.

    Envelopes are non-negative PWL waveforms. The key operations are:

    - {!of_pulse}: sweep a single-switching noise pulse over the
      aggressor timing window, producing the trapezoidal envelope of
      Fig. 2 (leading edge of the pulse placed at EAT, flat top, trailing
      edge placed at LAT);
    - {!combine}: linear superposition of simultaneous aggressors
      (Fig. 3);
    - {!encapsulates}: the dominance test of Section 3.2;
    - {!delay_noise}: worst-case [t50] shift when the envelope is
      superimposed against the victim transition. *)

type t
(** A non-negative PWL disturbance bound. *)

val of_pulse : window:Tka_util.Interval.t -> Pulse.t -> t
(** [of_pulse ~window p] sweeps [p]'s waveform over switching times in
    [window] ([window] gives the possible onset times; [Interval.point]
    for a fixed switching time). *)

val of_waveform : Pwl.t -> t
(** Clips a PWL to be non-negative. Used for pseudo input aggressor
    envelopes, obtained as (noisy − noiseless) victim transitions. *)

val zero : t

val is_zero : t -> bool

val waveform : t -> Pwl.t

val combine : t list -> t
(** Pointwise sum (linear superposition). [combine [] = zero]. A single
    k-way merge over all operands' breakpoints — combining r envelopes
    costs one pass over their union grid, not r pairwise re-merges. *)

val add : t -> t -> t

val scale : float -> t -> t
(** [scale f e] de-rates the envelope by a factor [f] in [\[0, 1\]] —
    every ordinate multiplied by [f] ([f = 1] returns [e] itself).
    Used by the aggressor filter to discount couplings whose switching
    window only partially overlaps the victim's sensitive interval.
    Pointwise [scale f e <= e], so dominance and objectives computed
    from a de-rated envelope only ever shrink. Raises
    [Invalid_argument] outside [\[0, 1\]]. *)

val widen : float -> t -> t
(** [widen d e] extends the envelope as if the underlying aggressor's
    latest switching time increased by [d >= 0]: sliding-max over the
    extra window. Peak height is unchanged, width grows — exactly the
    higher-order aggressor construction of Section 3.3. Requires a
    unimodal envelope. *)

val peak : t -> float
(** Supremum of the envelope. Memoised inside the waveform: O(n) on the
    first call, O(1) after — [Ilist.prune]'s prefilter and {!is_zero}
    lean on this. *)

val encapsulates : ?interval:Tka_util.Interval.t -> t -> t -> bool
(** [encapsulates a b]: [a] is pointwise >= [b], over the given interval
    if any, else everywhere. [encapsulates a b] implies the delay noise
    of [a] is never below that of [b] (Theorem 1). *)

val delay_noise : victim:Transition.t -> t -> float
(** [delay_noise ~victim e]: increase of the victim's [t50] when [e] is
    subtracted from its normalised rising waveform (opposing-direction
    noise, the worst case for delay). Always >= 0; 0 when the envelope
    cannot move the crossing (e.g. ends before [t50]). *)

val noisy_waveform : victim:Transition.t -> t -> Pwl.t
(** The superposition [victim - e], clipped to [\[0, 1\]] below/above
    nothing — the raw subtracted waveform used by [delay_noise]. *)

val support : t -> Tka_util.Interval.t option

val equal : ?eps:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
