(** Switching transitions as saturated-ramp waveforms.

    A transition is characterised by its 50%-crossing time [t50], its
    transition time [slew] (0% to 100% of the linear ramp), and its
    direction. Voltages are normalised to [Vdd = 1]: a rising transition
    goes 0 -> 1, a falling one 1 -> 0.

    Noise analysis superimposes noise envelopes on these ramps; because
    delay noise on a rising victim is caused by noise pulling the node
    {e down} (and symmetrically for falling), the analysis is carried out
    in the "normalised rising" frame and [waveform] always produces the
    0 -> 1 ramp. The [direction] is kept for reporting. *)

type direction = Rising | Falling

type t = { t50 : float; slew : float; direction : direction }

val make : ?direction:direction -> t50:float -> slew:float -> unit -> t
(** [make ~t50 ~slew ()] with [slew > 0]. Default direction [Rising]. *)

val waveform : t -> Pwl.t
(** Normalised ramp: 0 before [t50 - slew/2], linear to 1 at
    [t50 + slew/2], 1 after. *)

val start_time : t -> float
(** [t50 - slew/2]. *)

val end_time : t -> float
(** [t50 + slew/2]. *)

val shift : float -> t -> t
(** Translate in time. *)

val t50_of_waveform : Pwl.t -> float option
(** Recover the (last) 50% crossing from a normalised waveform. *)

val pp : Format.formatter -> t -> unit
