(* Domain-local bump allocator backing PWL breakpoint storage.

   Each domain owns one current chunk (a plain float array) and a bump
   cursor; an allocation is a (buffer, offset) pair carved off the
   cursor. Chunks are referenced only by the slices cut from them, so
   when an analysis drops its waveforms the GC reclaims whole chunks at
   once — there is no free list and no explicit reset. A chunk that no
   longer fits a request is abandoned (still pinned by any live slices)
   and replaced.

   Lifetime rule (docs/performance.md): a slice must not outlive the
   analysis that allocated it; a single escaping slice pins its whole
   chunk. Long-lived singletons (e.g. [Pwl.constant]) therefore use
   exact private arrays instead of the arena.

   Domain-safety: the chunk state is in [Domain.DLS], so concurrent
   pool workers bump distinct chunks without synchronisation. Reading a
   finished slice from another domain is a plain float-array read,
   published by the pool's level barriers. *)

type chunk = { mutable buf : float array; mutable used : int }

(* 64k floats = 512 KiB per chunk: big enough that kernel outputs
   (tens to hundreds of floats) amortise the chunk allocation, small
   enough that an escaping slice pins little. *)
let chunk_floats = 1 lsl 16

(* Requests at least a quarter-chunk large get their own exact array:
   they would fragment chunks, and their size already amortises a
   dedicated allocation. *)
let large_threshold = chunk_floats / 4

let key = Domain.DLS.new_key (fun () -> { buf = [||]; used = 0 })

let alloc n =
  if n < 0 then invalid_arg "Arena.alloc: negative size";
  if n >= large_threshold then (Array.make n 0., 0)
  else begin
    let c = Domain.DLS.get key in
    if c.used + n > Array.length c.buf then begin
      c.buf <- Array.make chunk_floats 0.;
      c.used <- 0
    end;
    let off = c.used in
    c.used <- c.used + n;
    (c.buf, off)
  end

let shrink_last buf off ~alloc ~used =
  let c = Domain.DLS.get key in
  if buf == c.buf && off + alloc = c.used then c.used <- off + used
