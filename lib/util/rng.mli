(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic component of the library (benchmark circuit
    generation, placement jitter, property-test corpora) draws from this
    generator so that a given seed always reproduces the same circuit and
    therefore the same experimental tables. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator. Equal seeds give equal
    streams. *)

val copy : t -> t
(** [copy t] is an independent generator duplicating [t]'s state. *)

val split : t -> t
(** [split t] derives a new independent stream from [t], advancing [t].
    Used to give each subsystem (placement, routing, netlist shape) its
    own stream so adding draws in one does not perturb the others. *)

val bits64 : t -> int64
(** Next raw 64 bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val float_in : t -> float -> float -> float
(** [float_in t lo hi] is uniform in [\[lo, hi)]. *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance t p] is true with probability [p]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates shuffle. *)

val sample : t -> int -> 'a array -> 'a array
(** [sample t n arr] draws [n] distinct elements (n <= length). *)

val gaussian : t -> mean:float -> stddev:float -> float
(** Box–Muller normal deviate. *)
