(** Closed real intervals.

    Used for switching/timing windows ([EAT, LAT]) and for the dominance
    interval of Section 3.2 of the paper. An interval is always
    non-degenerate in representation: [lo <= hi]. *)

type t = private { lo : float; hi : float }

val make : float -> float -> t
(** [make lo hi]. Raises [Invalid_argument] if [lo > hi] (beyond
    tolerance) or if either bound is NaN; values within tolerance are
    snapped. Infinite bounds are allowed (open-ended windows). *)

val point : float -> t
(** Degenerate interval [\[x, x\]]. Raises [Invalid_argument] on NaN. *)

val lo : t -> float
val hi : t -> float

val width : t -> float
(** [hi - lo], always >= 0. *)

val mid : t -> float

val contains : t -> float -> bool
(** Membership with tolerance. *)

val subset : t -> t -> bool
(** [subset a b] is true when [a] lies inside [b] (with tolerance). *)

val overlaps : t -> t -> bool
(** True when the intersection is non-empty (closed intervals; touching
    endpoints overlap). *)

val intersect : t -> t -> t option

val overlap_fraction : t -> t -> float
(** Width of the intersection divided by the width of the {e narrower}
    operand, in [\[0, 1\]]: 0 when disjoint, 1 when one operand is
    contained in the other. Symmetric; degenerate (point) operands
    score 1 whenever {!overlaps} holds. The normalisation by the
    narrower width is what makes the measure symmetric — it answers
    "how much of the tighter window is usable", the quantity aggressor
    de-rating needs. *)

val hull : t -> t -> t
(** Smallest interval containing both. *)

val shift : float -> t -> t
(** Translate both endpoints. Raises [Invalid_argument] on a NaN
    distance. *)

val expand_hi : float -> t -> t
(** [expand_hi d t] extends the upper endpoint by [d >= 0]. This is how a
    higher-order aggressor's timing window grows when indirect aggressors
    add delay noise to its latest arrival. Raises [Invalid_argument] when
    [d] is negative or NaN. *)

val expand : float -> t -> t
(** Symmetric expansion of both endpoints by [d >= 0]. Raises
    [Invalid_argument] when [d] is negative or NaN. *)

val equal : ?eps:float -> t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
