let require_non_empty name = function
  | [] -> invalid_arg (name ^ ": empty list")
  | _ :: _ -> ()

let sum xs = List.fold_left ( +. ) 0. xs

let mean xs =
  require_non_empty "Stats.mean" xs;
  sum xs /. float_of_int (List.length xs)

let min_max xs =
  require_non_empty "Stats.min_max" xs;
  List.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (Float.infinity, Float.neg_infinity)
    xs

let stddev xs =
  require_non_empty "Stats.stddev" xs;
  let m = mean xs in
  let var = mean (List.map (fun x -> (x -. m) ** 2.) xs) in
  sqrt var

let sorted xs = List.sort Float.compare xs

let median xs =
  require_non_empty "Stats.median" xs;
  let arr = Array.of_list (sorted xs) in
  let n = Array.length arr in
  if n mod 2 = 1 then arr.(n / 2)
  else 0.5 *. (arr.((n / 2) - 1) +. arr.(n / 2))

let percentile p xs =
  require_non_empty "Stats.percentile" xs;
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p outside [0,100]";
  let arr = Array.of_list (sorted xs) in
  let n = Array.length arr in
  let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
  arr.(max 0 (min (n - 1) (rank - 1)))

let histogram ~bins xs =
  require_non_empty "Stats.histogram" xs;
  if bins <= 0 then invalid_arg "Stats.histogram: bins must be positive";
  let lo, hi = min_max xs in
  let span = if hi > lo then hi -. lo else 1. in
  let w = span /. float_of_int bins in
  let counts = Array.make bins 0 in
  let bucket x =
    let i = int_of_float ((x -. lo) /. w) in
    if i >= bins then bins - 1 else if i < 0 then 0 else i
  in
  List.iter (fun x -> counts.(bucket x) <- counts.(bucket x) + 1) xs;
  Array.mapi
    (fun i c ->
      let b_lo = lo +. (float_of_int i *. w) in
      (b_lo, b_lo +. w, c))
    counts
