type t = { lo : float; hi : float }

let make lo hi =
  if Float.is_nan lo || Float.is_nan hi then
    invalid_arg (Printf.sprintf "Interval.make: NaN bound (%g, %g)" lo hi)
  else if lo > hi then
    if Float_cmp.approx lo hi then { lo; hi = lo }
    else
      invalid_arg
        (Printf.sprintf "Interval.make: lo (%g) > hi (%g)" lo hi)
  else { lo; hi }

let point x =
  if Float.is_nan x then invalid_arg "Interval.point: NaN"
  else { lo = x; hi = x }
let lo t = t.lo
let hi t = t.hi
let width t = t.hi -. t.lo
let mid t = 0.5 *. (t.lo +. t.hi)

let contains t x = Float_cmp.geq x t.lo && Float_cmp.leq x t.hi

let subset a b = Float_cmp.geq a.lo b.lo && Float_cmp.leq a.hi b.hi

let overlaps a b = Float_cmp.leq a.lo b.hi && Float_cmp.leq b.lo a.hi

let intersect a b =
  let lo = Float.max a.lo b.lo and hi = Float.min a.hi b.hi in
  if Float_cmp.leq lo hi then Some (make (Float.min lo hi) (Float.max lo hi))
  else None

let hull a b = { lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi }

(* Shared overlap measure: |a ∩ b| normalised by the narrower operand,
   so the result is symmetric and a sub-interval scores 1. Degenerate
   operands (points) score 1 when they meet the other interval at all —
   a point either lies inside (full overlap of its zero width) or
   outside (none). *)
let overlap_fraction a b =
  if not (overlaps a b) then 0.
  else begin
    let w = Float.min (width a) (width b) in
    if w <= 0. then 1.
    else
      let ilo = Float.max a.lo b.lo and ihi = Float.min a.hi b.hi in
      Float.max 0. (Float.min 1. ((ihi -. ilo) /. w))
  end

let shift d t =
  if Float.is_nan d then invalid_arg "Interval.shift: NaN";
  { lo = t.lo +. d; hi = t.hi +. d }

(* [d < 0.] is false for NaN, so the negativity guards alone would wave
   a NaN through and poison both bounds — reject it explicitly. *)
let expand_hi d t =
  if not (d >= 0.) then invalid_arg "Interval.expand_hi: negative or NaN";
  { t with hi = t.hi +. d }

let expand d t =
  if not (d >= 0.) then invalid_arg "Interval.expand: negative or NaN";
  { lo = t.lo -. d; hi = t.hi +. d }

let equal ?eps a b = Float_cmp.approx ?eps a.lo b.lo && Float_cmp.approx ?eps a.hi b.hi

let compare a b =
  let c = Float.compare a.lo b.lo in
  if c <> 0 then c else Float.compare a.hi b.hi

let pp ppf t = Format.fprintf ppf "[%g, %g]" t.lo t.hi
let to_string t = Format.asprintf "%a" pp t
