type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = bits64 t in
  { state = mix64 s }

(* Non-negative 62-bit int from the top bits. *)
let bits_int t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  bits_int t mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: hi < lo";
  lo + int t (hi - lo + 1)

let unit_float t =
  (* 53 random bits scaled to [0,1). *)
  let u = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int u *. 0x1.0p-53

let float t bound = unit_float t *. bound

let float_in t lo hi = lo +. (unit_float t *. (hi -. lo))

let bool t = Int64.logand (bits64 t) 1L = 1L

let chance t p = unit_float t < p

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let pick_list t xs =
  match xs with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | _ :: _ -> List.nth xs (int t (List.length xs))

let shuffle_in_place t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample t n arr =
  if n < 0 || n > Array.length arr then invalid_arg "Rng.sample: bad count";
  let pool = Array.copy arr in
  shuffle_in_place t pool;
  Array.sub pool 0 n

let gaussian t ~mean ~stddev =
  let rec draw () =
    let u1 = unit_float t in
    if u1 <= 0. then draw ()
    else
      let u2 = unit_float t in
      mean +. (stddev *. sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2))
  in
  draw ()
