(** Fixed-capacity mutable bitsets over a dense integer universe.

    Built for the engine's per-victim primary-aggressor universe:
    membership, subset and intersection tests are straight word
    arithmetic over an int array, replacing id-list scans on the hot
    extension path. Not domain-safe under concurrent mutation; each
    bitset is owned by one enumeration. *)

type t

val make : int -> t
(** [make n] is the empty set over universe [0, n). *)

val capacity : t -> int

val set : t -> int -> unit
val unset : t -> int -> unit
val mem : t -> int -> bool

val clear : t -> unit
(** Remove every element (for scratch reuse). *)

val subset : t -> t -> bool
(** [subset a b]: every element of [a] is in [b]. Capacities must
    match. *)

val intersects : t -> t -> bool
(** [intersects a b]: the sets share at least one element. Capacities
    must match. *)

val is_empty : t -> bool
val cardinal : t -> int
val iter : (int -> unit) -> t -> unit
