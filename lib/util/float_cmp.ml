let default_eps = 1e-9

let approx ?(eps = default_eps) a b = Float.abs (a -. b) <= eps
let leq ?(eps = default_eps) a b = a <= b +. eps
let geq ?(eps = default_eps) a b = a >= b -. eps
let lt ?(eps = default_eps) a b = a < b -. eps
let gt ?(eps = default_eps) a b = a > b +. eps
let is_zero ?eps x = approx ?eps x 0.

let clamp ~lo ~hi x =
  if x < lo then lo else if x > hi then hi else x

let compare_approx ?eps a b =
  if approx ?eps a b then 0 else compare a b
