let default_eps = 1e-9

(* [a = b] first: equal infinities must compare approx-equal even though
   [inf -. inf] is NaN. A NaN argument fails both branches, so approx
   involving NaN is always false (consistent with IEEE equality). *)
let approx ?(eps = default_eps) a b = a = b || Float.abs (a -. b) <= eps
let leq ?(eps = default_eps) a b = a <= b +. eps
let geq ?(eps = default_eps) a b = a >= b -. eps
let lt ?(eps = default_eps) a b = a < b -. eps
let gt ?(eps = default_eps) a b = a > b +. eps
let is_zero ?eps x = approx ?eps x 0.

let is_finite x = Float.is_finite x

let not_nan ~what x =
  if Float.is_nan x then invalid_arg (what ^ ": NaN") else x

let clamp ~lo ~hi x =
  if Float.is_nan x then
    invalid_arg "Float_cmp.clamp: NaN"
  else if x < lo then lo
  else if x > hi then hi
  else x

let compare_approx ?eps a b =
  if approx ?eps a b then 0 else compare a b
