(** Tolerant floating-point comparison.

    All waveform and timing quantities in this library are nanoseconds or
    normalised volts in roughly [1e-4, 1e2]; the default absolute
    tolerance of [1e-9] is far below any physically meaningful difference
    while absorbing accumulated PWL arithmetic error. *)

val default_eps : float
(** The library-wide absolute tolerance, [1e-9]. *)

val approx : ?eps:float -> float -> float -> bool
(** [approx a b] is true when [|a - b| <= eps] or [a = b] — the second
    disjunct makes equal infinities approx-equal (their difference is
    NaN). Any comparison involving NaN is false. *)

val leq : ?eps:float -> float -> float -> bool
(** [leq a b] is [a <= b + eps]. *)

val geq : ?eps:float -> float -> float -> bool
(** [geq a b] is [a >= b - eps]. *)

val lt : ?eps:float -> float -> float -> bool
(** [lt a b] is [a < b - eps] (strictly less beyond tolerance). *)

val gt : ?eps:float -> float -> float -> bool
(** [gt a b] is [a > b + eps]. *)

val is_zero : ?eps:float -> float -> bool
(** [is_zero x] is [approx x 0.]. *)

val is_finite : float -> bool
(** Neither NaN nor an infinity — the validity test parsers apply to
    every physical quantity before it enters the analysis. *)

val not_nan : what:string -> float -> float
(** [not_nan ~what x] is [x], or raises [Invalid_argument what ^ ": NaN"]
    when [x] is NaN — the guard waveform constructors apply to every
    breakpoint coordinate. *)

val clamp : lo:float -> hi:float -> float -> float
(** [clamp ~lo ~hi x] restricts [x] to [\[lo, hi\]]. Raises
    [Invalid_argument] on a NaN [x] (a silently propagated NaN defeated
    the clamp's purpose downstream; see the fuzz harness notes in
    [docs/verification.md]). *)

val compare_approx : ?eps:float -> float -> float -> int
(** Three-way comparison treating values within [eps] as equal. *)
