(** Small descriptive-statistics helpers for benchmark reporting. *)

val mean : float list -> float
(** Arithmetic mean; raises [Invalid_argument] on the empty list. *)

val min_max : float list -> float * float
(** Smallest and largest element; raises on the empty list. *)

val stddev : float list -> float
(** Population standard deviation; raises on the empty list. *)

val median : float list -> float

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [\[0,100\]], nearest-rank method. *)

val sum : float list -> float

val histogram : bins:int -> float list -> (float * float * int) array
(** [histogram ~bins xs] buckets [xs] into [bins] equal-width ranges;
    each entry is [(lo, hi, count)]. Raises on the empty list or
    non-positive [bins]. *)
