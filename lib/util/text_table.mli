(** Fixed-width text table rendering for benchmark reports.

    Used by [bench/main.exe] to print Table 1 / Table 2(a)(b) of the
    paper in a shape directly comparable with the published rows. *)

type align = Left | Right | Center

type t

val create : headers:(string * align) list -> t
(** A table with one column per header. *)

val add_row : t -> string list -> unit
(** Appends a row; must have exactly as many cells as headers. *)

val add_separator : t -> unit
(** Appends a horizontal rule row. *)

val render : t -> string
(** Renders with column widths fitted to content, e.g.

    {v
    | ckt | gates | delay |
    |-----+-------+-------|
    | i1  |    59 | 0.546 |
    v} *)

val cell_f : ?decimals:int -> float -> string
(** Formats a float cell, default 3 decimals. *)

val cell_i : int -> string
