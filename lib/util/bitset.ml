(* Fixed-capacity bitset over [0, n): an int array of 63-bit words.
   The engine uses these for membership and subset tests over the dense
   per-victim primary-aggressor universe, where the old representation
   scanned id lists — every operation below is O(n/63) straight-line
   word arithmetic with no allocation beyond [make]. *)

type t = { words : int array; n : int }

let bits_per_word = Sys.int_size (* 63 on 64-bit *)

let make n =
  if n < 0 then invalid_arg "Bitset.make: negative capacity";
  { words = Array.make ((n + bits_per_word - 1) / bits_per_word) 0; n }

let capacity t = t.n

let check t i =
  if i < 0 || i >= t.n then
    invalid_arg (Printf.sprintf "Bitset: index %d out of [0, %d)" i t.n)

let set t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl b)

let unset t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl b)

let mem t i =
  check t i;
  t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let clear t = Array.fill t.words 0 (Array.length t.words) 0

let same_capacity a b =
  if a.n <> b.n then invalid_arg "Bitset: capacity mismatch"

(* a ⊆ b *)
let subset a b =
  same_capacity a b;
  let ok = ref true in
  let i = ref 0 in
  let nw = Array.length a.words in
  while !ok && !i < nw do
    if a.words.(!i) land lnot b.words.(!i) <> 0 then ok := false;
    incr i
  done;
  !ok

let intersects a b =
  same_capacity a b;
  let hit = ref false in
  let i = ref 0 in
  let nw = Array.length a.words in
  while (not !hit) && !i < nw do
    if a.words.(!i) land b.words.(!i) <> 0 then hit := true;
    incr i
  done;
  !hit

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let cardinal t =
  let rec popcount w acc = if w = 0 then acc else popcount (w lsr 1) (acc + (w land 1)) in
  Array.fold_left (fun acc w -> popcount w acc) 0 t.words

let iter f t =
  for i = 0 to t.n - 1 do
    if t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0 then
      f i
  done
