type align = Left | Right | Center

type row = Cells of string list | Separator

type t = {
  headers : (string * align) list;
  mutable rows : row list; (* reversed *)
}

let create ~headers =
  if headers = [] then invalid_arg "Text_table.create: no columns";
  { headers; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Text_table.add_row: wrong number of cells";
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = width - n in
    match align with
    | Left -> s ^ String.make fill ' '
    | Right -> String.make fill ' ' ^ s
    | Center ->
      let left = fill / 2 in
      String.make left ' ' ^ s ^ String.make (fill - left) ' '

let render t =
  let rows = List.rev t.rows in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  let measure cells =
    List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cells
  in
  measure (List.map fst t.headers);
  List.iter (function Cells cs -> measure cs | Separator -> ()) rows;
  let aligns = List.map snd t.headers in
  let line cells =
    let padded =
      List.mapi (fun i (a, c) -> pad a widths.(i) c) (List.combine aligns cells)
    in
    "| " ^ String.concat " | " padded ^ " |"
  in
  let rule () =
    let bars = List.init ncols (fun i -> String.make (widths.(i) + 2) '-') in
    "|" ^ String.concat "+" bars ^ "|"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (line (List.map fst t.headers));
  Buffer.add_char buf '\n';
  Buffer.add_string buf (rule ());
  Buffer.add_char buf '\n';
  List.iter
    (fun r ->
      (match r with
      | Cells cs -> Buffer.add_string buf (line cs)
      | Separator -> Buffer.add_string buf (rule ()));
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let cell_f ?(decimals = 3) x = Printf.sprintf "%.*f" decimals x
let cell_i = string_of_int
