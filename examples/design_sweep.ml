(* Design-space sweep: how much of the total delay noise do the top-k
   aggressors capture (addition), and how much can k fixes recover
   (elimination)? Produces the CSV behind a Figure-10-style plot for a
   chosen benchmark.

     dune exec examples/design_sweep.exe            (defaults to i1, k <= 25)
     dune exec examples/design_sweep.exe -- i5 40 *)

module Topo = Tka_circuit.Topo
module B = Tka_layout.Benchmarks
module Addition = Tka_topk.Addition
module Elimination = Tka_topk.Elimination

let () =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some Logs.Warning);
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "i1" in
  let kmax = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 25 in
  let nl =
    match B.by_name name with
    | Some nl -> nl
    | None ->
      Printf.eprintf "unknown benchmark %S (expected i1..i10)\n" name;
      exit 1
  in
  let topo = Topo.create nl in
  let add = Addition.compute ~k:kmax topo in
  let elim = Elimination.compute ~k:kmax topo in
  let base = Addition.noiseless_delay add in
  let noisy = Addition.all_aggressor_delay add in
  Printf.printf "# %s: noiseless %.4f ns, all aggressors %.4f ns\n" name base noisy;
  Printf.printf
    "k,addition_delay_ns,addition_capture_pct,elimination_delay_ns,elimination_recovery_pct\n";
  let ks = List.init kmax (fun i -> i + 1) in
  let addc = Addition.evaluate_curve add ~ks in
  let elimc = Elimination.evaluate_curve elim ~ks in
  let total = noisy -. base in
  List.iter
    (fun k ->
      let find c = List.find_opt (fun (k', _, _) -> k' = k) c in
      match (find addc, find elimc) with
      | Some (_, _, da), Some (_, _, de) ->
        Printf.printf "%d,%.4f,%.1f,%.4f,%.1f\n" k da
          ((da -. base) /. total *. 100.)
          de
          ((noisy -. de) /. total *. 100.)
      | _ -> ())
    ks
