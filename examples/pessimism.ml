(* How pessimistic is the worst-case envelope bound? Monte-Carlo
   alignment sampling against the envelope worst case, per victim, on a
   generated benchmark — the analysis a signoff team runs before
   deciding how much guard-band to carry.

     dune exec examples/pessimism.exe            (defaults to i1)
     dune exec examples/pessimism.exe -- i3 500 *)

module N = Tka_circuit.Netlist
module Topo = Tka_circuit.Topo
module Analysis = Tka_sta.Analysis
module Mc = Tka_noise.Monte_carlo
module B = Tka_layout.Benchmarks

let () =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some Logs.Warning);
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "i1" in
  let samples = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 300 in
  let nl =
    match B.by_name name with
    | Some nl -> nl
    | None ->
      Printf.eprintf "unknown benchmark %S\n" name;
      exit 1
  in
  let topo = Topo.create nl in
  let a = Analysis.run topo in
  let windows = Analysis.window a in
  let rng = Tka_util.Rng.create 2026 in
  (* the ten victims with the largest worst-case bound *)
  let bounds =
    List.init (N.num_nets nl) (fun v ->
        ( v,
          Tka_noise.Victim_noise.delay_noise nl ~windows ~victim:v
            (Tka_noise.Coupled_noise.aggressors_of_victim nl v) ))
    |> List.filter (fun (_, b) -> b > 1e-6)
    |> List.sort (fun (_, x) (_, y) -> Float.compare y x)
    |> List.filteri (fun i _ -> i < 10)
  in
  Printf.printf
    "%s: %d sampled alignments per victim; bound = worst-case envelope\n\n"
    name samples;
  Printf.printf "%-12s %10s %10s %10s %10s %12s\n" "victim" "bound" "max" "p95"
    "mean" "pessimism";
  let ratios = ref [] in
  List.iter
    (fun (v, _) ->
      let s = Mc.sample_victim ~rng ~samples ~windows nl v in
      let pess = if s.Mc.mc_max > 0. then s.Mc.mc_bound /. s.Mc.mc_max else Float.nan in
      if s.Mc.mc_max > 0. then ratios := pess :: !ratios;
      Printf.printf "%-12s %10.4f %10.4f %10.4f %10.4f %11.2fx\n"
        (N.net nl v).N.net_name s.Mc.mc_bound s.Mc.mc_max s.Mc.mc_p95 s.Mc.mc_mean
        pess)
    bounds;
  (match !ratios with
  | [] -> ()
  | rs ->
    Printf.printf
      "\nThe bound is sound (every sample below it) and on these victims\n\
       overestimates the sampled worst case by %.2fx on average —\n\
       the price of guaranteed coverage of all alignments.\n"
      (Tka_util.Stats.mean rs))
