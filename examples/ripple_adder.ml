(* A complete industry-shaped flow on a hierarchical design:

     structural Verilog (full-adder modules, ripple-carry top)
       -> flatten                        (Verilog_lite)
       -> annotate parasitics+couplings  (Spef_lite)
       -> timing, noise, top-k           (the analyses)

   The carry chain is the critical path, and the coupling between
   adjacent carry wires is exactly where crosstalk hurts a ripple
   adder — the top-k set finds it.

     dune exec examples/ripple_adder.exe        (defaults to 4 bits) *)

module N = Tka_circuit.Netlist
module V = Tka_circuit.Verilog_lite
module Spef = Tka_circuit.Spef_lite
module Topo = Tka_circuit.Topo
module Lib = Tka_cell.Default_lib
module Iterate = Tka_noise.Iterate
module Addition = Tka_topk.Addition
module Report = Tka_topk.Report

let full_adder_module =
  {|
module full_adder (a, b, cin, s, cout);
  input a, b, cin;
  output s, cout;
  wire axb, g1, g2;
  XOR2_X1 x1 (.A(a), .B(b), .Y(axb));
  XOR2_X1 x2 (.A(axb), .B(cin), .Y(s));
  AND2_X1 a1 (.A(axb), .B(cin), .Y(g1));
  AND2_X1 a2 (.A(a), .B(b), .Y(g2));
  OR2_X1  o1 (.A(g1), .B(g2), .Y(cout));
endmodule
|}

let ripple_top bits =
  let buf = Buffer.create 1024 in
  let ports =
    List.concat
      [
        List.init bits (fun i -> Printf.sprintf "a%d" i);
        List.init bits (fun i -> Printf.sprintf "b%d" i);
        [ "cin" ];
        List.init bits (fun i -> Printf.sprintf "s%d" i);
        [ "cout" ];
      ]
  in
  Buffer.add_string buf
    (Printf.sprintf "module ripple (%s);\n" (String.concat ", " ports));
  Buffer.add_string buf
    (Printf.sprintf "  input %s, cin;\n"
       (String.concat ", "
          (List.init bits (fun i -> Printf.sprintf "a%d" i)
          @ List.init bits (fun i -> Printf.sprintf "b%d" i))));
  Buffer.add_string buf
    (Printf.sprintf "  output %s, cout;\n"
       (String.concat ", " (List.init bits (fun i -> Printf.sprintf "s%d" i))));
  if bits > 1 then
    Buffer.add_string buf
      (Printf.sprintf "  wire %s;\n"
         (String.concat ", " (List.init (bits - 1) (fun i -> Printf.sprintf "c%d" i))));
  for i = 0 to bits - 1 do
    let cin = if i = 0 then "cin" else Printf.sprintf "c%d" (i - 1) in
    let cout = if i = bits - 1 then "cout" else Printf.sprintf "c%d" i in
    Buffer.add_string buf
      (Printf.sprintf
         "  full_adder fa%d (.a(a%d), .b(b%d), .cin(%s), .s(s%d), .cout(%s));\n"
         i i i cin i cout)
  done;
  Buffer.add_string buf "endmodule\n";
  Buffer.contents buf

let () =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some Logs.Warning);
  let bits = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 4 in
  let verilog = full_adder_module ^ ripple_top bits in
  let flat = V.parse ~lookup:Lib.find verilog in
  Printf.printf "%d-bit ripple adder: flattened to %d gates, %d nets\n" bits
    (N.num_gates flat) (N.num_nets flat);

  (* couplings between adjacent carry wires and sum outputs, as a
     router packing the carry chain would create; the stage-i carry
     output is c<i> internally and "cout" on the last stage *)
  let carry_out i = if i = bits - 1 then "cout" else Printf.sprintf "c%d" i in
  let couplings =
    List.concat
      [
        List.init (bits - 1) (fun i -> (carry_out i, carry_out (i + 1), 0.0045));
        List.init (bits - 1) (fun i ->
            (Printf.sprintf "s%d" i, Printf.sprintf "s%d" (i + 1), 0.0030));
      ]
  in
  let annotated =
    Spef.apply { Spef.design = None; ground = []; couplings } flat
  in
  let topo = Topo.create annotated in
  let r = Iterate.run topo in
  Printf.printf "carry-chain delay: %.4f ns noiseless, %.4f ns with crosstalk\n\n"
    (Iterate.noiseless_delay r) (Iterate.circuit_delay r);

  let add = Addition.compute ~k:3 topo in
  print_string (Report.addition annotated add ~ks:[ 1; 2; 3 ]);
  print_newline ();
  print_string
    (Tka_sta.Report_timing.worst
       ~extra_delay:(Iterate.net_noise r)
       r.Iterate.analysis)
