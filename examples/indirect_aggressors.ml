(* Figure 1 of the paper: indirect aggressors. Noise from a2 widens the
   timing window of the primary aggressor a1, which in turn couples
   more delay noise onto the victim v1 — an effect that only appears
   across noise-analysis iterations.

     dune exec examples/indirect_aggressors.exe *)

module N = Tka_circuit.Netlist
module Builder = Tka_circuit.Builder
module Topo = Tka_circuit.Topo
module Iterate = Tka_noise.Iterate
module CN = Tka_noise.Coupled_noise
module Lib = Tka_cell.Default_lib

let build () =
  let b = Builder.create ~name:"fig1" () in
  let i1 = Builder.add_input b "i1" in
  let i2 = Builder.add_input b "i2" in
  let i3 = Builder.add_input b "i3" in
  let iv = Builder.add_input b "iv" in
  let a3 = Builder.add_net b ~wire_cap:0.001 "a3" in
  let a2 = Builder.add_net b ~wire_cap:0.001 "a2" in
  let a1 = Builder.add_net b ~wire_cap:0.001 "a1" in
  let v1 = Builder.add_net b ~wire_cap:0.001 "v1" in
  let x4 = Lib.find_exn "INV_X4" in
  ignore (Builder.add_gate b ~name:"ga3" ~cell:x4 ~inputs:[ ("A", i3) ] ~output:a3);
  ignore (Builder.add_gate b ~name:"ga2" ~cell:x4 ~inputs:[ ("A", i2) ] ~output:a2);
  ignore (Builder.add_gate b ~name:"ga1" ~cell:x4 ~inputs:[ ("A", i1) ] ~output:a1);
  ignore (Builder.add_gate b ~name:"gv1" ~cell:Lib.inverter ~inputs:[ ("A", iv) ] ~output:v1);
  List.iter (Builder.mark_output b) [ v1; a1; a2; a3 ];
  let c32 = Builder.add_coupling b a3 a2 0.008 in
  let c21 = Builder.add_coupling b a2 a1 0.008 in
  let c1v = Builder.add_coupling b a1 v1 0.008 in
  (Builder.finalize b, c32, c21, c1v)

let () =
  let nl, c32, c21, c1v = build () in
  let topo = Topo.create nl in
  let v1 = (N.find_net_exn nl "v1").N.net_id in
  let a1 = (N.find_net_exn nl "a1").N.net_id in
  let report label couplings =
    let r = Iterate.run ~active:(fun d -> List.mem d.CN.dc_coupling couplings) topo in
    Printf.printf "%-34s noise(v1) = %.5f ns, noise(a1) = %.5f ns, %d iterations\n"
      label (Iterate.net_noise r v1) (Iterate.net_noise r a1) r.Iterate.iterations
  in
  Printf.printf
    "coupling chain: a3 ~ a2 ~ a1 ~ v1 (victim v1, primary aggressor a1,\n\
     secondary a2, tertiary a3)\n\n";
  report "primary only (a1~v1):" [ c1v ];
  report "+ secondary (a2~a1):" [ c1v; c21 ];
  report "+ tertiary (a3~a2):" [ c1v; c21; c32 ];
  Printf.printf
    "\nThe secondary aggressor never touches v1, yet v1's delay noise grows:\n\
     a2's noise widens a1's switching window, and the wider envelope drags\n\
     v1's crossing further — the indirect-aggressor effect that makes the\n\
     top-k problem span transitive fanin cones.\n"
