(* Using your own cell library: write (or load) a Liberty-lite file,
   parse it, build a netlist against it, and run the analyses. The same
   flow works for a real PDK reduced to the linear model's four
   parameters per cell.

     dune exec examples/custom_library.exe *)

module Liberty = Tka_cell.Liberty_lite
module Cell = Tka_cell.Cell
module Builder = Tka_circuit.Builder
module Topo = Tka_circuit.Topo
module Iterate = Tka_noise.Iterate
module Report = Tka_topk.Report

(* A tiny two-cell library: a fast inverter and a slow, weak buffer
   whose victims will be the noise-sensitive ones. *)
let my_lib =
  {|
library(demo_pdk) {
  cell(FAST_INV) {
    intrinsic_delay : 0.010;
    drive_resistance : 0.6;
    intrinsic_slew : 0.008;
    slew_resistance : 0.7;
    function : "!A";
    pin(A) { direction : input; capacitance : 0.004; }
    pin(Y) { direction : output; }
  }
  cell(WEAK_BUF) {
    intrinsic_delay : 0.045;
    drive_resistance : 4.5;
    intrinsic_slew : 0.040;
    slew_resistance : 5.0;
    function : "A";
    pin(A) { direction : input; capacitance : 0.002; }
    pin(Y) { direction : output; }
  }
}
|}

let () =
  let lib = Liberty.parse my_lib in
  Printf.printf "parsed library %s with %d cells\n" lib.Liberty.library_name
    (List.length lib.Liberty.cells);
  let cell name = Option.get (Liberty.find lib name) in

  (* an aggressor driven by the fast inverter couples onto a victim
     driven by the weak buffer: the worst combination *)
  let b = Builder.create ~name:"pdk_demo" () in
  let ia = Builder.add_input b "ia" in
  let iv = Builder.add_input b "iv" in
  let agg = Builder.add_net b "agg" in
  let vic = Builder.add_net b "vic" in
  let out = Builder.add_net b "out" in
  ignore (Builder.add_gate b ~name:"u_agg" ~cell:(cell "FAST_INV") ~inputs:[ ("A", ia) ] ~output:agg);
  ignore (Builder.add_gate b ~name:"u_vic" ~cell:(cell "WEAK_BUF") ~inputs:[ ("A", iv) ] ~output:vic);
  ignore (Builder.add_gate b ~name:"u_out" ~cell:(cell "WEAK_BUF") ~inputs:[ ("A", vic) ] ~output:out);
  Builder.mark_output b out;
  Builder.mark_output b agg;
  ignore (Builder.add_coupling b agg vic 0.006);
  let nl = Builder.finalize b in
  let topo = Topo.create nl in

  let r = Iterate.run topo in
  Printf.printf "noiseless %.4f ns -> noisy %.4f ns (weak victim driver)\n"
    (Iterate.noiseless_delay r) (Iterate.circuit_delay r);

  (* upsizing the victim driver is the classic alternative fix to
     shielding: compare both *)
  let u_vic = (Option.get (Tka_circuit.Netlist.find_gate nl "u_vic")).Tka_circuit.Netlist.gate_id in
  let upsized =
    Tka_circuit.Transform.resize_driver nl u_vic (cell "FAST_INV")
  in
  let r2 = Iterate.run (Topo.create upsized) in
  Printf.printf "after upsizing the victim driver: noisy %.4f ns\n"
    (Iterate.circuit_delay r2);
  let shielded = Tka_circuit.Transform.remove_couplings nl [ 0 ] in
  let r3 = Iterate.run (Topo.create shielded) in
  Printf.printf "after shielding the coupling:     noisy %.4f ns\n"
    (Iterate.circuit_delay r3);

  print_newline ();
  let add = Tka_topk.Addition.compute ~k:2 topo in
  print_string (Report.addition nl add ~ks:[ 1; 2 ])
