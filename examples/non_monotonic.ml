(* Figure 4 of the paper: top-k aggressor sets are non-monotonic in
   content — the top-1 aggressor need not appear in the top-2 set.

   Aggressor a1 has the largest individual delay noise, but its window
   ends at the victim transition. Aggressors a2 and a3 are individually
   weaker; stacked, their combined envelope exceeds half the supply and
   rides the victim's crossing out along their later windows.

     dune exec examples/non_monotonic.exe *)

module Envelope = Tka_waveform.Envelope
module Pulse = Tka_waveform.Pulse
module Transition = Tka_waveform.Transition
module Interval = Tka_util.Interval
module VN = Tka_noise.Victim_noise

let () =
  let victim = Transition.make ~t50:1.0 ~slew:0.1 () in
  let noise label es =
    let d = VN.delay_noise_of_envelope ~victim (Envelope.combine es) in
    Printf.printf "  delay noise of %-10s = %.4f ns\n" label d;
    d
  in
  (* a1: tall pulse, window [0.6, 1.0] — ends at the victim transition *)
  let a1 =
    Envelope.of_pulse
      ~window:(Interval.make 0.6 1.0)
      (Pulse.make ~onset:0. ~peak:0.42 ~rise:0.02 ~decay:0.02)
  in
  (* a2, a3: smaller pulses, windows extending past the transition *)
  let late =
    Envelope.of_pulse
      ~window:(Interval.make 0.6 1.15)
      (Pulse.make ~onset:0. ~peak:0.30 ~rise:0.02 ~decay:0.02)
  in
  let a2 = late and a3 = late in
  Printf.printf "victim: rising transition, t50 = 1.0 ns, slew = 0.1 ns\n\n";
  Printf.printf "singletons:\n";
  let n1 = noise "{a1}" [ a1 ] in
  let n2 = noise "{a2}" [ a2 ] in
  let n3 = noise "{a3}" [ a3 ] in
  Printf.printf "\npairs:\n";
  let n12 = noise "{a1,a2}" [ a1; a2 ] in
  let n13 = noise "{a1,a3}" [ a1; a3 ] in
  let n23 = noise "{a2,a3}" [ a2; a3 ] in
  Printf.printf "\n";
  assert (n1 > n2 && n1 > n3);
  Printf.printf "top-1 aggressor set: {a1}   (a1 has the largest single noise)\n";
  assert (n23 > n12 && n23 > n13);
  Printf.printf "top-2 aggressor set: {a2,a3} — it does NOT contain a1!\n";
  Printf.printf
    "\nThe stacked a2+a3 envelope crosses 0.5*Vdd and drags the victim\n\
     crossing far beyond where any a1-pair can (%.4f vs %.4f ns):\n\
     adding an aggressor to the top-k set does not give the top-(k+1) set.\n"
    n23 (Float.max n12 n13)
