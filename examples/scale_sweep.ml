(* Scaling sweep over table2x circuits: generate synthetic designs at
   several sizes, run the base fixpoint plus the engine's addition-mode
   sweep on each, and print runtime and peak-RSS curves — the data
   behind the "scaling" section of docs/performance.md and the
   [table2x] bench section.

     dune exec examples/scale_sweep.exe                # 20k 50k 100k
     dune exec examples/scale_sweep.exe -- 100000 1000000
     TKA_JOBS=8 dune exec examples/scale_sweep.exe -- 200000

   Optional flags: [-k <int>] sweep cardinality (default 5). *)

module T2x = Tka_layout.Table2x
module Topo = Tka_circuit.Topo
module N = Tka_circuit.Netlist
module Engine = Tka_topk.Engine
module Iterate = Tka_noise.Iterate
module Rss = Tka_prof.Rss

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let run ~k ~pseudo ~higher nets =
  let spec = T2x.spec ~nets () in
  let nl, gen_s = time (fun () -> T2x.generate spec) in
  let topo, topo_s = time (fun () -> Topo.create nl) in
  let fix, fix_s = time (fun () -> Iterate.run topo) in
  let config =
    { (Engine.default_config ~k) with use_pseudo = pseudo; use_higher_order = higher }
  in
  let res, sweep_s =
    time (fun () -> Engine.compute ~config ~fixpoint:fix ~mode:Engine.Addition topo)
  in
  let rss_mb =
    match Rss.peak_bytes () with
    | Some b -> Printf.sprintf "%8.1f" (float_of_int b /. 1048576.)
    | None -> "     n/a"
  in
  let shards = Array.length (Topo.cone_shards topo) in
  Printf.printf "%9d %9d %9d %6d %7.2f %7.2f %7.2f %8.2f %s %8.4f\n%!"
    (N.num_nets nl) (N.num_gates nl) (N.num_couplings nl) shards gen_s topo_s
    fix_s sweep_s rss_mb
    (Engine.estimated_delay res k)

let () =
  let sizes = ref [] in
  let k = ref 5 in
  let pseudo = ref true and higher = ref true in
  let rec parse = function
    | [] -> ()
    | "-k" :: v :: tl ->
      k := int_of_string v;
      parse tl
    | "--no-pseudo" :: tl ->
      pseudo := false;
      parse tl
    | "--no-higher" :: tl ->
      higher := false;
      parse tl
    | v :: tl ->
      sizes := int_of_string v :: !sizes;
      parse tl
  in
  parse (List.tl (Array.to_list Sys.argv));
  let sizes =
    match List.rev !sizes with [] -> [ 20_000; 50_000; 100_000 ] | s -> s
  in
  Printf.printf
    "# table2x scaling sweep: k=%d jobs=%d (peak RSS is cumulative across rows)\n"
    !k
    (Tka_parallel.Pool.default_jobs ());
  Printf.printf "%9s %9s %9s %6s %7s %7s %7s %8s %8s %8s\n" "nets" "gates"
    "couplings" "shards" "gen_s" "topo_s" "fix_s" "sweep_s" "rss_mb" "est_ns";
  List.iter (fun nets -> run ~k:!k ~pseudo:!pseudo ~higher:!higher nets) sizes
