(* Delay-noise mitigation workflow, the designer story from the paper's
   introduction: "if a designer can eliminate only 10 coupling
   situations (e.g., through shielding or spacing), the top-10
   aggressor elimination set points exactly to the set of couplings
   which must be fixed for the maximum reduction in delay noise."

   The i3 benchmark is analysed, the top-10 elimination set is
   computed, the fix is applied (couplings removed from the netlist),
   and the repaired design re-analysed from scratch.

     dune exec examples/noise_mitigation.exe *)

module N = Tka_circuit.Netlist
module Topo = Tka_circuit.Topo
module B = Tka_layout.Benchmarks
module Iterate = Tka_noise.Iterate
module Elimination = Tka_topk.Elimination
module CS = Tka_topk.Coupling_set
module CN = Tka_noise.Coupled_noise
module Report = Tka_topk.Report

(* Shielding/spacing deletes the physical coupling capacitors. *)
let apply_fix nl fixed_couplings =
  Tka_circuit.Transform.remove_couplings nl fixed_couplings

let () =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some Logs.Warning);
  let nl = Option.get (B.by_name "i3") in
  let topo = Topo.create nl in
  let before = Iterate.run topo in
  Printf.printf "i3 before fixing: noiseless %.4f ns, noisy %.4f ns (%d couplings)\n\n"
    (Iterate.noiseless_delay before)
    (Iterate.circuit_delay before)
    (N.num_couplings nl);

  let budget = 10 in
  let elim = Elimination.compute ~k:budget topo in
  (match Elimination.set elim budget with
  | None -> print_endline "no elimination candidates found"
  | Some s ->
    Printf.printf "top-%d elimination set (shield/space these):\n" budget;
    List.iter print_endline (Report.set_lines nl s);
    Printf.printf "\npredicted delay with the fix: %.4f ns\n"
      (Elimination.evaluate elim budget);

    (* apply the fix physically: the directed picks map back to the
       physical capacitors to remove *)
    let physical =
      CS.to_list s
      |> List.map (fun id -> (CN.of_directed_id nl id).CN.dc_coupling)
      |> List.sort_uniq Int.compare
    in
    let fixed = apply_fix nl physical in
    let after = Iterate.run (Topo.create fixed) in
    Printf.printf
      "re-analysed after removing %d physical capacitors: %.4f ns\n"
      (List.length physical)
      (Iterate.circuit_delay after);
    Printf.printf "delay noise recovered: %.4f ns of %.4f ns total\n"
      (Iterate.circuit_delay before -. Iterate.circuit_delay after)
      (Iterate.total_delay_noise before))
