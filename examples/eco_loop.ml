(* The ECO loop, closed: analyze -> pick the top elimination set ->
   shield (remove) those couplings -> re-verify INCREMENTALLY -> repeat
   until the crosstalk wins run out.

   The circuit is the same hierarchical ripple-carry adder as
   ripple_adder.ml, with couplings packed along the carry chain. Each
   round removes the current best elimination set through
   Tka_incr.Analyzer, whose content-addressed cache re-uses every
   victim the edit did not disturb — results stay bit-identical to a
   from-scratch analysis (checked every round here).

     dune exec examples/eco_loop.exe        (defaults to 8 bits) *)

module N = Tka_circuit.Netlist
module V = Tka_circuit.Verilog_lite
module Spef = Tka_circuit.Spef_lite
module Topo = Tka_circuit.Topo
module Lib = Tka_cell.Default_lib
module Iterate = Tka_noise.Iterate
module Elimination = Tka_topk.Elimination
module CS = Tka_topk.Coupling_set
module Analyzer = Tka_incr.Analyzer
module Edit = Tka_incr.Edit
module Eco = Tka_incr.Eco

let full_adder_module =
  {|
module full_adder (a, b, cin, s, cout);
  input a, b, cin;
  output s, cout;
  wire axb, g1, g2;
  XOR2_X1 x1 (.A(a), .B(b), .Y(axb));
  XOR2_X1 x2 (.A(axb), .B(cin), .Y(s));
  AND2_X1 a1 (.A(axb), .B(cin), .Y(g1));
  AND2_X1 a2 (.A(a), .B(b), .Y(g2));
  OR2_X1  o1 (.A(g1), .B(g2), .Y(cout));
endmodule
|}

let ripple_top bits =
  let buf = Buffer.create 1024 in
  let ports =
    List.concat
      [
        List.init bits (fun i -> Printf.sprintf "a%d" i);
        List.init bits (fun i -> Printf.sprintf "b%d" i);
        [ "cin" ];
        List.init bits (fun i -> Printf.sprintf "s%d" i);
        [ "cout" ];
      ]
  in
  Buffer.add_string buf
    (Printf.sprintf "module ripple (%s);\n" (String.concat ", " ports));
  Buffer.add_string buf
    (Printf.sprintf "  input %s, cin;\n"
       (String.concat ", "
          (List.init bits (fun i -> Printf.sprintf "a%d" i)
          @ List.init bits (fun i -> Printf.sprintf "b%d" i))));
  Buffer.add_string buf
    (Printf.sprintf "  output %s, cout;\n"
       (String.concat ", " (List.init bits (fun i -> Printf.sprintf "s%d" i))));
  if bits > 1 then
    Buffer.add_string buf
      (Printf.sprintf "  wire %s;\n"
         (String.concat ", "
            (List.init (bits - 1) (fun i -> Printf.sprintf "c%d" i))));
  for i = 0 to bits - 1 do
    let cin = if i = 0 then "cin" else Printf.sprintf "c%d" (i - 1) in
    let cout = if i = bits - 1 then "cout" else Printf.sprintf "c%d" i in
    Buffer.add_string buf
      (Printf.sprintf
         "  full_adder fa%d (.a(a%d), .b(b%d), .cin(%s), .s(s%d), .cout(%s));\n"
         i i i cin i cout)
  done;
  Buffer.add_string buf "endmodule\n";
  Buffer.contents buf

let build bits =
  let flat = V.parse ~lookup:Lib.find (full_adder_module ^ ripple_top bits) in
  let carry_out i = if i = bits - 1 then "cout" else Printf.sprintf "c%d" i in
  let couplings =
    List.concat
      [
        List.init (bits - 1) (fun i -> (carry_out i, carry_out (i + 1), 0.0045));
        List.init (bits - 1) (fun i ->
            (Printf.sprintf "s%d" i, Printf.sprintf "s%d" (i + 1), 0.0030));
      ]
  in
  Spef.apply { Spef.design = None; ground = []; couplings } flat

(* the top elimination pick of the round, as removal edits (directed
   entries collapse onto their physical coupling) *)
let removal_edits set =
  CS.to_list set
  |> List.map (fun d -> d / 2)
  |> List.sort_uniq Int.compare
  |> List.map (fun c -> Edit.Remove_coupling c)

let () =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some Logs.Warning);
  let bits = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 8 in
  let nl = build bits in
  Printf.printf "%d-bit ripple adder: %d gates, %d nets, %d couplings\n\n" bits
    (N.num_gates nl) (N.num_nets nl) (N.num_couplings nl);

  let az = Analyzer.create ~k:3 () in
  let rec round i nl =
    let topo = Topo.create nl in
    let elim, st = Analyzer.run az topo in
    Printf.printf "round %d: delay %.4f ns (cache: %d hits, %d misses)\n" i
      (Elimination.all_aggressor_delay elim)
      st.Analyzer.rs_hits st.Analyzer.rs_misses;
    (* every round, re-check the incremental contract from scratch *)
    if not (Eco.elim_identical (Elimination.compute ~k:3 topo) elim) then
      failwith "incremental result diverged from scratch";
    match (if i > 3 then None else Elimination.best_choice elim 1) with
    | None -> Printf.printf "\nno elimination candidates left; done.\n"
    | Some (set, fixed_delay) ->
      Printf.printf "  fix: remove %s  (delay -> %.4f ns)\n"
        (String.concat ", "
           (Tka_topk.Report.set_lines nl set))
        fixed_delay;
      let nl', dirty = Analyzer.apply az nl (removal_edits set) in
      Printf.printf "  dirty closure: %d nets\n" dirty;
      round (i + 1) nl'
  in
  round 1 nl
