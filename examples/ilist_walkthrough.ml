(* Figures 7 and 8 of the paper, by hand: two victims v1 -> v2 with
   four primary aggressors each, walking the irredundant-list machinery
   the engine automates — singleton pruning, extension, pseudo input
   aggressors and the final I-list_2.

     dune exec examples/ilist_walkthrough.exe *)

module Envelope = Tka_waveform.Envelope
module Pulse = Tka_waveform.Pulse
module Transition = Tka_waveform.Transition
module Interval = Tka_util.Interval
module VN = Tka_noise.Victim_noise
module CS = Tka_topk.Coupling_set
module Ilist = Tka_topk.Ilist
module Dominance = Tka_topk.Dominance
module Pseudo = Tka_topk.Pseudo

(* Victim v1 switches at 0.50 ns; its four primary aggressors a1..a4.
   Like Fig. 7, a1's envelope encapsulates the others'. *)
let v1 = Transition.make ~t50:0.50 ~slew:0.08 ()

let env ~peak ~lo ~hi =
  Envelope.of_pulse
    ~window:(Interval.make lo hi)
    (Pulse.make ~onset:0. ~peak ~rise:0.02 ~decay:0.04)

let a1 = env ~peak:0.30 ~lo:0.38 ~hi:0.58 (* tall and wide: dominates *)
let a2 = env ~peak:0.18 ~lo:0.40 ~hi:0.55
let a3 = env ~peak:0.22 ~lo:0.42 ~hi:0.50
let a4 = env ~peak:0.10 ~lo:0.44 ~hi:0.52

let name_of = [ (1, "a1"); (2, "a2"); (3, "a3"); (4, "a4"); (11, "b1"); (12, "b2"); (13, "b3"); (14, "b4") ]

let show_entry (e : Ilist.entry) =
  let names =
    CS.to_list e.Ilist.couplings
    |> List.map (fun id -> List.assoc id name_of)
    |> String.concat ","
  in
  Printf.printf "    {%s}  delay noise %.4f ns\n" names e.Ilist.objective

let entry victim set envs =
  let combined = Envelope.combine envs in
  {
    Ilist.couplings = CS.of_list set;
    envelope = combined;
    objective = VN.delay_noise_of_envelope ~victim combined;
  }

let () =
  let interval1 = Dominance.interval ~victim:v1 in
  let stats = Ilist.fresh_stats () in

  Printf.printf "victim v1 (t50 = 0.50 ns), primary aggressors a1..a4\n\n";
  Printf.printf "I-list_1 of v1 (after dominance pruning):\n";
  let singles =
    [ entry v1 [ 1 ] [ a1 ]; entry v1 [ 2 ] [ a2 ]; entry v1 [ 3 ] [ a3 ];
      entry v1 [ 4 ] [ a4 ] ]
  in
  let ilist1 = Ilist.prune ~interval:interval1 ~stats singles in
  List.iter show_entry ilist1;
  Printf.printf "  (a1 encapsulates the rest: %d of 4 dominated, like Fig. 7)\n\n"
    stats.Ilist.dominated;

  Printf.printf "I-list_2 of v1 (extensions of I-list_1):\n";
  let envs_of = [ (1, a1); (2, a2); (3, a3); (4, a4) ] in
  let extensions =
    List.concat_map
      (fun (e : Ilist.entry) ->
        List.filter_map
          (fun (id, env) ->
            if CS.mem id e.Ilist.couplings then None
            else
              Some
                {
                  Ilist.couplings = CS.add id e.Ilist.couplings;
                  envelope = Envelope.add e.Ilist.envelope env;
                  objective = 0.;
                })
          envs_of)
      ilist1
    |> List.map (fun (e : Ilist.entry) ->
           { e with Ilist.objective = VN.delay_noise_of_envelope ~victim:v1 e.Ilist.envelope })
  in
  let ilist2 = Ilist.prune ~interval:interval1 ~stats extensions in
  List.iter show_entry ilist2;

  (* v2, downstream: v1's chosen set arrives as a pseudo input aggressor *)
  let v2 = Transition.make ~t50:0.62 ~slew:0.08 () in
  Printf.printf "\nvictim v2 (t50 = 0.62 ns), primaries b1..b4 + pseudo from v1\n\n";
  let b1 = env ~peak:0.26 ~lo:0.52 ~hi:0.68 in
  let b2 = env ~peak:0.14 ~lo:0.55 ~hi:0.64 in
  let b3 = env ~peak:0.12 ~lo:0.50 ~hi:0.60 in
  let b4 = env ~peak:0.08 ~lo:0.56 ~hi:0.62 in
  let interval2 = Dominance.interval ~victim:v2 in
  (* v1's best singleton propagates: its delay noise shifts v2's input *)
  let best_v1 = List.hd ilist1 in
  let pseudo =
    {
      Ilist.couplings = best_v1.Ilist.couplings;
      envelope = Pseudo.envelope ~victim:v2 ~shift:best_v1.Ilist.objective;
      objective = 0.;
    }
  in
  let pseudo =
    { pseudo with
      Ilist.objective =
        VN.delay_noise_of_envelope ~victim:v2 pseudo.Ilist.envelope }
  in
  let singles2 =
    [ entry v2 [ 11 ] [ b1 ]; entry v2 [ 12 ] [ b2 ]; entry v2 [ 13 ] [ b3 ];
      entry v2 [ 14 ] [ b4 ]; pseudo ]
  in
  Printf.printf "I-list_1 of v2 (primaries plus the pseudo aggressor {a1}):\n";
  let ilist1_v2 = Ilist.prune ~interval:interval2 ~stats singles2 in
  List.iter show_entry ilist1_v2;
  Printf.printf
    "\nThe pseudo aggressor carries v1's upstream set across the gate —\n\
     this is how candidate sets travel the circuit in topological order\n\
     (Fig. 8's columns) without ever re-analysing the fanin cone.\n"
