(* Quickstart: build a small netlist, run timing and noise analysis,
   and ask for its top-k aggressor sets.

     dune exec examples/quickstart.exe *)

module Builder = Tka_circuit.Builder
module Topo = Tka_circuit.Topo
module Lib = Tka_cell.Default_lib
module Analysis = Tka_sta.Analysis
module Iterate = Tka_noise.Iterate
module Addition = Tka_topk.Addition
module Elimination = Tka_topk.Elimination
module Report = Tka_topk.Report

let () =
  (* 1. Describe the circuit: two coupled inverter chains joined by a
     NAND, a textbook crosstalk situation. *)
  let b = Builder.create ~name:"quickstart" () in
  let a = Builder.add_input b "a" in
  let c = Builder.add_input b "c" in
  let n1 = Builder.add_net b "n1" in
  let n2 = Builder.add_net b "n2" in
  let m1 = Builder.add_net b "m1" in
  let y = Builder.add_net b "y" in
  let inv = Lib.find_exn "INV_X1" in
  ignore (Builder.add_gate b ~name:"u1" ~cell:inv ~inputs:[ ("A", a) ] ~output:n1);
  ignore (Builder.add_gate b ~name:"u2" ~cell:inv ~inputs:[ ("A", n1) ] ~output:n2);
  ignore (Builder.add_gate b ~name:"u3" ~cell:inv ~inputs:[ ("A", c) ] ~output:m1);
  ignore
    (Builder.add_gate b ~name:"u4" ~cell:(Lib.find_exn "NAND2_X1")
       ~inputs:[ ("A", n2); ("B", m1) ]
       ~output:y);
  Builder.mark_output b y;
  (* coupling capacitors, as a router/extractor would report them *)
  List.iter
    (fun (x, z, cap) -> ignore (Builder.add_coupling b x z cap))
    [ (n1, m1, 0.004); (n2, m1, 0.005); (n2, y, 0.003) ];
  let nl = Builder.finalize b in
  let topo = Topo.create nl in

  (* 2. Static timing without noise. *)
  let sta = Analysis.run topo in
  Printf.printf "noiseless circuit delay: %.4f ns\n" (Analysis.circuit_delay sta);

  (* 3. Iterative crosstalk noise analysis (windows + delay noise to a
     fixpoint). *)
  let noisy = Iterate.run topo in
  Printf.printf "with all aggressors:     %.4f ns (after %d noise iterations)\n"
    (Iterate.circuit_delay noisy) noisy.Iterate.iterations;

  (* 4. The paper's question: which k couplings matter most? *)
  let add = Addition.compute ~k:3 topo in
  print_newline ();
  print_string (Report.addition nl add ~ks:[ 1; 2; 3 ]);

  (* ... and which k fixes would buy back the most delay? *)
  let elim = Elimination.compute ~k:2 topo in
  print_newline ();
  print_string (Report.elimination nl elim ~ks:[ 1; 2 ])
