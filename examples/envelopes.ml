(* Visualising the noise-envelope constructions of Figures 2, 3 and 5:
   a pulse swept over a timing window (trapezoid), superposition of two
   aggressors, and the noisy victim transition whose 50% crossing moves.

     dune exec examples/envelopes.exe *)

module Pwl = Tka_waveform.Pwl
module Pulse = Tka_waveform.Pulse
module Envelope = Tka_waveform.Envelope
module Transition = Tka_waveform.Transition
module Render = Tka_waveform.Render
module Interval = Tka_util.Interval

let () =
  let pulse = Pulse.make ~onset:0. ~peak:0.28 ~rise:0.05 ~decay:0.10 in

  print_endline "Figure 2 — a noise pulse swept over its timing window [0.3, 0.8]";
  print_endline "becomes the trapezoidal noise envelope:";
  let placed = Pwl.shift_x 0.3 (Pulse.waveform pulse) in
  let env1 = Envelope.of_pulse ~window:(Interval.make 0.3 0.8) pulse in
  print_string
    (Render.ascii ~height:12
       [ ("pulse at EAT", placed); ("envelope", Envelope.waveform env1) ]);

  print_endline "";
  print_endline "Figure 3 — two aggressors superpose into a combined envelope:";
  let env2 = Envelope.of_pulse ~window:(Interval.make 0.55 0.9) pulse in
  let combined = Envelope.combine [ env1; env2 ] in
  print_string
    (Render.ascii ~height:12
       [
         ("aggressor 1", Envelope.waveform env1);
         ("aggressor 2", Envelope.waveform env2);
         ("combined", Envelope.waveform combined);
       ]);

  print_endline "";
  print_endline "Worst-case delay noise — the combined envelope drags the victim's";
  print_endline "50% crossing to the right:";
  let victim = Transition.make ~t50:1.0 ~slew:0.15 () in
  let noisy = Envelope.noisy_waveform ~victim combined in
  let d = Envelope.delay_noise ~victim combined in
  print_string
    (Render.ascii ~height:14
       ~range:(Interval.make 0.2 1.6)
       [
         ("noiseless victim", Transition.waveform victim);
         ("noisy victim", noisy);
         ("combined envelope", Envelope.waveform combined);
       ]);
  Printf.printf "\ndelay noise (t50 shift): %.4f ns\n" d
