(* Tests for transitions, pulses and noise envelopes (Figs. 2, 3, 5 of
   the paper). *)

module Pwl = Tka_waveform.Pwl
module Transition = Tka_waveform.Transition
module Pulse = Tka_waveform.Pulse
module Envelope = Tka_waveform.Envelope
module Interval = Tka_util.Interval

let check_f = Alcotest.(check (float 1e-9))
let check_f6 = Alcotest.(check (float 1e-6))

(* ------------------------------------------------------------------ *)
(* Transition                                                          *)
(* ------------------------------------------------------------------ *)

let test_transition_waveform () =
  let t = Transition.make ~t50:1.0 ~slew:0.4 () in
  let w = Transition.waveform t in
  check_f "before" 0. (Pwl.eval w 0.);
  check_f "start" 0. (Pwl.eval w 0.8);
  check_f "t50" 0.5 (Pwl.eval w 1.0);
  check_f "end" 1. (Pwl.eval w 1.2);
  check_f "after" 1. (Pwl.eval w 5.)

let test_transition_bad_slew () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Transition.make ~t50:0. ~slew:0. ());
       false
     with Invalid_argument _ -> true)

let test_transition_times () =
  let t = Transition.make ~t50:2.0 ~slew:1.0 () in
  check_f "start" 1.5 (Transition.start_time t);
  check_f "end" 2.5 (Transition.end_time t)

let test_transition_shift () =
  let t = Transition.make ~t50:1.0 ~slew:0.2 () in
  let s = Transition.shift 0.5 t in
  check_f "t50 moved" 1.5 s.Transition.t50;
  check_f "slew kept" 0.2 s.Transition.slew

let test_t50_of_waveform () =
  let t = Transition.make ~t50:3.0 ~slew:0.6 () in
  match Transition.t50_of_waveform (Transition.waveform t) with
  | Some x -> check_f "recovered" 3.0 x
  | None -> Alcotest.fail "expected t50"

(* ------------------------------------------------------------------ *)
(* Pulse                                                              *)
(* ------------------------------------------------------------------ *)

let test_pulse_shape () =
  let p = Pulse.make ~onset:1. ~peak:0.3 ~rise:0.2 ~decay:0.5 in
  let w = Pulse.waveform p in
  check_f "zero before" 0. (Pwl.eval w 0.9);
  check_f "peak" 0.3 (Pwl.eval w 1.2);
  check_f "half after one tau" 0.15 (Pwl.eval w 1.7);
  check_f "zero at end" 0. (Pwl.eval w (Pulse.end_time p));
  Alcotest.(check bool) "unimodal" true (Pwl.is_unimodal w)

let test_pulse_validation () =
  let bad f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "peak" true
    (bad (fun () -> ignore (Pulse.make ~onset:0. ~peak:0. ~rise:1. ~decay:1.)));
  Alcotest.(check bool) "rise" true
    (bad (fun () -> ignore (Pulse.make ~onset:0. ~peak:1. ~rise:0. ~decay:1.)));
  Alcotest.(check bool) "decay" true
    (bad (fun () -> ignore (Pulse.make ~onset:0. ~peak:1. ~rise:1. ~decay:(-1.))))

let test_pulse_times () =
  let p = Pulse.make ~onset:1. ~peak:0.5 ~rise:0.2 ~decay:0.1 in
  check_f "peak time" 1.2 (Pulse.peak_time p);
  check_f "end time" 1.5 (Pulse.end_time p)

let test_pulse_shift_scale () =
  let p = Pulse.make ~onset:0. ~peak:0.5 ~rise:0.2 ~decay:0.1 in
  let q = Pulse.shift 2. p in
  check_f "onset" 2. q.Pulse.onset;
  let r = Pulse.scale 0.5 p in
  check_f "peak halved" 0.25 r.Pulse.peak

let test_pulse_width_at () =
  let p = Pulse.make ~onset:0. ~peak:1.0 ~rise:1.0 ~decay:1.0 in
  let w = Pulse.width_at 0.5 p in
  Alcotest.(check bool) "positive" true (w > 0.);
  let w9 = Pulse.width_at 0.9 p in
  Alcotest.(check bool) "narrower at higher level" true (w9 < w)

(* ------------------------------------------------------------------ *)
(* Envelope                                                           *)
(* ------------------------------------------------------------------ *)

let pulse0 = Pulse.make ~onset:0. ~peak:0.3 ~rise:0.2 ~decay:0.4

let test_envelope_point_window_is_pulse () =
  let e = Envelope.of_pulse ~window:(Interval.point 2.) pulse0 in
  let expected = Pwl.shift_x 2. (Pulse.waveform pulse0) in
  Alcotest.(check bool) "equal" true (Pwl.equal (Envelope.waveform e) expected)

let test_envelope_trapezoid () =
  (* Fig. 2: leading edge at EAT, flat top, trailing edge at LAT *)
  let e = Envelope.of_pulse ~window:(Interval.make 1. 3.) pulse0 in
  let w = Envelope.waveform e in
  check_f "zero before EAT onset" 0. (Pwl.eval w 0.99);
  check_f "peak from EAT+rise" 0.3 (Pwl.eval w 1.2);
  check_f "flat top" 0.3 (Pwl.eval w 2.5);
  check_f "top until LAT+rise" 0.3 (Pwl.eval w 3.2);
  Alcotest.(check bool) "decays after" true (Pwl.eval w 3.4 < 0.3);
  check_f "peak preserved" 0.3 (Envelope.peak e)

let test_envelope_combine_superposition () =
  let e1 = Envelope.of_pulse ~window:(Interval.make 0. 1.) pulse0 in
  let e2 = Envelope.of_pulse ~window:(Interval.make 0.5 1.5) pulse0 in
  let c = Envelope.combine [ e1; e2 ] in
  let x = 0.9 in
  check_f6 "pointwise sum"
    (Pwl.eval (Envelope.waveform e1) x +. Pwl.eval (Envelope.waveform e2) x)
    (Pwl.eval (Envelope.waveform c) x);
  Alcotest.(check bool) "combine [] = zero" true (Envelope.is_zero (Envelope.combine []))

let test_envelope_widen () =
  let e = Envelope.of_pulse ~window:(Interval.make 0. 1.) pulse0 in
  let w = Envelope.widen 0.7 e in
  Alcotest.(check bool) "dominates original" true (Envelope.encapsulates w e);
  check_f "same peak" (Envelope.peak e) (Envelope.peak w);
  Alcotest.(check bool) "widen 0 is identity" true
    (Envelope.equal (Envelope.widen 0. e) e)

let test_envelope_encapsulates_interval () =
  let small = Envelope.of_pulse ~window:(Interval.point 0.) pulse0 in
  let big =
    Envelope.of_pulse ~window:(Interval.point 0.)
      (Pulse.make ~onset:0. ~peak:0.5 ~rise:0.2 ~decay:0.4)
  in
  Alcotest.(check bool) "big >= small" true (Envelope.encapsulates big small);
  Alcotest.(check bool) "small not >= big" false (Envelope.encapsulates small big);
  (* restricted to a region where both are zero, they tie *)
  Alcotest.(check bool) "tie on dead zone" true
    (Envelope.encapsulates ~interval:(Interval.make 100. 101.) small big)

let test_delay_noise_zero_for_early_pulse () =
  let victim = Transition.make ~t50:10. ~slew:0.2 () in
  (* envelope fully over before t50 - slew/2 *)
  let e = Envelope.of_pulse ~window:(Interval.point 0.) pulse0 in
  check_f "no noise" 0. (Envelope.delay_noise ~victim e)

let test_delay_noise_positive_when_aligned () =
  let victim = Transition.make ~t50:1.0 ~slew:0.2 () in
  let e = Envelope.of_pulse ~window:(Interval.point 0.8) pulse0 in
  Alcotest.(check bool) "positive" true (Envelope.delay_noise ~victim e > 0.)

let test_delay_noise_monotone_in_peak () =
  let victim = Transition.make ~t50:1.0 ~slew:0.2 () in
  let mk peak =
    Envelope.of_pulse ~window:(Interval.point 0.8)
      (Pulse.make ~onset:0. ~peak ~rise:0.2 ~decay:0.4)
  in
  let d1 = Envelope.delay_noise ~victim (mk 0.1) in
  let d2 = Envelope.delay_noise ~victim (mk 0.3) in
  let d3 = Envelope.delay_noise ~victim (mk 0.6) in
  Alcotest.(check bool) "monotone" true (d1 <= d2 && d2 <= d3)

let test_delay_noise_encapsulation_implies_more () =
  (* Theorem 1's base case: bigger envelope, at least as much noise *)
  let victim = Transition.make ~t50:1.0 ~slew:0.3 () in
  let small = Envelope.of_pulse ~window:(Interval.make 0.5 0.9) pulse0 in
  let big = Envelope.widen 0.5 small in
  Alcotest.(check bool) "noise monotone under encapsulation" true
    (Envelope.delay_noise ~victim big >= Envelope.delay_noise ~victim small)

let test_noisy_waveform_subtraction () =
  let victim = Transition.make ~t50:1.0 ~slew:0.2 () in
  let e = Envelope.of_pulse ~window:(Interval.point 0.9) pulse0 in
  let noisy = Envelope.noisy_waveform ~victim e in
  let x = 1.15 in
  check_f6 "subtract"
    (Pwl.eval (Transition.waveform victim) x -. Pwl.eval (Envelope.waveform e) x)
    (Pwl.eval noisy x)

let test_envelope_of_waveform_clips () =
  let w = Pwl.create [ (0., -0.5); (1., 0.5) ] in
  let e = Envelope.of_waveform w in
  check_f "clipped" 0. (Pwl.eval (Envelope.waveform e) 0.);
  check_f "kept" 0.5 (Pwl.eval (Envelope.waveform e) 1.)

let test_envelope_support () =
  let e = Envelope.of_pulse ~window:(Interval.make 1. 2.) pulse0 in
  match Envelope.support e with
  | None -> Alcotest.fail "expected support"
  | Some i ->
    Alcotest.(check bool) "starts near 1" true (Interval.lo i >= 0.5);
    Alcotest.(check bool) "ends after LAT" true (Interval.hi i >= 2.)

(* ------------------------------------------------------------------ *)
(* Render                                                             *)
(* ------------------------------------------------------------------ *)

module Render = Tka_waveform.Render

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_render_ascii () =
  let ramp = Pwl.create [ (0., 0.); (1., 1.) ] in
  let s = Render.ascii [ ("ramp", ramp) ] in
  Alcotest.(check bool) "non-empty" true (String.length s > 0);
  Alcotest.(check bool) "has legend" true (contains_sub s "* = ramp");
  Alcotest.(check bool) "has plot glyphs" true (contains_sub s "*");
  Alcotest.(check string) "empty series" "" (Render.ascii [])

let test_render_ascii_two_series () =
  let ramp = Pwl.create [ (0., 0.); (1., 1.) ] in
  let flat = Pwl.constant 0.5 in
  let s = Render.ascii [ ("a", ramp); ("b", flat) ] in
  Alcotest.(check bool) "legend a" true (contains_sub s "* = a");
  Alcotest.(check bool) "legend b" true (contains_sub s "+ = b")

let test_render_csv () =
  let ramp = Pwl.create [ (0., 0.); (1., 1.) ] in
  let s = Render.csv ~samples:11 [ ("r", ramp) ] in
  let lines = String.split_on_char '\n' (String.trim s) in
  Alcotest.(check int) "header + 11 rows" 12 (List.length lines);
  Alcotest.(check string) "header" "t,r" (List.hd lines);
  (* last sample hits the endpoint *)
  (match List.rev lines with
  | last :: _ ->
    Alcotest.(check bool) "endpoint" true (contains_sub last ",1")
  | [] -> Alcotest.fail "no rows")

(* ------------------------------------------------------------------ *)
(* QCheck properties                                                  *)
(* ------------------------------------------------------------------ *)

let arb_pulse =
  QCheck.make
    ~print:(fun p -> Format.asprintf "%a" Pulse.pp p)
    QCheck.Gen.(
      let* peak = float_range 0.05 0.8 in
      let* rise = float_range 0.01 0.5 in
      let* decay = float_range 0.01 0.5 in
      let* onset = float_range (-2.) 2. in
      return (Pulse.make ~onset ~peak ~rise ~decay))

let arb_window =
  QCheck.make
    ~print:Interval.to_string
    QCheck.Gen.(
      let* lo = float_range (-2.) 2. in
      let* w = float_range 0. 3. in
      return (Interval.make lo (lo +. w)))

(* ------------------------------------------------------------------ *)
(* Kernel properties: linear-merge kernels vs a naive reference        *)
(* ------------------------------------------------------------------ *)

(* The rewritten PWL kernels (single-pass cursor merges, cached peaks)
   must agree with the obvious reference semantics: merge the abscissa
   grids, evaluate each operand pointwise. The reference is kept here,
   in the pre-rewrite list-and-eval style, and the generators stress
   the merge edge cases: coincident abscissae across operands (exact
   and within the x_eps = 1e-12 merge tolerance), constants, and
   single-breakpoint waveforms. *)
module Kernel_ref = struct
  let x_eps = 1e-12 (* mirror of Pwl's internal merge tolerance *)

  (* Sorted eps-deduped union of the operand abscissae, keeping the
     first of each cluster — the exact point set the cursor merges
     visit. *)
  let grid ws =
    let xs =
      List.concat_map (fun w -> List.map fst (Pwl.breakpoints w)) ws
      |> List.sort_uniq Float.compare
    in
    let rec dedupe last = function
      | [] -> []
      | x :: tl ->
        if x -. last <= x_eps then dedupe last tl else x :: dedupe x tl
    in
    match xs with [] -> [] | x :: tl -> x :: dedupe x tl

  (* Probe abscissae for pointwise comparison: every grid point, every
     cell midpoint (catches missed max2 crossings), and both constant
     extensions. *)
  let probes ws =
    let g = grid ws in
    let rec mids = function
      | a :: (b :: _ as tl) -> (0.5 *. (a +. b)) :: mids tl
      | _ -> []
    in
    (-100.) :: 100. :: (g @ mids g)

  let eval_sum ws x = List.fold_left (fun acc w -> acc +. Pwl.eval w x) 0. ws

  let dominates ?(eps = 1e-9) a b =
    List.for_all (fun x -> Pwl.eval a x >= Pwl.eval b x -. eps) (grid [ a; b ])
end

let kernel_pwl_gen =
  QCheck.Gen.(
    let* kind = int_bound 9 in
    if kind = 0 then map Pwl.constant (float_range (-2.) 2.)
    else if kind = 1 then
      (* single breakpoint on the shared tick grid *)
      let* t = int_range (-8) 8 in
      let* y = float_range (-3.) 3. in
      return (Pwl.create [ (0.25 *. float_of_int t, y) ])
    else
      let* n = int_range 2 8 in
      let* ticks = list_repeat n (int_range (-8) 8) in
      let ticks = List.sort_uniq Int.compare ticks in
      let* pts =
        flatten_l
          (List.map
             (fun t ->
               let* y = float_range (-3.) 3. in
               let* j = int_bound 4 in
               (* occasional sub-x_eps jitter: collides with another
                  operand's breakpoint at the same tick without being
                  bitwise equal *)
               let jitter =
                 if j = 0 then 1e-13 else if j = 1 then -1e-13 else 0.
               in
               return ((0.25 *. float_of_int t) +. jitter, y))
             ticks)
      in
      return (Pwl.create pts))

let arb_kernel_pwl = QCheck.make ~print:Pwl.to_string kernel_pwl_gen

let arb_kernel_pwl_list =
  QCheck.make
    ~print:(fun ws -> String.concat " | " (List.map Pwl.to_string ws))
    QCheck.Gen.(
      let* n = int_range 2 6 in
      list_repeat n kernel_pwl_gen)

let pointwise_ok expect got ws =
  List.for_all
    (fun x -> Float.abs (Pwl.eval got x -. expect x) <= 1e-9)
    (Kernel_ref.probes ws)

let kernel_qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"add agrees with reference" ~count:500
      (pair arb_kernel_pwl arb_kernel_pwl) (fun (a, b) ->
        pointwise_ok
          (fun x -> Pwl.eval a x +. Pwl.eval b x)
          (Pwl.add a b) [ a; b ]);
    Test.make ~name:"sub agrees with reference" ~count:500
      (pair arb_kernel_pwl arb_kernel_pwl) (fun (a, b) ->
        pointwise_ok
          (fun x -> Pwl.eval a x -. Pwl.eval b x)
          (Pwl.sub a b) [ a; b ]);
    Test.make ~name:"max2 agrees with reference" ~count:500
      (pair arb_kernel_pwl arb_kernel_pwl) (fun (a, b) ->
        pointwise_ok
          (fun x -> Float.max (Pwl.eval a x) (Pwl.eval b x))
          (Pwl.max2 a b) [ a; b ]);
    Test.make ~name:"min2 agrees with reference" ~count:500
      (pair arb_kernel_pwl arb_kernel_pwl) (fun (a, b) ->
        pointwise_ok
          (fun x -> Float.min (Pwl.eval a x) (Pwl.eval b x))
          (Pwl.min2 a b) [ a; b ]);
    Test.make ~name:"k-way sum agrees with reference" ~count:500
      arb_kernel_pwl_list (fun ws ->
        pointwise_ok (Kernel_ref.eval_sum ws) (Pwl.sum ws) ws);
    Test.make ~name:"max_list agrees with reference" ~count:300
      arb_kernel_pwl_list (fun ws ->
        pointwise_ok
          (fun x ->
            List.fold_left
              (fun acc w -> Float.max acc (Pwl.eval w x))
              Float.neg_infinity ws)
          (Pwl.max_list ws) ws);
    Test.make ~name:"dominates agrees with reference" ~count:500
      (pair arb_kernel_pwl arb_kernel_pwl) (fun (a, b) ->
        Pwl.dominates a b = Kernel_ref.dominates a b
        && Pwl.dominates b a = Kernel_ref.dominates b a);
    Test.make ~name:"dominates holds for a vs a - |c|" ~count:300
      (pair arb_kernel_pwl (float_range 0. 2.)) (fun (a, c) ->
        Pwl.dominates a (Pwl.shift_y (-.c) a));
    Test.make ~name:"max_value is cached and exact" ~count:300
      arb_kernel_pwl (fun a ->
        let expected =
          List.fold_left
            (fun acc (_, y) -> Float.max acc y)
            Float.neg_infinity (Pwl.breakpoints a)
        in
        Pwl.max_value a = expected && Pwl.max_value a = expected);
    Test.make ~name:"min_value is exact" ~count:300 arb_kernel_pwl (fun a ->
        let expected =
          List.fold_left
            (fun acc (_, y) -> Float.min acc y)
            Float.infinity (Pwl.breakpoints a)
        in
        Pwl.min_value a = expected);
  ]

let test_nan_rejected () =
  let bad f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "constant nan" true
    (bad (fun () -> ignore (Pwl.constant Float.nan)));
  Alcotest.(check bool) "create nan y" true
    (bad (fun () -> ignore (Pwl.create [ (0., Float.nan); (1., 0.) ])));
  Alcotest.(check bool) "create nan x" true
    (bad (fun () -> ignore (Pwl.create [ (Float.nan, 0.); (1., 0.) ])))

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"envelope peak equals pulse peak" ~count:200
      (pair arb_pulse arb_window) (fun (p, w) ->
        Float.abs (Envelope.peak (Envelope.of_pulse ~window:w p) -. p.Pulse.peak)
        < 1e-9);
    Test.make ~name:"envelope dominates pulse at EAT" ~count:200
      (pair arb_pulse arb_window) (fun (p, w) ->
        let e = Envelope.of_pulse ~window:w p in
        let placed =
          Pwl.shift_x (Interval.lo w -. p.Pulse.onset) (Pulse.waveform p)
        in
        Pwl.dominates ~eps:1e-6 (Envelope.waveform e) placed);
    Test.make ~name:"wider window gives bigger envelope" ~count:200
      (pair arb_pulse arb_window) (fun (p, w) ->
        let e1 = Envelope.of_pulse ~window:w p in
        let w2 = Interval.make (Interval.lo w) (Interval.hi w +. 0.5) in
        let e2 = Envelope.of_pulse ~window:w2 p in
        Envelope.encapsulates e2 e1);
    Test.make ~name:"delay noise is nonnegative" ~count:200
      (pair arb_pulse arb_window) (fun (p, w) ->
        let victim = Transition.make ~t50:0.5 ~slew:0.2 () in
        Envelope.delay_noise ~victim (Envelope.of_pulse ~window:w p) >= 0.);
    Test.make ~name:"combine peak bounded by sum of peaks" ~count:200
      (pair (pair arb_pulse arb_pulse) arb_window) (fun ((p1, p2), w) ->
        let e1 = Envelope.of_pulse ~window:w p1 in
        let e2 = Envelope.of_pulse ~window:w p2 in
        Envelope.peak (Envelope.combine [ e1; e2 ])
        <= Envelope.peak e1 +. Envelope.peak e2 +. 1e-9);
  ]

let () =
  Alcotest.run "tka_waveform"
    [
      ( "transition",
        [
          Alcotest.test_case "waveform" `Quick test_transition_waveform;
          Alcotest.test_case "bad slew" `Quick test_transition_bad_slew;
          Alcotest.test_case "times" `Quick test_transition_times;
          Alcotest.test_case "shift" `Quick test_transition_shift;
          Alcotest.test_case "t50 recovery" `Quick test_t50_of_waveform;
        ] );
      ( "pulse",
        [
          Alcotest.test_case "shape" `Quick test_pulse_shape;
          Alcotest.test_case "validation" `Quick test_pulse_validation;
          Alcotest.test_case "times" `Quick test_pulse_times;
          Alcotest.test_case "shift/scale" `Quick test_pulse_shift_scale;
          Alcotest.test_case "width_at" `Quick test_pulse_width_at;
        ] );
      ( "envelope",
        [
          Alcotest.test_case "point window" `Quick test_envelope_point_window_is_pulse;
          Alcotest.test_case "trapezoid (Fig 2)" `Quick test_envelope_trapezoid;
          Alcotest.test_case "combine (Fig 3)" `Quick test_envelope_combine_superposition;
          Alcotest.test_case "widen" `Quick test_envelope_widen;
          Alcotest.test_case "encapsulates" `Quick test_envelope_encapsulates_interval;
          Alcotest.test_case "early pulse no noise" `Quick
            test_delay_noise_zero_for_early_pulse;
          Alcotest.test_case "aligned pulse noise" `Quick
            test_delay_noise_positive_when_aligned;
          Alcotest.test_case "noise monotone in peak" `Quick
            test_delay_noise_monotone_in_peak;
          Alcotest.test_case "Theorem 1 base case" `Quick
            test_delay_noise_encapsulation_implies_more;
          Alcotest.test_case "noisy waveform" `Quick test_noisy_waveform_subtraction;
          Alcotest.test_case "of_waveform clips" `Quick test_envelope_of_waveform_clips;
          Alcotest.test_case "support" `Quick test_envelope_support;
        ] );
      ( "render",
        [
          Alcotest.test_case "ascii" `Quick test_render_ascii;
          Alcotest.test_case "two series" `Quick test_render_ascii_two_series;
          Alcotest.test_case "csv" `Quick test_render_csv;
        ] );
      ( "kernels",
        Alcotest.test_case "NaN breakpoints rejected" `Quick test_nan_rejected
        :: List.map QCheck_alcotest.to_alcotest kernel_qcheck_tests );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
