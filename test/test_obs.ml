(* Tests for the observability layer (Tka_obs): structured logging,
   metrics registry, span tracing and the minimal JSON codec. *)

module J = Tka_obs.Jsonx
module Log = Tka_obs.Log
module Metrics = Tka_obs.Metrics
module Trace = Tka_obs.Trace

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool
let checks = check Alcotest.string
let checkf msg = check (Alcotest.float 1e-9) msg

(* ------------------------------------------------------------------ *)
(* Jsonx                                                              *)
(* ------------------------------------------------------------------ *)

let sample_json =
  J.Obj
    [
      ("null", J.Null);
      ("flag", J.Bool true);
      ("n", J.Int (-42));
      ("x", J.Float 0.125);
      ("s", J.Str "a \"quoted\"\nline\twith\\specials");
      ("l", J.List [ J.Int 1; J.Float 2.5; J.Str "three"; J.Bool false ]);
      ("o", J.Obj [ ("inner", J.List []) ]);
    ]

let test_json_roundtrip () =
  let s = J.to_string sample_json in
  checkb "compact is one line" true (not (String.contains s '\n' && s.[0] <> '"'));
  check
    (Alcotest.testable
       (fun ppf v -> Format.pp_print_string ppf (J.to_string v))
       ( = ))
    "round-trip" sample_json
    (J.of_string s);
  (* pretty rendering parses back to the same value too *)
  check
    (Alcotest.testable
       (fun ppf v -> Format.pp_print_string ppf (J.to_string v))
       ( = ))
    "pretty round-trip" sample_json
    (J.of_string (J.to_string_pretty sample_json))

let test_json_floats () =
  checks "nan is null" "null" (J.to_string (J.Float Float.nan));
  checks "inf is null" "null" (J.to_string (J.Float Float.infinity));
  (* integer-valued floats keep a decimal point so they parse as floats *)
  (match J.of_string (J.to_string (J.Float 3.0)) with
  | J.Float f -> checkf "float stays float" 3.0 f
  | _ -> Alcotest.fail "expected a float");
  (* awkward doubles survive the printer *)
  List.iter
    (fun f ->
      match J.of_string (J.to_string (J.Float f)) with
      | J.Float f' -> check (Alcotest.float 0.) "exact" f f'
      | _ -> Alcotest.fail "expected a float")
    [ 0.1; 1. /. 3.; 1e-300; 6.02e23; -0.0012345678901234567 ]

let roundtrip v = J.of_string (J.to_string v)

let test_json_string_escapes () =
  (* every control character escapes and parses back byte-identically *)
  let ctl = String.init 0x20 Char.chr in
  (match roundtrip (J.Str ctl) with
  | J.Str s -> checks "control chars round-trip" ctl s
  | _ -> Alcotest.fail "expected a string");
  checks "control chars use \\u escapes" {|"\u0001\u001f"|}
    (J.to_string (J.Str "\x01\x1f"));
  (* named escapes are preferred for the common cases *)
  checks "named escapes" {|"a\"b\\c\nd\re\tf"|}
    (J.to_string (J.Str "a\"b\\c\nd\re\tf"));
  (* parser-side escapes the printer never emits *)
  (match J.of_string {|"\/\b\f"|} with
  | J.Str s -> checks "solidus/backspace/formfeed" "/\b\012" s
  | _ -> Alcotest.fail "expected a string");
  (* \u escapes decode to UTF-8 *)
  (match J.of_string {|"caf\u00e9 \u2192 A"|} with
  | J.Str s -> checks "\\u decodes as UTF-8" "café → A" s
  | _ -> Alcotest.fail "expected a string");
  match J.of_string {|"tru\uZZZZncated"|} with
  | exception J.Parse_error _ -> ()
  | _ -> Alcotest.fail "malformed \\u escape must not parse"

let test_json_unicode () =
  (* multibyte UTF-8 passes through the printer raw and intact *)
  let s = "héllo wörld — ≤ 3 ∧ 日本語 🎉" in
  (match roundtrip (J.Str s) with
  | J.Str s' -> checks "utf-8 round-trip" s s'
  | _ -> Alcotest.fail "expected a string");
  checkb "printer leaves multibyte bytes unescaped" true
    (J.to_string (J.Str "日") = "\"日\"")

let test_json_nested_arrays () =
  let deep =
    J.List
      [
        J.List [ J.List [ J.List [ J.Int 1 ]; J.List [] ] ];
        J.List [ J.Obj [ ("xs", J.List [ J.List [ J.Str "[" ] ]) ] ];
      ]
  in
  checkb "deep nesting round-trips" true (roundtrip deep = deep);
  checkb "pretty round-trips too" true
    (J.of_string (J.to_string_pretty deep) = deep);
  (* 1000 levels of array nesting: linear recursion must survive *)
  let rec wrap n v = if n = 0 then v else wrap (n - 1) (J.List [ v ]) in
  let tower = wrap 1000 (J.Int 7) in
  checkb "1000-deep tower round-trips" true (roundtrip tower = tower)

let test_json_float_extremes () =
  List.iter
    (fun f ->
      match roundtrip (J.Float f) with
      | J.Float f' -> check (Alcotest.float 0.) "exact" f f'
      | _ -> Alcotest.fail "expected a float")
    [
      Float.max_float; -.Float.max_float; Float.min_float; -.Float.min_float;
      4.9e-324 (* smallest subnormal *); -4.9e-324; 1e308; -1e308;
      -123456789.0625; 2. ** 53.; -.(2. ** 53.);
    ];
  (* huge integer-valued floats must not be printed in %.1f notation
     that silently rounds: they take the round-tripping path *)
  (match roundtrip (J.Float 1e306) with
  | J.Float f -> check (Alcotest.float 0.) "1e306" 1e306 f
  | _ -> Alcotest.fail "expected a float");
  (* negative zero keeps its sign bit *)
  match roundtrip (J.Float (-0.0)) with
  | J.Float f -> checkb "negative zero" true (1. /. f = Float.neg_infinity)
  | _ -> Alcotest.fail "expected a float"

let test_json_errors () =
  let bad s =
    match J.of_string s with
    | exception J.Parse_error _ -> ()
    | _ -> Alcotest.fail (Printf.sprintf "should not parse: %s" s)
  in
  bad "";
  bad "{";
  bad "[1,]";
  bad "{\"a\":1,}";
  bad "tru";
  bad "1 2";
  bad "\"unterminated";
  checkb "member hit" true (J.member "n" sample_json = Some (J.Int (-42)));
  checkb "member miss" true (J.member "zzz" sample_json = None);
  checkb "member non-obj" true (J.member "a" (J.Int 1) = None)

(* ------------------------------------------------------------------ *)
(* Log                                                                *)
(* ------------------------------------------------------------------ *)

(* Run [f] with a buffer reporter and an isolated global level,
   restoring the previous configuration afterwards. *)
let with_capture ?(level = Some Log.Warn) f =
  let saved = Log.global_level () in
  let reporter, events = Log.buffer_reporter () in
  Log.set_reporter reporter;
  Log.set_level level;
  Fun.protect
    ~finally:(fun () ->
      Log.set_reporter Log.nop_reporter;
      Log.set_level saved)
    (fun () -> f events)

let test_log_levels () =
  let src = Log.Src.create "test-levels" in
  Log.Src.set_level src None;
  with_capture ~level:(Some Log.Warn) (fun events ->
      Log.debug src (fun m -> m "dropped debug");
      Log.info src (fun m -> m "dropped info");
      Log.warn src (fun m -> m "kept warn %d" 1);
      Log.err src (fun m -> m "kept error");
      let evs = events () in
      checki "only warn+error pass at Warn" 2 (List.length evs);
      checks "first is the warn" "kept warn 1" (List.nth evs 0).Log.ev_msg;
      checkb "levels recorded" true
        ((List.nth evs 0).Log.ev_level = Log.Warn
        && (List.nth evs 1).Log.ev_level = Log.Error))

let test_log_filtering_is_lazy () =
  let src = Log.Src.create "test-lazy" in
  Log.Src.set_level src None;
  with_capture ~level:(Some Log.Error) (fun events ->
      let touched = ref 0 in
      Log.debug src (fun m ->
          incr touched;
          m "never formatted");
      checki "disabled message never runs its closure" 0 !touched;
      checki "nothing reported" 0 (List.length (events ())));
  with_capture ~level:None (fun events ->
      Log.err src (fun m -> m "even errors are off when level is None");
      checki "None disables everything" 0 (List.length (events ())))

let test_log_source_override () =
  let noisy = Log.Src.create "test-noisy" in
  let quiet = Log.Src.create "test-quiet" in
  with_capture ~level:(Some Log.Warn) (fun events ->
      Log.Src.set_level noisy (Some Log.Debug);
      Log.Src.set_level quiet (Some Log.Error);
      Log.debug noisy (fun m -> m "noisy debug passes");
      Log.warn quiet (fun m -> m "quiet warn dropped");
      Log.err quiet (fun m -> m "quiet error passes");
      let evs = events () in
      checki "override respected both ways" 2 (List.length evs);
      checks "src recorded" "test-noisy" (List.nth evs 0).Log.ev_src;
      Log.Src.set_level noisy None;
      Log.Src.set_level quiet None)

let test_log_set_from_string () =
  let saved = Log.global_level () in
  Fun.protect
    ~finally:(fun () -> Log.set_level saved)
    (fun () ->
      (match Log.set_from_string "info,test-directive=debug" with
      | Ok () -> ()
      | Error m -> Alcotest.fail m);
      checkb "global became info" true (Log.global_level () = Some Log.Info);
      (* the per-source directive pre-registered the source *)
      let src = Log.Src.create "test-directive" in
      checkb "pending level applied" true (Log.Src.level src = Some Log.Debug);
      checkb "enabled at debug" true (Log.enabled src Log.Debug);
      Log.Src.set_level src None;
      (match Log.set_from_string "nonsense-level" with
      | Ok () -> Alcotest.fail "bogus level must not parse"
      | Error _ -> ());
      match Log.set_from_string "quiet" with
      | Ok () -> checkb "quiet disables" true (Log.global_level () = None)
      | Error m -> Alcotest.fail m)

let test_log_fields_and_same_name () =
  let a = Log.Src.create "test-same" in
  let b = Log.Src.create "test-same" in
  checkb "same name gives the same source" true (a == b);
  with_capture ~level:(Some Log.Info) (fun events ->
      Log.info a
        (fun m ->
          m
            ~fields:[ Log.str "who" "x"; Log.int "n" 7; Log.float "f" 0.5;
                      Log.bool "ok" true ]
            "structured");
      match events () with
      | [ ev ] ->
        checki "four fields" 4 (List.length ev.Log.ev_fields);
        checkb "int field" true
          (List.assoc "n" ev.Log.ev_fields = J.Int 7)
      | evs -> Alcotest.fail (Printf.sprintf "expected 1 event, got %d" (List.length evs)))

let test_ndjson_reporter () =
  let path = Filename.temp_file "tka_obs" ".ndjson" in
  let oc = open_out path in
  let saved = Log.global_level () in
  let src = Log.Src.create "test-ndjson" in
  Log.set_reporter (Log.ndjson_reporter oc);
  Log.set_level (Some Log.Info);
  Log.info src (fun m -> m ~fields:[ Log.int "k" 3 ] "line one");
  Log.warn src (fun m -> m "line two");
  Log.set_reporter Log.nop_reporter;
  Log.set_level saved;
  close_out oc;
  let ic = open_in path in
  let l1 = input_line ic in
  let l2 = input_line ic in
  close_in ic;
  Sys.remove path;
  let j1 = J.of_string l1 and j2 = J.of_string l2 in
  checkb "msg" true (J.member "msg" j1 = Some (J.Str "line one"));
  checkb "level" true (J.member "level" j2 = Some (J.Str "warn"));
  checkb "src" true (J.member "src" j1 = Some (J.Str "test-ndjson"));
  checkb "field" true (J.member "k" j1 = Some (J.Int 3));
  checkb "timestamp present" true (J.member "ts_ns" j1 <> None)

(* ------------------------------------------------------------------ *)
(* Metrics                                                            *)
(* ------------------------------------------------------------------ *)

let test_counter_semantics () =
  let r = Metrics.create_registry () in
  let c = Metrics.Counter.make ~registry:r "t.counter" in
  Metrics.Counter.incr c;
  checki "disabled incr is a no-op" 0 (Metrics.Counter.value c);
  Metrics.with_enabled true (fun () ->
      Metrics.Counter.incr c;
      Metrics.Counter.add c 5);
  checki "enabled updates apply" 6 (Metrics.Counter.value c);
  let c' = Metrics.Counter.make ~registry:r "t.counter" in
  Metrics.with_enabled true (fun () -> Metrics.Counter.incr c');
  checki "same name is the same counter" 7 (Metrics.Counter.value c);
  checkb "find_counter" true (Metrics.find_counter ~registry:r "t.counter" <> None);
  checkb "find wrong kind" true (Metrics.find_gauge ~registry:r "t.counter" = None);
  (match Metrics.Gauge.make ~registry:r "t.counter" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind mismatch must be rejected");
  Metrics.reset ~registry:r ();
  checki "reset zeroes" 0 (Metrics.Counter.value c)

let test_gauge_semantics () =
  let r = Metrics.create_registry () in
  let g = Metrics.Gauge.make ~registry:r "t.gauge" in
  Metrics.Gauge.set g 3.5;
  checkf "disabled set is a no-op" 0.0 (Metrics.Gauge.value g);
  Metrics.with_enabled true (fun () -> Metrics.Gauge.set g 3.5);
  checkf "set applies" 3.5 (Metrics.Gauge.value g)

let test_histogram_semantics () =
  let r = Metrics.create_registry () in
  let h = Metrics.Histogram.make ~registry:r ~buckets:[| 1.0; 2.0; 4.0 |] "t.h" in
  Metrics.with_enabled true (fun () ->
      List.iter (Metrics.Histogram.observe h) [ 0.5; 1.0; 1.5; 4.0; 100.0 ]);
  (* bounds are inclusive upper bounds; the 4th cell is overflow *)
  checkb "bucket counts" true
    (Metrics.Histogram.counts h = [| 2; 1; 1; 1 |]);
  checki "count" 5 (Metrics.Histogram.count h);
  checkf "sum" 107.0 (Metrics.Histogram.sum h);
  Metrics.with_disabled (fun () -> Metrics.Histogram.observe h 9.0);
  checki "with_disabled suppresses" 5 (Metrics.Histogram.count h);
  checkb "default buckets increase" true
    (let b = Metrics.Histogram.default_buckets in
     Array.for_all (fun x -> x > 0.) b
     && Array.for_all
          (fun i -> b.(i) < b.(i + 1))
          (Array.init (Array.length b - 1) Fun.id))

let test_metrics_json () =
  let r = Metrics.create_registry () in
  let c = Metrics.Counter.make ~registry:r "a.count" in
  let g = Metrics.Gauge.make ~registry:r "b.gauge" in
  let h = Metrics.Histogram.make ~registry:r ~buckets:[| 1.0 |] "c.hist" in
  Metrics.with_enabled true (fun () ->
      Metrics.Counter.add c 3;
      Metrics.Gauge.set g 1.25;
      Metrics.Histogram.observe h 0.5;
      Metrics.Histogram.observe h 2.0);
  let j = Metrics.to_json ~registry:r () in
  (* serialises compactly and parses back *)
  let j' = J.of_string (J.to_string j) in
  checkb "counter exported as int" true (J.member "a.count" j' = Some (J.Int 3));
  checkb "gauge exported as float" true (J.member "b.gauge" j' = Some (J.Float 1.25));
  (match J.member "c.hist" j' with
  | Some hist ->
    checkb "hist count" true (J.member "count" hist = Some (J.Int 2));
    checkb "hist counts" true
      (J.member "counts" hist = Some (J.List [ J.Int 1; J.Int 1 ]))
  | None -> Alcotest.fail "histogram missing from export");
  (* keys come out sorted *)
  match j with
  | J.Obj kvs ->
    let keys = List.map fst kvs in
    checkb "sorted keys" true (keys = List.sort compare keys)
  | _ -> Alcotest.fail "expected an object"

let test_metrics_noop_no_alloc () =
  let r = Metrics.create_registry () in
  let c = Metrics.Counter.make ~registry:r "noalloc.count" in
  let g = Metrics.Gauge.make ~registry:r "noalloc.gauge" in
  let h = Metrics.Histogram.make ~registry:r "noalloc.hist" in
  Metrics.set_enabled false;
  (* warm up any one-time setup *)
  Metrics.Counter.incr c;
  Metrics.Gauge.set g 1.0;
  Metrics.Histogram.observe h 1.0;
  let v = 0.125 in
  let before = Gc.minor_words () in
  for _ = 1 to 10_000 do
    Metrics.Counter.incr c;
    Metrics.Counter.add c 2;
    Metrics.Gauge.set g v;
    Metrics.Histogram.observe h v
  done;
  let allocated = Gc.minor_words () -. before in
  (* allow a few words of slack for the Gc.minor_words calls themselves *)
  checkb
    (Printf.sprintf "disabled hot path allocates nothing (saw %.0f words)"
       allocated)
    true (allocated < 256.)

let test_histogram_percentiles () =
  let r = Metrics.create_registry () in
  let h =
    Metrics.Histogram.make ~registry:r ~buckets:[| 1.0; 2.0; 4.0 |] "t.pct"
  in
  checkb "empty histogram gives nan" true
    (Float.is_nan (Metrics.Histogram.percentile h 0.5));
  (match Metrics.Histogram.percentile h 1.5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "q outside [0,1] must be rejected");
  (* one observation per bucket, including overflow *)
  Metrics.with_enabled true (fun () ->
      List.iter (Metrics.Histogram.observe h) [ 0.5; 1.5; 3.0; 8.0 ]);
  (* rank = q * total; bucket boundaries interpolate exactly to the
     bucket's upper bound *)
  checkf "q=0 is the distribution floor" 0.0 (Metrics.Histogram.percentile h 0.);
  checkf "p25 lands on the first bound" 1.0 (Metrics.Histogram.percentile h 0.25);
  checkf "p50 lands on the second bound" 2.0 (Metrics.Histogram.percentile h 0.5);
  checkf "p75 lands on the third bound" 4.0 (Metrics.Histogram.percentile h 0.75);
  (* overflow observations clamp to the last finite bound *)
  checkf "p100 clamps to the last bound" 4.0 (Metrics.Histogram.percentile h 1.);
  (* interpolation inside one bucket *)
  let h1 = Metrics.Histogram.make ~registry:r ~buckets:[| 4.0 |] "t.pct1" in
  Metrics.with_enabled true (fun () ->
      List.iter (Metrics.Histogram.observe h1) [ 1.0; 2.0; 3.0; 4.0 ]);
  checkf "within-bucket interpolation" 2.0 (Metrics.Histogram.percentile h1 0.5);
  (* empty buckets are skipped, not interpolated into *)
  let h2 = Metrics.Histogram.make ~registry:r ~buckets:[| 1.0; 2.0; 4.0 |] "t.pct2" in
  Metrics.with_enabled true (fun () -> Metrics.Histogram.observe h2 3.0);
  checkf "empty leading buckets skipped" 3.0 (Metrics.Histogram.percentile h2 0.5);
  (* the JSON export carries the percentile estimates (null when empty) *)
  let j = J.of_string (J.to_string (Metrics.to_json ~registry:r ())) in
  (match J.member "t.pct" j with
  | Some hist ->
    checkb "p50 exported" true (J.member "p50" hist = Some (J.Float 2.0));
    checkb "p99 exported" true (J.member "p99" hist <> None)
  | None -> Alcotest.fail "histogram missing from export");
  let h3 = Metrics.Histogram.make ~registry:r ~buckets:[| 1.0 |] "t.pct3" in
  ignore h3;
  match J.member "t.pct3" (Metrics.to_json ~registry:r ()) with
  | Some hist -> checkb "empty percentiles are null" true (J.member "p50" hist = Some J.Null)
  | None -> Alcotest.fail "empty histogram missing from export"

let test_prometheus_names () =
  checks "dots become underscores" "incr_cache_hits"
    (Metrics.prometheus_name "incr.cache_hits");
  checks "valid names pass through" "serve_requests:rate"
    (Metrics.prometheus_name "serve_requests:rate");
  checks "leading digit gets a prefix" "_9lives" (Metrics.prometheus_name "9lives");
  checks "arbitrary punctuation collapses" "a_b_c"
    (Metrics.prometheus_name "a-b c");
  checks "empty name survives" "_" (Metrics.prometheus_name "");
  checks "backslash escaped" {|a\\b|} (Metrics.prometheus_escape_label {|a\b|});
  checks "quote escaped" {|say \"hi\"|}
    (Metrics.prometheus_escape_label {|say "hi"|});
  checks "newline escaped" {|one\ntwo|} (Metrics.prometheus_escape_label "one\ntwo");
  checks "all three at once" {|\\\"\n|}
    (Metrics.prometheus_escape_label "\\\"\n")

let test_prometheus_render () =
  let r = Metrics.create_registry () in
  let c = Metrics.Counter.make ~registry:r "serve.requests" in
  let g = Metrics.Gauge.make ~registry:r "pool.load" in
  let h = Metrics.Histogram.make ~registry:r ~buckets:[| 0.1; 1.0 |] "rpc.lat_s" in
  Metrics.with_enabled true (fun () ->
      Metrics.Counter.add c 3;
      Metrics.Gauge.set g (-2.5);
      List.iter (Metrics.Histogram.observe h) [ 0.05; 0.5; 5.0 ]);
  let expected =
    String.concat "\n"
      [
        (* sorted by sanitised name: pool_load < rpc_lat_s < serve_requests *)
        "# TYPE pool_load gauge";
        "pool_load -2.5";
        "# TYPE rpc_lat_s histogram";
        (* bucket counts are cumulative; +Inf equals the total count *)
        "rpc_lat_s_bucket{le=\"0.1\"} 1";
        "rpc_lat_s_bucket{le=\"1\"} 2";
        "rpc_lat_s_bucket{le=\"+Inf\"} 3";
        "rpc_lat_s_sum 5.55";
        "rpc_lat_s_count 3";
        "# TYPE serve_requests counter";
        "serve_requests 3";
        "";
      ]
  in
  checks "full exposition text" expected (Metrics.render_prometheus ~registry:r ())

let test_prometheus_values () =
  let r = Metrics.create_registry () in
  let g = Metrics.Gauge.make ~registry:r "g" in
  let render () = Metrics.render_prometheus ~registry:r () in
  let set v = Metrics.with_enabled true (fun () -> Metrics.Gauge.set g v) in
  set 42.0;
  checks "integral floats have no fraction" "# TYPE g gauge\ng 42\n" (render ());
  set Float.infinity;
  checks "+inf spelled per the format" "# TYPE g gauge\ng +Inf\n" (render ());
  set Float.neg_infinity;
  checks "-inf spelled per the format" "# TYPE g gauge\ng -Inf\n" (render ());
  set Float.nan;
  checks "nan spelled per the format" "# TYPE g gauge\ng NaN\n" (render ());
  (* an awkward double must render with enough digits to read back *)
  set 0.1;
  (match String.index_opt (render ()) '\n' with
  | Some _ ->
    let line = List.nth (String.split_on_char '\n' (render ())) 1 in
    let v = Scanf.sscanf line "g %f" Fun.id in
    checkb "value round-trips through the text form" true (v = 0.1)
  | None -> Alcotest.fail "no rendered line");
  (* an empty histogram still renders, with all-zero buckets *)
  let r2 = Metrics.create_registry () in
  let _h = Metrics.Histogram.make ~registry:r2 ~buckets:[| 1.0 |] "h" in
  checks "empty histogram renders zeros"
    "# TYPE h histogram\nh_bucket{le=\"1\"} 0\nh_bucket{le=\"+Inf\"} 0\nh_sum 0\nh_count 0\n"
    (Metrics.render_prometheus ~registry:r2 ())

(* ------------------------------------------------------------------ *)
(* Trace                                                              *)
(* ------------------------------------------------------------------ *)

let with_tracing f =
  Trace.clear ();
  Trace.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Trace.set_enabled false;
      Trace.clear ())
    f

let test_span_nesting () =
  with_tracing (fun () ->
      let result =
        Trace.with_span "outer" (fun () ->
            Trace.with_span ~cat:"inner-cat" "inner" (fun () -> 21 * 2))
      in
      checki "value passes through" 42 result;
      match Trace.spans () with
      | [ inner; outer ] ->
        checks "child completes first" "inner" inner.Trace.sp_name;
        checks "parent last" "outer" outer.Trace.sp_name;
        checki "child depth" 1 inner.Trace.sp_depth;
        checki "parent depth" 0 outer.Trace.sp_depth;
        checks "category" "inner-cat" inner.Trace.sp_cat;
        checkb "durations non-negative" true
          (inner.Trace.sp_dur_ns >= 0L && outer.Trace.sp_dur_ns >= 0L);
        (* child interval nested inside the parent interval *)
        checkb "child starts after parent" true
          (inner.Trace.sp_start_ns >= outer.Trace.sp_start_ns);
        checkb "child ends before parent" true
          (Int64.add inner.Trace.sp_start_ns inner.Trace.sp_dur_ns
          <= Int64.add outer.Trace.sp_start_ns outer.Trace.sp_dur_ns)
      | spans ->
        Alcotest.fail (Printf.sprintf "expected 2 spans, got %d" (List.length spans)))

let test_span_exception_safety () =
  with_tracing (fun () ->
      (match Trace.with_span "boom" (fun () -> failwith "expected") with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "exception must propagate");
      (match Trace.spans () with
      | [ s ] -> checks "span recorded despite raise" "boom" s.Trace.sp_name
      | spans ->
        Alcotest.fail (Printf.sprintf "expected 1 span, got %d" (List.length spans)));
      (* the nesting depth unwound correctly *)
      Trace.with_span "after" (fun () -> ());
      match Trace.spans () with
      | [ _; after ] -> checki "depth restored after raise" 0 after.Trace.sp_depth
      | _ -> Alcotest.fail "expected 2 spans")

let test_trace_disabled_is_identity () =
  Trace.clear ();
  Trace.set_enabled false;
  let r = Trace.with_span "ghost" (fun () -> "ok") in
  checks "thunk still runs" "ok" r;
  Trace.instant "ghost-marker";
  checki "nothing recorded when disabled" 0 (List.length (Trace.spans ()))

let test_trace_json () =
  with_tracing (fun () ->
      Trace.with_span ~args:[ ("k", J.Int 5) ] "spanned" (fun () ->
          Trace.instant "marker");
      let j = J.of_string (J.to_string (Trace.to_json ())) in
      match J.member "traceEvents" j with
      | Some (J.List evs) ->
        checki "two events" 2 (List.length evs);
        let names =
          List.filter_map (fun e -> J.member "name" e) evs
          |> List.map (function J.Str s -> s | _ -> "?")
        in
        checkb "both named" true
          (List.mem "spanned" names && List.mem "marker" names);
        List.iter
          (fun e ->
            checkb "pid/tid present" true
              (J.member "pid" e = Some (J.Int 1) && J.member "tid" e = Some (J.Int 1));
            checkb "phase is X or i" true
              (match J.member "ph" e with
              | Some (J.Str ("X" | "i")) -> true
              | _ -> false))
          evs;
        (* the complete event carries its args *)
        let spanned =
          List.find
            (fun e -> J.member "name" e = Some (J.Str "spanned"))
            evs
        in
        checkb "args preserved" true
          (match J.member "args" spanned with
          | Some a -> J.member "k" a = Some (J.Int 5)
          | None -> false)
      | _ -> Alcotest.fail "traceEvents missing")

let test_span_gc_delta () =
  with_tracing (fun () ->
      Trace.with_span "alloc" (fun () ->
          ignore (Sys.opaque_identity (Array.make 100_000 0.)));
      (match Trace.spans () with
      | [ s ] -> (
        match s.Trace.sp_gc with
        | Some gd ->
          checkb "allocation counted" true
            (gd.Trace.gd_minor_words +. gd.Trace.gd_major_words > 0.);
          checkb "collection counts non-negative" true
            (gd.Trace.gd_minor_collections >= 0
            && gd.Trace.gd_major_collections >= 0)
        | None -> Alcotest.fail "span must carry a GC delta")
      | spans ->
        Alcotest.fail
          (Printf.sprintf "expected 1 span, got %d" (List.length spans)));
      (* the Chrome export merges the delta into the event args *)
      let j = Trace.to_json () in
      (match J.member "traceEvents" j with
      | Some (J.List [ ev ]) ->
        checkb "minor_words in exported args" true
          (match J.member "args" ev with
          | Some a -> J.member "minor_words" a <> None
          | None -> false)
      | _ -> Alcotest.fail "expected one trace event");
      (* instants carry no GC delta *)
      Trace.clear ();
      Trace.instant "mark";
      match Trace.spans () with
      | [ m ] -> checkb "instant has no gc" true (m.Trace.sp_gc = None)
      | _ -> Alcotest.fail "expected the instant")

let test_with_span_args () =
  with_tracing (fun () ->
      let r =
        Trace.with_span_args ~args:[ ("static", J.Int 1) ] "late"
          (fun result -> [ ("result", J.Int result) ])
          (fun () -> 7)
      in
      checki "value passes through" 7 r;
      (match Trace.spans () with
      | [ s ] ->
        checkb "static arg kept" true
          (List.assoc_opt "static" s.Trace.sp_args = Some (J.Int 1));
        checkb "late arg appended" true
          (List.assoc_opt "result" s.Trace.sp_args = Some (J.Int 7))
      | _ -> Alcotest.fail "expected 1 span");
      Trace.clear ();
      (match
         Trace.with_span_args "boom"
           (fun _ -> [ ("x", J.Int 1) ])
           (fun () -> failwith "expected")
       with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "exception must propagate");
      match Trace.spans () with
      | [ s ] ->
        checkb "no late args when the thunk raises" true
          (List.assoc_opt "x" s.Trace.sp_args = None)
      | _ -> Alcotest.fail "expected 1 span")

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "tka_obs"
    [
      ( "jsonx",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "floats" `Quick test_json_floats;
          Alcotest.test_case "string escapes" `Quick test_json_string_escapes;
          Alcotest.test_case "unicode" `Quick test_json_unicode;
          Alcotest.test_case "nested arrays" `Quick test_json_nested_arrays;
          Alcotest.test_case "float extremes" `Quick test_json_float_extremes;
          Alcotest.test_case "errors and member" `Quick test_json_errors;
        ] );
      ( "log",
        [
          Alcotest.test_case "level filtering" `Quick test_log_levels;
          Alcotest.test_case "lazy formatting" `Quick test_log_filtering_is_lazy;
          Alcotest.test_case "per-source override" `Quick test_log_source_override;
          Alcotest.test_case "set_from_string" `Quick test_log_set_from_string;
          Alcotest.test_case "fields + same-name sources" `Quick
            test_log_fields_and_same_name;
          Alcotest.test_case "ndjson reporter" `Quick test_ndjson_reporter;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter" `Quick test_counter_semantics;
          Alcotest.test_case "gauge" `Quick test_gauge_semantics;
          Alcotest.test_case "histogram" `Quick test_histogram_semantics;
          Alcotest.test_case "json export" `Quick test_metrics_json;
          Alcotest.test_case "no-op mode allocates nothing" `Quick
            test_metrics_noop_no_alloc;
          Alcotest.test_case "prometheus names" `Quick test_prometheus_names;
          Alcotest.test_case "prometheus render" `Quick test_prometheus_render;
          Alcotest.test_case "prometheus values" `Quick test_prometheus_values;
          Alcotest.test_case "histogram percentiles" `Quick
            test_histogram_percentiles;
        ] );
      ( "trace",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "exception safety" `Quick test_span_exception_safety;
          Alcotest.test_case "disabled identity" `Quick
            test_trace_disabled_is_identity;
          Alcotest.test_case "chrome json" `Quick test_trace_json;
          Alcotest.test_case "gc delta" `Quick test_span_gc_delta;
          Alcotest.test_case "late args" `Quick test_with_span_args;
        ] );
    ]
