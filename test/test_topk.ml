(* Tests for the top-k core: coupling sets, dominance, irredundant
   lists, pseudo aggressors, the enumeration engine, the brute-force
   baseline and reports. Includes the paper's Fig. 4 (non-monotonic set
   content) and the Table 1 validation (agreement with brute force for
   small k). *)

module CS = Tka_topk.Coupling_set
module Dominance = Tka_topk.Dominance
module Ilist = Tka_topk.Ilist
module Pseudo = Tka_topk.Pseudo
module Engine = Tka_topk.Engine
module Addition = Tka_topk.Addition
module Elimination = Tka_topk.Elimination
module BF = Tka_topk.Brute_force
module Report = Tka_topk.Report
module N = Tka_circuit.Netlist
module Builder = Tka_circuit.Builder
module Topo = Tka_circuit.Topo
module CN = Tka_noise.Coupled_noise
module VN = Tka_noise.Victim_noise
module Envelope = Tka_waveform.Envelope
module Pulse = Tka_waveform.Pulse
module Transition = Tka_waveform.Transition
module Interval = Tka_util.Interval
module B = Tka_layout.Benchmarks
module Lib = Tka_cell.Default_lib

let check_f6 = Alcotest.(check (float 1e-6))

let tiny_topo =
  lazy
    (let nl = B.tiny () in
     (nl, Topo.create nl))

(* ------------------------------------------------------------------ *)
(* Coupling_set                                                       *)
(* ------------------------------------------------------------------ *)

let test_cs_basics () =
  let s = CS.of_list [ 3; 1; 2; 1 ] in
  Alcotest.(check int) "dedup" 3 (CS.cardinality s);
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3 ] (CS.to_list s);
  Alcotest.(check bool) "mem" true (CS.mem 2 s);
  Alcotest.(check bool) "not mem" false (CS.mem 9 s);
  Alcotest.(check int) "empty" 0 (CS.cardinality CS.empty)

let test_cs_algebra () =
  let a = CS.of_list [ 1; 2; 3 ] and b = CS.of_list [ 3; 4 ] in
  Alcotest.(check (list int)) "union" [ 1; 2; 3; 4 ] (CS.to_list (CS.union a b));
  Alcotest.(check (list int)) "inter" [ 3 ] (CS.to_list (CS.inter a b));
  Alcotest.(check (list int)) "diff" [ 1; 2 ] (CS.to_list (CS.diff a b));
  Alcotest.(check bool) "subset" true (CS.subset (CS.of_list [ 1; 3 ]) a);
  Alcotest.(check bool) "not subset" false (CS.subset b a);
  Alcotest.(check bool) "disjoint" true (CS.disjoint (CS.of_list [ 1 ]) (CS.of_list [ 2 ]));
  Alcotest.(check bool) "not disjoint" false (CS.disjoint a b)

let test_cs_predicates () =
  let nl, _ = Lazy.force tiny_topo in
  let d = List.hd (CN.aggressors_of_victim nl (N.find_net_exn nl "n1").N.net_id) in
  let s = CS.singleton (CN.directed_id d) in
  Alcotest.(check bool) "contains" true (CS.contains_fn s d);
  Alcotest.(check bool) "excludes" false (CS.excludes_fn s d)

let cs_qcheck =
  let open QCheck in
  let arb_set = map CS.of_list (list_of_size (Gen.int_range 0 10) (int_bound 20)) in
  [
    Test.make ~name:"union commutative" ~count:200 (pair arb_set arb_set)
      (fun (a, b) -> CS.equal (CS.union a b) (CS.union b a));
    Test.make ~name:"inter subset of both" ~count:200 (pair arb_set arb_set)
      (fun (a, b) ->
        let i = CS.inter a b in
        CS.subset i a && CS.subset i b);
    Test.make ~name:"diff disjoint from subtrahend" ~count:200 (pair arb_set arb_set)
      (fun (a, b) -> CS.disjoint (CS.diff a b) b);
    Test.make ~name:"union cardinality" ~count:200 (pair arb_set arb_set)
      (fun (a, b) ->
        CS.cardinality (CS.union a b)
        = CS.cardinality a + CS.cardinality b - CS.cardinality (CS.inter a b));
    Test.make ~name:"add then mem" ~count:200 (pair (int_bound 30) arb_set)
      (fun (x, s) -> CS.mem x (CS.add x s));
  ]

(* The struct-of-arrays rewrite must be observationally identical to
   the string-keyed sorted-list implementation it replaced: same
   canonical hash_key (memo tables keyed on it survive the swap), same
   ordering, and the same verdicts from every operation the dominance
   and dedupe machinery relies on. [Ref] is that old implementation,
   kept list-wise on purpose. *)
module Ref_cs = struct
  let of_list l = List.sort_uniq Int.compare l
  let hash_key l = String.concat "," (List.map string_of_int l)
  let compare = List.compare Int.compare
  let subset a b = List.for_all (fun x -> List.mem x b) a
  let union a b = List.sort_uniq Int.compare (a @ b)
  let inter a b = List.filter (fun x -> List.mem x b) a
  let diff a b = List.filter (fun x -> not (List.mem x b)) a
end

let cs_roundtrip_qcheck =
  let open QCheck in
  let arb_ids = list_of_size (Gen.int_range 0 12) (int_bound 24) in
  let both l = (CS.of_list l, Ref_cs.of_list l) in
  let sign i = Stdlib.compare i 0 in
  [
    Test.make ~name:"to_list round-trips through the reference" ~count:300
      arb_ids (fun l ->
        let s, r = both l in
        CS.to_list s = r);
    Test.make ~name:"hash_key matches the string-id reference" ~count:300
      arb_ids (fun l ->
        let s, r = both l in
        CS.hash_key s = Ref_cs.hash_key r);
    Test.make ~name:"compare matches the reference order" ~count:300
      (pair arb_ids arb_ids) (fun (la, lb) ->
        let sa, ra = both la and sb, rb = both lb in
        sign (CS.compare sa sb) = sign (Ref_cs.compare ra rb));
    Test.make ~name:"subset verdicts agree (dominance precondition)"
      ~count:300 (pair arb_ids arb_ids) (fun (la, lb) ->
        let sa, ra = both la and sb, rb = both lb in
        CS.subset sa sb = Ref_cs.subset ra rb
        && CS.equal sa sb = (ra = rb)
        && CS.mem 7 sa = List.mem 7 ra);
    Test.make ~name:"union/inter/diff round-trip" ~count:300
      (pair arb_ids arb_ids) (fun (la, lb) ->
        let sa, ra = both la and sb, rb = both lb in
        CS.to_list (CS.union sa sb) = Ref_cs.union ra rb
        && CS.to_list (CS.inter sa sb) = Ref_cs.inter ra rb
        && CS.to_list (CS.diff sa sb) = Ref_cs.diff ra rb);
    Test.make ~name:"equal sets hash equal and Tbl finds them" ~count:300
      arb_ids (fun l ->
        let s, _ = both l in
        let s' = CS.of_list (List.rev l) in
        let tbl = CS.Tbl.create 4 in
        CS.Tbl.replace tbl s ();
        CS.hash s = CS.hash s' && CS.Tbl.mem tbl s');
  ]

(* ------------------------------------------------------------------ *)
(* Dominance                                                          *)
(* ------------------------------------------------------------------ *)

let victim = Transition.make ~t50:1.0 ~slew:0.1 ()

let env ~peak ~window_lo ~window_hi =
  Envelope.of_pulse
    ~window:(Interval.make window_lo window_hi)
    (Pulse.make ~onset:0. ~peak ~rise:0.05 ~decay:0.1)

let test_dominance_interval () =
  let i = Dominance.interval ~victim in
  Alcotest.(check bool) "covers t50" true (Interval.contains i 1.0);
  Alcotest.(check bool) "upper bounded by saturation" true
    (Interval.hi i <= 1.0 +. (VN.saturation_slews +. 1.) *. 0.1)

let test_dominance_partial_order () =
  let i = Dominance.interval ~victim in
  let small = env ~peak:0.1 ~window_lo:0.9 ~window_hi:1.0 in
  let big = env ~peak:0.3 ~window_lo:0.8 ~window_hi:1.1 in
  Alcotest.(check bool) "big dominates small" true (Dominance.dominates ~interval:i big small);
  Alcotest.(check bool) "small not dominates big" false
    (Dominance.dominates ~interval:i small big);
  Alcotest.(check bool) "reflexive" true (Dominance.dominates ~interval:i small small)

let test_dominance_fig6_incomparable () =
  let i = Dominance.interval ~victim in
  (* A tall narrow early vs short wide late: neither encapsulates *)
  let a = env ~peak:0.4 ~window_lo:0.95 ~window_hi:1.0 in
  let b = env ~peak:0.15 ~window_lo:0.9 ~window_hi:1.3 in
  Alcotest.(check bool) "mutually undominated" true
    (Dominance.mutually_undominated ~interval:i a b)

let test_dominance_implies_more_noise () =
  (* Theorem 1: dominating envelope yields at least as much delay noise,
     also after adding the same extra envelope to both *)
  let i = Dominance.interval ~victim in
  let p = env ~peak:0.3 ~window_lo:0.8 ~window_hi:1.1 in
  let q = env ~peak:0.15 ~window_lo:0.9 ~window_hi:1.0 in
  let extra = env ~peak:0.2 ~window_lo:1.0 ~window_hi:1.05 in
  Alcotest.(check bool) "p dominates q" true (Dominance.dominates ~interval:i p q);
  let noise e = VN.delay_noise_of_envelope ~victim e in
  Alcotest.(check bool) "noise order" true (noise p >= noise q -. 1e-9);
  Alcotest.(check bool) "noise order preserved under union" true
    (noise (Envelope.add p extra) >= noise (Envelope.add q extra) -. 1e-9)

(* ------------------------------------------------------------------ *)
(* Ilist                                                              *)
(* ------------------------------------------------------------------ *)

let entry couplings envelope objective = { Ilist.couplings; envelope; objective }

let test_ilist_prune_dominated () =
  let i = Dominance.interval ~victim in
  let stats = Ilist.fresh_stats () in
  let big = env ~peak:0.3 ~window_lo:0.8 ~window_hi:1.1 in
  let small = env ~peak:0.1 ~window_lo:0.9 ~window_hi:1.0 in
  let kept =
    Ilist.prune ~interval:i ~stats
      [
        entry (CS.singleton 1) small 0.01;
        entry (CS.singleton 2) big 0.05;
      ]
  in
  Alcotest.(check int) "one survives" 1 (List.length kept);
  Alcotest.(check int) "dominated counted" 1 stats.Ilist.dominated;
  (match kept with
  | [ e ] -> Alcotest.(check (list int)) "the big one" [ 2 ] (CS.to_list e.Ilist.couplings)
  | _ -> Alcotest.fail "expected one")

let test_ilist_prune_keeps_incomparable () =
  let i = Dominance.interval ~victim in
  let stats = Ilist.fresh_stats () in
  let a = env ~peak:0.4 ~window_lo:0.95 ~window_hi:1.0 in
  let b = env ~peak:0.15 ~window_lo:0.9 ~window_hi:1.3 in
  let kept =
    Ilist.prune ~interval:i ~stats
      [ entry (CS.singleton 1) a 0.03; entry (CS.singleton 2) b 0.02 ]
  in
  Alcotest.(check int) "both survive" 2 (List.length kept)

let test_ilist_prune_dedupes () =
  let i = Dominance.interval ~victim in
  let stats = Ilist.fresh_stats () in
  let e = env ~peak:0.2 ~window_lo:0.9 ~window_hi:1.0 in
  let kept =
    Ilist.prune ~interval:i ~stats
      [ entry (CS.of_list [ 1; 2 ]) e 0.02; entry (CS.of_list [ 2; 1 ]) e 0.02 ]
  in
  Alcotest.(check int) "deduped" 1 (List.length kept);
  Alcotest.(check int) "duplicate counted" 1 stats.Ilist.duplicates

let test_ilist_capacity () =
  let i = Dominance.interval ~victim in
  let stats = Ilist.fresh_stats () in
  (* incomparable family: increasing peak, shrinking width *)
  let entries =
    List.init 10 (fun j ->
        let peak = 0.05 +. (0.03 *. float_of_int j) in
        let hi = 1.3 -. (0.03 *. float_of_int j) in
        entry (CS.singleton j) (env ~peak ~window_lo:0.9 ~window_hi:hi)
          (float_of_int j))
  in
  let kept = Ilist.prune ~capacity:4 ~interval:i ~stats entries in
  Alcotest.(check bool) "capped at 4" true (List.length kept <= 4);
  Alcotest.(check bool) "cap counted" true (stats.Ilist.capped > 0);
  (* objective-descending *)
  let rec desc = function
    | a :: (b :: _ as tl) -> a.Ilist.objective >= b.Ilist.objective && desc tl
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "sorted" true (desc kept)

let test_ilist_best () =
  Alcotest.(check bool) "empty none" true (Ilist.best [] = None);
  let e = entry (CS.singleton 1) Envelope.zero 0.5 in
  (match Ilist.best [ e ] with
  | Some b -> check_f6 "best objective" 0.5 b.Ilist.objective
  | None -> Alcotest.fail "expected best")

let test_ilist_merge_stats () =
  let a = Ilist.fresh_stats () in
  let b = Ilist.fresh_stats () in
  b.Ilist.candidates <- 5;
  b.Ilist.dominated <- 2;
  Ilist.merge_stats a b;
  Alcotest.(check int) "candidates" 5 a.Ilist.candidates;
  Alcotest.(check int) "dominated" 2 a.Ilist.dominated

(* ------------------------------------------------------------------ *)
(* Pseudo                                                              *)
(* ------------------------------------------------------------------ *)

let test_pseudo_zero_shift () =
  Alcotest.(check bool) "zero" true
    (Envelope.is_zero (Pseudo.envelope ~victim ~shift:0.))

let test_pseudo_shift_recovery () =
  List.iter
    (fun shift ->
      let e = Pseudo.envelope ~victim ~shift in
      check_f6
        (Printf.sprintf "shift %g recovered" shift)
        shift
        (Pseudo.shift_of_envelope ~victim e))
    [ 0.01; 0.05; 0.1 ]

let test_pseudo_monotone () =
  let e1 = Pseudo.envelope ~victim ~shift:0.02 in
  let e2 = Pseudo.envelope ~victim ~shift:0.06 in
  Alcotest.(check bool) "bigger shift dominates" true (Envelope.encapsulates e2 e1)

let test_pseudo_reduction_decomposes () =
  let total = 0.08 and removed = 0.03 in
  let full = Pseudo.envelope ~victim ~shift:total in
  let red = Pseudo.reduction_envelope ~victim ~total ~removed in
  let rest = Pseudo.envelope ~victim ~shift:(total -. removed) in
  Alcotest.(check bool) "full = rest + reduction" true
    (Envelope.equal ~eps:1e-9 full (Envelope.add rest red))

let test_pseudo_reduction_validation () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Pseudo.reduction_envelope ~victim ~total:0.01 ~removed:0.05);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Fig. 4: non-monotone top-k content                                 *)
(* ------------------------------------------------------------------ *)

let test_fig4_nonmonotonic_sets () =
  (* The Fig. 4 situation: a1 alone produces the most delay noise, so
     the top-1 set is {a1}; but a2 and a3 together stack above the
     half-supply level and ride the victim crossing far out along their
     later windows, so the top-2 set is {a2, a3} — not a superset of
     the top-1 set. *)
  let v = Transition.make ~t50:1.0 ~slew:0.1 () in
  let noise es = VN.delay_noise_of_envelope ~victim:v (Envelope.combine es) in
  let a1 =
    (* tallest single pulse, but window ends at the victim transition *)
    Envelope.of_pulse
      ~window:(Interval.make 0.6 1.0)
      (Pulse.make ~onset:0. ~peak:0.42 ~rise:0.02 ~decay:0.02)
  in
  let a23 =
    (* individually weaker, but the window extends past the transition *)
    Envelope.of_pulse
      ~window:(Interval.make 0.6 1.15)
      (Pulse.make ~onset:0. ~peak:0.30 ~rise:0.02 ~decay:0.02)
  in
  let a2 = a23 and a3 = a23 in
  let n1 = noise [ a1 ] and n2 = noise [ a2 ] and n3 = noise [ a3 ] in
  Alcotest.(check bool) "top-1 is {a1}" true (n1 > n2 && n1 > n3);
  let n23 = noise [ a2; a3 ] in
  let n12 = noise [ a1; a2 ] and n13 = noise [ a1; a3 ] in
  Alcotest.(check bool) "top-2 is {a2,a3}" true (n23 > n12 && n23 > n13);
  Alcotest.(check bool) "pair effect is strongly superadditive" true
    (n23 > 2. *. (n2 +. n3))

(* ------------------------------------------------------------------ *)
(* Engine: addition / elimination                                     *)
(* ------------------------------------------------------------------ *)

let test_table1_addition_matches_brute_force () =
  (* the validation circuit of the benchmark harness: exact agreement *)
  let spec =
    {
      B.sp_name = "v0";
      sp_gates = 20;
      sp_inputs = 4;
      sp_depth = 4;
      sp_couplings = 24;
      sp_seed = 4242;
    }
  in
  let topo = Topo.create (B.generate spec) in
  let add = Addition.compute ~k:3 topo in
  List.iter
    (fun k ->
      let bf = BF.addition ~budget_s:120. ~k topo in
      Alcotest.(check bool) (Printf.sprintf "k=%d completed" k) true bf.BF.bf_completed;
      check_f6
        (Printf.sprintf "k=%d same delay as brute force" k)
        bf.BF.bf_delay (Addition.evaluate add k))
    [ 1; 2; 3 ]

let test_tiny_addition_near_brute_force () =
  (* tiny's k=3 optimum relies on an in-set feedback interaction the
     static envelope model ranks ~1% lower (see EXPERIMENTS.md, known
     deviations): exact match at k <= 2, within 1%% of the brute-force
     delay at k = 3 *)
  let _, topo = Lazy.force tiny_topo in
  let add = Addition.compute ~k:3 topo in
  List.iter
    (fun k ->
      let bf = BF.addition ~budget_s:120. ~k topo in
      check_f6
        (Printf.sprintf "k=%d exact" k)
        bf.BF.bf_delay (Addition.evaluate add k))
    [ 1; 2 ];
  let bf3 = BF.addition ~budget_s:120. ~k:3 topo in
  let d3 = Addition.evaluate add 3 in
  Alcotest.(check bool) "k=3 within 1% of optimum" true
    (Float.abs (d3 -. bf3.BF.bf_delay) <= 0.01 *. bf3.BF.bf_delay);
  Alcotest.(check bool) "k=3 not above optimum" true
    (d3 <= bf3.BF.bf_delay +. 1e-9)

let test_elimination_matches_brute_force_small () =
  let _, topo = Lazy.force tiny_topo in
  let elim = Elimination.compute ~k:2 topo in
  List.iter
    (fun k ->
      let bf = BF.elimination ~budget_s:120. ~k topo in
      check_f6
        (Printf.sprintf "k=%d same delay as brute force" k)
        bf.BF.bf_delay (Elimination.evaluate elim k))
    [ 1; 2 ]

let test_addition_objectives_monotone () =
  let _, topo = Lazy.force tiny_topo in
  let r = Engine.compute ~config:(Engine.default_config ~k:5) ~mode:Engine.Addition topo in
  let objs =
    Array.to_list r.Engine.res_per_k
    |> List.filter_map (Option.map (fun c -> c.Engine.ch_objective))
  in
  let rec nondec = function
    | a :: (b :: _ as tl) -> a <= b +. 1e-9 && nondec tl
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "monotone" true (nondec objs)

let test_elimination_objectives_monotone () =
  let _, topo = Lazy.force tiny_topo in
  let r =
    Engine.compute ~config:(Engine.default_config ~k:5) ~mode:Engine.Elimination topo
  in
  let objs =
    Array.to_list r.Engine.res_per_k
    |> List.filter_map (Option.map (fun c -> c.Engine.ch_objective))
  in
  let rec nondec = function
    | a :: (b :: _ as tl) -> a <= b +. 1e-9 && nondec tl
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "monotone" true (nondec objs)

let test_addition_delays_bracketed () =
  let _, topo = Lazy.force tiny_topo in
  let add = Addition.compute ~k:4 topo in
  List.iter
    (fun k ->
      let d = Addition.evaluate add k in
      Alcotest.(check bool) "above noiseless" true
        (d >= Addition.noiseless_delay add -. 1e-9);
      Alcotest.(check bool) "below all-aggressor" true
        (d <= Addition.all_aggressor_delay add +. 1e-6))
    [ 1; 2; 3; 4 ]

let test_elimination_delays_bracketed () =
  let _, topo = Lazy.force tiny_topo in
  let elim = Elimination.compute ~k:4 topo in
  List.iter
    (fun k ->
      let d = Elimination.evaluate elim k in
      Alcotest.(check bool) "above noiseless" true
        (d >= Elimination.noiseless_delay elim -. 1e-6);
      Alcotest.(check bool) "below all-aggressor" true
        (d <= Elimination.all_aggressor_delay elim +. 1e-9))
    [ 1; 2; 3; 4 ]

let test_set_cardinalities () =
  let _, topo = Lazy.force tiny_topo in
  let add = Addition.compute ~k:4 topo in
  List.iter
    (fun k ->
      match Addition.set add k with
      | Some s -> Alcotest.(check int) "cardinality" k (CS.cardinality s)
      | None -> Alcotest.fail "expected a set")
    [ 1; 2; 3; 4 ];
  Alcotest.(check bool) "k=0 none" true (Addition.set add 0 = None);
  Alcotest.(check bool) "beyond k none" true (Addition.set add 99 = None)

(* a PO whose only noise arrives from an upstream victim: the pseudo
   aggressor machinery is what finds it *)
let upstream_only () =
  let b = Builder.create ~name:"upstream" () in
  let i1 = Builder.add_input b "i1" in
  let ia = Builder.add_input b "ia" in
  let mid = Builder.add_net b "mid" in
  let agg = Builder.add_net b "agg" in
  let out = Builder.add_net b "out" in
  ignore (Builder.add_gate b ~name:"g1" ~cell:Lib.inverter ~inputs:[ ("A", i1) ] ~output:mid);
  ignore (Builder.add_gate b ~name:"ga" ~cell:Lib.inverter ~inputs:[ ("A", ia) ] ~output:agg);
  ignore (Builder.add_gate b ~name:"g2" ~cell:Lib.inverter ~inputs:[ ("A", mid) ] ~output:out);
  Builder.mark_output b out;
  Builder.mark_output b agg;
  ignore (Builder.add_coupling b mid agg 0.006);
  Builder.finalize b

let test_pseudo_ablation () =
  let nl = upstream_only () in
  let topo = Topo.create nl in
  let with_pseudo = Addition.compute ~k:1 ~use_pseudo:true topo in
  let without = Addition.compute ~k:1 ~use_pseudo:false topo in
  let obj t =
    match t.Addition.result.Engine.res_per_k.(1) with
    | Some c -> c.Engine.ch_objective
    | None -> 0.
  in
  (* the noise on "out" can only be seen by propagating "mid"'s noise *)
  Alcotest.(check bool) "pseudo finds upstream noise" true (obj with_pseudo > 1e-6);
  Alcotest.(check bool) "ablation loses it" true (obj without < obj with_pseudo)

let test_higher_order_ablation_never_better_off () =
  let _, topo = Lazy.force tiny_topo in
  let on = Addition.compute ~k:3 ~use_higher_order:true topo in
  let off = Addition.compute ~k:3 ~use_higher_order:false topo in
  let obj t k =
    match t.Addition.result.Engine.res_per_k.(k) with
    | Some c -> c.Engine.ch_objective
    | None -> 0.
  in
  List.iter
    (fun k ->
      Alcotest.(check bool) "higher-order candidates never hurt" true
        (obj on k >= obj off k -. 1e-9))
    [ 1; 2; 3 ]

let test_engine_stats_populated () =
  let _, topo = Lazy.force tiny_topo in
  let r = Engine.compute ~config:(Engine.default_config ~k:3) ~mode:Engine.Addition topo in
  Alcotest.(check bool) "candidates seen" true (r.Engine.res_stats.Ilist.candidates > 0);
  Alcotest.(check bool) "runtime recorded" true (r.Engine.res_runtime >= 0.)

let test_engine_estimated_delay_bounds () =
  let _, topo = Lazy.force tiny_topo in
  let r = Engine.compute ~config:(Engine.default_config ~k:3) ~mode:Engine.Addition topo in
  List.iter
    (fun k ->
      Alcotest.(check bool) "estimate above noiseless" true
        (Engine.estimated_delay r k >= r.Engine.res_noiseless_delay -. 1e-9))
    [ 1; 2; 3 ];
  Alcotest.(check bool) "bad k raises" true
    (try
       ignore (Engine.estimated_delay r 99);
       false
     with Invalid_argument _ -> true)

let test_engine_k_validation () =
  let _, topo = Lazy.force tiny_topo in
  Alcotest.(check bool) "k=0 rejected" true
    (try
       ignore (Engine.compute ~config:(Engine.default_config ~k:0) ~mode:Engine.Addition topo);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Brute force                                                        *)
(* ------------------------------------------------------------------ *)

let test_binomial () =
  Alcotest.(check int) "C(5,2)" 10 (BF.binomial 5 2);
  Alcotest.(check int) "C(16,3)" 560 (BF.binomial 16 3);
  Alcotest.(check int) "C(n,0)" 1 (BF.binomial 7 0);
  Alcotest.(check int) "C(n,n)" 1 (BF.binomial 7 7);
  Alcotest.(check int) "k>n" 0 (BF.binomial 3 5)

let test_brute_force_counts () =
  let _, topo = Lazy.force tiny_topo in
  let bf = BF.addition ~budget_s:120. ~k:1 topo in
  Alcotest.(check bool) "completed" true bf.BF.bf_completed;
  Alcotest.(check int) "evaluated all" bf.BF.bf_total bf.BF.bf_evaluated;
  Alcotest.(check int) "16 directed singletons" 16 bf.BF.bf_total

let test_brute_force_budget () =
  let _, topo = Lazy.force tiny_topo in
  let bf = BF.addition ~budget_s:(-1.) ~k:2 topo in
  Alcotest.(check bool) "incomplete" false bf.BF.bf_completed;
  Alcotest.(check bool) "evaluated none" true (bf.BF.bf_evaluated = 0)

let test_brute_force_directions_differ () =
  (* the two directions of one coupling are distinct units *)
  let _, topo = Lazy.force tiny_topo in
  let bf = BF.elimination ~budget_s:120. ~k:1 topo in
  Alcotest.(check bool) "found a set" true (bf.BF.bf_set <> None)

(* ------------------------------------------------------------------ *)
(* K_value (the paper's future-work item)                             *)
(* ------------------------------------------------------------------ *)

module Kv = Tka_topk.K_value

let test_kvalue_knee () =
  (* sharply saturating curve: knee at the corner *)
  let curve = [ (1, 0.1); (2, 0.7); (3, 0.9); (4, 0.92); (5, 0.93) ] in
  let k = Kv.knee_of_curve curve in
  Alcotest.(check bool) "knee near the corner" true (k = 2 || k = 3);
  Alcotest.(check bool) "degenerate raises" true
    (try
       ignore (Kv.knee_of_curve [ (1, 0.5) ]);
       false
     with Invalid_argument _ -> true)

let test_kvalue_sampling () =
  let ks = Kv.sample_ks ~kmax:20 in
  Alcotest.(check bool) "dense head" true (List.mem 3 ks && List.mem 7 ks);
  Alcotest.(check bool) "sparse tail" true
    (List.mem 15 ks && not (List.mem 13 ks));
  Alcotest.(check bool) "kmax included" true (List.mem 20 ks)

let test_kvalue_addition_recommendation () =
  let _, topo = Lazy.force tiny_topo in
  let r = Kv.addition ~coverage:0.5 ~kmax:8 topo in
  Alcotest.(check bool) "curve non-empty" true (r.Kv.kv_curve <> []);
  (* fractions are within [0, 1+eps] and non-decreasing *)
  let fr = List.map (fun p -> p.Kv.kv_fraction) r.Kv.kv_curve in
  List.iter
    (fun f -> Alcotest.(check bool) "fraction in range" true (f >= -0.01 && f <= 1.01))
    fr;
  let rec nondec = function
    | a :: (b :: _ as tl) -> a <= b +. 1e-9 && nondec tl
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "monotone fractions" true (nondec fr);
  (match r.Kv.kv_coverage_k with
  | Some k ->
    let p = List.find (fun p -> p.Kv.kv_k = k) r.Kv.kv_curve in
    Alcotest.(check bool) "coverage reached" true (p.Kv.kv_fraction >= 0.5)
  | None -> ());
  Alcotest.(check bool) "knee inside range" true
    (r.Kv.kv_knee_k >= 1 && r.Kv.kv_knee_k <= 8)

let test_kvalue_elimination_recommendation () =
  let _, topo = Lazy.force tiny_topo in
  let r = Kv.elimination ~coverage:0.3 ~kmax:6 topo in
  Alcotest.(check bool) "curve non-empty" true (r.Kv.kv_curve <> []);
  List.iter
    (fun p ->
      Alcotest.(check bool) "recovery in range" true
        (p.Kv.kv_fraction >= -0.01 && p.Kv.kv_fraction <= 1.01))
    r.Kv.kv_curve

(* ------------------------------------------------------------------ *)
(* Random-circuit engine properties                                   *)
(* ------------------------------------------------------------------ *)

(* small random circuits via the benchmark generator *)
let random_topo seed =
  let spec =
    {
      B.sp_name = Printf.sprintf "r%d" seed;
      sp_gates = 12 + (seed mod 8);
      sp_inputs = 3;
      sp_depth = 3 + (seed mod 3);
      sp_couplings = 12 + (seed mod 10);
      sp_seed = seed;
    }
  in
  Topo.create (B.generate spec)

let engine_qcheck =
  let open QCheck in
  [
    Test.make ~name:"addition top-1 matches brute force" ~count:8
      (int_range 1 1000) (fun seed ->
        let topo = random_topo seed in
        let add = Addition.compute ~k:1 topo in
        let bf = BF.addition ~budget_s:60. ~k:1 topo in
        bf.BF.bf_completed
        && Float.abs (Addition.evaluate add 1 -. bf.BF.bf_delay) < 1e-6);
    Test.make ~name:"addition bracketed on random circuits" ~count:8
      (int_range 1 1000) (fun seed ->
        let topo = random_topo seed in
        let add = Addition.compute ~k:3 topo in
        List.for_all
          (fun k ->
            let d = Addition.evaluate add k in
            d >= Addition.noiseless_delay add -. 1e-9
            && d <= Addition.all_aggressor_delay add +. 1e-6)
          [ 1; 2; 3 ]);
    Test.make ~name:"elimination bracketed on random circuits" ~count:8
      (int_range 1 1000) (fun seed ->
        let topo = random_topo seed in
        let elim = Elimination.compute ~k:3 topo in
        List.for_all
          (fun k ->
            let d = Elimination.evaluate elim k in
            d >= Elimination.noiseless_delay elim -. 1e-6
            && d <= Elimination.all_aggressor_delay elim +. 1e-9)
          [ 1; 2; 3 ]);
    Test.make ~name:"evaluate_curve is monotone" ~count:8 (int_range 1 1000)
      (fun seed ->
        let topo = random_topo seed in
        let add = Addition.compute ~k:4 topo in
        let curve = Addition.evaluate_curve add ~ks:[ 1; 2; 3; 4 ] in
        let rec nondec = function
          | (_, _, a) :: ((_, _, b) :: _ as tl) -> a <= b +. 1e-9 && nondec tl
          | [ _ ] | [] -> true
        in
        nondec curve);
  ]

(* ------------------------------------------------------------------ *)
(* Sensitivity                                                         *)
(* ------------------------------------------------------------------ *)

module Sens = Tka_topk.Sensitivity

let test_jaccard () =
  let a = CS.of_list [ 1; 2; 3 ] and b = CS.of_list [ 2; 3; 4 ] in
  Alcotest.(check (float 1e-9)) "2/4" 0.5 (Sens.jaccard a b);
  Alcotest.(check (float 1e-9)) "self" 1.0 (Sens.jaccard a a);
  Alcotest.(check (float 1e-9)) "empties" 1.0 (Sens.jaccard CS.empty CS.empty);
  Alcotest.(check (float 1e-9)) "disjoint" 0.
    (Sens.jaccard (CS.of_list [ 1 ]) (CS.of_list [ 2 ]))

let test_sensitivity_zero_noise_is_stable () =
  let nl, _ = Lazy.force tiny_topo in
  let rng = Tka_util.Rng.create 3 in
  let r = Sens.addition ~trials:3 ~noise_pct:0.0 ~rng ~k:2 nl in
  Alcotest.(check (float 1e-9)) "identical sets" 1.0 r.Sens.sr_jaccard_mean;
  Alcotest.(check int) "core is whole set" 2
    (CS.cardinality r.Sens.sr_always_chosen);
  let lo, hi = r.Sens.sr_delay_spread in
  Alcotest.(check (float 1e-9)) "no delay spread" lo hi

let test_sensitivity_perturbed () =
  let nl, _ = Lazy.force tiny_topo in
  let rng = Tka_util.Rng.create 4 in
  let r = Sens.addition ~trials:5 ~noise_pct:0.2 ~rng ~k:2 nl in
  Alcotest.(check bool) "jaccard in range" true
    (r.Sens.sr_jaccard_mean >= 0. && r.Sens.sr_jaccard_mean <= 1.);
  Alcotest.(check bool) "min <= mean" true
    (r.Sens.sr_jaccard_min <= r.Sens.sr_jaccard_mean +. 1e-9);
  Alcotest.(check bool) "core inside nominal" true
    (CS.cardinality r.Sens.sr_always_chosen <= 2);
  Alcotest.(check bool) "validation" true
    (try
       ignore (Sens.addition ~trials:0 ~rng ~k:1 nl);
       false
     with Invalid_argument _ -> true)

let test_sensitivity_elimination_runs () =
  let nl, _ = Lazy.force tiny_topo in
  let rng = Tka_util.Rng.create 5 in
  let r = Sens.elimination ~trials:3 ~noise_pct:0.1 ~rng ~k:2 nl in
  Alcotest.(check int) "trials recorded" 3 r.Sens.sr_trials;
  let lo, hi = r.Sens.sr_delay_spread in
  Alcotest.(check bool) "spread ordered" true (lo <= hi +. 1e-12)

(* ------------------------------------------------------------------ *)
(* Report                                                              *)
(* ------------------------------------------------------------------ *)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_report_addition () =
  let nl, topo = Lazy.force tiny_topo in
  let add = Addition.compute ~k:2 topo in
  let s = Report.addition nl add ~ks:[ 1; 2 ] in
  Alcotest.(check bool) "mentions top-1" true (contains_sub s "top-1");
  Alcotest.(check bool) "mentions top-2" true (contains_sub s "top-2");
  Alcotest.(check bool) "mentions circuit" true (contains_sub s "tiny")

let test_report_csv () =
  let _, topo = Lazy.force tiny_topo in
  let add = Addition.compute ~k:2 topo in
  let csv = Report.csv_addition add ~ks:[ 1; 2 ] in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "header + 2 rows" 3 (List.length lines);
  let elim = Elimination.compute ~k:2 topo in
  let csv2 = Report.csv_elimination elim ~ks:[ 1; 2 ] in
  Alcotest.(check bool) "has header" true (contains_sub csv2 "k,estimated")

let () =
  Alcotest.run "tka_topk"
    [
      ( "coupling_set",
        [
          Alcotest.test_case "basics" `Quick test_cs_basics;
          Alcotest.test_case "algebra" `Quick test_cs_algebra;
          Alcotest.test_case "predicates" `Quick test_cs_predicates;
        ] );
      ("coupling_set properties", List.map QCheck_alcotest.to_alcotest cs_qcheck);
      ( "coupling_set vs string-id reference",
        List.map QCheck_alcotest.to_alcotest cs_roundtrip_qcheck );
      ( "dominance",
        [
          Alcotest.test_case "interval" `Quick test_dominance_interval;
          Alcotest.test_case "partial order" `Quick test_dominance_partial_order;
          Alcotest.test_case "Fig 6 incomparable" `Quick test_dominance_fig6_incomparable;
          Alcotest.test_case "implies more noise" `Quick test_dominance_implies_more_noise;
        ] );
      ( "ilist",
        [
          Alcotest.test_case "prunes dominated" `Quick test_ilist_prune_dominated;
          Alcotest.test_case "keeps incomparable" `Quick test_ilist_prune_keeps_incomparable;
          Alcotest.test_case "dedupes" `Quick test_ilist_prune_dedupes;
          Alcotest.test_case "capacity" `Quick test_ilist_capacity;
          Alcotest.test_case "best" `Quick test_ilist_best;
          Alcotest.test_case "merge stats" `Quick test_ilist_merge_stats;
        ] );
      ( "pseudo",
        [
          Alcotest.test_case "zero shift" `Quick test_pseudo_zero_shift;
          Alcotest.test_case "shift recovery" `Quick test_pseudo_shift_recovery;
          Alcotest.test_case "monotone" `Quick test_pseudo_monotone;
          Alcotest.test_case "reduction decomposes" `Quick test_pseudo_reduction_decomposes;
          Alcotest.test_case "reduction validation" `Quick test_pseudo_reduction_validation;
        ] );
      ("fig4", [ Alcotest.test_case "non-monotone sets" `Quick test_fig4_nonmonotonic_sets ]);
      ( "engine",
        [
          Alcotest.test_case "Table 1: addition = brute force (v0)" `Slow
            test_table1_addition_matches_brute_force;
          Alcotest.test_case "tiny near brute force" `Slow
            test_tiny_addition_near_brute_force;
          Alcotest.test_case "elimination = brute force (small k)" `Slow
            test_elimination_matches_brute_force_small;
          Alcotest.test_case "addition monotone" `Quick test_addition_objectives_monotone;
          Alcotest.test_case "elimination monotone" `Quick
            test_elimination_objectives_monotone;
          Alcotest.test_case "addition bracketed" `Quick test_addition_delays_bracketed;
          Alcotest.test_case "elimination bracketed" `Quick test_elimination_delays_bracketed;
          Alcotest.test_case "set cardinalities" `Quick test_set_cardinalities;
          Alcotest.test_case "pseudo ablation" `Quick test_pseudo_ablation;
          Alcotest.test_case "higher-order ablation" `Quick
            test_higher_order_ablation_never_better_off;
          Alcotest.test_case "stats populated" `Quick test_engine_stats_populated;
          Alcotest.test_case "estimate bounds" `Quick test_engine_estimated_delay_bounds;
          Alcotest.test_case "k validation" `Quick test_engine_k_validation;
        ] );
      ( "brute_force",
        [
          Alcotest.test_case "binomial" `Quick test_binomial;
          Alcotest.test_case "counts" `Quick test_brute_force_counts;
          Alcotest.test_case "budget" `Quick test_brute_force_budget;
          Alcotest.test_case "directions" `Quick test_brute_force_directions_differ;
        ] );
      ( "k_value",
        [
          Alcotest.test_case "knee" `Quick test_kvalue_knee;
          Alcotest.test_case "sampling" `Quick test_kvalue_sampling;
          Alcotest.test_case "addition recommendation" `Quick
            test_kvalue_addition_recommendation;
          Alcotest.test_case "elimination recommendation" `Quick
            test_kvalue_elimination_recommendation;
        ] );
      ("engine properties", List.map QCheck_alcotest.to_alcotest engine_qcheck);
      ( "sensitivity",
        [
          Alcotest.test_case "jaccard" `Quick test_jaccard;
          Alcotest.test_case "zero noise stable" `Quick
            test_sensitivity_zero_noise_is_stable;
          Alcotest.test_case "perturbed" `Quick test_sensitivity_perturbed;
          Alcotest.test_case "elimination" `Quick test_sensitivity_elimination_runs;
        ] );
      ( "report",
        [
          Alcotest.test_case "addition" `Quick test_report_addition;
          Alcotest.test_case "csv" `Quick test_report_csv;
        ] );
    ]
