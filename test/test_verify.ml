(* Tests for the differential verification layer: ddmin, reproducer
   round-trips, the fuzzer's contract checker, the oracle invariants,
   and a short smoke run of the full driver loop. *)

module Rng = Tka_util.Rng
module N = Tka_circuit.Netlist
module Topo = Tka_circuit.Topo
module Nf = Tka_circuit.Netlist_format
module CS = Tka_topk.Coupling_set
module Lib = Tka_cell.Default_lib
module Minimize = Tka_verify.Minimize
module Gen = Tka_verify.Gen
module Repro = Tka_verify.Repro
module Oracle = Tka_verify.Oracle
module Fuzz = Tka_verify.Fuzz
module Driver = Tka_verify.Driver

(* ------------------------------------------------------------------ *)
(* Minimize                                                           *)
(* ------------------------------------------------------------------ *)

let test_ddmin_pair () =
  (* failure needs exactly {3, 7}: ddmin must find that pair *)
  let test xs = List.mem 3 xs && List.mem 7 xs in
  let out = Minimize.ddmin test [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  Alcotest.(check (list int)) "minimal pair" [ 3; 7 ] out

let test_ddmin_single () =
  let test xs = List.mem 5 xs in
  let out = Minimize.ddmin test (List.init 20 Fun.id) in
  Alcotest.(check (list int)) "singleton" [ 5 ] out

let test_ddmin_monotone_count () =
  (* any 3 elements of the tail suffice: result must have exactly 3 *)
  let test xs = List.length (List.filter (fun x -> x >= 10) xs) >= 3 in
  let out = Minimize.ddmin test (List.init 16 Fun.id) in
  Alcotest.(check int) "three elements" 3 (List.length out);
  Alcotest.(check bool) "still fails" true (test out)

let test_ddmin_not_failing () =
  let xs = [ 1; 2; 3 ] in
  Alcotest.(check (list int)) "unchanged" xs (Minimize.ddmin (fun _ -> false) xs)

let test_ddmin_exception_is_false () =
  (* a test that raises on some inputs must be wrapped by the caller;
     ddmin itself only sees the wrapped total function *)
  let test xs = try List.hd xs = 9 with Failure _ -> false in
  Alcotest.(check (list int)) "hd found" [ 9 ] (Minimize.ddmin test [ 9; 1; 2 ])

let test_minimize_lines_substring () =
  let contains sub s =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    m = 0 || go 0
  in
  let src = "aaa\nbbb\nMAGIC\nccc\n" in
  let out = Minimize.lines (contains "MAGIC") src in
  Alcotest.(check string) "one line" "MAGIC" out

(* ------------------------------------------------------------------ *)
(* Repro                                                              *)
(* ------------------------------------------------------------------ *)

let sample_repro =
  {
    Repro.rp_invariant = "incr";
    rp_seed = 42;
    rp_trial = 7;
    rp_detail = "delay mismatch";
    rp_k = Some 2;
    rp_netlist = Some "circuit t\ninput a\n";
    rp_set = Some [ 0; 3; 5 ];
    rp_edits = Some [ Repro.Remove 1; Repro.Scale (2, 0.5); Repro.Resize (0, "INV_X2") ];
    rp_input = None;
  }

let test_repro_json_roundtrip () =
  match Repro.of_json (Repro.to_json sample_repro) with
  | Error e -> Alcotest.fail e
  | Ok r ->
    Alcotest.(check bool) "roundtrip identical" true (r = sample_repro)

let test_repro_save_load () =
  let path = Filename.temp_file "tka_repro" ".ndjson" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let second = { sample_repro with Repro.rp_invariant = "fuzz_spef";
                     rp_input = Some "*D_NET a 1\n"; rp_edits = None } in
      Repro.save path [ sample_repro; second ];
      match Repro.load path with
      | Error e -> Alcotest.fail e
      | Ok rs ->
        Alcotest.(check int) "two records" 2 (List.length rs);
        Alcotest.(check bool) "both roundtrip" true
          (rs = [ sample_repro; second ]))

let test_repro_load_bad_line () =
  let path = Filename.temp_file "tka_repro" ".ndjson" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "{\"invariant\":\"brute\",\"seed\":1,\"trial\":0,\"detail\":\"d\"}\nnot json\n";
      close_out oc;
      match Repro.load path with
      | Ok _ -> Alcotest.fail "expected load error"
      | Error e ->
        Alcotest.(check bool) "error names line 2" true
          (let contains sub s =
             let n = String.length s and m = String.length sub in
             let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
             m = 0 || go 0
           in
           contains ":2" e))

let test_edit_spec_unknown_cell () =
  Alcotest.(check bool) "unknown cell is None" true
    (Repro.edit_of_spec (Repro.Resize (0, "NOPE_X9")) = None)

(* ------------------------------------------------------------------ *)
(* Fuzz                                                               *)
(* ------------------------------------------------------------------ *)

let test_fuzz_names () =
  List.iter
    (fun fmt ->
      match Fuzz.of_name (Fuzz.name fmt) with
      | Some fmt' -> Alcotest.(check bool) "name roundtrip" true (fmt = fmt')
      | None -> Alcotest.fail ("of_name failed for " ^ Fuzz.name fmt))
    Fuzz.all

let test_fuzz_generate_valid () =
  (* every generated document must parse cleanly: check returns None
     and, with no mutation, no Parse_error fires either *)
  let rng = Rng.create 11 in
  List.iter
    (fun fmt ->
      match Fuzz.check fmt (Fuzz.generate rng fmt) with
      | None -> ()
      | Some d -> Alcotest.fail (Fuzz.name fmt ^ ": valid doc rejected: " ^ d))
    Fuzz.all

let test_fuzz_check_structured_error_ok () =
  (* malformed input with an in-range Parse_error satisfies the contract *)
  Alcotest.(check bool) "netlist garbage ok" true
    (Fuzz.check Fuzz.Netlist_fmt "frobnicate\n" = None);
  Alcotest.(check bool) "liberty garbage ok" true
    (Fuzz.check Fuzz.Liberty "cell(X) {}" = None);
  Alcotest.(check bool) "sdf garbage ok" true
    (Fuzz.check Fuzz.Sdf "((((" = None)

let test_fuzz_mutate_deterministic () =
  let doc = Fuzz.generate (Rng.create 3) Fuzz.Netlist_fmt in
  let a = Fuzz.mutate (Rng.create 5) doc in
  let b = Fuzz.mutate (Rng.create 5) doc in
  Alcotest.(check string) "same seed, same mutation" a b

(* ------------------------------------------------------------------ *)
(* Oracle                                                             *)
(* ------------------------------------------------------------------ *)

let test_oracle_duality_tiny () =
  let nl = Gen.small_circuit (Rng.create 21) in
  let topo = Topo.create nl in
  let u = 2 * N.num_couplings nl in
  Alcotest.(check bool) "has couplings" true (u > 0);
  (* empty set, full universe, and an arbitrary subset *)
  List.iter
    (fun s ->
      match Oracle.duality ~set:(CS.of_list s) topo with
      | Oracle.Pass -> ()
      | Oracle.Skip why -> Alcotest.fail ("unexpected skip: " ^ why)
      | Oracle.Fail d -> Alcotest.fail ("duality violated: " ^ d))
    [ []; List.init u Fun.id; List.filteri (fun i _ -> i mod 2 = 0) (List.init u Fun.id) ]

let test_oracle_brute_tiny () =
  let nl = Gen.small_circuit (Rng.create 31) in
  match Oracle.brute ~k:1 (Topo.create nl) with
  | Oracle.Pass | Oracle.Skip _ -> ()
  | Oracle.Fail d -> Alcotest.fail ("brute k=1 violated: " ^ d)

let test_oracle_brute_rejects_large_k () =
  let nl = Gen.small_circuit (Rng.create 31) in
  Alcotest.(check bool) "k=4 rejected" true
    (try
       ignore (Oracle.brute ~k:4 (Topo.create nl));
       false
     with Invalid_argument _ -> true)

let test_oracle_table2x_pinned () =
  (* regeneration determinism plus a pinned fingerprint: the generator
     draws from one seeded stream in a fixed order, so this value only
     moves if the draw order (or the builder) changes — which must be a
     conscious decision, not an accident *)
  let spec = Tka_layout.Table2x.spec ~nets:2000 () in
  (match Oracle.table2x ~expected:"360b9029a9814172" spec with
  | Oracle.Pass -> ()
  | Oracle.Skip why -> Alcotest.fail ("unexpected skip: " ^ why)
  | Oracle.Fail d -> Alcotest.fail ("table2x pin violated: " ^ d));
  (* a different seed must produce a different circuit *)
  let other = Tka_layout.Table2x.spec ~nets:2000 ~seed:99 () in
  Alcotest.(check bool) "seed changes the netlist" true
    (Oracle.netlist_fingerprint (Tka_layout.Table2x.generate spec)
    <> Oracle.netlist_fingerprint (Tka_layout.Table2x.generate other))

let test_oracle_incremental_tiny () =
  let rng = Rng.create 41 in
  let nl = Gen.medium_circuit rng in
  let edits = Gen.edits rng nl in
  match Oracle.incremental ~k:2 nl edits with
  | Oracle.Pass | Oracle.Skip _ -> ()
  | Oracle.Fail d -> Alcotest.fail ("incremental violated: " ^ d)

let test_oracle_repair_tiny () =
  let rng = Rng.create 43 in
  let nl = Gen.medium_circuit rng in
  match Oracle.repair ~budget:2 ~k:2 nl with
  | Oracle.Pass | Oracle.Skip _ -> ()
  | Oracle.Fail d -> Alcotest.fail ("repair violated: " ^ d)

(* ------------------------------------------------------------------ *)
(* Driver                                                             *)
(* ------------------------------------------------------------------ *)

let test_driver_smoke () =
  (* a short run across all seven trial families must find nothing *)
  let s = Driver.run ~seed:7 ~trials:21 ~minimize:false () in
  Alcotest.(check int) "all trials ran" 21 s.Driver.vs_trials;
  Alcotest.(check int) "families split" 21 Driver.(s.vs_oracle + s.vs_fuzz);
  (match s.Driver.vs_failures with
  | [] -> ()
  | f :: _ ->
    Alcotest.fail
      (Printf.sprintf "defect found by %s: %s" f.Repro.rp_invariant
         f.Repro.rp_detail));
  Alcotest.(check bool) "elapsed recorded" true (s.Driver.vs_elapsed_s >= 0.)

let test_driver_budget_stops () =
  let s = Driver.run ~seed:7 ~trials:1_000_000 ~budget_s:0. () in
  Alcotest.(check int) "budget stops immediately" 0 s.Driver.vs_trials

let test_driver_replay_fuzz () =
  (* a reproducer for a fuzz case that parses fine now reports Passed *)
  let r =
    {
      Repro.rp_invariant = "fuzz_netlist";
      rp_seed = 1;
      rp_trial = 0;
      rp_detail = "";
      rp_k = None;
      rp_netlist = None;
      rp_set = None;
      rp_edits = None;
      rp_input = Some "circuit t\ninput a\noutput a\n";
    }
  in
  (match Driver.replay r with
  | Driver.Passed -> ()
  | Driver.Reproduced d -> Alcotest.fail ("unexpectedly reproduced: " ^ d)
  | Driver.Skipped why -> Alcotest.fail ("unexpected skip: " ^ why));
  (* a malformed record must NOT look fixed *)
  match Driver.replay { r with Repro.rp_input = None } with
  | Driver.Reproduced _ -> ()
  | Driver.Passed | Driver.Skipped _ ->
    Alcotest.fail "record without payload must report Reproduced"

let () =
  Alcotest.run "tka_verify"
    [
      ( "minimize",
        [
          Alcotest.test_case "pair" `Quick test_ddmin_pair;
          Alcotest.test_case "single" `Quick test_ddmin_single;
          Alcotest.test_case "monotone count" `Quick test_ddmin_monotone_count;
          Alcotest.test_case "not failing" `Quick test_ddmin_not_failing;
          Alcotest.test_case "wrapped exceptions" `Quick
            test_ddmin_exception_is_false;
          Alcotest.test_case "lines" `Quick test_minimize_lines_substring;
        ] );
      ( "repro",
        [
          Alcotest.test_case "json roundtrip" `Quick test_repro_json_roundtrip;
          Alcotest.test_case "save/load" `Quick test_repro_save_load;
          Alcotest.test_case "load bad line" `Quick test_repro_load_bad_line;
          Alcotest.test_case "unknown cell" `Quick test_edit_spec_unknown_cell;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "names" `Quick test_fuzz_names;
          Alcotest.test_case "generate valid" `Quick test_fuzz_generate_valid;
          Alcotest.test_case "structured errors ok" `Quick
            test_fuzz_check_structured_error_ok;
          Alcotest.test_case "mutate deterministic" `Quick
            test_fuzz_mutate_deterministic;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "duality" `Quick test_oracle_duality_tiny;
          Alcotest.test_case "brute k=1" `Quick test_oracle_brute_tiny;
          Alcotest.test_case "brute rejects k>3" `Quick
            test_oracle_brute_rejects_large_k;
          Alcotest.test_case "incremental" `Quick test_oracle_incremental_tiny;
          Alcotest.test_case "repair" `Quick test_oracle_repair_tiny;
          Alcotest.test_case "table2x pinned" `Quick
            test_oracle_table2x_pinned;
        ] );
      ( "driver",
        [
          Alcotest.test_case "smoke" `Slow test_driver_smoke;
          Alcotest.test_case "budget" `Quick test_driver_budget_stops;
          Alcotest.test_case "replay" `Quick test_driver_replay_fuzz;
        ] );
    ]
