(* Tests for Tka_prof: RSS probes, trace analytics (synthetic spans and
   a live top-k run), bench-diff regression detection, and the bench
   history record format. *)

module J = Tka_obs.Jsonx
module Trace = Tka_obs.Trace
module Rss = Tka_prof.Rss
module Profile = Tka_prof.Profile
module Bd = Tka_prof.Bench_diff
module Bh = Tka_prof.Bench_history
module Topo = Tka_circuit.Topo
module Elimination = Tka_topk.Elimination
module B = Tka_layout.Benchmarks

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf msg = Alcotest.(check (float 1e-9)) msg

(* ------------------------------------------------------------------ *)
(* Rss                                                                *)
(* ------------------------------------------------------------------ *)

let test_rss () =
  if Rss.supported () then begin
    (* on Linux both probes must produce a plausible figure; read
       current first — RSS can only have grown by the time the kernel's
       high-water mark is sampled *)
    match (Rss.current_bytes (), Rss.peak_bytes ()) with
    | Some cur, Some peak ->
      checkb "peak positive" true (peak > 0);
      checkb "current positive" true (cur > 0);
      checkb "peak >= current" true (peak >= cur);
      (* a test binary needs at least a megabyte and fits in a terabyte *)
      checkb "peak plausible" true (peak > 1_000_000 && peak < 1_000_000_000_000)
    | _ -> Alcotest.fail "supported platform returned None"
  end
  else begin
    checkb "peak is None off-procfs" true (Rss.peak_bytes () = None);
    checkb "current is None off-procfs" true (Rss.current_bytes () = None)
  end

(* ------------------------------------------------------------------ *)
(* Profile: synthetic spans                                           *)
(* ------------------------------------------------------------------ *)

let span ?(cat = "tka") ?(args = []) ?gc name ~start_ms ~dur_ms =
  {
    Trace.sp_name = name;
    sp_cat = cat;
    sp_start_ns = Int64.of_float (start_ms *. 1e6);
    sp_dur_ns = Int64.of_float (dur_ms *. 1e6);
    sp_depth = 0;
    sp_args = args;
    sp_gc = gc;
  }

let test_profile_self_time () =
  (* outer [0,100ms) containing inner [10,40ms): self = 70 / 30 *)
  let spans =
    [
      span "outer" ~start_ms:0. ~dur_ms:100.;
      span "inner" ~start_ms:10. ~dur_ms:30.;
    ]
  in
  let r = Profile.analyze spans in
  checki "span count" 2 r.Profile.pr_span_count;
  checkf "wall covers outer" 0.100 r.Profile.pr_wall_s;
  (match r.Profile.pr_aggregates with
  | [ outer; inner ] ->
    (* total-time descending puts outer first *)
    Alcotest.(check string) "outer first" "outer" outer.Profile.ag_name;
    checkf "outer total" 0.100 outer.Profile.ag_total_s;
    checkf "outer self excludes inner" 0.070 outer.Profile.ag_self_s;
    checkf "inner self is its whole span" 0.030 inner.Profile.ag_self_s
  | l -> Alcotest.failf "expected 2 aggregates, got %d" (List.length l));
  (* same-named repeats accumulate count and time *)
  let r2 =
    Profile.analyze
      [
        span "leaf" ~start_ms:0. ~dur_ms:5.;
        span "leaf" ~start_ms:10. ~dur_ms:7.;
      ]
  in
  (match r2.Profile.pr_aggregates with
  | [ a ] ->
    checki "two calls aggregated" 2 a.Profile.ag_count;
    checkf "totals add" 0.012 a.Profile.ag_total_s
  | _ -> Alcotest.fail "expected one aggregate")

let test_profile_victims () =
  let v name ms cand dom cap =
    span "engine.victim" ~start_ms:0. ~dur_ms:ms
      ~args:
        [
          ("net", J.Str name); ("candidates", J.Int cand);
          ("dominated", J.Int dom); ("capped", J.Int cap);
        ]
  in
  let spans =
    [ v "n1" 1. 10 4 2; v "n2" 5. 30 12 6; v "n3" 3. 20 8 4;
      span "other" ~start_ms:0. ~dur_ms:50. ]
  in
  let r = Profile.analyze ~top:2 spans in
  (* slowest first, truncated to top *)
  (match r.Profile.pr_victims with
  | [ a; b ] ->
    Alcotest.(check string) "slowest victim" "n2" a.Profile.vi_net;
    Alcotest.(check string) "second victim" "n3" b.Profile.vi_net;
    Alcotest.(check (option int)) "candidates" (Some 30) a.Profile.vi_candidates;
    Alcotest.(check (option int)) "dominated" (Some 12) a.Profile.vi_dominated;
    Alcotest.(check (option int)) "capped" (Some 6) a.Profile.vi_capped
  | l -> Alcotest.failf "expected 2 victims, got %d" (List.length l));
  (* spans without attribution args still list, with None fields *)
  let bare = span "engine.victim" ~start_ms:0. ~dur_ms:1. in
  let r2 = Profile.analyze [ bare ] in
  (match r2.Profile.pr_victims with
  | [ v ] ->
    Alcotest.(check string) "unnamed net" "?" v.Profile.vi_net;
    Alcotest.(check (option int)) "no candidates" None v.Profile.vi_candidates
  | _ -> Alcotest.fail "expected one victim")

let test_profile_alloc_hotspots () =
  let gc mw =
    {
      Trace.gd_minor_words = mw;
      gd_major_words = 0.;
      gd_promoted_words = 0.;
      gd_minor_collections = 1;
      gd_major_collections = 0;
    }
  in
  let spans =
    [
      span "cold" ~start_ms:0. ~dur_ms:1.;
      span "hot" ~start_ms:2. ~dur_ms:1. ~gc:(gc 5e6);
      span "warm" ~start_ms:4. ~dur_ms:1. ~gc:(gc 1e6);
    ]
  in
  let r = Profile.analyze spans in
  (* allocation-free spans are excluded; the rest sort by words desc *)
  (match r.Profile.pr_alloc_hotspots with
  | [ a; b ] ->
    Alcotest.(check string) "hottest" "hot" a.Profile.ag_name;
    Alcotest.(check string) "second" "warm" b.Profile.ag_name;
    checkf "words summed" 5e6 a.Profile.ag_minor_words
  | l -> Alcotest.failf "expected 2 hotspots, got %d" (List.length l))

let test_profile_trace_roundtrip () =
  (* live spans -> Chrome trace JSON -> ingested spans -> same report *)
  Trace.set_enabled true;
  Trace.clear ();
  Trace.with_span ~cat:"t" "rt.outer" (fun () ->
      Trace.with_span ~cat:"t"
        ~args:[ ("net", J.Str "x") ]
        "rt.inner"
        (fun () -> Sys.opaque_identity (ignore (Array.make 100_000 0.))));
  Trace.instant "rt.marker";
  let doc = Trace.to_json () in
  let live = List.filter (fun s -> s.Trace.sp_dur_ns >= 0L) (Trace.spans ()) in
  Trace.set_enabled false;
  Trace.clear ();
  let ingested = Profile.of_trace_json doc in
  (* instants are dropped; both duration spans survive *)
  checki "duration spans survive ingestion" (List.length live)
    (List.length ingested);
  let r = Profile.analyze ingested in
  let names = List.map (fun a -> a.Profile.ag_name) r.Profile.pr_aggregates in
  checkb "outer present" true (List.mem "rt.outer" names);
  checkb "inner present" true (List.mem "rt.inner" names);
  let inner =
    List.find (fun s -> s.Trace.sp_name = "rt.inner") ingested
  in
  (* GC delta fields come back out of the Chrome args... *)
  (match inner.Trace.sp_gc with
  | Some g -> checkb "alloc recorded" true (g.Trace.gd_minor_words > 0.)
  | None -> Alcotest.fail "gc delta lost in round trip");
  (* ...and are stripped from the ordinary args, which survive *)
  checkb "user arg survives" true
    (List.assoc_opt "net" inner.Trace.sp_args = Some (J.Str "x"));
  checkb "gc keys stripped" true
    (List.assoc_opt "minor_words" inner.Trace.sp_args = None);
  (* report renders and serialises without raising *)
  checkb "render nonempty" true (String.length (Profile.render r) > 0);
  match Profile.to_json r with
  | J.Obj kvs -> checkb "json has spans" true (List.mem_assoc "spans" kvs)
  | _ -> Alcotest.fail "to_json not an object"

let test_profile_live_topk () =
  (* the acceptance path: a real top-k run traced end to end must yield
     per-victim prune attribution *)
  let topo = Topo.create (Option.get (B.by_name "i1")) in
  Trace.set_enabled true;
  Trace.clear ();
  ignore (Elimination.compute ~k:3 topo);
  let spans = Trace.spans () in
  Trace.set_enabled false;
  Trace.clear ();
  let r = Profile.analyze ~top:5 spans in
  checkb "spans recorded" true (r.Profile.pr_span_count > 0);
  checkb "victims attributed" true (r.Profile.pr_victims <> []);
  let v = List.hd r.Profile.pr_victims in
  checkb "victim has a net name" true (v.Profile.vi_net <> "?");
  checkb "victim has candidate count" true (v.Profile.vi_candidates <> None);
  checkb "victim has dominated count" true (v.Profile.vi_dominated <> None)

(* ------------------------------------------------------------------ *)
(* Bench_diff                                                         *)
(* ------------------------------------------------------------------ *)

let bench_doc ?(topk = 1.0) ?(speedup = 2.0) ?(extra = []) () =
  J.Obj
    ([
       ("schema", J.Int 1);
       ("k", J.Int 10);
       ( "sections",
         J.Obj [ ("topk_runtime_s", J.Float topk); ("sta_runtime_s", J.Float 0.5) ]
       );
       ("speedup", J.Float speedup);
       ("minor_words", J.Float 5e7);
     ]
    @ extra)

let test_bench_diff_self () =
  let d = bench_doc () in
  let r = Bd.compare_docs d d in
  checkb "self-compare clean" false (Bd.has_regressions r);
  checkb "metrics were checked" true (List.length r.Bd.bd_checked >= 3);
  checkb "no improvements either" true (r.Bd.bd_improvements = [])

let test_bench_diff_slowdown () =
  (* a 30% slowdown on a _s leaf trips the default 20% threshold *)
  let base = bench_doc ~topk:1.0 () in
  let slow = bench_doc ~topk:1.3 () in
  let r = Bd.compare_docs base slow in
  checkb "regression detected" true (Bd.has_regressions r);
  (match r.Bd.bd_regressions with
  | [ m ] ->
    Alcotest.(check string) "right metric" "sections.topk_runtime_s"
      m.Bd.m_path;
    checkf "ratio" 1.3 m.Bd.m_ratio
  | l -> Alcotest.failf "expected 1 regression, got %d" (List.length l));
  (* the same delta under the threshold passes *)
  let r2 = Bd.compare_docs ~threshold:0.40 base slow in
  checkb "loose threshold passes" false (Bd.has_regressions r2);
  (* and a 30% improvement is reported as such, not a regression *)
  let r3 = Bd.compare_docs slow base in
  checkb "reverse is improvement" false (Bd.has_regressions r3);
  checkb "improvement listed" true (r3.Bd.bd_improvements <> [])

let test_bench_diff_directions () =
  (* "speedup" is higher-better: a drop regresses, a rise improves *)
  let base = bench_doc ~speedup:4.0 () in
  let r = Bd.compare_docs base (bench_doc ~speedup:2.0 ()) in
  checkb "speedup drop regresses" true
    (List.exists (fun m -> m.Bd.m_path = "speedup") r.Bd.bd_regressions);
  let r2 = Bd.compare_docs base (bench_doc ~speedup:8.0 ()) in
  checkb "speedup rise improves" true
    (List.exists (fun m -> m.Bd.m_path = "speedup") r2.Bd.bd_improvements);
  (* correctness fields (k, schema) are never thresholded *)
  checkb "k not a perf metric" true
    (List.for_all (fun m -> m.Bd.m_path <> "k") r.Bd.bd_checked)

let test_bench_diff_noise_floor () =
  (* 10x jitter on a 3ms timing is noise, not a regression *)
  let tiny v =
    J.Obj [ ("sections", J.Obj [ ("blip_runtime_s", J.Float v) ]) ]
  in
  let r = Bd.compare_docs (tiny 0.003) (tiny 0.03) in
  checkb "sub-floor timing skipped" false (Bd.has_regressions r);
  checkb "counted as skipped" true (r.Bd.bd_skipped_small = 1);
  (* ...but the floor is configurable *)
  let r2 = Bd.compare_docs ~min_seconds:0.001 (tiny 0.003) (tiny 0.03) in
  checkb "lowered floor catches it" true (Bd.has_regressions r2)

let test_bench_diff_memory_metrics () =
  (* memory figures are lower-better in their own unit: a peak-RSS rise
     in MB regresses, even though 900 "units" would sit far under the
     words-denominated floor *)
  let doc rss =
    J.Obj
      [
        ( "table2x",
          J.List [ J.Obj [ ("nets", J.Int 100_000); ("peak_rss_mb", J.Float rss) ] ] );
      ]
  in
  let r = Bd.compare_docs (doc 600.) (doc 900.) in
  checkb "rss_mb rise regresses" true
    (List.exists
       (fun m -> m.Bd.m_path = "table2x[0].peak_rss_mb")
       r.Bd.bd_regressions);
  let r2 = Bd.compare_docs (doc 900.) (doc 600.) in
  checkb "rss_mb drop improves" true
    (List.exists
       (fun m -> m.Bd.m_path = "table2x[0].peak_rss_mb")
       r2.Bd.bd_improvements);
  (* sub-8MB deltas are allocator noise regardless of ratio *)
  let r3 = Bd.compare_docs (doc 2.) (doc 6.) in
  checkb "tiny rss skipped" false (Bd.has_regressions r3);
  checki "counted as skipped" 1 r3.Bd.bd_skipped_small;
  (* _kb and _bytes floors scale with the unit *)
  let kb v = J.Obj [ ("heap_kb", J.Float v) ] in
  checkb "kb metric compared" true
    (Bd.has_regressions (Bd.compare_docs (kb 20_000.) (kb 40_000.)));
  checkb "sub-floor kb skipped" false
    (Bd.has_regressions (Bd.compare_docs (kb 2_000.) (kb 7_000.)))

let test_bench_diff_missing_keys () =
  let base =
    J.Obj [ ("old_runtime_s", J.Float 1.0); ("both_runtime_s", J.Float 1.0) ]
  in
  let next =
    J.Obj [ ("new_runtime_s", J.Float 1.0); ("both_runtime_s", J.Float 1.0) ]
  in
  let r = Bd.compare_docs base next in
  Alcotest.(check (list string)) "only in base" [ "old_runtime_s" ]
    r.Bd.bd_only_base;
  Alcotest.(check (list string)) "only in new" [ "new_runtime_s" ]
    r.Bd.bd_only_new;
  checki "shared key still compared" 1 (List.length r.Bd.bd_checked)

let test_bench_diff_load_ndjson () =
  (* NDJSON history: the last record wins *)
  let path = Filename.temp_file "tka_bd" ".ndjson" in
  let oc = open_out path in
  output_string oc
    "{\"total_runtime_s\":1.0}\n{\"total_runtime_s\":9.0}\n";
  close_out oc;
  let v = Bd.load_file path in
  Sys.remove path;
  (match J.member "total_runtime_s" v with
  | Some (J.Float f) -> checkf "last record" 9.0 f
  | _ -> Alcotest.fail "missing total_runtime_s");
  (* a whole-file JSON document loads as-is *)
  let path2 = Filename.temp_file "tka_bd" ".json" in
  let oc = open_out path2 in
  output_string oc "{\n  \"total_runtime_s\": 2.0\n}\n";
  close_out oc;
  let v2 = Bd.load_file path2 in
  Sys.remove path2;
  match J.member "total_runtime_s" v2 with
  | Some (J.Float f) -> checkf "whole doc" 2.0 f
  | _ -> Alcotest.fail "missing total_runtime_s in whole doc"

let test_bench_diff_render () =
  let base = bench_doc ~topk:1.0 () in
  let r = Bd.compare_docs base (bench_doc ~topk:1.5 ()) in
  let s = Bd.render r in
  checkb "renders REGRESSIONS table" true
    (let n = String.length s in
     let rec find i =
       i + 11 <= n && (String.sub s i 11 = "REGRESSIONS" || find (i + 1))
     in
     find 0);
  match Bd.to_json r with
  | J.Obj kvs ->
    checkb "json lists regressions" true (List.mem_assoc "regressions" kvs)
  | _ -> Alcotest.fail "to_json not an object"

(* ------------------------------------------------------------------ *)
(* Bench_history                                                      *)
(* ------------------------------------------------------------------ *)

let with_env k v f =
  let old = Sys.getenv_opt k in
  Unix.putenv k v;
  Fun.protect
    ~finally:(fun () -> Unix.putenv k (Option.value ~default:"" old))
    f

let test_history_record () =
  with_env "TKA_GIT_REV" "cafe1234" @@ fun () ->
  with_env "SOURCE_DATE_EPOCH" "1754600000" @@ fun () ->
  let r =
    Bh.make ~jobs:2 ~quick:true ~circuits:[ "i1"; "i3" ]
      ~sections:[ ("gen", 0.1); ("topk", 0.9) ]
      ~total_s:1.0 ()
  in
  checki "schema version" Bh.schema_version r.Bh.bh_schema;
  Alcotest.(check string) "env rev wins" "cafe1234" r.Bh.bh_git_rev;
  Alcotest.(check string) "pinned date" "2025-08-07T20:53:20Z" r.Bh.bh_date;
  checkb "rss present on procfs" true
    (Rss.supported () = (r.Bh.bh_peak_rss_bytes <> None));
  checkb "alloc totals present" true
    (r.Bh.bh_minor_words > 0. && r.Bh.bh_major_words >= 0.);
  (* the JSON record carries every schema-v1 field *)
  match Bh.to_json r with
  | J.Obj kvs ->
    List.iter
      (fun k -> checkb (k ^ " in record") true (List.mem_assoc k kvs))
      [
        "schema"; "git_rev"; "date"; "date_unix"; "jobs"; "quick"; "circuits";
        "sections"; "total_runtime_s"; "peak_rss_bytes"; "minor_words";
        "major_words";
      ];
    (match List.assoc "sections" kvs with
    | J.Obj s -> checki "sections kept" 2 (List.length s)
    | _ -> Alcotest.fail "sections not an object")
  | _ -> Alcotest.fail "to_json not an object"

let test_history_append_load () =
  with_env "TKA_GIT_REV" "deadbeef" @@ fun () ->
  let path = Filename.temp_file "tka_hist" ".ndjson" in
  Sys.remove path;
  (* append creates the file... *)
  let mk total =
    Bh.make ~jobs:1 ~quick:false ~circuits:[ "i1" ] ~sections:[] ~total_s:total
      ()
  in
  Bh.append path (mk 1.0);
  (* ...and appends to it *)
  Bh.append path (mk 2.0);
  let records =
    match Bh.load path with Ok l -> l | Error m -> Alcotest.fail m
  in
  Sys.remove path;
  checki "two records" 2 (List.length records);
  (match List.nth records 1 with
  | J.Obj _ as last ->
    (match J.member "total_runtime_s" last with
    | Some (J.Float f) -> checkf "append order preserved" 2.0 f
    | _ -> Alcotest.fail "missing total_runtime_s");
    (match J.member "git_rev" last with
    | Some (J.Str s) -> Alcotest.(check string) "rev recorded" "deadbeef" s
    | _ -> Alcotest.fail "missing git_rev")
  | _ -> Alcotest.fail "record not an object");
  (* history doubles as bench-diff input: a slowed re-run regresses *)
  let fast = Bh.to_json (mk 1.0) and slow = Bh.to_json (mk 1.5) in
  checkb "history records diffable" true
    (Bd.has_regressions (Bd.compare_docs fast slow))

let () =
  Alcotest.run "tka_prof"
    [
      ("rss", [ Alcotest.test_case "procfs probes" `Quick test_rss ]);
      ( "profile",
        [
          Alcotest.test_case "self time" `Quick test_profile_self_time;
          Alcotest.test_case "victim attribution" `Quick test_profile_victims;
          Alcotest.test_case "alloc hotspots" `Quick
            test_profile_alloc_hotspots;
          Alcotest.test_case "chrome trace round trip" `Quick
            test_profile_trace_roundtrip;
          Alcotest.test_case "live top-k attribution" `Quick
            test_profile_live_topk;
        ] );
      ( "bench_diff",
        [
          Alcotest.test_case "self compare" `Quick test_bench_diff_self;
          Alcotest.test_case "injected slowdown" `Quick
            test_bench_diff_slowdown;
          Alcotest.test_case "metric directions" `Quick
            test_bench_diff_directions;
          Alcotest.test_case "memory metrics" `Quick
            test_bench_diff_memory_metrics;
          Alcotest.test_case "noise floor" `Quick test_bench_diff_noise_floor;
          Alcotest.test_case "missing keys" `Quick
            test_bench_diff_missing_keys;
          Alcotest.test_case "ndjson loading" `Quick
            test_bench_diff_load_ndjson;
          Alcotest.test_case "render and json" `Quick test_bench_diff_render;
        ] );
      ( "bench_history",
        [
          Alcotest.test_case "record fields" `Quick test_history_record;
          Alcotest.test_case "append and load" `Quick
            test_history_append_load;
        ] );
    ]
