(* Tests for the pre-engine aggressor candidate filter (Tka_filter):
   timing-window overlap queries against an interval-arithmetic
   reference, the implication analysis against hand-computed tables and
   exhaustive simulation, the Off mode's physical-identity contract,
   window drop/derate behaviour under synthetic windows, the Ilist
   singleton fast path, and the envelope memo's bitwise identity. *)

module N = Tka_circuit.Netlist
module Builder = Tka_circuit.Builder
module Topo = Tka_circuit.Topo
module TW = Tka_sta.Timing_window
module Analysis = Tka_sta.Analysis
module CN = Tka_noise.Coupled_noise
module EB = Tka_noise.Envelope_builder
module Iterate = Tka_noise.Iterate
module Interval = Tka_util.Interval
module Envelope = Tka_waveform.Envelope
module Pulse = Tka_waveform.Pulse
module Mode = Tka_filter.Mode
module Overlap = Tka_filter.Overlap
module Derate = Tka_filter.Derate
module Implication = Tka_filter.Implication
module Filter = Tka_filter.Filter
module Ilist = Tka_topk.Ilist
module CS = Tka_topk.Coupling_set
module Lib = Tka_cell.Default_lib

let feq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

(* ------------------------------------------------------------------ *)
(* Timing-window overlap queries (qcheck)                             *)
(* ------------------------------------------------------------------ *)

let arb_window =
  QCheck.make
    ~print:(fun w -> Format.asprintf "%a" TW.pp w)
    QCheck.Gen.(
      let* eat = float_bound_inclusive 10. in
      let* width = float_bound_inclusive 5. in
      let* s_e = float_bound_inclusive 0.2 in
      let* s_l = float_bound_inclusive 0.2 in
      return
        (TW.make ~eat ~lat:(eat +. width) ~slew_early:(0.001 +. s_e)
           ~slew_late:(0.001 +. s_l)))

let prop_overlaps_reflexive =
  QCheck.Test.make ~name:"TW.overlaps is reflexive" ~count:300 arb_window
    (fun w -> TW.overlaps w w)

let prop_overlaps_symmetric =
  QCheck.Test.make ~name:"TW.overlaps is symmetric" ~count:300
    (QCheck.pair arb_window arb_window) (fun (a, b) ->
      TW.overlaps a b = TW.overlaps b a)

(* The reference: arrival intervals built by hand, compared through the
   same Interval primitive the contract names. *)
let prop_overlaps_reference =
  QCheck.Test.make ~name:"TW.overlaps agrees with interval arithmetic"
    ~count:300
    (QCheck.pair arb_window arb_window)
    (fun (a, b) ->
      TW.overlaps a b
      = Interval.overlaps
          (Interval.make a.TW.eat a.TW.lat)
          (Interval.make b.TW.eat b.TW.lat))

let prop_fraction_bounds =
  QCheck.Test.make ~name:"TW.overlap_fraction in [0,1], 0 iff disjoint"
    ~count:300
    (QCheck.pair arb_window arb_window)
    (fun (a, b) ->
      let f = TW.overlap_fraction a b in
      f >= 0. && f <= 1. && if TW.overlaps a b then true else f = 0.)

let prop_fraction_symmetric =
  QCheck.Test.make ~name:"TW.overlap_fraction is symmetric" ~count:300
    (QCheck.pair arb_window arb_window)
    (fun (a, b) -> feq (TW.overlap_fraction a b) (TW.overlap_fraction b a))

let prop_fraction_containment =
  QCheck.Test.make ~name:"TW.overlap_fraction = 1 on containment" ~count:300
    (QCheck.pair arb_window arb_window)
    (fun (a, b) ->
      (* force b inside a *)
      let mid = 0.5 *. (a.TW.eat +. a.TW.lat) in
      let half = 0.25 *. (a.TW.lat -. a.TW.eat) in
      let b =
        TW.make ~eat:(mid -. half) ~lat:(mid +. half)
          ~slew_early:b.TW.slew_early ~slew_late:b.TW.slew_late
      in
      TW.overlap_fraction a b = 1.)

(* ------------------------------------------------------------------ *)
(* Implication analysis: hand-computed tables                         *)
(* ------------------------------------------------------------------ *)

(* A tiny builder wrapper for logic-only netlists: every net we care
   about is returned by name. *)
let cell = Lib.find_exn

let value_name = function
  | Implication.Const b -> Printf.sprintf "Const %b" b
  | Implication.Fn { at0; at1; _ } -> Printf.sprintf "Fn{%b,%b}" at0 at1
  | Implication.Mixed -> "Mixed"

let check_value name expected got =
  Alcotest.(check string) name (value_name expected) (value_name got)

(* xor(a,a) and friends: constants must propagate. *)
let test_implication_constants () =
  let b = Builder.create ~name:"consts" () in
  let a = Builder.add_input b "a" in
  let xa = Builder.add_net b "xa" in
  ignore
    (Builder.add_gate b ~name:"gx" ~cell:(cell "XOR2_X1")
       ~inputs:[ ("A", a); ("B", a) ]
       ~output:xa);
  let na = Builder.add_net b "na" in
  ignore
    (Builder.add_gate b ~name:"gn" ~cell:Lib.inverter ~inputs:[ ("A", a) ]
       ~output:na);
  let ta = Builder.add_net b "ta" in
  ignore
    (Builder.add_gate b ~name:"go" ~cell:(cell "OR2_X1")
       ~inputs:[ ("A", a); ("B", na) ]
       ~output:ta);
  (* a constant absorbs even a Mixed operand: and-false is false *)
  let m = Builder.add_input b "m" in
  let m2 = Builder.add_input b "m2" in
  let mx = Builder.add_net b "mx" in
  ignore
    (Builder.add_gate b ~name:"gm" ~cell:(cell "AND2_X1")
       ~inputs:[ ("A", m); ("B", m2) ]
       ~output:mx);
  let z = Builder.add_net b "z" in
  ignore
    (Builder.add_gate b ~name:"gz" ~cell:(cell "AND2_X1")
       ~inputs:[ ("A", xa); ("B", mx) ]
       ~output:z);
  Builder.mark_output b ta;
  Builder.mark_output b z;
  let nl = Builder.finalize b in
  let values = Implication.analyze (Topo.create nl) in
  let v name = values.((N.find_net_exn nl name).N.net_id) in
  check_value "xor(a,a) = 0" (Implication.Const false) (v "xa");
  check_value "a + !a = 1" (Implication.Const true) (v "ta");
  check_value "a*b is Mixed" Implication.Mixed (v "mx");
  check_value "0 * Mixed = 0 (absorption)" (Implication.Const false) (v "z")

(* Inverter chains: phase alternates, the root never changes. *)
let test_implication_chain () =
  let b = Builder.create ~name:"chain" () in
  let a = Builder.add_input b "a" in
  let prev = ref a in
  for i = 1 to 5 do
    let n = Builder.add_net b (Printf.sprintf "n%d" i) in
    ignore
      (Builder.add_gate b
         ~name:(Printf.sprintf "g%d" i)
         ~cell:Lib.inverter
         ~inputs:[ ("A", !prev) ]
         ~output:n);
    prev := n
  done;
  Builder.mark_output b !prev;
  let nl = Builder.finalize b in
  let values = Implication.analyze (Topo.create nl) in
  let v name = values.((N.find_net_exn nl name).N.net_id) in
  let root = (N.find_net_exn nl "a").N.net_id in
  check_value "input is the identity"
    (Implication.Fn { root; at0 = false; at1 = true })
    values.(root);
  for i = 1 to 5 do
    let inverted = i mod 2 = 1 in
    check_value
      (Printf.sprintf "stage %d parity" i)
      (Implication.Fn { root; at0 = inverted; at1 = not inverted })
      (v (Printf.sprintf "n%d" i))
  done;
  (* same phase justifies a drop; opposite phase never does *)
  let id name = (N.find_net_exn nl name).N.net_id in
  Alcotest.(check bool)
    "even stages same-phase" true
    (Implication.relate values ~victim:(id "n2") ~aggressor:(id "n4")
    = Implication.Same_phase);
  Alcotest.(check bool)
    "odd vs even opposite-phase" true
    (Implication.relate values ~victim:(id "n2") ~aggressor:(id "n3")
    = Implication.Opposite_phase)

(* Reconvergent fanout must stay conservative: two roots -> Mixed,
   even where boolean simplification could do better. *)
let test_implication_reconvergence () =
  let b = Builder.create ~name:"reconv" () in
  let x = Builder.add_input b "x" in
  let y = Builder.add_input b "y" in
  let nx = Builder.add_net b "nx" in
  ignore
    (Builder.add_gate b ~name:"g1" ~cell:Lib.inverter ~inputs:[ ("A", x) ]
       ~output:nx);
  let w = Builder.add_net b "w" in
  ignore
    (Builder.add_gate b ~name:"g2" ~cell:(cell "NAND2_X1")
       ~inputs:[ ("A", x); ("B", y) ]
       ~output:w);
  (* w * !x is actually !x * !(x*y) — still two roots, must be Mixed *)
  let r = Builder.add_net b "r" in
  ignore
    (Builder.add_gate b ~name:"g3" ~cell:(cell "AND2_X1")
       ~inputs:[ ("A", w); ("B", nx) ]
       ~output:r);
  Builder.mark_output b r;
  let nl = Builder.finalize b in
  let values = Implication.analyze (Topo.create nl) in
  let v name = values.((N.find_net_exn nl name).N.net_id) in
  check_value "two-root gate is Mixed" Implication.Mixed (v "w");
  check_value "reconvergence stays Mixed" Implication.Mixed (v "r");
  (* and the whole table still agrees with exhaustive simulation *)
  List.iter
    (fun (xv, yv) ->
      let assignment n =
        if n = (N.find_net_exn nl "x").N.net_id then xv else yv
      in
      let sim = Implication.eval_all nl ~assignment in
      Array.iteri
        (fun n value ->
          match value with
          | Implication.Mixed -> ()
          | Implication.Const b ->
            Alcotest.(check bool) "Const claim holds" b sim.(n)
          | Implication.Fn { root; at0; at1 } ->
            Alcotest.(check bool)
              "Fn claim holds"
              (if sim.(root) then at1 else at0)
              sim.(n))
        values)
    [ (false, false); (false, true); (true, false); (true, true) ]

(* The expression parser: grammar corners and the failure contract. *)
let test_implication_parse () =
  let ok s = Option.is_some (Implication.parse s) in
  List.iter
    (fun s -> Alcotest.(check bool) (Printf.sprintf "parses %S" s) true (ok s))
    [ "A"; "!A"; "!(A*B)"; "A^B"; "!((A+B)*C)"; "!(A*B*C)"; "  A + B "; "!!A" ];
  List.iter
    (fun s -> Alcotest.(check bool) (Printf.sprintf "rejects %S" s) false (ok s))
    [ ""; "A+"; "(A"; "A)"; "*A"; "A!B"; "A B" ]

(* ------------------------------------------------------------------ *)
(* Filter decisions                                                   *)
(* ------------------------------------------------------------------ *)

(* Aggressor/victim pair with one coupling, windows injected by hand. *)
let pair_netlist () =
  let b = Builder.create ~name:"pair" () in
  let ia = Builder.add_input b "ia" in
  let iv = Builder.add_input b "iv" in
  let a1 = Builder.add_net b "a1" in
  ignore
    (Builder.add_gate b ~name:"ga" ~cell:Lib.inverter ~inputs:[ ("A", ia) ]
       ~output:a1);
  let v1 = Builder.add_net b "v1" in
  ignore
    (Builder.add_gate b ~name:"gv" ~cell:Lib.inverter ~inputs:[ ("A", iv) ]
       ~output:v1);
  ignore (Builder.add_coupling b a1 v1 0.004);
  Builder.mark_output b a1;
  Builder.mark_output b v1;
  Builder.finalize b

let windows_with nl ~agg_eat ~agg_lat =
  let agg = (N.find_net_exn nl "a1").N.net_id in
  fun n ->
    if n = agg then
      TW.make ~eat:agg_eat ~lat:agg_lat ~slew_early:0.02 ~slew_late:0.02
    else TW.make ~eat:0.5 ~lat:0.6 ~slew_early:0.02 ~slew_late:0.02

let victim_directed nl =
  let v1 = (N.find_net_exn nl "v1").N.net_id in
  match CN.aggressors_of_victim nl v1 with
  | [ d ] -> d
  | ds -> Alcotest.failf "expected 1 directed coupling, got %d" (List.length ds)

let test_window_decisions () =
  let nl = pair_netlist () in
  let topo = Topo.create nl in
  let d = victim_directed nl in
  let decide ~agg_eat ~agg_lat =
    let windows = windows_with nl ~agg_eat ~agg_lat in
    Filter.decide (Filter.prepare ~mode:Mode.Window ~windows topo) d
  in
  (* far-future aggressor: provably disjoint *)
  (match decide ~agg_eat:50. ~agg_lat:51. with
  | Filter.Drop Filter.Window_disjoint -> ()
  | _ -> Alcotest.fail "far aggressor must be dropped");
  (* the same aggressor well inside the sensitive interval is kept *)
  (match decide ~agg_eat:0.5 ~agg_lat:0.6 with
  | Filter.Keep -> ()
  | Filter.Derate f -> Alcotest.failf "overlapping aggressor derated to %g" f
  | Filter.Drop _ -> Alcotest.fail "overlapping aggressor dropped");
  (* a wide window straddling the sensitive interval's edge derates,
     and the factor is a genuine fraction *)
  match decide ~agg_eat:(-40.) ~agg_lat:1.0 with
  | Filter.Derate f ->
    Alcotest.(check bool)
      "derate factor in (0, threshold)" true
      (f > 0. && f < Filter.derate_threshold)
  | Filter.Keep -> Alcotest.fail "straddling aggressor kept undeeded"
  | Filter.Drop _ -> Alcotest.fail "straddling aggressor dropped"

let test_off_identity () =
  let nl = pair_netlist () in
  let topo = Topo.create nl in
  let windows = windows_with nl ~agg_eat:0.5 ~agg_lat:0.6 in
  let filt = Filter.prepare ~mode:Mode.Off ~windows topo in
  Alcotest.(check bool) "is_off" true (Filter.is_off filt);
  let v1 = (N.find_net_exn nl "v1").N.net_id in
  let ds = CN.aggressors_of_victim nl v1 in
  let kept, derate = Filter.screen filt ds in
  Alcotest.(check bool) "Off returns the input list physically" true (kept == ds);
  List.iter
    (fun d ->
      Alcotest.(check bool)
        "Off never derates" true
        (derate (CN.directed_id d) = 1.))
    ds;
  match Filter.decide filt (List.hd ds) with
  | Filter.Keep -> ()
  | _ -> Alcotest.fail "Off must keep everything"

let test_screen_subset () =
  let nl = pair_netlist () in
  let topo = Topo.create nl in
  let windows = windows_with nl ~agg_eat:50. ~agg_lat:51. in
  let filt = Filter.prepare ~mode:Mode.Window ~windows topo in
  let v1 = (N.find_net_exn nl "v1").N.net_id in
  let ds = CN.aggressors_of_victim nl v1 in
  let kept, _ = Filter.screen filt ds in
  Alcotest.(check int) "disjoint aggressor screened out" 0 (List.length kept);
  (* the survey walks every victim: the coupling is directed both ways,
     and with the windows this far apart both directions are dropped *)
  let sv = Filter.survey filt in
  Alcotest.(check int) "survey counts both drops" 2 sv.Filter.sv_dropped_window;
  Alcotest.(check int) "survey total matches" 2 sv.Filter.sv_candidates

let test_derate_factor () =
  let sensitive = Interval.make 0. 10. in
  Alcotest.(check bool)
    "disjoint reach -> 0" true
    (Derate.factor ~reach:(Interval.make 20. 30.) ~sensitive = 0.);
  Alcotest.(check bool)
    "contained reach -> 1" true
    (Derate.factor ~reach:(Interval.make 2. 3.) ~sensitive = 1.);
  let f = Derate.factor ~reach:(Interval.make ~-.5. 5.) ~sensitive in
  Alcotest.(check (float 1e-9)) "half overlap -> 0.5" 0.5 f

(* ------------------------------------------------------------------ *)
(* Ilist singleton fast path                                          *)
(* ------------------------------------------------------------------ *)

let entry objective =
  let pulse = Pulse.make ~onset:0. ~peak:0.1 ~rise:0.02 ~decay:0.05 in
  {
    Ilist.couplings = CS.of_list [ 0 ];
    envelope = Envelope.of_pulse ~window:(Interval.make 0.4 0.6) pulse;
    objective;
  }

let test_ilist_fast_paths () =
  let interval = Interval.make 0. 2. in
  let stats = Ilist.fresh_stats () in
  Alcotest.(check int)
    "empty input" 0
    (List.length (Ilist.prune ~interval ~stats []));
  Alcotest.(check int) "empty input counts nothing" 0 stats.Ilist.candidates;
  let e = entry 0.5 in
  (match Ilist.prune ~interval ~stats [ e ] with
  | [ e' ] ->
    Alcotest.(check bool) "singleton returned physically" true (e' == e)
  | l -> Alcotest.failf "singleton pruned to %d entries" (List.length l));
  Alcotest.(check int) "singleton counts 1 candidate" 1 stats.Ilist.candidates;
  Alcotest.(check int) "no dominance checks" 0 stats.Ilist.checks;
  Alcotest.(check int) "nothing dominated" 0 stats.Ilist.dominated;
  Alcotest.(check int) "nothing capped" 0 stats.Ilist.capped;
  (* capacity 0 must still go through the general path and cap *)
  let stats0 = Ilist.fresh_stats () in
  Alcotest.(check int)
    "capacity 0 keeps nothing" 0
    (List.length (Ilist.prune ~capacity:0 ~interval ~stats:stats0 [ e ]))

(* ------------------------------------------------------------------ *)
(* Envelope memo                                                      *)
(* ------------------------------------------------------------------ *)

let test_envelope_memo_identity () =
  let nl = pair_netlist () in
  let topo = Topo.create nl in
  let a = Analysis.run topo in
  let windows = Analysis.window a in
  let d = victim_directed nl in
  let memo = EB.create_memo () in
  let fresh = EB.of_directed nl ~windows d in
  let m1 = EB.of_directed_memo memo nl ~windows d in
  let m2 = EB.of_directed_memo memo nl ~windows d in
  Alcotest.(check bool)
    "memoised envelope equals fresh" true
    (Envelope.equal fresh m1);
  Alcotest.(check bool) "second lookup is the cached value" true (m1 == m2);
  (* end to end: a full fixpoint with and without the memo is bitwise
     identical *)
  let run em = Iterate.circuit_delay (Iterate.run ?env_memo:em topo) in
  Alcotest.(check bool)
    "fixpoint delay bitwise identical under memo" true
    (feq (run None) (run (Some (EB.create_memo ()))))

(* ------------------------------------------------------------------ *)

let qsuite name tests =
  (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "tka_filter"
    [
      qsuite "windows-qcheck"
        [
          prop_overlaps_reflexive; prop_overlaps_symmetric;
          prop_overlaps_reference; prop_fraction_bounds;
          prop_fraction_symmetric; prop_fraction_containment;
        ];
      ( "implication",
        [
          Alcotest.test_case "constants" `Quick test_implication_constants;
          Alcotest.test_case "inverter chain" `Quick test_implication_chain;
          Alcotest.test_case "reconvergence" `Quick
            test_implication_reconvergence;
          Alcotest.test_case "parser" `Quick test_implication_parse;
        ] );
      ( "decisions",
        [
          Alcotest.test_case "window" `Quick test_window_decisions;
          Alcotest.test_case "off identity" `Quick test_off_identity;
          Alcotest.test_case "screen subset" `Quick test_screen_subset;
          Alcotest.test_case "derate factor" `Quick test_derate_factor;
        ] );
      ( "ilist",
        [ Alcotest.test_case "fast paths" `Quick test_ilist_fast_paths ] );
      ( "memo",
        [
          Alcotest.test_case "bitwise identity" `Quick
            test_envelope_memo_identity;
        ] );
    ]
