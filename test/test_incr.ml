(* Tests for the incremental ECO re-analysis layer (Tka_incr): the
   content-addressed cache must make re-runs cheap while keeping every
   result bit-identical to a from-scratch analysis — after any edit
   sequence, at any jobs count (the correctness bar of
   docs/incremental.md). *)

module N = Tka_circuit.Netlist
module Topo = Tka_circuit.Topo
module B = Tka_layout.Benchmarks
module Cell = Tka_cell.Cell
module Pool = Tka_parallel.Pool
module Engine = Tka_topk.Engine
module Elimination = Tka_topk.Elimination
module CS = Tka_topk.Coupling_set
module Fnv = Tka_incr.Fnv
module Edit = Tka_incr.Edit
module Dirty = Tka_incr.Dirty
module Fingerprint = Tka_incr.Fingerprint
module Cache = Tka_incr.Cache
module Analyzer = Tka_incr.Analyzer
module Eco = Tka_incr.Eco
module Repair = Tka_incr.Repair
module Nf = Tka_circuit.Netlist_format

let at_jobs jobs f =
  let before = Pool.default_jobs () in
  Pool.set_default_jobs jobs;
  Fun.protect ~finally:(fun () -> Pool.set_default_jobs before) f

(* ------------------------------------------------------------------ *)
(* Hashing                                                            *)
(* ------------------------------------------------------------------ *)

let test_fnv () =
  Alcotest.(check bool)
    "float hashing is bit-exact (0. vs -0.)" false
    (Fnv.float Fnv.basis 0. = Fnv.float Fnv.basis (-0.));
  Alcotest.(check bool)
    "string hashing is length-prefixed" false
    (Fnv.string (Fnv.string Fnv.basis "ab") "c"
    = Fnv.string (Fnv.string Fnv.basis "a") "bc");
  Alcotest.(check bool)
    "deterministic" true
    (Fnv.int (Fnv.float Fnv.basis 1.5) 7 = Fnv.int (Fnv.float Fnv.basis 1.5) 7)

let test_fingerprint_stability () =
  let topo = Topo.create (B.tiny ()) in
  let fix = Tka_noise.Iterate.run topo in
  let config = Engine.default_config ~k:4 in
  let fp1 = Fingerprint.compute ~config ~mode:Engine.Elimination ~fix topo in
  let fp2 = Fingerprint.compute ~config ~mode:Engine.Elimination ~fix topo in
  Alcotest.(check bool)
    "same inputs, same signatures" true
    (fp1.Fingerprint.fp_sig = fp2.Fingerprint.fp_sig);
  Alcotest.(check bool)
    "same inputs, same direct hashes" true
    (fp1.Fingerprint.fp_hd = fp2.Fingerprint.fp_hd);
  Alcotest.(check bool)
    "same inputs, same stable coupling names" true
    (fp1.Fingerprint.fp_stable = fp2.Fingerprint.fp_stable);
  let fpa = Fingerprint.compute ~config ~mode:Engine.Addition ~fix topo in
  Alcotest.(check bool)
    "modes keyed apart (config)" false
    (Int64.equal fp1.Fingerprint.fp_cfg fpa.Fingerprint.fp_cfg);
  (* the Elimination signature folds the noisy timing on top of the
     Addition one, so the two can never collide *)
  Alcotest.(check bool)
    "modes keyed apart (signatures)" true
    (Array.for_all2
       (fun a b -> not (Int64.equal a b))
       fp1.Fingerprint.fp_sig fpa.Fingerprint.fp_sig)

(* ------------------------------------------------------------------ *)
(* Edit scripts                                                       *)
(* ------------------------------------------------------------------ *)

let test_edit_remove () =
  let nl = B.tiny () in
  let nc = N.num_couplings nl in
  Alcotest.(check bool) "tiny has couplings" true (nc >= 2);
  let victim = 1 in
  let nl', remap = Edit.apply nl [ Edit.Remove_coupling victim ] in
  Alcotest.(check int) "one fewer coupling" (nc - 1) (N.num_couplings nl');
  Alcotest.(check (option int)) "removed id maps to None" None (remap victim);
  Alcotest.(check (option int)) "out of range maps to None" None (remap nc);
  (* survivors keep their relative order and land densely *)
  let survivor_targets =
    List.init nc (fun c -> remap c) |> List.filter_map Fun.id
  in
  Alcotest.(check (list int))
    "survivors renumbered densely in order"
    (List.init (nc - 1) Fun.id)
    survivor_targets;
  (* net and gate ids are preserved *)
  Alcotest.(check int) "net count" (N.num_nets nl) (N.num_nets nl');
  Array.iter
    (fun (n : N.net) ->
      Alcotest.(check string)
        (Printf.sprintf "net %d name" n.N.net_id)
        n.N.net_name
        (N.net nl' n.N.net_id).N.net_name)
    (N.nets nl)

let test_edit_compose () =
  let nl = B.tiny () in
  let nc = N.num_couplings nl in
  let cap0 = (N.coupling nl 0).N.coupling_cap in
  (* scaling twice multiplies; scaling to zero removes *)
  let nl', remap =
    Edit.apply nl
      [
        Edit.Scale_coupling { coupling = 0; factor = 0.5 };
        Edit.Scale_coupling { coupling = 0; factor = 0.5 };
        Edit.Scale_coupling { coupling = 1; factor = 0. };
      ]
  in
  Alcotest.(check int) "zero-scaled cap removed" (nc - 1) (N.num_couplings nl');
  (match remap 0 with
  | Some c' ->
    Alcotest.(check (float 1e-12))
      "factors compose" (0.25 *. cap0)
      (N.coupling nl' c').N.coupling_cap
  | None -> Alcotest.fail "coupling 0 should survive");
  Alcotest.(check bool) "factor outside [0,1] rejected" true
    (try
       ignore (Edit.apply nl [ Edit.Scale_coupling { coupling = 0; factor = 2. } ]);
       false
     with Invalid_argument _ -> true)

let upsized cell =
  Cell.make ~name:(cell.Cell.name ^ "_x2") ~inputs:cell.Cell.inputs
    ~output:cell.Cell.output ~logic:cell.Cell.logic
    ~intrinsic_delay:cell.Cell.intrinsic_delay
    ~drive_resistance:(0.5 *. cell.Cell.drive_resistance)
    ~intrinsic_slew:cell.Cell.intrinsic_slew
    ~slew_resistance:(0.5 *. cell.Cell.slew_resistance)

let test_edit_resize_touches () =
  let nl = B.tiny () in
  let g = N.gate nl 0 in
  let touched =
    Edit.touched_nets nl [ Edit.Resize_driver { gate = 0; cell = upsized g.N.cell } ]
  in
  Alcotest.(check bool) "output net touched" true (List.mem g.N.fanout touched);
  List.iter
    (fun (_, u) ->
      Alcotest.(check bool)
        (Printf.sprintf "fanin net %d touched" u)
        true (List.mem u touched))
    g.N.fanin

let test_edit_strengthen () =
  let nl = B.tiny () in
  let g = N.gate nl 0 in
  let factor = 1.5 in
  let nl', _ = Edit.apply nl [ Edit.Strengthen_driver { gate = 0; factor } ] in
  let cell0 = g.N.cell and cell' = (N.gate nl' 0).N.cell in
  Alcotest.(check (float 1e-12))
    "drive resistance divided by the factor"
    (cell0.Cell.drive_resistance /. factor)
    cell'.Cell.drive_resistance;
  List.iter2
    (fun p p' ->
      Alcotest.(check (float 1e-12))
        (Printf.sprintf "input cap of %s scaled up" p.Cell.pin_name)
        (factor *. p.Cell.capacitance)
        p'.Cell.capacitance)
    cell0.Cell.inputs cell'.Cell.inputs;
  (* same footprint as a resize: the load seen by fanin drivers moves *)
  let touched =
    Edit.touched_nets nl [ Edit.Strengthen_driver { gate = 0; factor } ]
  in
  Alcotest.(check bool) "output net touched" true (List.mem g.N.fanout touched);
  List.iter
    (fun (_, u) ->
      Alcotest.(check bool)
        (Printf.sprintf "fanin net %d touched" u)
        true (List.mem u touched))
    g.N.fanin;
  List.iter
    (fun bad ->
      Alcotest.(check bool)
        (Printf.sprintf "factor %g rejected" bad)
        true
        (try
           ignore
             (Edit.apply nl [ Edit.Strengthen_driver { gate = 0; factor = bad } ]);
           false
         with Invalid_argument _ -> true))
    [ 0.; -1.; Float.nan; Float.infinity ];
  (* the wire format round-trips every edit kind; strengthen needs no
     cell lookup (the factor is the whole payload) *)
  List.iter
    (fun e ->
      match Edit.of_json ~lookup:(fun _ -> None) (Edit.to_json e) with
      | Ok e' -> Alcotest.(check bool) "edit JSON round-trip" true (e = e')
      | Error m -> Alcotest.failf "edit did not round-trip: %s" m)
    [
      Edit.Remove_coupling 3;
      Edit.Scale_coupling { coupling = 1; factor = 0.25 };
      Edit.Strengthen_driver { gate = 0; factor = 1.5 };
    ]

let test_dirty_closure () =
  let nl = B.c17 () in
  let topo = Topo.create nl in
  let c = N.coupling nl 0 in
  let seeds = [ c.N.net_a; c.N.net_b ] in
  let mark = Dirty.closure topo seeds in
  List.iter
    (fun s -> Alcotest.(check bool) "seed dirty" true mark.(s))
    seeds;
  (* closed under fanout and coupling adjacency *)
  Array.iteri
    (fun v d ->
      if d then begin
        List.iter
          (fun w -> Alcotest.(check bool) "fanout closed" true mark.(w))
          (N.fanout_nets nl v);
        List.iter
          (fun cid ->
            Alcotest.(check bool) "coupling closed" true
              mark.(N.coupling_partner nl cid v))
          (N.couplings_of_net nl v)
      end)
    mark;
  Alcotest.(check bool)
    "clean levels consistent" true
    (Dirty.clean_levels topo mark >= 0
    && Dirty.clean_levels topo mark <= Topo.max_level topo + 1)

(* ------------------------------------------------------------------ *)
(* Cache reuse and bit-identity                                       *)
(* ------------------------------------------------------------------ *)

let num_victim_lookups nl = 2 * N.num_nets nl (* both dual modes *)

let test_second_run_all_hits () =
  let nl = B.tiny () in
  let topo = Topo.create nl in
  let az = Analyzer.create ~k:4 () in
  let r1, st1 = Analyzer.run az topo in
  Alcotest.(check int) "first run misses everywhere"
    (num_victim_lookups nl) st1.Analyzer.rs_misses;
  Alcotest.(check int) "first run has no hits" 0 st1.Analyzer.rs_hits;
  let r2, st2 = Analyzer.run az topo in
  Alcotest.(check int) "second run hits everywhere"
    (num_victim_lookups nl) st2.Analyzer.rs_hits;
  Alcotest.(check int) "second run misses nothing" 0 st2.Analyzer.rs_misses;
  Alcotest.(check bool) "second run bit-identical" true
    (Eco.elim_identical r1 r2);
  let scratch = Elimination.compute ~k:4 topo in
  Alcotest.(check bool) "cached == from scratch" true
    (Eco.elim_identical scratch r2)

let test_edit_reanalysis_identical () =
  let nl = B.c17 () in
  let az = Analyzer.create ~k:4 () in
  let _ = Analyzer.run az (Topo.create nl) in
  let nl', dirty = Analyzer.apply az nl [ Edit.Remove_coupling 0 ] in
  Alcotest.(check bool) "dirty set non-empty" true (dirty > 0);
  let topo' = Topo.create nl' in
  let incr, st = Analyzer.run az topo' in
  let scratch = Elimination.compute ~k:4 topo' in
  Alcotest.(check bool) "incremental == scratch after edit" true
    (Eco.elim_identical scratch incr);
  Alcotest.(check int) "every victim looked up"
    (num_victim_lookups nl')
    (st.Analyzer.rs_hits + st.Analyzer.rs_misses)

let test_checkpoint_roundtrip () =
  let nl = B.tiny () in
  let topo = Topo.create nl in
  let az = Analyzer.create ~k:4 () in
  let r1, _ = Analyzer.run az topo in
  let path = Filename.temp_file "tka_incr_test" ".ndjson" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      Analyzer.save_checkpoint az path;
      let az2 = Analyzer.create ~k:4 () in
      Analyzer.load_checkpoint az2 path;
      Alcotest.(check int) "all records round-trip"
        (Cache.size (Analyzer.cache az))
        (Cache.size (Analyzer.cache az2));
      let r2, st = Analyzer.run az2 topo in
      Alcotest.(check int) "warm start hits everywhere"
        (num_victim_lookups nl) st.Analyzer.rs_hits;
      Alcotest.(check bool) "warm result bit-identical" true
        (Eco.elim_identical r1 r2);
      (* a foreign checkpoint names a different coupling table, so the
         universe guard flushes it wholesale before the run consults
         anything — results stay correct *)
      let az3 = Analyzer.create ~k:4 () in
      Analyzer.load_checkpoint az3 path;
      let other = Topo.create (B.c17 ()) in
      let r3, _ = Analyzer.run az3 other in
      Alcotest.(check bool) "foreign checkpoint still correct" true
        (Eco.elim_identical (Elimination.compute ~k:4 other) r3))

(* The id-aliasing trap the universe guard exists for: a checkpoint
   saved after an edit carries coupling ids compacted to the edited
   table. Reloaded against the ORIGINAL design, its key hits would
   silently report sets under the wrong ids — unless the mismatched
   universe flushes the cache first. *)
let test_checkpoint_universe_guard () =
  let nl = B.c17 () in
  let az = Analyzer.create ~k:4 () in
  let _ = Analyzer.run az (Topo.create nl) in
  let nl', _ = Analyzer.apply az nl [ Edit.Remove_coupling 0 ] in
  let _ = Analyzer.run az (Topo.create nl') in
  let path = Filename.temp_file "tka_incr_test" ".ndjson" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      Analyzer.save_checkpoint az path;
      let az2 = Analyzer.create ~k:4 () in
      Analyzer.load_checkpoint az2 path;
      let topo = Topo.create nl in
      let r, st = Analyzer.run az2 topo in
      Alcotest.(check int) "mismatched universe hits nothing" 0
        st.Analyzer.rs_hits;
      Alcotest.(check bool) "results identical after flush" true
        (Eco.elim_identical (Elimination.compute ~k:4 topo) r))

let test_checkpoint_rejects_garbage () =
  let path = Filename.temp_file "tka_incr_test" ".ndjson" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "{\"format\":\"something-else\",\"version\":9}\n";
      close_out oc;
      Alcotest.(check bool) "wrong header rejected" true
        (try
           ignore (Cache.load path);
           false
         with Failure _ -> true))

let test_eco_loop () =
  let r, _ = Eco.run ~k:4 ~fix_k:1 (B.c17 ()) in
  Alcotest.(check bool) "eco re-analyses identical" true r.Eco.eco_identical;
  Alcotest.(check bool) "eco applied an edit" true (r.Eco.eco_edits <> []);
  Alcotest.(check bool) "fix does not worsen delay" true
    (r.Eco.eco_delay_fixed <= r.Eco.eco_delay_noisy +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Repair loop                                                        *)
(* ------------------------------------------------------------------ *)

(* Netlists are compared through their canonical text: two netlists
   that print identically are the same design bit for bit. *)
let same_netlist a b = String.equal (Nf.print a) (Nf.print b)

let in_temp name f =
  let path = Filename.temp_file "tka_repair" name in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_repair_loop () =
  let nl = B.c17 () in
  let report, nl', _elim = Repair.run ~k:4 ~fix_k:1 ~budget:3 ~recover:0.5 nl in
  Alcotest.(check bool)
    "final state identical to scratch" true report.Repair.rp_identical;
  Alcotest.(check bool)
    "repair does not worsen the delay" true
    (report.Repair.rp_final_delay <= report.Repair.rp_initial_delay +. 1e-9);
  (match report.Repair.rp_curve with
  | (0, d0) :: _ ->
    Alcotest.(check (float 0.)) "curve starts at the initial delay"
      report.Repair.rp_initial_delay d0
  | _ -> Alcotest.fail "curve must start at (0, initial delay)");
  Alcotest.(check int)
    "rejected count matches the journal"
    (List.length
       (List.filter (fun e -> not e.Repair.en_accepted) report.Repair.rp_journal))
    report.Repair.rp_rejected;
  Alcotest.(check bool)
    "journal replays to the final netlist" true
    (same_netlist nl' (Repair.replay nl report.Repair.rp_journal))

let test_repair_journal_roundtrip () =
  in_temp ".ndjson" (fun path ->
      let nl = B.c17 () in
      let report, nl', _ =
        Repair.run ~k:4 ~fix_k:1 ~budget:3 ~journal:path nl
      in
      match Repair.load_journal ~lookup:(fun _ -> None) path with
      | Error m -> Alcotest.failf "journal did not load back: %s" m
      | Ok entries ->
        Alcotest.(check int)
          "all trials journaled on disk"
          (List.length report.Repair.rp_journal)
          (List.length entries);
        Alcotest.(check bool)
          "loaded journal replays to the final netlist" true
          (same_netlist nl' (Repair.replay nl entries)))

let test_repair_dry_run () =
  in_temp ".ndjson" (fun journal ->
      in_temp ".ckpt" (fun ckpt ->
          (* a pre-existing checkpoint must come through byte-identical:
             dry-run promises no file writes, even of equivalent content *)
          let stale = "not a checkpoint at all\n" in
          Out_channel.with_open_bin ckpt (fun oc -> output_string oc stale);
          let report, _, _ =
            Repair.run ~k:4 ~fix_k:1 ~budget:2 ~dry_run:true ~journal
              ~checkpoint:ckpt (B.c17 ())
          in
          Alcotest.(check bool) "report says dry run" true report.Repair.rp_dry_run;
          Alcotest.(check bool)
            "no journal file written" false (Sys.file_exists journal);
          Alcotest.(check string)
            "checkpoint untouched" stale
            (In_channel.with_open_bin ckpt In_channel.input_all)))

let test_repair_no_mutation () =
  let nl = B.c17 () in
  let before = Nf.print nl in
  (* target already met: the loop must exit immediately, apply nothing
     and hand back the design unchanged *)
  let report, nl', _ =
    Repair.run ~k:4 ~fix_k:1 ~budget:3 ~target_delay:1e9 nl
  in
  Alcotest.(check bool)
    "already-met target -> Target_met" true
    (report.Repair.rp_outcome = Repair.Target_met);
  Alcotest.(check int) "no edits applied" 0 report.Repair.rp_edits_applied;
  Alcotest.(check bool) "netlist unchanged" true (same_netlist nl nl');
  Alcotest.(check string) "input netlist not mutated" before (Nf.print nl);
  (* budget 0: every candidate is over budget, nothing may change *)
  let report0, nl0, _ = Repair.run ~k:4 ~fix_k:1 ~budget:0 nl in
  Alcotest.(check int) "budget 0 applies nothing" 0 report0.Repair.rp_edits_applied;
  Alcotest.(check bool) "budget 0 leaves the netlist" true (same_netlist nl nl0)

(* ------------------------------------------------------------------ *)
(* qcheck: random edit sequences, applied incrementally, at jobs 1/4  *)
(* ------------------------------------------------------------------ *)

(* simple deterministic generator for edit scripts *)
let random_edits nl rand n =
  let nc = N.num_couplings nl in
  let ng = N.num_gates nl in
  List.init n (fun _ ->
      match rand 3 with
      | 0 when nc > 0 -> Edit.Remove_coupling (rand nc)
      | 1 when nc > 0 ->
        Edit.Scale_coupling
          { coupling = rand nc; factor = [| 0.; 0.3; 0.7 |].(rand 3) }
      | _ ->
        let g = N.gate nl (rand ng) in
        Edit.Resize_driver { gate = g.N.gate_id; cell = upsized g.N.cell })

let test_random_edit_sequences =
  QCheck.Test.make
    ~name:"random edit sequence: incremental == scratch (jobs 1 and 4)"
    ~count:4
    QCheck.(pair (int_range 6 12) (int_range 0 10_000))
    (fun (gates, seed) ->
      let spec =
        {
          B.sp_name = "rnd";
          sp_gates = gates;
          sp_inputs = 3;
          sp_depth = 3;
          sp_couplings = 2 * gates;
          sp_seed = seed;
        }
      in
      let nl0 = B.generate spec in
      let st = Random.State.make [| seed; gates |] in
      let rand n = Random.State.int st n in
      (* two successive edit batches so cache remapping is exercised
         repeatedly; state must match a from-scratch run after each *)
      List.for_all
        (fun jobs ->
          at_jobs jobs (fun () ->
              let az = Analyzer.create ~k:4 () in
              let _ = Analyzer.run az (Topo.create nl0) in
              let step nl =
                let edits = random_edits nl rand (1 + rand 2) in
                let nl', _ = Analyzer.apply az nl edits in
                let topo' = Topo.create nl' in
                let incr, _ = Analyzer.run az topo' in
                let scratch = Elimination.compute ~k:4 topo' in
                (nl', Eco.elim_identical scratch incr)
              in
              let nl1, ok1 = step nl0 in
              let _, ok2 = step nl1 in
              ok1 && ok2))
        [ 1; 4 ])

let () =
  Alcotest.run "tka_incr"
    [
      ( "hashing",
        [
          Alcotest.test_case "fnv primitives" `Quick test_fnv;
          Alcotest.test_case "fingerprint stability" `Quick
            test_fingerprint_stability;
        ] );
      ( "edits",
        [
          Alcotest.test_case "remove compacts ids" `Quick test_edit_remove;
          Alcotest.test_case "edits compose" `Quick test_edit_compose;
          Alcotest.test_case "resize touches fanin" `Quick
            test_edit_resize_touches;
          Alcotest.test_case "strengthen driver" `Quick test_edit_strengthen;
          Alcotest.test_case "dirty closure" `Quick test_dirty_closure;
        ] );
      ( "cache",
        [
          Alcotest.test_case "second run all hits, identical" `Quick
            test_second_run_all_hits;
          Alcotest.test_case "edit then re-analysis identical" `Quick
            test_edit_reanalysis_identical;
          Alcotest.test_case "checkpoint round-trip" `Quick
            test_checkpoint_roundtrip;
          Alcotest.test_case "checkpoint universe guard" `Quick
            test_checkpoint_universe_guard;
          Alcotest.test_case "checkpoint rejects garbage" `Quick
            test_checkpoint_rejects_garbage;
          Alcotest.test_case "eco loop" `Quick test_eco_loop;
        ] );
      ( "repair",
        [
          Alcotest.test_case "loop invariants" `Quick test_repair_loop;
          Alcotest.test_case "journal round-trip" `Quick
            test_repair_journal_roundtrip;
          Alcotest.test_case "dry run writes nothing" `Quick test_repair_dry_run;
          Alcotest.test_case "no mutation without budget or need" `Quick
            test_repair_no_mutation;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest test_random_edit_sequences ] );
    ]
